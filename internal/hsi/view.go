package hsi

import (
	"fmt"

	"resilientfusion/internal/linalg"
)

// Pixel-major float64 staging views. The numeric kernels (screening,
// statistics, transform) all consume pixel spectra as float64 vectors;
// the historical path allocated one []float64 per pixel, which dominated
// allocation counts and scattered spectra across the heap. These views
// stage a whole cube — or a bounded block of it — into one contiguous
// pixel-major buffer, and hand out per-pixel vectors as subslices of that
// buffer: zero copies and zero allocations per pixel access.

// PixelMatrixInto stages pixels [start, start+count) into dst as a
// pixel-major float64 block (pixel p's spectrum at dst[p*Bands:(p+1)*Bands])
// and returns dst. It panics on an out-of-range window or a wrongly
// sized destination — staging is a kernel-internal step with
// caller-controlled geometry, like PixelAt.
func (c *Cube) PixelMatrixInto(start, count int, dst []float64) []float64 {
	if start < 0 || count < 0 || start+count > c.Pixels() {
		panic(fmt.Sprintf("hsi: PixelMatrixInto window [%d,%d) of %d pixels", start, start+count, c.Pixels()))
	}
	if len(dst) != count*c.Bands {
		panic("hsi: PixelMatrixInto destination length mismatch")
	}
	src := c.Data[start*c.Bands : (start+count)*c.Bands]
	for i, v := range src {
		dst[i] = float64(v)
	}
	return dst
}

// PixelMatrix stages the whole cube as a Pixels×Bands float64 matrix in
// one allocation. Rows are pixel spectra in row-major pixel order; the
// matrix shares nothing with the cube (samples are widened float32 →
// float64) but all of its rows share the single backing array.
func (c *Cube) PixelMatrix() *linalg.Matrix {
	m := linalg.NewMatrix(c.Pixels(), c.Bands)
	c.PixelMatrixInto(0, c.Pixels(), m.Data)
	return m
}

// PixelRows returns every pixel spectrum as a float64 vector, in
// row-major pixel order. All vectors are subslices of one staging
// allocation: two allocations total (headers + backing) instead of one
// per pixel. Callers that keep a subset of the vectors alive (the
// screening unique set does) pin the whole staging buffer, which is the
// right trade for worker-lifetime use.
func (c *Cube) PixelRows() []linalg.Vector {
	m := c.PixelMatrix()
	rows := make([]linalg.Vector, c.Pixels())
	for i := range rows {
		// Full three-index slices: capacity stops at the row end, so an
		// append on a row reallocates instead of silently overwriting the
		// next pixel's spectrum in the shared buffer.
		rows[i] = linalg.Vector(m.Data[i*c.Bands : (i+1)*c.Bands : (i+1)*c.Bands])
	}
	return rows
}
