package hsi

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"resilientfusion/internal/linalg"
)

func testCube(t *testing.T, w, h, b int, seed int64) *Cube {
	t.Helper()
	c := MustNewCube(w, h, b)
	rng := rand.New(rand.NewSource(seed))
	for i := range c.Data {
		c.Data[i] = float32(rng.Float64() * 4095)
	}
	c.Wavelengths = DefaultWavelengths(b)
	return c
}

func TestNewCubeRejectsBadShape(t *testing.T) {
	for _, dims := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		if _, err := NewCube(dims[0], dims[1], dims[2]); !errors.Is(err, ErrShape) {
			t.Errorf("NewCube(%v) err = %v, want ErrShape", dims, err)
		}
	}
}

func TestMustNewCubePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewCube(0,0,0) did not panic")
		}
	}()
	MustNewCube(0, 0, 0)
}

func TestValidate(t *testing.T) {
	c := MustNewCube(2, 3, 4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Data = c.Data[:5]
	if err := c.Validate(); !errors.Is(err, ErrShape) {
		t.Fatalf("truncated data: %v", err)
	}
	c = MustNewCube(2, 3, 4)
	c.Wavelengths = []float64{1, 2}
	if err := c.Validate(); !errors.Is(err, ErrShape) {
		t.Fatalf("bad wavelength count: %v", err)
	}
}

func TestPixelRoundTrip(t *testing.T) {
	c := MustNewCube(4, 3, 5)
	v := linalg.Vector{1, 2, 3, 4, 5}
	c.SetPixel(2, 1, v)
	got := c.Pixel(2, 1)
	if !got.Equal(v, 0) {
		t.Fatalf("Pixel = %v, want %v", got, v)
	}
	// Neighbours untouched.
	if !c.Pixel(1, 1).Equal(make(linalg.Vector, 5), 0) {
		t.Fatal("SetPixel bled into neighbour")
	}
	// PixelAt agrees with Pixel via row-major index.
	at := c.PixelAt(1*4+2, make(linalg.Vector, 5))
	if !at.Equal(v, 0) {
		t.Fatalf("PixelAt = %v", at)
	}
}

func TestSpectrumSharesStorage(t *testing.T) {
	c := MustNewCube(2, 2, 3)
	s := c.Spectrum(1, 1)
	s[0] = 42
	if c.Pixel(1, 1)[0] != 42 {
		t.Fatal("Spectrum does not alias cube storage")
	}
}

func TestBandExtraction(t *testing.T) {
	c := MustNewCube(2, 2, 3)
	c.SetPixel(0, 0, linalg.Vector{1, 10, 100})
	c.SetPixel(1, 0, linalg.Vector{2, 20, 200})
	c.SetPixel(0, 1, linalg.Vector{3, 30, 300})
	c.SetPixel(1, 1, linalg.Vector{4, 40, 400})
	plane, err := c.Band(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 40}
	for i := range want {
		if plane[i] != want[i] {
			t.Fatalf("Band(1) = %v", plane)
		}
	}
	if _, err := c.Band(3); !errors.Is(err, ErrShape) {
		t.Fatalf("Band(3) err = %v", err)
	}
	if _, err := c.Band(-1); !errors.Is(err, ErrShape) {
		t.Fatalf("Band(-1) err = %v", err)
	}
}

func TestNearestBand(t *testing.T) {
	c := MustNewCube(1, 1, 211)
	c.Wavelengths = DefaultWavelengths(211) // exactly 10nm spacing
	b, err := c.NearestBand(400)
	if err != nil || b != 0 {
		t.Fatalf("NearestBand(400) = %d, %v", b, err)
	}
	b, _ = c.NearestBand(2500)
	if b != 210 {
		t.Fatalf("NearestBand(2500) = %d", b)
	}
	b, _ = c.NearestBand(1998)
	if got := c.Wavelengths[b]; math.Abs(got-1998) > 5.001 {
		t.Fatalf("NearestBand(1998) -> %g nm", got)
	}
	c.Wavelengths = nil
	if _, err := c.NearestBand(400); err == nil {
		t.Fatal("NearestBand without table should error")
	}
}

func TestCloneAndEqual(t *testing.T) {
	c := testCube(t, 3, 4, 5, 7)
	d := c.Clone()
	if !c.Equal(d, 0) {
		t.Fatal("clone not equal")
	}
	d.Data[0] += 10
	if c.Equal(d, 0) {
		t.Fatal("Equal missed a difference")
	}
	if !c.Equal(d, 11) {
		t.Fatal("Equal tolerance not applied")
	}
	if c.Equal(MustNewCube(1, 1, 1), 1e9) {
		t.Fatal("Equal ignored shape")
	}
}

func TestMeanVector(t *testing.T) {
	c := MustNewCube(2, 1, 2)
	c.SetPixel(0, 0, linalg.Vector{1, 10})
	c.SetPixel(1, 0, linalg.Vector{3, 30})
	m := c.MeanVector()
	if !m.Equal(linalg.Vector{2, 20}, 1e-12) {
		t.Fatalf("MeanVector = %v", m)
	}
}

func TestDefaultWavelengths(t *testing.T) {
	w := DefaultWavelengths(210)
	if len(w) != 210 || w[0] != 400 || w[209] != 2500 {
		t.Fatalf("DefaultWavelengths(210): first %g last %g len %d", w[0], w[len(w)-1], len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] <= w[i-1] {
			t.Fatal("wavelengths not increasing")
		}
	}
	if got := DefaultWavelengths(1); len(got) != 1 || got[0] != 400 {
		t.Fatalf("DefaultWavelengths(1) = %v", got)
	}
	if DefaultWavelengths(0) != nil {
		t.Fatal("DefaultWavelengths(0) should be nil")
	}
}
