package hsi

import (
	"math"

	"resilientfusion/internal/linalg"
)

// Material identifies the ground-truth class of a scene pixel. The set
// mirrors the paper's HYDICE foliated scenes: forest, open fields, roads,
// mechanized vehicles in the open, and vehicles under camouflage nets.
type Material uint8

const (
	MaterialForest Material = iota
	MaterialField
	MaterialRoad
	MaterialVehicle
	MaterialCamouflage
	MaterialShadow
	numMaterials
)

// Materials lists every material class in signature order.
func Materials() []Material {
	out := make([]Material, numMaterials)
	for i := range out {
		out[i] = Material(i)
	}
	return out
}

func (m Material) String() string {
	switch m {
	case MaterialForest:
		return "forest"
	case MaterialField:
		return "field"
	case MaterialRoad:
		return "road"
	case MaterialVehicle:
		return "vehicle"
	case MaterialCamouflage:
		return "camouflage"
	case MaterialShadow:
		return "shadow"
	default:
		return "unknown"
	}
}

// DefaultWavelengths returns band centres evenly spaced over the HYDICE
// range, 400 nm to 2500 nm.
func DefaultWavelengths(bands int) []float64 {
	if bands <= 0 {
		return nil
	}
	out := make([]float64, bands)
	if bands == 1 {
		out[0] = 400
		return out
	}
	const lo, hi = 400.0, 2500.0
	step := (hi - lo) / float64(bands-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// gauss is a Gaussian bump centred at c with width w and height h.
func gauss(x, c, w, h float64) float64 {
	d := (x - c) / w
	return h * math.Exp(-d*d/2)
}

// sigmoid is a smooth step rising from 0 to 1 around c with slope scale w.
func sigmoid(x, c, w float64) float64 {
	return 1 / (1 + math.Exp(-(x-c)/w))
}

// reflectance returns the idealized reflectance of material m at
// wavelength nm (nanometres), in [0, 1]. Shapes follow standard spectral
// libraries qualitatively:
//
//   - Vegetation (forest, field): chlorophyll absorption wells at 450 and
//     670 nm, green peak at 550 nm, sharp red edge near 720 nm, NIR plateau,
//     leaf-water absorption wells at 1450 and 1940 nm.
//   - Road/soil: monotone rise into the SWIR with mild clay features.
//   - Vehicle (olive-drab paint over metal): low, flat, *no red edge* and
//     no water bands — exactly the discriminant that makes the vehicle's
//     signature rare, which spectral screening is designed to preserve.
//   - Camouflage net: attempts to mimic vegetation in the visible but has
//     a weak red edge and lacks the deep water absorption, so it separates
//     from true canopy in the SWIR.
func reflectance(m Material, nm float64) float64 { return reflectanceMoisture(m, nm, 1.0) }

// reflectanceMoisture scales the material's canonical moisture content by
// f (the scene generator varies f smoothly across the image to model
// within-class water-content variability).
func reflectanceMoisture(m Material, nm, f float64) float64 {
	switch m {
	case MaterialForest:
		return vegetationReflectance(nm, 1.0*f)
	case MaterialField:
		// Grassland: brighter NIR plateau, slightly drier (shallower
		// water bands) than canopy.
		v := vegetationReflectance(nm, 0.8*f)
		return v*0.9 + 0.08
	case MaterialRoad:
		base := 0.12 + 0.18*sigmoid(nm, 1000, 400)
		base += gauss(nm, 2200, 60, -0.04) // clay absorption
		return clamp01(base)
	case MaterialVehicle:
		// Olive drab paint: dull, slight green reflectance, flat in NIR.
		base := 0.08 + gauss(nm, 550, 60, 0.04) + 0.03*sigmoid(nm, 900, 300)
		return clamp01(base)
	case MaterialCamouflage:
		// Weak vegetation mimicry.
		veg := vegetationReflectance(nm, 0.45*f)
		paint := 0.10 + gauss(nm, 550, 70, 0.05)
		mix := 0.55*veg + 0.45*paint
		// Refill the water bands the net does not have.
		mix += gauss(nm, 1450, 45, 0.06) + gauss(nm, 1940, 55, 0.05)
		return clamp01(mix)
	case MaterialShadow:
		return 0.25 * vegetationReflectance(nm, 1.0*f)
	default:
		return 0
	}
}

// vegetationReflectance models a green-leaf spectrum; moisture in [0,1]
// scales the depth of the leaf-water absorption features.
func vegetationReflectance(nm, moisture float64) float64 {
	vis := 0.05 + gauss(nm, 550, 40, 0.07) // green peak
	vis -= gauss(nm, 450, 30, 0.02)        // chlorophyll a
	vis -= gauss(nm, 670, 25, 0.03)        // chlorophyll b
	redEdge := 0.42 * sigmoid(nm, 720, 15) // sharp NIR shoulder
	swirDecay := 1 - 0.5*sigmoid(nm, 1300, 250)
	r := (vis + redEdge) * swirDecay
	r -= moisture * gauss(nm, 1450, 45, 0.16) // water absorption
	r -= moisture * gauss(nm, 1940, 55, 0.20) // water absorption
	return clamp01(r)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// SignatureFor samples the idealized reflectance of m at each wavelength,
// returning a pixel-vector-shaped signature scaled to sensor counts.
func SignatureFor(m Material, wavelengths []float64) linalg.Vector {
	v := make(linalg.Vector, len(wavelengths))
	for i, nm := range wavelengths {
		v[i] = reflectance(m, nm) * sensorFullScale
	}
	return v
}

// signatureMoisture samples a material signature at a given moisture
// scaling (used by the scene generator's moisture field).
func signatureMoisture(m Material, wavelengths []float64, f float64) []float64 {
	v := make([]float64, len(wavelengths))
	for i, nm := range wavelengths {
		v[i] = reflectanceMoisture(m, nm, f) * sensorFullScale
	}
	return v
}

// sensorFullScale converts unit reflectance into 12-bit-like sensor counts,
// matching HYDICE's radiometric range.
const sensorFullScale = 4095.0
