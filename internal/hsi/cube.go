// Package hsi provides the hyper-spectral image substrate: the band-
// interleaved-by-pixel Cube type, row-range partitioning used by the
// manager/worker decomposition, a binary serialization format, and a
// deterministic synthetic generator that stands in for the HYDICE
// airborne imaging spectrometer scenes used in the paper.
package hsi

import (
	"errors"
	"fmt"

	"resilientfusion/internal/linalg"
)

// Cube is a hyper-spectral image cube stored band-interleaved-by-pixel
// (BIP): the spectrum of each pixel is contiguous in memory, which is the
// access pattern of every step of the spectral-screening PCT (pixel-vector
// dot products, covariance outer products, per-pixel transformation).
//
// Samples are stored as float32 — HYDICE delivers 12-bit radiometric data,
// so float32 loses nothing while halving the footprint of paper-scale
// cubes (320×320×210 ≈ 86 MiB).
type Cube struct {
	Width, Height, Bands int
	// Wavelengths holds the band-center wavelengths in nanometres;
	// len(Wavelengths) == Bands. Optional but populated by the generator.
	Wavelengths []float64
	// Data is the sample array, len = Width*Height*Bands, indexed
	// [(y*Width+x)*Bands + b].
	Data []float32
}

// ErrShape is returned for malformed cube geometry.
var ErrShape = errors.New("hsi: invalid cube shape")

// NewCube allocates a zeroed cube.
func NewCube(width, height, bands int) (*Cube, error) {
	if width <= 0 || height <= 0 || bands <= 0 {
		return nil, fmt.Errorf("%w: %dx%dx%d", ErrShape, width, height, bands)
	}
	return &Cube{
		Width:  width,
		Height: height,
		Bands:  bands,
		Data:   make([]float32, width*height*bands),
	}, nil
}

// MustNewCube is NewCube panicking on error, for tests and generators
// with compile-time-known shapes.
func MustNewCube(width, height, bands int) *Cube {
	c, err := NewCube(width, height, bands)
	if err != nil {
		panic(err)
	}
	return c
}

// Pixels returns the number of pixel vectors in the cube.
func (c *Cube) Pixels() int { return c.Width * c.Height }

// Validate checks internal consistency of the cube's geometry and storage.
func (c *Cube) Validate() error {
	if c.Width <= 0 || c.Height <= 0 || c.Bands <= 0 {
		return fmt.Errorf("%w: %dx%dx%d", ErrShape, c.Width, c.Height, c.Bands)
	}
	if len(c.Data) != c.Width*c.Height*c.Bands {
		return fmt.Errorf("%w: data length %d for %dx%dx%d", ErrShape, len(c.Data), c.Width, c.Height, c.Bands)
	}
	if c.Wavelengths != nil && len(c.Wavelengths) != c.Bands {
		return fmt.Errorf("%w: %d wavelengths for %d bands", ErrShape, len(c.Wavelengths), c.Bands)
	}
	return nil
}

// pixelOffset returns the Data offset of pixel (x, y).
func (c *Cube) pixelOffset(x, y int) int { return (y*c.Width + x) * c.Bands }

// Spectrum returns the pixel vector at (x, y) sharing the cube's storage.
func (c *Cube) Spectrum(x, y int) []float32 {
	off := c.pixelOffset(x, y)
	return c.Data[off : off+c.Bands]
}

// PixelInto copies the spectrum at (x, y) into dst (converted to float64)
// and returns dst. It panics if len(dst) != Bands.
func (c *Cube) PixelInto(x, y int, dst linalg.Vector) linalg.Vector {
	if len(dst) != c.Bands {
		panic("hsi: PixelInto destination length mismatch")
	}
	s := c.Spectrum(x, y)
	for i, v := range s {
		dst[i] = float64(v)
	}
	return dst
}

// Pixel returns a freshly allocated float64 pixel vector at (x, y).
func (c *Cube) Pixel(x, y int) linalg.Vector {
	return c.PixelInto(x, y, make(linalg.Vector, c.Bands))
}

// SetPixel writes a float64 pixel vector into (x, y).
// It panics if len(v) != Bands.
func (c *Cube) SetPixel(x, y int, v linalg.Vector) {
	if len(v) != c.Bands {
		panic("hsi: SetPixel length mismatch")
	}
	s := c.Spectrum(x, y)
	for i, f := range v {
		s[i] = float32(f)
	}
}

// PixelAt returns pixel i (row-major order) as a float64 vector, filling dst.
func (c *Cube) PixelAt(i int, dst linalg.Vector) linalg.Vector {
	if len(dst) != c.Bands {
		panic("hsi: PixelAt destination length mismatch")
	}
	off := i * c.Bands
	s := c.Data[off : off+c.Bands]
	for j, v := range s {
		dst[j] = float64(v)
	}
	return dst
}

// Band extracts band b as a Width×Height row-major float64 plane; useful
// for rendering individual frames (paper Figure 2).
func (c *Cube) Band(b int) ([]float64, error) {
	if b < 0 || b >= c.Bands {
		return nil, fmt.Errorf("%w: band %d of %d", ErrShape, b, c.Bands)
	}
	plane := make([]float64, c.Width*c.Height)
	for i := range plane {
		plane[i] = float64(c.Data[i*c.Bands+b])
	}
	return plane, nil
}

// NearestBand returns the band index whose wavelength is closest to nm.
// It returns an error if the cube has no wavelength table.
func (c *Cube) NearestBand(nm float64) (int, error) {
	if len(c.Wavelengths) == 0 {
		return 0, errors.New("hsi: cube has no wavelength table")
	}
	best, bestDist := 0, -1.0
	for i, w := range c.Wavelengths {
		d := w - nm
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, nil
}

// Clone returns a deep copy of the cube.
func (c *Cube) Clone() *Cube {
	d := &Cube{Width: c.Width, Height: c.Height, Bands: c.Bands}
	d.Data = make([]float32, len(c.Data))
	copy(d.Data, c.Data)
	if c.Wavelengths != nil {
		d.Wavelengths = make([]float64, len(c.Wavelengths))
		copy(d.Wavelengths, c.Wavelengths)
	}
	return d
}

// Equal reports whether two cubes have identical geometry and samples
// within tol.
func (c *Cube) Equal(o *Cube, tol float32) bool {
	if c.Width != o.Width || c.Height != o.Height || c.Bands != o.Bands {
		return false
	}
	for i, v := range c.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// MeanVector computes the per-band mean over all pixels — step 3 of the
// paper's algorithm when run without spectral screening.
func (c *Cube) MeanVector() linalg.Vector {
	mean := make(linalg.Vector, c.Bands)
	for i := 0; i < c.Pixels(); i++ {
		off := i * c.Bands
		for b := 0; b < c.Bands; b++ {
			mean[b] += float64(c.Data[off+b])
		}
	}
	n := float64(c.Pixels())
	for b := range mean {
		mean[b] /= n
	}
	return mean
}

func (c *Cube) String() string {
	return fmt.Sprintf("Cube(%dx%dx%d)", c.Width, c.Height, c.Bands)
}
