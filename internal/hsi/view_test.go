package hsi

import (
	"testing"

	"resilientfusion/internal/linalg"
)

func viewTestCube(t *testing.T) *Cube {
	t.Helper()
	c := MustNewCube(5, 3, 4)
	for i := range c.Data {
		c.Data[i] = float32(i)*0.5 - 7
	}
	return c
}

func TestPixelMatrixMatchesPixelAt(t *testing.T) {
	c := viewTestCube(t)
	m := c.PixelMatrix()
	if m.Rows != c.Pixels() || m.Cols != c.Bands {
		t.Fatalf("matrix shape %dx%d", m.Rows, m.Cols)
	}
	dst := make(linalg.Vector, c.Bands)
	for i := 0; i < c.Pixels(); i++ {
		if !linalg.Vector(m.Row(i)).Equal(c.PixelAt(i, dst), 0) {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func TestPixelMatrixIntoWindows(t *testing.T) {
	c := viewTestCube(t)
	// A mid-cube window not aligned to rows.
	start, count := 3, 7
	dst := make([]float64, count*c.Bands)
	c.PixelMatrixInto(start, count, dst)
	ref := make(linalg.Vector, c.Bands)
	for p := 0; p < count; p++ {
		c.PixelAt(start+p, ref)
		if !linalg.Vector(dst[p*c.Bands:(p+1)*c.Bands]).Equal(ref, 0) {
			t.Fatalf("window pixel %d differs", p)
		}
	}
	// Empty window is fine.
	c.PixelMatrixInto(c.Pixels(), 0, nil)

	for _, bad := range []func(){
		func() { c.PixelMatrixInto(-1, 2, make([]float64, 2*c.Bands)) },
		func() { c.PixelMatrixInto(0, c.Pixels()+1, make([]float64, (c.Pixels()+1)*c.Bands)) },
		func() { c.PixelMatrixInto(0, 2, make([]float64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad window did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestPixelRowsShareOneBacking(t *testing.T) {
	c := viewTestCube(t)
	rows := c.PixelRows()
	if len(rows) != c.Pixels() {
		t.Fatalf("rows = %d", len(rows))
	}
	dst := make(linalg.Vector, c.Bands)
	for i, r := range rows {
		if !r.Equal(c.PixelAt(i, dst), 0) {
			t.Fatalf("row %d differs", i)
		}
	}
	// Rows are views of one staging matrix, but each is capped at its own
	// end: an append must reallocate, never bleed into the next spectrum.
	for i, r := range rows {
		if cap(r) != c.Bands {
			t.Fatalf("row %d cap = %d, want %d", i, cap(r), c.Bands)
		}
	}
	grown := append(rows[0], 42)
	if len(grown) != c.Bands+1 {
		t.Fatalf("append result len = %d", len(grown))
	}
	ref := make(linalg.Vector, c.Bands)
	if !rows[1].Equal(c.PixelAt(1, ref), 0) {
		t.Fatal("append on row 0 corrupted row 1")
	}
}

func TestSubCubePixelVectorsMatchAndDontAllocPerPixel(t *testing.T) {
	c := viewTestCube(t)
	sub, err := Extract(c, RowRange{Y0: 1, Y1: 3})
	if err != nil {
		t.Fatal(err)
	}
	vs := sub.PixelVectors()
	if len(vs) != sub.Cube.Pixels() {
		t.Fatalf("vectors = %d", len(vs))
	}
	dst := make(linalg.Vector, c.Bands)
	for i, v := range vs {
		if !v.Equal(sub.Cube.PixelAt(i, dst), 0) {
			t.Fatalf("vector %d differs", i)
		}
	}
	allocs := testing.AllocsPerRun(10, func() { _ = sub.PixelVectors() })
	// One staging buffer + one header slice (+ the matrix struct), never
	// one allocation per pixel.
	if allocs > 4 {
		t.Fatalf("PixelVectors allocates %.0f times for %d pixels", allocs, sub.Cube.Pixels())
	}
}
