package hsi

import (
	"bytes"
	"errors"
	"testing"
)

func TestDigestContentAddressing(t *testing.T) {
	a, err := NewCube(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		a.Data[i] = float32(i)
	}
	b, err := NewCube(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	copy(b.Data, a.Data)

	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("equal cubes digest differently: %s vs %s", da, db)
	}
	if da2, _ := a.Digest(); da2 != da {
		t.Fatal("digest not stable across calls")
	}

	b.Data[0] += 1
	if db2, _ := b.Digest(); db2 == da {
		t.Fatal("sample change did not change digest")
	}

	// Shape participates even when the flattened data matches.
	c, err := NewCube(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	copy(c.Data, a.Data)
	if dc, _ := c.Digest(); dc == da {
		t.Fatal("shape change did not change digest")
	}

	// The wavelength table participates too.
	a.Wavelengths = []float64{400, 500}
	if dw, _ := a.Digest(); dw == da {
		t.Fatal("wavelength table did not change digest")
	}
}

func TestReadCubeLimit(t *testing.T) {
	c, err := NewCube(8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	// Under the limit: decodes fine.
	if _, err := ReadCubeLimit(bytes.NewReader(enc), c.EncodedSize()); err != nil {
		t.Fatalf("limit == size: %v", err)
	}
	// Claimed size over the limit: rejected from the header alone, even
	// though only 20 bytes are present.
	if _, err := ReadCubeLimit(bytes.NewReader(enc[:20]), 64); !errors.Is(err, ErrCubeTooLarge) {
		t.Fatalf("oversize claim err = %v", err)
	}
	// limit <= 0 disables the bound.
	if _, err := ReadCubeLimit(bytes.NewReader(enc), 0); err != nil {
		t.Fatalf("no limit: %v", err)
	}
}
