package hsi

import (
	"fmt"

	"resilientfusion/internal/linalg"
)

// RowRange identifies a horizontal slab of a cube: rows [Y0, Y1).
// The manager/worker decomposition in the paper divides the image cube
// into sub-cubes; contiguous row slabs keep each sub-problem's pixels
// contiguous in BIP storage so extraction is a single copy.
type RowRange struct {
	Index  int // sub-cube sequence number, 0-based
	Y0, Y1 int // half-open row interval
}

// Rows returns the number of rows in the range.
func (r RowRange) Rows() int { return r.Y1 - r.Y0 }

func (r RowRange) String() string {
	return fmt.Sprintf("subcube#%d[rows %d:%d)", r.Index, r.Y0, r.Y1)
}

// Partition splits height rows into parts contiguous, balanced RowRanges.
// The first (height mod parts) ranges get one extra row. If parts exceeds
// height, the trailing ranges are empty — callers should size granularity
// sensibly, but empty ranges are handled throughout (they produce empty
// sub-problems).
func Partition(height, parts int) []RowRange {
	if parts <= 0 || height < 0 {
		return nil
	}
	out := make([]RowRange, parts)
	base := height / parts
	extra := height % parts
	y := 0
	for i := 0; i < parts; i++ {
		rows := base
		if i < extra {
			rows++
		}
		out[i] = RowRange{Index: i, Y0: y, Y1: y + rows}
		y += rows
	}
	return out
}

// SubCube is an extracted slab of a parent cube, carrying its own copy of
// the samples so it can be serialized and shipped to a worker.
type SubCube struct {
	Range RowRange
	Cube  *Cube // Height = Range.Rows()
}

// Extract copies the rows of rr out of c into a standalone SubCube.
func Extract(c *Cube, rr RowRange) (*SubCube, error) {
	if rr.Y0 < 0 || rr.Y1 > c.Height || rr.Y0 > rr.Y1 {
		return nil, fmt.Errorf("%w: extract rows [%d,%d) of height %d", ErrShape, rr.Y0, rr.Y1, c.Height)
	}
	rows := rr.Rows()
	sub := &Cube{
		Width:  c.Width,
		Height: rows,
		Bands:  c.Bands,
		Data:   make([]float32, c.Width*rows*c.Bands),
	}
	if c.Wavelengths != nil {
		sub.Wavelengths = append([]float64(nil), c.Wavelengths...)
	}
	start := rr.Y0 * c.Width * c.Bands
	copy(sub.Data, c.Data[start:start+len(sub.Data)])
	return &SubCube{Range: rr, Cube: sub}, nil
}

// Insert copies the SubCube's samples back into the matching rows of dst.
// It is the inverse of Extract and is used by the manager to assemble
// transformed results.
func (s *SubCube) Insert(dst *Cube) error {
	if dst.Width != s.Cube.Width || dst.Bands != s.Cube.Bands {
		return fmt.Errorf("%w: insert %s into %s", ErrShape, s.Cube, dst)
	}
	if s.Range.Y0 < 0 || s.Range.Y1 > dst.Height || s.Range.Rows() != s.Cube.Height {
		return fmt.Errorf("%w: insert rows [%d,%d) into height %d", ErrShape, s.Range.Y0, s.Range.Y1, dst.Height)
	}
	start := s.Range.Y0 * dst.Width * dst.Bands
	copy(dst.Data[start:start+len(s.Cube.Data)], s.Cube.Data)
	return nil
}

// PixelVectors returns all pixel vectors of the sub-cube as float64
// vectors, in row-major order. Used by screening and covariance steps.
// The vectors are views over one staging buffer (see Cube.PixelRows), so
// building them costs two allocations, not one per pixel.
func (s *SubCube) PixelVectors() []linalg.Vector {
	return s.Cube.PixelRows()
}
