package hsi

import (
	"fmt"
	"math/rand"
)

// SceneSpec configures the synthetic HYDICE-like scene generator.
type SceneSpec struct {
	Width, Height int
	Bands         int
	Seed          int64

	// NoiseSigma is the additive Gaussian sensor noise in counts
	// (full scale 4095). HYDICE-era SNR suggests a few counts.
	NoiseSigma float64
	// Illumination is the amplitude of the smooth multiplicative
	// illumination field (0 disables it).
	Illumination float64
	// OpenVehicles is the number of mechanized vehicles placed in the
	// open field; CamouflagedVehicles are placed under netting in the
	// lower-left forest, as in the paper's Figure 3 description.
	OpenVehicles        int
	CamouflagedVehicles int
	// SpectralVariability is the amplitude of smooth per-pixel spectral
	// *direction* changes: a moisture field that modulates water-band
	// absorption depth and a wavelength tilt field. Real HYDICE scenes
	// have substantial within-class variability — it is what gives the
	// screening phase a non-trivial unique set. 0 disables.
	SpectralVariability float64
}

// DefaultSceneSpec mirrors the paper's experimental cube: 320×320 pixels.
// Bands defaults to 210 (the full HYDICE channel count); the performance
// experiments in §4 used the 105-band half cube, which callers get by
// setting Bands: 105.
func DefaultSceneSpec() SceneSpec {
	return SceneSpec{
		Width:               320,
		Height:              320,
		Bands:               210,
		Seed:                1,
		NoiseSigma:          6,
		Illumination:        0.12,
		OpenVehicles:        2,
		CamouflagedVehicles: 1,
		SpectralVariability: 0.12,
	}
}

// Scene bundles a generated cube with its ground truth.
type Scene struct {
	Cube  *Cube
	Truth []Material // len Width*Height, row-major
	Spec  SceneSpec
}

// TruthAt returns the ground-truth material at (x, y).
func (s *Scene) TruthAt(x, y int) Material { return s.Truth[y*s.Cube.Width+x] }

// GenerateScene builds a deterministic synthetic foliated scene:
// forest background, an open field with a dirt road, mechanized vehicles
// in the open, and a camouflaged vehicle in the lower-left quadrant.
// Identical specs produce identical cubes.
func GenerateScene(spec SceneSpec) (*Scene, error) {
	if spec.Width <= 0 || spec.Height <= 0 || spec.Bands <= 0 {
		return nil, fmt.Errorf("%w: scene %dx%dx%d", ErrShape, spec.Width, spec.Height, spec.Bands)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	w, h := spec.Width, spec.Height

	truth := layoutScene(spec, rng)

	cube := MustNewCube(w, h, spec.Bands)
	cube.Wavelengths = DefaultWavelengths(spec.Bands)

	// Pre-sample dry and wet signature variants per material: the wet
	// variant has full-depth leaf-water absorption, the dry variant half
	// depth. Pixels interpolate by a smooth moisture field, which moves
	// the spectral *direction*, not just the brightness — exactly the
	// within-class variability that gives screening a non-trivial
	// unique set on real HYDICE scenes.
	drySigs := make([][]float64, numMaterials)
	wetSigs := make([][]float64, numMaterials)
	for _, m := range Materials() {
		drySigs[m] = signatureMoisture(m, cube.Wavelengths, 0.5)
		wetSigs[m] = signatureMoisture(m, cube.Wavelengths, 1.0)
	}
	// tiltShape is a normalized wavelength ramp in [-0.5, 0.5].
	tiltShape := make([]float64, spec.Bands)
	if spec.Bands > 1 {
		for b, wl := range cube.Wavelengths {
			tiltShape[b] = (wl-cube.Wavelengths[0])/(cube.Wavelengths[spec.Bands-1]-cube.Wavelengths[0]) - 0.5
		}
	}

	// Variability fields. Illumination is landscape-scale; moisture,
	// tilt and mixing are deliberately fine-grained (a few pixels) so
	// that any sub-cube slab samples the full within-class variability —
	// per-part unique sets then saturate and total screening work is
	// independent of the decomposition granularity, matching the paper's
	// fixed-work scaling methodology.
	illum := newValueNoise(rng, w, h, 24)
	texture := newValueNoise(rng, w, h, 6)
	moisture := newValueNoise(rng, w, h, 6)
	tilt := newValueNoise(rng, w, h, 5)

	sv := spec.SpectralVariability
	mixing := newValueNoise(rng, w, h, 6)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m := truth[y*w+x]
			dry, wet := drySigs[m], wetSigs[m]
			bright := 1.0
			if spec.Illumination > 0 {
				bright += spec.Illumination * illum.at(x, y)
			}
			// Within-class brightness texture: smooth ±6%.
			bright *= 1 + 0.06*texture.at(x, y)
			wetFrac, a, mixFrac := 1.0, 0.0, 0.0
			var mixDry, mixWet []float64
			if sv > 0 {
				// Discrete variant classes rather than a continuum:
				// real scenes have a bounded set of within-class
				// variants (species, leaf age, soil type), so each
				// material contributes a bounded number of unique-set
				// members — any reasonably sized sub-cube rediscovers
				// the same variants, making total screening work nearly
				// independent of the decomposition granularity.
				wetFrac = 0.7 + 0.6*quantize(moisture.at(x, y), 3) // [0.1, 1.3] in 4 steps
				a = 2 * sv * quantize(tilt.at(x, y), 3)
				// Sub-pixel mixing near material boundaries: blend with
				// the material a few pixels away (GSD-scale mixing).
				ox, oy := minInt(x+3, w-1), minInt(y+3, h-1)
				if other := truth[oy*w+ox]; other != m {
					mixFrac = 0.35 * absF(quantize(mixing.at(x, y), 3))
					mixDry, mixWet = drySigs[other], wetSigs[other]
				}
			}
			px := cube.Spectrum(x, y)
			for b := range px {
				base := dry[b] + (wet[b]-dry[b])*wetFrac
				if mixFrac > 0 {
					mixed := mixDry[b] + (mixWet[b]-mixDry[b])*wetFrac
					base = base*(1-mixFrac) + mixed*mixFrac
				}
				v := base*bright*(1+a*tiltShape[b]) + rng.NormFloat64()*spec.NoiseSigma
				if v < 0 {
					v = 0
				}
				px[b] = float32(v)
			}
		}
	}
	return &Scene{Cube: cube, Truth: truth, Spec: spec}, nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// quantize snaps v ∈ [-1, 1] to one of levels+1 evenly spaced values.
func quantize(v float64, levels int) float64 {
	if levels <= 0 {
		return v
	}
	q := (v + 1) / 2 * float64(levels)
	i := int(q + 0.5)
	if i > levels {
		i = levels
	}
	return float64(i)/float64(levels)*2 - 1
}

// layoutScene paints the ground-truth material map.
func layoutScene(spec SceneSpec, rng *rand.Rand) []Material {
	w, h := spec.Width, spec.Height
	truth := make([]Material, w*h)

	// Forest background with clearings from thresholded smooth noise.
	canopy := newValueNoise(rng, w, h, 40)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if canopy.at(x, y) > 0.55 {
				truth[y*w+x] = MaterialField
			} else {
				truth[y*w+x] = MaterialForest
			}
		}
	}

	// Open field occupying the upper-right quadrant-ish region.
	fx0, fy0 := int(0.55*float64(w)), int(0.1*float64(h))
	fx1, fy1 := int(0.95*float64(w)), int(0.5*float64(h))
	fillRect(truth, w, fx0, fy0, fx1, fy1, MaterialField)

	// Dirt road crossing the scene diagonally.
	for y := 0; y < h; y++ {
		cx := int(float64(w)*0.2 + 0.4*float64(y))
		for dx := -3; dx <= 3; dx++ {
			x := cx + dx
			if x >= 0 && x < w {
				truth[y*w+x] = MaterialRoad
			}
		}
	}

	// Shadowed forest edge south of the field.
	fillRect(truth, w, fx0, fy1, fx1, minInt(fy1+6, h), MaterialShadow)

	// Vehicles in the open field (paper: "mechanized vehicles sitting in
	// open fields"). ~8×5 pixel footprint at 1–2 m GSD.
	for i := 0; i < spec.OpenVehicles; i++ {
		vx := fx0 + 8 + rng.Intn(maxInt(1, fx1-fx0-24))
		vy := fy0 + 8 + rng.Intn(maxInt(1, fy1-fy0-16))
		fillRect(truth, w, vx, vy, vx+8, vy+5, MaterialVehicle)
	}

	// Camouflaged vehicle in the lower-left corner (paper Figure 3: "the
	// camouflaged vehicle in the lower left corner"). The net extends past
	// the vehicle footprint.
	for i := 0; i < spec.CamouflagedVehicles; i++ {
		cx := int(0.08*float64(w)) + i*20
		cy := int(0.82 * float64(h))
		fillRect(truth, w, cx-4, cy-4, cx+12, cy+9, MaterialCamouflage)
		fillRect(truth, w, cx, cy, cx+8, cy+5, MaterialVehicle)
		// The vehicle peeks out only partially: re-cover most of it.
		fillRect(truth, w, cx+1, cy+1, cx+7, cy+4, MaterialCamouflage)
	}
	return truth
}

func fillRect(truth []Material, w int, x0, y0, x1, y1 int, m Material) {
	h := len(truth) / w
	for y := maxInt(0, y0); y < minInt(y1, h); y++ {
		for x := maxInt(0, x0); x < minInt(x1, w); x++ {
			truth[y*w+x] = m
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// valueNoise is smooth 2-D value noise in [-1, 1]: a coarse lattice of
// random values, bilinearly interpolated with smoothstep easing.
type valueNoise struct {
	gw, gh int
	cell   float64
	grid   []float64
}

func newValueNoise(rng *rand.Rand, w, h, cellSize int) *valueNoise {
	if cellSize < 1 {
		cellSize = 1
	}
	gw := w/cellSize + 2
	gh := h/cellSize + 2
	g := make([]float64, gw*gh)
	for i := range g {
		g[i] = rng.Float64()*2 - 1
	}
	return &valueNoise{gw: gw, gh: gh, cell: float64(cellSize), grid: g}
}

func (n *valueNoise) at(x, y int) float64 {
	fx := float64(x) / n.cell
	fy := float64(y) / n.cell
	ix, iy := int(fx), int(fy)
	tx, ty := smoothstep(fx-float64(ix)), smoothstep(fy-float64(iy))
	v00 := n.grid[iy*n.gw+ix]
	v10 := n.grid[iy*n.gw+ix+1]
	v01 := n.grid[(iy+1)*n.gw+ix]
	v11 := n.grid[(iy+1)*n.gw+ix+1]
	return lerp(lerp(v00, v10, tx), lerp(v01, v11, tx), ty)
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// SceneMaterialFractions reports the fraction of pixels per material —
// useful for validating that targets are genuinely rare (the condition
// spectral screening is designed for).
func (s *Scene) SceneMaterialFractions() map[Material]float64 {
	counts := make(map[Material]int, numMaterials)
	for _, m := range s.Truth {
		counts[m]++
	}
	n := float64(len(s.Truth))
	out := make(map[Material]float64, len(counts))
	for m, c := range counts {
		// Keyed writes of exact integer counts: order-independent, so
		// the map range stays inside the detsource contract.
		out[m] = float64(c) / n
	}
	return out
}
