package hsi

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionCoversExactly(t *testing.T) {
	f := func(height uint16, parts uint8) bool {
		h := int(height%500) + 1
		p := int(parts%40) + 1
		rs := Partition(h, p)
		if len(rs) != p {
			return false
		}
		y := 0
		for i, r := range rs {
			if r.Index != i || r.Y0 != y || r.Y1 < r.Y0 {
				return false
			}
			y = r.Y1
		}
		if y != h {
			return false
		}
		// Balanced: sizes differ by at most one row.
		mn, mx := rs[0].Rows(), rs[0].Rows()
		for _, r := range rs {
			if r.Rows() < mn {
				mn = r.Rows()
			}
			if r.Rows() > mx {
				mx = r.Rows()
			}
		}
		return mx-mn <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	if Partition(10, 0) != nil {
		t.Fatal("parts=0 should be nil")
	}
	if Partition(-1, 3) != nil {
		t.Fatal("negative height should be nil")
	}
	rs := Partition(3, 5) // more parts than rows
	if len(rs) != 5 {
		t.Fatalf("len = %d", len(rs))
	}
	total := 0
	for _, r := range rs {
		total += r.Rows()
	}
	if total != 3 {
		t.Fatalf("total rows %d", total)
	}
}

func TestExtractInsertRoundTrip(t *testing.T) {
	c := testCube(t, 8, 10, 4, 11)
	dst := MustNewCube(8, 10, 4)
	for _, rr := range Partition(c.Height, 3) {
		sub, err := Extract(c, rr)
		if err != nil {
			t.Fatal(err)
		}
		if sub.Cube.Height != rr.Rows() || sub.Cube.Width != c.Width || sub.Cube.Bands != c.Bands {
			t.Fatalf("sub shape %v", sub.Cube)
		}
		if err := sub.Insert(dst); err != nil {
			t.Fatal(err)
		}
	}
	if !dst.Equal(c, 0) {
		t.Fatal("Extract+Insert did not reassemble the cube")
	}
}

func TestExtractCopies(t *testing.T) {
	c := testCube(t, 4, 4, 2, 12)
	sub, err := Extract(c, RowRange{Index: 0, Y0: 1, Y1: 3})
	if err != nil {
		t.Fatal(err)
	}
	orig := c.Spectrum(0, 1)[0]
	sub.Cube.Data[0] = orig + 100
	if c.Spectrum(0, 1)[0] != orig {
		t.Fatal("Extract shares storage with parent")
	}
}

func TestExtractErrors(t *testing.T) {
	c := testCube(t, 4, 4, 2, 13)
	for _, rr := range []RowRange{{Y0: -1, Y1: 2}, {Y0: 0, Y1: 5}, {Y0: 3, Y1: 2}} {
		if _, err := Extract(c, rr); !errors.Is(err, ErrShape) {
			t.Errorf("Extract(%v) err = %v", rr, err)
		}
	}
}

func TestInsertErrors(t *testing.T) {
	c := testCube(t, 4, 4, 2, 14)
	sub, err := Extract(c, RowRange{Y0: 0, Y1: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Insert(MustNewCube(5, 4, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("width mismatch: %v", err)
	}
	if err := sub.Insert(MustNewCube(4, 1, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("height overflow: %v", err)
	}
	sub.Range.Y1 = 3 // now inconsistent with sub.Cube.Height
	if err := sub.Insert(MustNewCube(4, 4, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("inconsistent range: %v", err)
	}
}

func TestPixelVectors(t *testing.T) {
	c := testCube(t, 3, 2, 4, 15)
	sub, err := Extract(c, RowRange{Y0: 0, Y1: 2})
	if err != nil {
		t.Fatal(err)
	}
	vs := sub.PixelVectors()
	if len(vs) != 6 {
		t.Fatalf("len = %d", len(vs))
	}
	if !vs[4].Equal(c.Pixel(1, 1), 0) {
		t.Fatal("PixelVectors order mismatch")
	}
}

func TestEmptyRowRange(t *testing.T) {
	c := testCube(t, 3, 3, 2, 16)
	sub, err := Extract(c, RowRange{Y0: 2, Y1: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Cube.Height != 0 || len(sub.PixelVectors()) != 0 {
		t.Fatal("empty range should produce an empty sub-cube")
	}
	if err := sub.Insert(c.Clone()); err != nil {
		t.Fatalf("inserting empty range: %v", err)
	}
}

func TestRowRangeString(t *testing.T) {
	got := RowRange{Index: 2, Y0: 10, Y1: 20}.String()
	if got != "subcube#2[rows 10:20)" {
		t.Fatalf("String = %q", got)
	}
}

func TestPartitionRandomizedReassembly(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		h := 1 + rng.Intn(40)
		p := 1 + rng.Intn(10)
		c := testCube(t, 3, h, 2, int64(trial))
		dst := MustNewCube(3, h, 2)
		for _, rr := range Partition(h, p) {
			sub, err := Extract(c, rr)
			if err != nil {
				t.Fatal(err)
			}
			if err := sub.Insert(dst); err != nil {
				t.Fatal(err)
			}
		}
		if !dst.Equal(c, 0) {
			t.Fatalf("reassembly failed h=%d p=%d", h, p)
		}
	}
}
