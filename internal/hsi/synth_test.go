package hsi

import (
	"errors"
	"math"
	"testing"

	"resilientfusion/internal/linalg"
)

func smallSpec() SceneSpec {
	return SceneSpec{
		Width: 64, Height: 64, Bands: 32, Seed: 3,
		NoiseSigma: 4, Illumination: 0.1,
		OpenVehicles: 1, CamouflagedVehicles: 1,
	}
}

func TestGenerateSceneDeterministic(t *testing.T) {
	a, err := GenerateScene(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateScene(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Cube.Equal(b.Cube, 0) {
		t.Fatal("same seed produced different cubes")
	}
	for i := range a.Truth {
		if a.Truth[i] != b.Truth[i] {
			t.Fatal("same seed produced different truth")
		}
	}
	spec2 := smallSpec()
	spec2.Seed = 4
	c, err := GenerateScene(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cube.Equal(c.Cube, 0) {
		t.Fatal("different seeds produced identical cubes")
	}
}

func TestGenerateSceneShape(t *testing.T) {
	s, err := GenerateScene(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cube.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Truth) != 64*64 {
		t.Fatalf("truth len %d", len(s.Truth))
	}
	if s.Cube.Wavelengths[0] != 400 || s.Cube.Wavelengths[31] != 2500 {
		t.Fatalf("wavelength range %g..%g", s.Cube.Wavelengths[0], s.Cube.Wavelengths[31])
	}
	if _, err := GenerateScene(SceneSpec{}); !errors.Is(err, ErrShape) {
		t.Fatalf("empty spec err = %v", err)
	}
}

func TestSceneContainsExpectedMaterials(t *testing.T) {
	s, err := GenerateScene(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	frac := s.SceneMaterialFractions()
	if frac[MaterialForest] < 0.2 {
		t.Fatalf("forest fraction %.3f too small", frac[MaterialForest])
	}
	if frac[MaterialVehicle] == 0 {
		t.Fatal("no vehicle pixels")
	}
	if frac[MaterialCamouflage] == 0 {
		t.Fatal("no camouflage pixels")
	}
	// Vehicles must be rare — that's the premise of spectral screening.
	if frac[MaterialVehicle] > 0.05 {
		t.Fatalf("vehicle fraction %.3f not rare", frac[MaterialVehicle])
	}
}

func TestSceneSamplesInSensorRange(t *testing.T) {
	s, err := GenerateScene(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Cube.Data {
		if v < 0 || float64(v) > sensorFullScale*1.5 || math.IsNaN(float64(v)) {
			t.Fatalf("sample %d out of range: %g", i, v)
		}
	}
}

func TestVehicleSignatureDistinctFromVegetation(t *testing.T) {
	wl := DefaultWavelengths(64)
	veh := SignatureFor(MaterialVehicle, wl)
	forest := SignatureFor(MaterialForest, wl)
	field := SignatureFor(MaterialField, wl)
	camo := SignatureFor(MaterialCamouflage, wl)

	if a := linalg.Angle(veh, forest); a < 0.15 {
		t.Fatalf("vehicle-forest angle %.3f too small for screening to work", a)
	}
	// Camouflage mimics vegetation: closer to forest than bare vehicle is.
	if linalg.Angle(camo, forest) >= linalg.Angle(veh, forest) {
		t.Fatal("camouflage should be spectrally closer to forest than vehicle is")
	}
	// Vegetation red edge: NIR (~860nm) much brighter than red (~670nm).
	redIdx, nirIdx := nearestIdx(wl, 670), nearestIdx(wl, 860)
	if forest[nirIdx] < 2*forest[redIdx] {
		t.Fatalf("forest lacks red edge: red=%.1f nir=%.1f", forest[redIdx], forest[nirIdx])
	}
	// Vehicle paint has no red edge.
	if veh[nirIdx] > 2*veh[redIdx] {
		t.Fatalf("vehicle shows red edge: red=%.1f nir=%.1f", veh[redIdx], veh[nirIdx])
	}
	_ = field
}

func nearestIdx(wl []float64, nm float64) int {
	best, bd := 0, math.Inf(1)
	for i, w := range wl {
		if d := math.Abs(w - nm); d < bd {
			best, bd = i, d
		}
	}
	return best
}

func TestTruthAt(t *testing.T) {
	s, err := GenerateScene(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for y := 0; y < 64 && !found; y++ {
		for x := 0; x < 64 && !found; x++ {
			if s.TruthAt(x, y) == MaterialVehicle {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("TruthAt never reported a vehicle")
	}
}

func TestMaterialString(t *testing.T) {
	for _, m := range Materials() {
		if m.String() == "unknown" {
			t.Fatalf("material %d has no name", m)
		}
	}
	if Material(200).String() != "unknown" {
		t.Fatal("out-of-range material should be unknown")
	}
}

func TestSignatureReflectanceBounds(t *testing.T) {
	wl := DefaultWavelengths(210)
	for _, m := range Materials() {
		sig := SignatureFor(m, wl)
		for i, v := range sig {
			if v < 0 || v > sensorFullScale {
				t.Fatalf("%v band %d out of range: %g", m, i, v)
			}
		}
		if sig.Norm() == 0 {
			t.Fatalf("%v signature is zero", m)
		}
	}
}

func TestValueNoiseSmoothAndBounded(t *testing.T) {
	s, err := GenerateScene(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Indirect smoothness check: neighbouring pixels of the same material
	// should have highly similar spectra (angle below the screening
	// threshold scale).
	c := s.Cube
	pairs, close := 0, 0
	for y := 0; y < c.Height-1; y++ {
		for x := 0; x < c.Width-1; x++ {
			if s.TruthAt(x, y) != s.TruthAt(x+1, y) {
				continue
			}
			a := linalg.Angle(c.Pixel(x, y), c.Pixel(x+1, y))
			pairs++
			if a < 0.1 {
				close++
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no same-material neighbour pairs")
	}
	if float64(close)/float64(pairs) < 0.95 {
		t.Fatalf("only %d/%d same-material neighbours spectrally close", close, pairs)
	}
}
