package hsi

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	c := testCube(t, 7, 5, 9, 21)
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if n != c.EncodedSize() {
		t.Fatalf("EncodedSize = %d, actual %d", c.EncodedSize(), n)
	}
	d, err := ReadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(d, 0) {
		t.Fatal("decoded cube differs")
	}
	if len(d.Wavelengths) != c.Bands || d.Wavelengths[0] != c.Wavelengths[0] {
		t.Fatal("wavelengths lost in roundtrip")
	}
}

func TestCodecRoundTripNoWavelengths(t *testing.T) {
	c := testCube(t, 3, 3, 3, 22)
	c.Wavelengths = nil
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Wavelengths != nil {
		t.Fatal("wavelengths should be absent")
	}
	if !c.Equal(d, 0) {
		t.Fatal("decoded cube differs")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXX................"), // bad magic
		append([]byte("HSIC"), bytes.Repeat([]byte{9}, 16)...), // absurd dims / version
	}
	for i, b := range cases {
		if _, err := ReadCube(bytes.NewReader(b)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("case %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

func TestCodecTruncatedData(t *testing.T) {
	c := testCube(t, 4, 4, 4, 23)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadCube(bytes.NewReader(trunc)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated err = %v", err)
	}
}

func TestCodecWriteRejectsInvalidCube(t *testing.T) {
	c := testCube(t, 2, 2, 2, 24)
	c.Data = c.Data[:3]
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	c := testCube(t, 6, 4, 3, 25)
	path := filepath.Join(t.TempDir(), "cube.hsic")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(d, 0) {
		t.Fatal("file roundtrip differs")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.hsic")); err == nil {
		t.Fatal("loading missing file should error")
	}
}

func TestCodecSpecialFloats(t *testing.T) {
	c := MustNewCube(2, 1, 2)
	c.Data[0] = 0
	c.Data[1] = -0
	c.Data[2] = 1.5e38
	c.Data[3] = 1e-38
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Data {
		if c.Data[i] != d.Data[i] {
			t.Fatalf("sample %d: %g != %g", i, c.Data[i], d.Data[i])
		}
	}
}
