package hsi

import (
	"crypto/sha256"
	"encoding/hex"
)

// Digest returns the SHA-256 digest (hex) of the cube's canonical HSIC
// encoding. Two cubes digest equal exactly when WriteTo produces
// identical bytes — same dimensions, wavelength table and samples — which
// is what the service layer's content-addressed result cache keys on.
func (c *Cube) Digest() (string, error) {
	h := sha256.New()
	if _, err := c.WriteTo(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
