package hsi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary cube format ("HSIC"):
//
//	magic   [4]byte  "HSIC"
//	version uint16   currently 1
//	flags   uint16   bit 0: wavelength table present
//	width   uint32
//	height  uint32
//	bands   uint32
//	[wavelengths]  bands × float64 (if flag bit 0)
//	data    width·height·bands × float32
//
// All fields little-endian. The format is deliberately trivial: the paper's
// pipeline streams raw sub-cubes between machines, so the on-disk format
// mirrors the wire representation.

var (
	cubeMagic = [4]byte{'H', 'S', 'I', 'C'}

	// ErrBadFormat is returned when decoding malformed cube bytes.
	ErrBadFormat = errors.New("hsi: bad cube format")
	// ErrCubeTooLarge is returned by ReadCubeLimit when the header's
	// claimed dimensions exceed the caller's size bound.
	ErrCubeTooLarge = errors.New("hsi: cube exceeds size limit")
)

const (
	codecVersion       = 1
	flagHasWavelengths = 1 << 0
	// maxReasonableDim guards against allocating absurd buffers from
	// corrupt headers.
	maxReasonableDim = 1 << 20
)

// WriteTo serializes the cube to w, returning the number of bytes written.
// It is the one-shot form of StreamWriter: the bytes are identical.
func (c *Cube) WriteTo(w io.Writer) (int64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	sw, err := NewStreamWriter(w, c.Width, c.Height, c.Bands, c.Wavelengths)
	if err != nil {
		return 0, err
	}
	if err := sw.WriteSamples(c.Data); err != nil {
		return sw.Written(), err
	}
	return sw.Written(), sw.Close()
}

// StreamWriter encodes a cube in HSIC format incrementally: the header is
// emitted up front from the declared geometry and samples are appended in
// BIP order in caller-chosen slices (typically bounded row windows), so a
// scene larger than memory can be encoded — or digested — without ever
// materializing its full sample array. Cube.WriteTo is implemented over
// it; the two produce bit-identical bytes for the same geometry and data.
type StreamWriter struct {
	bw        *bufio.Writer
	remaining int   // samples still owed before Close
	n         int64 // bytes written (counting bufio-buffered ones)
	buf       []byte
}

// NewStreamWriter writes the HSIC header for the given geometry and
// returns a writer expecting exactly width·height·bands samples.
// wavelengths may be nil; when present its length must equal bands.
func NewStreamWriter(w io.Writer, width, height, bands int, wavelengths []float64) (*StreamWriter, error) {
	if width <= 0 || height <= 0 || bands <= 0 {
		return nil, fmt.Errorf("%w: %dx%dx%d", ErrShape, width, height, bands)
	}
	if wavelengths != nil && len(wavelengths) != bands {
		return nil, fmt.Errorf("%w: %d wavelengths for %d bands", ErrShape, len(wavelengths), bands)
	}
	sw := &StreamWriter{
		bw:        bufio.NewWriterSize(w, 1<<16),
		remaining: width * height * bands,
	}

	var flags uint16
	if wavelengths != nil {
		flags |= flagHasWavelengths
	}
	hdr := make([]byte, 0, 20)
	hdr = append(hdr, cubeMagic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, codecVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, flags)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(width))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(height))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(bands))
	if _, err := sw.bw.Write(hdr); err != nil {
		return nil, err
	}
	sw.n += int64(len(hdr))

	if wavelengths != nil {
		buf := make([]byte, 8*len(wavelengths))
		for i, wl := range wavelengths {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(wl))
		}
		if _, err := sw.bw.Write(buf); err != nil {
			return nil, err
		}
		sw.n += int64(len(buf))
	}
	return sw, nil
}

// WriteSamples appends samples in BIP order. Callers may slice the stream
// arbitrarily (per row window, per tile); only the concatenated order
// matters. Writing more samples than the declared geometry holds is an
// error.
func (sw *StreamWriter) WriteSamples(samples []float32) error {
	if len(samples) > sw.remaining {
		return fmt.Errorf("%w: %d samples past the declared geometry", ErrShape, len(samples)-sw.remaining)
	}
	sw.remaining -= len(samples)
	// Encode in chunks to bound the scratch buffer.
	const chunk = 1 << 14
	if sw.buf == nil {
		sw.buf = make([]byte, 4*chunk)
	}
	for off := 0; off < len(samples); off += chunk {
		end := min(off+chunk, len(samples))
		b := sw.buf[:4*(end-off)]
		for i, v := range samples[off:end] {
			binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
		}
		if _, err := sw.bw.Write(b); err != nil {
			return err
		}
		sw.n += int64(len(b))
	}
	return nil
}

// Written returns the number of bytes encoded so far.
func (sw *StreamWriter) Written() int64 { return sw.n }

// Close flushes the encoder, erroring if the sample count does not match
// the declared geometry.
func (sw *StreamWriter) Close() error {
	if sw.remaining != 0 {
		return fmt.Errorf("%w: %d samples short of the declared geometry", ErrShape, sw.remaining)
	}
	return sw.bw.Flush()
}

// ReadCube deserializes a cube from r.
func ReadCube(r io.Reader) (*Cube, error) { return ReadCubeLimit(r, 0) }

// ReadCubeLimit is ReadCube with an upper bound on the encoded cube
// size, checked against the header's *claimed* dimensions before any
// sample buffer is allocated. Callers decoding untrusted input (the
// fusion service's upload path) need this: a 20-byte header can
// otherwise demand a multi-terabyte allocation. limit <= 0 disables the
// bound.
func ReadCubeLimit(r io.Reader, limit int64) (*Cube, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, 20)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	if [4]byte(hdr[:4]) != cubeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	flags := binary.LittleEndian.Uint16(hdr[6:])
	width := int(binary.LittleEndian.Uint32(hdr[8:]))
	height := int(binary.LittleEndian.Uint32(hdr[12:]))
	bands := int(binary.LittleEndian.Uint32(hdr[16:]))
	if width <= 0 || height <= 0 || bands <= 0 ||
		width > maxReasonableDim || height > maxReasonableDim || bands > maxReasonableDim {
		return nil, fmt.Errorf("%w: dims %dx%dx%d", ErrBadFormat, width, height, bands)
	}
	if limit > 0 {
		// Each dim is at most 2^20, so the product cannot overflow int64.
		claimed := int64(20) + 4*int64(width)*int64(height)*int64(bands)
		if flags&flagHasWavelengths != 0 {
			claimed += 8 * int64(bands)
		}
		if claimed > limit {
			return nil, fmt.Errorf("%w: header claims %d bytes, limit %d", ErrCubeTooLarge, claimed, limit)
		}
	}

	c := &Cube{Width: width, Height: height, Bands: bands}
	if flags&flagHasWavelengths != 0 {
		buf := make([]byte, 8*bands)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: wavelengths: %v", ErrBadFormat, err)
		}
		c.Wavelengths = make([]float64, bands)
		for i := range c.Wavelengths {
			c.Wavelengths[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}

	c.Data = make([]float32, width*height*bands)
	const chunk = 1 << 14
	buf := make([]byte, 4*chunk)
	for off := 0; off < len(c.Data); off += chunk {
		end := off + chunk
		if end > len(c.Data) {
			end = len(c.Data)
		}
		b := buf[:4*(end-off)]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("%w: samples: %v", ErrBadFormat, err)
		}
		for i := range c.Data[off:end] {
			c.Data[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
		}
	}
	return c, nil
}

// SaveFile writes the cube to path in HSIC format.
func (c *Cube) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a cube in HSIC format from path.
func LoadFile(path string) (*Cube, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCube(f)
}

// EncodedSize returns the exact number of bytes WriteTo will produce,
// used by the performance model to charge network transfer costs.
func (c *Cube) EncodedSize() int64 {
	n := int64(20)
	if c.Wavelengths != nil {
		n += int64(8 * len(c.Wavelengths))
	}
	return n + int64(4*len(c.Data))
}
