package hsi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary cube format ("HSIC"):
//
//	magic   [4]byte  "HSIC"
//	version uint16   currently 1
//	flags   uint16   bit 0: wavelength table present
//	width   uint32
//	height  uint32
//	bands   uint32
//	[wavelengths]  bands × float64 (if flag bit 0)
//	data    width·height·bands × float32
//
// All fields little-endian. The format is deliberately trivial: the paper's
// pipeline streams raw sub-cubes between machines, so the on-disk format
// mirrors the wire representation.

var (
	cubeMagic = [4]byte{'H', 'S', 'I', 'C'}

	// ErrBadFormat is returned when decoding malformed cube bytes.
	ErrBadFormat = errors.New("hsi: bad cube format")
	// ErrCubeTooLarge is returned by ReadCubeLimit when the header's
	// claimed dimensions exceed the caller's size bound.
	ErrCubeTooLarge = errors.New("hsi: cube exceeds size limit")
)

const (
	codecVersion       = 1
	flagHasWavelengths = 1 << 0
	// maxReasonableDim guards against allocating absurd buffers from
	// corrupt headers.
	maxReasonableDim = 1 << 20
)

// WriteTo serializes the cube to w, returning the number of bytes written.
func (c *Cube) WriteTo(w io.Writer) (int64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64

	var flags uint16
	if c.Wavelengths != nil {
		flags |= flagHasWavelengths
	}
	hdr := make([]byte, 0, 20)
	hdr = append(hdr, cubeMagic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, codecVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, flags)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(c.Width))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(c.Height))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(c.Bands))
	if _, err := bw.Write(hdr); err != nil {
		return n, err
	}
	n += int64(len(hdr))

	if c.Wavelengths != nil {
		buf := make([]byte, 8*len(c.Wavelengths))
		for i, wl := range c.Wavelengths {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(wl))
		}
		if _, err := bw.Write(buf); err != nil {
			return n, err
		}
		n += int64(len(buf))
	}

	// Stream sample data in chunks to bound the scratch buffer.
	const chunk = 1 << 14
	buf := make([]byte, 4*chunk)
	for off := 0; off < len(c.Data); off += chunk {
		end := off + chunk
		if end > len(c.Data) {
			end = len(c.Data)
		}
		b := buf[:4*(end-off)]
		for i, v := range c.Data[off:end] {
			binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
		}
		if _, err := bw.Write(b); err != nil {
			return n, err
		}
		n += int64(len(b))
	}
	return n, bw.Flush()
}

// ReadCube deserializes a cube from r.
func ReadCube(r io.Reader) (*Cube, error) { return ReadCubeLimit(r, 0) }

// ReadCubeLimit is ReadCube with an upper bound on the encoded cube
// size, checked against the header's *claimed* dimensions before any
// sample buffer is allocated. Callers decoding untrusted input (the
// fusion service's upload path) need this: a 20-byte header can
// otherwise demand a multi-terabyte allocation. limit <= 0 disables the
// bound.
func ReadCubeLimit(r io.Reader, limit int64) (*Cube, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, 20)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	if [4]byte(hdr[:4]) != cubeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	flags := binary.LittleEndian.Uint16(hdr[6:])
	width := int(binary.LittleEndian.Uint32(hdr[8:]))
	height := int(binary.LittleEndian.Uint32(hdr[12:]))
	bands := int(binary.LittleEndian.Uint32(hdr[16:]))
	if width <= 0 || height <= 0 || bands <= 0 ||
		width > maxReasonableDim || height > maxReasonableDim || bands > maxReasonableDim {
		return nil, fmt.Errorf("%w: dims %dx%dx%d", ErrBadFormat, width, height, bands)
	}
	if limit > 0 {
		// Each dim is at most 2^20, so the product cannot overflow int64.
		claimed := int64(20) + 4*int64(width)*int64(height)*int64(bands)
		if flags&flagHasWavelengths != 0 {
			claimed += 8 * int64(bands)
		}
		if claimed > limit {
			return nil, fmt.Errorf("%w: header claims %d bytes, limit %d", ErrCubeTooLarge, claimed, limit)
		}
	}

	c := &Cube{Width: width, Height: height, Bands: bands}
	if flags&flagHasWavelengths != 0 {
		buf := make([]byte, 8*bands)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: wavelengths: %v", ErrBadFormat, err)
		}
		c.Wavelengths = make([]float64, bands)
		for i := range c.Wavelengths {
			c.Wavelengths[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}

	c.Data = make([]float32, width*height*bands)
	const chunk = 1 << 14
	buf := make([]byte, 4*chunk)
	for off := 0; off < len(c.Data); off += chunk {
		end := off + chunk
		if end > len(c.Data) {
			end = len(c.Data)
		}
		b := buf[:4*(end-off)]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("%w: samples: %v", ErrBadFormat, err)
		}
		for i := range c.Data[off:end] {
			c.Data[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
		}
	}
	return c, nil
}

// SaveFile writes the cube to path in HSIC format.
func (c *Cube) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a cube in HSIC format from path.
func LoadFile(path string) (*Cube, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCube(f)
}

// EncodedSize returns the exact number of bytes WriteTo will produce,
// used by the performance model to charge network transfer costs.
func (c *Cube) EncodedSize() int64 {
	n := int64(20)
	if c.Wavelengths != nil {
		n += int64(8 * len(c.Wavelengths))
	}
	return n + int64(4*len(c.Data))
}
