package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -5, 6}
	if got, want := v.Dot(w), 1.0*4-2*5+3*6; got != want {
		t.Fatalf("Dot = %g, want %g", got, want)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestNorm(t *testing.T) {
	cases := []struct {
		v    Vector
		want float64
	}{
		{Vector{}, 0},
		{Vector{0, 0, 0}, 0},
		{Vector{3, 4}, 5},
		{Vector{-3, 4}, 5},
		{Vector{1e200, 1e200}, 1e200 * math.Sqrt2}, // no overflow
		{Vector{2}, 2},
	}
	for _, c := range cases {
		if got := c.v.Norm(); math.Abs(got-c.want) > 1e-9*c.want {
			t.Errorf("Norm(%v) = %g, want %g", c.v, got, c.want)
		}
	}
}

func TestNormMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		v := Vector(xs)
		var ss float64
		for _, x := range xs {
			ss += x * x
		}
		want := math.Sqrt(ss)
		got := v.Norm()
		if math.IsInf(ss, 0) || math.IsNaN(ss) {
			return true // naive overflowed; scaled version is the whole point
		}
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{10, 20, 30}
	dst := NewVector(3)

	v.Add(w, dst)
	if !dst.Equal(Vector{11, 22, 33}, 0) {
		t.Errorf("Add = %v", dst)
	}
	v.Sub(w, dst)
	if !dst.Equal(Vector{-9, -18, -27}, 0) {
		t.Errorf("Sub = %v", dst)
	}
	v.Scale(2, dst)
	if !dst.Equal(Vector{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", dst)
	}
	v.AXPY(3, dst) // dst = 2v + 3v = 5v
	if !dst.Equal(Vector{5, 10, 15}, 0) {
		t.Errorf("AXPY = %v", dst)
	}
}

func TestAddAliasesSafely(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Add(v, v)
	if !v.Equal(Vector{2, 4, 6}, 0) {
		t.Errorf("aliased Add = %v", v)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 0, 4}
	n := v.Normalize()
	if n != 5 {
		t.Fatalf("Normalize returned %g, want 5", n)
	}
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Fatalf("normalized norm = %g", v.Norm())
	}
	z := Vector{0, 0}
	if got := z.Normalize(); got != 0 {
		t.Fatalf("zero Normalize = %g", got)
	}
	if !z.Equal(Vector{0, 0}, 0) {
		t.Fatal("zero vector modified by Normalize")
	}
}

func TestClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAngle(t *testing.T) {
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{1, 0}, Vector{1, 0}, 0},
		{Vector{1, 0}, Vector{0, 1}, math.Pi / 2},
		{Vector{1, 0}, Vector{-1, 0}, math.Pi},
		{Vector{1, 0}, Vector{5, 0}, 0},           // scale invariance
		{Vector{0, 0}, Vector{1, 0}, math.Pi / 2}, // zero vector convention
		{Vector{1, 1}, Vector{1, 1}, 0},           // clamp against rounding
		{Vector{2, 2, 2}, Vector{-3, -3, -3}, math.Pi},
	}
	for _, c := range cases {
		// acos has unbounded derivative near ±1, so allow 1e-7.
		if got := Angle(c.a, c.b); math.Abs(got-c.want) > 1e-7 {
			t.Errorf("Angle(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestAngleProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(16)
		a, b := make(Vector, n), make(Vector, n)
		for j := 0; j < n; j++ {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		th := Angle(a, b)
		if th < 0 || th > math.Pi {
			t.Fatalf("Angle out of range: %g", th)
		}
		if sym := Angle(b, a); math.Abs(sym-th) > 1e-12 {
			t.Fatalf("Angle not symmetric: %g vs %g", th, sym)
		}
		// Positive scaling leaves the angle unchanged.
		s := 0.5 + rng.Float64()*10
		if got := Angle(a.Scale(s, a.Clone()), b); math.Abs(got-th) > 1e-9 {
			t.Fatalf("Angle not scale invariant: %g vs %g", got, th)
		}
	}
}
