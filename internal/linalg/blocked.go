package linalg

import "fmt"

// Blocked dense kernels. All of them share one numeric contract: every
// output element accumulates its terms in strictly ascending index order
// of the reduction dimension, exactly like the naive three-loop
// reference. Tiling therefore changes only the memory access pattern,
// never the floating-point result, so callers may switch freely between
// the naive and blocked forms (and between serial and parallel shard
// execution) without perturbing a single bit — the invariant the
// distributed/sequential equality tests rely on.

const (
	// gemmBlockK is the reduction-panel depth of MulInto: a panel of
	// blockK rows of b is streamed against a block of rows of a while the
	// corresponding dst rows stay hot.
	gemmBlockK = 256
	// gemmBlockI is how many rows of a (and dst) are processed per panel.
	gemmBlockI = 64
	// syrkTileJ is the update-tile width of SyrkUpperInto's wide-matrix
	// path: the accumulator slab i×[jt, jt+syrkTileJ) stays resident
	// while the panel streams through it.
	syrkTileJ = 128
	// syrkWideCols is the column count past which SyrkUpperInto switches
	// from the matrix-resident rank-1 loop to the tiled path (the n×n
	// accumulator no longer fits low-level cache).
	syrkWideCols = 96
)

// MulInto computes dst = a·b as a blocked GEMM: b is consumed in
// reduction panels of gemmBlockK rows against gemmBlockI-row blocks of a,
// so each dst row is revisited once per panel instead of once per scalar
// a element. dst must not alias a or b. Per-element accumulation order
// over k is ascending (see the package comment above), so MulInto is
// bit-identical to Mul for finite inputs.
func MulInto(dst, a, b *Matrix) error {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		return fmt.Errorf("%w: MulInto %dx%d by %dx%d into %dx%d",
			ErrDimension, a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols)
	}
	if sameData(dst, a) || sameData(dst, b) {
		return fmt.Errorf("%w: MulInto destination aliases an operand", ErrDimension)
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	K, N := a.Cols, b.Cols
	for kb := 0; kb < K; kb += gemmBlockK {
		kEnd := kb + gemmBlockK
		if kEnd > K {
			kEnd = K
		}
		for ib := 0; ib < a.Rows; ib += gemmBlockI {
			iEnd := ib + gemmBlockI
			if iEnd > a.Rows {
				iEnd = a.Rows
			}
			for i := ib; i < iEnd; i++ {
				arow := a.Data[i*K+kb : i*K+kEnd]
				orow := dst.Data[i*N : (i+1)*N]
				for kk, aik := range arow {
					brow := b.Data[(kb+kk)*N : (kb+kk+1)*N]
					for j, bv := range brow {
						orow[j] += aik * bv
					}
				}
			}
		}
	}
	return nil
}

// MulTransBInto computes dst = a·btᵀ where bt holds B transposed — the
// fast path when the right operand is naturally stored row-per-column
// (e.g. a PCT transform whose rows are component filters): every inner
// product runs over two contiguous rows, with no strided access at all.
// dst must not alias a or bt. dst[i][j] accumulates a.Row(i)·bt.Row(j) in
// ascending k order, so the result is bit-identical to MulInto(dst, a, b)
// with b = btᵀ.
func MulTransBInto(dst, a, bt *Matrix) error {
	if a.Cols != bt.Cols || dst.Rows != a.Rows || dst.Cols != bt.Rows {
		return fmt.Errorf("%w: MulTransBInto %dx%d by %dx%d-transposed into %dx%d",
			ErrDimension, a.Rows, a.Cols, bt.Rows, bt.Cols, dst.Rows, dst.Cols)
	}
	if sameData(dst, a) || sameData(dst, bt) {
		return fmt.Errorf("%w: MulTransBInto destination aliases an operand", ErrDimension)
	}
	K := a.Cols
	if bt.Rows == 3 && K > 0 {
		// The dominant fusion shape: project onto 3 principal components.
		// One pass per pixel with three interleaved accumulators — three
		// independent dependency chains instead of three back-to-back
		// latency-bound dots. Each accumulator still sums in ascending k
		// order, so the bits match the generic path exactly.
		b0 := bt.Data[0:K:K]
		b1 := bt.Data[K : 2*K : 2*K]
		b2 := bt.Data[2*K : 3*K : 3*K]
		for i := 0; i < a.Rows; i++ {
			arow := a.Data[i*K : (i+1)*K]
			var s0, s1, s2 float64
			for k, v := range arow {
				s0 += v * b0[k]
				s1 += v * b1[k]
				s2 += v * b2[k]
			}
			orow := dst.Data[i*3 : (i+1)*3]
			orow[0], orow[1], orow[2] = s0, s1, s2
		}
		return nil
	}
	for i := 0; i < a.Rows; i++ {
		arow := Vector(a.Data[i*K : (i+1)*K])
		orow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range orow {
			orow[j] = arow.Dot(Vector(bt.Data[j*K : (j+1)*K]))
		}
	}
	return nil
}

// SyrkUpperInto accumulates dst += aᵀ·a over the upper triangle only
// (dst[i][j] for j >= i), leaving the strict lower triangle untouched —
// half the flops of a full symmetric rank-k update. a is a panel of
// rank-1 contributions, one per row; dst must be a.Cols×a.Cols and must
// not alias a. Callers accumulate any number of panels and then call
// MirrorUpper once. Each element's terms are added in ascending row order
// of a, so the mirrored result is bit-identical to a full-square rank-1
// loop over the same rows (products commute; the order is shared).
//
// Two schedules, one numeric result: narrow matrices use a rank-1 update
// with the accumulator cache-resident; wide ones tile the update into
// syrkTileJ-wide slabs so each slab is revisited per panel row from
// registers, not memory.
func SyrkUpperInto(dst, a *Matrix) error {
	n := a.Cols
	if dst.Rows != n || dst.Cols != n {
		return fmt.Errorf("%w: SyrkUpperInto %dx%d into %dx%d",
			ErrDimension, a.Rows, a.Cols, dst.Rows, dst.Cols)
	}
	if sameData(dst, a) {
		return fmt.Errorf("%w: SyrkUpperInto destination aliases the panel", ErrDimension)
	}
	if n <= syrkWideCols {
		for p := 0; p < a.Rows; p++ {
			row := a.Data[p*n : (p+1)*n]
			for i, vi := range row {
				tail := row[i:]
				drow := dst.Data[i*n+i : (i+1)*n][:len(tail)]
				for j, vj := range tail {
					drow[j] += vi * vj
				}
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		for jt := i; jt < n; jt += syrkTileJ {
			jEnd := jt + syrkTileJ
			if jEnd > n {
				jEnd = n
			}
			drow := dst.Data[i*n+jt : i*n+jEnd]
			for p := 0; p < a.Rows; p++ {
				vi := a.Data[p*n+i]
				row := a.Data[p*n+jt : p*n+jEnd]
				for j, vj := range row {
					drow[j] += vi * vj
				}
			}
		}
	}
	return nil
}

// SyrkInto is the one-shot convenience form: dst += aᵀ·a with the lower
// triangle refreshed from the upper afterwards. Valid when dst is
// symmetric on entry (e.g. zero); panel-accumulating callers should use
// SyrkUpperInto and mirror once at the end instead.
func SyrkInto(dst, a *Matrix) error {
	if err := SyrkUpperInto(dst, a); err != nil {
		return err
	}
	dst.MirrorUpper()
	return nil
}

// MirrorUpper copies the strict upper triangle onto the lower one,
// completing a matrix whose updates only touched j >= i. It panics if m
// is not square.
func (m *Matrix) MirrorUpper() {
	if m.Rows != m.Cols {
		panic("linalg: MirrorUpper on non-square matrix")
	}
	n := m.Cols
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Data[j*n+i] = m.Data[i*n+j]
		}
	}
}

// sameData reports whether two matrices share the same backing array.
func sameData(a, b *Matrix) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}
