package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: A = V·diag(λ)·Vᵀ.
// Values are sorted in descending order; Vectors.Col(k) is the unit
// eigenvector for Values[k]. Descending order is what the PCT needs: the
// high-variance principal components come first.
type Eigen struct {
	Values  Vector
	Vectors *Matrix // n×n, eigenvectors in columns
}

// ErrNotSymmetric is returned when an eigensolver is given a matrix that is
// not symmetric within the solver's tolerance.
var ErrNotSymmetric = errors.New("linalg: matrix is not symmetric")

// ErrNoConvergence is returned when an iterative eigensolver fails to
// converge within its iteration budget.
var ErrNoConvergence = errors.New("linalg: eigensolver did not converge")

// EigenSolver selects the symmetric eigendecomposition algorithm.
type EigenSolver int

const (
	// SolverTridiagQL is Householder tridiagonalization followed by the
	// implicit-shift QL iteration: O(n³) with a small constant, the default.
	SolverTridiagQL EigenSolver = iota
	// SolverJacobi is the cyclic Jacobi rotation method: slower but
	// exceptionally robust; used to cross-check TridiagQL in tests.
	SolverJacobi
)

func (s EigenSolver) String() string {
	switch s {
	case SolverTridiagQL:
		return "tridiag-ql"
	case SolverJacobi:
		return "jacobi"
	default:
		return fmt.Sprintf("EigenSolver(%d)", int(s))
	}
}

// EigenSym computes the eigendecomposition of symmetric matrix a using the
// default solver. a is not modified.
func EigenSym(a *Matrix) (*Eigen, error) { return EigenSymWith(a, SolverTridiagQL) }

// EigenSymWith computes the eigendecomposition of symmetric matrix a with an
// explicit solver choice. a is not modified.
func EigenSymWith(a *Matrix, solver EigenSolver) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrDimension, a.Rows, a.Cols)
	}
	symTol := 1e-8 * (1 + a.FrobeniusNorm())
	if !a.IsSymmetric(symTol) {
		return nil, ErrNotSymmetric
	}
	var e *Eigen
	var err error
	switch solver {
	case SolverJacobi:
		e, err = jacobiEigen(a.Clone())
	case SolverTridiagQL:
		e, err = tridiagQLEigen(a.Clone())
	default:
		return nil, fmt.Errorf("linalg: unknown eigensolver %v", solver)
	}
	if err != nil {
		return nil, err
	}
	e.sortDescending()
	e.canonicalizeSigns()
	return e, nil
}

// sortDescending reorders eigenpairs so Values is non-increasing.
func (e *Eigen) sortDescending() {
	n := len(e.Values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return e.Values[idx[a]] > e.Values[idx[b]] })

	vals := make(Vector, n)
	vecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		vals[newCol] = e.Values[oldCol]
		for r := 0; r < n; r++ {
			vecs.Set(r, newCol, e.Vectors.At(r, oldCol))
		}
	}
	e.Values, e.Vectors = vals, vecs
}

// canonicalizeSigns flips each eigenvector so its largest-magnitude entry is
// positive. Eigenvectors are only defined up to sign; fixing a convention
// makes distributed and sequential runs produce identical transforms.
func (e *Eigen) canonicalizeSigns() {
	n := len(e.Values)
	for c := 0; c < n; c++ {
		best, bestAbs := 0.0, -1.0
		for r := 0; r < n; r++ {
			if a := math.Abs(e.Vectors.At(r, c)); a > bestAbs {
				bestAbs, best = a, e.Vectors.At(r, c)
			}
		}
		if best < 0 {
			for r := 0; r < n; r++ {
				e.Vectors.Set(r, c, -e.Vectors.At(r, c))
			}
		}
	}
}

// TransformMatrix returns the k×n PCT transformation matrix: the first k
// eigenvectors as rows, so y = T·(x-mean) projects a pixel vector onto the
// leading k principal components.
func (e *Eigen) TransformMatrix(k int) (*Matrix, error) {
	n := len(e.Values)
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: TransformMatrix k=%d of n=%d", ErrDimension, k, n)
	}
	t := NewMatrix(k, n)
	for r := 0; r < k; r++ {
		for c := 0; c < n; c++ {
			t.Set(r, c, e.Vectors.At(c, r)) // row r = eigenvector r
		}
	}
	return t, nil
}

// jacobiEigen runs cyclic Jacobi sweeps on a (which it destroys).
func jacobiEigen(a *Matrix) (*Eigen, error) {
	n := a.Rows
	v := Identity(n)
	if n == 1 {
		return &Eigen{Values: Vector{a.At(0, 0)}, Vectors: v}, nil
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := a.MaxAbsOffDiag()
		if off == 0 {
			break
		}
		// Convergence threshold scaled to the matrix magnitude.
		thresh := 1e-14 * a.FrobeniusNorm()
		if off <= thresh {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) <= thresh/float64(n*n) {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e150 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)

				a.Set(p, p, app-t*apq)
				a.Set(q, q, aqq+t*apq)
				a.Set(p, q, 0)
				a.Set(q, p, 0)
				for i := 0; i < n; i++ {
					if i != p && i != q {
						aip, aiq := a.At(i, p), a.At(i, q)
						a.Set(i, p, aip-s*(aiq+tau*aip))
						a.Set(p, i, a.At(i, p))
						a.Set(i, q, aiq+s*(aip-tau*aiq))
						a.Set(q, i, a.At(i, q))
					}
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, vip-s*(viq+tau*vip))
					v.Set(i, q, viq+s*(vip-tau*viq))
				}
			}
		}
		if sweep == maxSweeps-1 {
			return nil, fmt.Errorf("%w: jacobi after %d sweeps (off-diag %g)", ErrNoConvergence, maxSweeps, a.MaxAbsOffDiag())
		}
	}
	vals := make(Vector, n)
	for i := 0; i < n; i++ {
		vals[i] = a.At(i, i)
	}
	return &Eigen{Values: vals, Vectors: v}, nil
}

// tridiagQLEigen reduces a to tridiagonal form with Householder reflections
// and diagonalizes with implicit-shift QL. a is destroyed; on return it
// holds the accumulated orthogonal transform (eigenvectors in columns).
func tridiagQLEigen(a *Matrix) (*Eigen, error) {
	n := a.Rows
	d := make(Vector, n) // diagonal
	e := make(Vector, n) // sub-diagonal (e[0] unused)
	householderTridiag(a, d, e)
	if err := tqlImplicit(d, e, a); err != nil {
		return nil, err
	}
	return &Eigen{Values: d, Vectors: a}, nil
}

// householderTridiag reduces symmetric a to tridiagonal form, storing the
// diagonal in d and sub-diagonal in e[1:]; a is overwritten with the
// accumulated orthogonal matrix Q such that Qᵀ·A·Q = tridiag(d, e).
func householderTridiag(a *Matrix, d, e Vector) {
	n := a.Rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(a.At(i, k))
			}
			if scale == 0 {
				e[i] = a.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					a.Set(i, k, a.At(i, k)/scale)
					h += a.At(i, k) * a.At(i, k)
				}
				f := a.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				a.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					a.Set(j, i, a.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += a.At(j, k) * a.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += a.At(k, j) * a.At(i, k)
					}
					e[j] = g / h
					f += e[j] * a.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = a.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						a.Set(j, k, a.At(j, k)-f*e[k]-g*a.At(i, k))
					}
				}
			}
		} else {
			e[i] = a.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	// Accumulate transformation matrix.
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += a.At(i, k) * a.At(k, j)
				}
				for k := 0; k <= l; k++ {
					a.Set(k, j, a.At(k, j)-g*a.At(k, i))
				}
			}
		}
		d[i] = a.At(i, i)
		a.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			a.Set(j, i, 0)
			a.Set(i, j, 0)
		}
	}
}

// tqlImplicit diagonalizes a symmetric tridiagonal matrix (diagonal d,
// sub-diagonal e[1:]) with the implicit-shift QL algorithm, accumulating
// rotations into z (the eigenvector matrix).
func tqlImplicit(d, e Vector, z *Matrix) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	const maxIter = 50
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64*dd || math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == maxIter {
				return fmt.Errorf("%w: QL at eigenvalue %d after %d iterations", ErrNoConvergence, l, maxIter)
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < z.Rows; k++ {
					f := z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}
