package linalg

import (
	"errors"
	"math/rand"
	"testing"
)

func randMatrix(seed int64, rows, cols int) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// naiveMul is the scalar i,k,j reference (ascending k per element) the
// blocked kernels are pinned to. Mul itself delegates to MulInto, so the
// reference must live here, not in production code.
func naiveMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += aik * b.At(k, j)
			}
		}
	}
	return out
}

// Blocked GEMM must agree bit-for-bit with the naive reference: the
// per-element reduction order is ascending k in both.
func TestMulIntoMatchesMulExactly(t *testing.T) {
	// Shapes straddling every tile boundary: unit, sub-tile, exact-tile
	// and ragged overshoot in each dimension.
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 2}, {64, 64, 64}, {65, 257, 31},
		{gemmBlockI, gemmBlockK, 7}, {gemmBlockI + 1, gemmBlockK + 1, 3},
		{130, 300, 130},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randMatrix(int64(m*1000+k), m, k)
		b := randMatrix(int64(n*1000+k), k, n)
		want := naiveMul(a, b)
		got := NewMatrix(m, n)
		if err := MulInto(got, a, b); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 0) {
			t.Fatalf("MulInto differs from Mul for %dx%dx%d", m, k, n)
		}
		// Transposed-B fast path over the same operands.
		gotT := NewMatrix(m, n)
		if err := MulTransBInto(gotT, a, b.Transpose()); err != nil {
			t.Fatal(err)
		}
		if !gotT.Equal(want, 0) {
			t.Fatalf("MulTransBInto differs from Mul for %dx%dx%d", m, k, n)
		}
	}
}

func TestMulIntoErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 2) // inner mismatch
	if err := MulInto(NewMatrix(2, 2), a, b); !errors.Is(err, ErrDimension) {
		t.Fatalf("inner mismatch err = %v", err)
	}
	c := NewMatrix(3, 2)
	if err := MulInto(NewMatrix(3, 3), a, c); !errors.Is(err, ErrDimension) {
		t.Fatalf("dst shape err = %v", err)
	}
	sq := randMatrix(9, 4, 4)
	if err := MulInto(sq, sq, NewMatrix(4, 4)); !errors.Is(err, ErrDimension) {
		t.Fatalf("alias err = %v", err)
	}
	if err := MulTransBInto(NewMatrix(2, 4), a, NewMatrix(4, 2)); !errors.Is(err, ErrDimension) {
		t.Fatalf("MulTransBInto mismatch err = %v", err)
	}
}

// SyrkUpperInto + MirrorUpper must reproduce the full-square rank-1 loop
// exactly, on both the narrow (rank-1) and wide (tiled) schedules, and
// across panel splits (the panel boundary is a shared reduction order,
// not a reassociation).
func TestSyrkMatchesAddOuterExactly(t *testing.T) {
	for _, tc := range []struct{ rows, cols int }{
		{1, 1}, {7, 3}, {50, 24}, {9, syrkWideCols}, {33, syrkWideCols + 1},
		{40, 210}, {257, 130},
	} {
		a := randMatrix(int64(tc.rows*31+tc.cols), tc.rows, tc.cols)
		want := NewMatrix(tc.cols, tc.cols)
		for p := 0; p < tc.rows; p++ {
			want.AddOuter(a.Row(p))
		}
		got := NewMatrix(tc.cols, tc.cols)
		if err := SyrkInto(got, a); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 0) {
			t.Fatalf("SyrkInto differs from AddOuter loop for %dx%d", tc.rows, tc.cols)
		}
		// Split into two panels at an odd boundary, mirror once at the end.
		split := tc.rows / 3
		got2 := NewMatrix(tc.cols, tc.cols)
		top := &Matrix{Rows: split, Cols: tc.cols, Data: a.Data[:split*tc.cols]}
		bottom := &Matrix{Rows: tc.rows - split, Cols: tc.cols, Data: a.Data[split*tc.cols:]}
		if err := SyrkUpperInto(got2, top); err != nil {
			t.Fatal(err)
		}
		if err := SyrkUpperInto(got2, bottom); err != nil {
			t.Fatal(err)
		}
		got2.MirrorUpper()
		if !got2.Equal(want, 0) {
			t.Fatalf("panel-split SYRK differs for %dx%d", tc.rows, tc.cols)
		}
	}
}

func TestSyrkErrors(t *testing.T) {
	if err := SyrkUpperInto(NewMatrix(3, 3), NewMatrix(2, 4)); !errors.Is(err, ErrDimension) {
		t.Fatalf("shape err = %v", err)
	}
	sq := NewMatrix(3, 3)
	if err := SyrkUpperInto(sq, sq); !errors.Is(err, ErrDimension) {
		t.Fatalf("alias err = %v", err)
	}
}

func TestMirrorUpper(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 99, 4})
	m.MirrorUpper()
	if m.At(1, 0) != 2 {
		t.Fatalf("lower = %g", m.At(1, 0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MirrorUpper on non-square did not panic")
		}
	}()
	NewMatrix(2, 3).MirrorUpper()
}
