// Package linalg provides the dense linear algebra kernels used by the
// spectral-screening PCT algorithm: vectors, matrices, and symmetric
// eigendecomposition. Everything is float64 and allocation-conscious; the
// hot paths (dot products, outer-product accumulation) are written so the
// compiler can keep them in registers.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// ErrDimension is returned when operand dimensions do not conform.
var ErrDimension = errors.New("linalg: dimension mismatch")

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w.
// It panics if the lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	// Scaled summation avoids overflow for large magnitudes.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		a := math.Abs(x)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Add stores v+w into dst and returns dst. dst may alias v or w.
func (v Vector) Add(w, dst Vector) Vector {
	if len(v) != len(w) || len(v) != len(dst) {
		panic("linalg: Add length mismatch")
	}
	for i := range v {
		dst[i] = v[i] + w[i]
	}
	return dst
}

// Sub stores v-w into dst and returns dst. dst may alias v or w.
func (v Vector) Sub(w, dst Vector) Vector {
	if len(v) != len(w) || len(v) != len(dst) {
		panic("linalg: Sub length mismatch")
	}
	for i := range v {
		dst[i] = v[i] - w[i]
	}
	return dst
}

// Scale stores a*v into dst and returns dst. dst may alias v.
func (v Vector) Scale(a float64, dst Vector) Vector {
	if len(v) != len(dst) {
		panic("linalg: Scale length mismatch")
	}
	for i := range v {
		dst[i] = a * v[i]
	}
	return dst
}

// AXPY accumulates dst += a*v and returns dst.
func (v Vector) AXPY(a float64, dst Vector) Vector {
	if len(v) != len(dst) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range v {
		dst[i] += a * v[i]
	}
	return dst
}

// Normalize scales v in place to unit norm and returns the original norm.
// A zero vector is left unchanged and 0 is returned.
func (v Vector) Normalize() float64 {
	n := v.Norm()
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return n
}

// Equal reports whether v and w agree elementwise within tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Angle returns the angle in radians between v and w:
// arccos(v·w / (|v||w|)), clamped into [0, π] against rounding.
// The angle with a zero vector is defined as π/2 (maximally dissimilar),
// which keeps spectral screening total.
func Angle(v, w Vector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return math.Pi / 2
	}
	c := v.Dot(w) / (nv * nw)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}
