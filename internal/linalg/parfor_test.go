package linalg

import (
	"sync"
	"testing"
)

func TestParallelShardsCoversEachShardOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		for _, shards := range []int{0, 1, 7, 64} {
			var mu sync.Mutex
			seen := make(map[int]int)
			ParallelShards(shards, workers, func(s int) {
				mu.Lock()
				seen[s]++
				mu.Unlock()
			})
			if len(seen) != shards {
				t.Fatalf("workers=%d shards=%d: visited %d shards", workers, shards, len(seen))
			}
			for s, n := range seen {
				if n != 1 {
					t.Fatalf("shard %d visited %d times", s, n)
				}
			}
		}
	}
}

func TestShardGrid(t *testing.T) {
	if got := ShardCount(0, 10); got != 0 {
		t.Fatalf("ShardCount(0) = %d", got)
	}
	if got := ShardCount(25, 10); got != 3 {
		t.Fatalf("ShardCount(25,10) = %d", got)
	}
	covered := 0
	for s := 0; s < ShardCount(25, 10); s++ {
		lo, hi := ShardRange(25, 10, s)
		if lo != s*10 {
			t.Fatalf("shard %d lo = %d", s, lo)
		}
		covered += hi - lo
	}
	if covered != 25 {
		t.Fatalf("shards cover %d of 25 items", covered)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	n := 103
	hits := make([]int, n)
	var mu sync.Mutex
	ParallelFor(n, 16, 4, func(lo, hi int) {
		mu.Lock()
		for i := lo; i < hi; i++ {
			hits[i]++
		}
		mu.Unlock()
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}
