package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestAtSetRowCol(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("At/Set roundtrip failed")
	}
	if got := m.Row(1); got[2] != 42 {
		t.Fatalf("Row = %v", got)
	}
	if got := m.Col(2); got[1] != 42 {
		t.Fatalf("Col = %v", got)
	}
	// Row shares storage; Col copies.
	m.Row(1)[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("Row does not share storage")
	}
	c := m.Col(2)
	c[1] = 100
	if m.At(1, 2) != 7 {
		t.Fatal("Col should copy")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d][%d] = %g", i, j, id.At(i, j))
			}
		}
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := NewMatrixFrom(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul = %v", got)
	}
}

func TestMulDimensionError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrDimension) {
		t.Fatalf("Mul error = %v, want ErrDimension", err)
	}
	if _, err := a.MulVec(NewVector(2)); !errors.Is(err, ErrDimension) {
		t.Fatalf("MulVec error = %v, want ErrDimension", err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 5)
	got, err := a.Mul(Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a, 1e-15) {
		t.Fatal("A·I != A")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 4, 6)
	v := make(Vector, 6)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	got, err := a.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	b := NewMatrixFrom(6, 1, v.Clone())
	prod, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Vector(prod.Data), 1e-12) {
		t.Fatalf("MulVec = %v, Mul column = %v", got, prod.Data)
	}
	dst := NewVector(4)
	a.MulVecInto(v, dst)
	if !dst.Equal(got, 0) {
		t.Fatal("MulVecInto differs from MulVec")
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("Transpose dims %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
	if !a.Transpose().Transpose().Equal(a, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestAddOuterMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make(Vector, 5)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	m := NewMatrix(5, 5)
	m.AddOuter(v)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if math.Abs(m.At(i, j)-v[i]*v[j]) > 1e-15 {
				t.Fatalf("AddOuter[%d][%d] = %g, want %g", i, j, m.At(i, j), v[i]*v[j])
			}
		}
	}
	if !m.IsSymmetric(0) {
		t.Fatal("outer product not symmetric")
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 4, 3})
	m.Symmetrize()
	if !m.IsSymmetric(0) {
		t.Fatal("Symmetrize failed")
	}
	if m.At(0, 1) != 3 {
		t.Fatalf("Symmetrize average = %g, want 3", m.At(0, 1))
	}
}

func TestTraceAndNorms(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{3, -4, 0, 5})
	if got := m.Trace(); got != 8 {
		t.Fatalf("Trace = %g", got)
	}
	if got := m.FrobeniusNorm(); math.Abs(got-math.Sqrt(9+16+25)) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %g", got)
	}
	if got := m.MaxAbsOffDiag(); got != 4 {
		t.Fatalf("MaxAbsOffDiag = %g", got)
	}
}

func TestAddAndScale(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{10, 20, 30, 40})
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(NewMatrixFrom(2, 2, []float64{11, 22, 33, 44}), 0) {
		t.Fatalf("Add = %v", a)
	}
	a.Scale(0.5)
	if !a.Equal(NewMatrixFrom(2, 2, []float64{5.5, 11, 16.5, 22}), 0) {
		t.Fatalf("Scale = %v", a)
	}
	if err := a.Add(NewMatrix(3, 2)); !errors.Is(err, ErrDimension) {
		t.Fatalf("Add dim error = %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewMatrixFrom(1, 2, []float64{1, 2})
	c := a.Clone()
	c.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n1, n2, n3, n4 := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randomMatrix(rng, n1, n2)
		b := randomMatrix(rng, n2, n3)
		c := randomMatrix(rng, n3, n4)
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		if !abc1.Equal(abc2, 1e-9) {
			t.Fatalf("(AB)C != A(BC) for dims %d,%d,%d,%d", n1, n2, n3, n4)
		}
	}
}
