package linalg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelShards runs fn(s) for every shard index s in [0, shards) on up
// to workers goroutines (0 selects GOMAXPROCS; negative forces one
// worker — serial — matching core.Options.Parallelism). Shards are
// claimed dynamically, so callers must make fn independent across shards:
// the canonical pattern is one output slot per shard, combined afterwards
// in ascending shard order. Because the shard grid is fixed by the caller
// (never derived from the worker count), results are bit-identical for
// every workers value — the property the kernel parity tests pin down.
//
// ParallelFor is the [lo, hi) range form of the same contract, and
// ParallelShardsIndexed additionally identifies the executing worker so
// callers can reuse per-worker scratch buffers.
func ParallelShards(shards, workers int, fn func(shard int)) {
	ParallelShardsIndexed(shards, workers, func(_, s int) { fn(s) })
}

// MaxWorkers reports how wide the runtime will actually run goroutines —
// the process-wide answer to "how parallel is Parallelism=0?". This is
// the repo's single GOMAXPROCS/NumCPU read: every other package derives
// automatic worker counts from this resolver (the fusionlint shardgrid
// rule enforces it), so a zero Parallelism can never resolve to
// different widths in different packages.
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// Go runs fn on a new goroutine. It is deliberately trivial: the
// deterministic packages may not contain naked go statements (the
// fusionlint detsource rule), so every background task they start flows
// through this one audit point. Callers own completion — fn must signal
// through a channel the caller drains before the resources fn touches
// are released (scene.PrefetchTiler is the canonical pattern). Kernel
// fan-out must use ParallelShards instead: a fixed shard grid is what
// keeps reductions bit-identical across worker counts.
func Go(fn func()) { go fn() }

// EffectiveWorkers returns the number of workers ParallelShardsIndexed
// will actually run for the given shard count and requested parallelism:
// the size callers use for per-worker scratch arrays.
func EffectiveWorkers(shards, workers int) int {
	if shards <= 0 {
		return 0
	}
	if workers < 0 {
		workers = 1
	} else if workers == 0 {
		workers = MaxWorkers()
	}
	if workers > shards {
		workers = shards
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ParallelShardsIndexed is ParallelShards with the executing worker's
// index (0 <= worker < EffectiveWorkers(shards, workers)) passed to fn.
// A worker runs its shards sequentially, so per-worker scratch indexed by
// the worker id needs no further synchronization.
func ParallelShardsIndexed(shards, workers int, fn func(worker, shard int)) {
	if shards <= 0 {
		return
	}
	workers = EffectiveWorkers(shards, workers)
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(0, s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				s := next.Add(1) - 1
				if s >= int64(shards) {
					return
				}
				fn(worker, int(s))
			}
		}(w)
	}
	wg.Wait()
}

// ShardCount returns the number of fixed-size shards covering n items
// (zero when n <= 0). The shard grid depends only on n and size, which is
// what keeps sharded reductions deterministic under any parallelism.
func ShardCount(n, size int) int {
	if n <= 0 || size <= 0 {
		return 0
	}
	return (n + size - 1) / size
}

// ShardRange returns shard s's half-open item range [lo, hi) for n items
// in shards of the given size.
func ShardRange(n, size, s int) (lo, hi int) {
	lo = s * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ParallelFor splits [0, n) into contiguous chunks of the given size and
// runs fn(lo, hi) for each on up to workers goroutines. Like
// ParallelShards, the chunk grid is a function of n and size only.
func ParallelFor(n, size, workers int, fn func(lo, hi int)) {
	ParallelShards(ShardCount(n, size), workers, func(s int) {
		lo, hi := ShardRange(n, size, s)
		fn(lo, hi)
	})
}
