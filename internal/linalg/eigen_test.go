package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// checkEigen verifies the fundamental eigendecomposition invariants:
// residual, orthonormality, descending order, trace preservation.
func checkEigen(t *testing.T, a *Matrix, e *Eigen) {
	t.Helper()
	n := a.Rows
	scale := 1 + a.FrobeniusNorm()

	// A·v_k = λ_k·v_k
	for k := 0; k < n; k++ {
		v := e.Vectors.Col(k)
		av, err := a.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		lv := v.Scale(e.Values[k], v.Clone())
		if !av.Equal(lv, 1e-8*scale) {
			t.Fatalf("eigenpair %d: |A·v - λ·v| too large (λ=%g)", k, e.Values[k])
		}
	}
	// Vᵀ·V = I
	vt := e.Vectors.Transpose()
	prod, err := vt.Mul(e.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(Identity(n), 1e-8) {
		t.Fatal("eigenvectors not orthonormal")
	}
	// Sorted descending.
	for k := 1; k < n; k++ {
		if e.Values[k] > e.Values[k-1]+1e-10*scale {
			t.Fatalf("eigenvalues not descending: %v", e.Values)
		}
	}
	// Trace preserved.
	var sum float64
	for _, l := range e.Values {
		sum += l
	}
	if math.Abs(sum-a.Trace()) > 1e-8*scale {
		t.Fatalf("trace %g != eigenvalue sum %g", a.Trace(), sum)
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	for _, solver := range []EigenSolver{SolverTridiagQL, SolverJacobi} {
		e, err := EigenSymWith(a, solver)
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if math.Abs(e.Values[0]-3) > 1e-12 || math.Abs(e.Values[1]-1) > 1e-12 {
			t.Fatalf("%v: eigenvalues = %v, want [3 1]", solver, e.Values)
		}
		checkEigen(t, a, e)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{-1, 0, 0, 0, 5, 0, 0, 0, 2})
	e, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{5, 2, -1}
	if !e.Values.Equal(want, 1e-12) {
		t.Fatalf("eigenvalues = %v, want %v", e.Values, want)
	}
	checkEigen(t, a, e)
}

func TestEigenSym1x1(t *testing.T) {
	a := NewMatrixFrom(1, 1, []float64{-7})
	for _, solver := range []EigenSolver{SolverTridiagQL, SolverJacobi} {
		e, err := EigenSymWith(a, solver)
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if e.Values[0] != -7 {
			t.Fatalf("%v: values = %v", solver, e.Values)
		}
		if math.Abs(math.Abs(e.Vectors.At(0, 0))-1) > 1e-15 {
			t.Fatalf("%v: vector = %v", solver, e.Vectors)
		}
	}
}

func TestEigenSymZeroMatrix(t *testing.T) {
	a := NewMatrix(4, 4)
	e, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range e.Values {
		if l != 0 {
			t.Fatalf("zero matrix eigenvalues = %v", e.Values)
		}
	}
	checkEigen(t, a, e)
}

func TestEigenSymRepeatedEigenvalues(t *testing.T) {
	// 2·I has eigenvalue 2 with multiplicity 3.
	a := Identity(3)
	a.Scale(2)
	e, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range e.Values {
		if math.Abs(l-2) > 1e-12 {
			t.Fatalf("eigenvalues = %v", e.Values)
		}
	}
	checkEigen(t, a, e)
}

func TestEigenSymRandomBothSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSymmetric(rng, n)
		for _, solver := range []EigenSolver{SolverTridiagQL, SolverJacobi} {
			e, err := EigenSymWith(a, solver)
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, solver, err)
			}
			checkEigen(t, a, e)
		}
	}
}

func TestEigenSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(10)
		a := randomSymmetric(rng, n)
		e1, err := EigenSymWith(a, SolverTridiagQL)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := EigenSymWith(a, SolverJacobi)
		if err != nil {
			t.Fatal(err)
		}
		if !e1.Values.Equal(e2.Values, 1e-7*(1+a.FrobeniusNorm())) {
			t.Fatalf("solver eigenvalues disagree:\n%v\n%v", e1.Values, e2.Values)
		}
	}
}

func TestEigenSymPSD(t *testing.T) {
	// Covariance-like matrices (B·Bᵀ) must have non-negative eigenvalues.
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		b := randomMatrix(rng, n, n+3)
		bt := b.Transpose()
		a, err := b.Mul(bt)
		if err != nil {
			t.Fatal(err)
		}
		a.Symmetrize()
		e, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range e.Values {
			if l < -1e-8*(1+a.FrobeniusNorm()) {
				t.Fatalf("PSD matrix has negative eigenvalue %g", l)
			}
		}
		checkEigen(t, a, e)
	}
}

func TestEigenSymRejectsNonSymmetric(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	if _, err := EigenSym(a); !errors.Is(err, ErrNotSymmetric) {
		t.Fatalf("err = %v, want ErrNotSymmetric", err)
	}
}

func TestEigenSymRejectsNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := EigenSym(a); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestEigenDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := randomSymmetric(rng, 6)
	before := a.Clone()
	if _, err := EigenSym(a); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(before, 0) {
		t.Fatal("EigenSym modified its input")
	}
}

func TestSignCanonicalization(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := randomSymmetric(rng, 7)
	e, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 7; c++ {
		bestAbs, best := -1.0, 0.0
		for r := 0; r < 7; r++ {
			if ab := math.Abs(e.Vectors.At(r, c)); ab > bestAbs {
				bestAbs, best = ab, e.Vectors.At(r, c)
			}
		}
		if best < 0 {
			t.Fatalf("column %d: largest-magnitude entry is negative", c)
		}
	}
}

func TestTransformMatrix(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	e, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := e.TransformMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Rows != 1 || tm.Cols != 2 {
		t.Fatalf("TransformMatrix dims %dx%d", tm.Rows, tm.Cols)
	}
	// Leading eigenvector of [[2,1],[1,2]] is (1,1)/√2.
	want := 1 / math.Sqrt2
	if math.Abs(tm.At(0, 0)-want) > 1e-12 || math.Abs(tm.At(0, 1)-want) > 1e-12 {
		t.Fatalf("TransformMatrix = %v", tm)
	}
	if _, err := e.TransformMatrix(0); !errors.Is(err, ErrDimension) {
		t.Fatalf("k=0 error = %v", err)
	}
	if _, err := e.TransformMatrix(3); !errors.Is(err, ErrDimension) {
		t.Fatalf("k=3 error = %v", err)
	}
}

func TestEigenLargerMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(47))
	a := randomSymmetric(rng, 64)
	e, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	checkEigen(t, a, e)
}

func TestEigenSolverString(t *testing.T) {
	if SolverTridiagQL.String() != "tridiag-ql" || SolverJacobi.String() != "jacobi" {
		t.Fatal("EigenSolver.String mismatch")
	}
	if EigenSolver(99).String() == "" {
		t.Fatal("unknown solver String empty")
	}
}
