package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, row-major
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a row-major slice, which is used
// directly (not copied). It panics if len(data) != rows*cols.
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: NewMatrixFrom: %d elements for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a Vector sharing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	v := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		v[i] = m.Data[i*m.Cols+j]
	}
	return v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns m·b as a new matrix, computed by the blocked MulInto.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: Mul %dx%d by %dx%d", ErrDimension, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	if err := MulInto(out, m, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVec returns m·v as a new vector.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("%w: MulVec %dx%d by %d", ErrDimension, m.Rows, m.Cols, len(v))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Dot(v)
	}
	return out, nil
}

// MulVecInto computes dst = m·v without allocating. dst must have length
// m.Rows and must not alias v.
func (m *Matrix) MulVecInto(v, dst Vector) {
	if m.Cols != len(v) || m.Rows != len(dst) {
		panic("linalg: MulVecInto dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Dot(v)
	}
}

// Add accumulates m += b elementwise.
func (m *Matrix) Add(b *Matrix) error {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return fmt.Errorf("%w: Add %dx%d and %dx%d", ErrDimension, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	for i, v := range b.Data {
		m.Data[i] += v
	}
	return nil
}

// Zero clears every element in place (reusable accumulator matrices).
func (m *Matrix) Zero() {
	clear(m.Data)
}

// Scale multiplies every element of m by a in place.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// AddOuter accumulates m += v·vᵀ (symmetric rank-1 update).
// It panics if m is not len(v)×len(v).
func (m *Matrix) AddOuter(v Vector) {
	n := len(v)
	if m.Rows != n || m.Cols != n {
		panic("linalg: AddOuter dimension mismatch")
	}
	for i := 0; i < n; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += vi * v[j]
		}
	}
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces m with (m+mᵀ)/2, repairing asymmetry introduced by
// floating-point accumulation order. It panics if m is not square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// Trace returns the sum of diagonal elements. It panics if m is not square.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace on non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 { return Vector(m.Data).Norm() }

// MaxAbsOffDiag returns the largest |m[i][j]|, i≠j. Zero for n<2.
func (m *Matrix) MaxAbsOffDiag() float64 {
	var mx float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i == j {
				continue
			}
			if a := math.Abs(m.At(i, j)); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// Equal reports whether m and b agree elementwise within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	return Vector(m.Data).Equal(Vector(b.Data), tol)
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d [", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < 6; i++ {
		s += "\n "
		for j := 0; j < m.Cols && j < 8; j++ {
			s += fmt.Sprintf("% .4g ", m.At(i, j))
		}
	}
	return s + "\n]"
}
