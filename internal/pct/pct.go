package pct

import (
	"fmt"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/spectral"
)

// Options configures the spectral-screening PCT.
type Options struct {
	// Threshold is the spectral-angle screening threshold in radians;
	// 0 selects spectral.DefaultThreshold.
	Threshold float64
	// Components is the number of principal components to retain;
	// 0 selects 3 (the color-composite default).
	Components int
	// Solver selects the eigendecomposition algorithm.
	Solver linalg.EigenSolver
	// DisableScreening computes statistics over every pixel instead of
	// the unique set — the plain-PCT baseline of ablation A1.
	DisableScreening bool
	// Parallelism is the kernel worker count for the screening,
	// statistics and transform steps (0 selects GOMAXPROCS; negative
	// forces serial, matching core.Options.Parallelism). It is a
	// throughput knob only: every setting produces bit-identical
	// results, because the kernels reduce over a fixed shard grid in a
	// fixed order and the screening engine resolves its batches in the
	// sequential reference's order.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = spectral.DefaultThreshold
	}
	if o.Components == 0 {
		o.Components = 3
	}
	return o
}

// Result is the outcome of the spectral-screening PCT on a cube.
type Result struct {
	// Components is the transformed cube: same width/height, Components
	// bands, band k holding principal component k of each pixel.
	Components *hsi.Cube
	// Mean is the unique-set mean vector (step 3).
	Mean linalg.Vector
	// Covariance is the unique-set covariance matrix (step 5).
	Covariance *linalg.Matrix
	// Eigen is the full eigendecomposition (step 6).
	Eigen *linalg.Eigen
	// Transform is the Components×Bands transformation matrix A.
	Transform *linalg.Matrix
	// UniqueSetSize is K, the number of unique pixel vectors.
	UniqueSetSize int
	// ScreenStats records the screening workload (for the perf model).
	ScreenStats spectral.Stats
}

// Run executes the complete sequential spectral-screening PCT —
// algorithm steps 1–7. Step 8 (color mapping) lives in internal/colormap
// so the components remain available for analysis.
func Run(cube *hsi.Cube, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := cube.Validate(); err != nil {
		return nil, err
	}
	if opts.Components > cube.Bands {
		return nil, fmt.Errorf("%w: %d components from %d bands", linalg.ErrDimension, opts.Components, cube.Bands)
	}

	// Steps 1–2: spectral screening to a unique set (or the whole image
	// when screening is disabled). PixelRows stages the cube once; the
	// per-pixel vectors are views into that staging buffer.
	var (
		statVecs []linalg.Vector
		stats    spectral.Stats
		k        int
	)
	pixels := cube.PixelRows()
	if opts.DisableScreening {
		statVecs = pixels
		k = len(pixels)
	} else {
		// The batched engine is bit-identical to the sequential
		// spectral.Screen reference at every parallelism.
		u, st, err := spectral.ScreenBatched(pixels, opts.Threshold, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		statVecs = u.Members
		stats = st
		k = u.Len()
	}

	// Step 3: mean vector of the unique set.
	mean, err := MeanOfPar(statVecs, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	// Steps 4–5: covariance of the unique set.
	sum, err := CovarianceSumPar(statVecs, mean, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	cov, err := Covariance([]*linalg.Matrix{sum}, k)
	if err != nil {
		return nil, err
	}
	// Step 6: transformation matrix from the eigendecomposition.
	eig, err := linalg.EigenSymWith(cov, opts.Solver)
	if err != nil {
		return nil, err
	}
	transform, err := eig.TransformMatrix(opts.Components)
	if err != nil {
		return nil, err
	}
	// Step 7: transform every pixel of the original cube.
	comps, err := TransformCubePar(cube, transform, mean, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	return &Result{
		Components:    comps,
		Mean:          mean,
		Covariance:    cov,
		Eigen:         eig,
		Transform:     transform,
		UniqueSetSize: k,
		ScreenStats:   stats,
	}, nil
}

// transformBlockPixels is the fixed pixel block of the transform kernels:
// each block is staged to float64 once and pushed through one blocked
// GEMM. Blocks are independent (no reduction), so any parallelism over
// them is trivially deterministic.
const transformBlockPixels = 512

// TransformCube applies Cs = A·(Is − mean) to every pixel — algorithm
// step 7, the kernel each worker runs over its sub-cube — using all
// cores. See TransformCubePar.
func TransformCube(cube *hsi.Cube, transform *linalg.Matrix, mean linalg.Vector) (*hsi.Cube, error) {
	return TransformCubePar(cube, transform, mean, 0)
}

// TransformCubePar is TransformCube with an explicit parallelism degree
// (0 selects GOMAXPROCS). The mean is folded into a per-component bias
// (A·(v−mean) = A·v − A·mean), pixel blocks are staged to float64 and
// projected with one blocked GEMM each — so the whole step is three
// passes over each block (stage, GEMM, bias+narrow) instead of five
// passes per pixel, and allocations scale with the block count, never the
// pixel count.
func TransformCubePar(cube *hsi.Cube, transform *linalg.Matrix, mean linalg.Vector, parallelism int) (*hsi.Cube, error) {
	if transform.Cols != cube.Bands || len(mean) != cube.Bands {
		return nil, fmt.Errorf("%w: transform %dx%d, mean %d, bands %d",
			linalg.ErrDimension, transform.Rows, transform.Cols, len(mean), cube.Bands)
	}
	out, err := hsi.NewCube(cube.Width, cube.Height, transform.Rows)
	if err != nil {
		return nil, err
	}
	transformBlocks(cube, transform, mean, parallelism, func(lo int, pc *linalg.Matrix) {
		off := lo * pc.Cols
		for _, v := range pc.Data {
			out.Data[off] = float32(v)
			off++
		}
	})
	return out, nil
}

// TransformBlocks runs the blocked projection over the cube and hands
// each finished block to sink: lo is the block's first pixel and pc
// holds the final component values (A·v − A·mean, one pixel per row).
// Blocks arrive concurrently when parallelism permits; sinks must only
// touch their own output range, and must not retain pc (it is per-worker
// scratch, overwritten by the next block). Exported for internal/core's
// worker, which fuses color mapping into the sink instead of
// materializing a component cube.
func TransformBlocks(cube *hsi.Cube, transform *linalg.Matrix, mean linalg.Vector, parallelism int,
	sink func(lo int, pc *linalg.Matrix)) error {
	if transform.Cols != cube.Bands || len(mean) != cube.Bands {
		return fmt.Errorf("%w: transform %dx%d, mean %d, bands %d",
			linalg.ErrDimension, transform.Rows, transform.Cols, len(mean), cube.Bands)
	}
	transformBlocks(cube, transform, mean, parallelism, sink)
	return nil
}

func transformBlocks(cube *hsi.Cube, transform *linalg.Matrix, mean linalg.Vector, parallelism int,
	sink func(lo int, pc *linalg.Matrix)) {
	bands, comps := cube.Bands, transform.Rows
	// Fold the mean into a per-component bias: A·(v−mean) = A·v − A·mean,
	// computed once instead of one subtraction pass per pixel.
	bias := make(linalg.Vector, comps)
	for c := 0; c < comps; c++ {
		bias[c] = transform.Row(c).Dot(mean)
	}
	n := cube.Pixels()
	blocks := linalg.ShardCount(n, transformBlockPixels)
	// Per-worker scratch, reused across that worker's blocks: allocations
	// scale with the worker count, not the pixel or block count.
	type scratch struct{ stage, pc *linalg.Matrix }
	scratches := make([]scratch, linalg.EffectiveWorkers(blocks, parallelism))
	fused := comps == 3 && bands > 0
	var f0, f1, f2 linalg.Vector
	if fused {
		f0 = transform.Data[0:bands:bands]
		f1 = transform.Data[bands : 2*bands : 2*bands]
		f2 = transform.Data[2*bands : 3*bands : 3*bands]
	}
	linalg.ParallelShardsIndexed(blocks, parallelism, func(w, b int) {
		sc := &scratches[w]
		if sc.pc == nil {
			sc.pc = linalg.NewMatrix(transformBlockPixels, comps)
		}
		lo, hi := linalg.ShardRange(n, transformBlockPixels, b)
		count := hi - lo
		pc := &linalg.Matrix{Rows: count, Cols: comps, Data: sc.pc.Data[:count*comps]}
		if fused {
			// The dominant 3-component shape: read float32 samples
			// directly — no staging round-trip at all. Each component
			// accumulates two fixed-stride partial sums (even and odd
			// bands) combined as even+odd at the end: six independent
			// dependency chains instead of three latency-bound ones.
			// This IS the canonical reduction order of the 3-component
			// transform (the parity reference implements the same
			// striding), fixed for every block size and parallelism.
			src := cube.Data[lo*bands : hi*bands]
			for p := 0; p < count; p++ {
				// Equal-length reslices let the compiler drop the filter
				// bounds checks inside the accumulation loop.
				row := src[p*bands : (p+1)*bands]
				c0, c1, c2 := f0[:len(row)], f1[:len(row)], f2[:len(row)]
				var e0, e1, e2, o0, o1, o2 float64
				k := 0
				for ; k+1 < len(row); k += 2 {
					fe := float64(row[k])
					fo := float64(row[k+1])
					e0 += fe * c0[k]
					o0 += fo * c0[k+1]
					e1 += fe * c1[k]
					o1 += fo * c1[k+1]
					e2 += fe * c2[k]
					o2 += fo * c2[k+1]
				}
				if k < len(row) {
					f := float64(row[k])
					e0 += f * c0[k]
					e1 += f * c1[k]
					e2 += f * c2[k]
				}
				o := pc.Data[p*3 : p*3+3]
				o[0], o[1], o[2] = e0+o0-bias[0], e1+o1-bias[1], e2+o2-bias[2]
			}
			sink(lo, pc)
			return
		}
		if sc.stage == nil {
			sc.stage = linalg.NewMatrix(transformBlockPixels, bands)
		}
		stage := &linalg.Matrix{Rows: count, Cols: bands, Data: sc.stage.Data[:count*bands]}
		cube.PixelMatrixInto(lo, count, stage.Data)
		// The transform's rows are the component filters — exactly the
		// transposed-B layout, so this is one contiguous pass per block.
		// Shapes are consistent by construction; the call cannot fail.
		_ = linalg.MulTransBInto(pc, stage, transform)
		for r := 0; r < count; r++ {
			prow := pc.Data[r*comps : (r+1)*comps]
			for c := range prow {
				prow[c] -= bias[c]
			}
		}
		sink(lo, pc)
	})
}
