package pct

import (
	"fmt"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/spectral"
)

// Options configures the spectral-screening PCT.
type Options struct {
	// Threshold is the spectral-angle screening threshold in radians;
	// 0 selects spectral.DefaultThreshold.
	Threshold float64
	// Components is the number of principal components to retain;
	// 0 selects 3 (the color-composite default).
	Components int
	// Solver selects the eigendecomposition algorithm.
	Solver linalg.EigenSolver
	// DisableScreening computes statistics over every pixel instead of
	// the unique set — the plain-PCT baseline of ablation A1.
	DisableScreening bool
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = spectral.DefaultThreshold
	}
	if o.Components == 0 {
		o.Components = 3
	}
	return o
}

// Result is the outcome of the spectral-screening PCT on a cube.
type Result struct {
	// Components is the transformed cube: same width/height, Components
	// bands, band k holding principal component k of each pixel.
	Components *hsi.Cube
	// Mean is the unique-set mean vector (step 3).
	Mean linalg.Vector
	// Covariance is the unique-set covariance matrix (step 5).
	Covariance *linalg.Matrix
	// Eigen is the full eigendecomposition (step 6).
	Eigen *linalg.Eigen
	// Transform is the Components×Bands transformation matrix A.
	Transform *linalg.Matrix
	// UniqueSetSize is K, the number of unique pixel vectors.
	UniqueSetSize int
	// ScreenStats records the screening workload (for the perf model).
	ScreenStats spectral.Stats
}

// Run executes the complete sequential spectral-screening PCT —
// algorithm steps 1–7. Step 8 (color mapping) lives in internal/colormap
// so the components remain available for analysis.
func Run(cube *hsi.Cube, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := cube.Validate(); err != nil {
		return nil, err
	}
	if opts.Components > cube.Bands {
		return nil, fmt.Errorf("%w: %d components from %d bands", linalg.ErrDimension, opts.Components, cube.Bands)
	}

	// Steps 1–2: spectral screening to a unique set (or the whole image
	// when screening is disabled).
	var (
		statVecs []linalg.Vector
		stats    spectral.Stats
		k        int
	)
	pixels := allPixelVectors(cube)
	if opts.DisableScreening {
		statVecs = pixels
		k = len(pixels)
	} else {
		u, st, err := spectral.Screen(pixels, opts.Threshold)
		if err != nil {
			return nil, err
		}
		statVecs = u.Members
		stats = st
		k = u.Len()
	}

	// Step 3: mean vector of the unique set.
	mean, err := MeanOf(statVecs)
	if err != nil {
		return nil, err
	}
	// Steps 4–5: covariance of the unique set.
	sum, err := CovarianceSum(statVecs, mean)
	if err != nil {
		return nil, err
	}
	cov, err := Covariance([]*linalg.Matrix{sum}, k)
	if err != nil {
		return nil, err
	}
	// Step 6: transformation matrix from the eigendecomposition.
	eig, err := linalg.EigenSymWith(cov, opts.Solver)
	if err != nil {
		return nil, err
	}
	transform, err := eig.TransformMatrix(opts.Components)
	if err != nil {
		return nil, err
	}
	// Step 7: transform every pixel of the original cube.
	comps, err := TransformCube(cube, transform, mean)
	if err != nil {
		return nil, err
	}
	return &Result{
		Components:    comps,
		Mean:          mean,
		Covariance:    cov,
		Eigen:         eig,
		Transform:     transform,
		UniqueSetSize: k,
		ScreenStats:   stats,
	}, nil
}

// TransformCube applies Cs = A·(Is − mean) to every pixel — algorithm
// step 7, the kernel each worker runs over its sub-cube.
func TransformCube(cube *hsi.Cube, transform *linalg.Matrix, mean linalg.Vector) (*hsi.Cube, error) {
	if transform.Cols != cube.Bands || len(mean) != cube.Bands {
		return nil, fmt.Errorf("%w: transform %dx%d, mean %d, bands %d",
			linalg.ErrDimension, transform.Rows, transform.Cols, len(mean), cube.Bands)
	}
	out, err := hsi.NewCube(cube.Width, cube.Height, transform.Rows)
	if err != nil {
		return nil, err
	}
	in := make(linalg.Vector, cube.Bands)
	dev := make(linalg.Vector, cube.Bands)
	pc := make(linalg.Vector, transform.Rows)
	for i := 0; i < cube.Pixels(); i++ {
		cube.PixelAt(i, in)
		in.Sub(mean, dev)
		transform.MulVecInto(dev, pc)
		off := i * out.Bands
		for b, v := range pc {
			out.Data[off+b] = float32(v)
		}
	}
	return out, nil
}

// allPixelVectors flattens the cube into float64 pixel vectors in
// row-major order.
func allPixelVectors(cube *hsi.Cube) []linalg.Vector {
	n := cube.Pixels()
	out := make([]linalg.Vector, n)
	for i := 0; i < n; i++ {
		out[i] = cube.PixelAt(i, make(linalg.Vector, cube.Bands))
	}
	return out
}
