package pct

import (
	"math/rand"
	"testing"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
)

// Parity tests: the blocked/parallel kernels must match a plain scalar
// reference bit-for-bit. The reference implements the documented fixed
// reduction order with naive loops — contiguous shards of
// statShardPixels combined in ascending shard order, ascending
// accumulation within a shard — and no staging, tiling or goroutines, so
// any reassociation smuggled into the optimized kernels shows up as a
// one-ulp diff here. Sizes deliberately straddle every boundary: 1-pixel
// sets, non-multiples of the panel and block widths, shard-crossing
// sets, and Parallelism far above the work available.

var parityPar = []int{1, 2, 3, 7, 64}

func paritySet(seed int64, count, dim int) []linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]linalg.Vector, count)
	for i := range out {
		v := make(linalg.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 100
		}
		out[i] = v
	}
	return out
}

// refMeanOf is the scalar reference for MeanOfPar's reduction order.
func refMeanOf(vectors []linalg.Vector) linalg.Vector {
	n := len(vectors[0])
	mean := make(linalg.Vector, n)
	for s := 0; s < linalg.ShardCount(len(vectors), statShardPixels); s++ {
		lo, hi := linalg.ShardRange(len(vectors), statShardPixels, s)
		sum := make(linalg.Vector, n)
		for _, v := range vectors[lo:hi] {
			for j, x := range v {
				sum[j] += x
			}
		}
		for j, x := range sum {
			mean[j] += x
		}
	}
	for j := range mean {
		mean[j] *= 1 / float64(len(vectors))
	}
	return mean
}

// refCovarianceSum is the scalar reference for CovarianceSumPar: naive
// full-square rank-1 updates per shard, shard partials combined in
// ascending order.
func refCovarianceSum(vectors []linalg.Vector, mean linalg.Vector) *linalg.Matrix {
	n := len(mean)
	sum := linalg.NewMatrix(n, n)
	for s := 0; s < linalg.ShardCount(len(vectors), statShardPixels); s++ {
		lo, hi := linalg.ShardRange(len(vectors), statShardPixels, s)
		partial := linalg.NewMatrix(n, n)
		dev := make(linalg.Vector, n)
		for _, v := range vectors[lo:hi] {
			for j := range dev {
				dev[j] = v[j] - mean[j]
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					partial.Data[i*n+j] += dev[i] * dev[j]
				}
			}
		}
		for i, x := range partial.Data {
			sum.Data[i] += x
		}
	}
	return sum
}

// refTransformCube is the scalar reference for TransformCubePar's
// bias-folded projection: out[p][c] = A.Row(c)·v − A.Row(c)·mean. The
// bias accumulates in ascending band order. The projection follows the
// kernel's documented canonical order per shape: the 3-component fast
// path sums even-stride and odd-stride partials (each ascending) and
// combines them even+odd; every other component count accumulates in
// plain ascending band order.
func refTransformCube(cube *hsi.Cube, transform *linalg.Matrix, mean linalg.Vector) *hsi.Cube {
	comps, bands := transform.Rows, cube.Bands
	bias := make(linalg.Vector, comps)
	for c := 0; c < comps; c++ {
		for j := 0; j < bands; j++ {
			bias[c] += transform.At(c, j) * mean[j]
		}
	}
	out := hsi.MustNewCube(cube.Width, cube.Height, comps)
	for p := 0; p < cube.Pixels(); p++ {
		for c := 0; c < comps; c++ {
			var s float64
			if comps == 3 {
				var even, odd float64
				for j := 0; j < bands; j += 2 {
					even += float64(cube.Data[p*bands+j]) * transform.At(c, j)
				}
				for j := 1; j < bands; j += 2 {
					odd += float64(cube.Data[p*bands+j]) * transform.At(c, j)
				}
				s = even + odd
			} else {
				for j := 0; j < bands; j++ {
					s += float64(cube.Data[p*bands+j]) * transform.At(c, j)
				}
			}
			out.Data[p*comps+c] = float32(s - bias[c])
		}
	}
	return out
}

func TestMeanOfParityAcrossParallelism(t *testing.T) {
	for _, count := range []int{1, 3, statShardPixels - 1, statShardPixels, statShardPixels + 1, 2*statShardPixels + 17} {
		vs := paritySet(int64(count), count, 9)
		want := refMeanOf(vs)
		for _, par := range parityPar {
			got, err := MeanOfPar(vs, par)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 0) {
				t.Fatalf("count=%d par=%d: mean differs from scalar reference", count, par)
			}
		}
	}
}

func TestCovarianceSumParityAcrossParallelism(t *testing.T) {
	for _, tc := range []struct{ count, dim int }{
		{1, 5}, {covPanelPixels - 1, 7}, {covPanelPixels + 3, 24},
		{statShardPixels + covPanelPixels/2, 11}, {2*statShardPixels + 1, 3},
	} {
		vs := paritySet(int64(tc.count*10+tc.dim), tc.count, tc.dim)
		mean, err := MeanOf(vs)
		if err != nil {
			t.Fatal(err)
		}
		want := refCovarianceSum(vs, mean)
		for _, par := range parityPar {
			got, err := CovarianceSumPar(vs, mean, par)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 0) {
				t.Fatalf("count=%d dim=%d par=%d: covariance sum differs from scalar reference", tc.count, tc.dim, par)
			}
		}
	}
}

// CovarianceSumInto must zero and fill a dirty, reused destination to
// the exact bits of a fresh CovarianceSum — the contract that lets
// pooled workers keep one sum matrix across jobs.
func TestCovarianceSumIntoReuse(t *testing.T) {
	dst := linalg.NewMatrix(9, 9)
	for i := range dst.Data {
		dst.Data[i] = 1e300 // poison: any surviving element breaks equality
	}
	for _, count := range []int{1, 7, covPanelPixels + 3, statShardPixels + 5} {
		vs := paritySet(int64(count), count, 9)
		mean, err := MeanOf(vs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := CovarianceSum(vs, mean)
		if err != nil {
			t.Fatal(err)
		}
		if err := CovarianceSumInto(dst, vs, mean, 3); err != nil {
			t.Fatal(err)
		}
		if !dst.Equal(want, 0) {
			t.Fatalf("count=%d: reused destination differs from fresh sum", count)
		}
	}
	// Dimension mismatch is an error, not a resize.
	vs := paritySet(1, 4, 5)
	mean, _ := MeanOf(vs)
	if err := CovarianceSumInto(dst, vs, mean, 1); err == nil {
		t.Fatal("9x9 destination accepted for 5-band vectors")
	}
	// Empty vector set zeroes the destination (partial sum of nothing).
	dst.Data[0] = 42
	if err := CovarianceSumInto(dst, nil, make(linalg.Vector, 9), 1); err != nil {
		t.Fatal(err)
	}
	if dst.Data[0] != 0 {
		t.Fatal("empty set left the destination dirty")
	}
}

func TestTransformCubeParityAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, tc := range []struct{ w, h, bands, comps int }{
		{1, 1, 4, 3},                          // 1-pixel cube
		{transformBlockPixels/2 + 3, 1, 8, 3}, // sub-block, odd width
		{transformBlockPixels, 2, 6, 5},       // exact block multiple, comps > 3
		{33, 37, 12, 3},                       // blocks with ragged tail
	} {
		cube := hsi.MustNewCube(tc.w, tc.h, tc.bands)
		for i := range cube.Data {
			cube.Data[i] = float32(rng.NormFloat64() * 50)
		}
		transform := linalg.NewMatrix(tc.comps, tc.bands)
		for i := range transform.Data {
			transform.Data[i] = rng.NormFloat64()
		}
		mean := make(linalg.Vector, tc.bands)
		for j := range mean {
			mean[j] = rng.NormFloat64() * 20
		}
		want := refTransformCube(cube, transform, mean)
		for _, par := range parityPar {
			got, err := TransformCubePar(cube, transform, mean, par)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 0) {
				t.Fatalf("%dx%dx%d comps=%d par=%d: transform differs from scalar reference",
					tc.w, tc.h, tc.bands, tc.comps, par)
			}
		}
	}
}

// Parallelism beyond the pixel count must not change anything — the
// shard grid is fixed by the input size alone.
func TestKernelsDeterministicWithExcessParallelism(t *testing.T) {
	vs := paritySet(3, 5, 6)
	mean, err := MeanOfPar(vs, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := MeanOfPar(vs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !mean.Equal(wide, 0) {
		t.Fatal("MeanOfPar varies with excess parallelism")
	}
	c1, err := CovarianceSumPar(vs, mean, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CovarianceSumPar(vs, mean, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Equal(c2, 0) {
		t.Fatal("CovarianceSumPar varies with excess parallelism")
	}
}

// Run with different Parallelism settings must be bit-identical end to
// end — the Options knob is wall-clock only.
func TestRunParallelismInvariant(t *testing.T) {
	cube := sceneCube(t)
	serial, err := Run(cube, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(cube, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Components.Equal(wide.Components, 0) {
		t.Fatal("components differ across Parallelism settings")
	}
	if !serial.Mean.Equal(wide.Mean, 0) || !serial.Transform.Equal(wide.Transform, 0) {
		t.Fatal("statistics differ across Parallelism settings")
	}
}
