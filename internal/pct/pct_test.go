package pct

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
)

func sceneCube(t *testing.T) *hsi.Cube {
	t.Helper()
	s, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 32, Height: 32, Bands: 24, Seed: 5,
		NoiseSigma: 3, Illumination: 0.1,
		OpenVehicles: 1, CamouflagedVehicles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s.Cube
}

func TestMeanOf(t *testing.T) {
	vs := []linalg.Vector{{1, 10}, {3, 30}}
	m, err := MeanOf(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(linalg.Vector{2, 20}, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if _, err := MeanOf(nil); !errors.Is(err, ErrEmptySet) {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := MeanOf([]linalg.Vector{{1}, {1, 2}}); !errors.Is(err, linalg.ErrDimension) {
		t.Fatalf("ragged err = %v", err)
	}
}

func TestCovarianceMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]linalg.Vector, 50)
	for i := range vs {
		vs[i] = linalg.Vector{rng.NormFloat64(), 2 * rng.NormFloat64(), rng.NormFloat64() * 0.5}
	}
	cov, mean, err := CovarianceOf(vs)
	if err != nil {
		t.Fatal(err)
	}
	// Naive direct computation.
	n := 3
	want := linalg.NewMatrix(n, n)
	for _, v := range vs {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want.Set(i, j, want.At(i, j)+(v[i]-mean[i])*(v[j]-mean[j]))
			}
		}
	}
	want.Scale(1 / float64(len(vs)))
	if !cov.Equal(want, 1e-10) {
		t.Fatal("covariance differs from definition")
	}
	if !cov.IsSymmetric(0) {
		t.Fatal("covariance not exactly symmetric after Symmetrize")
	}
}

func TestCovariancePartialsEqualWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vs := make([]linalg.Vector, 60)
	for i := range vs {
		vs[i] = linalg.Vector{rng.NormFloat64(), rng.NormFloat64()}
	}
	mean, err := MeanOf(vs)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := CovarianceSum(vs, mean)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := CovarianceSum(vs[:20], mean)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CovarianceSum(vs[20:], mean)
	if err != nil {
		t.Fatal(err)
	}
	covWhole, err := Covariance([]*linalg.Matrix{whole}, 60)
	if err != nil {
		t.Fatal(err)
	}
	covParts, err := Covariance([]*linalg.Matrix{p1, p2}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !covWhole.Equal(covParts, 1e-12) {
		t.Fatal("partitioned covariance differs — distributed step 4/5 would be wrong")
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, err := Covariance(nil, 5); !errors.Is(err, ErrEmptySet) {
		t.Fatalf("nil partials err = %v", err)
	}
	m := linalg.NewMatrix(2, 2)
	if _, err := Covariance([]*linalg.Matrix{m}, 0); !errors.Is(err, ErrEmptySet) {
		t.Fatalf("count 0 err = %v", err)
	}
	if _, err := Covariance([]*linalg.Matrix{m, linalg.NewMatrix(3, 3)}, 5); !errors.Is(err, linalg.ErrDimension) {
		t.Fatalf("mismatched partials err = %v", err)
	}
	if _, err := CovarianceSum([]linalg.Vector{{1, 2, 3}}, linalg.Vector{1}); !errors.Is(err, linalg.ErrDimension) {
		t.Fatalf("bad mean err = %v", err)
	}
}

func TestRunProducesOrderedComponents(t *testing.T) {
	cube := sceneCube(t)
	res, err := Run(cube, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components.Bands != 3 {
		t.Fatalf("components bands = %d", res.Components.Bands)
	}
	if res.Components.Width != cube.Width || res.Components.Height != cube.Height {
		t.Fatal("component geometry mismatch")
	}
	if res.UniqueSetSize == 0 || res.UniqueSetSize > cube.Pixels() {
		t.Fatalf("unique set size %d", res.UniqueSetSize)
	}
	// Eigenvalues descending and non-negative (covariance is PSD).
	for i, ev := range res.Eigen.Values {
		if ev < -1e-6*(1+res.Covariance.FrobeniusNorm()) {
			t.Fatalf("negative eigenvalue %g", ev)
		}
		if i > 0 && ev > res.Eigen.Values[i-1]+1e-9 {
			t.Fatal("eigenvalues not sorted")
		}
	}
	// Empirical variance of PC planes must be decreasing: PCT packs
	// information into the front components.
	var1 := planeVariance(res.Components, 0)
	var3 := planeVariance(res.Components, 2)
	if var1 <= var3 {
		t.Fatalf("PC1 variance %g <= PC3 variance %g", var1, var3)
	}
}

func planeVariance(c *hsi.Cube, band int) float64 {
	plane, _ := c.Band(band)
	var mean float64
	for _, v := range plane {
		mean += v
	}
	mean /= float64(len(plane))
	var ss float64
	for _, v := range plane {
		ss += (v - mean) * (v - mean)
	}
	return ss / float64(len(plane))
}

func TestRunDecorrelatesComponents(t *testing.T) {
	cube := sceneCube(t)
	res, err := Run(cube, Options{Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Correlation between PC planes over the *unique set statistics*
	// should be near zero; empirically over all pixels it is small.
	p0, _ := res.Components.Band(0)
	p1, _ := res.Components.Band(1)
	r := correlation(p0, p1)
	if math.Abs(r) > 0.35 {
		t.Fatalf("PC1/PC2 correlation %.3f too high", r)
	}
}

func correlation(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

func TestRunWithoutScreening(t *testing.T) {
	cube := sceneCube(t)
	res, err := Run(cube, Options{DisableScreening: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueSetSize != cube.Pixels() {
		t.Fatalf("plain PCT should use all %d pixels, got %d", cube.Pixels(), res.UniqueSetSize)
	}
	if res.ScreenStats.Comparisons != 0 {
		t.Fatal("screening stats recorded while disabled")
	}
}

func TestRunScreeningChangesEmphasis(t *testing.T) {
	cube := sceneCube(t)
	with, err := Run(cube, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(cube, Options{DisableScreening: true})
	if err != nil {
		t.Fatal(err)
	}
	// Screening must shrink the statistics set dramatically on highly
	// correlated imagery.
	if with.UniqueSetSize >= without.UniqueSetSize/4 {
		t.Fatalf("screening kept %d of %d pixels", with.UniqueSetSize, without.UniqueSetSize)
	}
	// And the resulting transforms should differ (it reweights rare
	// materials).
	if with.Transform.Equal(without.Transform, 1e-6) {
		t.Fatal("screening had no effect on the transform")
	}
}

func TestRunValidation(t *testing.T) {
	cube := sceneCube(t)
	if _, err := Run(cube, Options{Components: 999}); !errors.Is(err, linalg.ErrDimension) {
		t.Fatalf("too many components err = %v", err)
	}
	bad := &hsi.Cube{Width: 2, Height: 2, Bands: 2, Data: []float32{1}}
	if _, err := Run(bad, Options{}); !errors.Is(err, hsi.ErrShape) {
		t.Fatalf("invalid cube err = %v", err)
	}
}

func TestTransformCubeMatchesManual(t *testing.T) {
	cube := hsi.MustNewCube(2, 1, 2)
	cube.SetPixel(0, 0, linalg.Vector{3, 4})
	cube.SetPixel(1, 0, linalg.Vector{5, 6})
	mean := linalg.Vector{1, 2}
	tr := linalg.NewMatrixFrom(2, 2, []float64{1, 0, 0, 2}) // diag(1,2)
	out, err := TransformCube(cube, tr, mean)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pixel(0, 0).Equal(linalg.Vector{2, 4}, 1e-6) {
		t.Fatalf("pixel0 = %v", out.Pixel(0, 0))
	}
	if !out.Pixel(1, 0).Equal(linalg.Vector{4, 8}, 1e-6) {
		t.Fatalf("pixel1 = %v", out.Pixel(1, 0))
	}
	if _, err := TransformCube(cube, linalg.NewMatrix(2, 3), mean); !errors.Is(err, linalg.ErrDimension) {
		t.Fatalf("bad transform err = %v", err)
	}
}

func TestRunDeterministic(t *testing.T) {
	cube := sceneCube(t)
	a, err := Run(cube, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cube, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Components.Equal(b.Components, 0) {
		t.Fatal("Run is not deterministic")
	}
}
