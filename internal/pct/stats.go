// Package pct implements the sequential spectral-screening Principal
// Component Transform — the reference implementation of the paper's
// 8-step algorithm against which every distributed configuration is
// validated. The distributed pipeline in internal/core reuses these
// kernels inside its workers.
package pct

import (
	"errors"
	"fmt"

	"resilientfusion/internal/linalg"
)

// ErrEmptySet is returned when statistics are requested over no vectors.
var ErrEmptySet = errors.New("pct: empty vector set")

// MeanOf computes the per-band mean of a set of pixel vectors —
// algorithm step 3.
func MeanOf(vectors []linalg.Vector) (linalg.Vector, error) {
	if len(vectors) == 0 {
		return nil, ErrEmptySet
	}
	n := len(vectors[0])
	mean := make(linalg.Vector, n)
	for _, v := range vectors {
		if len(v) != n {
			return nil, fmt.Errorf("%w: ragged vector set", linalg.ErrDimension)
		}
		mean.Add(v, mean)
	}
	mean.Scale(1/float64(len(vectors)), mean)
	return mean, nil
}

// CovarianceSum accumulates Σ (v−mean)(v−mean)ᵀ over the given vectors —
// the per-worker kernel of algorithm step 4. The caller owns normalization
// (step 5 divides by the global count).
func CovarianceSum(vectors []linalg.Vector, mean linalg.Vector) (*linalg.Matrix, error) {
	n := len(mean)
	sum := linalg.NewMatrix(n, n)
	dev := make(linalg.Vector, n)
	for _, v := range vectors {
		if len(v) != n {
			return nil, fmt.Errorf("%w: vector length %d vs mean %d", linalg.ErrDimension, len(v), n)
		}
		v.Sub(mean, dev)
		sum.AddOuter(dev)
	}
	return sum, nil
}

// Covariance combines partial covariance sums into the covariance matrix —
// algorithm step 5, executed sequentially by the manager. count is the
// total number of vectors contributing to the partial sums.
func Covariance(partials []*linalg.Matrix, count int) (*linalg.Matrix, error) {
	if len(partials) == 0 || count <= 0 {
		return nil, ErrEmptySet
	}
	n := partials[0].Rows
	cov := linalg.NewMatrix(n, n)
	for _, p := range partials {
		if p == nil {
			continue
		}
		if err := cov.Add(p); err != nil {
			return nil, err
		}
	}
	cov.Scale(1 / float64(count))
	// Outer-product accumulation is symmetric in exact arithmetic; repair
	// the few ulps of float drift so the eigensolver's symmetry check and
	// the distributed/sequential equality tests are exact.
	cov.Symmetrize()
	return cov, nil
}

// CovarianceOf is the single-shot covariance of a vector set about its own
// mean — the sequential composition of steps 3–5.
func CovarianceOf(vectors []linalg.Vector) (*linalg.Matrix, linalg.Vector, error) {
	mean, err := MeanOf(vectors)
	if err != nil {
		return nil, nil, err
	}
	sum, err := CovarianceSum(vectors, mean)
	if err != nil {
		return nil, nil, err
	}
	cov, err := Covariance([]*linalg.Matrix{sum}, len(vectors))
	if err != nil {
		return nil, nil, err
	}
	return cov, mean, nil
}
