// Package pct implements the sequential spectral-screening Principal
// Component Transform — the reference implementation of the paper's
// 8-step algorithm against which every distributed configuration is
// validated. The distributed pipeline in internal/core reuses these
// kernels inside its workers.
//
// The statistics and transform kernels are blocked and optionally
// multicore, with one shared determinism contract: inputs are cut into a
// fixed shard grid (a function of the input size only, never of the
// worker count), per-shard partials are computed with per-element
// ascending accumulation order, and shards are combined in ascending
// shard index order. Any Parallelism setting therefore produces
// bit-identical results — the property the distributed/sequential
// equality tests and the parity tests in parity_test.go pin down.
package pct

import (
	"errors"
	"fmt"

	"resilientfusion/internal/linalg"
)

// ErrEmptySet is returned when statistics are requested over no vectors.
var ErrEmptySet = errors.New("pct: empty vector set")

const (
	// statShardPixels is the fixed reduction shard of MeanOf and
	// CovarianceSum: per-shard partials are combined in ascending shard
	// order. Fixed by size, not by worker count (see the package comment).
	statShardPixels = 4096
	// covPanelPixels is the SYRK staging panel within a covariance shard:
	// deviations are packed covPanelPixels rows at a time so the rank-k
	// update streams contiguous memory.
	covPanelPixels = 256
)

// MeanOf computes the per-band mean of a set of pixel vectors —
// algorithm step 3 — using all cores. See MeanOfPar.
func MeanOf(vectors []linalg.Vector) (linalg.Vector, error) {
	return MeanOfPar(vectors, 0)
}

// MeanOfPar is MeanOf with an explicit parallelism degree (0 selects
// GOMAXPROCS). Per-band sums are accumulated per fixed-size shard in
// vector order and the shard partials are combined in ascending shard
// order, so every parallelism degree yields identical bits.
func MeanOfPar(vectors []linalg.Vector, parallelism int) (linalg.Vector, error) {
	if len(vectors) == 0 {
		return nil, ErrEmptySet
	}
	n := len(vectors[0])
	for _, v := range vectors {
		if len(v) != n {
			return nil, fmt.Errorf("%w: ragged vector set", linalg.ErrDimension)
		}
	}
	shards := linalg.ShardCount(len(vectors), statShardPixels)
	partials := make([]linalg.Vector, shards)
	linalg.ParallelShards(shards, parallelism, func(s int) {
		lo, hi := linalg.ShardRange(len(vectors), statShardPixels, s)
		sum := make(linalg.Vector, n)
		for _, v := range vectors[lo:hi] {
			for j, x := range v {
				sum[j] += x
			}
		}
		partials[s] = sum
	})
	mean := make(linalg.Vector, n)
	for _, p := range partials {
		mean.Add(p, mean)
	}
	mean.Scale(1/float64(len(vectors)), mean)
	return mean, nil
}

// CovarianceSum accumulates Σ (v−mean)(v−mean)ᵀ over the given vectors —
// the per-worker kernel of algorithm step 4 — using all cores. The caller
// owns normalization (step 5 divides by the global count). See
// CovarianceSumPar.
func CovarianceSum(vectors []linalg.Vector, mean linalg.Vector) (*linalg.Matrix, error) {
	return CovarianceSumPar(vectors, mean, 0)
}

// CovarianceSumPar is CovarianceSum with an explicit parallelism degree
// (0 selects GOMAXPROCS). Each fixed-size shard packs its deviations into
// contiguous panels and applies a symmetric rank-k update over the upper
// triangle only (linalg.SyrkUpperInto — half the flops of the historical
// full-square rank-1 loop); shard partials are combined in ascending
// shard order and mirrored once. Per-element accumulation stays in
// ascending pixel order throughout, so the result is bit-identical for
// every parallelism degree — and, within one shard, to the historical
// scalar kernel.
func CovarianceSumPar(vectors []linalg.Vector, mean linalg.Vector, parallelism int) (*linalg.Matrix, error) {
	sum := linalg.NewMatrix(len(mean), len(mean))
	if err := CovarianceSumInto(sum, vectors, mean, parallelism); err != nil {
		return nil, err
	}
	return sum, nil
}

// CovarianceSumInto is CovarianceSumPar accumulating into a caller-owned
// n×n matrix, which it zeroes first. The screened-covariance micro-shape
// (K≈7 unique vectors over 100+ bands) is allocation-floor-bound: the
// n×n sum dominates the kernel's footprint, so long-lived workers reuse
// one matrix across jobs instead of allocating ~100 KiB per request.
// Same determinism contract as CovarianceSumPar; the bits are identical.
func CovarianceSumInto(sum *linalg.Matrix, vectors []linalg.Vector, mean linalg.Vector, parallelism int) error {
	n := len(mean)
	if sum.Rows != n || sum.Cols != n {
		return fmt.Errorf("%w: %dx%d destination for %d bands", linalg.ErrDimension, sum.Rows, sum.Cols, n)
	}
	for _, v := range vectors {
		if len(v) != n {
			return fmt.Errorf("%w: vector length %d vs mean %d", linalg.ErrDimension, len(v), n)
		}
	}
	sum.Zero()
	shards := linalg.ShardCount(len(vectors), statShardPixels)
	if shards == 0 {
		return nil // empty part: zero partial sum, matching history
	}
	if shards == 1 {
		// The common case (screened unique sets are far below one shard):
		// accumulate straight into the result, no partials to combine.
		covShardInto(sum, vectors, mean, nil)
		sum.MirrorUpper()
		return nil
	}
	partials := make([]*linalg.Matrix, shards)
	// Panels are per-worker scratch, reused across that worker's shards;
	// the per-shard partials stay separate so they combine in shard order.
	panels := make([][]float64, linalg.EffectiveWorkers(shards, parallelism))
	linalg.ParallelShardsIndexed(shards, parallelism, func(w, s int) {
		if panels[w] == nil {
			panels[w] = make([]float64, covPanelPixels*n)
		}
		lo, hi := linalg.ShardRange(len(vectors), statShardPixels, s)
		partial := linalg.NewMatrix(n, n)
		covShardInto(partial, vectors[lo:hi], mean, panels[w])
		partials[s] = partial
	})
	for _, p := range partials {
		if err := sum.Add(p); err != nil {
			return err
		}
	}
	sum.MirrorUpper()
	return nil
}

// covShardInto accumulates the upper triangle of Σ (v−mean)(v−mean)ᵀ
// over one shard into dst, packing deviations into contiguous panels and
// applying the rank-k update panel by panel. panel is optional scratch of
// covPanelPixels*len(mean) floats; per-element accumulation runs in
// ascending vector order regardless of panel boundaries.
func covShardInto(dst *linalg.Matrix, vectors []linalg.Vector, mean linalg.Vector, panel []float64) {
	n := len(mean)
	maxRows := covPanelPixels
	if len(vectors) < maxRows {
		maxRows = len(vectors)
	}
	if panel == nil {
		panel = make([]float64, maxRows*n)
	}
	for p0 := 0; p0 < len(vectors); p0 += maxRows {
		rows := len(vectors) - p0
		if rows > maxRows {
			rows = maxRows
		}
		for r := 0; r < rows; r++ {
			v := vectors[p0+r]
			dev := panel[r*n : (r+1)*n]
			for j, m := range mean {
				dev[j] = v[j] - m
			}
		}
		view := &linalg.Matrix{Rows: rows, Cols: n, Data: panel[:rows*n]}
		// Shapes are consistent by construction; the call cannot fail.
		_ = linalg.SyrkUpperInto(dst, view)
	}
}

// Covariance combines partial covariance sums into the covariance matrix —
// algorithm step 5, executed sequentially by the manager. count is the
// total number of vectors contributing to the partial sums.
func Covariance(partials []*linalg.Matrix, count int) (*linalg.Matrix, error) {
	if len(partials) == 0 || count <= 0 {
		return nil, ErrEmptySet
	}
	n := partials[0].Rows
	cov := linalg.NewMatrix(n, n)
	for _, p := range partials {
		if p == nil {
			continue
		}
		if err := cov.Add(p); err != nil {
			return nil, err
		}
	}
	cov.Scale(1 / float64(count))
	// Outer-product accumulation is symmetric in exact arithmetic; repair
	// the few ulps of float drift so the eigensolver's symmetry check and
	// the distributed/sequential equality tests are exact.
	cov.Symmetrize()
	return cov, nil
}

// CovarianceOf is the single-shot covariance of a vector set about its own
// mean — the sequential composition of steps 3–5.
func CovarianceOf(vectors []linalg.Vector) (*linalg.Matrix, linalg.Vector, error) {
	mean, err := MeanOf(vectors)
	if err != nil {
		return nil, nil, err
	}
	sum, err := CovarianceSum(vectors, mean)
	if err != nil {
		return nil, nil, err
	}
	cov, err := Covariance([]*linalg.Matrix{sum}, len(vectors))
	if err != nil {
		return nil, nil, err
	}
	return cov, mean, nil
}
