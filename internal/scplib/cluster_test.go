package scplib

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"
)

// testWorker dials a coordinator with a registry and runs its pump on a
// goroutine; cleanup shuts it down.
func testWorker(t *testing.T, addr string, reg *BodyRegistry) *ClusterWorker {
	t.Helper()
	w, err := DialCluster(addr, 2*time.Second, reg)
	if err != nil {
		t.Fatal(err)
	}
	go w.Run()
	t.Cleanup(w.Shutdown)
	return w
}

// echoRegistry registers an "echo" body: replies to every request with
// the same payload on kind+1, exits on kind 99.
func echoRegistry() *BodyRegistry {
	reg := NewBodyRegistry()
	reg.Register("echo", func(args []byte) (Body, error) {
		return func(env Env) error {
			for {
				m, err := env.Recv()
				if err != nil {
					return err
				}
				if m.Kind == 99 {
					return nil
				}
				if err := env.Send(m.From, m.Kind+1, m.Payload); err != nil {
					return err
				}
			}
		}, nil
	})
	return reg
}

func TestClusterRemoteSpawnAndEcho(t *testing.T) {
	sys, err := NewClusterSystem("", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Serve()
	testWorker(t, sys.Addr(), echoRegistry())
	testWorker(t, sys.Addr(), echoRegistry())

	for deadline := time.Now().Add(2 * time.Second); sys.LiveWorkers() < 2; {
		if time.Now().After(deadline) {
			t.Fatalf("workers never connected: %d live", sys.LiveWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Spawn one echo thread on each worker node.
	for n := 1; n <= 2; n++ {
		if err := sys.Spawn(ThreadSpec{
			ID: ThreadID(10 + n), Name: "echo", Node: n,
			Remote: &RemoteBody{Kind: "echo"},
		}); err != nil {
			t.Fatalf("remote spawn node %d: %v", n, err)
		}
	}

	// A local driver thread round-trips through both remote echoes and
	// checks per-sender FIFO order of the replies from each.
	done := make(chan error, 1)
	err = sys.Spawn(ThreadSpec{ID: 1, Name: "driver", Body: func(env Env) error {
		const rounds = 50
		for i := 0; i < rounds; i++ {
			payload := []byte{byte(i)}
			if err := env.Send(11, 7, payload); err != nil {
				return err
			}
			if err := env.Send(12, 7, payload); err != nil {
				return err
			}
		}
		got := map[ThreadID]int{}
		for i := 0; i < 2*rounds; i++ {
			m, err := env.RecvTimeout(5)
			if err != nil {
				return err
			}
			if m.Kind != 8 {
				return errors.New("wrong reply kind")
			}
			if int(m.Payload[0]) != got[m.From] {
				return errors.New("per-sender FIFO violated")
			}
			got[m.From]++
		}
		env.Send(11, 99, nil)
		env.Send(12, 99, nil)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	go func() { done <- sys.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cluster run hung")
	}
}

func TestClusterSpawnErrors(t *testing.T) {
	sys, err := NewClusterSystem("", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Serve()
	testWorker(t, sys.Addr(), echoRegistry())
	for deadline := time.Now().Add(2 * time.Second); sys.LiveWorkers() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("worker never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// No RemoteBody on a remote spec.
	if err := sys.Spawn(ThreadSpec{ID: 5, Node: 1, Name: "x"}); !errors.Is(err, ErrNotRemotable) {
		t.Fatalf("want ErrNotRemotable, got %v", err)
	}
	// Node beyond the slot count.
	if err := sys.Spawn(ThreadSpec{ID: 5, Node: 7, Name: "x", Remote: &RemoteBody{Kind: "echo"}}); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("want ErrNoSuchNode, got %v", err)
	}
	// Slot with no connected worker.
	if err := sys.Spawn(ThreadSpec{ID: 5, Node: 2, Name: "x", Remote: &RemoteBody{Kind: "echo"}}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("want ErrNodeDown, got %v", err)
	}
	// Unknown body kind: the worker rejects, the RPC surfaces it.
	if err := sys.Spawn(ThreadSpec{ID: 5, Node: 1, Name: "x", Remote: &RemoteBody{Kind: "nope"}}); err == nil {
		t.Fatal("unknown remote kind accepted")
	}
	// Duplicate ID across the cluster.
	if err := sys.Spawn(ThreadSpec{ID: 6, Node: 1, Name: "a", Remote: &RemoteBody{Kind: "echo"}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Spawn(ThreadSpec{ID: 6, Node: 1, Name: "b", Remote: &RemoteBody{Kind: "echo"}}); !errors.Is(err, ErrDuplicateThread) {
		t.Fatalf("want ErrDuplicateThread, got %v", err)
	}
}

func TestClusterLivenessHooks(t *testing.T) {
	sys, err := NewClusterSystem("", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	var mu sync.Mutex
	var downNodes []int
	var exited []ThreadID
	aliveSeen := make(chan struct{}, 1)
	sys.OnNodeDown = func(n int) { mu.Lock(); downNodes = append(downNodes, n); mu.Unlock() }
	sys.OnThreadExit = func(id ThreadID) { mu.Lock(); exited = append(exited, id); mu.Unlock() }
	sys.OnNodeAlive = func(n int) {
		select {
		case aliveSeen <- struct{}{}:
		default:
		}
	}
	sys.Serve()

	w := testWorker(t, sys.Addr(), echoRegistry())
	for deadline := time.Now().Add(2 * time.Second); sys.LiveWorkers() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("worker never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w.Node() != 1 {
		t.Fatalf("worker got node %d, want 1", w.Node())
	}

	// Worker pings must surface as OnNodeAlive.
	select {
	case <-aliveSeen:
	case <-time.After(2 * time.Second):
		t.Fatal("no OnNodeAlive from worker pings")
	}

	// A remote thread finishing gracefully must surface as OnThreadExit.
	if err := sys.Spawn(ThreadSpec{ID: 20, Node: 1, Name: "echo", Remote: &RemoteBody{Kind: "echo"}}); err != nil {
		t.Fatal(err)
	}
	sys.Start()
	if err := sys.Spawn(ThreadSpec{ID: 2, Name: "stopper", Body: func(env Env) error {
		return env.Send(20, 99, nil)
	}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, id := range exited {
			if id == 20 {
				return true
			}
		}
		return false
	}, "remote thread exit never reported")

	// Severing the connection must surface as OnNodeDown and free the slot.
	w.Shutdown()
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(downNodes) > 0 && downNodes[0] == 1
	}, "node down never reported")
	if sys.LiveWorkers() != 0 {
		t.Fatalf("dead worker still counted live: %d", sys.LiveWorkers())
	}

	// The freed slot must be reusable by a reconnecting worker.
	w2 := testWorker(t, sys.Addr(), echoRegistry())
	waitFor(t, 2*time.Second, func() bool { return sys.LiveWorkers() == 1 }, "reconnect never admitted")
	if w2.Node() != 1 {
		t.Fatalf("reconnect got node %d, want reclaimed slot 1", w2.Node())
	}
}

func TestClusterKillRemoteThread(t *testing.T) {
	sys, err := NewClusterSystem("", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	var mu sync.Mutex
	exited := map[ThreadID]bool{}
	sys.OnThreadExit = func(id ThreadID) { mu.Lock(); exited[id] = true; mu.Unlock() }
	sys.Serve()

	testWorker(t, sys.Addr(), echoRegistry())
	for deadline := time.Now().Add(2 * time.Second); sys.LiveWorkers() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("worker never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sys.Spawn(ThreadSpec{ID: 30, Node: 1, Name: "victim", Remote: &RemoteBody{Kind: "echo"}}); err != nil {
		t.Fatal(err)
	}
	sys.Start()
	if !sys.Kill(30) {
		t.Fatal("Kill on routed remote thread reported false")
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return exited[30]
	}, "killed remote thread exit never reported")
}

func TestClusterCloseIdempotent(t *testing.T) {
	sys, err := NewClusterSystem("", 1)
	if err != nil {
		t.Fatal(err)
	}
	sys.Serve()
	testWorker(t, sys.Addr(), echoRegistry())
	sys.Close()
	sys.Close()
}

func TestClusterRejectsBadHello(t *testing.T) {
	sys, err := NewClusterSystem("", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Serve()
	// A peer speaking the wrong protocol version is dropped without a slot.
	c, err := dialRetry(sys.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var frame [7]byte
	binary.LittleEndian.PutUint32(frame[0:], 3)
	frame[4] = cfHello
	binary.LittleEndian.PutUint16(frame[5:], clusterProtoVersion+1)
	if _, err := c.Write(frame[:]); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("coordinator answered a bad hello instead of closing")
	}
	if sys.LiveWorkers() != 0 {
		t.Fatal("bad hello consumed a worker slot")
	}
}

// TestWorkerRunErrorOnSeveredConnection pins the contract the
// fusionworkerd re-dial loop depends on: Run must return a non-nil error
// when the coordinator side severs the connection (the daemon re-dials),
// and nil only after a local Shutdown (the daemon exits).
func TestWorkerRunErrorOnSeveredConnection(t *testing.T) {
	sys, err := NewClusterSystem("", 1)
	if err != nil {
		t.Fatal(err)
	}
	sys.Serve()
	w, err := DialCluster(sys.Addr(), 2*time.Second, echoRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Shutdown()
	runErr := make(chan error, 1)
	go func() { runErr <- w.Run() }()
	waitFor(t, 2*time.Second, func() bool { return sys.LiveWorkers() == 1 }, "worker never connected")

	sys.Close() // coordinator goes away: a transport fault from the worker's view
	select {
	case err := <-runErr:
		if err == nil {
			t.Fatal("Run returned nil after the coordinator severed the connection — the daemon would treat it as orderly shutdown and never re-dial")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run never returned after the connection broke")
	}
}

func TestWorkerRunNilOnShutdown(t *testing.T) {
	sys, err := NewClusterSystem("", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Serve()
	w, err := DialCluster(sys.Addr(), 2*time.Second, echoRegistry())
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- w.Run() }()
	waitFor(t, 2*time.Second, func() bool { return sys.LiveWorkers() == 1 }, "worker never connected")

	w.Shutdown()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run after local Shutdown returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run never returned after Shutdown")
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
