package scplib

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// RealSystem runs threads as goroutines with channel mailboxes — true
// parallelism on the host machine. It is the runtime used by the example
// programs and the kernel benchmarks; the Sim runtime is used to
// reproduce the paper's cluster-scale measurements.
type RealSystem struct {
	mu      sync.Mutex
	threads map[ThreadID]*realThread
	wg      sync.WaitGroup
	running bool
	t0      time.Time
	errs    []error

	dropped   atomic.Int64
	bytesSent atomic.Int64

	// Logf receives diagnostics from thread bodies; nil silences them.
	LogTo func(format string, args ...any)
	// MailboxDepth is the per-thread channel buffer (default 4096).
	MailboxDepth int
	// sendVia, when set, replaces direct channel delivery with an
	// external transport (the TCP system); the transport re-enters via
	// deliverLocal.
	sendVia func(*Message) error
	// onReap, when set, observes every thread leaving the table after its
	// body returned (the cluster worker reports exits to its coordinator
	// through this). Called without the system lock held.
	onReap func(ThreadID)
}

type realThread struct {
	sys    *RealSystem
	id     ThreadID
	name   string
	mbox   chan *Message
	kill   chan struct{}
	killed atomic.Bool
	once   sync.Once
	stash  stash
	seq    uint64
	body   Body
}

// NewRealSystem creates an empty goroutine-backed system.
func NewRealSystem() *RealSystem {
	return &RealSystem{
		threads:      make(map[ThreadID]*realThread),
		t0:           time.Now(),
		MailboxDepth: 4096,
	}
}

// Spawn adds a thread; if the system is running the thread starts
// immediately, otherwise it starts when Run is called.
func (s *RealSystem) Spawn(spec ThreadSpec) error {
	if spec.Body == nil {
		return errors.New("scplib: nil thread body")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.threads[spec.ID]; ok {
		return fmt.Errorf("%w: %d (%s)", ErrDuplicateThread, spec.ID, spec.Name)
	}
	t := &realThread{
		sys:  s,
		id:   spec.ID,
		name: spec.Name,
		mbox: make(chan *Message, s.MailboxDepth),
		kill: make(chan struct{}),
		body: spec.Body,
	}
	s.threads[spec.ID] = t
	if s.running {
		s.start(t)
	}
	return nil
}

// start launches the thread goroutine. Caller holds s.mu.
func (s *RealSystem) start(t *realThread) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var err error
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("scplib: thread %s panicked: %v", t.name, r)
				}
			}()
			err = t.body(t)
		}()
		s.mu.Lock()
		// Reap: long-lived systems (the service pool) spawn a manager
		// thread per job, so finished threads must leave the table.
		// Post-finish sends then drop like sends to any unknown thread.
		if s.threads[t.id] == t {
			delete(s.threads, t.id)
		}
		if err != nil && !errors.Is(err, ErrKilled) {
			s.errs = append(s.errs, fmt.Errorf("%s: %w", t.name, err))
		}
		reap := s.onReap
		s.mu.Unlock()
		if reap != nil {
			reap(t.id)
		}
	}()
}

// Kill destroys the thread: its blocking calls return ErrKilled and
// senders drop messages addressed to it.
func (s *RealSystem) Kill(id ThreadID) bool {
	s.mu.Lock()
	t, ok := s.threads[id]
	s.mu.Unlock()
	if !ok || t.killed.Load() {
		return false
	}
	t.killed.Store(true)
	t.once.Do(func() { close(t.kill) })
	return true
}

// Start launches every thread spawned so far without blocking; threads
// spawned afterwards start immediately. Long-lived systems (the service
// pool keeps one system alive across many jobs) pair it with Wait; Run
// remains the one-shot convenience.
func (s *RealSystem) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	s.running = true
	for _, t := range s.threads {
		s.start(t)
	}
}

// Wait blocks until every thread has returned and reports their combined
// non-ErrKilled errors. Call once no further work will be spawned (after
// Stop, or after the application protocol has wound all threads down).
func (s *RealSystem) Wait() error {
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return errors.Join(s.errs...)
}

// Stop kills every live thread; a pending Wait then returns promptly.
func (s *RealSystem) Stop() {
	s.mu.Lock()
	ids := make([]ThreadID, 0, len(s.threads))
	for id := range s.threads {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.Kill(id)
	}
}

// Live returns the number of threads currently registered (spawned and
// not yet finished).
func (s *RealSystem) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.threads)
}

// has reports whether id is currently a registered local thread (the
// cluster worker's local-vs-forward routing decision).
func (s *RealSystem) has(id ThreadID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.threads[id]
	return ok
}

// Run starts every spawned thread and blocks until all have finished.
func (s *RealSystem) Run() error {
	s.Start()
	return s.Wait()
}

// Now returns wall-clock seconds since the system was created.
func (s *RealSystem) Now() float64 { return time.Since(s.t0).Seconds() }

// Dropped returns the dropped-send counter.
func (s *RealSystem) Dropped() int64 { return s.dropped.Load() }

// BytesSent returns cumulative modeled wire bytes.
func (s *RealSystem) BytesSent() int64 { return s.bytesSent.Load() }

var _ System = (*RealSystem)(nil)

// --- realThread implements Env ---

func (t *realThread) Self() ThreadID { return t.id }
func (t *realThread) Now() float64   { return t.sys.Now() }

func (t *realThread) Send(to ThreadID, kind uint16, payload []byte) error {
	if t.killed.Load() {
		return ErrKilled
	}
	m := &Message{From: t.id, To: to, Kind: kind, Payload: payload}
	t.seq++
	m.Seq = t.seq
	t.sys.bytesSent.Add(m.WireSize())

	if t.sys.sendVia != nil {
		return t.sys.sendVia(m)
	}

	t.sys.mu.Lock()
	dst, ok := t.sys.threads[to]
	t.sys.mu.Unlock()
	if !ok || dst.killed.Load() {
		t.sys.dropped.Add(1)
		return nil
	}
	select {
	case dst.mbox <- m:
	case <-dst.kill:
		t.sys.dropped.Add(1)
	case <-t.kill:
		return ErrKilled
	}
	return nil
}

// deliverLocal routes a transport-received message into the destination
// thread's mailbox, dropping it if the destination is gone.
func (s *RealSystem) deliverLocal(m *Message) {
	s.mu.Lock()
	dst, ok := s.threads[m.To]
	s.mu.Unlock()
	if !ok || dst.killed.Load() {
		s.dropped.Add(1)
		return
	}
	select {
	case dst.mbox <- m:
	case <-dst.kill:
		s.dropped.Add(1)
	}
}

// pull blocks for the next incoming message.
func (t *realThread) pull(timeout *time.Timer) (*Message, error) {
	if t.killed.Load() {
		return nil, ErrKilled
	}
	if timeout == nil {
		select {
		case m := <-t.mbox:
			return m, nil
		case <-t.kill:
			return nil, ErrKilled
		}
	}
	select {
	case m := <-t.mbox:
		return m, nil
	case <-t.kill:
		return nil, ErrKilled
	case <-timeout.C:
		return nil, ErrTimeout
	}
}

func (t *realThread) Recv() (*Message, error) {
	return recvCommon(&t.stash, nil, func() (*Message, error) { return t.pull(nil) })
}

func (t *realThread) RecvTimeout(seconds float64) (*Message, error) {
	timer := time.NewTimer(time.Duration(seconds * float64(time.Second)))
	defer timer.Stop()
	return recvCommon(&t.stash, nil, func() (*Message, error) { return t.pull(timer) })
}

func (t *realThread) RecvMatch(match func(*Message) bool) (*Message, error) {
	return recvCommon(&t.stash, match, func() (*Message, error) { return t.pull(nil) })
}

func (t *realThread) RecvMatchTimeout(match func(*Message) bool, seconds float64) (*Message, error) {
	timer := time.NewTimer(time.Duration(seconds * float64(time.Second)))
	defer timer.Stop()
	return recvCommon(&t.stash, match, func() (*Message, error) { return t.pull(timer) })
}

// Compute is a no-op on the real runtime: the caller just performed the
// actual computation on the host CPU.
func (t *realThread) Compute(flops float64) error {
	if t.killed.Load() {
		return ErrKilled
	}
	return nil
}

func (t *realThread) Logf(format string, args ...any) {
	if t.sys.LogTo != nil {
		t.sys.LogTo("[%8.3fs %s] %s", t.Now(), t.name, fmt.Sprintf(format, args...))
	}
}
