package scplib

import (
	"errors"
	"fmt"

	"resilientfusion/internal/simnet"
)

// MsgCost models the CPU cost of protocol processing per message at each
// endpoint: marshal/copy/checksum work that the paper's measurements
// attribute to "the more complex communication protocols".
type MsgCost struct {
	// FixedFlops is charged per message (system-call + protocol stack).
	FixedFlops float64
	// FlopsPerByte is charged per payload+header byte (copy/checksum).
	FlopsPerByte float64
}

// DefaultMsgCost reflects 1999-era TCP/IP stacks on 300 MHz workstations:
// ~50 µs fixed per message plus ~1 flop-equivalent per byte touched.
func DefaultMsgCost() MsgCost {
	return MsgCost{FixedFlops: 15000, FlopsPerByte: 1}
}

// SimSystem runs threads as simnet processes on a virtual cluster. All
// time is virtual: Compute charges the thread's node under processor
// sharing, Send charges protocol cost and transfers bytes over the
// network model. Deterministic given deterministic bodies.
type SimSystem struct {
	exec    *simnet.Exec
	network simnet.Network
	nodes   []*simnet.Node
	cost    MsgCost

	threads map[ThreadID]*simThread
	errs    []error

	dropped   int64
	bytesSent int64

	// LogTo receives diagnostics from thread bodies; nil silences them.
	LogTo func(format string, args ...any)
}

type simThread struct {
	sys   *SimSystem
	id    ThreadID
	name  string
	node  *simnet.Node
	proc  *simnet.Proc
	mbox  *simnet.Mailbox[*Message]
	stash stash
	seq   uint64
	body  Body
}

// NewSimSystem builds a system over an executor, a network model, and a
// set of nodes. A zero MsgCost disables protocol CPU accounting.
func NewSimSystem(exec *simnet.Exec, network simnet.Network, nodes []*simnet.Node, cost MsgCost) *SimSystem {
	return &SimSystem{
		exec:    exec,
		network: network,
		nodes:   nodes,
		cost:    cost,
		threads: make(map[ThreadID]*simThread),
	}
}

// NewCluster is a convenience constructor: n identical workstations at
// the paper's 300 MFLOPS on a fresh executor.
func NewCluster(n int, rate float64) (*simnet.Exec, []*simnet.Node) {
	if rate == 0 {
		rate = simnet.WorkstationRate
	}
	x := simnet.NewExec()
	nodes := make([]*simnet.Node, n)
	for i := range nodes {
		nodes[i] = x.NewNode(i, fmt.Sprintf("node%d", i), rate)
	}
	return x, nodes
}

// Exec exposes the underlying executor (failure injection hooks in tests).
func (s *SimSystem) Exec() *simnet.Exec { return s.exec }

// Nodes returns the cluster nodes.
func (s *SimSystem) Nodes() []*simnet.Node { return s.nodes }

// Spawn adds a thread on its placement node. Spawning while the
// simulation runs (from inside a thread body) takes effect immediately at
// the current virtual time — this is how regeneration creates replacement
// replicas.
func (s *SimSystem) Spawn(spec ThreadSpec) error {
	if spec.Body == nil {
		return errors.New("scplib: nil thread body")
	}
	if _, ok := s.threads[spec.ID]; ok {
		return fmt.Errorf("%w: %d (%s)", ErrDuplicateThread, spec.ID, spec.Name)
	}
	if spec.Node < 0 || spec.Node >= len(s.nodes) {
		return fmt.Errorf("%w: %d", ErrNoSuchNode, spec.Node)
	}
	node := s.nodes[spec.Node]
	if node.Failed() {
		return fmt.Errorf("%w: node %d", ErrNodeDown, spec.Node)
	}
	t := &simThread{
		sys:  s,
		id:   spec.ID,
		name: spec.Name,
		node: node,
		mbox: simnet.NewMailbox[*Message](s.exec),
		body: spec.Body,
	}
	s.threads[spec.ID] = t
	t.proc = s.exec.SpawnNow(spec.Name, func(p *simnet.Proc) error {
		p.SetNode(node)
		err := t.body(t)
		if err != nil && !errors.Is(err, ErrKilled) && !errors.Is(err, simnet.ErrKilled) {
			s.errs = append(s.errs, fmt.Errorf("%s: %w", t.name, err))
		}
		return err
	})
	return nil
}

// Kill destroys the thread at the current virtual time.
func (s *SimSystem) Kill(id ThreadID) bool {
	t, ok := s.threads[id]
	if !ok || t.proc.Done() || t.proc.Killed() {
		return false
	}
	t.proc.Kill()
	return true
}

// Run drives the simulation to completion.
func (s *SimSystem) Run() error {
	if err := s.exec.Run(); err != nil {
		return err
	}
	return errors.Join(s.errs...)
}

// Now returns the virtual time.
func (s *SimSystem) Now() float64 { return s.exec.Now() }

// Dropped returns the dropped-send counter.
func (s *SimSystem) Dropped() int64 { return s.dropped }

// BytesSent returns cumulative modeled wire bytes.
func (s *SimSystem) BytesSent() int64 { return s.bytesSent }

var _ System = (*SimSystem)(nil)

// --- simThread implements Env ---

func (t *simThread) Self() ThreadID { return t.id }
func (t *simThread) Now() float64   { return t.sys.exec.Now() }

func (t *simThread) Send(to ThreadID, kind uint16, payload []byte) error {
	if t.proc.Killed() {
		return ErrKilled
	}
	m := &Message{From: t.id, To: to, Kind: kind, Payload: payload}
	t.seq++
	m.Seq = t.seq
	size := m.WireSize()
	t.sys.bytesSent += size

	// Sender-side protocol cost.
	if c := t.sys.cost; c.FixedFlops > 0 || c.FlopsPerByte > 0 {
		if err := t.node.Compute(t.proc, c.FixedFlops+c.FlopsPerByte*float64(size)); err != nil {
			return mapSimErr(err)
		}
	}
	dst, ok := t.sys.threads[to]
	if !ok || dst.proc.Killed() || dst.proc.Done() {
		t.sys.dropped++
		return nil
	}
	t.sys.network.Transfer(t.node, dst.node, size, func() {
		// Re-check liveness at delivery time.
		if dst.proc.Killed() || dst.proc.Done() {
			t.sys.dropped++
			return
		}
		dst.mbox.Put(m)
	})
	return nil
}

// pull blocks for the next incoming message, with optional deadline.
func (t *simThread) pull(timeoutAt float64) (*Message, error) {
	var m *Message
	var err error
	if timeoutAt < 0 {
		m, err = simnet.RecvFrom(t.proc, t.mbox)
	} else {
		dt := timeoutAt - t.Now()
		if dt < 0 {
			dt = 0
		}
		m, err = simnet.RecvTimeout(t.proc, t.mbox, dt)
	}
	if err != nil {
		return nil, mapSimErr(err)
	}
	// Receiver-side protocol cost.
	if c := t.sys.cost; c.FixedFlops > 0 || c.FlopsPerByte > 0 {
		if err := t.node.Compute(t.proc, c.FixedFlops+c.FlopsPerByte*float64(m.WireSize())); err != nil {
			return nil, mapSimErr(err)
		}
	}
	return m, nil
}

func mapSimErr(err error) error {
	switch {
	case errors.Is(err, simnet.ErrKilled), errors.Is(err, simnet.ErrNodeFailed):
		return ErrKilled
	case errors.Is(err, simnet.ErrTimeout):
		return ErrTimeout
	case errors.Is(err, simnet.ErrMailboxClosed):
		return ErrStopped
	default:
		return err
	}
}

func (t *simThread) Recv() (*Message, error) {
	return recvCommon(&t.stash, nil, func() (*Message, error) { return t.pull(-1) })
}

func (t *simThread) RecvTimeout(seconds float64) (*Message, error) {
	deadline := t.Now() + seconds
	return recvCommon(&t.stash, nil, func() (*Message, error) { return t.pull(deadline) })
}

func (t *simThread) RecvMatch(match func(*Message) bool) (*Message, error) {
	return recvCommon(&t.stash, match, func() (*Message, error) { return t.pull(-1) })
}

func (t *simThread) RecvMatchTimeout(match func(*Message) bool, seconds float64) (*Message, error) {
	deadline := t.Now() + seconds
	return recvCommon(&t.stash, match, func() (*Message, error) { return t.pull(deadline) })
}

func (t *simThread) Compute(flops float64) error {
	if err := t.node.Compute(t.proc, flops); err != nil {
		return mapSimErr(err)
	}
	return nil
}

func (t *simThread) Logf(format string, args ...any) {
	if t.sys.LogTo != nil {
		t.sys.LogTo("[%10.4fs %s] %s", t.Now(), t.name, fmt.Sprintf(format, args...))
	}
}
