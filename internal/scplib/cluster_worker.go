package scplib

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// BodyRegistry maps RemoteBody kinds to factories so a worker process
// can reconstruct thread bodies shipped to it by a coordinator. The
// registry is populated at daemon startup (core.RegisterWorkerBodies
// and resilient.RegisterWrapperBody) before any spawn arrives.
type BodyRegistry struct {
	mu        sync.Mutex
	factories map[string]func(args []byte) (Body, error)
}

// NewBodyRegistry creates an empty registry.
func NewBodyRegistry() *BodyRegistry {
	return &BodyRegistry{factories: make(map[string]func(args []byte) (Body, error))}
}

// Register installs a factory for kind, replacing any previous one.
func (r *BodyRegistry) Register(kind string, factory func(args []byte) (Body, error)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[kind] = factory
}

// Build instantiates a body for kind from its serialized arguments.
func (r *BodyRegistry) Build(kind string, args []byte) (Body, error) {
	r.mu.Lock()
	factory := r.factories[kind]
	r.mu.Unlock()
	if factory == nil {
		return nil, fmt.Errorf("scplib: unknown remote body kind %q", kind)
	}
	return factory(args)
}

// ClusterWorker is the fusionworkerd side of the cluster transport: a
// RealSystem whose threads were all spawned by a remote coordinator.
// Every outbound send from a local thread that is not addressed to
// another local thread is framed back to the coordinator, which routes
// it onward — hub-and-spoke, preserving per-sender FIFO end to end
// (one ordered connection per hop, frames forwarded in arrival order).
type ClusterWorker struct {
	sys  *RealSystem
	reg  *BodyRegistry
	node int

	c   net.Conn
	r   *bufio.Reader // handshake and Run share one reader: no frame loss
	wmu sync.Mutex
	w   *bufio.Writer

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// workerPingPeriod paces the liveness pings a worker sends its
// coordinator. Pings run on a dedicated goroutine, so they keep flowing
// while worker threads are deep inside long compute kernels — that is
// what lets the coordinator's failure detector use short timeouts
// without false-positives on busy-but-healthy workers.
const workerPingPeriod = 100 * time.Millisecond

// DialCluster connects to a coordinator, retrying with capped
// exponential backoff for up to window, and completes the
// hello/welcome handshake. The returned worker is idle until Run.
func DialCluster(addr string, window time.Duration, reg *BodyRegistry) (*ClusterWorker, error) {
	c, err := dialRetry(addr, window)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(10 * time.Second)
	}
	w := &ClusterWorker{
		sys:  NewRealSystem(),
		reg:  reg,
		c:    c,
		r:    bufio.NewReaderSize(c, 1<<16),
		w:    bufio.NewWriterSize(c, 1<<16),
		done: make(chan struct{}),
	}

	var hello [2]byte
	binary.LittleEndian.PutUint16(hello[:], clusterProtoVersion)
	if err := w.writeFrame(cfHello, hello[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("scplib: cluster hello: %w", err)
	}
	ftype, body, err := readClusterFrame(w.r)
	if err != nil || ftype != cfWelcome || len(body) < 4 {
		c.Close()
		return nil, fmt.Errorf("scplib: cluster handshake failed")
	}
	node := int(int32(binary.LittleEndian.Uint32(body)))
	if node <= 0 {
		c.Close()
		return nil, fmt.Errorf("scplib: coordinator rejected worker (no free slot)")
	}
	w.node = node

	// Local threads deliver to local siblings directly; everything else
	// goes back up to the coordinator.
	w.sys.sendVia = func(m *Message) error {
		if w.sys.has(m.To) {
			w.sys.deliverLocal(m)
			return nil
		}
		if err := w.writeFrame(cfMsg, encodeMsgBody(m)); err != nil {
			w.sys.dropped.Add(1)
		}
		return nil
	}
	// Finished threads (graceful return or kill) are reported upstream so
	// the coordinator can drop their routes and inform the failure
	// detector.
	w.sys.onReap = func(id ThreadID) {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], uint32(id))
		w.writeFrame(cfExit, buf[:])
	}
	w.sys.Start()
	w.startPinger()
	return w, nil
}

// Node returns the slot the coordinator assigned this worker.
func (w *ClusterWorker) Node() int { return w.node }

// System exposes the worker's underlying RealSystem (for diagnostics).
func (w *ClusterWorker) System() *RealSystem { return w.sys }

// LogTo forwards a logger to the underlying system.
func (w *ClusterWorker) LogTo(fn func(format string, args ...any)) { w.sys.LogTo = fn }

func (w *ClusterWorker) startPinger() {
	go func() {
		t := time.NewTicker(workerPingPeriod)
		defer t.Stop()
		for {
			select {
			case <-w.done:
				return
			case <-t.C:
				if err := w.writeFrame(cfPing, nil); err != nil {
					return
				}
			}
		}
	}()
}

// Run pumps coordinator frames until the connection breaks or Shutdown
// is called, then stops all local threads and waits them out. A worker
// daemon's main loop is: DialCluster, Run, maybe re-dial.
func (w *ClusterWorker) Run() error {
	var readErr error
	for {
		ftype, body, err := readClusterFrame(w.r)
		if err != nil {
			readErr = err
			break
		}
		switch ftype {
		case cfMsg:
			if m, err := decodeMsgBody(body); err == nil {
				w.sys.deliverLocal(m)
			}
		case cfSpawn:
			id, name, kind, args, err := decodeSpawn(body)
			if err != nil {
				continue
			}
			spawnErr := w.spawn(id, name, kind, args)
			w.writeFrame(cfSpawnResult, encodeSpawnResult(id, spawnErr))
		case cfKill:
			if len(body) >= 4 {
				w.sys.Kill(ThreadID(int32(binary.LittleEndian.Uint32(body))))
			}
		case cfPing:
			// Coordinator liveness probe; the TCP read itself is the signal.
		}
	}

	// Capture whether Shutdown had already been called before we call it
	// ourselves below — Shutdown sets closed, so checking afterwards would
	// classify every transport fault as orderly and the daemon's re-dial
	// loop would never run.
	wasClosed := w.isClosed()
	w.Shutdown()
	w.sys.Wait()
	if wasClosed {
		return nil // orderly shutdown, not a transport fault
	}
	return readErr
}

func (w *ClusterWorker) spawn(id ThreadID, name, kind string, args []byte) error {
	body, err := w.reg.Build(kind, args)
	if err != nil {
		return err
	}
	return w.sys.Spawn(ThreadSpec{ID: id, Name: name, Node: w.node, Body: body})
}

// Shutdown closes the coordinator connection and kills local threads
// (idempotent). Run returns shortly after.
func (w *ClusterWorker) Shutdown() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	close(w.done)
	w.mu.Unlock()
	w.c.Close()
	w.sys.Stop()
}

func (w *ClusterWorker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

func (w *ClusterWorker) writeFrame(ftype uint8, body []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if err := writeClusterFrame(w.w, ftype, body); err != nil {
		return err
	}
	return w.w.Flush()
}
