package scplib

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPSystem is a RealSystem whose messages travel over actual TCP
// connections (loopback by default) instead of in-process channels:
// every sender thread holds one connection to the system's listener —
// preserving per-sender FIFO — and a dispatcher routes decoded frames to
// destination mailboxes. It demonstrates the same wire behaviour a
// multi-machine deployment of the paper's system would have, with the
// frame format below standing in for SCPlib's transport.
//
// Frame layout (little-endian):
//
//	length  uint32  (of the remainder)
//	from    int32
//	to      int32
//	kind    uint16
//	seq     uint64
//	payload [length-18]byte
type TCPSystem struct {
	*RealSystem

	listener net.Listener
	mu       sync.Mutex
	conns    map[ThreadID]*tcpConn
	closed   bool
	wg       sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

// frameHeaderBytes is the fixed frame body prefix after the length word.
const frameHeaderBytes = 4 + 4 + 2 + 8

// maxFramePayload guards against corrupt length words.
const maxFramePayload = 1 << 30

// NewTCPSystem creates a system whose transport is a real TCP listener
// on addr ("127.0.0.1:0" picks an ephemeral loopback port).
func NewTCPSystem(addr string) (*TCPSystem, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("scplib: tcp listen: %w", err)
	}
	s := &TCPSystem{
		RealSystem: NewRealSystem(),
		listener:   ln,
		conns:      make(map[ThreadID]*tcpConn),
	}
	s.RealSystem.sendVia = s.sendTCP
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *TCPSystem) Addr() string { return s.listener.Addr().String() }

// Run executes the threads, then tears the transport down.
func (s *TCPSystem) Run() error {
	err := s.RealSystem.Run()
	s.Close()
	return err
}

// Close shuts the transport down (idempotent).
func (s *TCPSystem) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := s.conns
	s.conns = map[ThreadID]*tcpConn{}
	s.mu.Unlock()

	s.listener.Close()
	for _, tc := range conns {
		tc.c.Close()
	}
	s.wg.Wait()
}

// acceptLoop turns incoming connections into dispatch pumps.
func (s *TCPSystem) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.dispatch(conn)
		}()
	}
}

// dispatch reads frames from one connection and routes them to local
// mailboxes.
func (s *TCPSystem) dispatch(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 1<<16)
	for {
		m, err := readFrame(r)
		if err != nil {
			return // EOF or broken peer: the sender re-dials if alive
		}
		s.RealSystem.deliverLocal(m)
	}
}

// senderConn returns (dialing if needed) the per-thread connection.
func (s *TCPSystem) senderConn(from ThreadID) (*tcpConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStopped
	}
	if tc, ok := s.conns[from]; ok {
		return tc, nil
	}
	c, err := dialRetry(s.listener.Addr().String(), senderDialWindow)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{c: c, w: bufio.NewWriterSize(c, 1<<16)}
	s.conns[from] = tc
	return tc, nil
}

// senderDialWindow bounds a sender thread's connect retries: transient
// refusals (listener backlog pressure under thread fan-out) are retried,
// a dead listener fails the send within this window.
const senderDialWindow = 2 * time.Second

// dialRetry dials addr, retrying transient failures with capped
// exponential backoff until the window elapses. The first attempt is
// always made; the last error is returned once the window is spent.
func dialRetry(addr string, window time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(window)
	delay := 25 * time.Millisecond
	const maxDelay = time.Second
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c, nil
		}
		if remain := time.Until(deadline); remain <= 0 {
			return nil, fmt.Errorf("scplib: dial %s: %w", addr, err)
		} else if delay > remain {
			delay = remain
		}
		time.Sleep(delay)
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// sendTCP implements the RealSystem's pluggable transport.
func (s *TCPSystem) sendTCP(m *Message) error {
	tc, err := s.senderConn(m.From)
	if err != nil {
		if errors.Is(err, ErrStopped) {
			return nil // shutting down: treated as a drop
		}
		return err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := writeFrame(tc.w, m); err != nil {
		return err
	}
	return tc.w.Flush()
}

// writeFrame encodes one message.
func writeFrame(w io.Writer, m *Message) error {
	buf := make([]byte, 4+frameHeaderBytes+len(m.Payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(frameHeaderBytes+len(m.Payload)))
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.From))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.To))
	binary.LittleEndian.PutUint16(buf[12:], m.Kind)
	binary.LittleEndian.PutUint64(buf[14:], m.Seq)
	copy(buf[4+frameHeaderBytes:], m.Payload)
	_, err := w.Write(buf)
	return err
}

// readFrame decodes one message.
func readFrame(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeaderBytes || n > maxFramePayload {
		return nil, fmt.Errorf("scplib: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	m := &Message{
		From: ThreadID(int32(binary.LittleEndian.Uint32(body[0:]))),
		To:   ThreadID(int32(binary.LittleEndian.Uint32(body[4:]))),
		Kind: binary.LittleEndian.Uint16(body[8:]),
		Seq:  binary.LittleEndian.Uint64(body[10:]),
	}
	if n > frameHeaderBytes {
		m.Payload = body[frameHeaderBytes:]
	}
	return m, nil
}
