package scplib

import (
	"resilientfusion/internal/telemetry"
)

// ClusterMetrics counts cluster-transport events — frames by type,
// spawn RPC latency, node slot transitions — on a telemetry registry.
// Assign ClusterSystem.Metrics between NewClusterSystem and Serve,
// like the liveness hooks; all methods are safe on a nil receiver so
// an uninstrumented system pays only a nil check per event.
type ClusterMetrics struct {
	framesSent   *telemetry.CounterVec
	framesRecv   *telemetry.CounterVec
	spawnSeconds *telemetry.Histogram
	nodesUp      *telemetry.Counter
	nodesDown    *telemetry.Counter
}

// spawnBuckets resolve the sub-second spawn RPCs the guardian's
// regeneration latency depends on, up through the 10s spawn timeout.
var spawnBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10}

// NewClusterMetrics registers the transport instruments on reg.
func NewClusterMetrics(reg *telemetry.Registry) *ClusterMetrics {
	return &ClusterMetrics{
		framesSent: reg.CounterVec("fusion_cluster_frames_sent_total",
			"Cluster frames written to worker connections, by frame type.", "type"),
		framesRecv: reg.CounterVec("fusion_cluster_frames_received_total",
			"Cluster frames read from worker connections, by frame type.", "type"),
		spawnSeconds: reg.Histogram("fusion_cluster_spawn_duration_seconds",
			"Remote spawn RPC latency, write to result (or timeout).", spawnBuckets),
		nodesUp: reg.Counter("fusion_cluster_node_up_total",
			"Worker connections admitted to a node slot."),
		nodesDown: reg.Counter("fusion_cluster_node_down_total",
			"Worker connections dropped from a node slot."),
	}
}

// frameTypeName names a cluster frame type for the exposition label.
func frameTypeName(ft uint8) string {
	switch ft {
	case cfMsg:
		return "msg"
	case cfHello:
		return "hello"
	case cfWelcome:
		return "welcome"
	case cfSpawn:
		return "spawn"
	case cfSpawnResult:
		return "spawn_result"
	case cfKill:
		return "kill"
	case cfExit:
		return "exit"
	case cfPing:
		return "ping"
	}
	return "unknown"
}

func (m *ClusterMetrics) frameSent(ft uint8) {
	if m != nil {
		m.framesSent.With(frameTypeName(ft)).Inc()
	}
}

func (m *ClusterMetrics) frameReceived(ft uint8) {
	if m != nil {
		m.framesRecv.With(frameTypeName(ft)).Inc()
	}
}

func (m *ClusterMetrics) spawnObserved(seconds float64) {
	if m != nil {
		m.spawnSeconds.Observe(seconds)
	}
}

func (m *ClusterMetrics) nodeUp() {
	if m != nil {
		m.nodesUp.Inc()
	}
}

func (m *ClusterMetrics) nodeDown() {
	if m != nil {
		m.nodesDown.Inc()
	}
}
