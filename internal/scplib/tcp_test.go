package scplib

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func newTCP(t *testing.T) *TCPSystem {
	t.Helper()
	sys, err := NewTCPSystem("")
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTCPPingPong(t *testing.T) {
	sys := newTCP(t)
	var got string
	mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "ping", Body: func(env Env) error {
		if err := env.Send(2, 7, []byte("over tcp")); err != nil {
			return err
		}
		m, err := env.Recv()
		if err != nil {
			return err
		}
		got = string(m.Payload)
		return nil
	}})
	mustSpawn(t, sys, ThreadSpec{ID: 2, Name: "pong", Body: func(env Env) error {
		m, err := env.Recv()
		if err != nil {
			return err
		}
		if m.Kind != 7 || string(m.Payload) != "over tcp" {
			return fmt.Errorf("bad message %v", m)
		}
		return env.Send(m.From, 8, []byte("ack"))
	}})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "ack" {
		t.Fatalf("got %q", got)
	}
	if sys.Addr() == "" {
		t.Fatal("no listener address")
	}
}

func TestTCPFIFOAndLargePayloads(t *testing.T) {
	sys := newTCP(t)
	const n = 40
	payload := make([]byte, 128*1024) // forces multi-buffer frames
	var order []int
	mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "src", Body: func(env Env) error {
		for i := 0; i < n; i++ {
			payload[0] = byte(i)
			if err := env.Send(2, 1, append([]byte{byte(i)}, payload...)); err != nil {
				return err
			}
		}
		return nil
	}})
	mustSpawn(t, sys, ThreadSpec{ID: 2, Name: "dst", Body: func(env Env) error {
		for i := 0; i < n; i++ {
			m, err := env.Recv()
			if err != nil {
				return err
			}
			if len(m.Payload) != 1+len(payload) {
				return fmt.Errorf("payload truncated: %d", len(m.Payload))
			}
			order = append(order, int(m.Payload[0]))
		}
		return nil
	}})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, order[:i+1])
		}
	}
}

func TestTCPDropsToDeadThread(t *testing.T) {
	sys := newTCP(t)
	mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "src", Body: func(env Env) error {
		if err := env.Send(42, 1, []byte("nobody home")); err != nil {
			return err
		}
		// Give the dispatcher a moment to count the drop.
		_, err := env.RecvTimeout(0.2)
		if errors.Is(err, ErrTimeout) {
			return nil
		}
		return err
	}})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Dropped() == 0 {
		t.Fatal("drop not counted")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	sys := newTCP(t)
	mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "t", Body: func(env Env) error { return nil }})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys.Close()
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(from, to int32, kind uint16, seq uint64, payload []byte) bool {
		m := &Message{From: ThreadID(from), To: ThreadID(to), Kind: kind, Seq: seq, Payload: payload}
		var buf bytes.Buffer
		if err := writeFrame(&buf, m); err != nil {
			return false
		}
		got, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return got.From == m.From && got.To == m.To && got.Kind == m.Kind &&
			got.Seq == m.Seq && bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	// Length word below the header size.
	bad := []byte{3, 0, 0, 0, 1, 2, 3}
	if _, err := readFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("undersized frame accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	if err := writeFrame(&buf, &Message{From: 1, To: 2, Payload: []byte("xyz")}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := readFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Empty reader.
	if _, err := readFrame(bytes.NewReader(nil)); err == nil {
		t.Fatal("EOF not reported")
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	// Length word above maxFramePayload: must fail before allocating.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFramePayload+1)
	if _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	// Exactly at the cap the guard admits the length (the body read then
	// fails on truncation, not on the guard).
	binary.LittleEndian.PutUint32(hdr[:], maxFramePayload)
	if _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("truncated maximal frame accepted")
	}
}

func TestDialRetryRecoversWithinWindow(t *testing.T) {
	// Reserve a port, release it, and only start listening after a delay:
	// dialRetry must keep retrying past the initial refusals.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial side will fail the test
		}
		defer ln2.Close()
		c, err := ln2.Accept()
		if err == nil {
			c.Close()
		}
	}()

	c, err := dialRetry(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dialRetry gave up: %v", err)
	}
	c.Close()
}

func TestDialRetryFailsAfterWindow(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing will ever listen here again (probably)

	start := time.Now()
	if _, err := dialRetry(addr, 200*time.Millisecond); err == nil {
		t.Fatal("dialRetry succeeded against a dead address")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dialRetry overshot its window: %v", elapsed)
	}
}
