package scplib

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"resilientfusion/internal/simnet"
)

// sysFactory builds a fresh System for the cross-runtime test matrix.
type sysFactory struct {
	name string
	make func() System
}

func factories() []sysFactory {
	return []sysFactory{
		{"real", func() System { return NewRealSystem() }},
		{"sim", func() System {
			x, nodes := NewCluster(4, 0)
			return NewSimSystem(x, x.NewBus(0, 0), nodes, DefaultMsgCost())
		}},
	}
}

func TestPingPongBothRuntimes(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			var got string
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "ping", Node: 0, Body: func(env Env) error {
				if err := env.Send(2, 7, []byte("ping")); err != nil {
					return err
				}
				m, err := env.Recv()
				if err != nil {
					return err
				}
				got = string(m.Payload)
				return nil
			}})
			mustSpawn(t, sys, ThreadSpec{ID: 2, Name: "pong", Node: 1, Body: func(env Env) error {
				m, err := env.Recv()
				if err != nil {
					return err
				}
				if m.From != 1 || m.Kind != 7 {
					return fmt.Errorf("bad message %v", m)
				}
				return env.Send(m.From, 8, []byte("pong"))
			}})
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if got != "pong" {
				t.Fatalf("got %q", got)
			}
			if sys.BytesSent() < 2*WireHeaderBytes {
				t.Fatalf("BytesSent = %d", sys.BytesSent())
			}
		})
	}
}

func mustSpawn(t *testing.T, sys System, spec ThreadSpec) {
	t.Helper()
	if err := sys.Spawn(spec); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSender(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			const n = 50
			var got []uint64
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "src", Node: 0, Body: func(env Env) error {
				for i := 0; i < n; i++ {
					if err := env.Send(2, 1, []byte{byte(i)}); err != nil {
						return err
					}
				}
				return nil
			}})
			mustSpawn(t, sys, ThreadSpec{ID: 2, Name: "dst", Node: 1, Body: func(env Env) error {
				for i := 0; i < n; i++ {
					m, err := env.Recv()
					if err != nil {
						return err
					}
					got = append(got, uint64(m.Payload[0]))
				}
				return nil
			}})
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				if v != uint64(i) {
					t.Fatalf("out of order at %d: %v", i, got[:i+1])
				}
			}
		})
	}
}

func TestRecvMatchStashing(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			var order []uint16
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "src", Node: 0, Body: func(env Env) error {
				for _, k := range []uint16{5, 6, 7} {
					if err := env.Send(2, k, nil); err != nil {
						return err
					}
				}
				return nil
			}})
			mustSpawn(t, sys, ThreadSpec{ID: 2, Name: "dst", Node: 1, Body: func(env Env) error {
				// Ask for kind 7 first: kinds 5 and 6 get stashed.
				m, err := env.RecvMatch(func(m *Message) bool { return m.Kind == 7 })
				if err != nil {
					return err
				}
				order = append(order, m.Kind)
				// Plain Recv must now replay the stash in arrival order.
				for i := 0; i < 2; i++ {
					m, err := env.Recv()
					if err != nil {
						return err
					}
					order = append(order, m.Kind)
				}
				return nil
			}})
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			want := []uint16{7, 5, 6}
			for i := range want {
				if order[i] != want[i] {
					t.Fatalf("order = %v", order)
				}
			}
		})
	}
}

func TestRecvTimeout(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			var err1 error
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "t", Node: 0, Body: func(env Env) error {
				_, err1 = env.RecvTimeout(0.01)
				return nil
			}})
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if !errors.Is(err1, ErrTimeout) {
				t.Fatalf("err = %v", err1)
			}
		})
	}
}

func TestRecvMatchTimeoutStashesNonMatching(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			var sawTimeout bool
			var stashed uint16
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "src", Node: 0, Body: func(env Env) error {
				return env.Send(2, 9, nil)
			}})
			mustSpawn(t, sys, ThreadSpec{ID: 2, Name: "dst", Node: 1, Body: func(env Env) error {
				_, err := env.RecvMatchTimeout(func(m *Message) bool { return m.Kind == 100 }, 0.05)
				sawTimeout = errors.Is(err, ErrTimeout)
				m, err := env.Recv()
				if err != nil {
					return err
				}
				stashed = m.Kind
				return nil
			}})
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if !sawTimeout || stashed != 9 {
				t.Fatalf("sawTimeout=%v stashed=%d", sawTimeout, stashed)
			}
		})
	}
}

func TestKillUnblocksAndDropsSends(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			var victimErr error
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "victim", Node: 0, Body: func(env Env) error {
				_, victimErr = env.Recv()
				return victimErr
			}})
			mustSpawn(t, sys, ThreadSpec{ID: 2, Name: "killer", Node: 1, Body: func(env Env) error {
				if _, err := env.RecvTimeout(0.02); !errors.Is(err, ErrTimeout) {
					return fmt.Errorf("warmup: %v", err)
				}
				if !sys.Kill(1) {
					return errors.New("kill failed")
				}
				// Sends to the corpse are dropped, not errors.
				if err := env.Send(1, 1, []byte("too late")); err != nil {
					return err
				}
				return nil
			}})
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if !errors.Is(victimErr, ErrKilled) {
				t.Fatalf("victim err = %v", victimErr)
			}
			if sys.Dropped() == 0 {
				t.Fatal("dropped counter not incremented")
			}
			if sys.Kill(1) {
				t.Fatal("second kill reported true")
			}
			if sys.Kill(99) {
				t.Fatal("kill of unknown thread reported true")
			}
		})
	}
}

func TestSendToUnknownDrops(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "src", Node: 0, Body: func(env Env) error {
				return env.Send(42, 1, nil)
			}})
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if sys.Dropped() != 1 {
				t.Fatalf("dropped = %d", sys.Dropped())
			}
		})
	}
}

func TestDuplicateSpawnRejected(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			body := func(env Env) error { return nil }
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "a", Node: 0, Body: body})
			if err := sys.Spawn(ThreadSpec{ID: 1, Name: "b", Node: 0, Body: body}); !errors.Is(err, ErrDuplicateThread) {
				t.Fatalf("err = %v", err)
			}
			if err := sys.Spawn(ThreadSpec{ID: 2, Name: "nil", Node: 0}); err == nil {
				t.Fatal("nil body accepted")
			}
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDynamicSpawnFromRunningThread(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			var childRan bool
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "parent", Node: 0, Body: func(env Env) error {
				err := sys.Spawn(ThreadSpec{ID: 2, Name: "child", Node: 1, Body: func(env Env) error {
					childRan = true
					return env.Send(1, 3, nil)
				}})
				if err != nil {
					return err
				}
				_, err = env.Recv()
				return err
			}})
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if !childRan {
				t.Fatal("child did not run")
			}
		})
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			boom := errors.New("boom")
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "bad", Node: 0, Body: func(env Env) error {
				return boom
			}})
			if err := sys.Run(); !errors.Is(err, boom) {
				t.Fatalf("Run err = %v", err)
			}
		})
	}
}

func TestKilledBodyErrorSuppressed(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			sys := f.make()
			mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "victim", Node: 0, Body: func(env Env) error {
				_, err := env.Recv()
				return err
			}})
			mustSpawn(t, sys, ThreadSpec{ID: 2, Name: "killer", Node: 1, Body: func(env Env) error {
				if _, err := env.RecvTimeout(0.01); !errors.Is(err, ErrTimeout) {
					return err
				}
				sys.Kill(1)
				return nil
			}})
			if err := sys.Run(); err != nil {
				t.Fatalf("ErrKilled leaked into Run result: %v", err)
			}
		})
	}
}

// --- Sim-runtime-specific behaviour ---

func TestSimComputeAdvancesVirtualTime(t *testing.T) {
	x, nodes := NewCluster(2, 100) // 100 flops/s
	sys := NewSimSystem(x, x.NewZeroNet(), nodes, MsgCost{})
	var at float64
	mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "w", Node: 0, Body: func(env Env) error {
		if err := env.Compute(500); err != nil {
			return err
		}
		at = env.Now()
		return nil
	}})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5 {
		t.Fatalf("compute finished at %g", at)
	}
}

func TestSimMessageChargesNetworkTime(t *testing.T) {
	x, nodes := NewCluster(2, 1e9)
	bus := x.NewBus(1000, 0.5) // 1000 B/s, 0.5s latency
	sys := NewSimSystem(x, bus, nodes, MsgCost{})
	var at float64
	payload := make([]byte, 1000-WireHeaderBytes) // 1000 wire bytes → 1s
	mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "src", Node: 0, Body: func(env Env) error {
		return env.Send(2, 1, payload)
	}})
	mustSpawn(t, sys, ThreadSpec{ID: 2, Name: "dst", Node: 1, Body: func(env Env) error {
		_, err := env.Recv()
		at = env.Now()
		return err
	}})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 1.49 || at > 1.51 {
		t.Fatalf("message arrived at %g, want 1.5", at)
	}
}

func TestSimDeterministicVirtualTime(t *testing.T) {
	run := func() float64 {
		x, nodes := NewCluster(4, 0)
		sys := NewSimSystem(x, x.NewBus(0, 0), nodes, DefaultMsgCost())
		for i := 0; i < 4; i++ {
			id := ThreadID(i + 10)
			node := i
			mustSpawn(t, sys, ThreadSpec{ID: id, Name: fmt.Sprintf("w%d", i), Node: node, Body: func(env Env) error {
				for j := 0; j < 3; j++ {
					if err := env.Compute(1e6 * float64(node+1)); err != nil {
						return err
					}
					if err := env.Send(ThreadID(10+(node+1)%4), 1, make([]byte, 1024)); err != nil {
						return err
					}
					if _, err := env.Recv(); err != nil {
						return err
					}
				}
				return nil
			}})
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual time not deterministic: %g vs %g", a, b)
	}
	if a == 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestSimProcessorSharingAcrossThreads(t *testing.T) {
	// Two threads on the same node take twice as long as one each.
	x, nodes := NewCluster(1, 100)
	sys := NewSimSystem(x, x.NewZeroNet(), nodes, MsgCost{})
	var at1, at2 float64
	mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "a", Node: 0, Body: func(env Env) error {
		err := env.Compute(100)
		at1 = env.Now()
		return err
	}})
	mustSpawn(t, sys, ThreadSpec{ID: 2, Name: "b", Node: 0, Body: func(env Env) error {
		err := env.Compute(100)
		at2 = env.Now()
		return err
	}})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 2 || at2 != 2 {
		t.Fatalf("finish times %g, %g, want 2, 2", at1, at2)
	}
}

func TestSimSpawnValidation(t *testing.T) {
	x, nodes := NewCluster(1, 0)
	sys := NewSimSystem(x, x.NewZeroNet(), nodes, MsgCost{})
	err := sys.Spawn(ThreadSpec{ID: 1, Name: "bad", Node: 7, Body: func(env Env) error { return nil }})
	if !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestSimNodeFailureKillsThread(t *testing.T) {
	x, nodes := NewCluster(2, 100)
	sys := NewSimSystem(x, x.NewZeroNet(), nodes, MsgCost{})
	var err1 error
	mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "w", Node: 0, Body: func(env Env) error {
		_, err1 = env.Recv()
		return err1
	}})
	x.Schedule(1, func() { nodes[0].Fail() })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(err1, ErrKilled) {
		t.Fatalf("thread err = %v", err1)
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{From: 1, To: 2, Kind: 3, Seq: 4, Payload: []byte("abc")}
	if m.String() == "" || m.WireSize() != WireHeaderBytes+3 {
		t.Fatalf("String/WireSize: %q %d", m.String(), m.WireSize())
	}
}

func TestSimLogf(t *testing.T) {
	x, nodes := NewCluster(1, 0)
	sys := NewSimSystem(x, x.NewZeroNet(), nodes, MsgCost{})
	var lines int
	sys.LogTo = func(format string, args ...any) { lines++ }
	mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "w", Node: 0, Body: func(env Env) error {
		env.Logf("hello %d", 1)
		return nil
	}})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if lines != 1 {
		t.Fatalf("lines = %d", lines)
	}
	// Real runtime Logf with no sink must not crash.
	rs := NewRealSystem()
	mustSpawn(t, rs, ThreadSpec{ID: 1, Name: "w", Body: func(env Env) error {
		env.Logf("quiet")
		return nil
	}})
	if err := rs.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSimThreadKilledMidComputeViaSystem(t *testing.T) {
	x, nodes := NewCluster(1, 100)
	sys := NewSimSystem(x, x.NewZeroNet(), nodes, MsgCost{})
	var err1 error
	mustSpawn(t, sys, ThreadSpec{ID: 1, Name: "w", Node: 0, Body: func(env Env) error {
		err1 = env.Compute(1e12)
		return err1
	}})
	x.Schedule(0.5, func() { sys.Kill(1) })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(err1, ErrKilled) {
		t.Fatalf("err = %v", err1)
	}
	_ = simnet.ErrKilled // document mapping exists
}

// TestRealSystemLifecycle exercises the long-lived Start/Wait path used
// by the service pool: spawn while running, reap finished threads, Stop.
func TestRealSystemLifecycle(t *testing.T) {
	sys := NewRealSystem()
	results := make(chan ThreadID, 8)
	persistent := func(env Env) error {
		for {
			m, err := env.Recv()
			if err != nil {
				return err
			}
			if m.Kind == 99 {
				return nil
			}
		}
	}
	if err := sys.Spawn(ThreadSpec{ID: 1, Name: "worker", Body: persistent}); err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.Start() // idempotent

	// Spawn short-lived "job" threads while the system is running; each
	// must be reaped from the thread table on return.
	for i := ThreadID(10); i < 14; i++ {
		id := i
		if err := sys.Spawn(ThreadSpec{ID: id, Name: "job", Body: func(env Env) error {
			results <- env.Self()
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[ThreadID]bool{}
	for len(seen) < 4 {
		seen[<-results] = true
	}
	deadline := time.Now().Add(5 * time.Second)
	for sys.Live() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("finished threads not reaped: %d live", sys.Live())
		}
		time.Sleep(time.Millisecond)
	}

	// A reaped ID can be reused.
	if err := sys.Spawn(ThreadSpec{ID: 10, Name: "job2", Body: func(env Env) error {
		results <- env.Self()
		return nil
	}}); err != nil {
		t.Fatalf("reused reaped ID: %v", err)
	}
	<-results

	sys.Stop()
	if err := sys.Wait(); err != nil {
		t.Fatalf("Wait after Stop: %v", err)
	}
}
