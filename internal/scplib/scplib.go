// Package scplib is this repository's analog of the paper's SCPlib
// concurrent programming library (Taylor et al., Watts et al.): distributed
// applications are collections of named threads with an explicit,
// machine-independent communication structure, exchanging asynchronous
// reliable FIFO messages. The same application body runs unchanged on
// every runtime:
//
//   - Real: goroutines and channels on the host (true parallelism).
//   - Sim: simnet virtual-time cluster (reproduces the paper's
//     16-workstation measurements deterministically).
//
// The resiliency layer (internal/resilient) builds replication, failure
// detection and regeneration on top of this interface, exactly as the
// paper layers its resiliency protocols over SCPlib.
package scplib

import (
	"errors"
	"fmt"
)

// ThreadID identifies a thread within a System. IDs are assigned by the
// application; the resilient layer maps logical thread identities onto
// physical ThreadIDs.
type ThreadID int32

// Message is the unit of communication. Payload encoding is the
// application's business (internal/core uses a hand-rolled binary codec so
// message sizes are deterministic for the performance model).
type Message struct {
	From, To ThreadID
	Kind     uint16
	Seq      uint64 // transport sequence, per (sender) — diagnostics only
	Payload  []byte
}

// WireHeaderBytes is the modeled size of the transport header framing each
// message on the network (addresses, kind, sequence, length, checksum).
const WireHeaderBytes = 32

// WireSize returns the modeled on-the-wire size of the message.
func (m *Message) WireSize() int64 { return WireHeaderBytes + int64(len(m.Payload)) }

func (m *Message) String() string {
	return fmt.Sprintf("msg{%d->%d kind=%d seq=%d %dB}", m.From, m.To, m.Kind, m.Seq, len(m.Payload))
}

// Errors shared by runtimes.
var (
	// ErrKilled unwinds the body of a thread destroyed by failure
	// injection or an information-warfare attack.
	ErrKilled = errors.New("scplib: thread killed")
	// ErrTimeout is returned by RecvTimeout at its deadline.
	ErrTimeout = errors.New("scplib: receive timeout")
	// ErrStopped is returned when receiving after the system shut down.
	ErrStopped = errors.New("scplib: system stopped")
	// ErrDuplicateThread is returned when spawning an existing ThreadID.
	ErrDuplicateThread = errors.New("scplib: duplicate thread id")
	// ErrNoSuchNode is returned when a spec names an unknown node.
	ErrNoSuchNode = errors.New("scplib: no such node")
	// ErrNodeDown is returned when spawning onto a failed node.
	ErrNodeDown = errors.New("scplib: node is down")
)

// Env is the execution environment handed to every thread body. All
// blocking calls return ErrKilled once the thread has been killed; bodies
// must propagate that error upward promptly (that is what makes threads
// killable, mirroring how SCPlib threads synchronize at message receipt).
type Env interface {
	// Self returns this thread's ID.
	Self() ThreadID
	// Now returns the runtime's clock in seconds (virtual in Sim).
	Now() float64
	// Send asynchronously delivers a message. Sends to unknown or dead
	// threads are dropped silently (stale replica views make these
	// legitimate); the System counts drops for diagnostics.
	Send(to ThreadID, kind uint16, payload []byte) error
	// Recv blocks until the next message arrives.
	Recv() (*Message, error)
	// RecvTimeout blocks up to the given number of seconds.
	RecvTimeout(seconds float64) (*Message, error)
	// RecvMatch returns the oldest buffered or incoming message for
	// which match returns true; non-matching messages are stashed and
	// returned by later Recv* calls in arrival order.
	RecvMatch(match func(*Message) bool) (*Message, error)
	// RecvMatchTimeout is RecvMatch with a deadline.
	RecvMatchTimeout(match func(*Message) bool, seconds float64) (*Message, error)
	// Compute charges flops of computation to this thread's processor.
	// On the Real runtime it is a no-op (the real work was just done);
	// on Sim it advances virtual time under processor sharing.
	Compute(flops float64) error
	// Logf emits a diagnostic line through the system's logger.
	Logf(format string, args ...any)
}

// Body is a thread's entry point.
type Body func(env Env) error

// RemoteBody names a thread body by registered kind plus serialized
// arguments, so a spec can be reconstructed in another process: the
// ClusterSystem ships it to a fusionworkerd, whose BodyRegistry maps Kind
// back to a factory. Runtimes without a remote transport ignore it and
// run Body directly.
type RemoteBody struct {
	Kind string
	Args []byte
}

// ThreadSpec describes a thread to spawn.
type ThreadSpec struct {
	ID   ThreadID
	Name string
	// Node places the thread on a cluster node (Sim and Cluster
	// runtimes); the plain Real runtime ignores placement.
	Node int
	Body Body
	// Remote, when set, lets a ClusterSystem spawn the thread in a remote
	// worker process instead of running Body locally. Specs may carry
	// both: Body is the local (node 0) form, Remote the shippable one.
	Remote *RemoteBody
}

// System orchestrates a set of threads on some runtime.
type System interface {
	// Spawn adds a thread. It may be called before Run to define the
	// initial configuration, or from inside a running thread to
	// reconfigure dynamically (regeneration does this).
	Spawn(spec ThreadSpec) error
	// Kill destroys a thread, unblocking it with ErrKilled. It reports
	// whether the thread existed and was alive.
	Kill(id ThreadID) bool
	// Run executes until every thread has returned. It returns the
	// combined non-ErrKilled errors of all bodies.
	Run() error
	// Now returns the runtime clock in seconds.
	Now() float64
	// Dropped returns the count of messages dropped on send (unknown or
	// dead destinations).
	Dropped() int64
	// BytesSent returns cumulative payload+header bytes accepted for
	// transmission, for the performance model's accounting.
	BytesSent() int64
}

// stash implements selective receive on top of a FIFO pull function: it
// holds messages that did not match an earlier RecvMatch predicate and
// replays them first. Both runtimes embed one per thread; it is only ever
// touched by the owning thread, so it needs no locking.
type stash struct {
	buf []*Message
}

// next returns the oldest stashed message matching match (removing it),
// or nil.
func (s *stash) next(match func(*Message) bool) *Message {
	for i, m := range s.buf {
		if match == nil || match(m) {
			s.buf = append(s.buf[:i], s.buf[i+1:]...)
			return m
		}
	}
	return nil
}

// keep appends a non-matching message for later delivery.
func (s *stash) keep(m *Message) { s.buf = append(s.buf, m) }

// matchAny accepts any message.
func matchAny(*Message) bool { return true }

// recvCommon implements Recv/RecvMatch semantics over a pull function.
// pull blocks until a new message arrives or fails with the runtime's
// error (killed/timeout/stopped).
func recvCommon(s *stash, match func(*Message) bool, pull func() (*Message, error)) (*Message, error) {
	if match == nil {
		match = matchAny
	}
	if m := s.next(match); m != nil {
		return m, nil
	}
	for {
		m, err := pull()
		if err != nil {
			return nil, err
		}
		if match(m) {
			return m, nil
		}
		s.keep(m)
	}
}
