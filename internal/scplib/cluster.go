package scplib

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ClusterSystem is a RealSystem that spans processes: it listens for
// fusionworkerd connections, assigns each a worker-node slot (1..slots;
// the coordinator itself is node 0), and routes messages between local
// threads and threads spawned remotely. Specs with Node > 0 are shipped
// to the matching worker as a RemoteBody spawn RPC; specs with Node 0
// run locally. Per-sender FIFO is preserved — each node pair shares one
// ordered TCP connection, and readers forward frames in arrival order —
// which is the delivery property the resilient layer's dedupe and the
// fusion manager's protocol are built on.
//
// Connection-level liveness feeds the failure detector: read errors on a
// worker connection fire OnNodeDown, periodic worker pings (and any
// other inbound frame) fire OnNodeAlive, and reaped remote threads fire
// OnThreadExit. The resilient guardian merges these transport facts with
// application heartbeats, so a kill -9'd worker process is detected at
// connection speed even while surviving replicas are deep in a kernel.
//
// Cluster frame layout (little-endian): length uint32 of the remainder,
// ftype uint8, then a type-specific body. cfMsg bodies reuse the
// TCPSystem message layout (from, to, kind, seq, payload).
type ClusterSystem struct {
	*RealSystem

	ln           net.Listener
	spawnTimeout time.Duration

	// Hooks into the resiliency layer; assign them (and LogTo) between
	// NewClusterSystem and Serve — no worker can connect before Serve, so
	// the assignments never race with the transport goroutines that read
	// them. All are invoked from transport goroutines without locks held.
	OnNodeDown   func(node int)
	OnNodeAlive  func(node int)
	OnThreadExit func(id ThreadID)
	// Metrics, when set (same assignment window as the hooks), counts
	// transport events: frames by type, spawn RPC latency, node slot
	// transitions. Nil disables instrumentation.
	Metrics *ClusterMetrics

	mu      sync.Mutex
	closed  bool
	serving bool
	slots   int
	nodes   map[int]*clusterPeer
	owner   map[ThreadID]int // remote thread -> hosting node
	pending map[ThreadID]pendingSpawn
	wg      sync.WaitGroup
}

// pendingSpawn tracks one in-flight spawn RPC and the node it targets,
// so a peer drop fails exactly the spawns aimed at that node.
type pendingSpawn struct {
	ch   chan error
	node int
}

type clusterPeer struct {
	node      int
	c         net.Conn
	m         *ClusterMetrics // shared with the owning system (may be nil)
	wmu       sync.Mutex
	w         *bufio.Writer
	lastAlive time.Time // throttles OnNodeAlive fan-out
}

// Cluster control frame types.
const (
	cfMsg uint8 = iota
	cfHello
	cfWelcome
	cfSpawn
	cfSpawnResult
	cfKill
	cfExit
	cfPing
)

// clusterProtoVersion gates hello exchanges so a stale fusionworkerd
// build fails loudly instead of desynchronizing the frame stream.
const clusterProtoVersion uint16 = 1

// ErrNotRemotable reports a remote spawn of a spec without a RemoteBody.
var ErrNotRemotable = errors.New("scplib: thread spec has no remote body")

// NewClusterSystem binds a listener on addr ("127.0.0.1:0" picks an
// ephemeral port) for up to workerSlots fusionworkerd connections, each
// becoming one cluster node. The system does not accept connections
// until Serve — assign the liveness hooks first.
func NewClusterSystem(addr string, workerSlots int) (*ClusterSystem, error) {
	if workerSlots < 1 {
		return nil, fmt.Errorf("scplib: cluster needs at least 1 worker slot, got %d", workerSlots)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("scplib: cluster listen: %w", err)
	}
	s := &ClusterSystem{
		RealSystem:   NewRealSystem(),
		ln:           ln,
		spawnTimeout: 10 * time.Second,
		slots:        workerSlots,
		nodes:        make(map[int]*clusterPeer),
		owner:        make(map[ThreadID]int),
		pending:      make(map[ThreadID]pendingSpawn),
	}
	s.RealSystem.sendVia = s.route
	return s, nil
}

// Serve starts accepting worker connections (idempotent; a no-op after
// Close). Call it once the liveness hooks and logger are assigned:
// transport goroutines read those fields, so assigning them after Serve
// is a data race.
func (s *ClusterSystem) Serve() {
	s.mu.Lock()
	if s.serving || s.closed {
		s.mu.Unlock()
		return
	}
	s.serving = true
	s.wg.Add(1)
	s.mu.Unlock()
	go s.acceptLoop()
}

// Addr returns the coordinator's listen address.
func (s *ClusterSystem) Addr() string { return s.ln.Addr().String() }

// LiveWorkers returns how many worker nodes are currently connected.
func (s *ClusterSystem) LiveWorkers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.nodes)
}

// LiveNodes lists the currently connected worker node slots.
func (s *ClusterSystem) LiveNodes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	nodes := make([]int, 0, len(s.nodes))
	for n := range s.nodes {
		nodes = append(nodes, n)
	}
	return nodes
}

// Close tears the transport down (idempotent): the listener stops, every
// worker connection is closed, and pending spawn RPCs fail. Local
// threads are the RealSystem's business (Stop/Wait as usual).
func (s *ClusterSystem) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	peers := make([]*clusterPeer, 0, len(s.nodes))
	for _, p := range s.nodes {
		peers = append(peers, p)
	}
	s.mu.Unlock()

	s.ln.Close()
	for _, p := range peers {
		p.c.Close()
	}
	s.wg.Wait()
}

// Spawn runs Node-0 specs locally and ships Node>0 specs to the matching
// worker process as a synchronous spawn RPC. A missing or lost worker
// yields ErrNodeDown, which is exactly the signal the guardian's
// regeneration candidate scan expects.
func (s *ClusterSystem) Spawn(spec ThreadSpec) error {
	if spec.Node <= 0 {
		return s.RealSystem.Spawn(spec)
	}
	if spec.Node > s.slots {
		return fmt.Errorf("%w: node %d of %d", ErrNoSuchNode, spec.Node, s.slots)
	}
	if spec.Remote == nil {
		return fmt.Errorf("%w: %s", ErrNotRemotable, spec.Name)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrStopped
	}
	peer := s.nodes[spec.Node]
	if peer == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: node %d", ErrNodeDown, spec.Node)
	}
	if _, dup := s.owner[spec.ID]; dup || s.RealSystem.has(spec.ID) {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d (%s)", ErrDuplicateThread, spec.ID, spec.Name)
	}
	// Register ownership before writing so messages sent the instant the
	// RPC is on the wire already route to the worker (the conn is FIFO:
	// the spawn frame precedes them).
	s.owner[spec.ID] = spec.Node
	ch := make(chan error, 1)
	s.pending[spec.ID] = pendingSpawn{ch: ch, node: spec.Node}
	s.mu.Unlock()

	t0 := time.Now()
	if err := peer.writeFrame(cfSpawn, encodeSpawn(spec)); err != nil {
		s.dropPeer(peer)
		return fmt.Errorf("%w: node %d", ErrNodeDown, spec.Node)
	}
	select {
	case err := <-ch:
		s.Metrics.spawnObserved(time.Since(t0).Seconds())
		if err != nil {
			s.mu.Lock()
			delete(s.owner, spec.ID)
			s.mu.Unlock()
		}
		return err
	case <-time.After(s.spawnTimeout):
		s.Metrics.spawnObserved(time.Since(t0).Seconds())
		s.mu.Lock()
		delete(s.pending, spec.ID)
		delete(s.owner, spec.ID)
		late := s.nodes[spec.Node]
		s.mu.Unlock()
		// The worker may still complete the spawn moments from now; with
		// the routing entries gone it would run orphaned until the job
		// ends. A kill frame queued behind the spawn frame (same FIFO
		// connection) reaps such a late spawn. Against a reconnected peer
		// the kill targets a thread that never existed — harmless.
		if late != nil {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(spec.ID))
			late.writeFrame(cfKill, buf[:])
		}
		return fmt.Errorf("%w: node %d (spawn timeout)", ErrNodeDown, spec.Node)
	}
}

// Kill destroys a local thread directly or asks the hosting worker to
// kill a remote one. The remote form reports true for any thread still
// routed to a live node; the worker-side kill is asynchronous.
func (s *ClusterSystem) Kill(id ThreadID) bool {
	s.mu.Lock()
	node, remote := s.owner[id]
	peer := s.nodes[node]
	s.mu.Unlock()
	if !remote {
		return s.RealSystem.Kill(id)
	}
	if peer == nil {
		return false
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(id))
	if err := peer.writeFrame(cfKill, buf[:]); err != nil {
		s.dropPeer(peer)
		return false
	}
	return true
}

// route is the RealSystem's sendVia: deliver locally unless the
// destination is owned by a worker node, in which case frame it out.
// Transport write failures count as drops (like sends to dead threads)
// and take the broken peer down; they never fail the sender.
func (s *ClusterSystem) route(m *Message) error {
	s.mu.Lock()
	node, remote := s.owner[m.To]
	peer := s.nodes[node]
	s.mu.Unlock()
	if !remote {
		s.RealSystem.deliverLocal(m)
		return nil
	}
	if peer == nil {
		s.RealSystem.dropped.Add(1)
		return nil
	}
	if err := peer.writeFrame(cfMsg, encodeMsgBody(m)); err != nil {
		s.RealSystem.dropped.Add(1)
		s.dropPeer(peer)
	}
	return nil
}

// acceptLoop admits worker connections.
func (s *ClusterSystem) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveWorker(conn)
		}()
	}
}

// serveWorker performs the hello/welcome handshake, then pumps the
// worker's frames until the connection breaks.
func (s *ClusterSystem) serveWorker(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(10 * time.Second)
	}
	r := bufio.NewReaderSize(conn, 1<<16)
	ftype, body, err := readClusterFrame(r)
	if err != nil || ftype != cfHello || len(body) < 2 ||
		binary.LittleEndian.Uint16(body) != clusterProtoVersion {
		return // not a compatible worker
	}
	s.Metrics.frameReceived(cfHello)

	peer := &clusterPeer{c: conn, m: s.Metrics, w: bufio.NewWriterSize(conn, 1<<16)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	for n := 1; n <= s.slots; n++ {
		if s.nodes[n] == nil {
			peer.node = n
			s.nodes[n] = peer
			break
		}
	}
	s.mu.Unlock()

	var welcome [4]byte
	binary.LittleEndian.PutUint32(welcome[:], uint32(int32(peer.node)))
	if err := peer.writeFrame(cfWelcome, welcome[:]); err != nil || peer.node == 0 {
		// No free slot (node 0 signals rejection) or a broken pipe.
		s.dropPeer(peer)
		return
	}
	s.logf("cluster: worker connected as node %d (%s)", peer.node, conn.RemoteAddr())
	s.Metrics.nodeUp()

	for {
		ftype, body, err := readClusterFrame(r)
		if err != nil {
			s.logf("cluster: node %d read: %v", peer.node, err)
			s.dropPeer(peer)
			return
		}
		s.Metrics.frameReceived(ftype)
		s.touchAlive(peer)
		switch ftype {
		case cfMsg:
			m, err := decodeMsgBody(body)
			if err != nil {
				continue
			}
			// Worker-to-worker traffic relays through the coordinator.
			s.route(m)
		case cfSpawnResult:
			id, serr := decodeSpawnResult(body)
			s.mu.Lock()
			p, ok := s.pending[id]
			delete(s.pending, id)
			s.mu.Unlock()
			if ok {
				p.ch <- serr
			}
		case cfExit:
			if len(body) < 4 {
				continue
			}
			id := ThreadID(int32(binary.LittleEndian.Uint32(body)))
			s.mu.Lock()
			delete(s.owner, id)
			hook := s.OnThreadExit
			s.mu.Unlock()
			if hook != nil {
				hook(id)
			}
		case cfPing:
			// Liveness only; touchAlive above did the work.
		}
	}
}

// touchAlive fires OnNodeAlive at most every 100ms per peer.
func (s *ClusterSystem) touchAlive(peer *clusterPeer) {
	s.mu.Lock()
	hook := s.OnNodeAlive
	now := time.Now()
	due := hook != nil && now.Sub(peer.lastAlive) >= 100*time.Millisecond
	if due {
		peer.lastAlive = now
	}
	s.mu.Unlock()
	if due {
		hook(peer.node)
	}
}

// dropPeer retires a broken or rejected worker connection: its slot
// frees for a reconnect, its threads leave the routing table, pending
// spawns against it fail, and OnNodeDown fires.
func (s *ClusterSystem) dropPeer(peer *clusterPeer) {
	s.mu.Lock()
	if peer.node == 0 || s.nodes[peer.node] != peer {
		s.mu.Unlock()
		peer.c.Close()
		return
	}
	delete(s.nodes, peer.node)
	for id, n := range s.owner {
		if n == peer.node {
			delete(s.owner, id)
		}
	}
	var failed []chan error
	for id, p := range s.pending {
		if p.node == peer.node {
			delete(s.pending, id)
			failed = append(failed, p.ch)
		}
	}
	closed := s.closed
	hook := s.OnNodeDown
	s.mu.Unlock()

	peer.c.Close()
	s.Metrics.nodeDown()
	for _, ch := range failed {
		ch <- fmt.Errorf("%w: node %d", ErrNodeDown, peer.node)
	}
	if hook != nil && !closed {
		hook(peer.node)
	}
	s.logf("cluster: node %d down", peer.node)
}

func (s *ClusterSystem) logf(format string, args ...any) {
	if s.RealSystem.LogTo != nil {
		s.RealSystem.LogTo(format, args...)
	}
}

func (p *clusterPeer) writeFrame(ftype uint8, body []byte) error {
	p.m.frameSent(ftype)
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if err := writeClusterFrame(p.w, ftype, body); err != nil {
		return err
	}
	return p.w.Flush()
}

var _ System = (*ClusterSystem)(nil)

// --- cluster frame codecs ---

// writeClusterFrame emits length (type byte + body), type, body.
func writeClusterFrame(w io.Writer, ftype uint8, body []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(1+len(body)))
	hdr[4] = ftype
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readClusterFrame decodes one frame, enforcing the same corrupt-length
// guard as the TCPSystem's readFrame.
func readClusterFrame(r io.Reader) (uint8, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 1 || n > maxFramePayload {
		return 0, nil, fmt.Errorf("scplib: bad cluster frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// encodeMsgBody lays a Message out exactly like the TCPSystem frame body.
func encodeMsgBody(m *Message) []byte {
	buf := make([]byte, frameHeaderBytes+len(m.Payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(m.From))
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.To))
	binary.LittleEndian.PutUint16(buf[8:], m.Kind)
	binary.LittleEndian.PutUint64(buf[10:], m.Seq)
	copy(buf[frameHeaderBytes:], m.Payload)
	return buf
}

func decodeMsgBody(b []byte) (*Message, error) {
	if len(b) < frameHeaderBytes {
		return nil, fmt.Errorf("scplib: short cluster message body (%d bytes)", len(b))
	}
	m := &Message{
		From: ThreadID(int32(binary.LittleEndian.Uint32(b[0:]))),
		To:   ThreadID(int32(binary.LittleEndian.Uint32(b[4:]))),
		Kind: binary.LittleEndian.Uint16(b[8:]),
		Seq:  binary.LittleEndian.Uint64(b[10:]),
	}
	if len(b) > frameHeaderBytes {
		m.Payload = append([]byte(nil), b[frameHeaderBytes:]...)
	}
	return m, nil
}

// spawn body: thread int32, nameLen uint16, name, kindLen uint16, kind,
// args (remainder).
func encodeSpawn(spec ThreadSpec) []byte {
	name, kind := []byte(spec.Name), []byte(spec.Remote.Kind)
	buf := make([]byte, 0, 8+len(name)+len(kind)+len(spec.Remote.Args))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(spec.ID))
	buf = append(buf, u32[:]...)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(name)))
	buf = append(buf, u16[:]...)
	buf = append(buf, name...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(kind)))
	buf = append(buf, u16[:]...)
	buf = append(buf, kind...)
	return append(buf, spec.Remote.Args...)
}

func decodeSpawn(b []byte) (id ThreadID, name, kind string, args []byte, err error) {
	bad := fmt.Errorf("scplib: malformed spawn frame")
	if len(b) < 6 {
		return 0, "", "", nil, bad
	}
	id = ThreadID(int32(binary.LittleEndian.Uint32(b)))
	off := 4
	n := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if off+n+2 > len(b) {
		return 0, "", "", nil, bad
	}
	name = string(b[off : off+n])
	off += n
	k := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if off+k > len(b) {
		return 0, "", "", nil, bad
	}
	kind = string(b[off : off+k])
	off += k
	return id, name, kind, append([]byte(nil), b[off:]...), nil
}

// spawn result body: thread int32, ok uint8, error text (remainder).
func encodeSpawnResult(id ThreadID, err error) []byte {
	var msg []byte
	ok := byte(1)
	if err != nil {
		ok = 0
		msg = []byte(err.Error())
	}
	buf := make([]byte, 5+len(msg))
	binary.LittleEndian.PutUint32(buf, uint32(id))
	buf[4] = ok
	copy(buf[5:], msg)
	return buf
}

func decodeSpawnResult(b []byte) (ThreadID, error) {
	if len(b) < 5 {
		return 0, errors.New("scplib: malformed spawn result")
	}
	id := ThreadID(int32(binary.LittleEndian.Uint32(b)))
	if b[4] == 1 {
		return id, nil
	}
	return id, fmt.Errorf("scplib: remote spawn failed: %s", b[5:])
}
