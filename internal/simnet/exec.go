// Package simnet is a deterministic, process-oriented discrete-event
// simulator used to reproduce the paper's cluster measurements on a
// machine that does not have 16 workstations. Simulated processes are
// goroutines, but exactly one runs at a time: a process executes real Go
// code (the actual PCT math) and blocks only through its Proc handle
// (Compute, Sleep, mailbox Recv), which charges *virtual* time from the
// performance model. Two runs with the same inputs produce identical
// event orders and identical virtual clocks.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrKilled is returned from blocking calls of a process that has been
// killed by failure injection.
var ErrKilled = errors.New("simnet: process killed")

// ErrNodeFailed is returned when computing on a failed node.
var ErrNodeFailed = errors.New("simnet: node failed")

// DeadlockError reports that the event queue drained while processes were
// still blocked.
type DeadlockError struct {
	Blocked []string // names of blocked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("simnet: deadlock, %d processes blocked: %s",
		len(e.Blocked), strings.Join(e.Blocked, ", "))
}

// event is a scheduled closure. Events with equal time fire in schedule
// order (seq), making the simulation deterministic.
type event struct {
	t         float64
	seq       uint64
	fn        func()
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Exec is the discrete-event executor. It is not safe for concurrent use
// from outside: processes and event closures are serialized by design, and
// the host must not call into an Exec while Run is active except from
// inside a process body or event.
type Exec struct {
	now    float64
	seq    uint64
	events eventHeap
	procs  []*Proc
	// Trace, when non-nil, receives a line per interesting transition.
	Trace func(t float64, format string, args ...any)
	// Horizon, when positive, aborts Run with ErrHorizon once virtual
	// time passes it — a guard against protocol loops that never drain
	// (e.g. a failure detector nobody shuts down).
	Horizon float64
}

// ErrHorizon is returned by Run when the simulation passes Exec.Horizon.
var ErrHorizon = errors.New("simnet: virtual time horizon exceeded")

// NewExec returns an empty executor at time zero.
func NewExec() *Exec { return &Exec{} }

// Now returns the current virtual time in seconds.
func (x *Exec) Now() float64 { return x.now }

// Schedule registers fn to run at absolute virtual time t (clamped to
// now). It returns a handle that can cancel the event.
func (x *Exec) Schedule(t float64, fn func()) *event {
	if t < x.now {
		t = x.now
	}
	x.seq++
	e := &event{t: t, seq: x.seq, fn: fn}
	heap.Push(&x.events, e)
	return e
}

// After schedules fn to run dt seconds from now.
func (x *Exec) After(dt float64, fn func()) *event { return x.Schedule(x.now+dt, fn) }

// Cancel marks a scheduled event as cancelled (no-op if already fired).
func (x *Exec) Cancel(e *event) {
	if e != nil {
		e.cancelled = true
	}
}

func (x *Exec) tracef(format string, args ...any) {
	if x.Trace != nil {
		x.Trace(x.now, format, args...)
	}
}

// Run processes events until the queue drains. It returns nil when every
// spawned process has finished, a *DeadlockError when processes remain
// blocked with nothing scheduled, and the first process error otherwise
// (processes that fail stop the simulation only by finishing; their
// errors are aggregated).
func (x *Exec) Run() error {
	for len(x.events) > 0 {
		e := heap.Pop(&x.events).(*event)
		if e.cancelled {
			continue
		}
		if x.Horizon > 0 && e.t > x.Horizon {
			return fmt.Errorf("%w: %g > %g", ErrHorizon, e.t, x.Horizon)
		}
		if e.t > x.now {
			x.now = e.t
		}
		e.fn()
	}
	var blocked []string
	for _, p := range x.procs {
		if p.state == procWaiting {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Blocked: blocked}
	}
	return nil
}

// Errors returns the non-nil errors returned by finished process bodies,
// in spawn order. ErrKilled results are included — callers filter.
func (x *Exec) Errors() []error {
	var out []error
	for _, p := range x.procs {
		if p.err != nil {
			out = append(out, fmt.Errorf("%s: %w", p.name, p.err))
		}
	}
	return out
}

// Procs returns all spawned processes in spawn order.
func (x *Exec) Procs() []*Proc { return x.procs }

// EventCount returns the number of pending (including cancelled-but-not-
// yet-popped) events — a diagnostic for schedule churn.
func (x *Exec) EventCount() int { return len(x.events) }
