package simnet

import (
	"fmt"
	"math"
)

// Node models one workstation's CPU with egalitarian processor sharing:
// when k computations are active concurrently, each proceeds at Rate/k.
// This is what makes replication level 2 cost the paper's "factor of two"
// — a shadow thread resident on the same machine halves the primary's
// effective rate while both are computing.
type Node struct {
	x    *Exec
	ID   int
	Name string
	// Rate is the compute rate of one core in flops per virtual second.
	Rate float64
	// Cores is the processor count (0 and 1 both mean a uniprocessor).
	// The paper's platform is "a network of single- and multi-processor
	// PC's/workstations"; with k jobs on c cores each job runs at
	// Rate·min(1, c/k).
	Cores int
	// Interference is the fractional throughput loss per *additional*
	// time-shared computation beyond the core count: with k jobs on c
	// cores each runs at Rate·min(1,c/k)·(1−Interference)^(k−c) for
	// k > c. It models the cache/TLB/context-switch cost of
	// multiprogramming 1990s workstations — the paper's "approximately
	// 10%" resiliency overhead beyond the factor-of-two replication cost
	// arises here, because replication level 2 puts two replicas on
	// every node. Zero (the default) gives egalitarian sharing with no
	// loss.
	Interference float64

	failed     bool
	jobs       map[*cpuJob]struct{}
	lastUpdate float64
	residents  map[*Proc]struct{}
}

type cpuJob struct {
	p         *Proc
	remaining float64 // flops
	done      *event  // scheduled completion (cancellable)
	tok       uint64
}

// NewNode creates a node with the given flops-per-second rate.
func (x *Exec) NewNode(id int, name string, rate float64) *Node {
	if rate <= 0 {
		panic(fmt.Sprintf("simnet: node %s rate %g", name, rate))
	}
	return &Node{
		x: x, ID: id, Name: name, Rate: rate,
		jobs:      make(map[*cpuJob]struct{}),
		residents: make(map[*Proc]struct{}),
	}
}

// Failed reports whether the node has failed.
func (n *Node) Failed() bool { return n.failed }

// attach registers a resident process (killed if the node fails).
func (n *Node) attach(p *Proc) { n.residents[p] = struct{}{} }

func (n *Node) detach(p *Proc) { delete(n.residents, p) }

// Residents returns the number of attached processes.
func (n *Node) Residents() int { return len(n.residents) }

// Fail marks the node failed and kills every resident process. Active
// computations unwind with ErrKilled.
func (n *Node) Fail() {
	if n.failed {
		return
	}
	n.failed = true
	n.x.tracef("node %s failed", n.Name)
	for p := range n.residents {
		p.Kill()
	}
}

// share returns the per-job compute rate under processor sharing with
// multiprogramming interference.
func (n *Node) share() float64 {
	k := len(n.jobs)
	cores := n.Cores
	if cores < 1 {
		cores = 1
	}
	if k <= cores {
		return n.Rate
	}
	r := n.Rate * float64(cores) / float64(k)
	if n.Interference > 0 {
		for i := cores; i < k; i++ {
			r *= 1 - n.Interference
		}
	}
	return r
}

// advance settles all running jobs up to the current time at the rate
// that has applied since lastUpdate.
func (n *Node) advance() {
	dt := n.x.now - n.lastUpdate
	if dt > 0 && len(n.jobs) > 0 {
		r := n.share()
		for j := range n.jobs {
			j.remaining -= dt * r
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
	}
	n.lastUpdate = n.x.now
}

// reschedule recomputes every job's completion event for the current
// degree of sharing.
func (n *Node) reschedule() {
	r := n.share()
	for j := range n.jobs {
		n.x.Cancel(j.done)
		eta := j.remaining / r
		if math.IsNaN(eta) || math.IsInf(eta, 0) {
			eta = 0
		}
		job := j
		job.done = n.x.After(eta, func() { n.complete(job) })
	}
}

// completionSlackFlops absorbs float rounding between scheduled completion
// times and settled work: `now + eta` loses up to one ulp of `now`, which
// at cluster rates leaves ~1e-6 flops of phantom remainder. A thousandth
// of a flop is far below measurement relevance but far above that noise.
const completionSlackFlops = 1e-3

// complete finishes a job: settle, remove, wake the owner, re-plan peers.
func (n *Node) complete(j *cpuJob) {
	if _, ok := n.jobs[j]; !ok {
		return
	}
	n.advance()
	// Re-plan only when real work remains AND its duration is still
	// representable in virtual time; otherwise rescheduling would fire
	// at the same instant forever (an event livelock).
	if j.remaining > completionSlackFlops {
		if eta := j.remaining / n.share(); n.x.now+eta > n.x.now {
			n.reschedule()
			return
		}
	}
	delete(n.jobs, j)
	n.reschedule()
	j.p.wake(j.tok)
}

// Compute blocks p while flops of work execute on this node under
// processor sharing. It returns ErrNodeFailed if the node is failed when
// the call is made, and ErrKilled if p is killed mid-computation.
func (n *Node) Compute(p *Proc, flops float64) error {
	if err := p.checkKilled(); err != nil {
		return err
	}
	if n.failed {
		return fmt.Errorf("%w: %s", ErrNodeFailed, n.Name)
	}
	if flops <= 0 {
		return nil
	}
	n.advance()
	tok := p.beginWait()
	j := &cpuJob{p: p, remaining: flops, tok: tok}
	n.jobs[j] = struct{}{}
	n.reschedule()
	p.yield()
	// Either the job completed (removed by complete) or we were killed;
	// in the latter case remove the job so peers speed back up.
	if _, live := n.jobs[j]; live {
		n.advance()
		delete(n.jobs, j)
		n.reschedule()
	}
	return p.checkKilled()
}

// Utilization returns the number of active jobs (for tests and metrics).
func (n *Node) ActiveJobs() int { return len(n.jobs) }
