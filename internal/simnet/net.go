package simnet

// Network models message transport between nodes. Transfer schedules
// deliver() to run at the arrival time of a bytes-sized message from one
// node to another and returns that arrival time. Implementations must be
// deterministic.
type Network interface {
	Transfer(from, to *Node, bytes int64, deliver func()) (arrival float64)
}

// Bus models the paper's shared 100BaseT segment: a single medium that
// serializes all transfers first-come-first-served, plus a fixed
// per-message latency (protocol stack + propagation). Local transfers
// (from == to) bypass the medium and cost only LocalLatency.
type Bus struct {
	x *Exec
	// BytesPerSec is the shared medium bandwidth (100BaseT ≈ 12.5e6
	// minus framing; default uses EthernetBandwidth).
	BytesPerSec float64
	// Latency is the per-message fixed cost in seconds.
	Latency float64
	// LocalLatency is the cost of a loopback delivery (memcpy scale).
	LocalLatency float64

	free float64 // time the medium next becomes idle
}

// Reasonable defaults for the paper's 1999-era hardware.
const (
	// EthernetBandwidth is the effective payload bandwidth of 100BaseT
	// after framing overhead: ~11.9 MB/s.
	EthernetBandwidth = 11.9e6
	// EthernetLatency covers interrupt + protocol stack + hub store-and-
	// forward per message on period workstations.
	EthernetLatency = 150e-6
	// LocalLatency approximates an intra-node handoff.
	LocalLatency = 5e-6
	// WorkstationRate is a 300 MHz UltraSPARC-class machine sustaining
	// roughly one flop per cycle on these dense kernels.
	WorkstationRate = 300e6
)

// NewBus creates a shared-medium network with the given parameters; zero
// values select the 100BaseT defaults.
func (x *Exec) NewBus(bytesPerSec, latency float64) *Bus {
	if bytesPerSec == 0 {
		bytesPerSec = EthernetBandwidth
	}
	if latency == 0 {
		latency = EthernetLatency
	}
	return &Bus{x: x, BytesPerSec: bytesPerSec, Latency: latency, LocalLatency: LocalLatency}
}

// Transfer serializes the message on the shared medium.
func (b *Bus) Transfer(from, to *Node, bytes int64, deliver func()) float64 {
	now := b.x.now
	if from != nil && to != nil && from.ID == to.ID {
		at := now + b.LocalLatency
		b.x.Schedule(at, deliver)
		return at
	}
	start := now
	if b.free > start {
		start = b.free
	}
	txTime := float64(bytes) / b.BytesPerSec
	end := start + txTime
	b.free = end
	arrival := end + b.Latency
	b.x.Schedule(arrival, deliver)
	return arrival
}

// Switched models a full-duplex switched network: transfers serialize on
// the sender's NIC only (ablation A3 contrasts this with the shared Bus).
type Switched struct {
	x            *Exec
	BytesPerSec  float64
	Latency      float64
	LocalLatency float64
	nicFree      map[int]float64
}

// NewSwitched creates a switched network; zero values select defaults.
func (x *Exec) NewSwitched(bytesPerSec, latency float64) *Switched {
	if bytesPerSec == 0 {
		bytesPerSec = EthernetBandwidth
	}
	if latency == 0 {
		latency = EthernetLatency
	}
	return &Switched{
		x: x, BytesPerSec: bytesPerSec, Latency: latency,
		LocalLatency: LocalLatency, nicFree: make(map[int]float64),
	}
}

// Transfer serializes on the sending node's NIC.
func (s *Switched) Transfer(from, to *Node, bytes int64, deliver func()) float64 {
	now := s.x.now
	if from != nil && to != nil && from.ID == to.ID {
		at := now + s.LocalLatency
		s.x.Schedule(at, deliver)
		return at
	}
	key := -1
	if from != nil {
		key = from.ID
	}
	start := now
	if f := s.nicFree[key]; f > start {
		start = f
	}
	end := start + float64(bytes)/s.BytesPerSec
	s.nicFree[key] = end
	arrival := end + s.Latency
	s.x.Schedule(arrival, deliver)
	return arrival
}

// ZeroNet models the shared-memory multiprocessor of §4's closing remark:
// communication is free. Used for experiment E6 (within 5% of linear).
type ZeroNet struct{ x *Exec }

// NewZeroNet creates a zero-cost network.
func (x *Exec) NewZeroNet() *ZeroNet { return &ZeroNet{x: x} }

// Transfer delivers immediately.
func (z *ZeroNet) Transfer(from, to *Node, bytes int64, deliver func()) float64 {
	z.x.Schedule(z.x.now, deliver)
	return z.x.now
}

var (
	_ Network = (*Bus)(nil)
	_ Network = (*Switched)(nil)
	_ Network = (*ZeroNet)(nil)
)
