package simnet

import (
	"math"
	"testing"
)

func TestBusSerializesTransfers(t *testing.T) {
	x := NewExec()
	bus := x.NewBus(1000, 0.01) // 1000 B/s, 10ms latency
	a := x.NewNode(0, "a", 1)
	b := x.NewNode(1, "b", 1)
	c := x.NewNode(2, "c", 1)

	var arrivals []float64
	t1 := bus.Transfer(a, b, 500, func() { arrivals = append(arrivals, x.Now()) })
	t2 := bus.Transfer(a, c, 500, func() { arrivals = append(arrivals, x.Now()) })
	// First: tx 0..0.5, arrive 0.51. Second queues: tx 0.5..1.0, arrive 1.01.
	if math.Abs(t1-0.51) > 1e-9 || math.Abs(t2-1.01) > 1e-9 {
		t.Fatalf("arrival times %g, %g", t1, t2)
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 || arrivals[0] != t1 || arrivals[1] != t2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
}

func TestBusLocalBypass(t *testing.T) {
	x := NewExec()
	bus := x.NewBus(1000, 0.01)
	a := x.NewNode(0, "a", 1)
	at := bus.Transfer(a, a, 1e12, func() {})
	if at > 1e-3 {
		t.Fatalf("local transfer took %g", at)
	}
	// The medium must remain free for remote transfers.
	b := x.NewNode(1, "b", 1)
	if got := bus.Transfer(a, b, 1000, func() {}); math.Abs(got-1.01) > 1e-9 {
		t.Fatalf("remote after local = %g", got)
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBusDefaults(t *testing.T) {
	x := NewExec()
	bus := x.NewBus(0, 0)
	if bus.BytesPerSec != EthernetBandwidth || bus.Latency != EthernetLatency {
		t.Fatalf("defaults %g, %g", bus.BytesPerSec, bus.Latency)
	}
}

func TestSwitchedParallelSenders(t *testing.T) {
	x := NewExec()
	sw := x.NewSwitched(1000, 0.01)
	a := x.NewNode(0, "a", 1)
	b := x.NewNode(1, "b", 1)
	c := x.NewNode(2, "c", 1)
	// Different senders do not serialize on each other.
	t1 := sw.Transfer(a, c, 500, func() {})
	t2 := sw.Transfer(b, c, 500, func() {})
	if math.Abs(t1-0.51) > 1e-9 || math.Abs(t2-0.51) > 1e-9 {
		t.Fatalf("switched arrivals %g, %g", t1, t2)
	}
	// The same sender serializes on its NIC.
	t3 := sw.Transfer(a, b, 500, func() {})
	if math.Abs(t3-1.01) > 1e-9 {
		t.Fatalf("same-sender arrival %g", t3)
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchedLocalBypass(t *testing.T) {
	x := NewExec()
	sw := x.NewSwitched(1000, 0.01)
	a := x.NewNode(0, "a", 1)
	if at := sw.Transfer(a, a, 1e12, func() {}); at > 1e-3 {
		t.Fatalf("local transfer took %g", at)
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroNetImmediate(t *testing.T) {
	x := NewExec()
	zn := x.NewZeroNet()
	a := x.NewNode(0, "a", 1)
	b := x.NewNode(1, "b", 1)
	delivered := false
	if at := zn.Transfer(a, b, 1e12, func() { delivered = true }); at != 0 {
		t.Fatalf("arrival %g", at)
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("not delivered")
	}
}

func TestBusFasterThanItLooksIsWrong(t *testing.T) {
	// Sanity: shipping a paper-scale sub-cube (320×20×105 float32 ≈
	// 2.7 MB) over 100BaseT takes ~0.23 s — the scale that makes the
	// paper's communication overhead visible.
	x := NewExec()
	bus := x.NewBus(0, 0)
	a := x.NewNode(0, "a", 1)
	b := x.NewNode(1, "b", 1)
	bytes := int64(320 * 20 * 105 * 4)
	at := bus.Transfer(a, b, bytes, func() {})
	if at < 0.2 || at > 0.3 {
		t.Fatalf("sub-cube transfer %g s, expected ≈0.23", at)
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTransferWithNilNodes(t *testing.T) {
	x := NewExec()
	bus := x.NewBus(1000, 0.01)
	if at := bus.Transfer(nil, nil, 100, func() {}); at <= 0 {
		t.Fatalf("nil-node transfer arrival %g", at)
	}
	sw := x.NewSwitched(1000, 0.01)
	if at := sw.Transfer(nil, nil, 100, func() {}); at <= 0 {
		t.Fatalf("nil-node switched arrival %g", at)
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
}
