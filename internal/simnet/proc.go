package simnet

import (
	"fmt"
)

type procState int

const (
	procReady   procState = iota // runnable, handoff in progress
	procRunning                  // currently executing user code
	procWaiting                  // blocked in a Proc call, awaiting wake
	procDone                     // body returned
)

// Proc is a simulated process: a goroutine that runs real code but blocks
// only through this handle, charging virtual time. Bodies receive their
// Proc and must propagate errors from blocking calls (notably ErrKilled,
// which is how failure injection unwinds a victim).
type Proc struct {
	x    *Exec
	id   int
	name string

	resume  chan struct{}
	yielded chan struct{}

	state   procState
	waitSeq uint64 // token identifying the current wait; stale wakes are dropped
	killed  bool
	err     error

	// node this proc is currently resident on, if any (set by Compute
	// callers via SetNode; used by node failure to kill residents).
	node *Node
}

// Spawn creates a process whose body starts at virtual time `at` (clamped
// to now). The body runs when the scheduler reaches that time.
func (x *Exec) Spawn(name string, at float64, body func(p *Proc) error) *Proc {
	p := &Proc{
		x:       x,
		id:      len(x.procs),
		name:    name,
		resume:  make(chan struct{}),
		yielded: make(chan struct{}),
		state:   procWaiting,
	}
	x.procs = append(x.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.err = fmt.Errorf("simnet: process %s panicked: %v", p.name, r)
			}
			p.state = procDone
			if p.node != nil {
				p.node.detach(p)
			}
			p.x.tracef("proc %s done err=%v", p.name, p.err)
			p.yielded <- struct{}{}
		}()
		if p.killed {
			p.err = ErrKilled
			return
		}
		p.err = body(p)
	}()
	tok := p.waitSeq
	x.Schedule(at, func() { p.wake(tok) })
	return p
}

// SpawnNow spawns a process starting at the current virtual time.
func (x *Exec) SpawnNow(name string, body func(p *Proc) error) *Proc {
	return x.Spawn(name, x.now, body)
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Err returns the body's result (nil until done).
func (p *Proc) Err() error { return p.err }

// Done reports whether the body has returned.
func (p *Proc) Done() bool { return p.state == procDone }

// Killed reports whether the process has been killed.
func (p *Proc) Killed() bool { return p.killed }

// Exec returns the owning executor.
func (p *Proc) Exec() *Exec { return p.x }

// Now returns current virtual time.
func (p *Proc) Now() float64 { return p.x.now }

// SetNode records the node this process is resident on; node failure then
// kills the process. Pass nil to detach.
func (p *Proc) SetNode(n *Node) {
	if p.node != nil {
		p.node.detach(p)
	}
	p.node = n
	if n != nil {
		n.attach(p)
	}
}

// Node returns the resident node, if any.
func (p *Proc) Node() *Node { return p.node }

// wake resumes the process if it is still in the wait identified by tok.
// It must be called from scheduler context (an event fn) or from the
// currently-running process (which then hands control over and regains it
// when the woken process blocks again — used nowhere currently; wakes are
// event-driven to keep reasoning simple).
func (p *Proc) wake(tok uint64) {
	if p.state != procWaiting || p.waitSeq != tok {
		return // already woken by another source, or done
	}
	p.state = procRunning
	p.resume <- struct{}{}
	<-p.yielded
}

// yield parks the process until a wake. It returns the wait token that was
// consumed. Callers must have set up a wake source (scheduled event or
// waiter registration) before calling yield.
func (p *Proc) yield() {
	p.state = procWaiting
	p.yielded <- struct{}{}
	<-p.resume
}

// beginWait establishes a new wait epoch and returns its token. Wake
// sources created after this point must capture the token; wakes with a
// stale token are ignored.
func (p *Proc) beginWait() uint64 {
	p.waitSeq++
	return p.waitSeq
}

// checkKilled returns ErrKilled if the process has been killed.
func (p *Proc) checkKilled() error {
	if p.killed {
		return ErrKilled
	}
	return nil
}

// Sleep blocks for dt virtual seconds.
func (p *Proc) Sleep(dt float64) error {
	if err := p.checkKilled(); err != nil {
		return err
	}
	if dt < 0 {
		dt = 0
	}
	tok := p.beginWait()
	p.x.After(dt, func() { p.wake(tok) })
	p.yield()
	return p.checkKilled()
}

// Kill marks the process killed and, if it is blocked, schedules an
// immediate wake so its blocking call returns ErrKilled. Killing a done
// process is a no-op. Kill may be called from any process or event.
func (p *Proc) Kill() {
	if p.state == procDone || p.killed {
		return
	}
	p.killed = true
	p.x.tracef("proc %s killed", p.name)
	tok := p.waitSeq
	if p.state == procWaiting {
		p.x.After(0, func() { p.wake(tok) })
	}
}
