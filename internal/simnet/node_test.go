package simnet

import (
	"errors"
	"math"
	"testing"
)

func TestComputeSingleJob(t *testing.T) {
	x := NewExec()
	n := x.NewNode(0, "w0", 100) // 100 flops/sec
	var at float64
	x.SpawnNow("p", func(p *Proc) error {
		p.SetNode(n)
		if err := n.Compute(p, 250); err != nil {
			return err
		}
		at = p.Now()
		return nil
	})
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(at-2.5) > 1e-9 {
		t.Fatalf("finished at %g, want 2.5", at)
	}
}

func TestProcessorSharingHalvesRate(t *testing.T) {
	// Two identical jobs sharing one CPU must each take twice as long.
	x := NewExec()
	n := x.NewNode(0, "w0", 100)
	finish := make(map[string]float64)
	for _, name := range []string{"a", "b"} {
		x.SpawnNow(name, func(p *Proc) error {
			if err := n.Compute(p, 100); err != nil {
				return err
			}
			finish[p.Name()] = p.Now()
			return nil
		})
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	for name, at := range finish {
		if math.Abs(at-2.0) > 1e-6 {
			t.Fatalf("%s finished at %g, want 2.0", name, at)
		}
	}
}

func TestProcessorSharingStaggered(t *testing.T) {
	// Job A (100 flops) starts alone at t=0 on a 100 f/s node.
	// Job B (100 flops) arrives at t=0.5.
	// A runs alone 0..0.5 (50 done), shares 0.5.. (rate 50): 50 remaining
	// → 1s more → A finishes at 1.5 with B having 50 remaining; B then
	// runs alone at 100 f/s → finishes at 2.0.
	x := NewExec()
	n := x.NewNode(0, "w0", 100)
	finish := make(map[string]float64)
	x.SpawnNow("a", func(p *Proc) error {
		if err := n.Compute(p, 100); err != nil {
			return err
		}
		finish["a"] = p.Now()
		return nil
	})
	x.SpawnNow("b", func(p *Proc) error {
		if err := p.Sleep(0.5); err != nil {
			return err
		}
		if err := n.Compute(p, 100); err != nil {
			return err
		}
		finish["b"] = p.Now()
		return nil
	})
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(finish["a"]-1.5) > 1e-6 {
		t.Fatalf("a finished at %g, want 1.5", finish["a"])
	}
	if math.Abs(finish["b"]-2.0) > 1e-6 {
		t.Fatalf("b finished at %g, want 2.0", finish["b"])
	}
}

func TestProcessorSharingConservesWork(t *testing.T) {
	// Total virtual CPU-seconds × rate must equal total flops issued,
	// regardless of interleaving.
	x := NewExec()
	n := x.NewNode(0, "w0", 1000)
	loads := []float64{300, 700, 150, 850, 500}
	var makespan float64
	for i, fl := range loads {
		load := fl
		delay := float64(i) * 0.1
		x.SpawnNow("p", func(p *Proc) error {
			if err := p.Sleep(delay); err != nil {
				return err
			}
			if err := n.Compute(p, load); err != nil {
				return err
			}
			if p.Now() > makespan {
				makespan = p.Now()
			}
			return nil
		})
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, fl := range loads {
		total += fl
	}
	// The CPU is busy from t=0 (first job) to makespan with no idle gaps
	// (arrivals every 0.1s, work >> gaps), so makespan = total/rate.
	want := total / 1000
	if math.Abs(makespan-want) > 1e-6 {
		t.Fatalf("makespan %g, want %g", makespan, want)
	}
}

func TestComputeZeroFlops(t *testing.T) {
	x := NewExec()
	n := x.NewNode(0, "w0", 100)
	x.SpawnNow("p", func(p *Proc) error { return n.Compute(p, 0) })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if x.Now() != 0 {
		t.Fatalf("zero-flop compute advanced time to %g", x.Now())
	}
}

func TestNodeFailKillsResidents(t *testing.T) {
	x := NewExec()
	n := x.NewNode(0, "w0", 100)
	var got error
	x.SpawnNow("p", func(p *Proc) error {
		p.SetNode(n)
		got = n.Compute(p, 1e9)
		return got
	})
	x.Schedule(1, func() { n.Fail() })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, ErrKilled) {
		t.Fatalf("compute err = %v", got)
	}
	if !n.Failed() {
		t.Fatal("node not failed")
	}
	if n.Residents() != 0 {
		t.Fatalf("residents = %d after death", n.Residents())
	}
}

func TestComputeOnFailedNode(t *testing.T) {
	x := NewExec()
	n := x.NewNode(0, "w0", 100)
	var got error
	x.SpawnNow("p", func(p *Proc) error {
		if err := p.Sleep(2); err != nil {
			return err
		}
		got = n.Compute(p, 10)
		return nil
	})
	x.Schedule(1, func() { n.Fail() })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, ErrNodeFailed) {
		t.Fatalf("err = %v", got)
	}
}

func TestKilledJobReleasesShare(t *testing.T) {
	// Victim and survivor share the CPU; when the victim dies at t=1 the
	// survivor speeds back up.
	x := NewExec()
	n := x.NewNode(0, "w0", 100)
	var survivorDone float64
	victim := x.SpawnNow("victim", func(p *Proc) error {
		return n.Compute(p, 1e9)
	})
	x.SpawnNow("survivor", func(p *Proc) error {
		if err := n.Compute(p, 150); err != nil {
			return err
		}
		survivorDone = p.Now()
		return nil
	})
	x.Schedule(1, func() { victim.Kill() })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	// Shared 0..1 (50 flops each done), survivor alone after: 100
	// remaining at 100 f/s → finishes at 2.0.
	if math.Abs(survivorDone-2.0) > 1e-6 {
		t.Fatalf("survivor done at %g, want 2.0", survivorDone)
	}
}

func TestNodeFailIdempotent(t *testing.T) {
	x := NewExec()
	n := x.NewNode(0, "w0", 100)
	n.Fail()
	n.Fail()
	if !n.Failed() {
		t.Fatal("not failed")
	}
}

func TestNewNodePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero rate")
		}
	}()
	NewExec().NewNode(0, "bad", 0)
}

func TestSetNodeSwitch(t *testing.T) {
	x := NewExec()
	a := x.NewNode(0, "a", 100)
	b := x.NewNode(1, "b", 100)
	x.SpawnNow("p", func(p *Proc) error {
		p.SetNode(a)
		if a.Residents() != 1 || b.Residents() != 0 {
			t.Error("residency wrong after first SetNode")
		}
		p.SetNode(b)
		if a.Residents() != 0 || b.Residents() != 1 {
			t.Error("residency wrong after switch")
		}
		if p.Node() != b {
			t.Error("Node() wrong")
		}
		p.SetNode(nil)
		if b.Residents() != 0 {
			t.Error("residency wrong after detach")
		}
		return nil
	})
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiprocessorNode(t *testing.T) {
	// A 2-core node runs two jobs at full per-core rate.
	x := NewExec()
	n := x.NewNode(0, "smp", 100)
	n.Cores = 2
	finish := make(map[string]float64)
	for _, name := range []string{"a", "b"} {
		x.SpawnNow(name, func(p *Proc) error {
			if err := n.Compute(p, 100); err != nil {
				return err
			}
			finish[p.Name()] = p.Now()
			return nil
		})
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	for name, at := range finish {
		if math.Abs(at-1.0) > 1e-9 {
			t.Fatalf("%s finished at %g, want 1.0 (no sharing on 2 cores)", name, at)
		}
	}
}

func TestInterferenceAppliesBeyondCores(t *testing.T) {
	// Uniprocessor, 10% interference: 2 jobs of 100 flops at 100 f/s
	// each run at 100/2*0.9 = 45 f/s → finish at ~2.22s.
	x := NewExec()
	n := x.NewNode(0, "w", 100)
	n.Interference = 0.1
	var at float64
	x.SpawnNow("a", func(p *Proc) error {
		err := n.Compute(p, 100)
		at = p.Now()
		return err
	})
	x.SpawnNow("b", func(p *Proc) error { return n.Compute(p, 100) })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	want := 100.0 / 45.0
	if math.Abs(at-want) > 1e-9 {
		t.Fatalf("finished at %g, want %g", at, want)
	}
	// A 2-core node with 2 jobs pays no interference.
	x2 := NewExec()
	smp := x2.NewNode(0, "smp", 100)
	smp.Cores = 2
	smp.Interference = 0.1
	var at2 float64
	x2.SpawnNow("a", func(p *Proc) error {
		err := smp.Compute(p, 100)
		at2 = p.Now()
		return err
	})
	x2.SpawnNow("b", func(p *Proc) error { return smp.Compute(p, 100) })
	if err := x2.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(at2-1.0) > 1e-9 {
		t.Fatalf("SMP finished at %g, want 1.0", at2)
	}
}
