package simnet

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	x := NewExec()
	var woke float64
	x.SpawnNow("sleeper", func(p *Proc) error {
		if err := p.Sleep(2.5); err != nil {
			return err
		}
		woke = p.Now()
		return nil
	})
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 2.5 {
		t.Fatalf("woke at %g", woke)
	}
	if x.Now() != 2.5 {
		t.Fatalf("final time %g", x.Now())
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []string {
		x := NewExec()
		var order []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			delay := float64(5 - i) // later spawns sleep less
			x.SpawnNow(name, func(p *Proc) error {
				if err := p.Sleep(delay); err != nil {
					return err
				}
				order = append(order, p.Name())
				return nil
			})
		}
		// Two events at the same instant fire in schedule order.
		x.Schedule(1, func() { order = append(order, "e1") })
		x.Schedule(1, func() { order = append(order, "e2") })
		if err := x.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 7 {
		t.Fatalf("order = %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
	if a[0] != "e1" || a[1] != "e2" {
		t.Fatalf("same-time ordering: %v", a)
	}
	// p4 slept 1s... delays were 5,4,3,2,1 for p0..p4.
	if a[2] != "p4" || a[6] != "p0" {
		t.Fatalf("sleep ordering: %v", a)
	}
}

func TestNegativeSleepClamps(t *testing.T) {
	x := NewExec()
	x.SpawnNow("p", func(p *Proc) error { return p.Sleep(-5) })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if x.Now() != 0 {
		t.Fatalf("time %g", x.Now())
	}
}

func TestCancelEvent(t *testing.T) {
	x := NewExec()
	fired := false
	e := x.Schedule(1, func() { fired = true })
	x.Cancel(e)
	x.Cancel(nil) // no-op
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestMailboxRoundTrip(t *testing.T) {
	x := NewExec()
	mb := NewMailbox[int](x)
	var got []int
	x.SpawnNow("recv", func(p *Proc) error {
		for i := 0; i < 3; i++ {
			v, err := RecvFrom(p, mb)
			if err != nil {
				return err
			}
			got = append(got, v)
		}
		return nil
	})
	mb.Deliver(1, 10)
	mb.Deliver(3, 30)
	mb.Deliver(2, 20)
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
	if x.Now() != 3 {
		t.Fatalf("time %g", x.Now())
	}
}

func TestMailboxBlocksUntilDelivery(t *testing.T) {
	x := NewExec()
	mb := NewMailbox[string](x)
	var at float64
	x.SpawnNow("recv", func(p *Proc) error {
		_, err := RecvFrom(p, mb)
		at = p.Now()
		return err
	})
	x.Schedule(7, func() { mb.Put("hello") })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7 {
		t.Fatalf("received at %g", at)
	}
}

func TestMailboxTimeout(t *testing.T) {
	x := NewExec()
	mb := NewMailbox[int](x)
	var timedOut bool
	var at float64
	x.SpawnNow("recv", func(p *Proc) error {
		_, err := RecvTimeout(p, mb, 2)
		timedOut = errors.Is(err, ErrTimeout)
		at = p.Now()
		return nil
	})
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || at != 2 {
		t.Fatalf("timedOut=%v at=%g", timedOut, at)
	}
}

func TestMailboxTimeoutBeatenByDelivery(t *testing.T) {
	x := NewExec()
	mb := NewMailbox[int](x)
	var v int
	x.SpawnNow("recv", func(p *Proc) error {
		got, err := RecvTimeout(p, mb, 10)
		if err != nil {
			return err
		}
		v = got
		// The cancelled timeout must not corrupt a later wait.
		return p.Sleep(20)
	})
	mb.Deliver(1, 99)
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Fatalf("v = %d", v)
	}
	if x.Now() != 21 {
		t.Fatalf("time %g", x.Now())
	}
}

func TestMailboxClose(t *testing.T) {
	x := NewExec()
	mb := NewMailbox[int](x)
	var errs []error
	x.SpawnNow("recv", func(p *Proc) error {
		for {
			_, err := RecvFrom(p, mb)
			if err != nil {
				errs = append(errs, err)
				return nil
			}
		}
	})
	mb.Deliver(1, 5)
	x.Schedule(2, func() { mb.Close() })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if len(errs) != 1 || !errors.Is(errs[0], ErrMailboxClosed) {
		t.Fatalf("errs = %v", errs)
	}
}

func TestMultipleReceiversFIFO(t *testing.T) {
	x := NewExec()
	mb := NewMailbox[int](x)
	var order []string
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("r%d", i)
		x.SpawnNow(name, func(p *Proc) error {
			if _, err := RecvFrom(p, mb); err != nil {
				return err
			}
			order = append(order, p.Name())
			return nil
		})
	}
	mb.Deliver(1, 1)
	mb.Deliver(2, 2)
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "r0" || order[1] != "r1" {
		t.Fatalf("order = %v", order)
	}
}

func TestDeadlockDetection(t *testing.T) {
	x := NewExec()
	mb := NewMailbox[int](x)
	x.SpawnNow("stuck", func(p *Proc) error {
		_, err := RecvFrom(p, mb)
		return err
	})
	err := x.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck" {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
	if dl.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestKillUnblocksRecv(t *testing.T) {
	x := NewExec()
	mb := NewMailbox[int](x)
	var gotErr error
	victim := x.SpawnNow("victim", func(p *Proc) error {
		_, err := RecvFrom(p, mb)
		gotErr = err
		return err
	})
	x.Schedule(3, func() { victim.Kill() })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrKilled) {
		t.Fatalf("gotErr = %v", gotErr)
	}
	if !victim.Done() || !victim.Killed() {
		t.Fatal("victim state wrong")
	}
	errs := x.Errors()
	if len(errs) != 1 || !errors.Is(errs[0], ErrKilled) {
		t.Fatalf("Errors() = %v", errs)
	}
}

func TestKillDuringSleep(t *testing.T) {
	x := NewExec()
	var at float64
	victim := x.SpawnNow("victim", func(p *Proc) error {
		err := p.Sleep(100)
		at = p.Now()
		return err
	})
	x.Schedule(5, func() { victim.Kill() })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5 {
		t.Fatalf("unwound at %g", at)
	}
}

func TestKillBeforeStart(t *testing.T) {
	x := NewExec()
	ran := false
	p := x.Spawn("late", 10, func(p *Proc) error {
		ran = true
		return nil
	})
	x.Schedule(1, func() { p.Kill() })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("killed process body ran")
	}
	if !errors.Is(p.Err(), ErrKilled) {
		t.Fatalf("err = %v", p.Err())
	}
}

func TestKillIdempotentAndAfterDone(t *testing.T) {
	x := NewExec()
	p := x.SpawnNow("quick", func(p *Proc) error { return nil })
	x.Schedule(1, func() { p.Kill(); p.Kill() })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatalf("err = %v", p.Err())
	}
}

func TestProcPanicCaptured(t *testing.T) {
	x := NewExec()
	x.SpawnNow("boom", func(p *Proc) error { panic("kapow") })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	errs := x.Errors()
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
	if msg := errs[0].Error(); !containsAll(msg, "boom", "kapow") {
		t.Fatalf("panic error = %q", msg)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestSpawnAtFutureTime(t *testing.T) {
	x := NewExec()
	var started float64 = -1
	x.Spawn("later", 4, func(p *Proc) error {
		started = p.Now()
		return nil
	})
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if started != 4 {
		t.Fatalf("started at %g", started)
	}
}

func TestTraceHook(t *testing.T) {
	x := NewExec()
	var lines int
	x.Trace = func(tm float64, format string, args ...any) { lines++ }
	p := x.SpawnNow("p", func(p *Proc) error { return p.Sleep(1) })
	x.Schedule(0.5, func() { p.Kill() })
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("no trace output")
	}
}

func TestNowMonotone(t *testing.T) {
	x := NewExec()
	last := math.Inf(-1)
	for i := 0; i < 50; i++ {
		d := float64((i * 37) % 11)
		x.Schedule(d, func() {
			if x.Now() < last {
				t.Errorf("time went backwards: %g < %g", x.Now(), last)
			}
			last = x.Now()
		})
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
}
