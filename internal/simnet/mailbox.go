package simnet

import "errors"

// ErrMailboxClosed is returned when receiving from a closed, drained
// mailbox.
var ErrMailboxClosed = errors.New("simnet: mailbox closed")

// ErrTimeout is returned by RecvTimeout when the deadline expires.
var ErrTimeout = errors.New("simnet: receive timeout")

// Mailbox is a FIFO queue with virtual-time delivery: Deliver schedules an
// item to arrive at a future time; Recv blocks the receiving process until
// an item is available. Multiple receivers are permitted (items go to the
// longest-waiting receiver).
type Mailbox[T any] struct {
	x       *Exec
	items   []T
	waiters []*waiter
	closed  bool
}

type waiter struct {
	p   *Proc
	tok uint64
}

// NewMailbox creates a mailbox on the executor.
func NewMailbox[T any](x *Exec) *Mailbox[T] {
	return &Mailbox[T]{x: x}
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Deliver schedules item to be enqueued at absolute virtual time t.
func (m *Mailbox[T]) Deliver(t float64, item T) {
	m.x.Schedule(t, func() {
		m.items = append(m.items, item)
		m.wakeOne()
	})
}

// Put enqueues item immediately (current virtual time).
func (m *Mailbox[T]) Put(item T) {
	m.items = append(m.items, item)
	m.wakeOne()
}

// Close marks the mailbox closed; blocked receivers are woken and drain
// remaining items before seeing ErrMailboxClosed.
func (m *Mailbox[T]) Close() {
	m.x.Schedule(m.x.now, func() {
		m.closed = true
		for len(m.waiters) > 0 {
			w := m.waiters[0]
			m.waiters = m.waiters[1:]
			w.p.wake(w.tok)
		}
	})
}

// wakeOne wakes the longest-waiting receiver, if any. Must run in
// scheduler context (it is only called from event closures).
func (m *Mailbox[T]) wakeOne() {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if w.p.state == procWaiting && w.p.waitSeq == w.tok {
			w.p.wake(w.tok)
			return
		}
	}
}

// RecvFrom blocks p until an item is available from m, the mailbox
// closes, or p is killed. (A free function because Go methods cannot
// introduce type parameters.)
func RecvFrom[T any](p *Proc, m *Mailbox[T]) (T, error) {
	var zero T
	for {
		if err := p.checkKilled(); err != nil {
			return zero, err
		}
		if len(m.items) > 0 {
			item := m.items[0]
			m.items = m.items[1:]
			return item, nil
		}
		if m.closed {
			return zero, ErrMailboxClosed
		}
		tok := p.beginWait()
		m.waiters = append(m.waiters, &waiter{p: p, tok: tok})
		p.yield()
	}
}

// RecvTimeout blocks p until an item arrives or dt virtual seconds pass.
func RecvTimeout[T any](p *Proc, m *Mailbox[T], dt float64) (T, error) {
	var zero T
	deadline := p.x.now + dt
	for {
		if err := p.checkKilled(); err != nil {
			return zero, err
		}
		if len(m.items) > 0 {
			item := m.items[0]
			m.items = m.items[1:]
			return item, nil
		}
		if m.closed {
			return zero, ErrMailboxClosed
		}
		if p.x.now >= deadline {
			return zero, ErrTimeout
		}
		tok := p.beginWait()
		m.waiters = append(m.waiters, &waiter{p: p, tok: tok})
		timeout := p.x.Schedule(deadline, func() { p.wake(tok) })
		p.yield()
		p.x.Cancel(timeout)
	}
}
