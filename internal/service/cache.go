package service

import (
	"container/list"
	"sync"

	"resilientfusion/internal/core"
	"resilientfusion/internal/store"
	"resilientfusion/internal/telemetry"
)

// resultCache is a content-addressed LRU of completed fusion results,
// keyed by cube digest + canonicalized options (core.Options.ResultKey).
// Repeated scenes — the common case for a monitoring service re-imaging
// the same area — are served without recomputation. Cached *core.Result
// values are shared between jobs and must be treated as immutable.
//
// With a spill tier attached (Config.CacheSpillBytes), entries evicted
// from RAM are written to content-addressed files instead of discarded:
// a later lookup that misses RAM reloads the entry from disk (digest
// re-validated by the store layer), re-promoting it. The spill survives
// restarts, so a rebooted daemon answers its pre-crash repeat traffic
// from disk instead of recomputing.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element

	// Registry-backed counters (zero-value Counters when the cache runs
	// without a metrics layer, e.g. in direct unit tests).
	hits, misses, evictions *telemetry.Counter

	// Disk-spill tier; nil when disabled. spillHits/spillMisses count
	// only lookups that reached the tier (RAM misses).
	spill                  *store.Spill
	spillHits, spillMisses *telemetry.Counter
	logf                   func(format string, args ...any)
}

type cacheEntry struct {
	key string
	res *core.Result
}

// newResultCache builds a cache holding up to capacity results;
// capacity <= 0 disables caching (every lookup misses, puts are
// dropped). A nil metrics layer counts into private, unexported atomics.
func newResultCache(capacity int, m *poolMetrics) *resultCache {
	c := &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
	if m != nil {
		c.hits, c.misses, c.evictions = m.cacheHits, m.cacheMisses, m.cacheEvictions
		c.spillHits, c.spillMisses = m.cacheSpillHits, m.cacheSpillMisses
	} else {
		c.hits, c.misses, c.evictions = new(telemetry.Counter), new(telemetry.Counter), new(telemetry.Counter)
		c.spillHits, c.spillMisses = new(telemetry.Counter), new(telemetry.Counter)
	}
	return c
}

// attachSpill arms the disk tier (no-op when spill is nil).
func (c *resultCache) attachSpill(spill *store.Spill, logf func(format string, args ...any)) {
	c.spill = spill
	c.logf = logf
}

// get returns the cached result for key, counting a hit or miss. A RAM
// miss falls through to the spill tier; a spilled entry counts as a hit
// (it is served without recomputation) and is promoted back into RAM.
func (c *resultCache) get(key string) (*core.Result, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		c.mu.Unlock()
		return el.Value.(*cacheEntry).res, true
	}
	c.mu.Unlock()
	if res, ok := c.fromSpill(key); ok {
		c.hits.Inc()
		c.put(key, res)
		return res, true
	}
	c.misses.Inc()
	return nil, false
}

// peek is get without touching the hit/miss counters or RAM recency
// (used for the re-check after a queued job's twin completed first).
// It still consults the spill tier — a result is a result — but leaves
// the entry on disk.
func (c *resultCache) peek(key string) (*core.Result, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()
	if c.spill == nil {
		return nil, false
	}
	return c.fromSpill(key)
}

// fromSpill loads and decodes one spilled entry. Corrupt or undecodable
// entries are dropped (the store layer already removed the file on a
// digest mismatch) and report a miss.
func (c *resultCache) fromSpill(key string) (*core.Result, bool) {
	if c.spill == nil {
		return nil, false
	}
	payload, ok, err := c.spill.Get(key)
	if err != nil && c.logf != nil {
		c.logf("store: dropping spilled cache entry: %v", err)
	}
	if !ok {
		c.spillMisses.Inc()
		return nil, false
	}
	res, err := decodeResult(payload)
	if err != nil {
		if c.logf != nil {
			c.logf("store: undecodable spilled cache entry dropped: %v", err)
		}
		c.spill.Remove(key)
		c.spillMisses.Inc()
		return nil, false
	}
	c.spillHits.Inc()
	return res, true
}

// put stores a result, evicting the least recently used entry on
// overflow. With a spill tier attached, evicted entries are written to
// disk (outside the cache lock — encoding and fsync must not stall
// concurrent lookups).
func (c *resultCache) put(key string, res *core.Result) {
	if c.cap <= 0 {
		return
	}
	var spilled []*cacheEntry
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		c.mu.Unlock()
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		ent := oldest.Value.(*cacheEntry)
		delete(c.items, ent.key)
		c.evictions.Inc()
		if c.spill != nil {
			spilled = append(spilled, ent)
		}
	}
	c.mu.Unlock()
	for _, ent := range spilled {
		c.spillEntry(ent)
	}
}

// spillEntry writes one evicted entry to the disk tier. Failures cost
// only the spill (the entry is simply gone, as it would be without the
// tier), never the caller.
func (c *resultCache) spillEntry(ent *cacheEntry) {
	payload, err := encodeResult(ent.res)
	if err == nil {
		err = c.spill.Put(ent.key, payload)
	}
	if err != nil && c.logf != nil {
		c.logf("store: spilling evicted cache entry: %v", err)
	}
}

// counters returns (hits, misses, current RAM size).
func (c *resultCache) counters() (int64, int64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits.Value(), c.misses.Value(), c.ll.Len()
}

// spillStats returns (entries, bytes) resident in the disk tier.
func (c *resultCache) spillStats() (int, int64) {
	if c.spill == nil {
		return 0, 0
	}
	return c.spill.Len(), c.spill.Bytes()
}
