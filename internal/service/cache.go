package service

import (
	"container/list"
	"sync"

	"resilientfusion/internal/core"
	"resilientfusion/internal/telemetry"
)

// resultCache is a content-addressed LRU of completed fusion results,
// keyed by cube digest + canonicalized options (core.Options.ResultKey).
// Repeated scenes — the common case for a monitoring service re-imaging
// the same area — are served without recomputation. Cached *core.Result
// values are shared between jobs and must be treated as immutable.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element

	// Registry-backed counters (zero-value Counters when the cache runs
	// without a metrics layer, e.g. in direct unit tests).
	hits, misses, evictions *telemetry.Counter
}

type cacheEntry struct {
	key string
	res *core.Result
}

// newResultCache builds a cache holding up to capacity results;
// capacity <= 0 disables caching (every lookup misses, puts are
// dropped). A nil metrics layer counts into private, unexported atomics.
func newResultCache(capacity int, m *poolMetrics) *resultCache {
	c := &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
	if m != nil {
		c.hits, c.misses, c.evictions = m.cacheHits, m.cacheMisses, m.cacheEvictions
	} else {
		c.hits, c.misses, c.evictions = new(telemetry.Counter), new(telemetry.Counter), new(telemetry.Counter)
	}
	return c
}

// get returns the cached result for key, counting a hit or miss.
func (c *resultCache) get(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*cacheEntry).res, true
	}
	c.misses.Inc()
	return nil, false
}

// peek is get without touching the hit/miss counters or recency (used
// for the re-check after a queued job's twin completed first).
func (c *resultCache) peek(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*cacheEntry).res, true
	}
	return nil, false
}

// put stores a result, evicting the least recently used entry on overflow.
func (c *resultCache) put(key string, res *core.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// counters returns (hits, misses, current size).
func (c *resultCache) counters() (int64, int64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits.Value(), c.misses.Value(), c.ll.Len()
}
