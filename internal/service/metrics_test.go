package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"resilientfusion/internal/scene"
	"resilientfusion/internal/telemetry"
)

// scrape fetches GET /metrics and returns the exposition body.
func scrape(t *testing.T, client *http.Client, base string) string {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d\n%s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q, want text/plain exposition", ct)
	}
	return string(body)
}

// sampleValue extracts an unlabeled sample's value from an exposition.
func sampleValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, exposition)
	return 0
}

// TestMetricsEndpoint runs one cube fusion and asserts the /metrics
// exposition reflects it: service counters agree with Stats() (both read
// the same registry), the HTTP route histogram saw the submit, and the
// worker stage histograms saw kernel messages.
func TestMetricsEndpoint(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	resp := postCubeV2(t, client, srv.URL+"/v2/jobs", testCube(t, 27), `{"threshold": 0.05}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	job := pollJob(t, client, srv.URL, decodeJob(t, resp).ID)
	if job.State != StateDone {
		t.Fatalf("job state %s (error %q)", job.State, job.Error)
	}

	body := scrape(t, client, srv.URL)
	for _, want := range []string{
		"# HELP fusion_jobs_submitted_total ",
		"# TYPE fusion_jobs_submitted_total counter",
		"# TYPE fusion_jobs_duration_seconds histogram",
		"# TYPE fusion_queue_depth gauge",
		`fusion_http_request_duration_seconds_count{route="POST /v2/jobs",status="202"} 1`,
		`fusion_worker_stage_seconds_count{stage="screen"}`,
		`fusion_worker_stage_seconds_count{stage="transform"}`,
		"fusion_jobs_duration_seconds_bucket{le=\"+Inf\"} 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	st := pool.Stats()
	if got := int64(sampleValue(t, body, "fusion_jobs_submitted_total")); got != st.Submitted {
		t.Errorf("metrics submitted=%d, stats %d", got, st.Submitted)
	}
	if got := int64(sampleValue(t, body, "fusion_jobs_completed_total")); got != st.Completed || got != 1 {
		t.Errorf("metrics completed=%d, stats %d, want 1", got, st.Completed)
	}
	if got := int64(sampleValue(t, body, "fusion_cache_misses_total")); got != st.CacheMisses {
		t.Errorf("metrics cache_misses=%d, stats %d", got, st.CacheMisses)
	}
}

// TestMetricsSharedRegistry verifies Config.Metrics plugs an external
// registry into the pool, for daemons mounting one exposition across
// subsystems.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	extra := reg.Counter("fusion_embedder_ticks_total", "Embedder-side counter.")
	pool, err := NewPool(Config{Workers: 1, MaxConcurrent: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Metrics() != reg {
		t.Fatal("pool.Metrics() is not the supplied registry")
	}
	extra.Inc()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	body := scrape(t, srv.Client(), srv.URL)
	if got := sampleValue(t, body, "fusion_embedder_ticks_total"); got != 1 {
		t.Fatalf("embedder counter = %v, want 1", got)
	}
}

// TestSceneJobTraceEndpoint pins the acceptance criterion for the trace
// surface: a completed scene fusion serves a non-empty stage timeline on
// GET /v2/jobs/{id}/trace, the status resource summarizes the same spans,
// and the scene metrics count the tile reads.
func TestSceneJobTraceEndpoint(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 2, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	hdr, data := enviPayload(t, testCube(t, 29), scene.BIL)
	resp := postScene(t, client, srv.URL+"/v1/scenes", hdr, data)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("scene register status %d", resp.StatusCode)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	r, err := client.Post(srv.URL+"/v1/scenes/"+info.ID+"/fuse?threshold=0.05&granularity=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("fuse status %d", r.StatusCode)
	}
	job := pollJob(t, client, srv.URL, decodeJob(t, r).ID)
	if job.State != StateDone {
		t.Fatalf("scene job state %s (error %q)", job.State, job.Error)
	}

	tr, err := client.Get(srv.URL + "/v2/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", tr.StatusCode)
	}
	var timeline JobTrace
	if err := json.NewDecoder(tr.Body).Decode(&timeline); err != nil {
		t.Fatal(err)
	}
	if timeline.JobID != job.ID || timeline.State != StateDone {
		t.Fatalf("trace header %+v, want job %s done", timeline, job.ID)
	}
	if len(timeline.Spans) == 0 {
		t.Fatal("completed scene fusion has an empty trace timeline")
	}
	seen := map[string]int{}
	for _, s := range timeline.Spans {
		if s.End < s.Start {
			t.Errorf("span %+v ends before it starts", s)
		}
		seen[s.Name]++
	}
	for _, stage := range []string{"ingest", "screen", "covariance", "eigen", "transform", "merge"} {
		if seen[stage] == 0 {
			t.Errorf("timeline missing stage %q (got %v)", stage, seen)
		}
	}

	// The status resource carries the per-stage summary of the same spans.
	st, err := pool.Status(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trace) == 0 || st.Trace["screen"].Count != seen["screen"] {
		t.Fatalf("status trace summary %+v disagrees with timeline %v", st.Trace, seen)
	}

	// Scene tile reads surfaced in the exposition.
	body := scrape(t, client, srv.URL)
	if got := sampleValue(t, body, "fusion_scene_tiles_read_total"); got < 1 {
		t.Fatalf("fusion_scene_tiles_read_total = %v, want >= 1", got)
	}
	if got := sampleValue(t, body, "fusion_scene_spool_bytes_total"); got < float64(len(data)) {
		t.Fatalf("fusion_scene_spool_bytes_total = %v, want >= %d", got, len(data))
	}

	// Unknown job ids keep the structured error envelope.
	bad, err := client.Get(srv.URL + "/v2/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, bad, http.StatusNotFound, CodeUnknownJob)
}
