package service

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
)

// Scene registry errors.
var (
	// ErrUnknownScene reports an operation on an unregistered (or
	// removed) scene ID.
	ErrUnknownScene = errors.New("service: unknown scene")
	// ErrSceneLimit reports registration past Config.MaxScenes.
	ErrSceneLimit = errors.New("service: scene registry full")
	// ErrSceneTooLarge reports a scene whose header claims more than
	// Config.MaxSceneBytes.
	ErrSceneTooLarge = errors.New("service: scene exceeds size limit")
	// ErrScenePayload reports an upload whose payload does not match the
	// header's claimed size (truncated or oversized).
	ErrScenePayload = errors.New("service: scene payload size mismatch")
	// ErrNoSceneResult reports a result request for a scene with no
	// completed fusion.
	ErrNoSceneResult = errors.New("service: scene has no completed fusion")
)

// sceneEntry is one registered scene. Immutable after registration
// except lastDone (guarded by the pool mutex).
type sceneEntry struct {
	id         string
	seq        uint64 // numeric suffix of id; persisted so allocation stays monotonic
	h          scene.Header
	dataPath   string
	owned      bool // spooled by the pool → removed with the entry
	digest     string
	registered time.Time
	lastDone   string // job ID of the most recent successful fuse
}

func (e *sceneEntry) removeFiles() {
	if !e.owned {
		return
	}
	os.Remove(e.dataPath)
	os.Remove(scene.HeaderPath(e.dataPath))
}

// SceneInfo is a registry snapshot for clients.
type SceneInfo struct {
	ID         string           `json:"id"`
	Width      int              `json:"width"`
	Height     int              `json:"height"`
	Bands      int              `json:"bands"`
	Interleave scene.Interleave `json:"interleave"`
	DataType   int              `json:"data_type"`
	Bytes      int64            `json:"bytes"`
	Digest     string           `json:"digest,omitempty"`
	Registered time.Time        `json:"registered"`
	// LastDoneJob is the job ID whose composite GET
	// /v1/scenes/{id}/result serves (empty until a fuse completes).
	LastDoneJob string `json:"last_done_job,omitempty"`
}

func (p *Pool) sceneInfoLocked(e *sceneEntry) SceneInfo {
	return SceneInfo{
		ID:          e.id,
		Width:       e.h.Samples,
		Height:      e.h.Lines,
		Bands:       e.h.Bands,
		Interleave:  e.h.Interleave,
		DataType:    int(e.h.DataType),
		Bytes:       e.h.DataBytes(),
		Digest:      e.digest,
		Registered:  e.registered,
		LastDoneJob: e.lastDone,
	}
}

// RegisterScene spools an uploaded ENVI scene — header text plus the raw
// payload in the header's declared interleave — and registers it for
// fusion. The payload streams to disk in bounded chunks (an upload never
// materializes in memory) and must match the header's claimed size
// exactly. When the result cache is enabled the scene's content digest
// is computed by streaming row windows; it equals the digest of the
// equivalent in-memory cube, so scene fusions and cube uploads share
// cache entries.
func (p *Pool) RegisterScene(headerText string, data io.Reader) (SceneInfo, error) {
	h, err := scene.ParseHeader(headerText)
	if err != nil {
		return SceneInfo{}, err
	}
	claimed := h.Offset + h.DataBytes()
	if claimed > p.cfg.MaxSceneBytes {
		return SceneInfo{}, fmt.Errorf("%w: header claims %d bytes, limit %d",
			ErrSceneTooLarge, claimed, p.cfg.MaxSceneBytes)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return SceneInfo{}, ErrClosed
	}
	if len(p.scenes) >= p.cfg.MaxScenes {
		p.mu.Unlock()
		return SceneInfo{}, fmt.Errorf("%w: %d scenes registered", ErrSceneLimit, p.cfg.MaxScenes)
	}
	p.nextScene++
	seq := p.nextScene
	id := fmt.Sprintf("scene-%d", seq)
	spool := p.spoolDir
	p.mu.Unlock()

	dataPath := filepath.Join(spool, id+".raw")
	if err := spoolExact(dataPath, data, claimed); err != nil {
		return SceneInfo{}, err
	}
	p.metrics.sceneSpoolBytes.Add(claimed)
	// The .hdr companion makes the spool self-describing for operators;
	// the registry itself keeps the parsed header.
	if err := os.WriteFile(scene.HeaderPath(dataPath), []byte(h.Marshal()), 0o644); err != nil {
		os.Remove(dataPath)
		return SceneInfo{}, err
	}
	return p.registerEntry(&sceneEntry{id: id, seq: seq, h: *h, dataPath: dataPath, owned: true})
}

// RegisterSceneFile registers an ENVI scene already on local disk (by
// header or data path) without copying it; the files stay owned by the
// caller. Intended for embedded pools (examples, local tools) — the HTTP
// surface only exposes uploads.
func (p *Pool) RegisterSceneFile(path string) (SceneInfo, error) {
	r, err := scene.OpenLimit(path, p.cfg.MaxSceneBytes)
	if err != nil {
		if errors.Is(err, scene.ErrSceneTooLarge) {
			err = fmt.Errorf("%w: %v", ErrSceneTooLarge, err)
		}
		return SceneInfo{}, err
	}
	h := r.Header()
	dataPath := r.Path()
	r.Close()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return SceneInfo{}, ErrClosed
	}
	if len(p.scenes) >= p.cfg.MaxScenes {
		p.mu.Unlock()
		return SceneInfo{}, fmt.Errorf("%w: %d scenes registered", ErrSceneLimit, p.cfg.MaxScenes)
	}
	p.nextScene++
	seq := p.nextScene
	id := fmt.Sprintf("scene-%d", seq)
	p.mu.Unlock()

	return p.registerEntry(&sceneEntry{id: id, seq: seq, h: h, dataPath: dataPath})
}

// registerEntry validates the spooled payload, computes the content
// digest when caching is on, and publishes the entry.
func (p *Pool) registerEntry(ent *sceneEntry) (SceneInfo, error) {
	r, err := scene.NewReader(ent.h, ent.dataPath)
	if err != nil {
		ent.removeFiles()
		if errors.Is(err, scene.ErrPayloadSize) {
			err = fmt.Errorf("%w: %v", ErrScenePayload, err)
		}
		return SceneInfo{}, err
	}
	if p.cfg.CacheEntries > 0 {
		if ent.digest, err = r.Digest(); err != nil {
			r.Close()
			ent.removeFiles()
			return SceneInfo{}, err
		}
	}
	r.Close()
	ent.registered = time.Now()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ent.removeFiles()
		return SceneInfo{}, ErrClosed
	}
	if len(p.scenes) >= p.cfg.MaxScenes {
		p.mu.Unlock()
		ent.removeFiles()
		return SceneInfo{}, fmt.Errorf("%w: %d scenes registered", ErrSceneLimit, p.cfg.MaxScenes)
	}
	p.scenes[ent.id] = ent
	info := p.sceneInfoLocked(ent)
	p.mu.Unlock()

	// Durable pools record the registration (fsync'd) before the client
	// is acked; a failure to persist unwinds the publication entirely. A
	// crash between publish and record loses only an unacked scene — the
	// boot sweep collects its spool files as orphans.
	if err := p.catalogAdd(ent); err != nil {
		p.mu.Lock()
		delete(p.scenes, ent.id)
		p.mu.Unlock()
		ent.removeFiles()
		return SceneInfo{}, err
	}
	return info, nil
}

// spoolExact streams exactly claimed bytes from data into path,
// rejecting short and long payloads without buffering more than the copy
// chunk.
func spoolExact(path string, data io.Reader, claimed int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, io.LimitReader(data, claimed))
	if err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if n < claimed {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("%w: payload is %d bytes, header claims %d", ErrScenePayload, n, claimed)
	}
	// One more byte readable means the payload overruns the header. A
	// single Read is not a valid probe: io.Reader lets an implementation
	// return (0, nil) with more data still to come (chunked bodies and
	// pipes do), which would falsely accept an oversized payload.
	// io.ReadFull loops until a byte, io.EOF, or a real error.
	var extra [1]byte
	switch m, err := io.ReadFull(data, extra[:]); {
	case m > 0:
		f.Close()
		os.Remove(path)
		return fmt.Errorf("%w: payload exceeds the %d bytes the header claims", ErrScenePayload, claimed)
	case !errors.Is(err, io.EOF):
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// Scene returns a registered scene's snapshot.
func (p *Pool) Scene(id string) (SceneInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ent := p.scenes[id]
	if ent == nil {
		return SceneInfo{}, ErrUnknownScene
	}
	return p.sceneInfoLocked(ent), nil
}

// Scenes lists registered scenes in registration order.
func (p *Pool) Scenes() []SceneInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SceneInfo, 0, len(p.scenes))
	for _, ent := range p.scenes {
		out = append(out, p.sceneInfoLocked(ent))
	}
	// The map walk is unordered; registration order is ascending numeric
	// ID suffix (shorter IDs sort first within equal lengths).
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// RemoveScene unregisters a scene and deletes its spooled payload.
// Accepted fusions — queued or running — hold their own open handle
// from submit time, so they complete unaffected; new fusions of the ID
// fail with ErrUnknownScene.
// On durable pools the removal record is appended (and fsync'd) BEFORE
// the spool files are unlinked — record-then-unlink. The other order
// has a restart hazard: a crash after the unlink but before the record
// would replay the scene into the registry with its payload gone. With
// this order the worst case is an orphaned spool file the boot sweep
// collects. TestRemoveSceneRecordsBeforeUnlink pins the ordering.
func (p *Pool) RemoveScene(id string) error {
	p.mu.Lock()
	ent := p.scenes[id]
	p.mu.Unlock()
	if ent == nil {
		return ErrUnknownScene
	}
	if p.catalog != nil {
		if err := p.catalog.Remove(id); err != nil {
			// Not recorded → not removed: the scene stays registered and
			// its files stay on disk.
			return fmt.Errorf("service: recording removal of %s: %w", id, err)
		}
	}
	p.mu.Lock()
	ent = p.scenes[id]
	delete(p.scenes, id)
	p.mu.Unlock()
	if ent != nil {
		ent.removeFiles()
	}
	return nil
}

// FuseScene enqueues a whole-scene fusion: the job streams the scene's
// row tiles through the pooled workers, reporting per-tile progress, and
// produces output bit-identical to submitting the fully-loaded cube with
// the same options. Served from the result cache when an identical scene
// or cube already fused.
func (p *Pool) FuseScene(id string, opts core.Options) (JobStatus, error) {
	opts, err := p.canonicalOptions(opts)
	if err != nil {
		return JobStatus{}, err
	}
	p.mu.Lock()
	ent := p.scenes[id]
	p.mu.Unlock()
	if ent == nil {
		return JobStatus{}, ErrUnknownScene
	}
	// Open the job's own handle now: an unlink (RemoveScene, pool close)
	// between acceptance and execution then cannot strand the job — the
	// handle stays readable until finish() releases it.
	f, err := os.Open(ent.dataPath)
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: opening scene %s: %w", id, err)
	}
	// The decomposition the manager will derive from the scene's shape.
	tiles := opts.SubCubes(ent.h.Lines)
	st, err := p.enqueue(func(num uint64) *Job {
		return &Job{
			id:         fmt.Sprintf("job-%d", num),
			num:        num,
			opts:       opts,
			digest:     ent.digest,
			sceneID:    ent.id,
			sceneHdr:   ent.h,
			sceneFile:  f,
			tilesTotal: tiles,
		}
	})
	if err != nil {
		f.Close() // job was never admitted; finish() will not run
	}
	return st, err
}

// SceneResultPNG returns the composite of the scene's most recent
// completed fusion as PNG.
func (p *Pool) SceneResultPNG(id string) ([]byte, error) {
	p.mu.Lock()
	ent := p.scenes[id]
	var jobID string
	if ent != nil {
		jobID = ent.lastDone
	}
	p.mu.Unlock()
	if ent == nil {
		return nil, ErrUnknownScene
	}
	if jobID == "" {
		return nil, fmt.Errorf("%w: %s", ErrNoSceneResult, id)
	}
	return p.ImagePNG(jobID)
}

// sceneSource adapts a scene tiler (plain or prefetching) to the
// manager's CubeSource and publishes per-tile progress onto the job.
// Tile reads happen on the job's manager thread; the counters cross to
// HTTP pollers atomically.
type sceneSource struct {
	tiler core.CubeSource
	job   *Job
}

func (s *sceneSource) Shape() (int, int, int) { return s.tiler.Shape() }

func (s *sceneSource) Tile(rr hsi.RowRange) (*hsi.Cube, error) { return s.tiler.Tile(rr) }

func (s *sceneSource) TileScreened(done, total int) { s.job.tilesScreened.Store(int64(done)) }

func (s *sceneSource) TileTransformed(done, total int) { s.job.tilesTransformed.Store(int64(done)) }

var (
	_ core.CubeSource   = (*sceneSource)(nil)
	_ core.TileObserver = (*sceneSource)(nil)
)
