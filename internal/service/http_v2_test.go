package service

import (
	"bytes"
	"encoding/json"
	"image/png"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
)

// postCubeV2 submits a cube through the v2 multipart form, with an
// optional options JSON document.
func postCubeV2(t *testing.T, client *http.Client, url string, cube *hsi.Cube, optionsJSON string) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	if optionsJSON != "" {
		ow, err := mw.CreateFormField("options")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(ow, optionsJSON); err != nil {
			t.Fatal(err)
		}
	}
	cw, err := mw.CreateFormFile("cube", "cube.hsic")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.WriteTo(cw); err != nil {
		t.Fatal(err)
	}
	mw.Close()
	resp, err := client.Post(url, mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// wantEnvelope asserts the response is a structured error envelope with
// the wanted status and code.
func wantEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, wantStatus, body)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	if env.Error.Code != wantCode {
		t.Fatalf("code %q, want %q (message %q)", env.Error.Code, wantCode, env.Error.Message)
	}
	if env.Error.Message == "" {
		t.Fatalf("empty message for code %q", env.Error.Code)
	}
}

// TestV2SubmitLongPollResult drives the v2 surface end to end: multipart
// submit with a JSON options body, one long-poll request straight to the
// terminal state (no client-side polling loop), canonical options echoed
// with defaults filled, and the result artifact under both content
// negotiations.
func TestV2SubmitLongPollResult(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	cube := testCube(t, 21)
	resp := postCubeV2(t, client, srv.URL+"/v2/jobs", cube, `{"threshold": 0.05, "granularity": 3}`)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	job := decodeJob(t, resp)
	if job.ID == "" {
		t.Fatal("no job id")
	}
	if job.Options == nil {
		t.Fatal("submission response missing canonical options echo")
	}

	// One long-poll returns the terminal state.
	r, err := client.Get(srv.URL + "/v2/jobs/" + job.ID + "?wait=30s")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("long-poll status %d", r.StatusCode)
	}
	job = decodeJob(t, r)
	if job.State != StateDone {
		t.Fatalf("long-poll state %s, want done (error %q)", job.State, job.Error)
	}
	if job.Result == nil || job.Result.UniqueSetSize == 0 {
		t.Fatalf("missing result summary: %+v", job.Result)
	}

	// Canonical options: explicit knobs kept, defaults filled, pool
	// policy (workers) visible.
	o := job.Options
	if o == nil {
		t.Fatal("job status missing options echo")
	}
	if o.Threshold != 0.05 || o.Granularity != 3 {
		t.Errorf("explicit options not echoed: %+v", o)
	}
	if o.Workers != 2 || o.Components != 3 || o.Prefetch != 1 {
		t.Errorf("defaults not canonicalized in echo: %+v", o)
	}

	// JSON summary by default.
	r, err = client.Get(srv.URL + "/v2/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default result content type %q", ct)
	}
	var sum resultJSON
	if err := json.NewDecoder(r.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if sum.UniqueSetSize != job.Result.UniqueSetSize {
		t.Errorf("summary K=%d, status K=%d", sum.UniqueSetSize, job.Result.UniqueSetSize)
	}

	// PNG when asked for.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v2/jobs/"+job.ID+"/result", nil)
	req.Header.Set("Accept", "image/png")
	r, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := r.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("negotiated content type %q", ct)
	}
	img, err := png.Decode(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if b := img.Bounds(); b.Dx() != cube.Width || b.Dy() != cube.Height {
		t.Errorf("composite %dx%d, cube %dx%d", b.Dx(), b.Dy(), cube.Width, cube.Height)
	}

	// image/png;q=0 explicitly refuses the image (RFC 9110): JSON wins.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/v2/jobs/"+job.ID+"/result", nil)
	req.Header.Set("Accept", "image/png;q=0, application/json")
	r, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("q=0 refusal served content type %q, want JSON", ct)
	}
}

// TestV2OptionsParity pins the tentpole canonicalization guarantee: the
// same knobs through the v1 query string and the v2 JSON body resolve to
// the same canonical options and the same result cache entry (the v2
// resubmission is answered from the v1 job's cached result).
func TestV2OptionsParity(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()
	cube := testCube(t, 23)

	resp := postCube(t, client, srv.URL+"/v1/jobs?threshold=0.05&granularity=3&prefetch=-1", cube)
	v1Job := decodeJob(t, resp)
	if v1Job.ID == "" {
		t.Fatalf("v1 submit failed: %+v", v1Job)
	}
	if _, err := pool.Wait(v1Job.ID); err != nil {
		t.Fatal(err)
	}
	r, err := client.Get(srv.URL + "/v1/jobs/" + v1Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	v1Job = decodeJob(t, r)
	if v1Job.Options == nil {
		t.Fatal("v1 status missing options echo")
	}

	resp = postCubeV2(t, client, srv.URL+"/v2/jobs", cube, `{"threshold": 0.05, "granularity": 3, "prefetch": -1}`)
	v2Job := decodeJob(t, resp)
	if !v2Job.CacheHit || v2Job.State != StateDone {
		t.Errorf("v2 resubmission not served from the v1 cache entry: state=%s hit=%v",
			v2Job.State, v2Job.CacheHit)
	}
	if *v1Job.Options != *v2Job.Options {
		t.Errorf("canonical options differ across surfaces: v1 %+v, v2 %+v", v1Job.Options, v2Job.Options)
	}
}

// TestV2ErrorEnvelope walks the v2 failure paths and asserts each one's
// stable machine-readable code.
func TestV2ErrorEnvelope(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()
	cube := testCube(t, 2)

	// Unknown option key in the JSON body.
	resp := postCubeV2(t, client, srv.URL+"/v2/jobs", cube, `{"granularty": 8}`)
	wantEnvelope(t, resp, http.StatusBadRequest, CodeBadOption)

	// Malformed options JSON.
	resp = postCubeV2(t, client, srv.URL+"/v2/jobs", cube, `{"granularity": }`)
	wantEnvelope(t, resp, http.StatusBadRequest, CodeBadOption)

	// Trailing junk after the options object.
	resp = postCubeV2(t, client, srv.URL+"/v2/jobs", cube, `{"granularity": 2} {"x": 1}`)
	wantEnvelope(t, resp, http.StatusBadRequest, CodeBadOption)

	// Out-of-range option value (validated at submit).
	resp = postCubeV2(t, client, srv.URL+"/v2/jobs", cube, `{"threshold": 7}`)
	wantEnvelope(t, resp, http.StatusBadRequest, CodeBadOption)

	// Non-multipart body.
	r, err := client.Post(srv.URL+"/v2/jobs", "application/octet-stream", strings.NewReader("raw"))
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, r, http.StatusBadRequest, CodeBadPayload)

	// Garbage cube part.
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	cw, _ := mw.CreateFormFile("cube", "cube.hsic")
	io.WriteString(cw, "not a cube")
	mw.Close()
	r, err = client.Post(srv.URL+"/v2/jobs", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, r, http.StatusBadRequest, CodeBadPayload)

	// A part trailing the cube (here: options in the wrong order) must
	// be rejected, not silently dropped.
	body.Reset()
	mw = multipart.NewWriter(&body)
	cw, _ = mw.CreateFormFile("cube", "cube.hsic")
	if _, err := cube.WriteTo(cw); err != nil {
		t.Fatal(err)
	}
	ow, _ := mw.CreateFormField("options")
	io.WriteString(ow, `{"threshold": 0.5}`)
	mw.Close()
	r, err = client.Post(srv.URL+"/v2/jobs", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, r, http.StatusBadRequest, CodeBadPayload)

	// Unknown job: status, long-poll, and result all 404 with the code.
	for _, path := range []string{"/v2/jobs/job-999999", "/v2/jobs/job-999999?wait=1s", "/v2/jobs/job-999999/result"} {
		r, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		wantEnvelope(t, r, http.StatusNotFound, CodeUnknownJob)
	}

	// Bad wait duration and unknown query keys.
	st, err := pool.Submit(cube, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"wait=nope", "wait=-3s", "wait=", "image=1", "wait=1s&wait=2s"} {
		r, err := client.Get(srv.URL + "/v2/jobs/" + st.ID + "?" + q)
		if err != nil {
			t.Fatal(err)
		}
		wantEnvelope(t, r, http.StatusBadRequest, CodeBadOption)
	}

	// Unknown scene on fuse and info.
	r, err = client.Post(srv.URL+"/v2/scenes/scene-999/fuse", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, r, http.StatusNotFound, CodeUnknownScene)
	r, err = client.Get(srv.URL + "/v2/scenes/scene-999")
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, r, http.StatusNotFound, CodeUnknownScene)

	// Bad list filters.
	for _, q := range []string{"state=bogus", "limit=0", "limit=x", "foo=1", "state=done&state=failed"} {
		r, err := client.Get(srv.URL + "/v2/jobs?" + q)
		if err != nil {
			t.Fatal(err)
		}
		wantEnvelope(t, r, http.StatusBadRequest, CodeBadOption)
	}

	// Endpoints that take no query parameters reject stray ones too —
	// a typo must never be silently ignored anywhere on v2.
	for _, path := range []string{
		"/v2/jobs/" + st.ID + "/result?wait=30s",
		"/v2/scenes?limit=5",
		"/v2/scenes/scene-999?verbose=1",
		"/v2/stats?workers=8",
	} {
		r, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		wantEnvelope(t, r, http.StatusBadRequest, CodeBadOption)
	}

	// Same on the mutating endpoints: v1-style query options on a v2
	// URL must fail loudly, not silently run the defaults.
	r, err = client.Post(srv.URL+"/v2/scenes/scene-999/fuse?threshold=0.05", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, r, http.StatusBadRequest, CodeBadOption)
	resp = postCubeV2(t, client, srv.URL+"/v2/jobs?granularity=3", cube, "")
	wantEnvelope(t, resp, http.StatusBadRequest, CodeBadOption)
}

// TestV2OversizedCube maps an over-limit upload to payload_too_large.
func TestV2OversizedCube(t *testing.T) {
	old := maxCubeBytes
	maxCubeBytes = 64
	defer func() { maxCubeBytes = old }()

	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	resp := postCubeV2(t, srv.Client(), srv.URL+"/v2/jobs", testCube(t, 2), "")
	wantEnvelope(t, resp, http.StatusRequestEntityTooLarge, CodePayloadTooLarge)
}

// TestV2QueueFullAndNotFinished exercises admission rejection and the
// not-finished result conflict against a deliberately wedged pool: the
// single dispatcher is busy with a slow job, so later submissions stack
// up in a depth-1 queue.
func TestV2QueueFullAndNotFinished(t *testing.T) {
	pool, err := NewPool(Config{Workers: 1, MaxConcurrent: 1, QueueDepth: 1, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	// A fusion big enough to keep the single slot busy while the queue
	// fills behind it over HTTP round trips.
	submitSlow(t, pool)

	// One job fits the depth-1 queue; the next is rejected with the code.
	resp := postCubeV2(t, client, srv.URL+"/v2/jobs", testCube(t, 300), "")
	queued := decodeJob(t, resp)
	if queued.State != StateQueued {
		t.Fatalf("expected a queued job behind the slow one, got %s", queued.State)
	}
	resp = postCubeV2(t, client, srv.URL+"/v2/jobs", testCube(t, 301), "")
	if got := resp.Header.Get("Retry-After"); got != queueFullRetryAfter {
		t.Fatalf("queue_full Retry-After = %q, want %q", got, queueFullRetryAfter)
	}
	wantEnvelope(t, resp, http.StatusServiceUnavailable, CodeQueueFull)

	// A queued job has no result yet: the conflict code, not a 404.
	r, err := client.Get(srv.URL + "/v2/jobs/" + queued.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if st, err := pool.Status(queued.ID); err == nil && st.State != StateDone && st.State != StateFailed {
		wantEnvelope(t, r, http.StatusConflict, CodeJobNotFinished)
	} else {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
}

// TestV2ExpiredImage maps an aged-out composite to image_expired under
// the PNG negotiation while the JSON summary keeps serving.
func TestV2ExpiredImage(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, RetainResults: 1, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	var first string
	for i := 0; i < 3; i++ {
		st, err := pool.Submit(testCube(t, int64(80+i)), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st.ID
		}
		if _, err := pool.Wait(st.ID); err != nil {
			t.Fatal(err)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v2/jobs/"+first+"/result", nil)
	req.Header.Set("Accept", "image/png")
	r, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, r, http.StatusGone, CodeImageExpired)

	// The scalar summary is retained past the image window.
	r, err = srv.Client().Get(srv.URL + "/v2/jobs/" + first + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("summary after image expiry: status %d", r.StatusCode)
	}
}

// TestV2JobsList covers the listing: newest first, state filter, limit,
// and scene jobs appearing in the same unified resource.
func TestV2JobsList(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 2, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	const jobs = 4
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		st, err := pool.Submit(testCube(t, int64(500+i)), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		if _, err := pool.Wait(st.ID); err != nil {
			t.Fatal(err)
		}
	}

	list := func(query string) []jobJSON {
		t.Helper()
		r, err := client.Get(srv.URL + "/v2/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("list%s status %d", query, r.StatusCode)
		}
		var out struct {
			Jobs []jobJSON `json:"jobs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Jobs
	}

	all := list("")
	if len(all) != jobs {
		t.Fatalf("listed %d jobs, want %d", len(all), jobs)
	}
	for i := range all {
		if want := ids[jobs-1-i]; all[i].ID != want {
			t.Errorf("list[%d] = %s, want %s (newest first)", i, all[i].ID, want)
		}
		if all[i].Options == nil {
			t.Errorf("list[%d] missing options echo", i)
		}
	}
	if got := list("?limit=2"); len(got) != 2 || got[0].ID != ids[jobs-1] {
		t.Errorf("limit=2: %d jobs, first %s", len(got), got[0].ID)
	}
	if got := list("?state=done"); len(got) != jobs {
		t.Errorf("state=done: %d jobs, want %d", len(got), jobs)
	}
	if got := list("?state=failed"); len(got) != 0 {
		t.Errorf("state=failed: %d jobs, want 0", len(got))
	}
}

// TestV2SceneFlow runs the scene lifecycle through v2: register, fuse
// with a JSON options body, long-poll to done, fetch the composite, and
// remove — plus the scene-specific failure codes.
func TestV2SceneFlow(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxScenes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	cube := testCube(t, 33)
	hdr, payload := enviPayload(t, cube, scene.BIL)

	post := func(hdrText string, data []byte) *http.Response {
		t.Helper()
		var body bytes.Buffer
		mw := multipart.NewWriter(&body)
		hw, _ := mw.CreateFormField("header")
		io.WriteString(hw, hdrText)
		dw, _ := mw.CreateFormFile("data", "scene.raw")
		dw.Write(data)
		mw.Close()
		r, err := client.Post(srv.URL+"/v2/scenes", mw.FormDataContentType(), &body)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Truncated payload → bad_payload.
	wantEnvelope(t, post(hdr, payload[:len(payload)-4]), http.StatusBadRequest, CodeBadPayload)

	r := post(hdr, payload)
	if r.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(r.Body)
		t.Fatalf("register status %d: %s", r.StatusCode, body)
	}
	var info SceneInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	// Registry at capacity (MaxScenes: 1) → scene_limit.
	wantEnvelope(t, post(hdr, payload), http.StatusServiceUnavailable, CodeSceneLimit)

	// Fuse with options in the JSON body, long-poll to done.
	r, err = client.Post(srv.URL+"/v2/scenes/"+info.ID+"/fuse", "application/json",
		strings.NewReader(`{"threshold": 0.05, "granularity": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, r)
	if job.SceneID != info.ID {
		t.Fatalf("scene job not tagged: %+v", job)
	}
	r, err = client.Get(srv.URL + "/v2/jobs/" + job.ID + "?wait=30s")
	if err != nil {
		t.Fatal(err)
	}
	job = decodeJob(t, r)
	if job.State != StateDone {
		t.Fatalf("scene fuse state %s (error %q)", job.State, job.Error)
	}
	if job.Progress == nil || job.Progress.Transformed != job.Progress.Total {
		t.Errorf("scene progress not complete: %+v", job.Progress)
	}
	if job.Options == nil || job.Options.Threshold != 0.05 {
		t.Errorf("scene job options echo: %+v", job.Options)
	}

	// The unified job resource serves the scene composite too.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v2/jobs/"+job.ID+"/result", nil)
	req.Header.Set("Accept", "image/png")
	r, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if b := img.Bounds(); b.Dx() != cube.Width || b.Dy() != cube.Height {
		t.Errorf("scene composite %dx%d, cube %dx%d", b.Dx(), b.Dy(), cube.Width, cube.Height)
	}

	// Remove, then the ID is gone with the code.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v2/scenes/"+info.ID, nil)
	r, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", r.StatusCode)
	}
	r, err = client.Get(srv.URL + "/v2/scenes/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, r, http.StatusNotFound, CodeUnknownScene)
}

// TestV2SceneTooLarge maps a header claiming more than the pool's scene
// budget to payload_too_large.
func TestV2SceneTooLarge(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxSceneBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	cube := testCube(t, 55) // 24x24x8 float32 = 18432 bytes > MaxSceneBytes
	hdr, payload := enviPayload(t, cube, scene.BIP)
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	hw, _ := mw.CreateFormField("header")
	io.WriteString(hw, hdr)
	dw, _ := mw.CreateFormFile("data", "scene.raw")
	dw.Write(payload)
	mw.Close()
	r, err := srv.Client().Post(srv.URL+"/v2/scenes", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, r, http.StatusRequestEntityTooLarge, CodePayloadTooLarge)
}

// TestV2LongPollNonTerminal pins the wait-elapsed contract: when the
// wait runs out before the job finishes, the long-poll returns the
// current snapshot with 200 (the client re-issues), not an error.
func TestV2LongPollNonTerminal(t *testing.T) {
	pool, err := NewPool(Config{Workers: 1, MaxConcurrent: 1, QueueDepth: 4, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	// The second job sits queued behind the slow one on the single
	// dispatcher, so a short wait on it must come back non-terminal.
	first := submitSlow(t, pool)
	second, err := pool.Submit(testCube(t, 71), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r, err := srv.Client().Get(srv.URL + "/v2/jobs/" + second.ID + "?wait=30ms")
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, r)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("30ms wait took %v", elapsed)
	}
	if job.ID != second.ID {
		t.Errorf("long-poll returned %q, want %q", job.ID, second.ID)
	}
	if job.State == StateDone || job.State == StateFailed {
		t.Errorf("wait-elapsed long-poll returned terminal state %s for a queued job", job.State)
	}
	if _, err := pool.Wait(first.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Wait(second.ID); err != nil {
		t.Fatal(err)
	}
}
