package service

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"resilientfusion/internal/core"
)

// TestAlgorithmCacheIsolation is the cache-key regression for the
// algorithm knob: the same cube fused with different algorithms must
// occupy distinct cache entries (never cross-hit the LRU), while every
// spelling of the default — absent, "pct", "PCT" — shares one entry.
func TestAlgorithmCacheIsolation(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	cube := testCube(t, 41)

	run := func(alg string) JobStatus {
		t.Helper()
		st, err := pool.Submit(cube, core.Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("submit %q: %v", alg, err)
		}
		if st, err = pool.Wait(st.ID); err != nil {
			t.Fatalf("wait %q: %v", alg, err)
		}
		if st.State != StateDone {
			t.Fatalf("algorithm %q: state %s (err %v)", alg, st.State, st.Err)
		}
		return st
	}

	pct := run("")
	if pct.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}

	// A different algorithm on the identical cube is a different result
	// key: it must miss the cache and produce a different composite.
	pyr := run("pyramid")
	if pyr.CacheHit {
		t.Error("pyramid submission cross-hit the pct cache entry")
	}
	if bytes.Equal(pyr.Result.Image.Pix, pct.Result.Image.Pix) {
		t.Error("pyramid composite identical to pct composite")
	}

	// Default spellings all resolve to the pct entry...
	for _, alg := range []string{"pct", "PCT", "  pct "} {
		st := run(alg)
		if !st.CacheHit {
			t.Errorf("algorithm %q missed the pct cache entry", alg)
		}
		if !bytes.Equal(st.Result.Image.Pix, pct.Result.Image.Pix) {
			t.Errorf("algorithm %q served a different composite", alg)
		}
	}
	// ...and the pyramid entry still answers its own spelling.
	if st := run("Pyramid"); !st.CacheHit || !bytes.Equal(st.Result.Image.Pix, pyr.Result.Image.Pix) {
		t.Errorf("pyramid resubmission: hit=%v", st.CacheHit)
	}
}

// TestCancelLifecycle drives Pool.Cancel through every branch: a queued
// job cancels into the terminal canceled state, while unknown, running,
// done, and already-canceled jobs are rejected with the typed errors.
func TestCancelLifecycle(t *testing.T) {
	pool, err := NewPool(Config{Workers: 1, MaxConcurrent: 1, QueueDepth: 4, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if _, err := pool.Cancel("job-999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown job: %v", err)
	}

	// Wedge the single dispatcher so the next submission stays queued.
	slow := submitSlow(t, pool)
	queued, err := pool.Submit(testCube(t, 42), core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	st, err := pool.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("cancel queued job: %v", err)
	}
	if st.State != StateCanceled || st.Finished.IsZero() {
		t.Fatalf("canceled snapshot: %+v", st)
	}
	// The transition is terminal: waiters return immediately with the
	// canceled state, and a second cancel is a conflict, not a repeat.
	if st, err = pool.Wait(queued.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("wait after cancel: %+v err=%v", st, err)
	}
	if _, err := pool.Cancel(queued.ID); !errors.Is(err, ErrJobNotCancelable) {
		t.Fatalf("re-cancel: %v", err)
	}

	// The wedge job was never queued-or-canceled: it runs to completion
	// untouched, and a done job cannot be canceled either.
	if st, err = pool.Wait(slow.ID); err != nil || st.State != StateDone {
		t.Fatalf("slow job after cancel: %+v err=%v", st, err)
	}
	if _, err := pool.Cancel(slow.ID); !errors.Is(err, ErrJobNotCancelable) {
		t.Fatalf("cancel done job: %v", err)
	}

	canceled := pool.Jobs(StateCanceled, 0)
	if len(canceled) != 1 || canceled[0].ID != queued.ID {
		t.Errorf("canceled listing: %+v", canceled)
	}
	if s := pool.Stats(); s.Completed != 1 || s.Failed != 0 {
		t.Errorf("stats after cancel: %+v", s)
	}
}

// TestV2CancelEndpoint covers DELETE /v2/jobs/{id}: 200 with the
// canceled resource for a queued job, 409 job_not_cancelable once
// terminal, 404 unknown_job for absent ids.
func TestV2CancelEndpoint(t *testing.T) {
	pool, err := NewPool(Config{Workers: 1, MaxConcurrent: 1, QueueDepth: 4, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	del := func(id string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v2/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	wantEnvelope(t, del("job-999"), http.StatusNotFound, CodeUnknownJob)

	submitSlow(t, pool)
	resp := postCubeV2(t, client, srv.URL+"/v2/jobs", testCube(t, 43), "")
	queued := decodeJob(t, resp)
	if queued.State != StateQueued {
		t.Fatalf("expected a queued job behind the wedge, got %s", queued.State)
	}

	resp = del(queued.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	if job := decodeJob(t, resp); job.State != StateCanceled || job.Finished == nil {
		t.Fatalf("canceled resource: %+v", job)
	}
	wantEnvelope(t, del(queued.ID), http.StatusConflict, CodeJobNotCancelable)

	// The canceled state is visible through the list filter.
	r, err := client.Get(srv.URL + "/v2/jobs?state=canceled")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("canceled filter status %d", r.StatusCode)
	}
}

// TestV2AlgorithmOption threads the algorithm knob across the v2 wire:
// the JSON option selects the kernel, the canonical echo reports it, and
// unknown names are rejected with bad_option before admission.
func TestV2AlgorithmOption(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	resp := postCubeV2(t, client, srv.URL+"/v2/jobs", testCube(t, 44), `{"algorithm":"DWT"}`)
	job := decodeJob(t, resp)
	if job.Options == nil || job.Options.Algorithm != "dwt" {
		t.Fatalf("canonical echo: %+v", job.Options)
	}
	st, err := pool.Wait(job.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("dwt job: %+v err=%v", st, err)
	}
	if st.Options.Algorithm != "dwt" {
		t.Errorf("final snapshot algorithm %q", st.Options.Algorithm)
	}

	resp = postCubeV2(t, client, srv.URL+"/v2/jobs", testCube(t, 44), `{"algorithm":"median"}`)
	wantEnvelope(t, resp, http.StatusBadRequest, CodeBadOption)

	// The v1 query surface accepts the same knob and rejection.
	resp = postCube(t, client, srv.URL+"/v1/jobs?algorithm=pyramid", testCube(t, 45))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("v1 algorithm submit status %d", resp.StatusCode)
	}
	if job := decodeJob(t, resp); job.Options == nil || job.Options.Algorithm != "pyramid" {
		t.Fatalf("v1 echo: %+v", job.Options)
	}
	resp = postCube(t, client, srv.URL+"/v1/jobs?algorithm=median", testCube(t, 45))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("v1 unknown algorithm status %d", resp.StatusCode)
	}
	resp.Body.Close()
}
