package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
)

// submitSlow submits a fusion big enough to hold a dispatcher for
// hundreds of milliseconds — the wedge behind which queue-full and
// wait-while-queued behavior is observable even across HTTP round trips
// — and blocks until it has left the queue.
func submitSlow(t *testing.T, pool *Pool) JobStatus {
	t.Helper()
	s, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 256, Height: 256, Bands: 96, Seed: 3,
		NoiseSigma: 6, Illumination: 0.15, OpenVehicles: 3, CamouflagedVehicles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := pool.Submit(s.Cube, core.Options{Threshold: 0.008})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := pool.Status(slow.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateQueued {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatal("slow job never started")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWaitContextCancel pins the fix for Pool.Wait's unbounded block: a
// waiter must come back when its context does, not when the job deigns
// to finish.
func TestWaitContextCancel(t *testing.T) {
	pool, err := NewPool(Config{Workers: 1, MaxConcurrent: 1, QueueDepth: 4, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// The second job queues behind the slow one on the single
	// dispatcher, so it cannot be done when the context fires.
	first := submitSlow(t, pool)
	second, err := pool.Submit(testCube(t, 91), core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	st, err := pool.WaitContext(ctx, second.ID)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitContext on canceled ctx: err=%v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled wait took %v", elapsed)
	}
	if st.ID != second.ID {
		t.Errorf("snapshot for %q, want %q", st.ID, second.ID)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	if _, err := pool.WaitContext(ctx2, second.ID); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitContext deadline: err=%v", err)
	}

	// Both jobs still complete normally after abandoned waits.
	if st, err := pool.Wait(first.ID); err != nil || st.State != StateDone {
		t.Fatalf("first job: state=%v err=%v", st.State, err)
	}
	if st, err := pool.Wait(second.ID); err != nil || st.State != StateDone {
		t.Fatalf("second job: state=%v err=%v", st.State, err)
	}

	// Unknown jobs are reported as such, not waited for.
	if _, err := pool.WaitContext(context.Background(), "job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job err=%v", err)
	}
}

// TestWaitContextPoolClose pins the leak guard: a waiter on a job that
// will never finish is released when the pool shuts down, with ErrClosed
// rather than a hang. The never-finishing job is forged directly in the
// registry — every real admitted job is drained by Close, which is
// exactly why the guard needs a synthetic stuck entry to be testable.
func TestWaitContextPoolClose(t *testing.T) {
	pool, err := NewPool(Config{Workers: 1, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}

	stuck := &Job{id: "job-stuck", num: 999, done: make(chan struct{}), state: StateQueued}
	pool.mu.Lock()
	pool.jobs[stuck.id] = stuck
	pool.mu.Unlock()

	got := make(chan error, 1)
	go func() {
		_, err := pool.WaitContext(context.Background(), stuck.id)
		got <- err
	}()
	// Give the waiter a moment to block on the select, then shut down.
	time.Sleep(10 * time.Millisecond)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("waiter released with err=%v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter leaked past pool close")
	}
}

// TestWaitContextDone is the happy path: a background waiter with a
// generous context observes the terminal state exactly like Wait.
func TestWaitContextDone(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	st, err := pool.Submit(testCube(t, 92), core.Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := pool.WaitContext(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("final state %s, result %v", final.State, final.Result)
	}
	if final.Options.Workers != 2 || final.Options.Threshold != 0.05 {
		t.Errorf("canonical options not in snapshot: %+v", final.Options)
	}
}
