package service

import (
	"errors"
	"net/http"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
)

// Stable machine-readable error codes of the v2 API. They are part of
// the wire contract: clients branch on them (fusionclient mirrors this
// list), so codes may be added but never renamed.
const (
	// CodeBadOption: an option failed validation (unknown key, bad
	// value, out-of-range threshold, oversized decomposition).
	CodeBadOption = "bad_option"
	// CodeBadPayload: the request body is malformed (bad multipart
	// framing, undecodable cube, scene payload/header mismatch).
	CodeBadPayload = "bad_payload"
	// CodePayloadTooLarge: the upload exceeds the pool's size limit.
	CodePayloadTooLarge = "payload_too_large"
	// CodeQueueFull: admission control rejected the job; back off and
	// resubmit.
	CodeQueueFull = "queue_full"
	// CodePoolClosed: the pool is shutting down.
	CodePoolClosed = "pool_closed"
	// CodeUnknownJob: no such (or already evicted) job ID.
	CodeUnknownJob = "unknown_job"
	// CodeUnknownScene: no such (or removed) scene ID.
	CodeUnknownScene = "unknown_scene"
	// CodeSceneLimit: the scene registry is at capacity.
	CodeSceneLimit = "scene_limit"
	// CodeNoSceneResult: the scene has no completed fusion yet.
	CodeNoSceneResult = "no_scene_result"
	// CodeImageExpired: the composite aged out of the retention window
	// (scalar results remain queryable).
	CodeImageExpired = "image_expired"
	// CodeJobNotCancelable: DELETE /v2/jobs/{id} on a job that already
	// left the queue (running or terminal).
	CodeJobNotCancelable = "job_not_cancelable"
	// CodeJobNotFinished: a result was requested for a job that has not
	// reached a terminal state.
	CodeJobNotFinished = "job_not_finished"
	// CodeJobFailed: a result was requested for a failed job.
	CodeJobFailed = "job_failed"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// apiErrorJSON is the body of the v2 structured error envelope:
//
//	{"error": {"code": "queue_full", "message": "..."}}
type apiErrorJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error apiErrorJSON `json:"error"`
}

// errorCode maps a service error to its stable v2 code and HTTP status.
// Unrecognized errors are internal: handlers that know better (request
// parse failures, for instance) pass an explicit code instead.
func errorCode(err error) (string, int) {
	switch {
	case errors.Is(err, core.ErrBadOptions):
		return CodeBadOption, http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return CodeQueueFull, http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		return CodePoolClosed, http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		return CodeUnknownJob, http.StatusNotFound
	case errors.Is(err, ErrJobNotCancelable):
		return CodeJobNotCancelable, http.StatusConflict
	case errors.Is(err, ErrUnknownScene):
		return CodeUnknownScene, http.StatusNotFound
	case errors.Is(err, ErrSceneLimit):
		return CodeSceneLimit, http.StatusServiceUnavailable
	case errors.Is(err, ErrSceneTooLarge), errors.Is(err, hsi.ErrCubeTooLarge):
		return CodePayloadTooLarge, http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrScenePayload):
		return CodeBadPayload, http.StatusBadRequest
	case errors.Is(err, ErrNoSceneResult):
		return CodeNoSceneResult, http.StatusNotFound
	case errors.Is(err, ErrImageExpired):
		return CodeImageExpired, http.StatusGone
	}
	return CodeInternal, http.StatusInternalServerError
}

// writeAPIError maps err through errorCode and writes the envelope.
func writeAPIError(w http.ResponseWriter, err error) {
	code, status := errorCode(err)
	writeAPIErrorCode(w, status, code, err.Error())
}

// queueFullRetryAfter is the Retry-After hint (in seconds) sent with
// queue_full rejections. Admission pressure drains at job-completion
// speed, so a short fixed backoff beats clients hot-looping resubmits;
// fusionclient surfaces the hint as APIError.RetryAfter.
const queueFullRetryAfter = "1"

// writeAPIErrorCode writes the envelope with an explicit status and code.
func writeAPIErrorCode(w http.ResponseWriter, status int, code, message string) {
	if code == CodeQueueFull {
		w.Header().Set("Retry-After", queueFullRetryAfter)
	}
	writeJSON(w, status, errorEnvelope{Error: apiErrorJSON{Code: code, Message: message}})
}
