package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
)

// registerV2 mounts the v2 resource API. It serves the same pool as v1
// with a contract built for programs instead of curl sessions:
//
//   - Errors travel in a structured envelope {"error": {"code", "message"}}
//     with stable machine-readable codes (apierror.go).
//   - Job submission options are JSON bodies decoded into the same
//     OptionsJSON form v1's query parser fills, so both surfaces
//     canonicalize identically.
//   - Jobs are a unified resource covering cube and scene fusions, with
//     listing, canonical-options echo, and server-side long-poll.
//
// Endpoints:
//
//	POST   /v2/jobs                 multipart: optional "options" part
//	                                (JSON) then "cube" part (HSIC bytes)
//	                                → 202 job resource
//	GET    /v2/jobs                 list jobs (?state=queued|running|
//	                                done|failed|canceled, ?limit=N),
//	                                newest first
//	GET    /v2/jobs/{id}            job resource; ?wait=30s long-polls
//	                                until the job is terminal, the wait
//	                                elapses, or the server cap
//	                                (Config.MaxLongPoll) trims it
//	DELETE /v2/jobs/{id}            cancel a queued job → 200 canceled
//	                                resource; running or finished jobs
//	                                → 409 job_not_cancelable
//	GET    /v2/jobs/{id}/result     content-negotiated artifact: the
//	                                composite as image/png when Accept
//	                                includes it, else the JSON summary
//	GET    /v2/jobs/{id}/trace      recorded stage-span timeline (JSON)
//	GET    /v2/stats                pool counters (same shape as v1)
//	POST   /v2/scenes               multipart "header" + "data" upload
//	GET    /v2/scenes               scene listing
//	GET    /v2/scenes/{id}          scene info
//	DELETE /v2/scenes/{id}          unregister + delete the spool
//	POST   /v2/scenes/{id}/fuse     JSON options body → 202 job resource
func (p *Pool) registerV2(mux *http.ServeMux) {
	mux.HandleFunc("POST /v2/jobs", p.v2SubmitJob)
	mux.HandleFunc("GET /v2/jobs", p.v2ListJobs)
	mux.HandleFunc("GET /v2/jobs/{id}", p.v2GetJob)
	mux.HandleFunc("DELETE /v2/jobs/{id}", p.v2CancelJob)
	mux.HandleFunc("GET /v2/jobs/{id}/result", p.v2JobResult)
	mux.HandleFunc("GET /v2/jobs/{id}/trace", p.v2JobTrace)
	mux.HandleFunc("GET /v2/stats", func(w http.ResponseWriter, r *http.Request) {
		if !v2NoQuery(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, p.Stats())
	})
	mux.HandleFunc("POST /v2/scenes", p.v2RegisterScene)
	mux.HandleFunc("GET /v2/scenes", func(w http.ResponseWriter, r *http.Request) {
		if !v2NoQuery(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"scenes": p.Scenes()})
	})
	mux.HandleFunc("GET /v2/scenes/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !v2NoQuery(w, r) {
			return
		}
		info, err := p.Scene(r.PathValue("id"))
		if err != nil {
			writeAPIError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v2/scenes/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !v2NoQuery(w, r) {
			return
		}
		if err := p.RemoveScene(r.PathValue("id")); err != nil {
			writeAPIError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v2/scenes/{id}/fuse", p.v2FuseScene)
}

// v2NoQuery rejects any query parameter on endpoints that take none —
// the same no-silent-typos rule the option-bearing endpoints enforce.
// It reports whether the handler may proceed.
func v2NoQuery(w http.ResponseWriter, r *http.Request) bool {
	q := r.URL.Query()
	if len(q) == 0 {
		return true
	}
	keys := make([]string, 0, len(q))
	for key := range q {
		keys = append(keys, key)
	}
	slices.Sort(keys)
	writeAPIErrorCode(w, http.StatusBadRequest, CodeBadOption,
		fmt.Sprintf("unknown option %q (this endpoint takes no query parameters)", keys[0]))
	return false
}

// v2SubmitJob accepts a multipart submission: an optional "options" part
// holding the OptionsJSON body, then a "cube" part streaming the
// HSIC-encoded cube.
func (p *Pool) v2SubmitJob(w http.ResponseWriter, r *http.Request) {
	// Options travel in the body on v2; a v1-style ?threshold=... here
	// would otherwise be dropped silently.
	if !v2NoQuery(w, r) {
		return
	}
	mr, err := r.MultipartReader()
	if err != nil {
		writeAPIErrorCode(w, http.StatusBadRequest, CodeBadPayload,
			fmt.Sprintf("multipart body required: %v", err))
		return
	}
	part, err := mr.NextPart()
	if err != nil {
		writeAPIErrorCode(w, http.StatusBadRequest, CodeBadPayload,
			`multipart needs an optional "options" part then a "cube" part`)
		return
	}
	var opts core.Options
	if part.FormName() == "options" {
		opts, err = decodeOptionsBody(part)
		if err != nil {
			writeAPIErrorCode(w, http.StatusBadRequest, CodeBadOption, err.Error())
			return
		}
		if part, err = mr.NextPart(); err != nil {
			writeAPIErrorCode(w, http.StatusBadRequest, CodeBadPayload,
				`"cube" part missing after "options"`)
			return
		}
	}
	if part.FormName() != "cube" {
		writeAPIErrorCode(w, http.StatusBadRequest, CodeBadPayload,
			fmt.Sprintf(`unexpected multipart part %q (want "cube")`, part.FormName()))
		return
	}
	// ReadCubeLimit bounds the upload by the header's claimed dimensions
	// before allocating, exactly like the v1 path.
	cube, err := hsi.ReadCubeLimit(part, maxCubeBytes)
	if err != nil {
		if errors.Is(err, hsi.ErrCubeTooLarge) {
			writeAPIErrorCode(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
				fmt.Sprintf("cube exceeds the %d-byte upload limit", maxCubeBytes))
			return
		}
		writeAPIErrorCode(w, http.StatusBadRequest, CodeBadPayload,
			fmt.Sprintf("decoding cube: %v", err))
		return
	}
	// Multipart form fields are unordered in general; a part trailing
	// the cube (an out-of-place "options", say) would otherwise be
	// dropped silently — the exact failure mode unknown query keys and
	// unknown JSON fields are rejected to prevent.
	if extra, err := mr.NextPart(); err == nil {
		writeAPIErrorCode(w, http.StatusBadRequest, CodeBadPayload,
			fmt.Sprintf(`unexpected multipart part %q after "cube" (options must precede the cube)`, extra.FormName()))
		return
	} else if !errors.Is(err, io.EOF) {
		writeAPIErrorCode(w, http.StatusBadRequest, CodeBadPayload,
			fmt.Sprintf("reading multipart body: %v", err))
		return
	}
	st, err := p.Submit(cube, opts)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, statusJSON(st))
}

// v2ListJobs serves the job listing, newest submission first.
func (p *Pool) v2ListJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var state JobState
	limit := 100
	keys, err := queryKeys(q, "state", "limit")
	if err != nil {
		writeAPIErrorCode(w, http.StatusBadRequest, CodeBadOption, err.Error())
		return
	}
	for _, key := range keys {
		switch key {
		case "state":
			switch s := JobState(q.Get(key)); s {
			case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
				state = s
			default:
				writeAPIErrorCode(w, http.StatusBadRequest, CodeBadOption,
					fmt.Sprintf("unknown state %q (valid: queued, running, done, failed, canceled)", q.Get(key)))
				return
			}
		case "limit":
			v, err := strconv.Atoi(q.Get(key))
			if err != nil || v < 1 {
				writeAPIErrorCode(w, http.StatusBadRequest, CodeBadOption,
					fmt.Sprintf("bad limit %q", q.Get(key)))
				return
			}
			limit = v
		}
	}
	statuses := p.Jobs(state, limit)
	jobs := make([]*jobJSON, len(statuses))
	for i, st := range statuses {
		jobs[i] = statusJSON(st)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

// v2GetJob serves a job resource, long-polling when ?wait= is given: the
// response carries a terminal state unless the wait (trimmed to the
// server cap) elapsed first, so clients need no status-poll loops.
func (p *Pool) v2GetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	if _, err := queryKeys(q, "wait"); err != nil {
		writeAPIErrorCode(w, http.StatusBadRequest, CodeBadOption, err.Error())
		return
	}
	if !q.Has("wait") {
		st, err := p.Status(id)
		if err != nil {
			writeAPIError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, statusJSON(st))
		return
	}
	// A present-but-empty value ("?wait=", a lost shell variable) is a
	// bad value, not an absent knob: it fails the parse below.
	waitStr := q.Get("wait")
	d, err := time.ParseDuration(waitStr)
	if err != nil || d <= 0 {
		writeAPIErrorCode(w, http.StatusBadRequest, CodeBadOption,
			fmt.Sprintf("bad wait %q (want a positive duration like 30s)", waitStr))
		return
	}
	if d > p.cfg.MaxLongPoll {
		d = p.cfg.MaxLongPoll
	}
	// Count a park only when the wait will actually block on a
	// non-terminal job (the common fast path — polling a finished job —
	// is not a park).
	if st, err := p.Status(id); err == nil && st.State != StateDone && st.State != StateFailed {
		p.metrics.longpollParks.Inc()
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	st, err := p.WaitContext(ctx, id)
	switch {
	case err == nil, errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// Terminal, the wait elapsed, or the request context was torn
		// down (server draining — see fusiond's BaseContext — or the
		// client went away, where the write just fails silently): the
		// current snapshot is the answer and a live client decides
		// whether to long-poll again.
		writeJSON(w, http.StatusOK, statusJSON(st))
	default:
		writeAPIError(w, err)
	}
}

// v2CancelJob withdraws a queued job, returning the canceled resource.
func (p *Pool) v2CancelJob(w http.ResponseWriter, r *http.Request) {
	if !v2NoQuery(w, r) {
		return
	}
	st, err := p.Cancel(r.PathValue("id"))
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, statusJSON(st))
}

// v2JobResult serves a finished job's artifact with content negotiation:
// image/png when the Accept header asks for it, the JSON result summary
// otherwise.
func (p *Pool) v2JobResult(w http.ResponseWriter, r *http.Request) {
	if !v2NoQuery(w, r) {
		return
	}
	id := r.PathValue("id")
	st, err := p.Status(id)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	switch st.State {
	case StateFailed:
		writeAPIErrorCode(w, http.StatusConflict, CodeJobFailed,
			fmt.Sprintf("job %s failed: %v", id, st.Err))
		return
	case StateDone:
	default:
		writeAPIErrorCode(w, http.StatusConflict, CodeJobNotFinished,
			fmt.Sprintf("job %s is %s", id, st.State))
		return
	}
	if acceptsPNG(r.Header.Get("Accept")) {
		data, err := p.ImagePNG(id)
		if err != nil {
			writeAPIError(w, err)
			return
		}
		w.Header().Set("Content-Type", "image/png")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
		return
	}
	body := statusJSON(st)
	writeJSON(w, http.StatusOK, body.Result)
}

// v2JobTrace serves the job's recorded stage-span timeline.
func (p *Pool) v2JobTrace(w http.ResponseWriter, r *http.Request) {
	if !v2NoQuery(w, r) {
		return
	}
	tr, err := p.Trace(r.PathValue("id"))
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// acceptsPNG reports whether an Accept header asks for the composite
// image rather than the JSON summary. This is a deliberate two-outcome
// rule, not full RFC 9110 ranking: naming image/png (or image/*) with
// any nonzero quality opts in, a q=0 refusal opts out, and a bare */*
// (or no header) keeps the JSON default — programs must opt in to
// image bytes.
func acceptsPNG(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		params := strings.Split(part, ";")
		// Media types and parameter names are case-insensitive (RFC
		// 9110 §8.3.1).
		mt := strings.TrimSpace(params[0])
		if !strings.EqualFold(mt, "image/png") && !strings.EqualFold(mt, "image/*") {
			continue
		}
		refused := false
		for _, param := range params[1:] {
			if k, v, ok := strings.Cut(strings.TrimSpace(param), "="); ok && strings.EqualFold(strings.TrimSpace(k), "q") {
				if q, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && q == 0 {
					refused = true
				}
			}
		}
		if !refused {
			return true
		}
	}
	return false
}

// v2RegisterScene is the v1 multipart upload with envelope errors.
func (p *Pool) v2RegisterScene(w http.ResponseWriter, r *http.Request) {
	if !v2NoQuery(w, r) {
		return
	}
	info, err := p.sceneFromMultipart(r)
	if err != nil {
		// Client-caused failures — multipart framing, a bad ENVI header
		// — are bad_payload; anything else unmapped (spool I/O, say) is
		// a genuine server fault and must stay a 5xx so machine clients
		// retry instead of concluding their upload is malformed.
		var ufe *uploadFormatError
		if errors.As(err, &ufe) || errors.Is(err, scene.ErrHeader) {
			writeAPIErrorCode(w, http.StatusBadRequest, CodeBadPayload, err.Error())
			return
		}
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// v2FuseScene enqueues a whole-scene fusion with a JSON options body
// (empty body selects the pool defaults).
func (p *Pool) v2FuseScene(w http.ResponseWriter, r *http.Request) {
	// Options travel in the JSON body on v2; a v1-style ?threshold=...
	// here would otherwise be dropped silently.
	if !v2NoQuery(w, r) {
		return
	}
	opts, err := decodeOptionsBody(r.Body)
	if err != nil {
		writeAPIErrorCode(w, http.StatusBadRequest, CodeBadOption, err.Error())
		return
	}
	st, err := p.FuseScene(r.PathValue("id"), opts)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, statusJSON(st))
}
