package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"resilientfusion/internal/core"
)

// OptionsJSON is the client-settable fusion knobs as they travel on the
// wire — the v2 JSON request form, and the form v1's query parser fills,
// so both surfaces canonicalize through the same validation. Pointer
// fields keep absent knobs off the wire; an explicitly sent zero means
// "pool default" just like v1's granularity=0 (core.Options treats zero
// as unset throughout). Workers, replication, and scheduling policy are
// fixed by the pool and not settable here.
type OptionsJSON struct {
	Granularity *int     `json:"granularity,omitempty"`
	Prefetch    *int     `json:"prefetch,omitempty"`
	Threshold   *float64 `json:"threshold,omitempty"`
	Components  *int     `json:"components,omitempty"`
	Parallelism *int     `json:"parallelism,omitempty"`
	// Algorithm selects the fusion algorithm by registry name ("pct",
	// "pyramid", "dwt"); absent or empty selects "pct". Unknown names are
	// rejected at submit with bad_option.
	Algorithm *string `json:"algorithm,omitempty"`
}

// Options validates the wire form and lowers it onto core.Options (not
// yet canonicalized — the pool's canonicalOptions applies defaults and
// policy). Range checks beyond representability live in
// canonicalOptions; this layer rejects values JSON or query strings can
// carry but no computation can mean.
func (o OptionsJSON) Options() (core.Options, error) {
	var opts core.Options
	if o.Granularity != nil {
		opts.Granularity = *o.Granularity
	}
	if o.Prefetch != nil {
		opts.Prefetch = *o.Prefetch
	}
	if o.Threshold != nil {
		v := *o.Threshold
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return opts, fmt.Errorf("bad threshold %v", v)
		}
		opts.Threshold = v
	}
	if o.Components != nil {
		opts.Components = *o.Components
	}
	if o.Parallelism != nil {
		opts.Parallelism = *o.Parallelism
	}
	if o.Algorithm != nil {
		opts.Algorithm = *o.Algorithm
	}
	return opts, nil
}

// maxOptionsBytes bounds an options JSON body — a page of numbers, not a
// payload channel.
const maxOptionsBytes = 1 << 20

// decodeOptionsBody reads a v2 options JSON body. An empty body selects
// the pool defaults; unknown fields are rejected the way v1 rejects
// unknown query keys (a typo must fail loudly, not silently run the
// defaults).
func decodeOptionsBody(r io.Reader) (core.Options, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxOptionsBytes))
	dec.DisallowUnknownFields()
	var oj OptionsJSON
	if err := dec.Decode(&oj); err != nil {
		if errors.Is(err, io.EOF) {
			return core.Options{}, nil
		}
		return core.Options{}, fmt.Errorf("bad options JSON: %w", err)
	}
	// A second document (or trailing junk) is a malformed request, not
	// ignorable padding.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return core.Options{}, errors.New("bad options JSON: trailing data after options object")
	}
	return oj.Options()
}

// JobOptions is the canonical options echo in job status: every knob the
// job actually ran with, defaults filled in, including the pool-fixed
// worker count. Shared by the v1 and v2 job resources.
type JobOptions struct {
	Workers     int     `json:"workers"`
	Granularity int     `json:"granularity"`
	Prefetch    int     `json:"prefetch"`
	Threshold   float64 `json:"threshold"`
	Components  int     `json:"components"`
	Parallelism int     `json:"parallelism"`
	Algorithm   string  `json:"algorithm"`
}

func jobOptions(o core.Options) *JobOptions {
	return &JobOptions{
		Workers:     o.Workers,
		Granularity: o.Granularity,
		Prefetch:    o.Prefetch,
		Threshold:   o.Threshold,
		Components:  o.Components,
		Parallelism: o.Parallelism,
		Algorithm:   o.Algorithm,
	}
}
