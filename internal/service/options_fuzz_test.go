package service

import (
	"bytes"
	"encoding/json"
	"testing"

	"resilientfusion/internal/core"
)

// FuzzOptionsJSON drives the v2 options body decoder with arbitrary
// bytes. Properties: the decoder never panics; rejected bodies yield
// zero options; and any body it accepts canonicalizes stably —
// Canonical is idempotent, ResultKey is invariant under
// canonicalization, and re-marshaling the decoded knobs through
// OptionsJSON reproduces the identical core.Options.
func FuzzOptionsJSON(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"granularity":4}`))
	f.Add([]byte(`{"granularity":3,"prefetch":-1,"threshold":0.08,"components":5,"parallelism":2}`))
	f.Add([]byte(`{"granularity":0,"prefetch":0,"threshold":0,"components":0,"parallelism":0}`))
	f.Add([]byte(`{"threshold":1e999}`))
	f.Add([]byte(`{"threshold":-0.0}`))
	f.Add([]byte(`{"unknown":1}`))
	f.Add([]byte(`{"granularity":1} {"granularity":2}`))
	f.Add([]byte(`{"granularity":1}garbage`))
	f.Add([]byte(`{"algorithm":"pyramid"}`))
	f.Add([]byte(`{"algorithm":"PCT"}`))
	f.Add([]byte(`{"algorithm":" dwt "}`))
	f.Add([]byte(`{"algorithm":"bogus"}`))
	f.Add([]byte(`{"algorithm":""}`))
	f.Add([]byte(`{"algorithm":"dwt","threshold":0.05}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		opts, err := decodeOptionsBody(bytes.NewReader(body))
		if err != nil {
			if opts != (core.Options{}) {
				t.Fatalf("decode error %v returned non-zero options %+v", err, opts)
			}
			return
		}

		c := opts.Canonical()
		if c2 := c.Canonical(); c2 != c {
			t.Fatalf("Canonical not idempotent:\nonce:  %+v\ntwice: %+v", c, c2)
		}
		if ck, ok := opts.ResultKey(), c.ResultKey(); ck != ok {
			t.Fatalf("ResultKey changed under canonicalization: %q -> %q", ck, ok)
		}

		oj := OptionsJSON{
			Granularity: &opts.Granularity,
			Prefetch:    &opts.Prefetch,
			Threshold:   &opts.Threshold,
			Components:  &opts.Components,
			Parallelism: &opts.Parallelism,
			Algorithm:   &opts.Algorithm,
		}
		re, err := json.Marshal(oj)
		if err != nil {
			t.Fatalf("re-marshal of accepted options failed: %v", err)
		}
		opts2, err := decodeOptionsBody(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("decode of re-marshaled options failed: %v\nbody: %s", err, re)
		}
		if opts2 != opts {
			t.Fatalf("options changed across JSON round trip:\nfirst:  %+v\nsecond: %+v\nbody: %s", opts, opts2, re)
		}
	})
}
