package service

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
)

func postCube(t *testing.T, client *http.Client, url string, cube *hsi.Cube) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if _, err := cube.WriteTo(&body); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) jobJSON {
	t.Helper()
	defer resp.Body.Close()
	var out jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestHTTPEndToEnd drives the full service over HTTP: submit, poll to
// completion, fetch the composite image, verify stats and the cache path.
func TestHTTPEndToEnd(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	cube := testCube(t, 21)
	resp := postCube(t, srv.Client(), srv.URL+"/v1/jobs?threshold=0.05&granularity=3", cube)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.ID == "" {
		t.Fatal("no job id")
	}

	deadline := time.Now().Add(15 * time.Second)
	for job.State != StateDone && job.State != StateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", job.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := srv.Client().Get(srv.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status %d", r.StatusCode)
		}
		job = decodeJob(t, r)
	}
	if job.State != StateDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	if job.Result == nil || job.Result.UniqueSetSize == 0 {
		t.Fatalf("missing result summary: %+v", job.Result)
	}
	if job.Result.ImagePNG != "" {
		t.Error("image returned without ?image=1")
	}
	if job.Result.PhaseTimes.Total <= 0 {
		t.Errorf("phase times not populated: %+v", job.Result.PhaseTimes)
	}

	// Fetch the composite.
	r, err := srv.Client().Get(srv.URL + "/v1/jobs/" + job.ID + "?image=1")
	if err != nil {
		t.Fatal(err)
	}
	withImg := decodeJob(t, r)
	raw, err := base64.StdEncoding.DecodeString(withImg.Result.ImagePNG)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if b := img.Bounds(); b.Dx() != cube.Width || b.Dy() != cube.Height {
		t.Errorf("composite %dx%d, cube %dx%d", b.Dx(), b.Dy(), cube.Width, cube.Height)
	}

	// Same cube + options again: served from cache at submit time.
	resp = postCube(t, srv.Client(), srv.URL+"/v1/jobs?threshold=0.05&granularity=3", cube)
	repeat := decodeJob(t, resp)
	if repeat.State != StateDone || !repeat.CacheHit {
		t.Errorf("repeat submit: state=%s cache_hit=%v", repeat.State, repeat.CacheHit)
	}

	// Stats reflect the traffic.
	r, err = srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats Stats
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != 2 || stats.Completed != 2 || stats.CacheHits != 1 {
		t.Errorf("stats: %+v", stats)
	}
	if stats.Workers != 2 {
		t.Errorf("stats workers = %d", stats.Workers)
	}
}

// TestHTTPBadRequests covers the error surface.
func TestHTTPBadRequests(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	// Garbage cube body.
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/octet-stream",
		strings.NewReader("not a cube"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage cube status %d", resp.StatusCode)
	}

	// Bad option value.
	resp = postCube(t, srv.Client(), srv.URL+"/v1/jobs?granularity=abc", testCube(t, 2))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad option status %d", resp.StatusCode)
	}

	// Unknown option keys are rejected, not silently defaulted: a typo
	// like granularty=8 must not run a different computation than asked.
	// Same for a known knob with an empty value (a lost shell variable).
	for _, q := range []string{"granularty=8", "treshold=0.05", "granularity=3&foo=1", "granularity=", "threshold=", "granularity=2&granularity=16"} {
		resp = postCube(t, srv.Client(), srv.URL+"/v1/jobs?"+q, testCube(t, 2))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("unknown option %q status %d, want 400", q, resp.StatusCode)
		}
	}

	// Unknown job.
	r, err := srv.Client().Get(srv.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d", r.StatusCode)
	}
}

// TestHTTPNaNThreshold pins the edge validation: NaN parses as a float
// but must be rejected before it reaches the screening kernel.
func TestHTTPNaNThreshold(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	for _, v := range []string{"NaN", "+Inf", "-Inf"} {
		resp := postCube(t, srv.Client(), srv.URL+"/v1/jobs?threshold="+v, testCube(t, 2))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("threshold=%s status %d, want 400", v, resp.StatusCode)
		}
	}
}

// TestHTTPOversizedUpload distinguishes 413 (too large) from 400 (bad
// cube) by shrinking the upload limit below a valid cube's size.
func TestHTTPOversizedUpload(t *testing.T) {
	old := maxCubeBytes
	maxCubeBytes = 64
	defer func() { maxCubeBytes = old }()

	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	resp := postCube(t, srv.Client(), srv.URL+"/v1/jobs", testCube(t, 2))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload status %d, want 413", resp.StatusCode)
	}
}

// TestHTTPExpiredImage maps an aged-out composite to 410 Gone, not 500.
func TestHTTPExpiredImage(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, RetainResults: 1, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	var first string
	for i := 0; i < 3; i++ {
		st, err := pool.Submit(testCube(t, int64(80+i)), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st.ID
		}
		if _, err := pool.Wait(st.ID); err != nil {
			t.Fatal(err)
		}
	}
	r, err := srv.Client().Get(srv.URL + "/v1/jobs/" + first + "?image=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Errorf("expired image status %d, want 410", r.StatusCode)
	}
	// Without ?image=1 the job still reads fine.
	r, err = srv.Client().Get(srv.URL + "/v1/jobs/" + first)
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, r)
	if job.State != StateDone || job.Result == nil {
		t.Errorf("scalar status after expiry: %+v", job)
	}
}
