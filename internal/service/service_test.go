package service

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
)

// testCube synthesizes a small distinct scene per seed.
func testCube(t testing.TB, seed int64) *hsi.Cube {
	t.Helper()
	s, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 24, Height: 24, Bands: 8, Seed: seed,
		NoiseSigma: 3, Illumination: 0.1,
		OpenVehicles: 1, CamouflagedVehicles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s.Cube
}

func sameResult(t *testing.T, got, want *core.Result, label string) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil result", label)
	}
	if got.UniqueSetSize != want.UniqueSetSize {
		t.Errorf("%s: unique set %d, want %d", label, got.UniqueSetSize, want.UniqueSetSize)
	}
	for i := range want.Eigenvalues {
		if got.Eigenvalues[i] != want.Eigenvalues[i] {
			t.Errorf("%s: eigenvalue %d differs", label, i)
			break
		}
	}
	if !bytes.Equal(got.Image.Pix, want.Image.Pix) {
		t.Errorf("%s: composite image differs from sequential reference", label)
	}
}

// TestConcurrentJobsSharedPool pushes 32 concurrent, distinct jobs
// through one pooled system and checks every result bit-for-bit against
// the sequential oracle — per-job isolation over shared workers.
func TestConcurrentJobsSharedPool(t *testing.T) {
	const jobs = 32
	pool, err := NewPool(Config{Workers: 4, MaxConcurrent: 8, QueueDepth: jobs})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	opts := core.Options{Threshold: 0.05}
	refOpts := core.Options{Workers: 4, Threshold: 0.05}

	cubes := make([]*hsi.Cube, jobs)
	want := make([]*core.Result, jobs)
	for i := range cubes {
		cubes[i] = testCube(t, int64(1000+i))
		ref, err := core.Sequential(cubes[i], refOpts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref
	}

	ids := make([]string, jobs)
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := pool.Submit(cubes[i], opts)
			if err != nil {
				errs <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i, id := range ids {
		st, err := pool.Wait(id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %d state %s (err %v)", i, st.State, st.Err)
		}
		if st.CacheHit {
			t.Errorf("job %d: unexpected cache hit for a distinct cube", i)
		}
		sameResult(t, st.Result, want[i], fmt.Sprintf("job %d", i))
	}

	s := pool.Stats()
	if s.Submitted != jobs || s.Completed != jobs || s.Failed != 0 {
		t.Errorf("stats after run: %+v", s)
	}
	if s.CacheHits != 0 {
		t.Errorf("distinct cubes produced %d cache hits", s.CacheHits)
	}
}

// TestResultCacheHit checks content-addressed serving: a repeated cube +
// options submission is answered from the cache, and changed options are
// not.
func TestResultCacheHit(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cube := testCube(t, 7)
	opts := core.Options{Threshold: 0.05}

	first, err := pool.Submit(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := pool.Wait(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != StateDone || st1.CacheHit {
		t.Fatalf("first run: state=%s cacheHit=%v err=%v", st1.State, st1.CacheHit, st1.Err)
	}

	second, err := pool.Submit(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := pool.Wait(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("repeat run not served from cache: state=%s cacheHit=%v", st2.State, st2.CacheHit)
	}
	sameResult(t, st2.Result, st1.Result, "cached")

	if s := pool.Stats(); s.CacheHits != 1 {
		t.Errorf("cache hit counter = %d, want 1", s.CacheHits)
	}

	// A different screening threshold is a different computation.
	third, err := pool.Submit(cube, core.Options{Threshold: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	st3, err := pool.Wait(third.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st3.CacheHit {
		t.Error("changed options still hit the cache")
	}
	if s := pool.Stats(); s.CacheHits != 1 {
		t.Errorf("cache hits after changed options = %d, want 1", s.CacheHits)
	}
}

// TestAdmissionControl checks that the queue bounds hold: with one slot
// running and one queued, further submissions are rejected.
func TestAdmissionControl(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 1, QueueDepth: 1, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// A scene big enough to keep the single slot busy while we fill the
	// queue behind it.
	s, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 96, Height: 96, Bands: 24, Seed: 3,
		NoiseSigma: 4, Illumination: 0.1, OpenVehicles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := pool.Submit(s.Cube, core.Options{Threshold: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := pool.Status(slow.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow job never started")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := pool.Submit(testCube(t, 1), core.Options{}); err != nil {
		t.Fatalf("queueing within capacity: %v", err)
	}
	if _, err := pool.Submit(testCube(t, 2), core.Options{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: err=%v, want ErrQueueFull", err)
	}
	if s := pool.Stats(); s.Rejected < 1 {
		t.Errorf("rejected counter = %d", s.Rejected)
	}
}

// TestSubmitValidation covers option and cube validation plus closed-pool
// rejection.
func TestSubmitValidation(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Submit(testCube(t, 5), core.Options{Components: 2}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("components=2 err = %v", err)
	}
	if _, err := pool.Submit(&hsi.Cube{}, core.Options{}); err == nil {
		t.Error("empty cube accepted")
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := pool.Submit(testCube(t, 5), core.Options{}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close err = %v", err)
	}
	if err := pool.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestCloseDrainsQueuedJobs checks graceful shutdown: jobs accepted
// before Close still complete.
func TestCloseDrainsQueuedJobs(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := pool.Submit(testCube(t, int64(40+i)), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, id := range ids {
		st, err := pool.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("job %s after close: state=%s err=%v", id, st.State, st.Err)
		}
	}
}

// TestCacheDisabled checks that a negative CacheEntries config really
// disables content addressing: repeats recompute and no counters move.
func TestCacheDisabled(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	cube := testCube(t, 9)
	for i := 0; i < 2; i++ {
		st, err := pool.Submit(cube, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st, err = pool.Wait(st.ID); err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone || st.CacheHit {
			t.Fatalf("run %d: state=%s cacheHit=%v err=%v", i, st.State, st.CacheHit, st.Err)
		}
	}
	if s := pool.Stats(); s.CacheHits != 0 || s.CacheMisses != 0 || s.CacheSize != 0 {
		t.Errorf("disabled cache still counting: %+v", s)
	}
}

// TestSubmitRejectsBadGranularity pins submit-time option validation for
// the knob HTTP clients control directly.
func TestSubmitRejectsBadGranularity(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Submit(testCube(t, 5), core.Options{Granularity: -1}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("granularity=-1 err = %v", err)
	}
}

// TestFinishedJobReleasesCube pins the memory bound: a completed job must
// not keep its input cube alive while it stays queryable.
func TestFinishedJobReleasesCube(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	st, err := pool.Submit(testCube(t, 11), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	pool.mu.Lock()
	cube := pool.jobs[st.ID].cube
	pool.mu.Unlock()
	if cube != nil {
		t.Error("finished job still references its input cube")
	}
}

// TestSubmitBoundsDecomposition pins the sub-cube cap that protects the
// fixed-depth mailboxes from client-chosen granularity.
func TestSubmitBoundsDecomposition(t *testing.T) {
	pool, err := NewPool(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Submit(testCube(t, 5), core.Options{Granularity: 100000}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("huge granularity err = %v", err)
	}
	st, err := pool.Submit(testCube(t, 5), core.Options{Granularity: 4})
	if err != nil {
		t.Fatalf("reasonable granularity rejected: %v", err)
	}
	if st, err = pool.Wait(st.ID); err != nil || st.State != StateDone {
		t.Fatalf("granularity-4 job: %v / %+v", err, st)
	}
}

// TestSubmitRejectsBadThreshold pins synchronous rejection of thresholds
// the screening kernel would refuse at run time.
func TestSubmitRejectsBadThreshold(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, thr := range []float64{-1, 4, math.NaN()} {
		if _, err := pool.Submit(testCube(t, 5), core.Options{Threshold: thr}); !errors.Is(err, core.ErrBadOptions) {
			t.Errorf("threshold=%g err = %v", thr, err)
		}
	}
}

// TestResultRetentionWindow pins the composite-retention bound: old
// finished jobs keep scalar results but drop the image.
func TestResultRetentionWindow(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, RetainResults: 1, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := pool.Submit(testCube(t, int64(60+i)), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st, err = pool.Wait(st.ID); err != nil || st.State != StateDone {
			t.Fatalf("job %d: %v %+v", i, err, st)
		}
		ids = append(ids, st.ID)
	}
	// Oldest job: scalar results remain, image gone.
	st, err := pool.Status(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Result == nil || st.Result.UniqueSetSize == 0 {
		t.Fatal("stripped job lost its scalar results")
	}
	if st.Result.Image != nil {
		t.Error("old job still holds its composite image")
	}
	if _, err := pool.ImagePNG(ids[0]); err == nil {
		t.Error("ImagePNG served an aged-out composite")
	}
	// Newest job keeps its image.
	if data, err := pool.ImagePNG(ids[2]); err != nil || len(data) == 0 {
		t.Errorf("recent job image: %v (%d bytes)", err, len(data))
	}
}

// TestSubmitGranularityOverflow pins the overflow guard on the
// decomposition bound.
func TestSubmitGranularityOverflow(t *testing.T) {
	pool, err := NewPool(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	huge := int(^uint(0) >> 1) // max int: Granularity*Workers overflows
	if _, err := pool.Submit(testCube(t, 5), core.Options{Granularity: huge}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("max-int granularity err = %v", err)
	}
}

// TestSubmittedCountsAcceptedOnly pins the counter semantics: rejected
// submissions must not inflate Submitted.
func TestSubmittedCountsAcceptedOnly(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 1, QueueDepth: 1, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	s, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 96, Height: 96, Bands: 24, Seed: 3,
		NoiseSigma: 4, Illumination: 0.1, OpenVehicles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Submit(s.Cube, core.Options{Threshold: 0.02}); err != nil {
		t.Fatal(err)
	}
	accepted, rejected := int64(1), int64(0)
	for i := 0; i < 6; i++ {
		_, err := pool.Submit(testCube(t, int64(70+i)), core.Options{})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.Submitted != accepted || st.Rejected != rejected {
		t.Errorf("stats submitted=%d rejected=%d, want %d/%d", st.Submitted, st.Rejected, accepted, rejected)
	}
}
