package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
	"resilientfusion/internal/store"
	"resilientfusion/internal/telemetry"
)

// This file wires the internal/store durable control plane into the
// pool: a persistent scene catalog next to the spool, a write-ahead job
// journal (with spooled cube inputs) under Config.JournalDir, and the
// disk-spill tier of the result cache. Every client-visible transition
// is journaled with fsync before the acknowledging return, so a process
// that dies at any instant restarts into a state it already promised:
// registered scenes are still registered, queued jobs re-enter the
// queue, running jobs re-run (or resolve straight from the result cache
// when a twin completed first), and job/scene IDs continue from where
// they left off.

// RecoveryReport summarizes what boot recovery rebuilt; fusiond logs it
// once at startup.
type RecoveryReport struct {
	// Scenes survived catalog replay and payload validation; dropped
	// scenes had missing or corrupt spool files.
	Scenes        int
	ScenesDropped int
	// OrphansSwept counts spool files not covered by any catalog record
	// (a crash between spooling and the catalog append, or between a
	// removal record and the unlink).
	OrphansSwept int
	// JobsRequeued re-entered the admission queue; JobsResolved finished
	// immediately from the result cache; JobsFailed could not be rebuilt
	// (missing scene or cube input) and were journaled as failed.
	JobsRequeued int
	JobsResolved int
	JobsFailed   int
	// Torn bytes truncated from the logs' tails (a crash mid-append).
	CatalogTruncatedBytes int64
	JournalTruncatedBytes int64
	// Spill-tier state revalidated at boot.
	SpillEntries int
	SpillBytes   int64
	SpillCorrupt int
}

// String renders the one-line boot log fusiond emits.
func (r *RecoveryReport) String() string {
	return fmt.Sprintf("scenes=%d (dropped %d, orphans swept %d) jobs requeued=%d resolved=%d failed=%d torn bytes catalog=%d journal=%d spill entries=%d bytes=%d (corrupt %d)",
		r.Scenes, r.ScenesDropped, r.OrphansSwept,
		r.JobsRequeued, r.JobsResolved, r.JobsFailed,
		r.CatalogTruncatedBytes, r.JournalTruncatedBytes,
		r.SpillEntries, r.SpillBytes, r.SpillCorrupt)
}

// Recovery returns the boot recovery report, or nil for pools without a
// durable control plane (Config.JournalDir empty).
func (p *Pool) Recovery() *RecoveryReport { return p.recovery }

// openDurable opens the catalog, journal, and spill tier and replays
// the first two into the registry and ID allocators. Called from
// NewPool after the spool directory is resolved and before workers or
// dispatchers exist, so it runs single-threaded; the queue is not live
// yet (recoverJobs re-enqueues later, once dispatchers drain it).
func (p *Pool) openDurable() error {
	if p.cfg.JournalDir == "" && p.cfg.CacheSpillBytes > 0 {
		return errors.New("service: CacheSpillBytes requires JournalDir (the spill lives under it)")
	}
	if p.cfg.JournalDir == "" {
		return nil
	}
	if err := os.MkdirAll(p.cfg.JournalDir, 0o755); err != nil {
		return err
	}
	rep := &RecoveryReport{}

	cat, catRep, err := store.OpenCatalog(filepath.Join(p.spoolDir, "catalog.log"))
	if err != nil {
		return err
	}
	p.catalog = cat
	rep.CatalogTruncatedBytes = catRep.TruncatedBytes
	p.recoverScenes(rep)
	p.sweepSpool(rep)
	// Compaction bounds log growth across restarts and drops records the
	// recovery invalidated. Failure is not fatal: the uncompacted log
	// replays to the same state.
	if err := cat.Compact(); err != nil {
		p.logf("store: catalog compaction: %v", err)
	}

	p.cubesDir = filepath.Join(p.cfg.JournalDir, "cubes")
	if err := os.MkdirAll(p.cubesDir, 0o755); err != nil {
		cat.Close()
		return err
	}
	j, jRep, err := store.OpenJournal(filepath.Join(p.cfg.JournalDir, "journal.log"))
	if err != nil {
		cat.Close()
		return err
	}
	p.journal = j
	rep.JournalTruncatedBytes = jRep.TruncatedBytes
	if err := j.Compact(); err != nil {
		p.logf("store: journal compaction: %v", err)
	}
	// Cube inputs of jobs that reached a terminal record (or whose
	// submit never landed) are dead weight; sweep before requeue so the
	// reference set is exactly the pending submits.
	p.sweepCubes()
	p.mu.Lock()
	if j.MaxNum() > p.nextJob {
		p.nextJob = j.MaxNum()
	}
	p.mu.Unlock()

	if p.cfg.CacheSpillBytes > 0 {
		spill, sRep, err := store.OpenSpill(filepath.Join(p.cfg.JournalDir, "spill"), p.cfg.CacheSpillBytes)
		if err != nil {
			j.Close()
			cat.Close()
			return err
		}
		rep.SpillEntries, rep.SpillBytes, rep.SpillCorrupt = sRep.Entries, sRep.Bytes, sRep.Corrupt
		p.spill = spill
	}
	p.recovery = rep
	return nil
}

// closeStore releases the journal and catalog (nil-safe; spill holds no
// descriptors between operations).
func (p *Pool) closeStore() {
	if p.journal != nil {
		p.journal.Close()
	}
	if p.catalog != nil {
		p.catalog.Close()
	}
}

// recoverScenes replays the catalog's live records into the scene
// registry, re-validating each spooled payload; scenes whose files are
// missing or the wrong size are dropped (and their remnants removed)
// rather than resurrected broken.
func (p *Pool) recoverScenes(rep *RecoveryReport) {
	for _, rec := range p.catalog.Scenes() {
		ent, err := p.rebuildScene(rec)
		if err != nil {
			p.logf("store: dropping scene %s from catalog: %v", rec.ID, err)
			p.catalog.Drop(rec.ID)
			if !rec.External && rec.File != "" {
				path := filepath.Join(p.spoolDir, rec.File)
				os.Remove(path)
				os.Remove(scene.HeaderPath(path))
			}
			rep.ScenesDropped++
			continue
		}
		// Under the pool lock: a caller-supplied metrics registry can be
		// scraped (fusion_scenes_registered) while NewPool still boots.
		p.mu.Lock()
		p.scenes[ent.id] = ent
		p.mu.Unlock()
		rep.Scenes++
	}
	p.mu.Lock()
	if seq := p.catalog.MaxSeq(); seq > p.nextScene {
		p.nextScene = seq
	}
	p.mu.Unlock()
}

// rebuildScene turns one catalog record back into a registry entry,
// re-running the same payload validation registration performs.
func (p *Pool) rebuildScene(rec store.SceneRecord) (*sceneEntry, error) {
	h, err := scene.ParseHeader(rec.Header)
	if err != nil {
		return nil, err
	}
	path := rec.File
	if !rec.External {
		path = filepath.Join(p.spoolDir, rec.File)
	}
	r, err := scene.NewReader(*h, path)
	if err != nil {
		return nil, err
	}
	digest := rec.Digest
	if p.cfg.CacheEntries > 0 && digest == "" {
		// Registered while caching was off: compute now so this scene's
		// fusions share cache entries like a fresh registration would.
		if digest, err = r.Digest(); err != nil {
			r.Close()
			return nil, err
		}
	}
	r.Close()
	return &sceneEntry{
		id:         rec.ID,
		seq:        rec.Seq,
		h:          *h,
		dataPath:   path,
		owned:      !rec.External,
		digest:     digest,
		registered: time.Unix(0, rec.RegisteredUnixNano),
	}, nil
}

// sweepSpool removes pool-spooled scene files the catalog does not
// cover: a crash between spooling and the catalog append, or between a
// removal record and the unlink, leaves exactly these orphans behind.
// Only names the pool itself spools (scene-N.raw and companions) are
// candidates — the catalog log, spill, and cube directories live under
// other names or directories.
func (p *Pool) sweepSpool(rep *RecoveryReport) {
	des, err := os.ReadDir(p.spoolDir)
	if err != nil {
		p.logf("store: spool sweep: %v", err)
		return
	}
	live := make(map[string]bool, 2*len(p.scenes))
	for _, ent := range p.scenes {
		if !ent.owned {
			continue
		}
		live[filepath.Base(ent.dataPath)] = true
		live[filepath.Base(scene.HeaderPath(ent.dataPath))] = true
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "scene-") || live[name] {
			continue
		}
		if err := os.Remove(filepath.Join(p.spoolDir, name)); err == nil {
			rep.OrphansSwept++
		}
	}
}

// sweepCubes removes spooled cube inputs not referenced by any pending
// submit record (their jobs reached a terminal state, or the submit
// append never completed).
func (p *Pool) sweepCubes() {
	refs := make(map[string]bool)
	for _, pj := range p.journal.Pending() {
		if pj.Rec.CubeFile != "" {
			refs[pj.Rec.CubeFile] = true
		}
	}
	des, err := os.ReadDir(p.cubesDir)
	if err != nil {
		p.logf("store: cube sweep: %v", err)
		return
	}
	for _, de := range des {
		if de.IsDir() || refs[de.Name()] {
			continue
		}
		os.Remove(filepath.Join(p.cubesDir, de.Name()))
	}
}

// recoverJobs re-admits every journaled job that owes a run. Called at
// the end of NewPool with dispatchers live: re-enqueues use blocking
// sends (recovery must not re-reject jobs the previous process already
// admitted), and the dispatchers drain as we fill. Jobs whose inputs
// are gone are recreated in the failed state — still queryable by their
// original ID — and journaled as failed so the next restart skips them.
func (p *Pool) recoverJobs() {
	if p.journal == nil {
		return
	}
	for _, pj := range p.journal.Pending() {
		job, err := p.rebuildJob(pj.Rec)
		if err != nil {
			p.logf("store: recovered job %s failed: %v", pj.Rec.ID, err)
			p.failRecovered(pj.Rec, err)
			p.recovery.JobsFailed++
			continue
		}
		p.metrics.recoveredJobs.Inc()
		if p.requeue(job) {
			p.recovery.JobsResolved++
		} else {
			p.recovery.JobsRequeued++
		}
	}
}

// rebuildJob reconstructs a submittable job from its journal record.
// Options go back through canonicalOptions, which is idempotent on the
// recorded canonical form (Workers is pool policy either way), so the
// rebuilt job's result key — and therefore its mosaic — is bit-identical
// to the pre-crash submission.
func (p *Pool) rebuildJob(rec store.JobRecord) (*Job, error) {
	var jo JobOptions
	if len(rec.Options) > 0 {
		if err := json.Unmarshal(rec.Options, &jo); err != nil {
			return nil, fmt.Errorf("journaled options: %w", err)
		}
	}
	opts, err := p.canonicalOptions(jo.coreOptions())
	if err != nil {
		return nil, err
	}
	job := &Job{id: rec.ID, num: rec.Num, opts: opts, digest: rec.Digest}
	switch rec.Kind {
	case store.JobKindScene:
		p.mu.Lock()
		ent := p.scenes[rec.SceneID]
		p.mu.Unlock()
		if ent == nil {
			return nil, fmt.Errorf("%w: %s", ErrUnknownScene, rec.SceneID)
		}
		f, err := os.Open(ent.dataPath)
		if err != nil {
			return nil, err
		}
		job.sceneID, job.sceneHdr, job.sceneFile = ent.id, ent.h, f
		job.tilesTotal = opts.SubCubes(ent.h.Lines)
		if job.digest == "" {
			job.digest = ent.digest
		}
	case store.JobKindCube:
		if rec.CubeFile == "" {
			return nil, errors.New("submit record carries no cube input")
		}
		cube, err := hsi.LoadFile(filepath.Join(p.cubesDir, rec.CubeFile))
		if err != nil {
			return nil, err
		}
		job.cube, job.cubeFile = cube, rec.CubeFile
		if p.cfg.CacheEntries > 0 && job.digest == "" {
			if job.digest, err = cube.Digest(); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unknown job kind %q", rec.Kind)
	}
	return job, nil
}

// requeue re-admits a rebuilt job under its original ID and number,
// reporting whether it resolved immediately from the result cache. It
// mirrors enqueue minus the submit journaling (the submit record is the
// reason the job is here) and minus admission control (already granted,
// pre-crash).
func (p *Pool) requeue(job *Job) (resolved bool) {
	p.mu.Lock()
	job.done = make(chan struct{})
	job.state = StateQueued
	job.submitted = time.Now()
	job.trace = telemetry.NewTraceRecorder(0)
	if job.digest != "" {
		job.key = job.digest + "|" + job.opts.ResultKey()
	}
	p.jobs[job.id] = job
	p.mu.Unlock()
	p.metrics.jobsSubmitted.Inc()
	p.metrics.jobsByAlgorithm.With(job.opts.Algorithm).Inc()
	if job.key != "" {
		if res, ok := p.cache.get(job.key); ok {
			if job.sceneID != "" {
				job.markTilesComplete()
			}
			p.finish(job, res, nil, true)
			return true
		}
	}
	p.queue <- job
	return false
}

// failRecovered registers an unrebuildable journaled job directly in
// the failed state, keeping its ID queryable, and journals the failure
// so the next restart does not retry it.
func (p *Pool) failRecovered(rec store.JobRecord, cause error) {
	job := &Job{
		id:       rec.ID,
		num:      rec.Num,
		cubeFile: rec.CubeFile,
	}
	job.done = make(chan struct{})
	job.state = StateQueued
	job.submitted = time.Now()
	job.trace = telemetry.NewTraceRecorder(0)
	p.mu.Lock()
	p.jobs[job.id] = job
	p.mu.Unlock()
	p.metrics.jobsSubmitted.Inc()
	p.finish(job, nil, fmt.Errorf("service: recovery: %w", cause), false)
}

// journalSubmit persists a job's admission — cube input first, then the
// fsync'd submit record — before any acknowledging return to the
// client. A nil error means the job will survive a crash.
func (p *Pool) journalSubmit(job *Job) error {
	if p.journal == nil {
		return nil
	}
	rec := store.JobRecord{Op: store.JobSubmit, Num: job.num, ID: job.id, Digest: job.digest}
	if job.sceneID != "" {
		rec.Kind, rec.SceneID = store.JobKindScene, job.sceneID
	} else {
		rec.Kind = store.JobKindCube
		name := fmt.Sprintf("job-%d.hsic", job.num)
		if err := p.saveCube(name, job.cube); err != nil {
			return err
		}
		job.cubeFile, rec.CubeFile = name, name
	}
	opts, err := json.Marshal(jobOptions(job.opts))
	if err == nil {
		rec.Options = opts
		err = p.journal.Append(rec)
	}
	if err != nil {
		if job.cubeFile != "" {
			os.Remove(filepath.Join(p.cubesDir, job.cubeFile))
			job.cubeFile = ""
		}
		return err
	}
	p.metrics.journalRecords.Inc()
	return nil
}

// journalStart records that a dispatcher picked the job up, so a crash
// mid-run is distinguishable from one mid-queue (both re-run; the
// report tells operators which was which).
func (p *Pool) journalStart(job *Job) {
	if p.journal == nil {
		return
	}
	if err := p.journal.Append(store.JobRecord{Op: store.JobStart, Num: job.num}); err != nil {
		p.logf("store: journaling start of %s: %v", job.id, err)
		return
	}
	p.metrics.journalRecords.Inc()
}

// journalTerminal records a job's terminal transition and releases its
// spooled cube input. Append failures are logged, not propagated: the
// job's in-memory terminal state stands either way, and the worst case
// is one redundant (idempotent) re-run after the next restart.
func (p *Pool) journalTerminal(job *Job, op, errText string) {
	if p.journal != nil {
		if err := p.journal.Append(store.JobRecord{Op: op, Num: job.num, ID: job.id, Error: errText}); err != nil {
			p.logf("store: journaling %s of %s: %v", op, job.id, err)
		} else {
			p.metrics.journalRecords.Inc()
		}
	}
	if job.cubeFile != "" && p.cubesDir != "" {
		os.Remove(filepath.Join(p.cubesDir, job.cubeFile))
	}
}

// saveCube spools a cube job's input under the journal (tmp, fsync,
// rename — the submit record must never reference a torn file).
func (p *Pool) saveCube(name string, cube *hsi.Cube) error {
	path := filepath.Join(p.cubesDir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := cube.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// catalogAdd persists a scene registration; the caller acks only after
// it returns nil.
func (p *Pool) catalogAdd(ent *sceneEntry) error {
	if p.catalog == nil {
		return nil
	}
	file := ent.dataPath
	if ent.owned {
		file = filepath.Base(ent.dataPath)
	}
	return p.catalog.Add(store.SceneRecord{
		ID:                 ent.id,
		Seq:                ent.seq,
		Header:             ent.h.Marshal(),
		File:               file,
		External:           !ent.owned,
		Digest:             ent.digest,
		RegisteredUnixNano: ent.registered.UnixNano(),
	})
}

// coreOptions lowers the journaled canonical form back onto
// core.Options for re-canonicalization. Workers is deliberately absent:
// the pool's width is policy, not job state.
func (jo JobOptions) coreOptions() core.Options {
	return core.Options{
		Granularity: jo.Granularity,
		Prefetch:    jo.Prefetch,
		Threshold:   jo.Threshold,
		Components:  jo.Components,
		Parallelism: jo.Parallelism,
		Algorithm:   jo.Algorithm,
	}
}
