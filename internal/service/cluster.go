package service

import (
	"sync"

	"resilientfusion/internal/core"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/scene"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/telemetry"
)

// Cluster mode: instead of goroutine workers in the daemon's process,
// the pool listens for fusionworkerd processes and runs each job's
// worker replicas remotely over a scplib.ClusterSystem, with the
// resilient runtime's guardian regenerating replicas lost to killed
// workers. Jobs degrade gracefully: below quorum (fewer connected
// workers than configured) or on any cluster-side failure, the job
// falls back to the in-process pool, whose mosaic is bit-identical.

// ClusterConfig tunes cluster mode. The zero value (and a nil
// Config.Cluster) disables it.
type ClusterConfig struct {
	// Listen is the coordinator's TCP listen address for fusionworkerd
	// connections (default 127.0.0.1:0, an ephemeral localhost port —
	// production deployments set an explicit host:port).
	Listen string
	// Workers is the expected fusionworkerd count. It overrides
	// Config.Workers so cluster and fallback runs decompose scenes
	// identically (bit-identical mosaics, shared cache keys). Default 2.
	Workers int
	// Replication is the replica count per logical worker (default 2).
	Replication int
	// HeartbeatPeriod and FailTimeout tune the guardian's failure
	// detector, in seconds (defaults 0.25 and 1.0). Connection-level
	// liveness (worker pings, severed sockets) merges in on top, so
	// detection of a killed worker is usually much faster than
	// FailTimeout.
	HeartbeatPeriod float64
	FailTimeout     float64
	// ReissueTimeout is the manager's per-request timeout in seconds
	// (default 5): work lost with a killed replica is reissued to the
	// regenerated one after this long.
	ReissueTimeout float64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 0.25
	}
	if c.FailTimeout <= 0 {
		c.FailTimeout = 1.0
	}
	if c.ReissueTimeout <= 0 {
		c.ReissueTimeout = 5.0
	}
	return c
}

// ClusterStats is the cluster section of Stats (null when cluster mode
// is off).
type ClusterStats struct {
	// Addr is the coordinator's resolved listen address.
	Addr string `json:"addr"`
	// Workers is the expected worker count; LiveWorkers is how many are
	// connected right now.
	Workers     int `json:"workers"`
	LiveWorkers int `json:"live_workers"`
	Replication int `json:"replication"`
	// Jobs completed over the cluster; Fallbacks ran on the in-process
	// pool instead (below quorum or after a cluster-side failure).
	Jobs      int64 `json:"jobs"`
	Fallbacks int64 `json:"fallbacks"`
	// Aggregated resilient.Stats across all cluster jobs.
	Detections    int64 `json:"detections"`
	Regenerations int64 `json:"regenerations"`
	ViewChanges   int64 `json:"view_changes"`
}

// clusterState is the pool's cluster-mode machinery. The protocol
// counters live on the pool's telemetry registry — snapshot() reads the
// same atomics the Prometheus exposition renders, so /v2/stats and
// /metrics can never disagree.
type clusterState struct {
	cfg  ClusterConfig
	sys  *scplib.ClusterSystem
	addr string

	jobs          *telemetry.Counter
	fallbacks     *telemetry.Counter
	detections    *telemetry.Counter
	regenerations *telemetry.Counter
	viewChanges   *telemetry.Counter

	mu        sync.Mutex
	rts       []*resilient.Runtime // running cluster jobs' runtimes
	nextBase  scplib.ThreadID
	freeBases []scplib.ThreadID            // finished jobs' bases, reused FIFO
	inUse     map[scplib.ThreadID]struct{} // bases of running jobs
}

// clusterPhysBase0 starts job phys IDs far above any coordinator-local
// IDs; clusterPhysStride gives each job room for its guardian, replicas,
// regenerations, and couriers. Bases stay below clusterPhysMax: courier
// IDs mirror downward from 1<<30, so capping replica ranges at 1<<29
// keeps the two ID spaces disjoint no matter how many jobs have run, and
// the int32 ThreadID never overflows.
const (
	clusterPhysBase0  = scplib.ThreadID(1 << 20)
	clusterPhysStride = scplib.ThreadID(1 << 16)
	clusterPhysMax    = scplib.ThreadID(1 << 29)
)

// newClusterState opens the coordinator listener and wires its transport
// liveness hooks to fan out to every running cluster job. The system
// only starts accepting at Serve below, after every hook (and the
// transport metrics sink) is installed, so the assignments never race
// with peer goroutines reading them.
func newClusterState(cfg ClusterConfig, logf func(format string, args ...any), reg *telemetry.Registry) (*clusterState, error) {
	cfg = cfg.withDefaults()
	sys, err := scplib.NewClusterSystem(cfg.Listen, cfg.Workers)
	if err != nil {
		return nil, err
	}
	sys.LogTo = logf
	sys.Metrics = scplib.NewClusterMetrics(reg)
	cl := &clusterState{
		cfg: cfg, sys: sys,
		addr: sys.Addr(),
		jobs: reg.Counter("fusion_cluster_jobs_total",
			"Jobs completed over the fusionworkerd fleet."),
		fallbacks: reg.Counter("fusion_cluster_fallbacks_total",
			"Jobs degraded to the in-process pool (below quorum or cluster failure)."),
		detections: reg.Counter("fusion_cluster_detections_total",
			"Replica failures detected by cluster jobs' guardians."),
		regenerations: reg.Counter("fusion_cluster_regenerations_total",
			"Replacement replicas regenerated by cluster jobs' guardians."),
		viewChanges: reg.Counter("fusion_cluster_view_changes_total",
			"View reconfigurations broadcast by cluster jobs' guardians."),
		nextBase: clusterPhysBase0,
		inUse:    make(map[scplib.ThreadID]struct{}),
	}
	reg.GaugeFunc("fusion_cluster_live_workers",
		"fusionworkerd processes connected right now.", func() int64 {
			return int64(sys.LiveWorkers())
		})
	sys.OnNodeDown = func(n int) {
		for _, rt := range cl.runtimes() {
			rt.NodeDown(n)
		}
	}
	sys.OnNodeAlive = func(n int) {
		for _, rt := range cl.runtimes() {
			rt.NodeAlive(n)
		}
	}
	sys.OnThreadExit = func(id scplib.ThreadID) {
		for _, rt := range cl.runtimes() {
			rt.ThreadExited(id)
		}
	}
	sys.Serve()
	sys.Start()
	return cl, nil
}

func (cl *clusterState) runtimes() []*resilient.Runtime {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]*resilient.Runtime(nil), cl.rts...)
}

func (cl *clusterState) register(rt *resilient.Runtime) {
	cl.mu.Lock()
	cl.rts = append(cl.rts, rt)
	cl.mu.Unlock()
}

func (cl *clusterState) unregister(rt *resilient.Runtime) {
	cl.mu.Lock()
	for i, r := range cl.rts {
		if r == rt {
			cl.rts = append(cl.rts[:i], cl.rts[i+1:]...)
			break
		}
	}
	cl.mu.Unlock()
}

// allocBase hands each job a physical thread ID range disjoint from
// every other running job's on the shared cluster system. Finished
// jobs' bases are reused oldest-first (FIFO gives straggler threads on
// workers the longest time to drain before their IDs recur), so a
// long-lived daemon's ID space stays bounded; if fresh allocation ever
// reaches clusterPhysMax it wraps, skipping bases still in use.
func (cl *clusterState) allocBase() scplib.ThreadID {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if len(cl.freeBases) > 0 {
		base := cl.freeBases[0]
		cl.freeBases = cl.freeBases[1:]
		cl.inUse[base] = struct{}{}
		return base
	}
	// The scan terminates unless every base in [base0, max) is held by a
	// running job — ~8k concurrent jobs, far beyond what the pool admits.
	for {
		if cl.nextBase+clusterPhysStride > clusterPhysMax {
			cl.nextBase = clusterPhysBase0
		}
		base := cl.nextBase
		cl.nextBase += clusterPhysStride
		if _, busy := cl.inUse[base]; !busy {
			cl.inUse[base] = struct{}{}
			return base
		}
	}
}

// releaseBase returns a finished job's base to the free list.
func (cl *clusterState) releaseBase(base scplib.ThreadID) {
	cl.mu.Lock()
	if _, busy := cl.inUse[base]; busy {
		delete(cl.inUse, base)
		cl.freeBases = append(cl.freeBases, base)
	}
	cl.mu.Unlock()
}

func (cl *clusterState) fallback() {
	cl.fallbacks.Inc()
}

// absorb folds one finished job's resilient stats into the registry
// counters.
func (cl *clusterState) absorb(st resilient.Stats, completed bool) {
	if completed {
		cl.jobs.Inc()
	}
	cl.detections.Add(int64(st.Detections))
	cl.regenerations.Add(int64(st.Regenerations))
	cl.viewChanges.Add(int64(st.ViewChanges))
}

// snapshot builds the /v2/stats cluster section from the registry
// counters (identical to what /metrics scrapes).
func (cl *clusterState) snapshot() *ClusterStats {
	return &ClusterStats{
		Addr:          cl.addr,
		Workers:       cl.cfg.Workers,
		LiveWorkers:   cl.sys.LiveWorkers(),
		Replication:   cl.cfg.Replication,
		Jobs:          cl.jobs.Value(),
		Fallbacks:     cl.fallbacks.Value(),
		Detections:    cl.detections.Value(),
		Regenerations: cl.regenerations.Value(),
		ViewChanges:   cl.viewChanges.Value(),
	}
}

// clusterOptions is the job's canonical options with the cluster's
// resilience knobs applied. None of these fields enter ResultKey, so
// cluster and fallback runs share cache entries — sound because the
// mosaic is bit-identical either way.
func (cl *clusterState) clusterOptions(opts core.Options) core.Options {
	opts.Replication = cl.cfg.Replication
	opts.Regenerate = true
	opts.HeartbeatPeriod = cl.cfg.HeartbeatPeriod
	opts.FailTimeout = cl.cfg.FailTimeout
	opts.RequestTimeout = cl.cfg.ReissueTimeout
	return opts
}

// runJobCluster tries to run one job over the connected fusionworkerd
// fleet. It reports whether the job reached a terminal state here; false
// means the caller should run it on the in-process pool instead (below
// quorum, spawn failure, or a mid-run cluster failure the guardian could
// not absorb).
func (p *Pool) runJobCluster(job *Job) bool {
	cl := p.cluster
	if live := cl.sys.LiveWorkers(); live < cl.cfg.Workers {
		p.logf("cluster: %d/%d workers live — job %s degrades to in-process pool",
			live, cl.cfg.Workers, job.id)
		cl.fallback()
		return false
	}
	opts := cl.clusterOptions(job.opts)
	// Trace rides in this copy only; job.opts and its ResultKey stay
	// trace-free (see runJob).
	opts.Trace = job.trace

	var src core.CubeSource
	if job.sceneID != "" {
		rdr, err := scene.NewReaderFrom(job.sceneHdr, job.sceneFile)
		if err != nil {
			// Not a cluster failure: the spool is unreadable, and the
			// fallback path would fail the same way.
			p.finish(job, nil, err, false)
			return true
		}
		tiler := scene.NewPrefetchTiler(scene.NewTiler(rdr), opts.TileRanges(job.sceneHdr.Lines))
		tiler.OnRead = p.metrics.sceneTileRead
		defer tiler.Drain()
		src = &sceneSource{tiler: tiler, job: job}
	} else {
		src = core.MemSource(job.cube)
	}

	base := cl.allocBase()
	defer cl.releaseBase(base)
	rj, err := core.StartJob(cl.sys, src, opts, base)
	if err != nil {
		p.logf("cluster: job %s failed to start (%v) — degrading to in-process pool", job.id, err)
		cl.fallback()
		return false
	}
	rt := rj.Runtime()
	cl.register(rt)
	// Close the registration gap: a worker that died while StartJob was
	// spawning fired OnNodeDown before this runtime existed. Seed the
	// runtime with the fleet's current liveness so such losses expire at
	// the guardian's next poll instead of waiting out FailTimeout.
	live := make(map[int]bool, cl.cfg.Workers)
	for _, n := range cl.sys.LiveNodes() {
		live[n] = true
	}
	for n := 1; n <= cl.cfg.Workers; n++ {
		if !live[n] {
			rt.NodeDown(n)
		}
	}
	res, err := rj.Wait()
	cl.unregister(rt)
	cl.absorb(rt.Stats(), err == nil)
	if err != nil {
		p.logf("cluster: job %s failed mid-run (%v) — degrading to in-process pool", job.id, err)
		cl.fallback()
		return false
	}
	if job.key != "" {
		p.cache.put(job.key, res)
	}
	p.finish(job, res, nil, false)
	return true
}
