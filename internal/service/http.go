package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/telemetry"
)

// maxCubeBytes bounds an uploaded cube (512 MiB of HSIC). A variable so
// tests can exercise the limit without half-gigabyte uploads.
var maxCubeBytes int64 = 512 << 20

// jobJSON is the wire form of a JobStatus — the job resource shared by
// both API versions (v2 serves the same shape; only error transport
// differs).
type jobJSON struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	SceneID  string   `json:"scene_id,omitempty"`
	CacheHit bool     `json:"cache_hit"`
	Error    string   `json:"error,omitempty"`
	// Options echoes the canonical options the job ran with, defaults
	// filled in, so clients see the knobs their submission resolved to.
	Options  *JobOptions   `json:"options,omitempty"`
	Progress *TileProgress `json:"progress,omitempty"`
	// Trace summarizes recorded stage spans (count, summed seconds); the
	// full timeline is GET /v2/jobs/{id}/trace.
	Trace     map[string]telemetry.StageSummary `json:"trace,omitempty"`
	Submitted time.Time                         `json:"submitted"`
	Started   *time.Time                        `json:"started,omitempty"`
	Finished  *time.Time                        `json:"finished,omitempty"`
	Result    *resultJSON                       `json:"result,omitempty"`
}

// resultJSON summarizes a core.Result for clients. The composite image
// travels as base64 PNG only when requested (?image=1): it dominates the
// response size.
type resultJSON struct {
	UniqueSetSize int             `json:"unique_set_size"`
	SubCubes      int             `json:"sub_cubes"`
	Reissues      int             `json:"reissues"`
	CacheMisses   int             `json:"cache_misses"`
	Eigenvalues   []float64       `json:"eigenvalues"`
	PhaseTimes    core.PhaseTimes `json:"phase_times"`
	ImagePNG      string          `json:"image_png,omitempty"`
}

func statusJSON(st JobStatus) *jobJSON {
	out := &jobJSON{
		ID:        st.ID,
		State:     st.State,
		SceneID:   st.SceneID,
		CacheHit:  st.CacheHit,
		Progress:  st.Progress,
		Trace:     st.Trace,
		Submitted: st.Submitted,
	}
	if st.Err != nil {
		out.Error = st.Err.Error()
	}
	if st.Options.Workers > 0 {
		out.Options = jobOptions(st.Options)
	}
	if !st.Started.IsZero() {
		t := st.Started
		out.Started = &t
	}
	if !st.Finished.IsZero() {
		t := st.Finished
		out.Finished = &t
	}
	if st.Result != nil {
		out.Result = &resultJSON{
			UniqueSetSize: st.Result.UniqueSetSize,
			SubCubes:      st.Result.SubCubes,
			Reissues:      st.Result.Reissues,
			CacheMisses:   st.Result.CacheMisses,
			Eigenvalues:   st.Result.Eigenvalues,
			PhaseTimes:    st.Result.Times,
		}
	}
	return out
}

// queryKeys validates a query against the allowed keys — unknown and
// duplicated keys are rejected rather than ignored (a typo like
// granularty=8 must fail loudly, not silently run the defaults) — and
// the keys come back sorted, so multi-error requests fail on a
// deterministic key. Shared by v1's option parsing and the v2 handlers.
func queryKeys(q map[string][]string, allowed ...string) ([]string, error) {
	keys := make([]string, 0, len(q))
	for key := range q {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if len(q[key]) > 1 {
			return nil, fmt.Errorf("option %q given %d times", key, len(q[key]))
		}
		if !slices.Contains(allowed, key) {
			return nil, fmt.Errorf("unknown option %q (valid: %s)", key, strings.Join(allowed, ", "))
		}
	}
	return keys, nil
}

// optionsFromQuery builds per-job options from request query parameters
// by filling the same OptionsJSON form the v2 JSON bodies decode into,
// so both surfaces canonicalize through identical validation. The pool
// fixes Workers; clients tune the algorithm knobs. A present-but-empty
// value ("granularity=") is a bad value, not an absent knob: it fails
// the parse below.
func optionsFromQuery(r *http.Request) (core.Options, error) {
	var oj OptionsJSON
	q := r.URL.Query()
	intKnobs := map[string]**int{
		"granularity": &oj.Granularity,
		"prefetch":    &oj.Prefetch,
		"components":  &oj.Components,
		"parallelism": &oj.Parallelism,
	}
	keys, err := queryKeys(q, "algorithm", "components", "granularity", "parallelism", "prefetch", "threshold")
	if err != nil {
		return core.Options{}, err
	}
	for _, key := range keys {
		s := q.Get(key)
		if field, ok := intKnobs[key]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return core.Options{}, fmt.Errorf("bad %s %q", key, s)
			}
			*field = &v
			continue
		}
		if key == "algorithm" {
			v := s
			oj.Algorithm = &v
			continue
		}
		// threshold is the only non-int knob. NaN/Inf are re-checked in
		// OptionsJSON.Options, but rejecting them here keeps the v1
		// error string quoting the client's raw input, byte-identical
		// to the historical parser.
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return core.Options{}, fmt.Errorf("bad threshold %q", s)
		}
		oj.Threshold = &v
	}
	return oj.Options()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Handler exposes the pool as an HTTP API:
//
//	POST /v1/jobs        submit an HSIC-encoded cube (body) with options
//	                     in query params (granularity, prefetch,
//	                     threshold, components, parallelism) →
//	                     202 {id, state}
//	GET  /v1/jobs/{id}   job status/result (?image=1 adds base64 PNG)
//	GET  /v1/stats       queue depth, cache hit rate, throughput
//	GET  /metrics        Prometheus text exposition of the pool registry
//
// Scene endpoints (whole-scene streaming fusion):
//
//	POST   /v1/scenes               register an ENVI scene: multipart
//	                                form with a "header" part (ENVI .hdr
//	                                text, first) and a "data" part (raw
//	                                payload in the header's interleave);
//	                                the payload spools to disk, never to
//	                                memory → 201 scene info
//	GET    /v1/scenes               list registered scenes
//	GET    /v1/scenes/{id}          scene info
//	DELETE /v1/scenes/{id}          unregister + delete the spool
//	POST   /v1/scenes/{id}/fuse     fuse the whole scene through the
//	                                worker pool (same option params as
//	                                /v1/jobs) → 202 job with per-tile
//	                                progress; poll GET /v1/jobs/{id}
//	GET    /v1/scenes/{id}/result   composite of the latest completed
//	                                fusion as image/png
//
// The same handler also serves the v2 resource API — JSON option bodies,
// structured error envelope, job listing, long-poll, content-negotiated
// results — see registerV2 in http_v2.go.
func (p *Pool) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		opts, err := optionsFromQuery(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// ReadCubeLimit bounds the upload by the header's claimed
		// dimensions before allocating (a 20-byte request must not
		// demand a terabyte) and then reads exactly the claimed bytes,
		// so no separate body cap is needed.
		cube, err := hsi.ReadCubeLimit(r.Body, maxCubeBytes)
		if err != nil {
			if errors.Is(err, hsi.ErrCubeTooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("cube exceeds the %d-byte upload limit", maxCubeBytes))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding cube: %w", err))
			return
		}
		st, err := p.Submit(cube, opts)
		switch {
		case errors.Is(err, ErrQueueFull):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, statusJSON(st))
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := p.Status(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrUnknownJob):
			writeError(w, http.StatusNotFound, err)
			return
		case err != nil:
			// Any other Status failure must not serialize a zero-value
			// snapshot as a healthy 200.
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		body := statusJSON(st)
		if r.URL.Query().Get("image") == "1" && body.Result != nil && st.State == StateDone {
			b64, err := p.ImagePNGBase64(st.ID)
			switch {
			case errors.Is(err, ErrImageExpired):
				writeError(w, http.StatusGone, err)
				return
			case err != nil:
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			body.Result.ImagePNG = b64
		}
		writeJSON(w, http.StatusOK, body)
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Stats())
	})

	mux.HandleFunc("POST /v1/scenes", func(w http.ResponseWriter, r *http.Request) {
		info, err := p.sceneFromMultipart(r)
		switch {
		case errors.Is(err, ErrSceneTooLarge):
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		case errors.Is(err, ErrSceneLimit):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /v1/scenes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"scenes": p.Scenes()})
	})

	mux.HandleFunc("GET /v1/scenes/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := p.Scene(r.PathValue("id"))
		if errors.Is(err, ErrUnknownScene) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("DELETE /v1/scenes/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := p.RemoveScene(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/scenes/{id}/fuse", func(w http.ResponseWriter, r *http.Request) {
		opts, err := optionsFromQuery(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st, err := p.FuseScene(r.PathValue("id"), opts)
		switch {
		case errors.Is(err, ErrUnknownScene):
			writeError(w, http.StatusNotFound, err)
			return
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, statusJSON(st))
	})

	mux.HandleFunc("GET /v1/scenes/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		data, err := p.SceneResultPNG(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrUnknownScene), errors.Is(err, ErrNoSceneResult), errors.Is(err, ErrUnknownJob):
			writeError(w, http.StatusNotFound, err)
			return
		case errors.Is(err, ErrImageExpired):
			writeError(w, http.StatusGone, err)
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "image/png")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	})

	mux.Handle("GET /metrics", p.metrics.reg.Handler())

	p.registerV2(mux)
	// Every route (both API versions, /metrics itself) reports into the
	// route×status latency histogram.
	return p.httpMiddleware(mux)
}

// uploadFormatError marks a malformed multipart upload — client-caused,
// distinct from server-side registration failures. Error() is the bare
// message, so v1's bare-string error responses are byte-identical to
// the historical inline handler; v2 classifies it as bad_payload.
type uploadFormatError struct{ msg string }

func (e *uploadFormatError) Error() string { return e.msg }

// sceneFromMultipart parses the two-part scene upload — a "header" part
// of ENVI header text, then a "data" part streaming the raw payload —
// and registers it. The header part is read fully (it is a page of
// text); the data part flows straight to the spool. Framing failures
// come back as *uploadFormatError; everything else is RegisterScene's
// error surface.
func (p *Pool) sceneFromMultipart(r *http.Request) (SceneInfo, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return SceneInfo{}, &uploadFormatError{msg: fmt.Sprintf("multipart body required: %v", err)}
	}
	hdrPart, err := mr.NextPart()
	if err != nil || hdrPart.FormName() != "header" {
		return SceneInfo{}, &uploadFormatError{msg: `first multipart part must be "header" (ENVI header text)`}
	}
	// An ENVI header is a page of text; 1 MiB is generous.
	hdrText, err := io.ReadAll(io.LimitReader(hdrPart, 1<<20))
	if err != nil {
		return SceneInfo{}, &uploadFormatError{msg: fmt.Sprintf("reading header part: %v", err)}
	}
	dataPart, err := mr.NextPart()
	if err != nil || dataPart.FormName() != "data" {
		return SceneInfo{}, &uploadFormatError{msg: `second multipart part must be "data" (raw scene payload)`}
	}
	return p.RegisterScene(string(hdrText), dataPart)
}
