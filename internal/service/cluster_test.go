package service

import (
	"testing"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/scplib"
)

// workerdRegistry is the thread-body registry a fusionworkerd process
// installs (mirrors cmd/fusionworkerd).
func workerdRegistry() *scplib.BodyRegistry {
	inner := resilient.NewBodyRegistry()
	core.RegisterWorkerBodies(inner)
	reg := scplib.NewBodyRegistry()
	resilient.RegisterWrapperBody(reg, inner)
	return reg
}

// startClusterPool builds a cluster-mode pool and dials workers
// fusionworkerd-style (real sockets, in this process).
func startClusterPool(t *testing.T, ccfg ClusterConfig, workers int) (*Pool, []*scplib.ClusterWorker) {
	t.Helper()
	pool, err := NewPool(Config{MaxConcurrent: 2, CacheEntries: -1, Cluster: &ccfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	addr := pool.Stats().Cluster.Addr
	ws := make([]*scplib.ClusterWorker, workers)
	for i := range ws {
		w, err := scplib.DialCluster(addr, 2*time.Second, workerdRegistry())
		if err != nil {
			t.Fatal(err)
		}
		go w.Run()
		t.Cleanup(w.Shutdown)
		ws[i] = w
	}
	deadline := time.Now().Add(2 * time.Second)
	for pool.cluster.sys.LiveWorkers() < workers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers connected", pool.cluster.sys.LiveWorkers(), workers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return pool, ws
}

// TestClusterBaseRecycling checks that finished jobs' phys-ID bases are
// reused and that fresh allocation wraps below clusterPhysMax without
// handing out a running job's base — the disjoint-ID guarantee must hold
// in a daemon that serves jobs indefinitely.
func TestClusterBaseRecycling(t *testing.T) {
	cl := &clusterState{nextBase: clusterPhysBase0, inUse: make(map[scplib.ThreadID]struct{})}
	a, b := cl.allocBase(), cl.allocBase()
	if a == b {
		t.Fatalf("allocBase handed out %d twice", a)
	}
	cl.releaseBase(a)
	c := cl.allocBase()
	if c != a {
		t.Fatalf("freed base %d not reused, got %d", a, c)
	}
	// Near the cap, fresh allocation wraps and skips running jobs' bases.
	cl.nextBase = clusterPhysMax
	d := cl.allocBase()
	if d+clusterPhysStride > clusterPhysMax {
		t.Fatalf("allocation crossed clusterPhysMax: %d", d)
	}
	if d == b || d == c {
		t.Fatalf("wrapped allocation reused running job's base %d", d)
	}
}

func fastClusterConfig(workers int) ClusterConfig {
	return ClusterConfig{
		Workers: workers, Replication: 2,
		HeartbeatPeriod: 0.05, FailTimeout: 0.4, ReissueTimeout: 2,
	}
}

// TestClusterPoolMatchesInProcess submits the same cube to a cluster
// pool and a plain pool and requires bit-identical composites — the
// property that makes silent degradation sound.
func TestClusterPoolMatchesInProcess(t *testing.T) {
	const workers = 2
	cube := testCube(t, 77)
	opts := core.Options{Threshold: 0.05, Granularity: 2}

	plain, err := NewPool(Config{Workers: workers, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	st, err := plain.Submit(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Wait(st.ID)
	if err != nil || want.State != StateDone {
		t.Fatalf("plain pool: %v %+v", err, want.Err)
	}

	pool, _ := startClusterPool(t, fastClusterConfig(workers), workers)
	st, err = pool.Submit(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Wait(st.ID)
	if err != nil || got.State != StateDone {
		t.Fatalf("cluster pool: %v %+v", err, got.Err)
	}
	sameResult(t, got.Result, want.Result, "cluster vs in-process")

	cs := pool.Stats().Cluster
	if cs == nil || cs.Jobs != 1 || cs.Fallbacks != 0 {
		t.Fatalf("cluster stats: %+v", cs)
	}
	if cs.Workers != workers || cs.LiveWorkers != workers {
		t.Fatalf("cluster worker counts: %+v", cs)
	}
}

// TestClusterPoolFallsBackBelowQuorum submits against a cluster pool
// with no connected workers: the job must complete on the in-process
// pool, with the degradation counted.
func TestClusterPoolFallsBackBelowQuorum(t *testing.T) {
	pool, _ := startClusterPool(t, fastClusterConfig(2), 0)
	cube := testCube(t, 78)
	st, err := pool.Submit(cube, core.Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Wait(st.ID)
	if err != nil || got.State != StateDone {
		t.Fatalf("degraded job: %v %+v", err, got.Err)
	}
	ref, err := core.Sequential(cube, core.Options{Workers: 2, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got.Result, ref, "fallback vs sequential")
	cs := pool.Stats().Cluster
	if cs == nil || cs.Jobs != 0 || cs.Fallbacks != 1 {
		t.Fatalf("cluster stats after fallback: %+v", cs)
	}
}

// TestClusterPoolSurvivesWorkerLoss severs one worker process while the
// cluster is idle, then submits: with the fleet below quorum the job
// degrades; after the worker re-dials, jobs run on the cluster again.
func TestClusterPoolSurvivesWorkerLoss(t *testing.T) {
	const workers = 2
	pool, ws := startClusterPool(t, fastClusterConfig(workers), workers)
	addr := pool.Stats().Cluster.Addr

	ws[0].Shutdown()
	deadline := time.Now().Add(2 * time.Second)
	for pool.cluster.sys.LiveWorkers() != workers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker loss not observed: %d live", pool.cluster.sys.LiveWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, err := pool.Submit(testCube(t, 79), core.Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := pool.Wait(st.ID); err != nil || got.State != StateDone {
		t.Fatalf("below-quorum job: %v %+v", err, got.Err)
	}
	if cs := pool.Stats().Cluster; cs.Fallbacks != 1 {
		t.Fatalf("expected one fallback, got %+v", cs)
	}

	// Reconnect (fusionworkerd's re-dial loop does exactly this) and the
	// next job runs remotely.
	w, err := scplib.DialCluster(addr, 2*time.Second, workerdRegistry())
	if err != nil {
		t.Fatal(err)
	}
	go w.Run()
	t.Cleanup(w.Shutdown)
	deadline = time.Now().Add(2 * time.Second)
	for pool.cluster.sys.LiveWorkers() != workers {
		if time.Now().After(deadline) {
			t.Fatalf("reconnect not observed: %d live", pool.cluster.sys.LiveWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, err = pool.Submit(testCube(t, 80), core.Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := pool.Wait(st.ID); err != nil || got.State != StateDone {
		t.Fatalf("post-reconnect job: %v %+v", err, got.Err)
	}
	if cs := pool.Stats().Cluster; cs.Jobs != 1 {
		t.Fatalf("post-reconnect job did not run on the cluster: %+v", cs)
	}
}
