package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"resilientfusion/internal/core"
	"resilientfusion/internal/scene"
	"resilientfusion/internal/store"
)

// durableConfig is the base configuration the durability tests share:
// persistent spool + journal under dir, small but real pool.
func durableConfig(dir string) Config {
	return Config{
		Workers:       2,
		MaxConcurrent: 2,
		SpoolDir:      filepath.Join(dir, "spool"),
		JournalDir:    filepath.Join(dir, "journal"),
		CacheEntries:  4,
	}
}

// TestPoolDurableRestart is the unit-level restart story: scenes
// registered before a shutdown are listable after, journaled pending
// jobs re-run to bit-identical results under their original IDs, and
// ID allocation continues past the pre-restart high-water mark.
func TestPoolDurableRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	opts := core.Options{Threshold: 0.05}

	pool1, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sceneCube := testCube(t, 41)
	hdr, data := enviPayload(t, sceneCube, scene.BSQ)
	info, err := pool1.RegisterScene(hdr, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sceneRef, err := pool1.FuseScene(info.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	sceneRef, err = pool1.Wait(sceneRef.ID)
	if err != nil || sceneRef.State != StateDone {
		t.Fatalf("scene reference run: %+v err=%v", sceneRef.State, err)
	}
	cube := testCube(t, 42)
	cubeRef, err := pool1.Submit(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	cubeRef, err = pool1.Wait(cubeRef.ID)
	if err != nil || cubeRef.State != StateDone {
		t.Fatalf("cube reference run: %+v err=%v", cubeRef.State, err)
	}
	if err := pool1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash that left two admitted jobs behind: append their
	// submit records (and spool the cube input) exactly as the admission
	// path would have, with no terminal records.
	cubesDir := filepath.Join(cfg.JournalDir, "cubes")
	if err := cube.SaveFile(filepath.Join(cubesDir, "job-3.hsic")); err != nil {
		t.Fatal(err)
	}
	optJSON, err := json.Marshal(JobOptions{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := store.OpenJournal(filepath.Join(cfg.JournalDir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []store.JobRecord{
		{Op: store.JobSubmit, Num: 3, ID: "job-3", Kind: store.JobKindCube, CubeFile: "job-3.hsic", Options: optJSON},
		{Op: store.JobSubmit, Num: 4, ID: "job-4", Kind: store.JobKindScene, SceneID: info.ID, Options: optJSON},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	pool2, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	scenes := pool2.Scenes()
	if len(scenes) != 1 || scenes[0].ID != info.ID {
		t.Fatalf("scenes after restart: %+v", scenes)
	}
	if scenes[0].Digest != info.Digest {
		t.Fatalf("scene digest changed across restart: %q -> %q", info.Digest, scenes[0].Digest)
	}
	rep := pool2.Recovery()
	if rep == nil || rep.Scenes != 1 || rep.JobsRequeued != 2 || rep.JobsFailed != 0 {
		t.Fatalf("recovery report %+v", rep)
	}

	st3, err := pool2.Wait("job-3")
	if err != nil || st3.State != StateDone {
		t.Fatalf("recovered cube job: state=%v err=%v (jobErr=%v)", st3.State, err, st3.Err)
	}
	sameResult(t, st3.Result, cubeRef.Result, "recovered cube job")
	st4, err := pool2.Wait("job-4")
	if err != nil || st4.State != StateDone {
		t.Fatalf("recovered scene job: state=%v err=%v (jobErr=%v)", st4.State, err, st4.Err)
	}
	sameResult(t, st4.Result, sceneRef.Result, "recovered scene job")
	if st3.Options.Workers != cfg.Workers {
		t.Fatalf("recovered job ran with %d workers, want pool width %d", st3.Options.Workers, cfg.Workers)
	}

	// IDs continue past the journal's high-water mark.
	st5, err := pool2.Submit(testCube(t, 43), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st5.ID != "job-5" {
		t.Fatalf("post-restart job ID = %s, want job-5 (no reuse of 1..4)", st5.ID)
	}
	if _, err := pool2.Wait(st5.ID); err != nil {
		t.Fatal(err)
	}
	if s := pool2.Stats(); s.Store == nil || s.Store.RecoveredJobs != 2 || s.Store.JournalRecords == 0 {
		t.Fatalf("store stats after recovery: %+v", s.Store)
	}
}

// TestPoolDurableRemovedSceneStaysRemoved: a removal recorded before
// shutdown must not resurrect, and a journaled job referencing the
// removed scene recovers as failed (queryable, journaled terminal).
func TestPoolDurableRemovedSceneStaysRemoved(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	pool1, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hdr, data := enviPayload(t, testCube(t, 51), scene.BIL)
	info, err := pool1.RegisterScene(hdr, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := pool1.RemoveScene(info.ID); err != nil {
		t.Fatal(err)
	}
	if err := pool1.Close(); err != nil {
		t.Fatal(err)
	}

	optJSON, _ := json.Marshal(JobOptions{Threshold: 0.05})
	j, _, err := store.OpenJournal(filepath.Join(cfg.JournalDir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(store.JobRecord{Op: store.JobSubmit, Num: 7, ID: "job-7", Kind: store.JobKindScene, SceneID: info.ID, Options: optJSON}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	pool2, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if scenes := pool2.Scenes(); len(scenes) != 0 {
		t.Fatalf("removed scene resurrected: %+v", scenes)
	}
	st, err := pool2.Wait("job-7")
	if err != nil || st.State != StateFailed {
		t.Fatalf("job against removed scene: state=%v err=%v", st.State, err)
	}
	if !errors.Is(st.Err, ErrUnknownScene) {
		t.Fatalf("failure cause = %v, want ErrUnknownScene", st.Err)
	}
	if rep := pool2.Recovery(); rep.JobsFailed != 1 {
		t.Fatalf("recovery report %+v", rep)
	}

	// The failure was journaled: a third boot does not retry it.
	pool2.Close()
	pool3, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool3.Close()
	if rep := pool3.Recovery(); rep.JobsFailed != 0 || rep.JobsRequeued != 0 {
		t.Fatalf("third boot retried the dead job: %+v", rep)
	}
}

// TestRemoveSceneRecordsBeforeUnlink pins the record-then-unlink order:
// when the removal record cannot be persisted, RemoveScene must fail
// WITHOUT touching the spool files or the registry. (The reverse order
// would pass this test only by having already deleted the payload —
// the restart hazard this ordering exists to prevent.)
func TestRemoveSceneRecordsBeforeUnlink(t *testing.T) {
	dir := t.TempDir()
	pool, err := NewPool(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	hdr, data := enviPayload(t, testCube(t, 61), scene.BIP)
	info, err := pool.RegisterScene(hdr, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(pool.spoolDir, info.ID+".raw")
	if _, err := os.Stat(dataPath); err != nil {
		t.Fatalf("spooled payload missing before the test even starts: %v", err)
	}

	// Force the append to fail: close the catalog's log out from under
	// the pool. Every subsequent record write errors.
	pool.catalog.Close()
	if err := pool.RemoveScene(info.ID); err == nil {
		t.Fatal("RemoveScene succeeded with an unwritable catalog")
	}
	if _, err := os.Stat(dataPath); err != nil {
		t.Fatal("spool file unlinked although the removal was never recorded")
	}
	if _, err := pool.Scene(info.ID); err != nil {
		t.Fatal("scene deregistered although the removal was never recorded")
	}
}

// TestPoolCacheSpillRestart: entries evicted from the RAM cache spill
// to disk, serve later lookups as cache hits, and survive a restart.
func TestPoolCacheSpillRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.CacheEntries = 1 // second result evicts the first → spill
	cfg.CacheSpillBytes = 64 << 20
	opts := core.Options{Threshold: 0.05}

	pool1, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cubeA, cubeB := testCube(t, 71), testCube(t, 72)
	refA, err := pool1.Submit(cubeA, opts)
	if err != nil {
		t.Fatal(err)
	}
	if refA, err = pool1.Wait(refA.ID); err != nil || refA.State != StateDone {
		t.Fatalf("job A: %v %v", refA.State, err)
	}
	stB, err := pool1.Submit(cubeB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool1.Wait(stB.ID); err != nil {
		t.Fatal(err)
	}
	// A was evicted to disk; resubmitting it is a cache hit served from
	// the spill tier.
	hitA, err := pool1.Submit(cubeA, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hitA, err = pool1.Wait(hitA.ID); err != nil || !hitA.CacheHit {
		t.Fatalf("spilled entry not served: cacheHit=%v err=%v", hitA.CacheHit, err)
	}
	sameResult(t, hitA.Result, refA.Result, "spill hit")
	if s := pool1.Stats(); s.Store == nil || s.Store.SpillHits < 1 || s.Store.SpilledBytes <= 0 {
		t.Fatalf("spill stats: %+v", s.Store)
	}
	pool1.Close()

	// The spill outlives the process: a fresh pool with a cold RAM cache
	// still serves the entry from disk.
	pool2, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if rep := pool2.Recovery(); rep.SpillEntries < 1 {
		t.Fatalf("boot spill scan: %+v", rep)
	}
	again, err := pool2.Submit(cubeA, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again, err = pool2.Wait(again.ID); err != nil || !again.CacheHit {
		t.Fatalf("post-restart spill hit: cacheHit=%v err=%v", again.CacheHit, err)
	}
	sameResult(t, again.Result, refA.Result, "post-restart spill hit")
}

// TestPoolDurableOrphanSweep: spool files with no catalog record — the
// residue of a crash between spooling and the catalog append — are
// collected at boot.
func TestPoolDurableOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	pool1, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool1.Close()
	orphan := filepath.Join(cfg.SpoolDir, "scene-9.raw")
	if err := os.WriteFile(orphan, []byte("torn upload"), 0o644); err != nil {
		t.Fatal(err)
	}
	pool2, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned spool file survived the boot sweep")
	}
	if rep := pool2.Recovery(); rep.OrphansSwept != 1 {
		t.Fatalf("recovery report %+v", rep)
	}
}
