package service

import (
	"net/http"
	"strconv"
	"time"

	"resilientfusion/internal/telemetry"
)

// poolMetrics holds every service-layer instrument on one registry. The
// counters are the pool's single source of truth — Stats() and the
// Prometheus exposition read the same atomics, so the two surfaces can
// never disagree. Gauges over mu-guarded state (running jobs, queue
// depth, cache entries) are registered as GaugeFuncs that read the live
// structures at scrape time.
type poolMetrics struct {
	reg *telemetry.Registry

	jobsSubmitted   *telemetry.Counter
	jobsCompleted   *telemetry.Counter
	jobsFailed      *telemetry.Counter
	jobsRejected    *telemetry.Counter
	jobsCanceled    *telemetry.Counter
	jobsDuration    *telemetry.Histogram
	jobsByAlgorithm *telemetry.CounterVec
	longpollParks   *telemetry.Counter

	cacheHits        *telemetry.Counter
	cacheMisses      *telemetry.Counter
	cacheEvictions   *telemetry.Counter
	cacheSpillHits   *telemetry.Counter
	cacheSpillMisses *telemetry.Counter

	journalRecords *telemetry.Counter
	recoveredJobs  *telemetry.Counter

	sceneTilesRead    *telemetry.Counter
	scenePrefetchHits *telemetry.Counter
	sceneSpoolBytes   *telemetry.Counter

	httpDuration *telemetry.HistogramVec

	// Pre-resolved per-stage children so the pooled workers' hot message
	// loop pays one atomic histogram observe, not a vec lookup.
	stageScreen     *telemetry.Histogram
	stageCovariance *telemetry.Histogram
	stageTransform  *telemetry.Histogram
	stageFuse       *telemetry.Histogram
}

// stageBuckets resolve worker kernel invocations from sub-millisecond
// screens of tiny tiles up to multi-second statistics passes.
var stageBuckets = []float64{.0001, .0005, .001, .005, .01, .05, .1, .5, 1, 5}

// newPoolMetrics registers the service instruments on reg. The GaugeFunc
// closures capture p before NewPool finishes wiring it (p.cache and the
// queue may still be nil); that is safe because nothing can scrape the
// registry until NewPool has returned it.
func newPoolMetrics(reg *telemetry.Registry, p *Pool) *poolMetrics {
	m := &poolMetrics{
		reg: reg,
		jobsSubmitted: reg.Counter("fusion_jobs_submitted_total",
			"Jobs admitted to the pool (cache fast-path included)."),
		jobsCompleted: reg.Counter("fusion_jobs_completed_total",
			"Jobs finished successfully."),
		jobsFailed: reg.Counter("fusion_jobs_failed_total",
			"Jobs that reached the failed state."),
		jobsRejected: reg.Counter("fusion_jobs_rejected_total",
			"Submissions refused by admission control (queue full)."),
		jobsCanceled: reg.Counter("fusion_jobs_canceled_total",
			"Queued jobs withdrawn by DELETE /v2/jobs/{id} before running."),
		jobsDuration: reg.Histogram("fusion_jobs_duration_seconds",
			"End-to-end job latency, submission to terminal state (cache hits excluded).",
			telemetry.DefBuckets),
		jobsByAlgorithm: reg.CounterVec("fusion_jobs_by_algorithm_total",
			"Jobs admitted to the pool by fusion algorithm (cache fast-path included).",
			"algorithm"),
		longpollParks: reg.Counter("fusion_longpoll_parks_total",
			"Long-poll requests that parked waiting for a non-terminal job."),
		cacheHits: reg.Counter("fusion_cache_hits_total",
			"Result-cache lookups served without recomputation."),
		cacheMisses: reg.Counter("fusion_cache_misses_total",
			"Result-cache lookups that required a fusion run."),
		cacheEvictions: reg.Counter("fusion_cache_evictions_total",
			"Result-cache entries evicted by the LRU capacity bound."),
		cacheSpillHits: reg.Counter("fusion_cache_spill_hits_total",
			"RAM-missed cache lookups served from the disk-spill tier."),
		cacheSpillMisses: reg.Counter("fusion_cache_spill_misses_total",
			"RAM-missed cache lookups the disk-spill tier could not serve."),
		journalRecords: reg.Counter("fusion_store_journal_records_total",
			"Lifecycle records appended (and fsync'd) to the job journal."),
		recoveredJobs: reg.Counter("fusion_store_recovered_jobs_total",
			"Journaled jobs re-admitted at boot (requeued or cache-resolved)."),
		sceneTilesRead: reg.Counter("fusion_scene_tiles_read_total",
			"Row tiles pulled from spooled scenes by job managers."),
		scenePrefetchHits: reg.Counter("fusion_scene_prefetch_hits_total",
			"Tile reads satisfied by the in-flight read-ahead."),
		sceneSpoolBytes: reg.Counter("fusion_scene_spool_bytes_total",
			"Scene payload bytes spooled to disk at registration."),
		httpDuration: reg.HistogramVec("fusion_http_request_duration_seconds",
			"HTTP request latency by mux route pattern and status code.",
			telemetry.DefBuckets, "route", "status"),
	}
	stages := reg.HistogramVec("fusion_worker_stage_seconds",
		"Pooled-worker kernel latency by pipeline stage.", stageBuckets, "stage")
	m.stageScreen = stages.With("screen")
	m.stageCovariance = stages.With("covariance")
	m.stageTransform = stages.With("transform")
	m.stageFuse = stages.With("fuse")

	reg.GaugeFunc("fusion_jobs_running", "Jobs currently executing.", func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return int64(p.running)
	})
	reg.GaugeFunc("fusion_queue_depth", "Jobs parked in the admission queue.", func() int64 {
		return int64(len(p.queue))
	})
	reg.GaugeFunc("fusion_cache_entries", "Result-cache entries resident.", func() int64 {
		if p.cache == nil {
			return 0
		}
		_, _, size := p.cache.counters()
		return int64(size)
	})
	reg.GaugeFunc("fusion_cache_spilled_bytes", "Bytes resident in the result cache's disk-spill tier.", func() int64 {
		if p.cache == nil {
			return 0
		}
		_, bytes := p.cache.spillStats()
		return bytes
	})
	reg.GaugeFunc("fusion_scenes_registered", "Scenes currently registered.", func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return int64(len(p.scenes))
	})
	return m
}

// sceneTileRead is the scene.PrefetchTiler.OnRead hook: every tile read
// counts, prediction hits additionally.
func (m *poolMetrics) sceneTileRead(prefetchHit bool) {
	m.sceneTilesRead.Inc()
	if prefetchHit {
		m.scenePrefetchHits.Inc()
	}
}

// Metrics exposes the pool's telemetry registry (the one Config.Metrics
// supplied, or the pool-private default) so embedders — fusiond's ops
// listener, tests — can mount additional scrape endpoints over it.
func (p *Pool) Metrics() *telemetry.Registry { return p.metrics.reg }

// statusWriter captures the response code for the route/status latency
// histogram; WriteHeader may never be called (implicit 200).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush keeps streaming handlers working behind the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// httpMiddleware wraps the service mux with the route×status latency
// histogram. The route label is the mux pattern (e.g. "GET
// /v2/jobs/{id}"), resolved before serving so path wildcards never
// explode the label space; unmatched requests share one label.
func (p *Pool) httpMiddleware(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		mux.ServeHTTP(sw, r)
		p.metrics.httpDuration.With(route, strconv.Itoa(sw.code)).Observe(time.Since(t0).Seconds())
	})
}
