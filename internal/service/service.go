// Package service turns the one-shot fusion pipeline into a multi-job
// fusion service: one long-lived scplib.RealSystem hosts a pool of
// persistent fusion workers, and many concurrent jobs are multiplexed
// over it — each job spawns only a lightweight manager thread that drives
// the paper's 8-step protocol (core.RunManager) against the shared
// workers, with messages scoped by job envelope. Compared to core.Fuse
// per request, the pool pays system construction and worker spawn once,
// admission-controls incoming jobs (bounded queue, bounded concurrency),
// and answers repeated scenes from a content-addressed result cache keyed
// by cube digest + canonicalized options.
//
// cmd/fusiond exposes the pool over HTTP (POST /v1/jobs, GET
// /v1/jobs/{id}, GET /v1/stats); examples/service drives it end to end.
package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"image/png"
	"log/slog"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/fuse"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/store"
	"resilientfusion/internal/telemetry"
)

// maxSubCubes bounds a job's decomposition (Granularity × Workers); see
// the admission check in Submit.
const maxSubCubes = 1024

// Errors returned by Submit.
var (
	// ErrQueueFull reports admission-control rejection: the job queue is
	// at capacity. Clients should back off and resubmit.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed reports submission to a closed pool.
	ErrClosed = errors.New("service: pool closed")
	// ErrUnknownJob reports a status query for an unknown (or already
	// evicted) job ID.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrImageExpired reports an ImagePNG request for a job whose
	// composite aged out of the RetainResults window (scalar results
	// remain queryable).
	ErrImageExpired = errors.New("service: composite image no longer retained")
	// ErrJobNotCancelable reports a Cancel on a job that already left the
	// queue: running jobs hold worker state mid-protocol and finished jobs
	// are immutable, so only queued jobs can be withdrawn.
	ErrJobNotCancelable = errors.New("service: job not cancelable")
)

// Config tunes a Pool.
type Config struct {
	// Workers is the number of persistent fusion workers (default 4).
	Workers int
	// MaxConcurrent is how many jobs run at once (default 2). Each
	// running job holds one manager thread; workers are shared.
	MaxConcurrent int
	// QueueDepth bounds jobs waiting beyond the running ones (default
	// 64); submissions past it are rejected with ErrQueueFull.
	QueueDepth int
	// CacheEntries is the result-cache capacity (default 128; negative
	// disables caching).
	CacheEntries int
	// RetainJobs bounds how many finished jobs stay queryable (default
	// 4096); the oldest finished jobs are evicted first.
	RetainJobs int
	// RetainResults bounds how many of the most recent finished jobs
	// keep their composite image (default 64). Older retained jobs stay
	// queryable with scalar results only — without this window, RetainJobs
	// full RGBA composites would pin unbounded bytes in a long-lived
	// daemon. The result cache keeps its own (CacheEntries-bounded) full
	// copies.
	RetainResults int
	// SpoolDir is where uploaded scenes are spooled; empty selects a
	// fresh temporary directory that Close removes.
	SpoolDir string
	// MaxSceneBytes bounds a registered scene's raw payload (default
	// 512 MiB), checked against the header's claim before any byte is
	// spooled.
	MaxSceneBytes int64
	// MaxScenes bounds concurrently registered scenes (default 64);
	// registrations past it are rejected until scenes are removed.
	MaxScenes int
	// MaxLongPoll caps how long one GET /v2/jobs/{id}?wait=... request
	// may hold its connection (default 60s). Clients asking for more are
	// trimmed, not rejected: they re-issue the long-poll.
	MaxLongPoll time.Duration
	// JournalDir, when non-empty, enables the durable control plane: a
	// write-ahead job journal (plus spooled cube inputs and the cache
	// spill) lives under it, and a persistent scene catalog is kept next
	// to the spool. Queued and running jobs re-enter the pool after a
	// restart on the same directories, with IDs and result keys
	// unchanged. Pair it with a persistent SpoolDir — a pool-created
	// temporary spool is removed at Close, taking the catalog with it.
	JournalDir string
	// CacheSpillBytes > 0 lets the result cache spill evicted entries to
	// content-addressed files under JournalDir/spill, bounded by this
	// byte budget; spilled entries survive restarts. Requires JournalDir.
	CacheSpillBytes int64
	// Cluster, when non-nil, enables cluster mode: the pool listens for
	// fusionworkerd processes and runs jobs' worker replicas remotely,
	// falling back to the in-process pool below quorum. It forces
	// Workers to Cluster.Workers so both paths decompose scenes
	// identically.
	Cluster *ClusterConfig
	// Metrics is the telemetry registry the pool instruments (served at
	// GET /metrics). Nil selects a pool-private registry. Registries
	// panic on duplicate registration, so give each pool its own.
	Metrics *telemetry.Registry
	// Logger receives structured diagnostics. When LogTo is nil, a
	// non-nil Logger supplies it (debug-leveled) so existing LogTo
	// consumers keep working.
	Logger *slog.Logger
	// LogTo receives diagnostics (nil silences them).
	LogTo func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Cluster != nil {
		ccfg := c.Cluster.withDefaults()
		c.Cluster = &ccfg
		// Bit-identical mosaics and shared cache keys between cluster
		// and fallback runs require the same worker count on both paths.
		c.Workers = ccfg.Workers
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 4096
	}
	if c.RetainResults <= 0 {
		c.RetainResults = 64
	}
	if c.MaxSceneBytes <= 0 {
		c.MaxSceneBytes = 512 << 20
	}
	if c.MaxScenes <= 0 {
		c.MaxScenes = 64
	}
	if c.MaxLongPoll <= 0 {
		c.MaxLongPoll = 60 * time.Second
	}
	if c.LogTo == nil && c.Logger != nil {
		c.LogTo = telemetry.LogTo(c.Logger)
	}
	return c
}

// Stats is a point-in-time view of the pool for GET /v1/stats.
type Stats struct {
	Workers     int   `json:"workers"`
	QueueDepth  int   `json:"queue_depth"` // jobs waiting
	Running     int   `json:"running"`
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_size"`
	// Throughput is completed jobs per second since the pool started.
	Throughput    float64 `json:"throughput_jobs_per_s"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Cluster reports cluster-mode state; null when cluster mode is off.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Store reports the durable control plane; null when JournalDir is
	// unset.
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats is the durable-control-plane section of Stats.
type StoreStats struct {
	// JournalRecords counts lifecycle records fsync'd this process life;
	// RecoveredJobs counts jobs re-admitted from the journal at boot.
	JournalRecords int64 `json:"journal_records"`
	RecoveredJobs  int64 `json:"recovered_jobs"`
	// Spill tier: lookups served from / missed by disk, and what is
	// resident there now.
	SpillHits      int64 `json:"spill_hits"`
	SpillMisses    int64 `json:"spill_misses"`
	SpilledEntries int   `json:"spilled_entries"`
	SpilledBytes   int64 `json:"spilled_bytes"`
}

// Pool is the multi-job fusion service.
type Pool struct {
	cfg       Config
	sys       *scplib.RealSystem
	cluster   *clusterState // nil unless cluster mode is on
	workerIDs []scplib.ThreadID
	cache     *resultCache
	metrics   *poolMetrics
	queue     chan *Job
	wg        sync.WaitGroup // dispatcher goroutines
	t0        time.Time
	shut      chan struct{} // closed once Close has drained every job

	mu         sync.Mutex
	closed     bool
	jobs       map[string]*Job
	doneOrder  []string // finished jobs, oldest first (eviction order)
	nextJob    uint64
	nextThread scplib.ThreadID
	running    int

	// Scene registry (see scene.go). spoolDir is resolved at NewPool;
	// ownSpool marks a pool-created temporary directory removed by Close.
	scenes    map[string]*sceneEntry
	nextScene uint64
	spoolDir  string
	ownSpool  bool

	// Durable control plane (see durable.go); all nil unless
	// Config.JournalDir is set.
	catalog  *store.Catalog
	journal  *store.Journal
	spill    *store.Spill
	cubesDir string
	recovery *RecoveryReport
}

// NewPool builds and starts a pool: the system begins running with all
// workers spawned, and MaxConcurrent dispatchers wait for jobs.
func NewPool(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	sys := scplib.NewRealSystem()
	sys.LogTo = cfg.LogTo
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	p := &Pool{
		cfg:        cfg,
		sys:        sys,
		queue:      make(chan *Job, cfg.QueueDepth),
		shut:       make(chan struct{}),
		t0:         time.Now(),
		jobs:       make(map[string]*Job),
		scenes:     make(map[string]*sceneEntry),
		spoolDir:   cfg.SpoolDir,
		nextThread: scplib.ThreadID(cfg.Workers + 1),
	}
	p.metrics = newPoolMetrics(reg, p)
	if p.spoolDir == "" {
		dir, err := os.MkdirTemp("", "fusiond-scenes-")
		if err != nil {
			return nil, err
		}
		p.spoolDir, p.ownSpool = dir, true
	} else if err := os.MkdirAll(p.spoolDir, 0o755); err != nil {
		return nil, err
	}
	// Durable control plane: replay the catalog and journal into the
	// scene registry and ID allocators before anything can race them
	// (jobs requeue at the end of NewPool, once dispatchers are live).
	if err := p.openDurable(); err != nil {
		if p.ownSpool {
			os.RemoveAll(p.spoolDir)
		}
		return nil, err
	}
	p.cache = newResultCache(cfg.CacheEntries, p.metrics)
	p.cache.attachSpill(p.spill, p.logf)
	if cfg.Cluster != nil {
		cl, err := newClusterState(*cfg.Cluster, cfg.LogTo, reg)
		if err != nil {
			p.closeStore()
			if p.ownSpool {
				os.RemoveAll(p.spoolDir)
			}
			return nil, err
		}
		p.cluster = cl
		p.logf("cluster: coordinator listening on %s for %d workers", cl.sys.Addr(), cl.cfg.Workers)
	}
	// The in-process pool always exists: in cluster mode it is the
	// graceful-degradation path for jobs below quorum.
	for w := 1; w <= cfg.Workers; w++ {
		id := scplib.ThreadID(w)
		if err := sys.Spawn(scplib.ThreadSpec{
			ID:   id,
			Name: fmt.Sprintf("poolworker%d", w),
			Body: poolWorkerBody(p.metrics),
		}); err != nil {
			return nil, err
		}
		p.workerIDs = append(p.workerIDs, id)
	}
	sys.Start()
	for i := 0; i < cfg.MaxConcurrent; i++ {
		p.wg.Add(1)
		go p.dispatch()
	}
	// Re-admit journaled jobs now that dispatchers can drain the queue.
	p.recoverJobs()
	return p, nil
}

// logf forwards diagnostics to the configured sink.
func (p *Pool) logf(format string, args ...any) {
	if p.cfg.LogTo != nil {
		p.cfg.LogTo(format, args...)
	}
}

// Submit validates and enqueues a fusion job, returning its immediate
// status (already StateDone when served from the result cache). The
// submitted cube and options must not be mutated afterwards.
func (p *Pool) Submit(cube *hsi.Cube, opts core.Options) (JobStatus, error) {
	if err := cube.Validate(); err != nil {
		return JobStatus{}, err
	}
	opts, err := p.canonicalOptions(opts)
	if err != nil {
		return JobStatus{}, err
	}
	// The content-addressed key is only worth the full-cube hash when a
	// cache exists to serve it.
	var digest string
	if p.cfg.CacheEntries > 0 {
		if digest, err = cube.Digest(); err != nil {
			return JobStatus{}, err
		}
	}
	return p.enqueue(func(num uint64) *Job {
		return &Job{
			id:     fmt.Sprintf("job-%d", num),
			num:    num,
			cube:   cube,
			opts:   opts,
			digest: digest,
		}
	})
}

// canonicalOptions applies the pool's fixed policy to client options and
// rejects configurations the workers would refuse, so clients get a
// synchronous error instead of an asynchronous failed job that occupied
// a queue slot. Shared by the in-memory (Submit) and scene (FuseScene)
// submission paths.
func (p *Pool) canonicalOptions(opts core.Options) (core.Options, error) {
	// Jobs always run at the pool's worker count and without replication:
	// process pooling, not thread replication, is this layer's resilience
	// story (workers are goroutines in one process).
	opts.Workers = p.cfg.Workers
	opts.Replication = 1
	opts.Regenerate = false
	// Pooled workers serve many jobs concurrently: share the host's
	// parallelism across the pool by default instead of letting every
	// worker's kernels fan out to GOMAXPROCS. Explicit client settings
	// win; results are identical either way (fixed shard grids).
	if opts.Parallelism == 0 {
		opts.Parallelism = core.SharedKernelParallelism(p.cfg.Workers)
	}
	opts = opts.Canonical()
	if _, ok := fuse.Lookup(opts.Algorithm); !ok {
		return opts, fmt.Errorf("%w: unknown algorithm %q (have %v)",
			core.ErrBadOptions, opts.Algorithm, fuse.Names())
	}
	if opts.Components < 3 {
		return opts, fmt.Errorf("%w: need >=3 components for color mapping", core.ErrBadOptions)
	}
	if opts.Granularity < 1 {
		return opts, fmt.Errorf("%w: Granularity=%d", core.ErrBadOptions, opts.Granularity)
	}
	// Canonical options map 0 to the default threshold, so anything
	// non-positive (or NaN, which fails both comparisons' negations) is
	// out of range here.
	if !(opts.Threshold > 0) || opts.Threshold > math.Pi {
		return opts, fmt.Errorf("%w: Threshold=%g not in (0, π]", core.ErrBadOptions, opts.Threshold)
	}
	// Bound the decomposition: the manager's transform phase keeps all
	// sub-cube requests in flight at once, so an unbounded client-chosen
	// granularity could fill the fixed-depth thread mailboxes and wedge a
	// dispatcher. maxSubCubes stays far under the mailbox depth while
	// exceeding any useful granularity (the paper evaluates single
	// digits).
	// The Granularity pre-check keeps the product from overflowing.
	if opts.Granularity > maxSubCubes || opts.Granularity*opts.Workers > maxSubCubes {
		return opts, fmt.Errorf("%w: Granularity=%d yields over %d sub-cubes",
			core.ErrBadOptions, opts.Granularity, maxSubCubes)
	}
	return opts, nil
}

// enqueue admits one job built by mk (called with the job's allocated
// sequence number; mk must fill everything but the lifecycle fields).
// It serves the content-addressed fast path and applies admission
// control, with the exact close/queue atomicity the dispatcher relies
// on.
func (p *Pool) enqueue(mk func(num uint64) *Job) (JobStatus, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	p.nextJob++
	job := mk(p.nextJob)
	job.done = make(chan struct{})
	job.state = StateQueued
	job.submitted = time.Now()
	job.trace = telemetry.NewTraceRecorder(0)
	if job.digest != "" {
		job.key = job.digest + "|" + job.opts.ResultKey()
	}
	p.jobs[job.id] = job
	p.mu.Unlock()

	// Durable pools persist the submission — cube input, then the
	// fsync'd submit record — before any acknowledging return below
	// (fsync-before-ack): once the client hears "accepted", a crash at
	// any instant replays the job.
	if err := p.journalSubmit(job); err != nil {
		p.mu.Lock()
		delete(p.jobs, job.id) // never admitted
		p.mu.Unlock()
		return JobStatus{}, err
	}

	// Content-addressed fast path: identical samples + options already
	// computed (scene jobs digest-match equivalent in-memory uploads, so
	// the two submission paths share entries).
	if job.key != "" {
		if res, ok := p.cache.get(job.key); ok {
			if job.sceneID != "" {
				job.markTilesComplete()
			}
			p.metrics.jobsSubmitted.Inc()
			p.metrics.jobsByAlgorithm.With(job.opts.Algorithm).Inc()
			p.finish(job, res, nil, true)
			return p.snapshot(job), nil
		}
	}

	// Enqueue under the lock: the closed re-check and the send must be
	// atomic with respect to Close, which closes the queue channel.
	p.mu.Lock()
	if p.closed {
		delete(p.jobs, job.id) // never admitted
		p.mu.Unlock()
		// Neutralize the submit record: replaying a rejected job would
		// grant it the admission it never got.
		p.journalTerminal(job, store.JobCancel, "pool closed before admission")
		return JobStatus{}, ErrClosed
	}
	select {
	case p.queue <- job:
		p.mu.Unlock()
		// Submitted counts admitted jobs only, incremented after the
		// send so a rejected submission never touches it.
		p.metrics.jobsSubmitted.Inc()
		p.metrics.jobsByAlgorithm.With(job.opts.Algorithm).Inc()
		return p.snapshot(job), nil
	default:
		delete(p.jobs, job.id)
		p.mu.Unlock()
		p.metrics.jobsRejected.Inc()
		p.journalTerminal(job, store.JobCancel, "rejected: queue full")
		return JobStatus{}, ErrQueueFull
	}
}

// Status returns a job's current snapshot.
func (p *Pool) Status(id string) (JobStatus, error) {
	p.mu.Lock()
	job := p.jobs[id]
	p.mu.Unlock()
	if job == nil {
		return JobStatus{}, ErrUnknownJob
	}
	return p.snapshot(job), nil
}

// Cancel withdraws a queued job before a dispatcher picks it up: the job
// moves to StateCanceled (a terminal state — waiters are released, the
// input is dropped) and the dispatcher skips it on dequeue. Jobs that are
// already running or finished report ErrJobNotCancelable; unknown IDs
// report ErrUnknownJob.
func (p *Pool) Cancel(id string) (JobStatus, error) {
	p.mu.Lock()
	job := p.jobs[id]
	if job == nil {
		p.mu.Unlock()
		return JobStatus{}, ErrUnknownJob
	}
	if job.state != StateQueued {
		p.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: job %s is %s", ErrJobNotCancelable, id, job.state)
	}
	// The same terminal bookkeeping finish() performs, minus result and
	// metrics: release the inputs, join the eviction order, snapshot
	// before unlocking so the returned status is the transition itself.
	job.state = StateCanceled
	job.cube = nil
	if job.sceneFile != nil {
		job.sceneFile.Close()
		job.sceneFile = nil
	}
	job.finished = time.Now()
	p.metrics.jobsCanceled.Inc()
	p.doneOrder = append(p.doneOrder, job.id)
	for len(p.doneOrder) > p.cfg.RetainJobs {
		delete(p.jobs, p.doneOrder[0])
		p.doneOrder = p.doneOrder[1:]
	}
	st := p.snapshotLocked(job)
	p.mu.Unlock()
	// Journal before releasing waiters: the cancellation is durable by
	// the time anyone observes the terminal state.
	p.journalTerminal(job, store.JobCancel, "")
	close(job.done)
	return st, nil
}

// Wait blocks until the job finishes and returns its final snapshot.
func (p *Pool) Wait(id string) (JobStatus, error) {
	return p.WaitContext(context.Background(), id)
}

// WaitContext blocks until the job finishes, the context is done, or the
// pool has shut down — whichever comes first. On context expiry it
// returns the job's current (possibly non-terminal) snapshot alongside
// ctx.Err(), which is what the v2 long-poll serves; on pool shutdown a
// still-unfinished job reports ErrClosed (Close drains every admitted
// job, so this arises only for jobs that can no longer make progress —
// a waiter must not leak on them).
func (p *Pool) WaitContext(ctx context.Context, id string) (JobStatus, error) {
	p.mu.Lock()
	job := p.jobs[id]
	p.mu.Unlock()
	if job == nil {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-job.done:
		return p.snapshot(job), nil
	case <-ctx.Done():
		return p.snapshot(job), ctx.Err()
	case <-p.shut:
		// The drain may have finished this job in the same instant;
		// prefer the terminal snapshot when it did.
		select {
		case <-job.done:
			return p.snapshot(job), nil
		default:
			return p.snapshot(job), ErrClosed
		}
	}
}

// Jobs returns snapshots of the retained jobs, most recent submission
// first, optionally filtered to one state; limit > 0 bounds the count.
func (p *Pool) Jobs(state JobState, limit int) []JobStatus {
	// Collect under the lock, but sort outside it: with RetainJobs in
	// the thousands, an O(n log n) pass must not extend the critical
	// section every Submit and finish contends on. Job pointers stay
	// valid across the gap (eviction only unlinks them from the map);
	// state is re-read under the second hold, so the filter is exact.
	p.mu.Lock()
	all := make([]*Job, 0, len(p.jobs))
	for _, job := range p.jobs {
		all = append(all, job)
	}
	p.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].num > all[j].num })

	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]JobStatus, 0, len(all))
	for _, job := range all {
		if state != "" && job.state != state {
			continue
		}
		out = append(out, p.snapshotLocked(job))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// ImagePNG returns the job's composite image encoded as PNG, encoding at
// most once per job (results are immutable after completion; pollers
// share the memoized bytes). It errors for jobs that are not done or
// whose composite has aged out of the retention window.
func (p *Pool) ImagePNG(id string) ([]byte, error) {
	p.mu.Lock()
	job := p.jobs[id]
	p.mu.Unlock()
	if job == nil {
		return nil, ErrUnknownJob
	}
	select {
	case <-job.done:
	default:
		return nil, fmt.Errorf("service: job %s not finished", id)
	}
	job.pngMu.Lock()
	defer job.pngMu.Unlock()
	if job.png != nil {
		return job.png, nil
	}
	p.mu.Lock()
	res := job.result
	state := job.state
	jobErr := job.err
	p.mu.Unlock()
	if state == StateFailed {
		return nil, fmt.Errorf("service: job %s failed: %w", id, jobErr)
	}
	if res == nil || res.Image == nil {
		return nil, fmt.Errorf("%w: job %s", ErrImageExpired, id)
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, res.Image); err != nil {
		return nil, err
	}
	job.png = buf.Bytes()
	return job.png, nil
}

// ImagePNGBase64 is ImagePNG pre-encoded for JSON transport, memoized so
// polling clients do not pay a fresh base64 pass per request.
func (p *Pool) ImagePNGBase64(id string) (string, error) {
	data, err := p.ImagePNG(id)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	job := p.jobs[id]
	p.mu.Unlock()
	if job == nil {
		// Evicted between calls; encode without memoizing.
		return base64.StdEncoding.EncodeToString(data), nil
	}
	job.pngMu.Lock()
	defer job.pngMu.Unlock()
	if job.pngB64 != "" {
		return job.pngB64, nil
	}
	b64 := base64.StdEncoding.EncodeToString(data)
	// Memoize only while the PNG memo survives: if finish() stripped the
	// job between the ImagePNG call above and here, storing the base64
	// would re-pin the composite the retention window just released.
	if job.png != nil {
		job.pngB64 = b64
	}
	return b64, nil
}

// Stats reports the pool's counters, read from the same telemetry
// registry the Prometheus exposition serves.
func (p *Pool) Stats() Stats {
	hits, misses, size := p.cache.counters()
	p.mu.Lock()
	defer p.mu.Unlock()
	up := time.Since(p.t0).Seconds()
	s := Stats{
		Workers:       p.cfg.Workers,
		QueueDepth:    len(p.queue),
		Running:       p.running,
		Submitted:     p.metrics.jobsSubmitted.Value(),
		Completed:     p.metrics.jobsCompleted.Value(),
		Failed:        p.metrics.jobsFailed.Value(),
		Rejected:      p.metrics.jobsRejected.Value(),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheSize:     size,
		UptimeSeconds: up,
	}
	if up > 0 {
		s.Throughput = float64(s.Completed) / up
	}
	if p.cluster != nil {
		s.Cluster = p.cluster.snapshot()
	}
	if p.journal != nil {
		entries, bytes := p.cache.spillStats()
		s.Store = &StoreStats{
			JournalRecords: p.metrics.journalRecords.Value(),
			RecoveredJobs:  p.metrics.recoveredJobs.Value(),
			SpillHits:      p.metrics.cacheSpillHits.Value(),
			SpillMisses:    p.metrics.cacheSpillMisses.Value(),
			SpilledEntries: entries,
			SpilledBytes:   bytes,
		}
	}
	return s
}

// Close stops accepting jobs, drains queued and running ones, then tears
// the worker pool down. It returns the system's combined thread errors
// (nil in normal operation).
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()   // dispatchers drain remaining queued jobs
	close(p.shut) // every admitted job is terminal now; release any waiters
	if p.cluster != nil {
		// After the drain: no cluster job is running, so this only
		// disconnects idle fusionworkerd processes (which exit cleanly).
		p.cluster.sys.Stop()
		p.cluster.sys.Close()
	}
	p.sys.Stop() // kill persistent workers
	err := p.sys.Wait()
	// Release spooled scenes after the drain: queued scene jobs read
	// their files until the dispatchers finish. Durable pools keep the
	// files — the catalog still records them, and the next boot re-reads
	// both (removing them here would turn every clean restart into a
	// mass scene drop).
	p.mu.Lock()
	if p.catalog == nil {
		for _, ent := range p.scenes {
			ent.removeFiles()
		}
	}
	p.scenes = map[string]*sceneEntry{}
	p.mu.Unlock()
	p.closeStore()
	if p.ownSpool {
		os.RemoveAll(p.spoolDir)
	}
	return err
}

// dispatch is one unit of the concurrency budget: it runs queued jobs to
// completion, one at a time, until the queue closes.
func (p *Pool) dispatch() {
	defer p.wg.Done()
	for job := range p.queue {
		p.runJob(job)
	}
}

// runJob executes one job over the shared worker pool.
func (p *Pool) runJob(job *Job) {
	p.mu.Lock()
	// Canceled while queued: the terminal transition already happened
	// under the lock in Cancel, so this dequeue is a no-op.
	if job.state != StateQueued {
		p.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	p.running++
	tid := p.nextThread
	p.nextThread++
	p.mu.Unlock()
	p.journalStart(job)
	defer func() {
		p.mu.Lock()
		p.running--
		p.mu.Unlock()
	}()

	// An identical job may have completed while this one queued.
	if job.key != "" {
		if res, ok := p.cache.peek(job.key); ok {
			p.finish(job, res, nil, true)
			return
		}
	}

	// Cluster mode first; a false return degrades to the in-process pool.
	if p.cluster != nil && p.runJobCluster(job) {
		return
	}

	res := &core.Result{}
	errc := make(chan error, 1)
	// canonicalOptions validated the algorithm at submit, so the lookup
	// cannot miss here; the ID rides in every envelope so pooled workers
	// build the right per-job state from the first message.
	alg, _ := fuse.Lookup(job.opts.Algorithm)
	spawnErr := p.sys.Spawn(scplib.ThreadSpec{
		ID:   tid,
		Name: fmt.Sprintf("jobmgr-%d", job.num),
		Body: func(env scplib.Env) error {
			je := newJobEnv(env, job.num, job.opts.Threshold, job.opts.Parallelism, alg.ID, p.workerIDs)
			// The recorder rides in a copy of the options: job.opts (and
			// its ResultKey, computed at enqueue) stays trace-free, so
			// caching and the canonical-options echo are untouched.
			opts := job.opts
			opts.Trace = job.trace
			var jobErr error
			// The errc send must happen on every exit — including a panic
			// in the manager protocol, which scplib's thread wrapper would
			// otherwise swallow, wedging this dispatcher forever.
			defer func() {
				if r := recover(); r != nil {
					jobErr = fmt.Errorf("service: job manager panic: %v", r)
				}
				je.stopWorkers()
				errc <- jobErr
			}()
			if job.sceneID != "" {
				// Scene jobs stream row tiles straight off the spooled
				// file, through the handle the job has held since submit
				// (finish() closes it; tile reads are manager-thread
				// sequential). The tiler is wrapped with one-tile
				// read-ahead over the decomposition the manager will
				// derive, so the next row-window decodes off disk while
				// the current tile is on the wire; the drain runs before
				// finish() can close the spool handle under a prefetch.
				rdr, err := scene.NewReaderFrom(job.sceneHdr, job.sceneFile)
				if err != nil {
					jobErr = fmt.Errorf("service: opening scene %s: %w", job.sceneID, err)
					return nil
				}
				tiler := scene.NewPrefetchTiler(scene.NewTiler(rdr),
					opts.TileRanges(job.sceneHdr.Lines))
				tiler.OnRead = p.metrics.sceneTileRead
				defer tiler.Drain()
				src := &sceneSource{tiler: tiler, job: job}
				jobErr = core.RunManagerSource(je, src, opts, res)
			} else {
				jobErr = core.RunManager(je, job.cube, opts, res)
			}
			// Job failures are reported on the job, not accumulated as
			// system errors.
			return nil
		},
	})
	if spawnErr != nil {
		p.finish(job, nil, spawnErr, false)
		return
	}
	if err := <-errc; err != nil {
		p.finish(job, nil, err, false)
		return
	}
	if job.key != "" {
		p.cache.put(job.key, res)
	}
	p.finish(job, res, nil, false)
}

// finish moves a job to its terminal state and evicts old finished jobs.
func (p *Pool) finish(job *Job, res *core.Result, err error, fromCache bool) {
	p.mu.Lock()
	// A Cancel that won the race already performed the terminal
	// transition (and closed job.done); finishing again would double-close.
	if job.state == StateCanceled {
		p.mu.Unlock()
		return
	}
	// Release the input cube: it is never read after the run, and
	// finished jobs stay queryable for up to RetainJobs — holding their
	// cubes would grow a long-lived daemon by the full upload size per
	// job. Scene jobs release their spool handle the same way (finish is
	// each job's single terminal transition, so the close is exactly
	// once; for removed scenes this drops the last reference to the
	// unlinked file).
	job.cube = nil
	if job.sceneFile != nil {
		job.sceneFile.Close()
		job.sceneFile = nil
	}
	job.finished = time.Now()
	job.cacheHit = fromCache
	if !fromCache {
		p.metrics.jobsDuration.Observe(job.finished.Sub(job.submitted).Seconds())
	}
	if err != nil {
		job.state = StateFailed
		job.err = err
		p.metrics.jobsFailed.Inc()
	} else {
		job.state = StateDone
		job.result = res
		p.metrics.jobsCompleted.Inc()
		// The scene's result endpoint serves its most recent success.
		if job.sceneID != "" {
			if ent := p.scenes[job.sceneID]; ent != nil {
				ent.lastDone = job.id
			}
		}
	}
	p.doneOrder = append(p.doneOrder, job.id)
	for len(p.doneOrder) > p.cfg.RetainJobs {
		delete(p.jobs, p.doneOrder[0])
		p.doneOrder = p.doneOrder[1:]
	}
	// Strip the composite from the job leaving the RetainResults window
	// (scalar results stay queryable). The stripped copy leaves any
	// shared cache entry untouched.
	var strip *Job
	if i := len(p.doneOrder) - p.cfg.RetainResults - 1; i >= 0 {
		if old := p.jobs[p.doneOrder[i]]; old != nil && old.result != nil && old.result.Image != nil {
			stripped := *old.result
			stripped.Image = nil
			old.result = &stripped
			strip = old
		}
	}
	p.mu.Unlock()
	// Journal the terminal transition (and release the spooled cube
	// input) before waiters observe it; the client never sees a terminal
	// state a restart would forget.
	if err != nil {
		p.journalTerminal(job, store.JobFail, err.Error())
	} else {
		p.journalTerminal(job, store.JobFinish, "")
	}
	close(job.done)
	if strip != nil {
		// Release the memoized PNG too. Taken outside the pool lock:
		// ImagePNG acquires pngMu before the pool mutex, so nesting here
		// would invert the lock order.
		strip.pngMu.Lock()
		strip.png = nil
		strip.pngB64 = ""
		strip.pngMu.Unlock()
	}
}

// snapshot copies a job's current state under the pool lock.
func (p *Pool) snapshot(job *Job) JobStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked(job)
}

func (p *Pool) snapshotLocked(job *Job) JobStatus {
	return JobStatus{
		ID:        job.id,
		State:     job.state,
		SceneID:   job.sceneID,
		CacheHit:  job.cacheHit,
		Err:       job.err,
		Result:    job.result,
		Options:   job.opts,
		Progress:  job.progress(),
		Trace:     job.trace.Summary(),
		Submitted: job.submitted,
		Started:   job.started,
		Finished:  job.finished,
	}
}

// JobTrace is a job's full recorded span timeline, the resource behind
// GET /v2/jobs/{id}/trace.
type JobTrace struct {
	JobID string   `json:"job_id"`
	State JobState `json:"state"`
	// Spans is the timeline, oldest first; ring overwrites drop the
	// oldest spans and count into Dropped.
	Spans   []telemetry.Span `json:"spans"`
	Dropped int64            `json:"dropped,omitempty"`
}

// Trace returns the job's recorded span timeline. A job that has not
// started (or ran entirely from cache) reports an empty span list.
func (p *Pool) Trace(id string) (JobTrace, error) {
	p.mu.Lock()
	job := p.jobs[id]
	var state JobState
	if job != nil {
		state = job.state
	}
	p.mu.Unlock()
	if job == nil {
		return JobTrace{}, ErrUnknownJob
	}
	spans, dropped := job.trace.Snapshot()
	if spans == nil {
		spans = []telemetry.Span{}
	}
	return JobTrace{JobID: id, State: state, Spans: spans, Dropped: dropped}, nil
}
