package service

import (
	"bytes"
	"encoding/gob"

	"resilientfusion/internal/core"
)

// encodeResult serializes a completed fusion result for the disk-spill
// cache tier. gob covers every exported field (image, statistics,
// transform, timings); core.Result's unexported completion flag is lost
// in the round trip, which is safe — it is consulted only inside core's
// own run paths, never on cache-served results.
func encodeResult(res *core.Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeResult is the inverse of encodeResult. The bytes it is handed
// were already digest-validated by the spill layer, so a decode error
// here means an incompatible (older-build) encoding, not corruption;
// either way the caller drops the entry and recomputes.
func decodeResult(data []byte) (*core.Result, error) {
	res := new(core.Result)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(res); err != nil {
		return nil, err
	}
	return res, nil
}
