package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
)

// enviPayload renders a cube as ENVI header text + raw payload bytes in
// the given interleave (via the scene writer, so the payload is exactly
// what a real scene file holds).
func enviPayload(t *testing.T, cube *hsi.Cube, il scene.Interleave) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scene.raw")
	if err := scene.Write(path, cube, il); err != nil {
		t.Fatal(err)
	}
	hdr, err := os.ReadFile(path + ".hdr")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(hdr), data
}

// postScene uploads header+data as the multipart form POST /v1/scenes
// expects.
func postScene(t *testing.T, client *http.Client, url, hdr string, data []byte) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	hw, err := mw.CreateFormField("header")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(hw, hdr); err != nil {
		t.Fatal(err)
	}
	dw, err := mw.CreateFormFile("data", "scene.raw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func pollJob(t *testing.T, client *http.Client, base, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		job := decodeJob(t, r)
		if job.State == StateDone || job.State == StateFailed {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSceneHTTPEndToEnd exercises the whole-scene flow over HTTP —
// register an ENVI upload, fuse it with per-tile progress, fetch the
// mosaic — and pins the acceptance criterion: the streamed scene fusion
// is bit-identical to fusing the same cube uploaded in memory (the two
// jobs' PNG composites are byte-equal, and they share one result-cache
// entry because the scene digest equals the cube digest).
func TestSceneHTTPEndToEnd(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 2, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	cube := testCube(t, 33)
	const params = "?threshold=0.05&granularity=3"

	// In-memory reference: upload the cube through the historical path.
	resp := postCube(t, client, srv.URL+"/v1/jobs"+params, cube)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cube submit status %d", resp.StatusCode)
	}
	ref := pollJob(t, client, srv.URL, decodeJob(t, resp).ID)
	if ref.State != StateDone {
		t.Fatalf("reference job failed: %s", ref.Error)
	}
	refPNG, err := pool.ImagePNG(ref.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Register the same samples as a streamed BIL scene.
	hdr, data := enviPayload(t, cube, scene.BIL)
	resp = postScene(t, client, srv.URL+"/v1/scenes", hdr, data)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("scene register status %d: %s", resp.StatusCode, body)
	}
	var info SceneInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Width != cube.Width || info.Height != cube.Height || info.Bands != cube.Bands {
		t.Fatalf("scene info %+v", info)
	}
	wantDigest, err := cube.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != wantDigest {
		t.Fatalf("scene digest %s, want cube digest %s", info.Digest, wantDigest)
	}

	// Fuse the scene. The digest matches the in-memory upload, so this
	// must be served from the result cache — the strongest possible
	// equality statement — but the composite must also match byte-wise.
	resp2, err := client.Post(srv.URL+"/v1/scenes/"+info.ID+"/fuse"+params, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("fuse status %d", resp2.StatusCode)
	}
	job := decodeJob(t, resp2)
	if job.SceneID != info.ID {
		t.Fatalf("job scene_id %q", job.SceneID)
	}
	job = pollJob(t, client, srv.URL, job.ID)
	if job.State != StateDone {
		t.Fatalf("scene job failed: %s", job.Error)
	}
	if !job.CacheHit {
		t.Fatal("scene fuse of identical samples+options missed the shared cache")
	}
	if job.Progress == nil || job.Progress.Total == 0 ||
		job.Progress.Screened != job.Progress.Total ||
		job.Progress.Transformed != job.Progress.Total {
		t.Fatalf("progress %+v", job.Progress)
	}

	// Fetch the mosaic and compare bytes with the in-memory composite.
	imgResp, err := client.Get(srv.URL + "/v1/scenes/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if imgResp.StatusCode != http.StatusOK || imgResp.Header.Get("Content-Type") != "image/png" {
		t.Fatalf("result status %d type %s", imgResp.StatusCode, imgResp.Header.Get("Content-Type"))
	}
	gotPNG, err := io.ReadAll(imgResp.Body)
	imgResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPNG, refPNG) {
		t.Fatal("scene mosaic differs from in-memory composite")
	}
}

// TestSceneHTTPStreamedComputation disables the cache so the scene job
// must actually stream tiles through the workers, then compares the
// composite with a direct in-memory run — bit-identical output without
// cache assistance, exercised end to end through the endpoints.
func TestSceneHTTPStreamedComputation(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 1, CacheEntries: -1, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	cube := testCube(t, 44)
	hdr, data := enviPayload(t, cube, scene.BSQ)
	resp := postScene(t, client, srv.URL+"/v1/scenes", hdr, data)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	var info SceneInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Digest != "" {
		t.Fatalf("digest computed with caching disabled: %s", info.Digest)
	}

	resp2, err := client.Post(srv.URL+"/v1/scenes/"+info.ID+"/fuse?threshold=0.05&granularity=5", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, resp2)
	job = pollJob(t, client, srv.URL, job.ID)
	if job.State != StateDone {
		t.Fatalf("scene job failed: %s", job.Error)
	}
	if job.CacheHit {
		t.Fatal("cache hit with caching disabled")
	}
	if job.Progress == nil || job.Progress.Transformed != job.Progress.Total || job.Progress.Total == 0 {
		t.Fatalf("progress %+v", job.Progress)
	}

	// Reference: the same options through the pool's in-memory path.
	opts := core.Options{Threshold: 0.05, Granularity: 5}
	st, err := pool.Submit(cube.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err = pool.Wait(st.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("reference: %v %s", err, st.State)
	}
	refPNG, err := pool.ImagePNG(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	scenePNG, err := pool.SceneResultPNG(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scenePNG, refPNG) {
		t.Fatal("streamed scene composite differs from in-memory composite")
	}
}

// TestSceneHTTPErrors covers the upload and fuse failure surfaces:
// malformed headers, truncated/oversized payloads, size limits, unknown
// scenes, and result-before-fuse.
func TestSceneHTTPErrors(t *testing.T) {
	pool, err := NewPool(Config{Workers: 1, MaxConcurrent: 1, MaxSceneBytes: 4096, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	cube := testCube(t, 55) // 24x24x8 float32 = 18432 bytes > MaxSceneBytes
	hdr, data := enviPayload(t, cube, scene.BIP)

	// Over the size limit → 413.
	resp := postScene(t, client, srv.URL+"/v1/scenes", hdr, data)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized scene status %d", resp.StatusCode)
	}
	resp.Body.Close()

	small := hsi.MustNewCube(8, 8, 4)
	for i := range small.Data {
		small.Data[i] = float32(i%97) - 48
	}
	hdr, data = enviPayload(t, small, scene.BIL)

	// Truncated payload → 400.
	resp = postScene(t, client, srv.URL+"/v1/scenes", hdr, data[:len(data)-5])
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated payload status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Oversized payload → 400.
	resp = postScene(t, client, srv.URL+"/v1/scenes", hdr, append(append([]byte(nil), data...), 1, 2, 3))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized payload status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed header → 400.
	resp = postScene(t, client, srv.URL+"/v1/scenes", "not an envi header", data)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad header status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Non-multipart body → 400.
	r2, err := client.Post(srv.URL+"/v1/scenes", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-multipart status %d", r2.StatusCode)
	}
	r2.Body.Close()

	// Unknown scene: fuse, info, result, delete → 404.
	for _, req := range []*http.Request{
		mustReq(t, http.MethodPost, srv.URL+"/v1/scenes/scene-99/fuse"),
		mustReq(t, http.MethodGet, srv.URL+"/v1/scenes/scene-99"),
		mustReq(t, http.MethodGet, srv.URL+"/v1/scenes/scene-99/result"),
		mustReq(t, http.MethodDelete, srv.URL+"/v1/scenes/scene-99"),
	} {
		r, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s status %d", req.Method, req.URL.Path, r.StatusCode)
		}
		r.Body.Close()
	}

	// Valid registration, then: result before any fuse → 404; bad fuse
	// options → 400; delete → 204; fuse after delete → 404.
	resp = postScene(t, client, srv.URL+"/v1/scenes", hdr, data)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	var info SceneInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	r3, _ := client.Get(srv.URL + "/v1/scenes/" + info.ID + "/result")
	if r3.StatusCode != http.StatusNotFound {
		t.Fatalf("result before fuse status %d", r3.StatusCode)
	}
	r3.Body.Close()

	r4, _ := client.Post(srv.URL+"/v1/scenes/"+info.ID+"/fuse?threshold=9", "", nil)
	if r4.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad threshold status %d", r4.StatusCode)
	}
	r4.Body.Close()

	// Unknown option key (typo) → 400, same contract as /v1/jobs.
	r4b, _ := client.Post(srv.URL+"/v1/scenes/"+info.ID+"/fuse?granularty=8", "", nil)
	if r4b.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown fuse option status %d", r4b.StatusCode)
	}
	r4b.Body.Close()

	del := mustReq(t, http.MethodDelete, srv.URL+"/v1/scenes/"+info.ID)
	r5, err := client.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	if r5.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", r5.StatusCode)
	}
	r5.Body.Close()
	r6, _ := client.Post(srv.URL+"/v1/scenes/"+info.ID+"/fuse", "", nil)
	if r6.StatusCode != http.StatusNotFound {
		t.Fatalf("fuse after delete status %d", r6.StatusCode)
	}
	r6.Body.Close()
}

func mustReq(t *testing.T, method, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestSceneRegistryLimits pins MaxScenes admission and the list/remove
// lifecycle through the Go API.
func TestSceneRegistryLimits(t *testing.T) {
	pool, err := NewPool(Config{Workers: 1, MaxConcurrent: 1, MaxScenes: 2, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	small := hsi.MustNewCube(4, 4, 2)
	hdr, data := enviPayloadRaw(t, small)
	var ids []string
	for i := 0; i < 2; i++ {
		info, err := pool.RegisterScene(hdr, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	if _, err := pool.RegisterScene(hdr, bytes.NewReader(data)); !errors.Is(err, ErrSceneLimit) {
		t.Fatalf("over-limit registration: %v", err)
	}
	if got := pool.Scenes(); len(got) != 2 || got[0].ID != ids[0] || got[1].ID != ids[1] {
		t.Fatalf("scene list %+v", got)
	}
	if err := pool.RemoveScene(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.RegisterScene(hdr, bytes.NewReader(data)); err != nil {
		t.Fatalf("registration after removal: %v", err)
	}
}

// stutterSurplusReader serves the claimed payload, then returns a
// single (0, nil) — legal under the io.Reader contract — before
// revealing its surplus bytes. A one-shot Read probe accepts this
// oversized payload; the spool's overrun check must keep reading until
// a byte or EOF.
type stutterSurplusReader struct {
	payload   []byte
	surplus   []byte
	stuttered bool
}

func (r *stutterSurplusReader) Read(p []byte) (int, error) {
	if len(r.payload) > 0 {
		n := copy(p, r.payload)
		r.payload = r.payload[n:]
		return n, nil
	}
	if !r.stuttered {
		r.stuttered = true
		return 0, nil
	}
	if len(r.surplus) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.surplus)
	r.surplus = r.surplus[n:]
	return n, nil
}

// TestRegisterSceneStutteringOverrun pins the spoolExact overrun probe:
// a reader that returns (0, nil) before its surplus data must still be
// rejected as oversized, and one that stutters before EOF must still be
// accepted.
func TestRegisterSceneStutteringOverrun(t *testing.T) {
	pool, err := NewPool(Config{Workers: 1, MaxConcurrent: 1, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	small := hsi.MustNewCube(4, 4, 2)
	hdr, data := enviPayloadRaw(t, small)

	overrun := &stutterSurplusReader{payload: append([]byte(nil), data...), surplus: []byte{1, 2, 3}}
	if _, err := pool.RegisterScene(hdr, overrun); !errors.Is(err, ErrScenePayload) {
		t.Fatalf("stuttering oversized payload accepted: err = %v", err)
	}

	exact := &stutterSurplusReader{payload: append([]byte(nil), data...)}
	if _, err := pool.RegisterScene(hdr, exact); err != nil {
		t.Fatalf("stuttering exact payload rejected: %v", err)
	}
}

// TestRegisterSceneFile registers a scene by local path (no spool copy)
// and fuses it through the Go API.
func TestRegisterSceneFile(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 1, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cube := testCube(t, 66)
	path := filepath.Join(t.TempDir(), "local.raw")
	if err := scene.Write(path, cube, scene.BIL); err != nil {
		t.Fatal(err)
	}
	info, err := pool.RegisterSceneFile(path + ".hdr")
	if err != nil {
		t.Fatal(err)
	}
	st, err := pool.FuseScene(info.ID, core.Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	st, err = pool.Wait(st.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("fuse: %v %s", err, st.State)
	}
	// The registered files must survive removal of a non-owned entry.
	if err := pool.RemoveScene(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("local scene file deleted: %v", err)
	}
}

// enviPayloadRaw is enviPayload for cubes without a testing geometry
// helper (BIP, no wavelengths).
func enviPayloadRaw(t *testing.T, cube *hsi.Cube) (string, []byte) {
	t.Helper()
	return enviPayload(t, cube, scene.BIP)
}

// Removing a scene while an accepted fusion of it is still queued must
// not strand the job: the job holds its own handle from submit time, so
// the unlink is invisible to it.
func TestRemoveSceneWithQueuedFuse(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, MaxConcurrent: 1, CacheEntries: -1, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cube := testCube(t, 77)
	hdr, data := enviPayload(t, cube, scene.BIL)
	info, err := pool.RegisterScene(hdr, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single dispatcher so the scene fuse sits in the queue.
	blocker, err := pool.Submit(testCube(t, 78), core.Options{Threshold: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	st, err := pool.FuseScene(info.ID, core.Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Unlink the spool while the fuse is (most likely) still queued.
	if err := pool.RemoveScene(info.ID); err != nil {
		t.Fatal(err)
	}
	if st, err = pool.Wait(st.ID); err != nil || st.State != StateDone {
		t.Fatalf("queued fuse after scene removal: %v %s (%v)", err, st.State, st.Err)
	}
	if _, err := pool.Wait(blocker.ID); err != nil {
		t.Fatal(err)
	}
}
