package service

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/fuse"
	"resilientfusion/internal/perfmodel"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/telemetry"
)

// kindJobErr is the service-level message kind a pooled worker uses to
// report a per-job failure (malformed payload) back to that job's
// manager, which fails the job instead of timing out through reissues.
// It sits above the core application kinds and below resilient.CtrlBase.
const kindJobErr uint16 = 0x7F00

// Every message between a job manager and the pooled workers wraps the
// core wire payload in a 32-byte envelope: the job ID (multiplexing many
// jobs over one worker) and, on the manager→worker direction, the job's
// screening threshold, kernel parallelism and fusion algorithm (a pooled
// worker learns each job's configuration from its first message rather
// than at spawn time).
const envelopeBytes = 32

func encodeEnvelope(jobID uint64, threshold float64, parallelism int, alg fuse.ID, inner []byte) []byte {
	buf := make([]byte, envelopeBytes+len(inner))
	binary.LittleEndian.PutUint64(buf, jobID)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(threshold))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(parallelism)))
	binary.LittleEndian.PutUint64(buf[24:], uint64(alg))
	copy(buf[envelopeBytes:], inner)
	return buf
}

func decodeEnvelope(p []byte) (jobID uint64, threshold float64, parallelism int, alg fuse.ID, inner []byte, err error) {
	if len(p) < envelopeBytes {
		return 0, 0, 0, 0, nil, fmt.Errorf("service: short envelope (%d bytes)", len(p))
	}
	jobID = binary.LittleEndian.Uint64(p)
	threshold = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
	parallelism = int(int64(binary.LittleEndian.Uint64(p[16:])))
	alg = fuse.ID(binary.LittleEndian.Uint64(p[24:]))
	return jobID, threshold, parallelism, alg, p[envelopeBytes:], nil
}

// envelopeJobID peeks the job ID without validation (message filtering).
func envelopeJobID(p []byte) (uint64, bool) {
	if len(p) < envelopeBytes {
		return 0, false
	}
	return binary.LittleEndian.Uint64(p), true
}

// stageHistogram maps a request kind to its latency histogram (nil for
// kinds that are not kernel stages).
func stageHistogram(met *poolMetrics, kind uint16) *telemetry.Histogram {
	if met == nil {
		return nil
	}
	switch kind {
	case core.KindScreenReq:
		return met.stageScreen
	case core.KindCovReq:
		return met.stageCovariance
	case core.KindTransformReq:
		return met.stageTransform
	case core.KindFuseReq:
		return met.stageFuse
	}
	return nil
}

// poolWorkerBody is a long-lived fusion worker: it serves the screening,
// covariance and transform steps for many jobs concurrently, holding one
// core.WorkerState per in-flight job. Job state is created lazily on the
// job's first message and retired on its KindStop — the manager sends one
// per worker when the job ends (success or failure), so the pool pays
// system construction and thread spawn once, not per cube.
//
// met records per-stage kernel latency (nil disables). The timing wraps
// ws.Handle from outside — the worker stays a deterministic function of
// its message stream, so outputs are bit-identical with metrics on.
func poolWorkerBody(met *poolMetrics) scplib.Body {
	return func(env scplib.Env) error {
		states := make(map[uint64]*core.WorkerState)
		// Worker-lifetime kernel buffers, shared across the jobs this
		// thread serves: the K≈7 screened-covariance path reuses one sum
		// matrix instead of allocating n×n per job.
		scratch := core.NewScratch()
		for {
			m, err := env.Recv()
			if err != nil {
				return err // killed at pool close
			}
			jobID, threshold, parallelism, algID, inner, err := decodeEnvelope(m.Payload)
			if err != nil {
				continue // not job-addressable; nothing to fail
			}
			if m.Kind == core.KindStop {
				delete(states, jobID)
				continue
			}
			ws := states[jobID]
			if ws == nil {
				alg, ok := fuse.ByID(algID)
				if !ok {
					// A job can never be enqueued with an unknown algorithm
					// (canonicalOptions validates), so this is wire-level
					// corruption: fail the job, keep the worker.
					msg := fmt.Sprintf("service: envelope carries unknown algorithm id %d", algID)
					if serr := env.Send(m.From, kindJobErr, encodeEnvelope(jobID, 0, 0, 0, []byte(msg))); serr != nil {
						return serr
					}
					continue
				}
				// Compute is a no-op on the real runtime, so the cost
				// model is irrelevant here; the default keeps WorkerState
				// construction uniform with the resilient path.
				ws = core.NewWorkerState(alg.Name, threshold, parallelism, perfmodel.Default())
				ws.UseScratch(scratch)
				states[jobID] = ws
			}
			var t0 time.Time
			hist := stageHistogram(met, m.Kind)
			if hist != nil {
				t0 = time.Now()
			}
			replyKind, reply, flops, err := ws.Handle(m.Kind, inner)
			if hist != nil {
				hist.Observe(time.Since(t0).Seconds())
			}
			if err != nil {
				// Fail this job fast without taking the worker (and every
				// other job multiplexed on it) down.
				if serr := env.Send(m.From, kindJobErr, encodeEnvelope(jobID, 0, 0, 0, []byte(err.Error()))); serr != nil {
					return serr
				}
				continue
			}
			if replyKind == 0 {
				continue
			}
			if flops > 0 {
				if err := env.Compute(flops); err != nil {
					return err
				}
			}
			if err := env.Send(m.From, replyKind, encodeEnvelope(jobID, 0, 0, 0, reply)); err != nil {
				return err
			}
		}
	}
}
