package service

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/fuse"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/scene"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/telemetry"
)

// JobState is a job's position in its lifecycle.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Job is one fusion request moving through the pool.
type Job struct {
	id     string
	num    uint64 // wire job ID
	cube   *hsi.Cube
	opts   core.Options
	digest string
	key    string
	// cubeFile is the journal-spooled copy of a cube job's input (a bare
	// name under the pool's cubes directory), set only on durable pools;
	// the terminal journaling releases it.
	cubeFile string

	// Scene jobs stream tiles from a registered scene instead of holding
	// a cube: sceneID names the registry entry, and sceneFile is the
	// job's own open handle on the spooled payload, taken at submit so
	// removing the scene (which unlinks the file) cannot strand an
	// accepted job — the handle stays readable until finish() closes it.
	// The tile counters publish per-tile progress from the manager
	// thread to HTTP pollers; tilesTotal is immutable after enqueue.
	sceneID          string
	sceneHdr         scene.Header
	sceneFile        *os.File
	tilesTotal       int
	tilesScreened    atomic.Int64
	tilesTransformed atomic.Int64

	// trace records the job's stage spans and resiliency events, set at
	// enqueue and threaded into the run via an Options copy (never into
	// job.opts, whose ResultKey feeds the cache).
	trace *telemetry.TraceRecorder

	done chan struct{} // closed on completion (done or failed)

	// Guarded by the pool's mutex.
	state              JobState
	cacheHit           bool
	err                error
	result             *core.Result
	submitted, started time.Time
	finished           time.Time

	// Composite image memoized as PNG (and its base64 form, which the
	// HTTP handler serves on every poll) on first request — results are
	// immutable once the job is done. Guarded by pngMu (not the pool
	// mutex: PNG encoding must not block the pool).
	pngMu  sync.Mutex
	png    []byte
	pngB64 string
}

// TileProgress is a scene job's per-tile pipeline position: each tile
// passes screening and then the transform, so Transformed trails
// Screened and both end at Total.
type TileProgress struct {
	Total       int `json:"total"`
	Screened    int `json:"screened"`
	Transformed int `json:"transformed"`
}

// JobStatus is an immutable snapshot of a job.
type JobStatus struct {
	ID    string
	State JobState
	// SceneID is set for scene jobs (FuseScene).
	SceneID  string
	CacheHit bool
	Err      error
	// Result is set once State is StateDone. It is shared with the result
	// cache and other jobs: treat it as read-only.
	Result *core.Result
	// Options are the canonical options the job runs with — every knob
	// defaults-filled, including the pool-fixed worker count — so clients
	// can see what their submission actually meant.
	Options core.Options
	// Progress is set for scene jobs.
	Progress *TileProgress
	// Trace summarizes the job's recorded stage spans (count and summed
	// seconds per stage); empty until the run records spans. The full
	// timeline is served by GET /v2/jobs/{id}/trace.
	Trace     map[string]telemetry.StageSummary
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// progress snapshots the tile counters (nil for non-scene jobs).
func (j *Job) progress() *TileProgress {
	if j.sceneID == "" {
		return nil
	}
	return &TileProgress{
		Total:       j.tilesTotal,
		Screened:    int(j.tilesScreened.Load()),
		Transformed: int(j.tilesTransformed.Load()),
	}
}

// markTilesComplete reports every tile done — the cache-hit fast path
// finishes a scene job without running its tiles. tilesTotal itself was
// set under the pool lock at enqueue (the same min(G·W, lines) the
// manager derives) and is never written afterwards.
func (j *Job) markTilesComplete() {
	j.tilesScreened.Store(int64(j.tilesTotal))
	j.tilesTransformed.Store(int64(j.tilesTotal))
}

// jobEnv adapts a plain scplib thread environment to the resilient.REnv
// interface core.RunManager is written against, scoped to one job: sends
// are wrapped in the job envelope and fanned out to the pooled workers by
// logical ID, receives are filtered to this job and translated back to
// logical space. This is what lets the service reuse the exact manager
// protocol (phases, reissue logic, dedupe) over a shared worker pool.
type jobEnv struct {
	env         scplib.Env
	jobID       uint64
	threshold   float64
	parallelism int
	alg         fuse.ID
	// workers[w-1] is the physical thread of logical worker w (1..W).
	workers []scplib.ThreadID
	back    map[scplib.ThreadID]resilient.LogicalID
}

func newJobEnv(env scplib.Env, jobID uint64, threshold float64, parallelism int, alg fuse.ID, workers []scplib.ThreadID) *jobEnv {
	back := make(map[scplib.ThreadID]resilient.LogicalID, len(workers))
	for i, id := range workers {
		back[id] = resilient.LogicalID(i + 1)
	}
	return &jobEnv{env: env, jobID: jobID, threshold: threshold, parallelism: parallelism, alg: alg, workers: workers, back: back}
}

func (e *jobEnv) Self() resilient.LogicalID { return core.ManagerID }
func (e *jobEnv) Replica() int              { return 0 }
func (e *jobEnv) Now() float64              { return e.env.Now() }

func (e *jobEnv) Send(to resilient.LogicalID, kind uint16, payload []byte) error {
	w := int(to)
	if w < 1 || w > len(e.workers) {
		return nil // like sends to unknown threads: dropped silently
	}
	return e.env.Send(e.workers[w-1], kind, encodeEnvelope(e.jobID, e.threshold, e.parallelism, e.alg, payload))
}

// mine reports whether a raw message belongs to this job.
func (e *jobEnv) mine(m *scplib.Message) bool {
	id, ok := envelopeJobID(m.Payload)
	return ok && id == e.jobID
}

// translate unwraps a raw message into logical space, or fails the job on
// a worker-reported error.
func (e *jobEnv) translate(m *scplib.Message) (*resilient.RMessage, error) {
	_, _, _, _, inner, err := decodeEnvelope(m.Payload)
	if err != nil {
		return nil, err
	}
	if m.Kind == kindJobErr {
		return nil, fmt.Errorf("service: worker %d: %s", e.back[m.From], inner)
	}
	return &resilient.RMessage{From: e.back[m.From], Kind: m.Kind, Payload: inner}, nil
}

// mapErr lifts scplib errors to the resilient error space the manager's
// phase loops test against.
func mapErr(err error) error {
	switch {
	case errors.Is(err, scplib.ErrTimeout):
		return resilient.ErrTimeout
	case errors.Is(err, scplib.ErrKilled):
		return resilient.ErrKilled
	}
	return err
}

func (e *jobEnv) Recv() (*resilient.RMessage, error) {
	m, err := e.env.RecvMatch(e.mine)
	if err != nil {
		return nil, mapErr(err)
	}
	return e.translate(m)
}

func (e *jobEnv) RecvTimeout(seconds float64) (*resilient.RMessage, error) {
	m, err := e.env.RecvMatchTimeout(e.mine, seconds)
	if err != nil {
		return nil, mapErr(err)
	}
	return e.translate(m)
}

func (e *jobEnv) RecvMatch(match func(*resilient.RMessage) bool) (*resilient.RMessage, error) {
	return e.recvMatch(match, -1)
}

func (e *jobEnv) RecvMatchTimeout(match func(*resilient.RMessage) bool, seconds float64) (*resilient.RMessage, error) {
	return e.recvMatch(match, seconds)
}

func (e *jobEnv) recvMatch(match func(*resilient.RMessage) bool, seconds float64) (*resilient.RMessage, error) {
	raw := func(m *scplib.Message) bool {
		if !e.mine(m) {
			return false
		}
		if m.Kind == kindJobErr {
			return true // always surface job failures
		}
		rm, err := e.translate(m)
		if err != nil {
			return true // surface decode errors too
		}
		return match(rm)
	}
	var m *scplib.Message
	var err error
	if seconds < 0 {
		m, err = e.env.RecvMatch(raw)
	} else {
		m, err = e.env.RecvMatchTimeout(raw, seconds)
	}
	if err != nil {
		return nil, mapErr(err)
	}
	return e.translate(m)
}

func (e *jobEnv) Compute(flops float64) error { return e.env.Compute(flops) }

func (e *jobEnv) Logf(format string, args ...any) { e.env.Logf(format, args...) }

// stopWorkers retires this job's state on every pooled worker. The
// manager protocol already sends per-worker stops on success; this sweep
// also covers failed jobs, and duplicate stops are no-ops worker-side.
func (e *jobEnv) stopWorkers() {
	for _, id := range e.workers {
		_ = e.env.Send(id, core.KindStop, encodeEnvelope(e.jobID, 0, 0, 0, nil))
	}
}

var _ resilient.REnv = (*jobEnv)(nil)
