// Package spectral implements spectral-angle screening and classification —
// step 1 and 2 of the paper's algorithm. Screening reduces a set of pixel
// vectors to a "unique set" in which no two members are within a spectral
// angle threshold of each other. Computing PCT statistics over the unique
// set instead of the full image prevents numerically dominant materials
// (trees) from swamping rare ones (a mechanized vehicle).
package spectral

import (
	"errors"
	"fmt"
	"math"

	"resilientfusion/internal/linalg"
)

// DefaultThreshold is the spectral angle threshold in radians used when a
// caller passes 0. Roughly 5.7 degrees, a typical SAM separability scale
// for HYDICE-era data.
const DefaultThreshold = 0.1

// ErrBadThreshold is returned for thresholds outside (0, π].
var ErrBadThreshold = errors.New("spectral: threshold must be in (0, π]")

// UniqueSet is a collection of pixel vectors that are pairwise more than
// the screening threshold apart in spectral angle. Norms are cached
// because every screening comparison needs them.
//
// With MoveToFront set, candidate scans probe recently-matched members
// first. Spectrally clustered input (spatially coherent imagery, or
// per-part sets being merged) then hits after a few comparisons instead
// of half the set. Membership decisions — and therefore the resulting
// set and the canonical order of Members — are unaffected: only the
// comparison count changes. The manager's merge step uses this; workers
// keep the plain scan so per-part behaviour matches the paper's cost
// structure.
type UniqueSet struct {
	Threshold   float64
	Members     []linalg.Vector
	MoveToFront bool
	norms       []float64
	// scan holds member indices in probe order (MoveToFront only).
	scan []int
	// cosThr caches cos(Threshold) — the constant of every screening
	// comparison — so Insert/Covers pay no trig call per candidate.
	// NewUniqueSet computes it eagerly; cosThreshold fills it lazily for
	// sets built as bare literals (the manager's merge inputs).
	cosThr   float64
	cosValid bool
}

// Stats reports the work performed by a screening pass. Comparisons is
// what the executing engine actually did; SeqComparisons is what the
// sequential reference implementation of the same step would have done
// on the same input — the count the performance model charges, so the
// modeled cost stays faithful to the paper's sequential kernel no matter
// which engine ran or how it parallelized. Screen and Merge perform
// exactly their reference counts, and ScreenBatched's ordered two-pass
// filter performs no redundant comparisons either, so today the two
// counters agree everywhere (the parity tests pin this); the split is
// the contract that lets a future engine trade extra comparisons for
// throughput without perturbing modeled virtual time.
type Stats struct {
	Comparisons    int // pairwise angle evaluations actually performed
	SeqComparisons int // sequential-reference equivalent (cost model input)
	Scanned        int // candidate vectors examined
}

// Add accumulates o into s (aggregating per-part stats is a plain sum,
// so aggregates are independent of arrival order).
func (s *Stats) Add(o Stats) {
	s.Comparisons += o.Comparisons
	s.SeqComparisons += o.SeqComparisons
	s.Scanned += o.Scanned
}

// NewUniqueSet returns an empty unique set with the given threshold
// (0 selects DefaultThreshold).
func NewUniqueSet(threshold float64) (*UniqueSet, error) {
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	// The explicit NaN check matters: NaN compares false on both range
	// tests, and a NaN threshold would defeat screening entirely (no
	// vector ever matches, the unique set grows to every pixel).
	if math.IsNaN(threshold) || threshold < 0 || threshold > math.Pi {
		return nil, fmt.Errorf("%w: %g", ErrBadThreshold, threshold)
	}
	return &UniqueSet{Threshold: threshold, cosThr: math.Cos(threshold), cosValid: true}, nil
}

// cosThreshold returns the cached cos(Threshold), computing it once for
// sets not built through NewUniqueSet.
func (u *UniqueSet) cosThreshold() float64 {
	if !u.cosValid {
		u.cosThr = math.Cos(u.Threshold)
		u.cosValid = true
	}
	return u.cosThr
}

// Len returns the number of members.
func (u *UniqueSet) Len() int { return len(u.Members) }

// withinCached reports whether v (with precomputed norm nv) is within the
// screening threshold of member i. It is the hot comparison of Insert and
// Covers: cosines are compared directly (angle ≤ t ⇔ cos ≥ cos t on
// [0, π]) so no inverse trigonometric call is made per pair. cosThr is
// the set's cached cos(Threshold) (see cosThreshold).
func (u *UniqueSet) withinCached(v linalg.Vector, nv, cosThr float64, i int) bool {
	nm := u.norms[i]
	if a, degenerate := zeroAngle(nv, nm); degenerate {
		return a <= u.Threshold
	}
	if cosThr <= -1 {
		// Threshold π: the Acos reference clamped the cosine to [-1, 1],
		// so every angle matched; preserve that even when rounding puts
		// the dot product slightly below -‖v‖‖m‖.
		return true
	}
	return v.Dot(u.Members[i]) >= cosThr*(nv*nm)
}

// zeroAngle is the package-wide zero-vector convention, used by every
// angle computation (UniqueSet screening and SAM classification alike):
// two zero vectors are identical (angle 0, so they always cover each
// other), while the angle between a zero vector and a non-zero one is
// defined as π/2. Without the first rule every all-zero pixel — dead
// detector lines produce them in bulk — would enter the unique set as a
// fresh member at any threshold below π/2, inflating the set and making
// screening quadratic on dropout-heavy imagery. degenerate reports
// whether the convention applies (some norm is zero); a is meaningless
// otherwise.
func zeroAngle(nv, nm float64) (a float64, degenerate bool) {
	if nv == 0 || nm == 0 {
		if nv == 0 && nm == 0 {
			return 0, true
		}
		return math.Pi / 2, true
	}
	return 0, false
}

// scanRange screens v (with precomputed norm nv) against members
// [lo, hi) in index order with early exit, reporting whether some member
// covers v and how many comparisons were made. It is the single scan
// body behind Insert's plain path, Covers, and both passes of
// ScreenBatched — the bit-parity guarantee between the engines depends
// on these scans staying behaviorally identical, so there is exactly
// one of them.
func (u *UniqueSet) scanRange(v linalg.Vector, nv, cosThr float64, lo, hi int) (covered bool, comparisons int) {
	for i := lo; i < hi; i++ {
		comparisons++
		if u.withinCached(v, nv, cosThr, i) {
			return true, comparisons
		}
	}
	return false, comparisons
}

// angleCached computes the spectral angle between v (with precomputed norm
// nv) and member i. Kept for callers that need the actual angle
// (MinPairwiseAngle, diagnostics); the screening loops use withinCached.
func (u *UniqueSet) angleCached(v linalg.Vector, nv float64, i int) float64 {
	m := u.Members[i]
	nm := u.norms[i]
	if a, degenerate := zeroAngle(nv, nm); degenerate {
		return a
	}
	c := v.Dot(m) / (nv * nm)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Insert screens candidate v against the current members and adds it when
// it is farther than the threshold from all of them. It reports whether v
// was added and how many comparisons were made. The vector is stored by
// reference; callers must not mutate it afterwards.
func (u *UniqueSet) Insert(v linalg.Vector) (added bool, comparisons int) {
	nv := v.Norm()
	cosThr := u.cosThreshold()
	if u.MoveToFront {
		for pos, idx := range u.scan {
			comparisons++
			if u.withinCached(v, nv, cosThr, idx) {
				// Promote the hit to the front of the probe order.
				copy(u.scan[1:pos+1], u.scan[:pos])
				u.scan[0] = idx
				return false, comparisons
			}
		}
		u.Members = append(u.Members, v)
		u.norms = append(u.norms, nv)
		// In-place prepend: grow by one, shift, drop the new index in
		// front. Amortized O(1) allocations (append's growth policy)
		// instead of one fresh O(K) slice per added member, which made
		// merges quadratic in allocation volume.
		u.scan = append(u.scan, 0)
		copy(u.scan[1:], u.scan)
		u.scan[0] = len(u.Members) - 1
		return true, comparisons
	}
	covered, comparisons := u.scanRange(v, nv, cosThr, 0, len(u.Members))
	if covered {
		return false, comparisons
	}
	u.Members = append(u.Members, v)
	u.norms = append(u.norms, nv)
	return true, comparisons
}

// Covers reports whether v is within the threshold of some member.
func (u *UniqueSet) Covers(v linalg.Vector) bool {
	covered, _ := u.scanRange(v, v.Norm(), u.cosThreshold(), 0, len(u.Members))
	return covered
}

// MinPairwiseAngle returns the smallest angle between distinct members
// (π for sets smaller than 2); used to verify the screening invariant.
func (u *UniqueSet) MinPairwiseAngle() float64 {
	min := math.Pi
	for i := 0; i < len(u.Members); i++ {
		for j := i + 1; j < len(u.Members); j++ {
			if a := u.angleCached(u.Members[i], u.norms[i], j); a < min {
				min = a
			}
		}
	}
	return min
}

// Screen builds a unique set from vectors in order — the sequential
// reference implementation of algorithm step 1 for a single part.
// threshold 0 selects DefaultThreshold.
func Screen(vectors []linalg.Vector, threshold float64) (*UniqueSet, Stats, error) {
	u, err := NewUniqueSet(threshold)
	if err != nil {
		return nil, Stats{}, err
	}
	var st Stats
	for _, v := range vectors {
		st.Scanned++
		_, cmp := u.Insert(v)
		st.Comparisons += cmp
		st.SeqComparisons += cmp
	}
	return u, st, nil
}

// Merge combines per-part unique sets into one global unique set —
// algorithm step 2, executed by the manager. Sets are merged in slice
// order and members in insertion order, making the result deterministic
// for any fixed partitioning. The merged set scans move-to-front: most
// candidates are duplicates of a recently seen variant, which keeps the
// manager's sequential merge cost linear in the total member count
// rather than quadratic.
func Merge(parts []*UniqueSet, threshold float64) (*UniqueSet, Stats, error) {
	u, err := NewUniqueSet(threshold)
	if err != nil {
		return nil, Stats{}, err
	}
	u.MoveToFront = true
	var st Stats
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, v := range p.Members {
			st.Scanned++
			_, cmp := u.Insert(v)
			st.Comparisons += cmp
			// The merge IS the sequential reference of step 2 (its
			// move-to-front probe order is the pinned behaviour), so the
			// engine count and the reference count coincide.
			st.SeqComparisons += cmp
		}
	}
	return u, st, nil
}
