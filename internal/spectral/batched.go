package spectral

import (
	"resilientfusion/internal/linalg"
)

// Batch geometry of ScreenBatched. Both constants are fixed — never
// derived from the parallelism or the host — so the engine's comparison
// counts, like its membership decisions, are bit-identical at every
// worker count (the repo's kernel parity standard).
const (
	// screenBatchSize is the number of candidates filtered per round.
	// Large enough that the filter pass dominates once the unique set has
	// a few members, small enough that the sequential resolve pass of the
	// first rounds (no confirmed members to filter against yet) stays a
	// vanishing fraction of a sub-cube.
	screenBatchSize = 512
	// screenShardSize is the candidate-shard granule of the parallel
	// filter pass within a round: 16 shards per full round, enough for
	// dynamic claiming to balance the uneven early-exit scans.
	screenShardSize = 32
)

// screenCand is one candidate's filter-pass outcome within a round.
type screenCand struct {
	norm    float64
	cmp     int
	covered bool
}

// ScreenBatched is the deterministic parallel screening engine: it
// builds a unique set whose members — values, storage identity, and
// order — are bit-identical to the sequential Screen reference for the
// same input at every parallelism (0 selects GOMAXPROCS, negative forces
// serial, matching core.Options.Parallelism).
//
// Screening is order-dependent (whether a candidate is admitted depends
// on every earlier admission), so the engine works in rounds of
// screenBatchSize candidates. Each round has two passes:
//
//  1. Filter (parallel): every candidate in the batch is screened
//     against the members confirmed before the round started. Those
//     members precede the whole batch in input order, so a hit here is
//     exactly a rejection the sequential scan would have made; the scan
//     is in member order with early exit, so the comparison count per
//     candidate equals the reference's. The batch is sharded over a
//     fixed candidate grid (linalg.ParallelShards) — this pass is the
//     dominant cost and embarrassingly parallel.
//  2. Resolve (sequential): survivors are processed in input order
//     against only the members added earlier in this round, resuming the
//     scan exactly where the filter pass left off. The few intra-round
//     admissions are decided in the reference's order, which is what
//     pins the member order.
//
// Because the filter scans members in order and the resolve pass resumes
// from the confirmed boundary, the engine performs no redundant
// comparisons: Stats.Comparisons equals Stats.SeqComparisons, and both
// equal the sequential Screen's count bit-for-bit (the parity tests pin
// all three). threshold 0 selects DefaultThreshold.
func ScreenBatched(vectors []linalg.Vector, threshold float64, parallelism int) (*UniqueSet, Stats, error) {
	u, err := NewUniqueSet(threshold)
	if err != nil {
		return nil, Stats{}, err
	}
	var st Stats
	cosThr := u.cosThreshold()
	cands := make([]screenCand, min(screenBatchSize, len(vectors)))
	for lo := 0; lo < len(vectors); lo += screenBatchSize {
		batch := vectors[lo:min(lo+screenBatchSize, len(vectors))]
		confirmed := u.Len()
		// Filter pass. The member slices are read-only here (mutation
		// happens only in the resolve pass below), so shards race on
		// nothing but their own cands slots.
		linalg.ParallelShards(linalg.ShardCount(len(batch), screenShardSize), parallelism, func(s int) {
			clo, chi := linalg.ShardRange(len(batch), screenShardSize, s)
			for i := clo; i < chi; i++ {
				c := &cands[i]
				c.norm = batch[i].Norm()
				c.covered, c.cmp = u.scanRange(batch[i], c.norm, cosThr, 0, confirmed)
			}
		})
		// Resolve pass: input order, members added this round only.
		for i, v := range batch {
			st.Scanned++
			c := cands[i]
			cmp := c.cmp
			if !c.covered {
				covered, more := u.scanRange(v, c.norm, cosThr, confirmed, u.Len())
				cmp += more
				if !covered {
					u.Members = append(u.Members, v)
					u.norms = append(u.norms, c.norm)
				}
			}
			st.Comparisons += cmp
			st.SeqComparisons += cmp
		}
	}
	return u, st, nil
}
