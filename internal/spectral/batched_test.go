package spectral

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"resilientfusion/internal/linalg"
)

// parityParallelisms is the grid every batched-vs-sequential parity case
// runs under: serial, small odd/even counts that don't divide the shard
// grid evenly, the host's GOMAXPROCS, and the automatic setting.
func parityParallelisms() []int {
	return []int{-1, 1, 2, 3, runtime.GOMAXPROCS(0), 0}
}

// clusteredVectors builds spatially coherent imagery: noisy copies of a
// few base spectra, the shape screening exists for.
func clusteredVectors(seed int64, count, dim, clusters int, noise float64) []linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	bases := make([]linalg.Vector, clusters)
	for i := range bases {
		v := make(linalg.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()*1000 + 1
		}
		bases[i] = v
	}
	out := make([]linalg.Vector, count)
	for i := range out {
		v := bases[i%clusters].Clone()
		for j := range v {
			v[j] *= 1 + rng.NormFloat64()*noise
		}
		out[i] = v
	}
	return out
}

// withZeroRuns splices runs of all-zero pixels (dead detector lines)
// into vectors at a fixed stride.
func withZeroRuns(vectors []linalg.Vector, dim, stride, run int) []linalg.Vector {
	out := make([]linalg.Vector, 0, len(vectors)+len(vectors)/stride*run)
	for i, v := range vectors {
		if i%stride == 0 {
			for k := 0; k < run; k++ {
				out = append(out, make(linalg.Vector, dim))
			}
		}
		out = append(out, v)
	}
	return out
}

// assertScreenParity pins ScreenBatched ≡ Screen bit-for-bit: member
// count, canonical order, storage identity (the engines keep candidate
// vectors by reference, so identical backing arrays prove the
// added/rejected decision of every input matched), cached norms, and
// both Stats counters.
func assertScreenParity(t *testing.T, vectors []linalg.Vector, threshold float64) {
	t.Helper()
	want, wantStats, err := Screen(vectors, threshold)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range parityParallelisms() {
		got, gotStats, err := ScreenBatched(vectors, threshold, par)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("par=%d: %d members, sequential reference has %d", par, got.Len(), want.Len())
		}
		for i := range want.Members {
			w, g := want.Members[i], got.Members[i]
			if len(w) != len(g) || (len(w) > 0 && &w[0] != &g[0]) {
				t.Fatalf("par=%d: member %d is not the same vector the reference admitted", par, i)
			}
			if math.Float64bits(got.norms[i]) != math.Float64bits(want.norms[i]) {
				t.Fatalf("par=%d: member %d norm %g != %g", par, i, got.norms[i], want.norms[i])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("par=%d: stats %+v, sequential reference %+v", par, gotStats, wantStats)
		}
		if gotStats.Comparisons != gotStats.SeqComparisons {
			t.Fatalf("par=%d: engine performed %d comparisons but charged %d — the ordered two-pass must be redundancy-free",
				par, gotStats.Comparisons, gotStats.SeqComparisons)
		}
	}
}

func TestScreenBatchedParityClustered(t *testing.T) {
	for _, n := range []int{1, 2, 31, 32, 33, 511, 512, 513, 1300} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			assertScreenParity(t, clusteredVectors(int64(n), n, 24, 5, 0.02), 0.1)
		})
	}
}

func TestScreenBatchedParityUncorrelated(t *testing.T) {
	// Independent random spectra at a tight threshold: nearly every
	// candidate is admitted, maximizing intra-round resolve work.
	assertScreenParity(t, randVectors(7, 900, 12), 0.02)
}

func TestScreenBatchedParityZeroVectors(t *testing.T) {
	vectors := withZeroRuns(clusteredVectors(3, 700, 16, 4, 0.03), 16, 90, 7)
	assertScreenParity(t, vectors, 0.1)
	// All-zero input: dropout-only imagery collapses to one member.
	zeros := make([]linalg.Vector, 600)
	for i := range zeros {
		zeros[i] = make(linalg.Vector, 16)
	}
	assertScreenParity(t, zeros, 0.05)
}

func TestScreenBatchedParityThresholds(t *testing.T) {
	vectors := clusteredVectors(11, 650, 8, 3, 0.05)
	for _, threshold := range []float64{0.001, DefaultThreshold, math.Pi / 2, math.Pi} {
		t.Run(fmt.Sprintf("threshold=%g", threshold), func(t *testing.T) {
			assertScreenParity(t, vectors, threshold)
		})
	}
}

func TestScreenBatchedEmptyAndErrors(t *testing.T) {
	u, st, err := ScreenBatched(nil, 0.1, 0)
	if err != nil || u.Len() != 0 || st != (Stats{}) {
		t.Fatalf("empty input: %v %v %+v", u, err, st)
	}
	if _, _, err := ScreenBatched(randVectors(1, 3, 4), -2, 0); err == nil {
		t.Fatal("bad threshold accepted")
	}
	if _, _, err := ScreenBatched(randVectors(1, 3, 4), math.NaN(), 0); err == nil {
		t.Fatal("NaN threshold accepted")
	}
}

// TestZeroVectorsCollapseToOneMember pins the satellite fix: identical
// zero vectors cover each other, so N dead-detector pixels yield exactly
// one unique-set member instead of N (which made screening quadratic on
// dropout-heavy imagery).
func TestZeroVectorsCollapseToOneMember(t *testing.T) {
	for _, screen := range []struct {
		name string
		run  func([]linalg.Vector, float64) (*UniqueSet, Stats, error)
	}{
		{"Screen", func(vs []linalg.Vector, th float64) (*UniqueSet, Stats, error) { return Screen(vs, th) }},
		{"ScreenBatched", func(vs []linalg.Vector, th float64) (*UniqueSet, Stats, error) {
			return ScreenBatched(vs, th, 2)
		}},
	} {
		t.Run(screen.name, func(t *testing.T) {
			vectors := make([]linalg.Vector, 50)
			for i := range vectors {
				vectors[i] = make(linalg.Vector, 8)
			}
			vectors = append(vectors, linalg.Vector{1, 2, 3, 4, 5, 6, 7, 8})
			u, _, err := screen.run(vectors, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if u.Len() != 2 {
				t.Fatalf("unique set size %d, want 2 (one zero member, one signal member)", u.Len())
			}
			if !u.Covers(make(linalg.Vector, 8)) {
				t.Fatal("zero vector not covered by the zero member")
			}
		})
	}
	// The convention stays threshold-independent for the mixed case:
	// zero vs non-zero is still π/2.
	u, _ := NewUniqueSet(0.1)
	u.Insert(make(linalg.Vector, 4))
	if u.Covers(linalg.Vector{1, 0, 0, 0}) {
		t.Fatal("non-zero vector covered by zero member at threshold 0.1")
	}
}
