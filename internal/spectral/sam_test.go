package spectral

import (
	"errors"
	"testing"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
)

func TestNewSAMValidation(t *testing.T) {
	if _, err := NewSAM([]string{"a"}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewSAM(nil, nil); !errors.Is(err, ErrEmptyLibrary) {
		t.Fatalf("empty library err = %v", err)
	}
}

func TestClassifyPicksNearest(t *testing.T) {
	s, err := NewSAM(
		[]string{"x", "y"},
		[]linalg.Vector{{1, 0}, {0, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	idx, angle := s.Classify(linalg.Vector{10, 1})
	if idx != 0 {
		t.Fatalf("Classify -> %s", s.Labels[idx])
	}
	if angle <= 0 || angle > 0.2 {
		t.Fatalf("angle = %g", angle)
	}
	idx, _ = s.Classify(linalg.Vector{0.1, 5})
	if idx != 1 {
		t.Fatal("Classify missed y")
	}
}

func TestClassifyZeroVector(t *testing.T) {
	s, _ := NewSAM([]string{"x"}, []linalg.Vector{{1, 0}})
	_, angle := s.Classify(linalg.Vector{0, 0})
	if angle <= 0 {
		t.Fatalf("zero pixel angle = %g", angle)
	}
	// Package-wide zero convention: a zero pixel matches an all-zero
	// "no-data" signature at angle 0 (identical), not π/2.
	s2, _ := NewSAM([]string{"x", "nodata"}, []linalg.Vector{{1, 0}, {0, 0}})
	idx, angle := s2.Classify(linalg.Vector{0, 0})
	if idx != 1 || angle != 0 {
		t.Fatalf("zero pixel vs zero signature: idx=%d angle=%g, want 1, 0", idx, angle)
	}
}

func TestMaterialSAMOnSyntheticScene(t *testing.T) {
	scene, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 48, Height: 48, Bands: 48, Seed: 9,
		NoiseSigma: 3, Illumination: 0.08,
		OpenVehicles: 1, CamouflagedVehicles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sam, err := MaterialSAM(scene.Cube.Wavelengths)
	if err != nil {
		t.Fatal(err)
	}
	labels, angles := sam.ClassifyCube(scene.Cube)
	if len(labels) != scene.Cube.Pixels() || len(angles) != scene.Cube.Pixels() {
		t.Fatal("label map size mismatch")
	}
	// SAM against the generating library should recover most pixels.
	// (Shadow pixels classify as forest — SAM is illumination-invariant
	// by construction, which is exactly why shadow≈forest in angle.)
	correct, total := 0, 0
	for i, lab := range labels {
		truth := scene.Truth[i]
		if truth == hsi.MaterialShadow {
			continue
		}
		total++
		if sam.Labels[lab] == truth.String() {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.80 {
		t.Fatalf("SAM accuracy %.2f too low on clean synthetic data", acc)
	}
}

func TestShadowClassifiesAsForest(t *testing.T) {
	wl := hsi.DefaultWavelengths(64)
	sam, err := MaterialSAM(wl)
	if err != nil {
		t.Fatal(err)
	}
	shadowSig := hsi.SignatureFor(hsi.MaterialShadow, wl)
	idx, _ := sam.Classify(shadowSig)
	got := sam.Labels[idx]
	if got != "shadow" && got != "forest" {
		t.Fatalf("shadow classified as %s", got)
	}
}
