package spectral

import (
	"errors"
	"math"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
)

// SAM is a Spectral Angle Mapper classifier: it assigns each pixel to the
// library signature with the smallest spectral angle. The paper cites
// Kruse et al.'s SIPS system as the source of the spectral-angle concept;
// SAM here doubles as a post-processing step ("detect and classify the
// vehicles") and as validation for the synthetic scene generator.
type SAM struct {
	Labels     []string
	Signatures []linalg.Vector
	norms      []float64
}

// ErrEmptyLibrary is returned when classifying with no signatures.
var ErrEmptyLibrary = errors.New("spectral: SAM library is empty")

// NewSAM builds a classifier from parallel label/signature slices.
func NewSAM(labels []string, signatures []linalg.Vector) (*SAM, error) {
	if len(labels) != len(signatures) {
		return nil, errors.New("spectral: labels and signatures length mismatch")
	}
	if len(signatures) == 0 {
		return nil, ErrEmptyLibrary
	}
	s := &SAM{Labels: labels, Signatures: signatures, norms: make([]float64, len(signatures))}
	for i, sig := range signatures {
		s.norms[i] = sig.Norm()
	}
	return s, nil
}

// Classify returns the index of the closest signature and the angle to it.
func (s *SAM) Classify(v linalg.Vector) (int, float64) {
	nv := v.Norm()
	best, bestAngle := 0, math.Inf(1)
	for i, sig := range s.Signatures {
		a, degenerate := zeroAngle(nv, s.norms[i])
		if !degenerate {
			c := v.Dot(sig) / (nv * s.norms[i])
			if c > 1 {
				c = 1
			} else if c < -1 {
				c = -1
			}
			a = math.Acos(c)
		}
		if a < bestAngle {
			best, bestAngle = i, a
		}
	}
	return best, bestAngle
}

// ClassifyCube labels every pixel of the cube, returning a row-major label
// map and the per-pixel angles.
func (s *SAM) ClassifyCube(c *hsi.Cube) ([]int, []float64) {
	labels := make([]int, c.Pixels())
	angles := make([]float64, c.Pixels())
	buf := make(linalg.Vector, c.Bands)
	for i := 0; i < c.Pixels(); i++ {
		c.PixelAt(i, buf)
		labels[i], angles[i] = s.Classify(buf)
	}
	return labels, angles
}

// MaterialSAM builds a SAM classifier from the synthetic material library
// sampled at the cube's wavelengths.
func MaterialSAM(wavelengths []float64) (*SAM, error) {
	mats := hsi.Materials()
	labels := make([]string, len(mats))
	sigs := make([]linalg.Vector, len(mats))
	for i, m := range mats {
		labels[i] = m.String()
		sigs[i] = hsi.SignatureFor(m, wavelengths)
	}
	return NewSAM(labels, sigs)
}
