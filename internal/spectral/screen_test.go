package spectral

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"resilientfusion/internal/linalg"
)

func randVectors(seed int64, count, dim int) []linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]linalg.Vector, count)
	for i := range out {
		v := make(linalg.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 1000
		}
		out[i] = v
	}
	return out
}

func TestNewUniqueSetValidation(t *testing.T) {
	if _, err := NewUniqueSet(-1); !errors.Is(err, ErrBadThreshold) {
		t.Fatalf("negative threshold err = %v", err)
	}
	if _, err := NewUniqueSet(4); !errors.Is(err, ErrBadThreshold) {
		t.Fatalf("threshold > pi err = %v", err)
	}
	u, err := NewUniqueSet(0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Threshold != DefaultThreshold {
		t.Fatalf("default threshold = %g", u.Threshold)
	}
}

func TestInsertDeduplicates(t *testing.T) {
	u, _ := NewUniqueSet(0.1)
	a := linalg.Vector{1, 0, 0}
	added, cmp := u.Insert(a)
	if !added || cmp != 0 {
		t.Fatalf("first insert: added=%v cmp=%d", added, cmp)
	}
	// A scaled copy has angle 0 — must be screened out.
	added, cmp = u.Insert(linalg.Vector{5, 0, 0})
	if added || cmp != 1 {
		t.Fatalf("duplicate insert: added=%v cmp=%d", added, cmp)
	}
	// An orthogonal vector must be admitted.
	added, _ = u.Insert(linalg.Vector{0, 1, 0})
	if !added {
		t.Fatal("orthogonal vector rejected")
	}
	if u.Len() != 2 {
		t.Fatalf("Len = %d", u.Len())
	}
}

func TestScreenInvariants(t *testing.T) {
	vectors := randVectors(1, 300, 8)
	u, st, err := Screen(vectors, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 300 {
		t.Fatalf("Scanned = %d", st.Scanned)
	}
	if st.Comparisons == 0 {
		t.Fatal("no comparisons recorded")
	}
	if u.Len() == 0 || u.Len() > 300 {
		t.Fatalf("unique set size %d", u.Len())
	}
	// Invariant 1: members pairwise farther than the threshold.
	if min := u.MinPairwiseAngle(); u.Len() > 1 && min <= u.Threshold {
		t.Fatalf("min pairwise angle %g <= threshold %g", min, u.Threshold)
	}
	// Invariant 2: every input vector is covered by the set.
	for i, v := range vectors {
		if !u.Covers(v) {
			t.Fatalf("vector %d not covered", i)
		}
	}
}

func TestScreenReducesCorrelatedData(t *testing.T) {
	// 500 noisy copies of 3 base spectra must collapse to ~3 members.
	rng := rand.New(rand.NewSource(2))
	bases := randVectors(3, 3, 16)
	var vectors []linalg.Vector
	for i := 0; i < 500; i++ {
		b := bases[i%3]
		v := b.Clone()
		for j := range v {
			v[j] *= 1 + rng.NormFloat64()*0.002
		}
		vectors = append(vectors, v)
	}
	u, _, err := Screen(vectors, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() > 6 {
		t.Fatalf("unique set size %d for 3-cluster data", u.Len())
	}
}

func TestScreenPreservesRareSignature(t *testing.T) {
	// One rare orthogonal target among many background copies must
	// survive screening — the whole point of the algorithm.
	background := linalg.Vector{1, 1, 0, 0}
	target := linalg.Vector{0, 0, 1, 0}
	var vectors []linalg.Vector
	for i := 0; i < 200; i++ {
		vectors = append(vectors, background.Clone())
	}
	vectors = append(vectors, target)
	u, _, err := Screen(vectors, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Fatalf("unique set size %d, want 2", u.Len())
	}
	if !u.Covers(target) {
		t.Fatal("target not covered")
	}
}

func TestScreenThresholdError(t *testing.T) {
	if _, _, err := Screen(nil, -3); !errors.Is(err, ErrBadThreshold) {
		t.Fatalf("err = %v", err)
	}
}

func TestMergeEquivalentToGlobalScreen(t *testing.T) {
	// Merging per-part unique sets must cover everything the global
	// screen covers, and obey the pairwise invariant.
	vectors := randVectors(4, 400, 8)
	const th = 0.12
	parts := make([]*UniqueSet, 4)
	for p := 0; p < 4; p++ {
		u, _, err := Screen(vectors[p*100:(p+1)*100], th)
		if err != nil {
			t.Fatal(err)
		}
		parts[p] = u
	}
	merged, st, err := Merge(parts, th)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned == 0 {
		t.Fatal("merge scanned nothing")
	}
	if merged.Len() > 1 && merged.MinPairwiseAngle() <= th {
		t.Fatal("merged set violates pairwise invariant")
	}
	for i, v := range vectors {
		if !merged.Covers(v) {
			t.Fatalf("vector %d not covered by merged set", i)
		}
	}
	// Deterministic: same inputs, same result.
	merged2, _, _ := Merge(parts, th)
	if merged2.Len() != merged.Len() {
		t.Fatal("merge not deterministic")
	}
}

func TestMergeSkipsNil(t *testing.T) {
	u, _, err := Screen(randVectors(5, 10, 4), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err := Merge([]*UniqueSet{nil, u, nil}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() == 0 {
		t.Fatal("merge dropped members")
	}
}

func TestZeroVectorHandling(t *testing.T) {
	u, _ := NewUniqueSet(0.1)
	added, _ := u.Insert(linalg.Vector{0, 0, 0})
	if !added {
		t.Fatal("zero vector should be admitted to an empty set")
	}
	// Zero vs anything is π/2 > threshold, so a normal vector is added too.
	added, _ = u.Insert(linalg.Vector{1, 2, 3})
	if !added {
		t.Fatal("vector rejected against zero member")
	}
	// A second zero vector is identical to the zero member (angle 0):
	// covered, so dead-detector pixels collapse to one member.
	added, _ = u.Insert(linalg.Vector{0, 0, 0})
	if added {
		t.Fatal("duplicate zero vector admitted")
	}
	if u.MinPairwiseAngle() < 0 {
		t.Fatal("angle must be non-negative")
	}
}

func TestMinPairwiseAngleSmallSets(t *testing.T) {
	u, _ := NewUniqueSet(0.1)
	if got := u.MinPairwiseAngle(); got != math.Pi {
		t.Fatalf("empty set angle = %g", got)
	}
	u.Insert(linalg.Vector{1, 0})
	if got := u.MinPairwiseAngle(); got != math.Pi {
		t.Fatalf("singleton angle = %g", got)
	}
}

// TestCosineCompareMatchesAcos checks that the screening fast path (direct
// cosine comparison in withinCached) reaches the same membership decisions
// as the inverse-trigonometric reference it replaced.
func TestCosineCompareMatchesAcos(t *testing.T) {
	vectors := randVectors(17, 400, 24)
	for _, threshold := range []float64{0.02, DefaultThreshold, 0.5, 2.5, math.Pi} {
		u, _, err := Screen(vectors, threshold)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewUniqueSet(threshold)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vectors {
			nv := v.Norm()
			covered := false
			for i := range ref.Members {
				if ref.angleCached(v, nv, i) <= ref.Threshold {
					covered = true
					break
				}
			}
			if !covered {
				ref.Members = append(ref.Members, v)
				ref.norms = append(ref.norms, nv)
			}
		}
		if len(u.Members) != len(ref.Members) {
			t.Fatalf("threshold %g: fast path kept %d members, acos reference %d",
				threshold, len(u.Members), len(ref.Members))
		}
		for i := range u.Members {
			for j := range u.Members[i] {
				if u.Members[i][j] != ref.Members[i][j] {
					t.Fatalf("threshold %g: member %d differs from reference", threshold, i)
				}
			}
		}
		// Covers must agree with the screening decision for every input.
		for _, v := range vectors {
			if !u.Covers(v) {
				t.Fatalf("threshold %g: screened input not covered by its unique set", threshold)
			}
		}
	}
}

// TestCoversZeroNormThresholds pins the zero-vector convention (angle π/2)
// through the cosine fast path.
func TestCoversZeroNormThresholds(t *testing.T) {
	u, err := NewUniqueSet(0.1)
	if err != nil {
		t.Fatal(err)
	}
	u.Insert(linalg.Vector{1, 0})
	if u.Covers(linalg.Vector{0, 0}) {
		t.Fatal("zero vector covered at threshold 0.1")
	}
	wide, err := NewUniqueSet(math.Pi / 2)
	if err != nil {
		t.Fatal(err)
	}
	wide.Insert(linalg.Vector{1, 0})
	if !wide.Covers(linalg.Vector{0, 0}) {
		t.Fatal("zero vector not covered at threshold π/2")
	}
}

// TestNaNThresholdRejected pins the NaN guard: a NaN threshold would
// otherwise pass both range comparisons and disable screening entirely.
func TestNaNThresholdRejected(t *testing.T) {
	if _, err := NewUniqueSet(math.NaN()); !errors.Is(err, ErrBadThreshold) {
		t.Fatalf("NaN threshold err = %v", err)
	}
	if _, _, err := Screen(randVectors(1, 4, 4), math.NaN()); !errors.Is(err, ErrBadThreshold) {
		t.Fatalf("Screen with NaN threshold err = %v", err)
	}
}

// The screening cosine threshold is cached on the set: eagerly by
// NewUniqueSet, lazily for bare-literal sets (the manager's merge
// inputs), so Insert/Covers never pay a trig call per candidate.
func TestCosineThresholdCached(t *testing.T) {
	u, err := NewUniqueSet(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !u.cosValid || u.cosThr != math.Cos(0.25) {
		t.Fatalf("NewUniqueSet did not cache cos: valid=%v cos=%g", u.cosValid, u.cosThr)
	}
	// Bare literal: first use fills the cache and screening still works.
	lit := &UniqueSet{Threshold: 0.3, Members: []linalg.Vector{{1, 0}}}
	lit.norms = []float64{1}
	if !lit.Covers(linalg.Vector{1, 0.01}) {
		t.Fatal("literal set does not cover a near-duplicate")
	}
	if !lit.cosValid || lit.cosThr != math.Cos(0.3) {
		t.Fatal("lazy cosine cache not filled on first use")
	}
}

// Move-to-front inserts must prepend to the probe order in place:
// amortized slice growth only, never a fresh O(K) allocation per added
// member (which made merge allocation volume quadratic).
func TestMoveToFrontPrependInPlace(t *testing.T) {
	u, err := NewUniqueSet(0.05)
	if err != nil {
		t.Fatal(err)
	}
	u.MoveToFront = true
	// Mutually orthogonal members (angle π/2 ≫ threshold): every insert adds.
	const n = 64
	vectors := make([]linalg.Vector, n)
	for i := range vectors {
		v := make(linalg.Vector, n)
		v[i] = 1
		vectors[i] = v
	}
	// Pre-reserve capacity so the adds below measure the prepend logic,
	// not append's occasional growth.
	u.Members = make([]linalg.Vector, 0, n)
	u.norms = make([]float64, 0, n)
	u.scan = make([]int, 0, n)
	for i, v := range vectors {
		before := cap(u.scan)
		added, _ := u.Insert(v)
		if !added {
			t.Fatalf("vector %d not added", i)
		}
		if cap(u.scan) != before {
			t.Fatalf("insert %d reallocated the probe order (cap %d → %d)", i, before, cap(u.scan))
		}
	}
	// Probe order is newest-first after pure adds.
	for i, idx := range u.scan {
		if idx != n-1-i {
			t.Fatalf("scan[%d] = %d, want %d", i, idx, n-1-i)
		}
	}
	// Membership decisions unchanged: a duplicate of member 0 is covered
	// and promoted without allocating at all.
	dup := vectors[0].Clone()
	allocs := testing.AllocsPerRun(20, func() {
		if added, _ := u.Insert(dup); added {
			t.Fatal("duplicate added")
		}
	})
	if allocs != 0 {
		t.Fatalf("duplicate insert allocates %.1f times", allocs)
	}
	if u.scan[0] != 0 {
		t.Fatalf("hit not promoted: scan[0] = %d", u.scan[0])
	}
}
