// Package perfmodel holds the operation-count cost formulas that the
// distributed fusion pipeline charges to the simulated cluster. Costs are
// functions of the *actual* data (screening comparison counts, unique-set
// sizes, pixel counts), not curve fits, so the performance figures emerge
// from algorithm behaviour rather than being baked in.
package perfmodel

import (
	"resilientfusion/internal/spectral"
)

// Model contains the per-operation flop weights.
type Model struct {
	// AcosFlops is the cost of one arccosine evaluation (range reduction
	// + polynomial) in flops.
	AcosFlops float64
	// CompareOverheadFlops is the fixed per-comparison implementation
	// overhead of the 1999 pipeline (per-pair function dispatch, strided
	// loads, no vectorization, interpreted Mathweb glue around the
	// kernels). The paper's absolute times imply a large constant that
	// cannot be recovered from the text; this single scalar is
	// calibrated so the sequential time reproduces the paper's reported
	// magnitude (≈350 s at P=2 for the 320×320×105 cube). Every claim
	// we reproduce is a ratio and is insensitive to it (see
	// EXPERIMENTS.md).
	CompareOverheadFlops float64
	// PixelOverheadFlops is the same implementation constant for the
	// per-pixel transform loop of step 7.
	PixelOverheadFlops float64
	// EigenFlopsPerN3 is the constant c in c·n³ for the tridiagonal-QL
	// eigendecomposition of an n×n symmetric matrix.
	EigenFlopsPerN3 float64
	// ColorMapFlopsPerPixel covers the 3 stretches, 3×3 opponent
	// transform and clamps of algorithm step 8.
	ColorMapFlopsPerPixel float64
}

// Default returns the calibrated model. Weights follow the obvious
// operation counts; see EXPERIMENTS.md for the calibration discussion.
func Default() Model {
	return Model{
		AcosFlops:             20,
		CompareOverheadFlops:  8000,
		PixelOverheadFlops:    500,
		EigenFlopsPerN3:       9,
		ColorMapFlopsPerPixel: 40,
	}
}

// EffectiveWorkstationRate is the sustained flop rate charged per
// cluster node. The paper's machines are 300 MHz UltraSPARC-class
// workstations; dense pixel-vector code of the era sustained a few
// percent of peak (strided access, no blocking, interpreted glue around
// the kernels in the authors' Mathweb suite), so the *effective* rate is
// calibrated to 12 MFLOPS, which reproduces the magnitude of the paper's
// reported times (hundreds of seconds at small P for a 320×320×105 cube).
// Only ratios matter for every claim we reproduce.
const EffectiveWorkstationRate = 12e6

// ScreenFlops is the cost of a screening pass: one norm per scanned
// vector plus a dot product, an arccosine and the implementation
// overhead per comparison (algorithm step 1, and the manager's merge in
// step 2). The comparison term is charged from the sequential-equivalent
// count (Stats.SeqComparisons), not the engine's actual count: the model
// prices the paper's sequential 1999 kernel, so a modern engine that
// parallelizes or reorders its comparisons changes wall clock without
// perturbing modeled virtual time.
func (m Model) ScreenFlops(st spectral.Stats, bands int) float64 {
	n := float64(bands)
	return float64(st.Scanned)*2*n + float64(st.SeqComparisons)*(2*n+m.AcosFlops+m.CompareOverheadFlops)
}

// MeanFlops is the cost of the unique-set mean (step 3): K·n adds plus n
// divides.
func (m Model) MeanFlops(k, bands int) float64 {
	return float64(k)*float64(bands) + float64(bands)
}

// CovPartialFlops is a worker's cost for a covariance partial sum over k
// vectors (step 4): per vector an n-element subtraction and a rank-1
// update of n² multiply-adds.
func (m Model) CovPartialFlops(k, bands int) float64 {
	n := float64(bands)
	return float64(k) * (n + 2*n*n)
}

// CovCombineFlops is the manager's cost to average P partial matrices
// (step 5).
func (m Model) CovCombineFlops(parts, bands int) float64 {
	n := float64(bands)
	return float64(parts)*n*n + n*n
}

// EigenFlops is the manager's cost for the eigendecomposition (step 6).
func (m Model) EigenFlops(bands int) float64 {
	n := float64(bands)
	return m.EigenFlopsPerN3 * n * n * n
}

// TransformFlops is a worker's cost to project pixels onto comps
// components (step 7): per pixel an n-element mean subtraction plus
// comps dot products of 2n flops, plus the per-pixel implementation
// overhead.
func (m Model) TransformFlops(pixels, bands, comps int) float64 {
	n := float64(bands)
	return float64(pixels) * (n + 2*n*float64(comps) + m.PixelOverheadFlops)
}

// ColorMapFlops is a worker's cost for the color mapping of its portion
// (step 8).
func (m Model) ColorMapFlops(pixels int) float64 {
	return float64(pixels) * m.ColorMapFlopsPerPixel
}
