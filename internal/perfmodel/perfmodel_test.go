package perfmodel

import (
	"testing"

	"resilientfusion/internal/spectral"
)

func TestScreenFlopsScalesWithWork(t *testing.T) {
	m := Default()
	small := m.ScreenFlops(spectral.Stats{Comparisons: 10, SeqComparisons: 10, Scanned: 10}, 100)
	big := m.ScreenFlops(spectral.Stats{Comparisons: 1000, SeqComparisons: 1000, Scanned: 10}, 100)
	if big <= small {
		t.Fatal("more comparisons must cost more")
	}
	// A comparison costs a 2n dot product, an acos, and the calibrated
	// implementation overhead.
	one := m.ScreenFlops(spectral.Stats{Comparisons: 1, SeqComparisons: 1}, 100)
	if one != 2*100+m.AcosFlops+m.CompareOverheadFlops {
		t.Fatalf("single comparison = %g", one)
	}
	if m.ScreenFlops(spectral.Stats{}, 100) != 0 {
		t.Fatal("empty stats should cost nothing")
	}
	// The model prices the sequential reference: only the
	// sequential-equivalent counter is charged for comparisons, so an
	// engine's extra (or saved) actual comparisons leave virtual time
	// untouched.
	engine := m.ScreenFlops(spectral.Stats{Comparisons: 5000, SeqComparisons: 1000, Scanned: 10}, 100)
	if engine != big {
		t.Fatalf("engine overwork leaked into modeled cost: %g != %g", engine, big)
	}
}

func TestCovAndTransformFormulas(t *testing.T) {
	m := Default()
	// Covariance partial: k(n + 2n²).
	if got := m.CovPartialFlops(3, 10); got != 3*(10+200) {
		t.Fatalf("CovPartialFlops = %g", got)
	}
	if got := m.CovCombineFlops(4, 10); got != 4*100+100 {
		t.Fatalf("CovCombineFlops = %g", got)
	}
	// Transform: pixels(n + 2n·comps + overhead).
	if got := m.TransformFlops(5, 10, 3); got != 5*(10+60+m.PixelOverheadFlops) {
		t.Fatalf("TransformFlops = %g", got)
	}
	if got := m.ColorMapFlops(7); got != 7*m.ColorMapFlopsPerPixel {
		t.Fatalf("ColorMapFlops = %g", got)
	}
	if got := m.MeanFlops(100, 10); got != 1010 {
		t.Fatalf("MeanFlops = %g", got)
	}
}

func TestEigenCubic(t *testing.T) {
	m := Default()
	r := m.EigenFlops(210) / m.EigenFlops(105)
	if r < 7.9 || r > 8.1 {
		t.Fatalf("eigen cost ratio for 2x bands = %g, want 8", r)
	}
}

func TestEffectiveRatePositive(t *testing.T) {
	if EffectiveWorkstationRate <= 0 {
		t.Fatal("bad rate")
	}
}
