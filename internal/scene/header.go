// Package scene is the streaming scene layer between raster files on
// disk and the in-memory fusion pipeline. It reads and writes ENVI-style
// scenes — a raw sample file in BIL, BSQ or BIP band interleaving plus a
// text header — converting any interleaving into the hsi.Cube BIP layout
// one bounded row window at a time, and decomposes a scene into row-tile
// sub-problems that stream straight into the manager/worker protocol.
// A streamed fusion run over a scene is bit-identical to fusing the same
// cube loaded fully in memory (the tiler reuses hsi.Partition, and row
// windows decode to exactly the samples hsi.Extract would copy).
package scene

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Interleave is the on-disk band ordering of an ENVI scene.
type Interleave string

const (
	// BIP: band-interleaved-by-pixel — each pixel's spectrum contiguous
	// (the hsi.Cube memory layout).
	BIP Interleave = "bip"
	// BIL: band-interleaved-by-line — each image line stored as bands ×
	// samples runs.
	BIL Interleave = "bil"
	// BSQ: band-sequential — whole-image planes, one per band.
	BSQ Interleave = "bsq"
)

// DataType is the ENVI sample encoding code.
type DataType int

// The ENVI data type codes this package supports. HYDICE delivers 12-bit
// radiometry, so real headers are usually Int16/Uint16; Float32 is the
// lossless interchange type for cubes that have been through processing.
const (
	Uint8   DataType = 1
	Int16   DataType = 2
	Int32   DataType = 3
	Float32 DataType = 4
	Float64 DataType = 5
	Uint16  DataType = 12
)

// Size returns the sample width in bytes (0 for unsupported codes).
func (d DataType) Size() int {
	switch d {
	case Uint8:
		return 1
	case Int16, Uint16:
		return 2
	case Int32, Float32:
		return 4
	case Float64:
		return 8
	}
	return 0
}

// ErrHeader reports a malformed or unsupported ENVI header.
var ErrHeader = errors.New("scene: bad ENVI header")

// Header is the parsed ENVI text header: the scene geometry and sample
// encoding needed to address the raw data file.
type Header struct {
	Samples int // image width in pixels
	Lines   int // image height in pixels
	Bands   int
	// Offset is the "header offset": bytes to skip at the start of the
	// data file (embedded binary headers).
	Offset     int64
	Interleave Interleave
	DataType   DataType
	// BigEndian reflects "byte order = 1".
	BigEndian bool
	// Wavelengths (nanometres) is optional; when present its length must
	// equal Bands.
	Wavelengths []float64
	// Description is carried through verbatim (single line).
	Description string
}

// maxDim bounds each header dimension (mirroring the HSIC codec's
// guard): a 20-byte text header must not be able to claim dimensions
// whose product overflows int64 — an overflow-wrapped DataBytes would
// slip an absurd scene past every size limit downstream.
const maxDim = 1 << 20

// Validate checks the header describes an addressable scene.
func (h *Header) Validate() error {
	if h.Samples <= 0 || h.Lines <= 0 || h.Bands <= 0 ||
		h.Samples > maxDim || h.Lines > maxDim || h.Bands > maxDim {
		return fmt.Errorf("%w: dims %dx%dx%d", ErrHeader, h.Samples, h.Lines, h.Bands)
	}
	if h.Offset < 0 {
		return fmt.Errorf("%w: header offset %d", ErrHeader, h.Offset)
	}
	switch h.Interleave {
	case BIP, BIL, BSQ:
	default:
		return fmt.Errorf("%w: interleave %q", ErrHeader, h.Interleave)
	}
	if h.DataType.Size() == 0 {
		return fmt.Errorf("%w: unsupported data type %d", ErrHeader, int(h.DataType))
	}
	if h.Wavelengths != nil && len(h.Wavelengths) != h.Bands {
		return fmt.Errorf("%w: %d wavelengths for %d bands", ErrHeader, len(h.Wavelengths), h.Bands)
	}
	// The per-dimension caps keep this uint64 product exact (≤ 2^63);
	// bounding it keeps DataBytes well inside int64 for all callers.
	if u := uint64(h.Samples) * uint64(h.Lines) * uint64(h.Bands) * uint64(h.DataType.Size()); u > 1<<55 {
		return fmt.Errorf("%w: scene claims %d bytes", ErrHeader, u)
	}
	return nil
}

// DataBytes returns the exact raw payload size the header claims,
// excluding Offset. Validate bounds the product (≤ 2^55), so the
// arithmetic cannot overflow on a validated header — every reader entry
// point validates untrusted headers first.
func (h *Header) DataBytes() int64 {
	return int64(h.Samples) * int64(h.Lines) * int64(h.Bands) * int64(h.DataType.Size())
}

// Shape returns (width, height, bands).
func (h *Header) Shape() (int, int, int) { return h.Samples, h.Lines, h.Bands }

// ParseHeader parses ENVI header text. The first non-blank line must be
// the "ENVI" magic; the rest are "key = value" fields, where a value
// opening with "{" runs (possibly across lines) to the matching "}".
// Unknown keys are ignored, like real ENVI readers do.
func ParseHeader(text string) (*Header, error) {
	lines := strings.Split(text, "\n")
	i := 0
	for i < len(lines) && strings.TrimSpace(lines[i]) == "" {
		i++
	}
	if i >= len(lines) || strings.TrimSpace(lines[i]) != "ENVI" {
		return nil, fmt.Errorf("%w: missing ENVI magic", ErrHeader)
	}
	i++

	h := &Header{Interleave: BIP, DataType: Float32}
	seen := map[string]bool{}
	for ; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("%w: line %d: %q", ErrHeader, i+1, line)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		// Brace values may span lines; accumulate to the closing brace.
		if strings.HasPrefix(value, "{") {
			for !strings.Contains(value, "}") {
				i++
				if i >= len(lines) {
					return nil, fmt.Errorf("%w: unterminated { for %q", ErrHeader, key)
				}
				value += " " + strings.TrimSpace(lines[i])
			}
			value = strings.TrimSpace(value[1:strings.Index(value, "}")])
		}
		if seen[key] {
			return nil, fmt.Errorf("%w: duplicate field %q", ErrHeader, key)
		}
		seen[key] = true

		var err error
		switch key {
		case "samples":
			h.Samples, err = parseInt(key, value)
		case "lines":
			h.Lines, err = parseInt(key, value)
		case "bands":
			h.Bands, err = parseInt(key, value)
		case "header offset":
			var v int
			v, err = parseInt(key, value)
			h.Offset = int64(v)
		case "data type":
			var v int
			v, err = parseInt(key, value)
			h.DataType = DataType(v)
		case "interleave":
			h.Interleave = Interleave(strings.ToLower(value))
		case "byte order":
			var v int
			v, err = parseInt(key, value)
			if err == nil && v != 0 && v != 1 {
				err = fmt.Errorf("%w: byte order %d", ErrHeader, v)
			}
			h.BigEndian = v == 1
		case "wavelength":
			h.Wavelengths, err = parseFloatList(value)
		case "description":
			h.Description = value
		}
		if err != nil {
			return nil, err
		}
	}
	for _, req := range []string{"samples", "lines", "bands"} {
		if !seen[req] {
			return nil, fmt.Errorf("%w: missing %q", ErrHeader, req)
		}
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

func parseInt(key, value string) (int, error) {
	v, err := strconv.Atoi(value)
	if err != nil {
		return 0, fmt.Errorf("%w: %s %q", ErrHeader, key, value)
	}
	return v, nil
}

func parseFloatList(value string) ([]float64, error) {
	if strings.TrimSpace(value) == "" {
		return nil, nil
	}
	parts := strings.Split(value, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: wavelength %q", ErrHeader, p)
		}
		out = append(out, v)
	}
	return out, nil
}

// Marshal renders the header as ENVI text. Wavelengths use the shortest
// float64 representation, which round-trips bit-exactly through
// ParseHeader — a scene written by this package re-ingests with an
// identical header.
func (h *Header) Marshal() string {
	var b strings.Builder
	b.WriteString("ENVI\n")
	if h.Description != "" {
		fmt.Fprintf(&b, "description = {%s}\n", h.Description)
	}
	fmt.Fprintf(&b, "samples = %d\n", h.Samples)
	fmt.Fprintf(&b, "lines = %d\n", h.Lines)
	fmt.Fprintf(&b, "bands = %d\n", h.Bands)
	fmt.Fprintf(&b, "header offset = %d\n", h.Offset)
	b.WriteString("file type = ENVI Standard\n")
	fmt.Fprintf(&b, "data type = %d\n", int(h.DataType))
	fmt.Fprintf(&b, "interleave = %s\n", h.Interleave)
	order := 0
	if h.BigEndian {
		order = 1
	}
	fmt.Fprintf(&b, "byte order = %d\n", order)
	if h.Wavelengths != nil {
		b.WriteString("wavelength = {")
		for i, w := range h.Wavelengths {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.FormatFloat(w, 'g', -1, 64))
		}
		b.WriteString("}\n")
	}
	return b.String()
}
