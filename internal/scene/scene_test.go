package scene

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilientfusion/internal/hsi"
)

// testCube builds a deterministic cube with full float32 variety
// (negatives, fractions, exact zeros) so round-trips exercise real bits.
func testCube(t *testing.T, w, h, b int) *hsi.Cube {
	t.Helper()
	c := hsi.MustNewCube(w, h, b)
	c.Wavelengths = make([]float64, b)
	for i := range c.Wavelengths {
		c.Wavelengths[i] = 400 + 7.5*float64(i)
	}
	state := uint32(1)
	for i := range c.Data {
		state = state*1664525 + 1013904223
		c.Data[i] = float32(int32(state)) / (1 << 16)
	}
	c.Data[0] = 0
	return c
}

func writeScene(t *testing.T, c *hsi.Cube, il Interleave) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scene.raw")
	if err := Write(path, c, il); err != nil {
		t.Fatalf("Write(%s): %v", il, err)
	}
	return path
}

func TestRoundTripAllInterleaves(t *testing.T) {
	c := testCube(t, 13, 9, 5)
	for _, il := range []Interleave{BIP, BIL, BSQ} {
		t.Run(string(il), func(t *testing.T) {
			path := writeScene(t, c, il)
			r, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if w, h, b := r.Shape(); w != 13 || h != 9 || b != 5 {
				t.Fatalf("shape %dx%dx%d", w, h, b)
			}
			got, err := r.ReadCube()
			if err != nil {
				t.Fatal(err)
			}
			if !bitEqual(got, c) {
				t.Fatal("round-trip not bit-identical")
			}
			if len(got.Wavelengths) != 5 || got.Wavelengths[4] != c.Wavelengths[4] {
				t.Fatalf("wavelengths not carried: %v", got.Wavelengths)
			}
		})
	}
}

// Opening by header path must resolve the same scene as the data path.
func TestOpenByHeaderPath(t *testing.T) {
	c := testCube(t, 4, 3, 2)
	path := writeScene(t, c, BIL)
	r, err := Open(path + ".hdr")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadCube()
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(got, c) {
		t.Fatal("header-path open differs")
	}
}

// Every row window of every interleave must decode to exactly the rows
// hsi.Extract copies from the in-memory cube — the property that makes
// streamed fusion bit-identical (including single-row tiles).
func TestReadRowsMatchesExtract(t *testing.T) {
	c := testCube(t, 17, 11, 7)
	for _, il := range []Interleave{BIP, BIL, BSQ} {
		path := writeScene(t, c, il)
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, parts := range []int{1, 3, 11} { // 11 parts = single-row tiles
			tiler := NewTiler(r)
			for _, rr := range tiler.Tiles(parts) {
				tile, err := tiler.Tile(rr)
				if err != nil {
					t.Fatalf("%s %v: %v", il, rr, err)
				}
				want, err := hsi.Extract(c, rr)
				if err != nil {
					t.Fatal(err)
				}
				if !bitEqual(tile, want.Cube) {
					t.Fatalf("%s %v: tile differs from extract", il, rr)
				}
			}
		}
		r.Close()
	}
}

func TestEmptyAndBadRowRanges(t *testing.T) {
	c := testCube(t, 5, 4, 3)
	r, err := Open(writeScene(t, c, BIP))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	empty, err := r.ReadRows(2, 2)
	if err != nil || empty.Height != 0 {
		t.Fatalf("empty range: %v %v", empty, err)
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 5}, {3, 1}} {
		if _, err := r.ReadRows(bad[0], bad[1]); err == nil {
			t.Fatalf("ReadRows(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

// The streamed digest must equal the digest of the fully-loaded cube —
// the property that lets a scene fuse share result-cache entries with an
// in-memory upload of the same samples.
func TestDigestMatchesCubeDigest(t *testing.T) {
	c := testCube(t, 12, 10, 6)
	want, err := c.Digest()
	if err != nil {
		t.Fatal(err)
	}
	for _, il := range []Interleave{BIP, BIL, BSQ} {
		r, err := Open(writeScene(t, c, il))
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Digest()
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: digest %s != cube digest %s", il, got, want)
		}
	}
}

func TestHeaderMarshalParseRoundTrip(t *testing.T) {
	h := Header{
		Samples: 320, Lines: 320, Bands: 3,
		Interleave: BIL, DataType: Float32,
		Wavelengths: []float64{397.31, 400, 1998.004},
		Description: "HYDICE-like synthetic scene",
	}
	got, err := ParseHeader(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples != h.Samples || got.Lines != h.Lines || got.Bands != h.Bands ||
		got.Interleave != h.Interleave || got.DataType != h.DataType || got.BigEndian != h.BigEndian {
		t.Fatalf("round-trip header %+v", got)
	}
	for i, w := range h.Wavelengths {
		if got.Wavelengths[i] != w {
			t.Fatalf("wavelength %d: %v != %v", i, got.Wavelengths[i], w)
		}
	}
	if got.Description != h.Description {
		t.Fatalf("description %q", got.Description)
	}
}

// Astronomic dimensions must be rejected before DataBytes can overflow
// int64 — an overflow-wrapped claim of 0 bytes would waltz past every
// downstream size limit and then demand terabyte allocations.
func TestHeaderOverflowRejected(t *testing.T) {
	for _, dims := range [][3]string{
		{"8589934592", "2147483648", "1"}, // product wraps int64 to 0
		{"1048577", "4", "4"},             // just past the per-dim cap
		{"1048576", "1048576", "1048576"}, // per-dim legal, product 2^63
	} {
		text := "ENVI\nsamples = " + dims[0] + "\nlines = " + dims[1] + "\nbands = " + dims[2] + "\ndata type = 1\ninterleave = bip\n"
		if _, err := ParseHeader(text); !errors.Is(err, ErrHeader) {
			t.Errorf("dims %v: %v", dims, err)
		}
	}
	h := Header{Samples: 1 << 20, Lines: 1 << 20, Bands: 1 << 20, Interleave: BIP, DataType: Float64}
	if err := h.Validate(); !errors.Is(err, ErrHeader) {
		t.Errorf("2^63-byte claim validated: %v", err)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	base := "ENVI\nsamples = 4\nlines = 3\nbands = 2\ninterleave = bip\ndata type = 4\n"
	cases := map[string]string{
		"missing magic":       "samples = 4\nlines = 3\nbands = 2\n",
		"missing lines":       "ENVI\nsamples = 4\nbands = 2\n",
		"zero samples":        "ENVI\nsamples = 0\nlines = 3\nbands = 2\n",
		"negative bands":      "ENVI\nsamples = 4\nlines = 3\nbands = -2\n",
		"bad interleave":      base + "interleave2 = bip\ninterleave = bif\n",
		"bad data type":       "ENVI\nsamples = 4\nlines = 3\nbands = 2\ndata type = 99\n",
		"bad byte order":      base + "byte order = 7\n",
		"duplicate field":     base + "samples = 5\n",
		"unterminated brace":  base + "wavelength = {400, 410\n",
		"bad wavelength":      base + "wavelength = {400, x}\n",
		"wavelength count":    base + "wavelength = {400}\n",
		"negative offset":     base + "header offset = -5\n",
		"garbage line":        base + "not a field\n",
		"non-numeric samples": "ENVI\nsamples = four\nlines = 3\nbands = 2\n",
	}
	for name, text := range cases {
		if _, err := ParseHeader(text); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrHeader) {
			t.Errorf("%s: error %v not ErrHeader", name, err)
		}
	}
}

// Headers with unknown fields, comments, multi-line brace values and odd
// spacing must still parse (tolerant ingestion of real-world headers).
func TestParseHeaderTolerance(t *testing.T) {
	text := "ENVI\n; produced by some tool\ndescription = {two\n  line value}\n" +
		"samples=6\n  lines  =  2 \nbands = 3\nfile type = ENVI Standard\n" +
		"data type = 2\ninterleave = BSQ\nbyte order = 1\nsensor type = HYDICE\n\n"
	h, err := ParseHeader(text)
	if err != nil {
		t.Fatal(err)
	}
	if h.Samples != 6 || h.Lines != 2 || h.Bands != 3 {
		t.Fatalf("dims %dx%dx%d", h.Samples, h.Lines, h.Bands)
	}
	if h.Interleave != BSQ || h.DataType != Int16 || !h.BigEndian {
		t.Fatalf("header %+v", h)
	}
	if h.Description != "two line value" {
		t.Fatalf("description %q", h.Description)
	}
}

// Truncated and oversized payloads must be rejected at open time, before
// any row is decoded.
func TestPayloadSizeMismatch(t *testing.T) {
	c := testCube(t, 6, 5, 4)
	path := writeScene(t, c, BIP)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("truncated: %v", err)
	}

	if err := os.WriteFile(path, append(data, 0, 0, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestOpenLimit(t *testing.T) {
	c := testCube(t, 6, 5, 4)
	path := writeScene(t, c, BIP)
	claimed := int64(6 * 5 * 4 * 4)
	if _, err := OpenLimit(path, claimed-1); !errors.Is(err, ErrSceneTooLarge) {
		t.Fatalf("under limit: %v", err)
	}
	r, err := OpenLimit(path, claimed)
	if err != nil {
		t.Fatalf("at limit: %v", err)
	}
	r.Close()
}

// Missing companion files are plain open errors, not panics.
func TestOpenMissing(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "nope.raw")); err == nil {
		t.Fatal("missing header accepted")
	}
	hdr := Header{Samples: 2, Lines: 2, Bands: 1, Interleave: BIP, DataType: Float32}
	path := filepath.Join(dir, "orphan.raw")
	if err := os.WriteFile(path+".hdr", []byte(hdr.Marshal()), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("missing data file accepted")
	}
}

// Integer sample types and big-endian byte order must decode to the
// expected float32 values in every interleave.
func TestIntegerSampleDecoding(t *testing.T) {
	// A 2x2x2 scene with distinct values per (pixel, band).
	vals := []int32{-7, 1000, 0, 2, 3, -32000, 40, 5} // BIP order
	for _, tc := range []struct {
		dtype DataType
		big   bool
	}{
		{Int16, false}, {Int16, true}, {Uint16, false}, {Int32, true}, {Uint8, false}, {Float64, true},
	} {
		for _, il := range []Interleave{BIP, BIL, BSQ} {
			h := Header{Samples: 2, Lines: 2, Bands: 2, Interleave: il, DataType: tc.dtype, BigEndian: tc.big}
			raw := encodeTestSamples(t, h, vals)
			dir := t.TempDir()
			path := filepath.Join(dir, "s.raw")
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path+".hdr", []byte(h.Marshal()), 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Open(path)
			if err != nil {
				t.Fatalf("%d/%s: %v", tc.dtype, il, err)
			}
			got, err := r.ReadCube()
			r.Close()
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range vals {
				want := clampFor(tc.dtype, v)
				if got.Data[i] != want {
					t.Fatalf("%d/%s big=%v: sample %d = %g, want %g", tc.dtype, il, tc.big, i, got.Data[i], want)
				}
			}
		}
	}
}

// encodeTestSamples lays out vals (given in BIP order for a 2x2x2 scene)
// in the header's interleave and sample encoding.
func encodeTestSamples(t *testing.T, h Header, vals []int32) []byte {
	t.Helper()
	W, L, B := h.Samples, h.Lines, h.Bands
	ordered := make([]int32, 0, len(vals))
	switch h.Interleave {
	case BIP:
		ordered = append(ordered, vals...)
	case BIL:
		for y := 0; y < L; y++ {
			for b := 0; b < B; b++ {
				for x := 0; x < W; x++ {
					ordered = append(ordered, vals[(y*W+x)*B+b])
				}
			}
		}
	case BSQ:
		for b := 0; b < B; b++ {
			for y := 0; y < L; y++ {
				for x := 0; x < W; x++ {
					ordered = append(ordered, vals[(y*W+x)*B+b])
				}
			}
		}
	}
	var buf bytes.Buffer
	for _, v := range ordered {
		v = int32(clampFor(h.DataType, v))
		var word uint64
		switch h.DataType {
		case Uint8:
			buf.WriteByte(byte(v))
			continue
		case Int16:
			word = uint64(uint16(int16(v)))
		case Uint16:
			word = uint64(uint16(v))
		case Int32:
			word = uint64(uint32(v))
		case Float64:
			word = math.Float64bits(float64(v))
		default:
			t.Fatalf("unhandled dtype %d", h.DataType)
		}
		n := h.DataType.Size()
		b := make([]byte, n)
		for i := 0; i < n; i++ {
			shift := 8 * i
			if h.BigEndian {
				shift = 8 * (n - 1 - i)
			}
			b[i] = byte(word >> shift)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

// clampFor maps a test value into the representable range of the type.
func clampFor(d DataType, v int32) float32 {
	switch d {
	case Uint8:
		if v < 0 {
			return float32(uint8(v))
		}
		return float32(uint8(v % 256))
	case Uint16:
		return float32(uint16(v))
	}
	return float32(v)
}

// Streaming writes in arbitrary slab sizes must equal the one-shot write.
func TestStreamingWriterSlabs(t *testing.T) {
	c := testCube(t, 10, 8, 3)
	for _, il := range []Interleave{BIP, BIL, BSQ} {
		dir := t.TempDir()
		path := filepath.Join(dir, "s.raw")
		h := Header{Samples: 10, Lines: 8, Bands: 3, Interleave: il, DataType: Float32, Wavelengths: c.Wavelengths}
		w, err := NewWriter(path, h)
		if err != nil {
			t.Fatal(err)
		}
		for y := 0; y < 8; {
			rows := 1 + y%3
			if y+rows > 8 {
				rows = 8 - y
			}
			slab, err := hsi.Extract(c, hsi.RowRange{Y0: y, Y1: y + rows})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.WriteRows(slab.Cube); err != nil {
				t.Fatal(err)
			}
			y += rows
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		oneShot := writeScene(t, c, il)
		a, _ := os.ReadFile(path)
		b, _ := os.ReadFile(oneShot)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: streamed bytes differ from one-shot", il)
		}
	}
}

func TestWriterErrors(t *testing.T) {
	dir := t.TempDir()
	h := Header{Samples: 4, Lines: 4, Bands: 2, Interleave: BIP, DataType: Int16}
	if _, err := NewWriter(filepath.Join(dir, "a"), h); err == nil {
		t.Fatal("non-float32 writer accepted")
	}
	h.DataType = Float32
	w, err := NewWriter(filepath.Join(dir, "b"), h)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRows(hsi.MustNewCube(3, 1, 2)); err == nil {
		t.Fatal("mismatched slab width accepted")
	}
	if err := w.WriteRows(hsi.MustNewCube(4, 5, 2)); err == nil {
		t.Fatal("slab past the last line accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("short close accepted")
	}
}

// A header whose geometry disagrees with its own wavelength table (shape
// mismatch at validation, distinct from payload-size mismatch).
func TestHeaderShapeMismatch(t *testing.T) {
	h := Header{Samples: 4, Lines: 4, Bands: 3, Interleave: BIP, DataType: Float32,
		Wavelengths: []float64{400, 500}}
	if err := h.Validate(); err == nil || !errors.Is(err, ErrHeader) {
		t.Fatalf("wavelength/bands mismatch: %v", err)
	}
	if _, err := NewReader(h, "/nonexistent"); err == nil {
		t.Fatal("NewReader accepted invalid header")
	}
}

func bitEqual(a, b *hsi.Cube) bool {
	if a.Width != b.Width || a.Height != b.Height || a.Bands != b.Bands || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// Guard against the header parser accepting trailing junk after the
// brace list (silent wavelength truncation).
func TestBraceValueStopsAtClose(t *testing.T) {
	text := "ENVI\nsamples = 2\nlines = 2\nbands = 2\ninterleave = bip\ndata type = 4\n" +
		"wavelength = {400, 500} trailing\n"
	h, err := ParseHeader(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Wavelengths) != 2 || h.Wavelengths[1] != 500 {
		t.Fatalf("wavelengths %v", h.Wavelengths)
	}
	if !strings.Contains(h.Marshal(), "wavelength = {400, 500}") {
		t.Fatalf("marshal: %s", h.Marshal())
	}
}
