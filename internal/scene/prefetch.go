package scene

import (
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
)

// PrefetchTiler wraps a Tiler with one-tile read-ahead: while the
// manager encodes and ships the tile it just received, a background
// goroutine already decodes the next row-window off disk, overlapping
// disk latency with wire work (the scene-layer analogue of the paper's
// worker-side prefetch). The read-ahead is double-buffered — at most one
// tile in flight — so the working set grows by exactly one tile.
//
// Prediction follows the decomposition the manager derives from the
// scene's shape: after serving ranges[i] the successor ranges[i+1] is
// prefetched. Requests outside the predicted sequence (transform-phase
// cache misses, reissues) fall back to a synchronous read after the
// in-flight tile is drained, so any request order returns exactly the
// bytes the wrapped Tiler would — streamed output stays bit-identical to
// the sequential reader (see TestPrefetchTilerParity).
//
// Like the Tiler it wraps, a PrefetchTiler is single-goroutine on the
// caller's side: Tile and Drain must come from one thread (the fusion
// manager). The background read is internally serialized with those
// calls, so the underlying Reader's scratch buffer is never shared.
type PrefetchTiler struct {
	t       *Tiler
	ranges  []hsi.RowRange
	pending *pendingTile

	// OnRead, when set, observes every Tile call with whether the
	// in-flight read-ahead satisfied it. Set it before the first Tile;
	// it runs on the caller's goroutine, outside any locking.
	OnRead func(prefetchHit bool)
}

type pendingTile struct {
	rr hsi.RowRange
	ch chan tileResult
}

type tileResult struct {
	cube *hsi.Cube
	err  error
}

// NewPrefetchTiler wraps t with read-ahead over the given decomposition
// (the same hsi.Partition the manager will derive). An empty ranges
// slice disables prediction: every read is synchronous.
func NewPrefetchTiler(t *Tiler, ranges []hsi.RowRange) *PrefetchTiler {
	return &PrefetchTiler{t: t, ranges: ranges}
}

// Shape returns the scene geometry (core.CubeSource).
func (p *PrefetchTiler) Shape() (int, int, int) { return p.t.Shape() }

// Tile returns the row range, serving it from the in-flight read-ahead
// when the prediction hit, and kicks off the next prefetch before
// returning (core.CubeSource).
func (p *PrefetchTiler) Tile(rr hsi.RowRange) (*hsi.Cube, error) {
	var cube *hsi.Cube
	var err error
	if p.OnRead != nil {
		p.OnRead(p.pending != nil && p.pending.rr == rr)
	}
	if p.pending != nil && p.pending.rr == rr {
		res := <-p.pending.ch
		p.pending = nil
		cube, err = res.cube, res.err
	} else {
		// Prediction miss (or nothing in flight): the in-flight read, if
		// any, must complete before the Tiler is touched again.
		p.Drain()
		cube, err = p.t.Tile(rr)
	}
	if err != nil {
		return nil, err
	}
	if next, ok := p.successor(rr); ok {
		ch := make(chan tileResult, 1)
		p.pending = &pendingTile{rr: next, ch: ch}
		linalg.Go(func() {
			c, e := p.t.Tile(next)
			ch <- tileResult{cube: c, err: e}
		})
	}
	return cube, nil
}

// successor returns the range that follows rr in the decomposition.
func (p *PrefetchTiler) successor(rr hsi.RowRange) (hsi.RowRange, bool) {
	for i, r := range p.ranges {
		if r == rr {
			if i+1 < len(p.ranges) {
				return p.ranges[i+1], true
			}
			return hsi.RowRange{}, false
		}
	}
	return hsi.RowRange{}, false
}

// Drain discards the in-flight read-ahead, blocking until the background
// goroutine is done with the underlying Tiler. Callers must Drain before
// closing the Reader under the Tiler — a prefetch racing the close would
// read from a closed file.
func (p *PrefetchTiler) Drain() {
	if p.pending != nil {
		<-p.pending.ch
		p.pending = nil
	}
}
