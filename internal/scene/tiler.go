package scene

import (
	"crypto/sha256"
	"encoding/hex"

	"resilientfusion/internal/hsi"
)

// Tiler decomposes a scene into the row-tile sub-problems the fusion
// manager ships to workers. It satisfies core.CubeSource, so a manager
// fed by a Tiler streams tiles straight off disk instead of extracting
// them from an in-memory cube — with identical tile contents, because
// Tiles reuses hsi.Partition and ReadRows decodes exactly the rows
// hsi.Extract would copy. A Tiler (and its Reader) is single-goroutine;
// concurrent fusion jobs each open their own.
type Tiler struct {
	r *Reader
}

// NewTiler wraps a Reader.
func NewTiler(r *Reader) *Tiler { return &Tiler{r: r} }

// Shape returns the scene geometry (core.CubeSource).
func (t *Tiler) Shape() (int, int, int) { return t.r.Shape() }

// Tile reads the row range as a standalone BIP cube (core.CubeSource).
func (t *Tiler) Tile(rr hsi.RowRange) (*hsi.Cube, error) {
	return t.r.ReadRows(rr.Y0, rr.Y1)
}

// Tiles partitions the scene's rows into parts balanced contiguous
// ranges — the same decomposition the manager derives from an in-memory
// cube's height.
func (t *Tiler) Tiles(parts int) []hsi.RowRange {
	_, lines, _ := t.r.Shape()
	return hsi.Partition(lines, parts)
}

// Digest returns the SHA-256 of the scene's canonical HSIC (BIP float32)
// encoding, streamed through bounded row windows — it never materializes
// the cube, yet equals hsi.Cube.Digest of the fully-loaded scene. The
// service layer keys its content-addressed result cache on this, so a
// streamed scene fuse and an in-memory upload of the same cube share
// cache entries.
func (r *Reader) Digest() (string, error) {
	hash := sha256.New()
	W, L, B := r.h.Shape()
	sw, err := hsi.NewStreamWriter(hash, W, L, B, r.h.Wavelengths)
	if err != nil {
		return "", err
	}
	step := r.windowRows()
	var buf []float32
	for y := 0; y < L; y += step {
		end := min(y+step, L)
		n := (end - y) * W * B
		if cap(buf) < n {
			buf = make([]float32, n)
		}
		win := buf[:n]
		if err := r.readRowsInto(y, end, win); err != nil {
			return "", err
		}
		if err := sw.WriteSamples(win); err != nil {
			return "", err
		}
	}
	if err := sw.Close(); err != nil {
		return "", err
	}
	return hex.EncodeToString(hash.Sum(nil)), nil
}
