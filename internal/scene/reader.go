package scene

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"resilientfusion/internal/hsi"
)

// Errors reported by the reader.
var (
	// ErrSceneTooLarge is returned by OpenLimit when the header claims a
	// payload past the caller's bound (the upload-path guard, mirroring
	// hsi.ReadCubeLimit).
	ErrSceneTooLarge = errors.New("scene: scene exceeds size limit")
	// ErrPayloadSize reports a data file whose size disagrees with the
	// header's claim — truncated or oversized payloads are rejected at
	// open time, before any row is decoded.
	ErrPayloadSize = errors.New("scene: payload size mismatch")
)

// windowBytes bounds the decode scratch of whole-scene streaming
// operations (ReadCube into a preallocated cube, Digest): row windows are
// sized so the raw window stays near this many bytes.
const windowBytes = 8 << 20

// Reader decodes row windows of an ENVI scene into the hsi.Cube BIP
// layout. Random access uses ReadAt, so one Reader may serve sequential
// tile reads while the underlying file is shared (each fusion job opens
// its own Reader); memory use is bounded by the largest window requested
// (one raw scratch buffer, reused across calls).
type Reader struct {
	h    Header
	f    *os.File
	path string
	raw  []byte // scratch for raw window bytes, grown to the largest window
}

// HeaderPath resolves the companion header file for a scene path: a path
// ending in .hdr is the header itself; otherwise the header sits at
// path + ".hdr".
func HeaderPath(path string) string {
	if strings.HasSuffix(path, ".hdr") {
		return path
	}
	return path + ".hdr"
}

// DataPath resolves the raw data file for a scene path (inverse of
// HeaderPath).
func DataPath(path string) string {
	return strings.TrimSuffix(path, ".hdr")
}

// Open opens an ENVI scene given either its header path (*.hdr) or its
// data path (header expected alongside at path + ".hdr").
func Open(path string) (*Reader, error) { return OpenLimit(path, 0) }

// OpenLimit is Open with an upper bound on the payload size the header
// may claim, checked before the data file is even opened. limit <= 0
// disables the bound.
func OpenLimit(path string, limit int64) (*Reader, error) {
	text, err := os.ReadFile(HeaderPath(path))
	if err != nil {
		return nil, err
	}
	h, err := ParseHeader(string(text))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", HeaderPath(path), err)
	}
	if limit > 0 && h.Offset+h.DataBytes() > limit {
		return nil, fmt.Errorf("%w: header claims %d bytes, limit %d",
			ErrSceneTooLarge, h.Offset+h.DataBytes(), limit)
	}
	return NewReader(*h, DataPath(path))
}

// NewReader opens the raw data file for an already-parsed header. The
// file size must equal Offset + DataBytes exactly: a short file would
// truncate trailing rows, and trailing junk indicates a header that
// mis-describes the payload.
func NewReader(h Header, dataPath string) (*Reader, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, err
	}
	r, err := NewReaderFrom(h, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// NewReaderFrom wraps an already-open data file, with the same header
// and size validation as NewReader. The reader takes over the handle
// (Close closes it). Callers that must outlive an unlink of the path —
// the service holds a handle per accepted fusion so scene removal
// cannot strand a queued job — open once and wrap here.
func NewReaderFrom(h Header, f *os.File) (*Reader, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if want := h.Offset + h.DataBytes(); st.Size() != want {
		return nil, fmt.Errorf("%w: %s is %d bytes, header claims %d",
			ErrPayloadSize, f.Name(), st.Size(), want)
	}
	return &Reader{h: h, f: f, path: f.Name()}, nil
}

// Header returns the parsed scene header.
func (r *Reader) Header() Header { return r.h }

// Shape returns (width, height, bands) — the core.CubeSource geometry.
func (r *Reader) Shape() (int, int, int) { return r.h.Shape() }

// Path returns the raw data file path.
func (r *Reader) Path() string { return r.path }

// Close releases the data file.
func (r *Reader) Close() error { return r.f.Close() }

// ReadRows decodes rows [y0, y1) into a standalone BIP cube of height
// y1-y0, converting from the scene's interleave and sample type. The
// cube carries the header's wavelength table, matching what hsi.Extract
// copies out of an in-memory cube — so a row window read here is
// sample-identical to extracting the same rows from ReadCube's result.
func (r *Reader) ReadRows(y0, y1 int) (*hsi.Cube, error) {
	cube, err := r.newWindowCube(y0, y1)
	if err != nil {
		return nil, err
	}
	if err := r.readRowsInto(y0, y1, cube.Data); err != nil {
		return nil, err
	}
	return cube, nil
}

func (r *Reader) newWindowCube(y0, y1 int) (*hsi.Cube, error) {
	if y0 < 0 || y1 > r.h.Lines || y0 > y1 {
		return nil, fmt.Errorf("%w: rows [%d,%d) of %d lines", hsi.ErrShape, y0, y1, r.h.Lines)
	}
	cube := &hsi.Cube{
		Width:  r.h.Samples,
		Height: y1 - y0,
		Bands:  r.h.Bands,
		Data:   make([]float32, r.h.Samples*(y1-y0)*r.h.Bands),
	}
	if r.h.Wavelengths != nil {
		cube.Wavelengths = append([]float64(nil), r.h.Wavelengths...)
	}
	return cube, nil
}

// readRowsInto decodes rows [y0, y1) into dst, already sized to
// (y1-y0)·Samples·Bands samples, in BIP order.
func (r *Reader) readRowsInto(y0, y1 int, dst []float32) error {
	W, B := r.h.Samples, r.h.Bands
	rows := y1 - y0
	if rows == 0 {
		return nil
	}
	elem := int64(r.h.DataType.Size())

	switch r.h.Interleave {
	case BIP:
		// Rows are contiguous in exactly the cube layout.
		raw, err := r.readAt(r.h.Offset+int64(y0)*int64(W)*int64(B)*elem, rows*W*B)
		if err != nil {
			return err
		}
		r.decode(raw, dst, 0, 1)

	case BIL:
		// Line y holds B runs of W samples: dst[(row*W+x)*B + b] comes
		// from raw[(row*B + b)*W + x].
		raw, err := r.readAt(r.h.Offset+int64(y0)*int64(B)*int64(W)*elem, rows*B*W)
		if err != nil {
			return err
		}
		for row := 0; row < rows; row++ {
			for b := 0; b < B; b++ {
				src := raw[int64(row*B+b)*int64(W)*elem:]
				r.decode(src[:int64(W)*elem], dst[(row*W)*B+b:], 0, B)
			}
		}

	case BSQ:
		// One plane per band: read each band's row window (one seek per
		// band) and scatter it across the pixel spectra.
		for b := 0; b < B; b++ {
			off := r.h.Offset + (int64(b)*int64(r.h.Lines)+int64(y0))*int64(W)*elem
			raw, err := r.readAt(off, rows*W)
			if err != nil {
				return err
			}
			r.decode(raw, dst[b:], 0, B)
		}

	default:
		return fmt.Errorf("%w: interleave %q", ErrHeader, r.h.Interleave)
	}
	return nil
}

// readAt fills the reused scratch buffer with count samples from off.
func (r *Reader) readAt(off int64, count int) ([]byte, error) {
	n := count * r.h.DataType.Size()
	if cap(r.raw) < n {
		r.raw = make([]byte, n)
	}
	raw := r.raw[:n]
	if _, err := r.f.ReadAt(raw, off); err != nil {
		// The open-time size check makes EOF here unreachable in normal
		// operation; surface it distinctly for files truncated after open.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: %s truncated under reader", ErrPayloadSize, r.path)
		}
		return nil, err
	}
	return raw, nil
}

// decode converts raw samples to float32, writing dst[start], then
// dst[start+stride], ... — stride lets BIL/BSQ scatter a band run across
// pixel spectra without an intermediate buffer.
func (r *Reader) decode(raw []byte, dst []float32, start, stride int) {
	o := binary.ByteOrder(binary.LittleEndian)
	if r.h.BigEndian {
		o = binary.BigEndian
	}
	j := start
	switch r.h.DataType {
	case Uint8:
		for _, v := range raw {
			dst[j] = float32(v)
			j += stride
		}
	case Int16:
		for i := 0; i+2 <= len(raw); i += 2 {
			dst[j] = float32(int16(o.Uint16(raw[i:])))
			j += stride
		}
	case Uint16:
		for i := 0; i+2 <= len(raw); i += 2 {
			dst[j] = float32(o.Uint16(raw[i:]))
			j += stride
		}
	case Int32:
		for i := 0; i+4 <= len(raw); i += 4 {
			dst[j] = float32(int32(o.Uint32(raw[i:])))
			j += stride
		}
	case Float32:
		for i := 0; i+4 <= len(raw); i += 4 {
			dst[j] = math.Float32frombits(o.Uint32(raw[i:]))
			j += stride
		}
	case Float64:
		for i := 0; i+8 <= len(raw); i += 8 {
			dst[j] = float32(math.Float64frombits(o.Uint64(raw[i:])))
			j += stride
		}
	}
}

// windowRows returns the row-window height that keeps raw window bytes
// near windowBytes (at least one row).
func (r *Reader) windowRows() int {
	perRow := r.h.Samples * r.h.Bands * r.h.DataType.Size()
	return max(1, windowBytes/max(1, perRow))
}

// ReadCube materializes the whole scene as one in-memory cube, streaming
// through bounded row windows (the scratch buffer never exceeds the
// window size; the cube itself is the only full-scene allocation).
func (r *Reader) ReadCube() (*hsi.Cube, error) {
	cube, err := r.newWindowCube(0, r.h.Lines)
	if err != nil {
		return nil, err
	}
	step := r.windowRows()
	rowSamples := r.h.Samples * r.h.Bands
	for y := 0; y < r.h.Lines; y += step {
		end := min(y+step, r.h.Lines)
		if err := r.readRowsInto(y, end, cube.Data[y*rowSamples:end*rowSamples]); err != nil {
			return nil, err
		}
	}
	return cube, nil
}
