package scene

import (
	"math"
	"testing"
)

// FuzzParseHeader drives the ENVI header parser with arbitrary text.
// Two properties: the parser never panics, and any header it accepts
// (a) passes its own Validate and (b) survives a Marshal → ParseHeader
// round trip with every field intact — Marshal documents bit-exact
// wavelength round-tripping, so the comparison is on float bits, not
// tolerances.
func FuzzParseHeader(f *testing.F) {
	full := &Header{
		Samples:     320,
		Lines:       320,
		Bands:       3,
		Offset:      128,
		Interleave:  BIL,
		DataType:    Uint16,
		BigEndian:   true,
		Wavelengths: []float64{427.5, 551.2, 663.9},
		Description: "HYDICE forest radiance scene",
	}
	f.Add(full.Marshal())
	f.Add("ENVI\nsamples = 4\nlines = 2\nbands = 1\n")
	f.Add("ENVI\r\nsamples = 4\r\nlines = 2\r\nbands = 1\r\ninterleave = bsq\r\n")
	f.Add("ENVI\nsamples = 4\nlines = 2\nbands = 2\nwavelength = {1.5,\n 2.5}\n")
	f.Add("ENVI\n; comment\nsamples = 4\nlines = 2\nbands = 1\ndata type = 12\n")
	f.Add("ENVI\ndescription = {multi\nline}\nsamples = 4\nlines = 2\nbands = 1\n")
	f.Add("not envi at all")
	f.Add("ENVI\nsamples = 4\nsamples = 5\nlines = 2\nbands = 1\n")
	f.Add("ENVI\nsamples = 1048577\nlines = 2\nbands = 1\n")
	f.Add("ENVI\ndescription = {unterminated brace\nsamples = 4\n")
	f.Add("ENVI\nsamples = 4\nlines = 2\nbands = 1\nwavelength = {NaN}\n")

	f.Fuzz(func(t *testing.T, text string) {
		h, err := ParseHeader(text)
		if err != nil {
			return
		}
		if verr := h.Validate(); verr != nil {
			t.Fatalf("ParseHeader accepted a header its own Validate rejects: %v", verr)
		}
		out := h.Marshal()
		h2, err := ParseHeader(out)
		if err != nil {
			t.Fatalf("re-parse of marshaled header failed: %v\nmarshaled:\n%s", err, out)
		}
		if h2.Samples != h.Samples || h2.Lines != h.Lines || h2.Bands != h.Bands ||
			h2.Offset != h.Offset || h2.Interleave != h.Interleave ||
			h2.DataType != h.DataType || h2.BigEndian != h.BigEndian ||
			h2.Description != h.Description {
			t.Fatalf("round trip changed fields:\nfirst:  %+v\nsecond: %+v\nmarshaled:\n%s", h, h2, out)
		}
		if len(h2.Wavelengths) != len(h.Wavelengths) {
			t.Fatalf("round trip changed wavelength count %d -> %d\nmarshaled:\n%s",
				len(h.Wavelengths), len(h2.Wavelengths), out)
		}
		for i := range h.Wavelengths {
			a, b := h.Wavelengths[i], h2.Wavelengths[i]
			if math.Float64bits(a) != math.Float64bits(b) && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("wavelength %d changed: %v -> %v\nmarshaled:\n%s", i, a, b, out)
			}
		}
	})
}
