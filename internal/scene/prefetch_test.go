package scene

import (
	"bytes"
	"path/filepath"
	"testing"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scplib"
)

// TestPrefetchTilerParity pins the double-buffered reader bit-identical
// to the sequential reader: every request pattern the manager can
// produce — the in-order screening sweep, transform-phase re-reads of
// sporadic indices, repeats, and out-of-prediction jumps — must return
// exactly the bytes a plain Tiler does.
func TestPrefetchTilerParity(t *testing.T) {
	cube := synthScene(t, 40, 37, 24)
	for _, il := range []Interleave{BIP, BIL, BSQ} {
		t.Run(string(il), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "scene.raw")
			if err := Write(path, cube, il); err != nil {
				t.Fatal(err)
			}
			seqR, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer seqR.Close()
			preR, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer preR.Close()

			ranges := hsi.Partition(cube.Height, 7)
			seq := NewTiler(seqR)
			pre := NewPrefetchTiler(NewTiler(preR), ranges)
			defer pre.Drain()

			// In-order sweep (prediction hits), then out-of-order
			// re-reads and repeats (prediction misses, drained reads).
			requests := append([]hsi.RowRange{}, ranges...)
			requests = append(requests, ranges[3], ranges[0], ranges[6], ranges[6], ranges[2])
			for _, rr := range requests {
				want, err := seq.Tile(rr)
				if err != nil {
					t.Fatal(err)
				}
				got, err := pre.Tile(rr)
				if err != nil {
					t.Fatal(err)
				}
				if got.Width != want.Width || got.Height != want.Height || got.Bands != want.Bands {
					t.Fatalf("%v: shape %dx%dx%d != %dx%dx%d", rr,
						got.Width, got.Height, got.Bands, want.Width, want.Height, want.Bands)
				}
				if !floats32Equal(got.Data, want.Data) {
					t.Fatalf("%v: prefetched tile differs from sequential read", rr)
				}
			}
		})
	}
}

func floats32Equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPrefetchTilerUnknownRange covers requests outside the
// decomposition (no successor to predict) and an empty prediction list.
func TestPrefetchTilerUnknownRange(t *testing.T) {
	cube := synthScene(t, 16, 12, 8)
	path := filepath.Join(t.TempDir(), "scene.raw")
	if err := Write(path, cube, BIP); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	pre := NewPrefetchTiler(NewTiler(r), nil)
	defer pre.Drain()
	rr := hsi.RowRange{Index: 0, Y0: 2, Y1: 5}
	got, err := pre.Tile(rr)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := hsi.Extract(cube, rr)
	if err != nil {
		t.Fatal(err)
	}
	if !floats32Equal(got.Data, sub.Cube.Data) {
		t.Fatal("unpredicted tile differs from in-memory extract")
	}
	// Out-of-bounds ranges surface the reader's error, not a panic.
	if _, err := pre.Tile(hsi.RowRange{Y0: 10, Y1: 20}); err == nil {
		t.Fatal("out-of-bounds tile did not error")
	}
}

// TestPrefetchTilerStreamedFusion runs a whole fusion through the
// prefetching source and checks the result bit-identical to the
// in-memory run — the guarantee the service relies on when it wraps
// every scene job's tiler with read-ahead.
func TestPrefetchTilerStreamedFusion(t *testing.T) {
	cube := synthScene(t, 48, 40, 32)
	path := filepath.Join(t.TempDir(), "scene.raw")
	if err := Write(path, cube, BIL); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	opts := core.Options{Workers: 3, Granularity: 2, Threshold: 0.06}
	subCubes := min(opts.Granularity*opts.Workers, cube.Height)
	pre := NewPrefetchTiler(NewTiler(r), hsi.Partition(cube.Height, subCubes))
	defer pre.Drain()

	streamed, err := core.FuseSource(scplib.NewRealSystem(), pre, opts)
	if err != nil {
		t.Fatalf("prefetched streamed fuse: %v", err)
	}
	inMemory, err := core.Fuse(scplib.NewRealSystem(), cube, opts)
	if err != nil {
		t.Fatalf("in-memory fuse: %v", err)
	}
	if streamed.UniqueSetSize != inMemory.UniqueSetSize {
		t.Fatalf("unique set %d != %d", streamed.UniqueSetSize, inMemory.UniqueSetSize)
	}
	if !bytes.Equal(streamed.Image.Pix, inMemory.Image.Pix) {
		t.Fatal("prefetched composite not bit-identical to in-memory run")
	}
}
