package scene

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"resilientfusion/internal/hsi"
)

// Writer encodes an ENVI scene incrementally, row ranges at a time, in
// any supported interleave. Rows must arrive in order; Close writes the
// companion .hdr once the payload is complete. BSQ scatters each window
// across the band planes with WriteAt, so even band-sequential output
// needs only one row-window of scratch.
type Writer struct {
	h    Header
	f    *os.File
	path string
	y    int // next row expected
	raw  []byte
}

// NewWriter creates dataPath (truncating) for a scene with the given
// header. Only float32 output is supported: it is the lossless carrier
// for hsi.Cube samples, which is what makes write→ingest round-trips
// bit-exact. The header's Offset must be 0.
func NewWriter(dataPath string, h Header) (*Writer, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if h.DataType != Float32 || h.BigEndian {
		return nil, fmt.Errorf("%w: writer emits little-endian float32 only (data type 4)", ErrHeader)
	}
	if h.Offset != 0 {
		return nil, fmt.Errorf("%w: writer does not emit embedded offsets", ErrHeader)
	}
	f, err := os.Create(dataPath)
	if err != nil {
		return nil, err
	}
	return &Writer{h: h, f: f, path: dataPath}, nil
}

// WriteRows appends the next rows of the scene from a BIP cube slab
// (width and bands must match the header; the slab's height advances the
// row cursor).
func (w *Writer) WriteRows(slab *hsi.Cube) error {
	if slab.Width != w.h.Samples || slab.Bands != w.h.Bands {
		return fmt.Errorf("%w: slab %dx%dx%d for scene %dx%dx%d",
			hsi.ErrShape, slab.Width, slab.Height, slab.Bands, w.h.Samples, w.h.Lines, w.h.Bands)
	}
	if w.y+slab.Height > w.h.Lines {
		return fmt.Errorf("%w: rows past line %d", hsi.ErrShape, w.h.Lines)
	}
	W, B := w.h.Samples, w.h.Bands
	rows := slab.Height

	switch w.h.Interleave {
	case BIP:
		raw := w.scratch(rows * W * B)
		encodeF32(raw, slab.Data, 0, 1)
		if _, err := w.f.Write(raw); err != nil {
			return err
		}

	case BIL:
		raw := w.scratch(rows * W * B)
		for row := 0; row < rows; row++ {
			for b := 0; b < B; b++ {
				// raw line layout: [(row*B + b)*W + x]; source BIP index
				// (row*W + x)*B + b.
				encodeF32(raw[(row*B+b)*W*4:(row*B+b+1)*W*4], slab.Data[row*W*B+b:], 0, B)
			}
		}
		if _, err := w.f.Write(raw); err != nil {
			return err
		}

	case BSQ:
		raw := w.scratch(rows * W)
		for b := 0; b < B; b++ {
			encodeF32(raw, slab.Data[b:], 0, B)
			off := (int64(b)*int64(w.h.Lines) + int64(w.y)) * int64(W) * 4
			if _, err := w.f.WriteAt(raw, off); err != nil {
				return err
			}
		}

	default:
		return fmt.Errorf("%w: interleave %q", ErrHeader, w.h.Interleave)
	}
	w.y += rows
	return nil
}

func (w *Writer) scratch(samples int) []byte {
	n := samples * 4
	if cap(w.raw) < n {
		w.raw = make([]byte, n)
	}
	return w.raw[:n]
}

// encodeF32 writes src[0], src[stride], ... as little-endian float32 into
// dst until dst is full — the inverse of Reader.decode's scatter.
func encodeF32(dst []byte, src []float32, start, stride int) {
	j := start
	for i := 0; i+4 <= len(dst); i += 4 {
		binary.LittleEndian.PutUint32(dst[i:], math.Float32bits(src[j]))
		j += stride
	}
}

// Close finalizes the scene: it errors if rows are missing, then writes
// the .hdr companion next to the data file.
func (w *Writer) Close() error {
	if w.y != w.h.Lines {
		w.f.Close()
		return fmt.Errorf("%w: closed at row %d of %d", hsi.ErrShape, w.y, w.h.Lines)
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return os.WriteFile(HeaderPath(w.path), []byte(w.h.Marshal()), 0o644)
}

// Write saves a whole cube as an ENVI scene at dataPath (header at
// dataPath + ".hdr") in the given interleave, carrying the cube's
// wavelength table into the header. The payload is float32, so ingesting
// the scene reproduces the cube bit-for-bit.
func Write(dataPath string, c *hsi.Cube, il Interleave) error {
	if err := c.Validate(); err != nil {
		return err
	}
	h := Header{
		Samples:     c.Width,
		Lines:       c.Height,
		Bands:       c.Bands,
		Interleave:  il,
		DataType:    Float32,
		Wavelengths: c.Wavelengths,
	}
	w, err := NewWriter(dataPath, h)
	if err != nil {
		return err
	}
	if err := w.WriteRows(c); err != nil {
		w.f.Close()
		return err
	}
	return w.Close()
}
