package scene

import (
	"bytes"
	"path/filepath"
	"testing"

	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scplib"
)

// fuseBoth runs the same options over the streamed tile path and the
// in-memory path and asserts every result bit matches — the tentpole
// guarantee: a scene fused off disk is indistinguishable from the cube
// fused in memory.
func fuseBoth(t *testing.T, cube *hsi.Cube, il Interleave, opts core.Options) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scene.raw")
	if err := Write(path, cube, il); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	streamed, err := core.FuseSource(scplib.NewRealSystem(), NewTiler(r), opts)
	if err != nil {
		t.Fatalf("streamed fuse: %v", err)
	}
	inMemory, err := core.Fuse(scplib.NewRealSystem(), cube, opts)
	if err != nil {
		t.Fatalf("in-memory fuse: %v", err)
	}

	if streamed.UniqueSetSize != inMemory.UniqueSetSize {
		t.Fatalf("unique set %d != %d", streamed.UniqueSetSize, inMemory.UniqueSetSize)
	}
	for i := range inMemory.Mean {
		if streamed.Mean[i] != inMemory.Mean[i] {
			t.Fatalf("mean[%d] differs", i)
		}
	}
	for i := range inMemory.Eigenvalues {
		if streamed.Eigenvalues[i] != inMemory.Eigenvalues[i] {
			t.Fatalf("eigenvalue[%d] differs", i)
		}
	}
	if !bytes.Equal(streamed.Image.Pix, inMemory.Image.Pix) {
		t.Fatal("composite images not bit-identical")
	}
}

// synthScene generates the deterministic HYDICE-like synthetic scene at
// the given geometry.
func synthScene(t *testing.T, w, h, b int) *hsi.Cube {
	t.Helper()
	spec := hsi.DefaultSceneSpec()
	spec.Width, spec.Height, spec.Bands, spec.Seed = w, h, b, 7
	sc, err := hsi.GenerateScene(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Cube
}

func TestStreamedFusionMatchesInMemory(t *testing.T) {
	cube := synthScene(t, 48, 40, 32)
	for _, il := range []Interleave{BIP, BIL, BSQ} {
		t.Run(string(il), func(t *testing.T) {
			fuseBoth(t, cube, il, core.Options{Workers: 3, Granularity: 2, Threshold: 0.06})
		})
	}
}

// Single-row tiles: granularity pushes the decomposition to one row per
// sub-cube (Partition clamps at the scene height).
func TestStreamedFusionSingleRowTiles(t *testing.T) {
	cube := synthScene(t, 24, 10, 16)
	fuseBoth(t, cube, BIL, core.Options{Workers: 2, Granularity: 5, Threshold: 0.06})
}

// Tile algorithms (pyramid, dwt) run the same streamed-vs-in-memory
// parity: the kernels are pure per tile and both paths share the
// TileRanges decomposition, so composites must be bit-identical off
// disk too.
func TestStreamedFusionTileAlgorithms(t *testing.T) {
	cube := synthScene(t, 40, 28, 24)
	for _, alg := range []string{"pyramid", "dwt"} {
		for _, il := range []Interleave{BIP, BIL, BSQ} {
			t.Run(alg+"/"+string(il), func(t *testing.T) {
				fuseBoth(t, cube, il, core.Options{Workers: 3, Granularity: 2, Algorithm: alg})
			})
		}
	}
}

// Paper-like geometry: the §4 evaluation cube shape (320×320×105). The
// streamed BIL run must be bit-identical to the in-memory run.
func TestStreamedFusionPaperGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale parity skipped in -short")
	}
	cube := synthScene(t, 320, 320, 105)
	fuseBoth(t, cube, BIL, core.Options{Workers: 4, Granularity: 2, Threshold: 0.04})
}
