package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestValidateName(t *testing.T) {
	good := []string{
		"fusion_jobs_submitted_total",
		"fusion_cache_hits_total",
		"fusion_http_request_duration_seconds",
		"fusion_queue_depth",
	}
	for _, n := range good {
		if err := ValidateName(n); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", n, err)
		}
	}
	bad := []string{
		"",
		"jobs_total",               // missing prefix
		"fusion_total",             // no subsystem/name split
		"fusion__total",            // empty segment
		"fusion_jobs_",             // trailing empty segment
		"fusion_Jobs_total",        // uppercase
		"fusion_jobs_5xx_total",    // digit-led segment
		"fusion_jobs total",        // space
		"fusion_jobs_total\n",      // control char
		"fusion_jobs-failed_total", // dash
	}
	for _, n := range bad {
		if err := ValidateName(n); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", n)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("fusion_jobs_submitted_total", "x")
	mustPanic("duplicate", func() { r.Counter("fusion_jobs_submitted_total", "x") })
	mustPanic("bad name", func() { r.Counter("Jobs_total", "x") })
	mustPanic("counter without _total", func() { r.Counter("fusion_jobs_submitted", "x") })
	mustPanic("bad label", func() { r.CounterVec("fusion_http_requests_total", "x", "0route") })
	mustPanic("wrong arity", func() {
		v := r.CounterVec("fusion_frames_sent_total", "x", "type")
		v.With("a", "b")
	})
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fusion_jobs_completed_total", "completed")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("fusion_jobs_running", "running")
	g.Set(3)
	g.Dec()
	g.Add(2)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	h := r.Histogram("fusion_job_duration_seconds", "d", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d, want 3", h.Count())
	}
	if h.Sum() != 55.5 {
		t.Fatalf("histogram sum = %v, want 55.5", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`fusion_job_duration_seconds_bucket{le="1"} 1`,
		`fusion_job_duration_seconds_bucket{le="10"} 2`,
		`fusion_job_duration_seconds_bucket{le="+Inf"} 3`,
		`fusion_job_duration_seconds_sum 55.5`,
		`fusion_job_duration_seconds_count 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecChildrenAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("fusion_http_requests_total", "by route/status", "route", "status")
	v.With("/v1/jobs", "200").Add(2)
	v.With("/v1/jobs", "429").Inc()
	v.With("weird\"route\\with\nstuff", "200").Inc()
	if v.With("/v1/jobs", "200") != v.With("/v1/jobs", "200") {
		t.Fatal("With not cached")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`fusion_http_requests_total{route="/v1/jobs",status="200"} 2`,
		`fusion_http_requests_total{route="/v1/jobs",status="429"} 1`,
		`fusion_http_requests_total{route="weird\"route\\with\nstuff",status="200"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentUpdates hammers one counter, one histogram, and one
// vec from many goroutines while a reader scrapes — meaningful under
// -race, and the final totals check atomicity of the CAS sum loop.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fusion_jobs_submitted_total", "s")
	h := r.Histogram("fusion_job_duration_seconds", "d", []float64{1, 2, 4})
	v := r.HistogramVec("fusion_worker_stage_seconds", "w", []float64{1}, "stage")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.5)
				v.With("screen").Observe(float64(i%3) * 0.25)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if want := float64(workers*per) * 0.5; h.Sum() != want {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 7
	r.GaugeFunc("fusion_queue_depth", "queued", func() int64 { return int64(n) })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fusion_queue_depth 7\n") {
		t.Fatalf("gauge func missing:\n%s", sb.String())
	}
}
