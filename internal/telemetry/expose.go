package telemetry

import (
	"io"
	"net/http"
	"sort"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format 0.0.4, sorted by family name so scrapes are
// stable and diffable in golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*metric(nil), r.list...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var sb strings.Builder
	for _, m := range fams {
		sb.WriteString("# HELP ")
		sb.WriteString(m.name)
		sb.WriteByte(' ')
		sb.WriteString(escapeHelp(m.help))
		sb.WriteByte('\n')
		sb.WriteString("# TYPE ")
		sb.WriteString(m.name)
		sb.WriteByte(' ')
		sb.WriteString(m.typ)
		sb.WriteByte('\n')
		m.collect(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// escapeHelp escapes a HELP string: backslash and newline (the format
// leaves double quotes alone in HELP text).
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler returns the GET /metrics scrape handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
