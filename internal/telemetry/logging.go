package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemons' shared slog setup: format is "text"
// or "json" (-log-format), level is debug/info/warn/error
// (-log-level). Unknown values fall back to text/info so a typo in a
// flag degrades to a usable logger instead of a dead daemon.
func NewLogger(w io.Writer, format, level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if strings.ToLower(format) == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// LogTo adapts a slog.Logger to the legacy LogTo(format, args...)
// callback used throughout service/scplib/resilient. Legacy messages
// land at debug level: they are thread-level diagnostics, chatty by
// design, and the structured paths log the operationally interesting
// events at info and above. Returns nil for a nil logger so existing
// nil-LogTo call sites stay no-ops.
func LogTo(l *slog.Logger) func(format string, args ...any) {
	if l == nil {
		return nil
	}
	return func(format string, args ...any) {
		if l.Enabled(context.Background(), slog.LevelDebug) {
			l.Debug(fmt.Sprintf(format, args...))
		}
	}
}
