// Package telemetry is the repo's stdlib-only observability layer: a
// concurrent metric registry rendered in Prometheus text exposition
// format, a bounded per-job span recorder for stage timelines, and
// log/slog helpers bridging the legacy LogTo(format, ...) callbacks.
//
// Hot paths are lock-free: counters and gauges are atomic.Int64,
// histogram buckets are atomic counters and the float64 sum is a CAS
// loop over its bits. Registration (cold path) takes the registry
// mutex and panics on duplicate or malformed names, so a misspelled
// metric fails the first test that touches it rather than corrupting
// the exposition.
//
// Metric names follow the fusion_<subsystem>_<name>[_unit] convention
// enforced by ValidateName (and by the fusionlint telemetry analyzer
// at registration sites).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ValidateName reports whether name is a well-formed fusion metric
// name: fusion_<subsystem>_<name>[_unit], lowercase ASCII letters,
// digits, and underscores only, with at least a subsystem and a name
// segment after the fusion_ prefix.
func ValidateName(name string) error {
	const prefix = "fusion_"
	if !strings.HasPrefix(name, prefix) {
		return fmt.Errorf("telemetry: metric %q must start with %q", name, prefix)
	}
	rest := name[len(prefix):]
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return fmt.Errorf("telemetry: metric %q has invalid character %q", name, r)
		}
	}
	parts := strings.Split(rest, "_")
	if len(parts) < 2 {
		return fmt.Errorf("telemetry: metric %q needs fusion_<subsystem>_<name>", name)
	}
	for _, p := range parts {
		if p == "" {
			return fmt.Errorf("telemetry: metric %q has an empty segment", name)
		}
		if p[0] >= '0' && p[0] <= '9' {
			return fmt.Errorf("telemetry: metric %q segment %q starts with a digit", name, p)
		}
	}
	return nil
}

// validateLabel checks a Prometheus label name.
func validateLabel(name string) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty label name")
	}
	for i, r := range name {
		letter := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !letter && (i == 0 || r < '0' || r > '9') {
			return fmt.Errorf("telemetry: label %q has invalid character %q", name, r)
		}
	}
	return nil
}

// metric is one registered family: a single collector or a vec.
type metric struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"
	// collect appends exposition sample lines (without HELP/TYPE).
	collect func(sb *strings.Builder)
}

// Registry holds a set of metric families and renders them in
// Prometheus text exposition format 0.0.4. The zero value is not
// usable; call NewRegistry. All Register* methods panic on duplicate
// or invalid names — registration is program structure, not data.
type Registry struct {
	mu   sync.Mutex
	byN  map[string]*metric
	list []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: make(map[string]*metric)}
}

func (r *Registry) add(m *metric) {
	if err := ValidateName(m.name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byN[m.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name))
	}
	r.byN[m.name] = m
	r.list = append(r.list, m)
}

// Counter is a monotonically increasing int64 with an atomic hot path.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count. Surfaces like /v2/stats read this
// so they can never disagree with the /metrics exposition.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers and returns a counter. The name must end in
// _total by Prometheus convention; this is enforced.
func (r *Registry) Counter(name, help string) *Counter {
	if !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("telemetry: counter %q must end in _total", name))
	}
	c := &Counter{}
	r.add(&metric{name: name, help: help, typ: "counter", collect: func(sb *strings.Builder) {
		fmt.Fprintf(sb, "%s %d\n", name, c.Value())
	}})
	return c
}

// Gauge is a settable int64 with an atomic hot path.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, typ: "gauge", collect: func(sb *strings.Builder) {
		fmt.Fprintf(sb, "%s %d\n", name, g.Value())
	}})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// queue depths, cache sizes, live-worker counts. fn must be safe to
// call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.add(&metric{name: name, help: help, typ: "gauge", collect: func(sb *strings.Builder) {
		fmt.Fprintf(sb, "%s %d\n", name, fn())
	}})
}

// Histogram is a fixed-bucket histogram. Observations are lock-free:
// each bucket is an atomic counter and the sum is a CAS loop over the
// float64 bits. Buckets are cumulative in the exposition, per the
// Prometheus histogram contract, with an implicit +Inf bucket.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~12) and the scan is
	// branch-predictable, beating a binary search at this size.
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) collectInto(sb *strings.Builder, name, labels string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(sb, "%s_bucket{%sle=%q} %d\n", name, labels, formatBound(b), cum)
	}
	fmt.Fprintf(sb, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, h.Count())
	sumLabels := ""
	if labels != "" {
		sumLabels = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, sumLabels, formatFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, sumLabels, h.Count())
}

// DefBuckets are latency buckets in seconds spanning sub-millisecond
// kernel dispatches through multi-minute scene fusions.
var DefBuckets = []float64{.0005, .001, .005, .01, .05, .1, .5, 1, 5, 15, 60}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b))}
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.add(&metric{name: name, help: help, typ: "histogram", collect: func(sb *strings.Builder) {
		h.collectInto(sb, name, "")
	}})
	return h
}

// CounterVec is a family of counters split by a fixed label set.
// Children are created on first use and cached; hot paths should hold
// the *Counter from With rather than calling With per event.
type CounterVec struct {
	name   string
	labels []string
	mu     sync.RWMutex
	kids   map[string]*vecChild[*Counter]
}

type vecChild[T any] struct {
	labels string // rendered `k="v",` pairs
	c      T
}

// With returns the child counter for the given label values (one per
// label name, in registration order).
func (v *CounterVec) With(values ...string) *Counter {
	key := joinKey(values)
	v.mu.RLock()
	kid := v.kids[key]
	v.mu.RUnlock()
	if kid != nil {
		return kid.c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if kid = v.kids[key]; kid != nil {
		return kid.c
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	kid = &vecChild[*Counter]{labels: renderLabels(v.labels, values), c: &Counter{}}
	v.kids[key] = kid
	return kid.c
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("telemetry: counter %q must end in _total", name))
	}
	for _, l := range labels {
		if err := validateLabel(l); err != nil {
			panic(err)
		}
	}
	v := &CounterVec{name: name, labels: labels, kids: make(map[string]*vecChild[*Counter])}
	r.add(&metric{name: name, help: help, typ: "counter", collect: func(sb *strings.Builder) {
		for _, kid := range v.sorted() {
			fmt.Fprintf(sb, "%s{%s} %d\n", name, strings.TrimSuffix(kid.labels, ","), kid.c.Value())
		}
	}})
	return v
}

func (v *CounterVec) sorted() []*vecChild[*Counter] {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]*vecChild[*Counter], 0, len(v.kids))
	for _, kid := range v.kids {
		out = append(out, kid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// HistogramVec is a family of histograms split by a fixed label set.
type HistogramVec struct {
	name   string
	labels []string
	bounds []float64
	mu     sync.RWMutex
	kids   map[string]*vecChild[*Histogram]
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := joinKey(values)
	v.mu.RLock()
	kid := v.kids[key]
	v.mu.RUnlock()
	if kid != nil {
		return kid.c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if kid = v.kids[key]; kid != nil {
		return kid.c
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	kid = &vecChild[*Histogram]{labels: renderLabels(v.labels, values), c: newHistogram(v.bounds)}
	v.kids[key] = kid
	return kid.c
}

// HistogramVec registers a histogram family with the given bucket
// bounds (DefBuckets when nil) and label names.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	for _, l := range labels {
		if err := validateLabel(l); err != nil {
			panic(err)
		}
	}
	v := &HistogramVec{name: name, labels: labels, bounds: bounds, kids: make(map[string]*vecChild[*Histogram])}
	r.add(&metric{name: name, help: help, typ: "histogram", collect: func(sb *strings.Builder) {
		for _, kid := range v.sortedH() {
			kid.c.collectInto(sb, name, kid.labels)
		}
	}})
	return v
}

func (v *HistogramVec) sortedH() []*vecChild[*Histogram] {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]*vecChild[*Histogram], 0, len(v.kids))
	for _, kid := range v.kids {
		out = append(out, kid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// joinKey builds the child cache key. \x00 cannot appear in label
// values that matter here (they are route names, frame types, stages),
// and even a pathological value only merges cache keys, not samples.
func joinKey(values []string) string { return strings.Join(values, "\x00") }

// renderLabels renders `k="v",` pairs with Prometheus escaping.
func renderLabels(names, values []string) string {
	var sb strings.Builder
	for i, n := range names {
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteString(`",`)
	}
	return sb.String()
}

// escapeLabel escapes a label value per the text exposition format:
// backslash, double-quote, and newline (exactly those three).
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatBound renders a bucket bound the way Prometheus clients do.
func formatBound(b float64) string { return formatFloat(b) }

// formatFloat renders a float64 sample value.
func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%g", f)
	}
	return fmt.Sprintf("%v", f)
}
