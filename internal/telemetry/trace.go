package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Span is one recorded stage interval in a job's timeline. Times are
// seconds relative to the recorder's creation (job enqueue), so a
// timeline reads as elapsed job time. Point events (regenerations)
// have Start == End.
type Span struct {
	// Name is the stage: ingest, screen, mean, covariance, eigen,
	// transform, merge, regeneration, ...
	Name string `json:"name"`
	// Index is the sub-cube or partition index for per-part stages
	// (-1 when the stage has no index).
	Index int `json:"index"`
	// Start and End are elapsed seconds since the recorder was created.
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s"`
	// Epoch is the group incarnation for regeneration events (0 otherwise).
	Epoch int `json:"epoch,omitempty"`
	// Note carries free-form detail (e.g. "replica 1 on node 2").
	Note string `json:"note,omitempty"`
}

// TraceRecorder is a bounded ring of spans for one job. All methods
// are safe on a nil receiver (no-ops), so instrumented code never
// branches on whether tracing is on; they are also safe for concurrent
// use (manager thread, guardian, HTTP readers). Span recording sits
// outside kernel inner loops — per sub-cube, not per pixel — so the
// mutex is touched a few hundred times per job at most.
type TraceRecorder struct {
	start time.Time

	mu      sync.Mutex
	ring    []Span
	next    int // ring insert position once full
	full    bool
	dropped int64 // spans overwritten after the ring filled
}

// defaultTraceCap bounds one job's span ring: a paper-scale scene is
// ~8 sub-cubes × a handful of stages plus rare regeneration events,
// so 256 holds any realistic job with room for pathological retries.
const defaultTraceCap = 256

// NewTraceRecorder returns a recorder holding up to capacity spans
// (defaultTraceCap when capacity <= 0).
func NewTraceRecorder(capacity int) *TraceRecorder {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &TraceRecorder{start: time.Now(), ring: make([]Span, 0, capacity)}
}

// Now returns elapsed seconds since the recorder was created (0 on nil).
func (tr *TraceRecorder) Now() float64 {
	if tr == nil {
		return 0
	}
	return time.Since(tr.start).Seconds()
}

// Record appends one span (no-op on nil).
func (tr *TraceRecorder) Record(s Span) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, s)
	} else {
		tr.ring[tr.next] = s
		tr.next = (tr.next + 1) % cap(tr.ring)
		tr.full = true
		tr.dropped++
	}
	tr.mu.Unlock()
}

// Stage records an interval span for a stage with a per-part index
// (pass -1 for unindexed stages).
func (tr *TraceRecorder) Stage(name string, index int, start, end float64) {
	tr.Record(Span{Name: name, Index: index, Start: start, End: end})
}

// Event records a point event at the current time.
func (tr *TraceRecorder) Event(name string, index, epoch int, note string) {
	if tr == nil {
		return
	}
	now := tr.Now()
	tr.Record(Span{Name: name, Index: index, Start: now, End: now, Epoch: epoch, Note: note})
}

// Snapshot returns the recorded spans oldest-first, sorted by start
// time, and the count of spans lost to ring overflow.
func (tr *TraceRecorder) Snapshot() (spans []Span, dropped int64) {
	if tr == nil {
		return nil, 0
	}
	tr.mu.Lock()
	if tr.full {
		spans = make([]Span, 0, cap(tr.ring))
		spans = append(spans, tr.ring[tr.next:]...)
		spans = append(spans, tr.ring[:tr.next]...)
	} else {
		spans = append([]Span(nil), tr.ring...)
	}
	dropped = tr.dropped
	tr.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	return spans, dropped
}

// StageSummary aggregates one stage's spans for the job-status view.
type StageSummary struct {
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Summary returns per-stage counts and total seconds, keyed by stage
// name (nil map on a nil recorder or an empty ring).
func (tr *TraceRecorder) Summary() map[string]StageSummary {
	spans, _ := tr.Snapshot()
	if len(spans) == 0 {
		return nil
	}
	out := make(map[string]StageSummary)
	for _, s := range spans {
		agg := out[s.Name]
		agg.Count++
		agg.Seconds += s.End - s.Start
		out[s.Name] = agg
	}
	return out
}
