package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the exposition golden file")

// TestExpositionGolden pins the full scrape output — HELP/TYPE lines,
// family ordering, label escaping, histogram +Inf/_sum/_count — to a
// golden file so any format drift is an explicit diff.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("fusion_jobs_submitted_total", "Jobs accepted by the pool.")
	jobs.Add(12)
	r.Gauge("fusion_jobs_running", "Jobs currently executing.").Set(2)
	r.GaugeFunc("fusion_queue_depth", "Jobs parked in the admission queue.", func() int64 { return 3 })
	h := r.Histogram("fusion_job_duration_seconds", "End-to-end job latency.", []float64{0.5, 1, 5})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(60)
	hv := r.HistogramVec("fusion_http_request_duration_seconds",
		"HTTP latency by route and status.", []float64{0.01, 0.1}, "route", "status")
	hv.With("/v2/jobs/{id}", "200").Observe(0.005)
	hv.With("/v2/jobs/{id}", "200").Observe(0.05)
	hv.With("/metrics", "200").Observe(0.2)
	cv := r.CounterVec("fusion_cluster_frames_sent_total",
		`Cluster frames sent by type (escaping: \ " and newline).`, "type")
	cv.With("msg").Add(41)
	cv.With(`sp"awn\odd` + "\n").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// FuzzMetricName checks the registry cannot be driven into emitting a
// corrupt exposition: any name ValidateName accepts must render as a
// parseable sample line, and registration must panic on exactly the
// names ValidateName rejects.
func FuzzMetricName(f *testing.F) {
	f.Add("fusion_jobs_submitted_total")
	f.Add("fusion_cache_hits_total")
	f.Add("jobs_total")
	f.Add("fusion__total")
	f.Add("fusion_jobs total")
	f.Add("fusion_jobs_\x00_total")
	f.Add("fusion_j\nobs_total")
	f.Fuzz(func(t *testing.T, name string) {
		err := ValidateName(name)
		var panicked bool
		func() {
			defer func() { panicked = recover() != nil }()
			r := NewRegistry()
			c := r.Counter(name, "fuzz")
			c.Inc()
			var sb strings.Builder
			if werr := r.WritePrometheus(&sb); werr != nil {
				t.Fatalf("write: %v", werr)
			}
			out := sb.String()
			// An accepted name must produce exactly its own sample line:
			// no control characters, no broken line structure.
			if strings.ContainsAny(name, "\n\r\x00 ") {
				t.Fatalf("registry accepted a name with whitespace/control chars: %q", name)
			}
			if !strings.Contains(out, name+" 1\n") {
				t.Fatalf("sample line missing for %q:\n%s", name, out)
			}
		}()
		if hasTotal := strings.HasSuffix(name, "_total"); err == nil && hasTotal && panicked {
			t.Fatalf("valid name %q rejected at registration", name)
		}
		if (err != nil || !strings.HasSuffix(name, "_total")) && !panicked {
			t.Fatalf("invalid counter name %q accepted", name)
		}
	})
}
