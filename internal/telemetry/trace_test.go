package telemetry

import (
	"sync"
	"testing"
)

func TestTraceRecorderNilSafe(t *testing.T) {
	var tr *TraceRecorder
	tr.Stage("screen", 0, 0, 1) // must not panic
	tr.Event("regeneration", 1, 2, "")
	if tr.Now() != 0 {
		t.Fatal("nil Now() != 0")
	}
	if spans, dropped := tr.Snapshot(); spans != nil || dropped != 0 {
		t.Fatal("nil Snapshot not empty")
	}
	if tr.Summary() != nil {
		t.Fatal("nil Summary not nil")
	}
}

func TestTraceRecorderRing(t *testing.T) {
	tr := NewTraceRecorder(4)
	for i := 0; i < 7; i++ {
		tr.Stage("screen", i, float64(i), float64(i)+0.5)
	}
	spans, dropped := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("len = %d, want 4 (ring capacity)", len(spans))
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	// Oldest three were overwritten: survivors are indices 3..6.
	for i, s := range spans {
		if s.Index != i+3 {
			t.Fatalf("span %d has index %d, want %d", i, s.Index, i+3)
		}
	}
	sum := tr.Summary()
	if sum["screen"].Count != 4 || sum["screen"].Seconds != 2.0 {
		t.Fatalf("summary = %+v", sum["screen"])
	}
}

func TestTraceRecorderEventAndOrder(t *testing.T) {
	tr := NewTraceRecorder(16)
	tr.Stage("mean", -1, 2, 3)
	tr.Stage("ingest", 0, 0, 1)
	tr.Event("regeneration", 1, 2, "replica 1")
	spans, _ := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("len = %d", len(spans))
	}
	// Event stamps elapsed-now (≈0s here), so it sorts after ingest
	// (start 0) and before mean (start 2).
	if spans[0].Name != "ingest" || spans[2].Name != "mean" {
		t.Fatalf("not sorted by start: %+v", spans)
	}
	ev := spans[1]
	if ev.Name != "regeneration" || ev.Epoch != 2 || ev.Note != "replica 1" || ev.Start != ev.End {
		t.Fatalf("event span wrong: %+v", ev)
	}
}

func TestTraceRecorderConcurrent(t *testing.T) {
	tr := NewTraceRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				t0 := tr.Now()
				tr.Stage("screen", w*200+i, t0, tr.Now())
				if i%50 == 0 {
					tr.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	spans, dropped := tr.Snapshot()
	if len(spans) != 64 || dropped != 4*200-64 {
		t.Fatalf("spans=%d dropped=%d", len(spans), dropped)
	}
}
