// Package e2e exercises the deployed topology: real fusiond and
// fusionworkerd binaries, real sockets, real SIGKILL. It is the
// acceptance test for cluster mode — a worker fleet losing whole
// processes mid-scene must still produce the byte-identical mosaic.
package e2e

import (
	"bufio"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"resilientfusion/fusionclient"
	"resilientfusion/internal/failure"
	"resilientfusion/internal/hsi"
)

// chaosWorkers is the fleet size; replicas of each logical worker land
// on two of the three nodes, so SIGKILLing workerd 1 and 2 takes out a
// full replica pair (epoch-bump regeneration, the hardest recovery path)
// plus singles on the survivor pairings.
const chaosWorkers = 3

// buildBinaries compiles fusiond and fusionworkerd into dir.
func buildBinaries(t *testing.T, dir string) (fusiond, workerd string) {
	t.Helper()
	fusiond = filepath.Join(dir, "fusiond")
	workerd = filepath.Join(dir, "fusionworkerd")
	for bin, pkg := range map[string]string{fusiond: "./cmd/fusiond", workerd: "./cmd/fusionworkerd"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return fusiond, workerd
}

// freePort reserves an ephemeral port and releases it for a daemon to
// claim (the usual small race, irrelevant at test scale).
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// startDaemon launches a binary and registers cleanup that SIGKILLs it.
func startDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// chaosScene is deterministic and heavy enough (noise blows the unique
// set past 10⁴ spectra) that fusion runs for seconds — long enough to
// SIGKILL workers mid-scene without racing job completion.
func chaosScene(t *testing.T) *hsi.Cube {
	t.Helper()
	s, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 128, Height: 128, Bands: 32, Seed: 11,
		NoiseSigma: 100, Illumination: 0.1,
		OpenVehicles: 2, CamouflagedVehicles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s.Cube
}

func waitStats(t *testing.T, client *fusionclient.Client, ok func(*fusionclient.Stats) bool, what string) *fusionclient.Stats {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := client.Stats(ctx)
		if err == nil && ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (stats=%+v err=%v)", what, st, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestClusterChaosByteIdentical is the cluster-mode acceptance scenario:
// fusiond shards a scene across three fusionworkerd processes; two of
// them — a full replica pair of one logical worker — are SIGKILLed
// mid-scene; the guardian detects the losses over the severed
// connections, regenerates the replicas elsewhere, the manager reissues
// the lost work, and the final mosaic is byte-identical to a plain
// in-process pool's. resilient.Stats surface through /v2/stats.
func TestClusterChaosByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real daemons")
	}
	bindir := t.TempDir()
	fusiond, workerd := buildBinaries(t, bindir)
	ctx := context.Background()
	cube := chaosScene(t)
	opts := &fusionclient.Options{Threshold: fusionclient.Float(0.05), Granularity: fusionclient.Int(2)}

	// Reference: a plain in-process pool at the same worker count, in its
	// own daemon so no cache or state is shared with the cluster run.
	plainPort := freePort(t)
	startDaemon(t, fusiond, "-addr", fmt.Sprintf("127.0.0.1:%d", plainPort),
		"-workers", fmt.Sprint(chaosWorkers), "-cache", "-1")
	plain := fusionclient.New(fmt.Sprintf("http://127.0.0.1:%d", plainPort))
	waitStats(t, plain, func(*fusionclient.Stats) bool { return true }, "plain fusiond up")
	job, err := plain.SubmitCube(ctx, cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if job, err = plain.Wait(wctx, job.ID); err != nil || job.State != fusionclient.StateDone {
		t.Fatalf("plain job: %v %+v", err, job)
	}
	wantPNG, err := plain.ResultPNG(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Cluster topology: coordinator + three worker daemons.
	httpPort, clusterPort := freePort(t), freePort(t)
	clusterAddr := fmt.Sprintf("127.0.0.1:%d", clusterPort)
	startDaemon(t, fusiond, "-addr", fmt.Sprintf("127.0.0.1:%d", httpPort),
		"-cache", "-1",
		"-cluster", clusterAddr,
		"-cluster-workers", fmt.Sprint(chaosWorkers),
		"-cluster-replication", "2",
		"-cluster-heartbeat", "100ms",
		"-cluster-fail-timeout", "500ms",
		"-cluster-reissue", "2s",
		"-v")
	client := fusionclient.New(fmt.Sprintf("http://127.0.0.1:%d", httpPort))
	waitStats(t, client, func(st *fusionclient.Stats) bool { return st.Cluster != nil }, "cluster fusiond up")

	workers := make([]*exec.Cmd, chaosWorkers)
	for i := range workers {
		workers[i] = startDaemon(t, workerd, "-connect", clusterAddr)
	}
	waitStats(t, client, func(st *fusionclient.Stats) bool {
		return st.Cluster.LiveWorkers == chaosWorkers
	}, "worker fleet connected")

	// Submit, confirm the job is actually running on the cluster, then
	// SIGKILL workerd 1 immediately and workerd 2 a beat later — with
	// replication 2 and ring placement, that pair hosts both replicas of
	// logical worker 1.
	job, err = client.SubmitCube(ctx, cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		j, err := client.Job(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == fusionclient.StateRunning {
			break
		}
		if j.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job never observed running: %+v", j)
		}
		time.Sleep(20 * time.Millisecond)
	}
	plan := failure.Plan{Events: []failure.Event{
		failure.KillProcess(0, workers[0].Process),
		failure.KillProcess(0.15, workers[1].Process),
	}}
	if err := plan.ArmReal(nil); err != nil {
		t.Fatal(err)
	}

	wctx2, cancel2 := context.WithTimeout(ctx, 90*time.Second)
	defer cancel2()
	if job, err = client.Wait(wctx2, job.ID); err != nil || job.State != fusionclient.StateDone {
		t.Fatalf("cluster job after chaos: %v %+v", err, job)
	}
	gotPNG, err := client.ResultPNG(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(gotPNG) != sha256.Sum256(wantPNG) {
		t.Fatalf("mosaic digest diverged after SIGKILLs: cluster %d bytes, plain %d bytes",
			len(gotPNG), len(wantPNG))
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Cluster
	if cs == nil || cs.Detections < 1 || cs.Regenerations < 1 {
		t.Fatalf("chaos not visible in /v2/stats cluster section: %+v", cs)
	}
	if cs.LiveWorkers != chaosWorkers-2 {
		t.Fatalf("live workers after two SIGKILLs = %d, want %d", cs.LiveWorkers, chaosWorkers-2)
	}
	t.Logf("cluster stats after chaos: %+v", cs)

	// The /metrics exposition and the /v2/stats cluster section read the
	// same registry counters, so a scrape after the chaos job must agree
	// exactly with the stats snapshot above (the job is finished and no
	// other job absorbs counters in between).
	exposition := scrapeMetrics(t, fmt.Sprintf("http://127.0.0.1:%d/metrics", httpPort))
	det := metricValue(t, exposition, "fusion_cluster_detections_total")
	regen := metricValue(t, exposition, "fusion_cluster_regenerations_total")
	if det < 1 || regen < 1 {
		t.Fatalf("chaos not visible in /metrics: detections=%v regenerations=%v", det, regen)
	}
	if int64(det) != cs.Detections || int64(regen) != cs.Regenerations {
		t.Fatalf("/metrics and /v2/stats disagree: metrics detections=%v regenerations=%v, stats %+v",
			det, regen, cs)
	}

	// The completed job's trace timeline must carry stage spans and the
	// guardian's regeneration events for the SIGKILLed replica pair.
	trace, err := client.Trace(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Spans) == 0 {
		t.Fatal("completed cluster job has an empty trace timeline")
	}
	regenEvents := 0
	for _, s := range trace.Spans {
		if s.Name == "regeneration" {
			regenEvents++
		}
	}
	if regenEvents < 1 {
		t.Fatalf("trace has %d spans but no regeneration events: %+v", len(trace.Spans), trace.Spans)
	}
	t.Logf("trace: %d spans, %d regeneration events", len(trace.Spans), regenEvents)
}

// scrapeMetrics fetches a Prometheus text exposition.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue extracts an unlabeled sample's value from an exposition.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, exposition)
	return 0
}
