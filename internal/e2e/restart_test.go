// Restart e2e: the acceptance test for the durable control plane
// (internal/store). A real fusiond running with -spool/-journal is
// SIGKILLed with one job running and more queued behind it; the
// restarted daemon must replay the catalog and journal so the scene is
// still listed, every pending job completes with a mosaic byte-identical
// to an uninterrupted daemon's, job IDs keep counting, and a result that
// was evicted to the disk-spill tier before the crash still serves a
// cache hit afterwards.
package e2e

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"resilientfusion/fusionclient"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
)

const restartWorkers = 2

// restartScenePayload renders a small deterministic cube as ENVI header
// text + raw payload, for registering the same scene on both daemons.
func restartScenePayload(t *testing.T) (string, []byte) {
	t.Helper()
	s, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 48, Height: 48, Bands: 12, Seed: 5,
		OpenVehicles: 1, CamouflagedVehicles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scene.raw")
	if err := scene.Write(path, s.Cube, scene.BIL); err != nil {
		t.Fatal(err)
	}
	hdr, err := os.ReadFile(path + ".hdr")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(hdr), data
}

// submitAndHash runs one cube job to completion and returns its mosaic
// PNG digest.
func submitAndHash(t *testing.T, client *fusionclient.Client, cube *hsi.Cube, opts *fusionclient.Options) [32]byte {
	t.Helper()
	ctx := context.Background()
	job, err := client.SubmitCube(ctx, cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	return waitAndHash(t, client, job.ID)
}

// waitAndHash waits for a job to finish Done and returns its mosaic PNG
// digest.
func waitAndHash(t *testing.T, client *fusionclient.Client, id string) [32]byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	job, err := client.Wait(ctx, id)
	if err != nil || job.State != fusionclient.StateDone {
		t.Fatalf("job %s: %v %+v", id, err, job)
	}
	png, err := client.ResultPNG(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(png)
}

// TestRestartDurability is the crash-recovery acceptance scenario. One
// daemon life registers a scene, completes two cube jobs (the first of
// which the 1-entry cache evicts into the disk spill), then takes a
// three-job backlog — cube, scene fuse, cube — and is SIGKILLed with the
// first of them running and the rest queued. The second life, on the
// same spool and journal directories, must recover everything.
func TestRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real daemons")
	}
	bindir := t.TempDir()
	fusiond, _ := buildBinaries(t, bindir)
	ctx := context.Background()

	cube := chaosScene(t) // heavy: runs for seconds, so SIGKILL lands mid-job
	hdr, data := restartScenePayload(t)
	sceneOpts := &fusionclient.Options{Threshold: fusionclient.Float(0.05)}
	thresholds := map[string]float64{"A": 0.04, "B": 0.05, "C": 0.06, "E": 0.08}
	cubeOpts := func(label string) *fusionclient.Options {
		return &fusionclient.Options{Threshold: fusionclient.Float(thresholds[label])}
	}

	// Reference: an uninterrupted plain daemon at the same worker count
	// computes the expected mosaic digests for every job the durable
	// daemon will run across its crash.
	refPort := freePort(t)
	startDaemon(t, fusiond, "-addr", fmt.Sprintf("127.0.0.1:%d", refPort),
		"-workers", fmt.Sprint(restartWorkers), "-cache", "-1")
	ref := fusionclient.New(fmt.Sprintf("http://127.0.0.1:%d", refPort))
	waitStats(t, ref, func(*fusionclient.Stats) bool { return true }, "reference fusiond up")
	refScene, err := ref.RegisterScene(ctx, hdr, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][32]byte{}
	for _, label := range []string{"A", "C", "E"} {
		want[label] = submitAndHash(t, ref, cube, cubeOpts(label))
	}
	refFuse, err := ref.FuseScene(ctx, refScene.ID, sceneOpts)
	if err != nil {
		t.Fatal(err)
	}
	want["D"] = waitAndHash(t, ref, refFuse.ID)

	// Durable daemon, first life: pinned spool + journal dirs, a 1-entry
	// RAM cache backed by a disk spill, one job at a time so a backlog
	// actually queues.
	spoolDir := filepath.Join(t.TempDir(), "spool")
	journalDir := filepath.Join(t.TempDir(), "journal")
	for _, d := range []string{spoolDir, journalDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	port := freePort(t)
	durableArgs := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-workers", fmt.Sprint(restartWorkers),
		"-concurrency", "1",
		"-cache", "1",
		"-cache-spill-mb", "64",
		"-spool", spoolDir,
		"-journal", journalDir,
	}
	life1 := startDaemon(t, fusiond, durableArgs...)
	client := fusionclient.New(fmt.Sprintf("http://127.0.0.1:%d", port))
	waitStats(t, client, func(st *fusionclient.Stats) bool { return st.Store != nil }, "durable fusiond up")

	durScene, err := client.RegisterScene(ctx, hdr, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	// Jobs A and B complete before the crash; finishing B evicts A's
	// result from the 1-entry RAM cache into the spill, which is what the
	// post-restart cache-hit assertion depends on.
	gotA := submitAndHash(t, client, cube, cubeOpts("A"))
	if gotA != want["A"] {
		t.Fatal("durable daemon's mosaic diverged from the reference before any crash")
	}
	submitAndHash(t, client, cube, cubeOpts("B"))
	st := waitStats(t, client, func(st *fusionclient.Stats) bool {
		return st.Store != nil && st.Store.SpilledEntries >= 1
	}, "first result spilled to disk")
	if st.Store.SpilledBytes <= 0 {
		t.Fatalf("spilled entries without spilled bytes: %+v", st.Store)
	}

	// The backlog: C starts running (concurrency 1), D and E queue
	// behind it. SIGKILL lands with all three non-terminal.
	jobC, err := client.SubmitCube(ctx, cube, cubeOpts("C"))
	if err != nil {
		t.Fatal(err)
	}
	jobD, err := client.FuseScene(ctx, durScene.ID, sceneOpts)
	if err != nil {
		t.Fatal(err)
	}
	jobE, err := client.SubmitCube(ctx, cube, cubeOpts("E"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		j, err := client.Job(ctx, jobC.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == fusionclient.StateRunning {
			break
		}
		if j.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job C never observed running: %+v", j)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if j, err := client.Job(ctx, jobE.ID); err != nil || j.State != fusionclient.StateQueued {
		t.Fatalf("job E not queued at kill time: %v %+v", err, j)
	}
	if err := life1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	life1.Wait()

	// Second life, same directories. Stats answering means NewPool — and
	// with it the whole catalog/journal replay — already finished.
	startDaemon(t, fusiond, durableArgs...)
	st = waitStats(t, client, func(st *fusionclient.Stats) bool { return st.Store != nil }, "restarted fusiond up")
	if st.Store.RecoveredJobs != 3 {
		t.Fatalf("recovered jobs after restart = %d, want 3 (C, D, E): %+v", st.Store.RecoveredJobs, st.Store)
	}

	// The scene survived via the catalog: same ID, geometry, and payload
	// digest.
	scenes, err := client.Scenes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenes) != 1 || scenes[0].ID != durScene.ID {
		t.Fatalf("scene registry after restart = %+v, want just %s", scenes, durScene.ID)
	}
	if scenes[0].Digest != durScene.Digest || scenes[0].Bytes != durScene.Bytes {
		t.Fatalf("recovered scene mutated: %+v vs %+v", scenes[0], durScene)
	}

	// The interrupted backlog completes under its original job IDs with
	// mosaics byte-identical to the uninterrupted reference.
	for _, jc := range []struct {
		label string
		id    string
	}{{"C", jobC.ID}, {"D", jobD.ID}, {"E", jobE.ID}} {
		if got := waitAndHash(t, client, jc.id); got != want[jc.label] {
			t.Fatalf("job %s (%s) mosaic diverged from the uninterrupted reference after restart", jc.label, jc.id)
		}
	}

	// A's result was computed in the first life and evicted to the spill
	// before the crash; resubmitting it must be a cache hit served from
	// the recovered spill — bit-identical, and without recomputation. The
	// journal also pins the job counter: five jobs came before, so this
	// resubmission is job-6 even though the process restarted.
	resub, err := client.SubmitCube(ctx, cube, cubeOpts("A"))
	if err != nil {
		t.Fatal(err)
	}
	if resub.ID != "job-6" {
		t.Fatalf("job IDs reset across restart: resubmission got %s, want job-6", resub.ID)
	}
	if got := waitAndHash(t, client, resub.ID); got != want["A"] {
		t.Fatal("spill-served mosaic diverged from the reference")
	}
	final, err := client.Job(ctx, resub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.CacheHit {
		t.Fatalf("resubmission after restart recomputed instead of hitting the spilled cache entry: %+v", final)
	}

	exposition := scrapeMetrics(t, fmt.Sprintf("http://127.0.0.1:%d/metrics", port))
	if hits := metricValue(t, exposition, "fusion_cache_spill_hits_total"); hits < 1 {
		t.Fatalf("fusion_cache_spill_hits_total = %v after a spill-served hit, want >= 1", hits)
	}
	if rec := metricValue(t, exposition, "fusion_store_recovered_jobs_total"); rec != 3 {
		t.Fatalf("fusion_store_recovered_jobs_total = %v, want 3", rec)
	}
	if recs := metricValue(t, exposition, "fusion_store_journal_records_total"); recs < 1 {
		t.Fatalf("fusion_store_journal_records_total = %v, want >= 1", recs)
	}
}
