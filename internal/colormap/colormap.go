// Package colormap implements step 8 of the paper's algorithm: human-
// centered color mapping of the first three principal components into a
// color-composite image. PC1 drives the achromatic (luminance) channel,
// PC2 the red-green opponency and PC3 the blue-yellow opponency, matching
// the spatial-spectral sensitivity of the human visual system (Boynton;
// Poirson & Wandell).
package colormap

import (
	"errors"
	"fmt"
	"image"
	"image/color"
	"math"
	"sort"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
)

// OpponentMatrix is the 3×3 opponent-to-RGB transform from the paper:
//
//	R   ( 0.4387  0.4972  0.0641) (C1−128)
//	G = ( 0.4972  0.1403 −0.0795)·(C2−128) + 128
//	B   (−0.1355  0.0116 −0.4972) (C3−128)
//
// where C1..C3 are the stretched principal components. The entries are
// transcribed from the paper's equation for step 8 (sign placement per the
// authors' companion journal paper).
var OpponentMatrix = [3][3]float64{
	{0.4387, 0.4972, 0.0641},
	{0.4972, 0.1403, -0.0795},
	{-0.1355, 0.0116, -0.4972},
}

// ErrNeedThreeComponents is returned when a composite is requested from a
// cube that does not carry at least three bands.
var ErrNeedThreeComponents = errors.New("colormap: composite needs a 3-component cube")

// Stretch maps a raw principal-component value into display range [0,255]
// with 128 at the component mean. The paper performs this per worker, so
// the parameters must not require a global pass over transformed data;
// VarianceStretch derives them from the eigenvalues the manager already
// broadcast.
type Stretch struct {
	// Center is subtracted before scaling (the component's expected mean).
	Center float64
	// Scale multiplies the centered value; the result is offset to 128
	// and clamped to [0, 255].
	Scale float64
}

// Apply maps v into [0, 255].
func (s Stretch) Apply(v float64) float64 {
	x := 128 + (v-s.Center)*s.Scale
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return x
}

// VarianceStretch builds per-component stretches from eigenvalues: a
// component with variance λ spans ±kσ across the display range, so
// scale = 128/(k·√λ). k=3 keeps 99.7% of a Gaussian component in range.
// Components are zero-centered because pixels are mean-subtracted before
// projection.
func VarianceStretch(eigenvalues linalg.Vector, k float64) []Stretch {
	if k <= 0 {
		k = 3
	}
	out := make([]Stretch, len(eigenvalues))
	for i, ev := range eigenvalues {
		sigma := math.Sqrt(math.Max(ev, 0))
		scale := 0.0
		if sigma > 0 {
			scale = 128 / (k * sigma)
		}
		out[i] = Stretch{Center: 0, Scale: scale}
	}
	return out
}

// PercentileStretch computes a stretch from the data itself, mapping the
// lo and hi percentiles of plane onto the display extremes. Used by the
// sequential tooling for band renderings (paper Figure 2); the distributed
// pipeline prefers VarianceStretch (no global pass required).
func PercentileStretch(plane []float64, lo, hi float64) Stretch {
	if len(plane) == 0 || lo >= hi {
		return Stretch{Center: 0, Scale: 0}
	}
	lov, hiv := percentiles(plane, lo, hi)
	if hiv <= lov {
		return Stretch{Center: lov, Scale: 0}
	}
	// Map [lov, hiv] → [0, 255]: center at midpoint, scale to span 255.
	return Stretch{
		Center: (lov + hiv) / 2,
		Scale:  255 / (hiv - lov),
	}
}

// percentiles returns the lo-th and hi-th percentile values (0..1) using a
// copy-and-select; planes are small (≤ a few MB) so sorting cost is fine.
func percentiles(plane []float64, lo, hi float64) (float64, float64) {
	cp := append([]float64(nil), plane...)
	sort.Float64s(cp)
	idx := func(p float64) int {
		i := int(p * float64(len(cp)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(cp) {
			i = len(cp) - 1
		}
		return i
	}
	return cp[idx(lo)], cp[idx(hi)]
}

// Compose maps a 3-component cube into an RGB image using the opponent
// matrix — algorithm step 8. stretches must have one entry per component
// used (extra entries are ignored).
func Compose(components *hsi.Cube, stretches []Stretch) (*image.RGBA, error) {
	if components.Bands < 3 {
		return nil, fmt.Errorf("%w: got %d bands", ErrNeedThreeComponents, components.Bands)
	}
	if len(stretches) < 3 {
		return nil, errors.New("colormap: need 3 stretches")
	}
	img := image.NewRGBA(image.Rect(0, 0, components.Width, components.Height))
	var c [3]float64
	for y := 0; y < components.Height; y++ {
		for x := 0; x < components.Width; x++ {
			s := components.Spectrum(x, y)
			for k := 0; k < 3; k++ {
				c[k] = stretches[k].Apply(float64(s[k]))
			}
			r, g, b := MapPixel(c)
			img.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return img, nil
}

// MapPixel applies the opponent transform to one stretched component
// triple (each in [0,255]) and returns 8-bit RGB.
func MapPixel(c [3]float64) (r, g, b uint8) {
	var out [3]float64
	for i := 0; i < 3; i++ {
		acc := 128.0
		for j := 0; j < 3; j++ {
			acc += OpponentMatrix[i][j] * (c[j] - 128)
		}
		out[i] = acc
	}
	return clampByte(out[0]), clampByte(out[1]), clampByte(out[2])
}

func clampByte(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}
