package colormap

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"

	"resilientfusion/internal/hsi"
)

// RenderBand renders one spectral band of a cube as a contrast-stretched
// grayscale image — how the paper's Figure 2 frames (400 nm and 1998 nm)
// are produced.
func RenderBand(c *hsi.Cube, band int) (*image.Gray, error) {
	plane, err := c.Band(band)
	if err != nil {
		return nil, err
	}
	st := PercentileStretch(plane, 0.02, 0.98)
	img := image.NewGray(image.Rect(0, 0, c.Width, c.Height))
	for i, v := range plane {
		img.Pix[i] = clampByte(st.Apply(v))
	}
	return img, nil
}

// RenderBandNearest renders the band closest to the given wavelength.
func RenderBandNearest(c *hsi.Cube, nm float64) (*image.Gray, int, error) {
	b, err := c.NearestBand(nm)
	if err != nil {
		return nil, 0, err
	}
	img, err := RenderBand(c, b)
	return img, b, err
}

// RenderTruth renders a ground-truth material map with a fixed palette,
// for visual inspection of synthetic scenes.
func RenderTruth(truth []hsi.Material, width, height int) (*image.RGBA, error) {
	if len(truth) != width*height {
		return nil, fmt.Errorf("colormap: truth length %d for %dx%d", len(truth), width, height)
	}
	palette := map[hsi.Material]color.RGBA{
		hsi.MaterialForest:     {16, 92, 30, 255},
		hsi.MaterialField:      {150, 180, 70, 255},
		hsi.MaterialRoad:       {150, 120, 90, 255},
		hsi.MaterialVehicle:    {220, 40, 40, 255},
		hsi.MaterialCamouflage: {240, 200, 60, 255},
		hsi.MaterialShadow:     {30, 30, 50, 255},
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			c, ok := palette[truth[y*width+x]]
			if !ok {
				c = color.RGBA{255, 0, 255, 255}
			}
			img.SetRGBA(x, y, c)
		}
	}
	return img, nil
}

// WritePNG writes any image to path as PNG.
func WritePNG(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
