package colormap

import (
	"errors"
	"image"
	"math"
	"path/filepath"
	"testing"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/pct"
)

func TestStretchApply(t *testing.T) {
	s := Stretch{Center: 10, Scale: 2}
	if got := s.Apply(10); got != 128 {
		t.Fatalf("center maps to %g", got)
	}
	if got := s.Apply(1e9); got != 255 {
		t.Fatalf("clamp high = %g", got)
	}
	if got := s.Apply(-1e9); got != 0 {
		t.Fatalf("clamp low = %g", got)
	}
	if got := s.Apply(20); got != 148 {
		t.Fatalf("Apply(20) = %g", got)
	}
}

func TestVarianceStretch(t *testing.T) {
	st := VarianceStretch(linalg.Vector{16, 4, 0}, 2)
	// sigma=4, k=2 -> scale = 128/8 = 16.
	if math.Abs(st[0].Scale-16) > 1e-12 {
		t.Fatalf("scale[0] = %g", st[0].Scale)
	}
	if st[2].Scale != 0 {
		t.Fatalf("zero-variance scale = %g", st[2].Scale)
	}
	// k<=0 defaults to 3.
	st = VarianceStretch(linalg.Vector{9}, 0)
	if math.Abs(st[0].Scale-128.0/9) > 1e-12 {
		t.Fatalf("default-k scale = %g", st[0].Scale)
	}
	// Negative eigenvalue (numerical noise) treated as zero variance.
	st = VarianceStretch(linalg.Vector{-1}, 3)
	if st[0].Scale != 0 {
		t.Fatalf("negative eigenvalue scale = %g", st[0].Scale)
	}
}

func TestPercentileStretch(t *testing.T) {
	plane := make([]float64, 101)
	for i := range plane {
		plane[i] = float64(i) // 0..100
	}
	s := PercentileStretch(plane, 0, 1)
	if got := s.Apply(0); got > 1 {
		t.Fatalf("low end = %g", got)
	}
	if got := s.Apply(100); got < 254 {
		t.Fatalf("high end = %g", got)
	}
	if got := s.Apply(50); math.Abs(got-127.5) > 1 {
		t.Fatalf("mid = %g", got)
	}
	// Degenerate inputs.
	if s := PercentileStretch(nil, 0.02, 0.98); s.Scale != 0 {
		t.Fatal("empty plane should give zero scale")
	}
	if s := PercentileStretch(plane, 0.9, 0.1); s.Scale != 0 {
		t.Fatal("inverted percentiles should give zero scale")
	}
	flat := []float64{5, 5, 5}
	if s := PercentileStretch(flat, 0.02, 0.98); s.Scale != 0 {
		t.Fatal("flat plane should give zero scale")
	}
}

func TestMapPixelNeutral(t *testing.T) {
	// A neutral (128,128,128) component triple maps to mid gray.
	r, g, b := MapPixel([3]float64{128, 128, 128})
	if r != 128 || g != 128 || b != 128 {
		t.Fatalf("neutral -> %d,%d,%d", r, g, b)
	}
	// Raising PC1 (achromatic) raises R and G (positive column-1 weights).
	r2, g2, _ := MapPixel([3]float64{228, 128, 128})
	if r2 <= r || g2 <= g {
		t.Fatalf("achromatic increase did not brighten: %d,%d", r2, g2)
	}
}

func TestMapPixelOpponency(t *testing.T) {
	// PC2 drives red-green opponency: increasing it should move R and G
	// in *different* directions relative to their weights' signs.
	_, _, bHi := MapPixel([3]float64{128, 128, 228})
	_, _, bLo := MapPixel([3]float64{128, 128, 28})
	if bHi == bLo {
		t.Fatal("PC3 had no effect on blue channel")
	}
}

func TestComposeOnRealPipeline(t *testing.T) {
	scene, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 40, Height: 40, Bands: 32, Seed: 6,
		NoiseSigma: 3, Illumination: 0.1,
		OpenVehicles: 1, CamouflagedVehicles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pct.Run(scene.Cube, pct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Compose(res.Components, VarianceStretch(res.Eigen.Values[:3], 3))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds() != image.Rect(0, 0, 40, 40) {
		t.Fatalf("bounds = %v", img.Bounds())
	}
	// The composite must not be flat: contrast is the point of fusion.
	if imageStdDev(img) < 5 {
		t.Fatalf("composite nearly flat, stddev=%g", imageStdDev(img))
	}
}

func imageStdDev(img *image.RGBA) float64 {
	var sum, ss, n float64
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			c := img.RGBAAt(x, y)
			v := float64(c.R) + float64(c.G) + float64(c.B)
			sum += v
			ss += v * v
			n++
		}
	}
	mean := sum / n
	return math.Sqrt(ss/n - mean*mean)
}

func TestComposeValidation(t *testing.T) {
	two := hsi.MustNewCube(2, 2, 2)
	if _, err := Compose(two, make([]Stretch, 3)); !errors.Is(err, ErrNeedThreeComponents) {
		t.Fatalf("2-band err = %v", err)
	}
	three := hsi.MustNewCube(2, 2, 3)
	if _, err := Compose(three, make([]Stretch, 2)); err == nil {
		t.Fatal("2 stretches accepted")
	}
}

func TestRenderBand(t *testing.T) {
	scene, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 24, Height: 24, Bands: 16, Seed: 7, NoiseSigma: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	img, err := RenderBand(scene.Cube, 0)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 24 || img.Bounds().Dy() != 24 {
		t.Fatalf("bounds = %v", img.Bounds())
	}
	if _, err := RenderBand(scene.Cube, 99); err == nil {
		t.Fatal("band 99 accepted")
	}
	img2, band, err := RenderBandNearest(scene.Cube, 1998)
	if err != nil || img2 == nil {
		t.Fatalf("RenderBandNearest: %v", err)
	}
	if band <= 0 || band >= 16 {
		t.Fatalf("nearest band = %d", band)
	}
	noWl := scene.Cube.Clone()
	noWl.Wavelengths = nil
	if _, _, err := RenderBandNearest(noWl, 1998); err == nil {
		t.Fatal("missing wavelengths accepted")
	}
}

func TestRenderTruthAndWritePNG(t *testing.T) {
	scene, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 16, Height: 16, Bands: 8, Seed: 8,
		OpenVehicles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	img, err := RenderTruth(scene.Truth, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "truth.png")
	if err := WritePNG(path, img); err != nil {
		t.Fatal(err)
	}
	if _, err := RenderTruth(scene.Truth, 5, 5); err == nil {
		t.Fatal("bad geometry accepted")
	}
	if err := WritePNG("/nonexistent-dir/x.png", img); err == nil {
		t.Fatal("bad path accepted")
	}
}
