package failure

import (
	"errors"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"resilientfusion/internal/resilient"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/simnet"
)

// simHarness is a small simulated cluster with one replicated worker
// group (lid 1) whose replicas record the virtual time at which they are
// killed.
type simHarness struct {
	x   *simnet.Exec
	ns  []*simnet.Node
	sys *scplib.SimSystem
	rt  *resilient.Runtime

	mu     sync.Mutex
	killed []float64 // virtual kill times observed by replicas
}

const workerLID resilient.LogicalID = 1

func newSimHarness(t *testing.T, regenerate bool) *simHarness {
	t.Helper()
	x, ns := scplib.NewCluster(3, 1e8)
	x.Horizon = 1000
	sys := scplib.NewSimSystem(x, x.NewBus(0, 0), ns, scplib.DefaultMsgCost())
	rt, err := resilient.New(sys, resilient.Config{
		Nodes:           3,
		Replication:     2,
		HeartbeatPeriod: 0.5,
		FailTimeout:     2,
		Regenerate:      regenerate,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &simHarness{x: x, ns: ns, sys: sys, rt: rt}
	body := func(env resilient.REnv) error {
		for {
			_, err := env.RecvTimeout(0.25)
			switch {
			case err == nil || errors.Is(err, resilient.ErrTimeout):
				continue
			case errors.Is(err, resilient.ErrKilled):
				h.mu.Lock()
				h.killed = append(h.killed, env.Now())
				h.mu.Unlock()
				return err
			default:
				return err
			}
		}
	}
	if err := rt.AddGroup(workerLID, "worker", []int{1, 2}, body); err != nil {
		t.Fatal(err)
	}
	return h
}

// run starts the runtime, arms the plan, and drives the simulation until
// stopAt, when everything is shut down.
func (h *simHarness) run(t *testing.T, p Plan, stopAt float64) {
	t.Helper()
	if err := p.Arm(h.x, h.rt, h.ns); err != nil {
		t.Fatal(err)
	}
	h.x.Schedule(stopAt, h.rt.Shutdown)
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sys.Run(); err != nil {
		t.Fatalf("sim run: %v", err)
	}
}

func TestArmRejectsBadNode(t *testing.T) {
	h := newSimHarness(t, false)
	p := Plan{Events: []Event{CrashNode(1, 99)}}
	if err := p.Arm(h.x, h.rt, h.ns); err == nil {
		t.Fatal("bad node accepted")
	}
	// Kill-only plans need no node table at all.
	p = Plan{Events: []Event{KillReplica(1, workerLID, 0)}}
	if err := p.Arm(h.x, h.rt, nil); err != nil {
		t.Fatalf("kill-only plan with nil nodes: %v", err)
	}
}

// TestKillTriggerTiming checks that a replica kill fires at its scheduled
// virtual time, and that the guardian's failure detector notices within
// its timeout.
func TestKillTriggerTiming(t *testing.T) {
	h := newSimHarness(t, false)
	const at = 5.0
	h.run(t, Plan{Events: []Event{KillReplica(at, workerLID, 0)}}, 20)

	h.mu.Lock()
	defer h.mu.Unlock()
	// Two replicas die: one from the plan at t=5, one at shutdown t=20.
	if len(h.killed) != 2 {
		t.Fatalf("saw %d replica deaths, want 2 (injection + shutdown): %v", len(h.killed), h.killed)
	}
	if h.killed[0] < at || h.killed[0] > at+0.5 {
		t.Errorf("injected kill observed at t=%.3f, scheduled at t=%.1f", h.killed[0], at)
	}
	st := h.rt.Stats()
	if st.Detections != 1 {
		t.Errorf("detector found %d failures, want 1", st.Detections)
	}
	if len(st.DetectionLatency) != 1 {
		t.Fatalf("detection latencies: %v", st.DetectionLatency)
	}
	// Latency is measured from the last heartbeat seen; it must be
	// within the configured FailTimeout plus one heartbeat of slack.
	if l := st.DetectionLatency[0]; l <= 0 || l > 2.5+0.5 {
		t.Errorf("detection latency %.3fs outside (0, FailTimeout+slack]", l)
	}
	if st.Regenerations != 0 {
		t.Errorf("regeneration disabled but %d regenerations", st.Regenerations)
	}
}

// TestKillTriggersRegeneration checks the plan's interaction with the
// resilient runtime end to end: injected kill → detection → replacement
// replica spawned.
func TestKillTriggersRegeneration(t *testing.T) {
	h := newSimHarness(t, true)
	h.run(t, Plan{Events: []Event{KillReplica(3, workerLID, 1)}}, 30)

	st := h.rt.Stats()
	if st.Detections < 1 {
		t.Fatalf("no detection after injected kill: %+v", st)
	}
	if st.Regenerations < 1 {
		t.Fatalf("no regeneration after detection: %+v", st)
	}
	if len(st.RegenerationLatency) != st.Regenerations {
		t.Fatalf("latency per regeneration: %+v", st)
	}
	for _, l := range st.RegenerationLatency {
		if l <= 0 || l > 10 {
			t.Errorf("implausible regeneration latency %.3fs", l)
		}
	}
}

// TestCrashNodeKillsResidentReplica checks whole-node crashes: the
// replica placed on the failed node dies and is detected.
func TestCrashNodeKillsResidentReplica(t *testing.T) {
	h := newSimHarness(t, false)
	h.run(t, Plan{Events: []Event{CrashNode(4, 2)}}, 20)

	st := h.rt.Stats()
	if st.Detections != 1 {
		t.Errorf("node crash detections = %d, want 1", st.Detections)
	}
	if n := h.rt.AliveReplicas(workerLID); n != 1 {
		t.Errorf("alive replicas after node crash = %d, want 1", n)
	}
}

// TestArmReal schedules a kill on the wall-clock runtime and rejects
// node crashes, which only exist on the simulated cluster.
func TestArmReal(t *testing.T) {
	sys := scplib.NewRealSystem()
	rt, err := resilient.New(sys, resilient.Config{
		Nodes:           3,
		Replication:     2,
		HeartbeatPeriod: 0.02,
		FailTimeout:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	killedAt := -1.0
	body := func(env resilient.REnv) error {
		for {
			_, err := env.RecvTimeout(0.01)
			switch {
			case err == nil || errors.Is(err, resilient.ErrTimeout):
				continue
			case errors.Is(err, resilient.ErrKilled):
				mu.Lock()
				if killedAt < 0 {
					killedAt = env.Now()
				}
				mu.Unlock()
				return err
			default:
				return err
			}
		}
	}
	if err := rt.AddGroup(workerLID, "worker", []int{1, 2}, body); err != nil {
		t.Fatal(err)
	}

	if err := (Plan{Events: []Event{CrashNode(0.01, 1)}}).ArmReal(rt); err == nil ||
		!strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("node crash on real runtime err = %v", err)
	}

	if err := (Plan{Events: []Event{KillReplica(0.05, workerLID, 0)}}).ArmReal(rt); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	time.AfterFunc(400*time.Millisecond, rt.Shutdown)
	if err := sys.Run(); err != nil {
		t.Fatalf("real run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if killedAt < 0.04 {
		t.Errorf("injected kill observed at %.3fs, armed for 0.05s", killedAt)
	}
}

// TestKillProcessReal SIGKILLs a real child process on a wall-clock
// timer — the primitive the cluster chaos test uses on fusionworkerd —
// and checks that simulated plans refuse process events.
func TestKillProcessReal(t *testing.T) {
	cmd := exec.Command("sleep", "60")
	if err := cmd.Start(); err != nil {
		t.Skipf("cannot start sleep: %v", err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	h := newSimHarness(t, false)
	p := Plan{Events: []Event{KillProcess(0.05, cmd.Process)}}
	if err := p.Arm(h.x, h.rt, h.ns); err == nil ||
		!strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("process kill on simulated runtime err = %v", err)
	}
	if s := p.Events[0].String(); !strings.Contains(s, "kill -9") {
		t.Fatalf("event string %q", s)
	}

	if err := p.ArmReal(nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) {
			t.Fatalf("process exit: %v", err)
		}
		if s := exitErr.String(); !strings.Contains(s, "killed") {
			t.Fatalf("process ended with %q, want SIGKILL", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("armed process kill never fired")
	}
}
