// Package failure scripts fault and attack injection against a resilient
// runtime: replica kills (the paper's information-warfare attack model)
// and whole-node crashes, scheduled in virtual time on the simulated
// cluster or wall-clock time on the real runtime.
package failure

import (
	"fmt"
	"os"
	"time"

	"resilientfusion/internal/resilient"
	"resilientfusion/internal/simnet"
)

// Event is one scripted fault.
type Event struct {
	// At is the injection time in seconds (virtual or wall-clock).
	At float64
	// KillLID/KillSlot destroy one replica of a logical thread when
	// Kill is true.
	Kill     bool
	KillLID  resilient.LogicalID
	KillSlot int
	// FailNode crashes an entire cluster node (simulated runtime only)
	// when >= 0.
	FailNode int
	// Proc, when non-nil, is an OS process to SIGKILL (real runtime
	// only) — the cluster chaos tests use it to kill -9 fusionworkerd
	// daemons mid-scene.
	Proc *os.Process
}

// KillReplica builds a replica-kill event.
func KillReplica(at float64, lid resilient.LogicalID, slot int) Event {
	return Event{At: at, Kill: true, KillLID: lid, KillSlot: slot, FailNode: -1}
}

// CrashNode builds a node-crash event.
func CrashNode(at float64, node int) Event {
	return Event{At: at, FailNode: node}
}

// KillProcess builds an OS-process SIGKILL event (real runtime only).
func KillProcess(at float64, proc *os.Process) Event {
	return Event{At: at, Proc: proc, FailNode: -1}
}

func (e Event) String() string {
	switch {
	case e.Kill:
		return fmt.Sprintf("t=%.2fs kill worker %d replica %d", e.At, e.KillLID, e.KillSlot)
	case e.Proc != nil:
		return fmt.Sprintf("t=%.2fs kill -9 pid %d", e.At, e.Proc.Pid)
	}
	return fmt.Sprintf("t=%.2fs crash node %d", e.At, e.FailNode)
}

// Plan is an ordered fault schedule.
type Plan struct {
	Events []Event
}

// Arm schedules the plan on a simulated cluster. nodes may be nil if the
// plan contains no node crashes.
func (p Plan) Arm(x *simnet.Exec, rt *resilient.Runtime, nodes []*simnet.Node) error {
	for _, e := range p.Events {
		e := e
		if e.Proc != nil {
			return fmt.Errorf("failure: process kill unsupported on simulated runtime: %s", e)
		}
		if !e.Kill && (e.FailNode < 0 || e.FailNode >= len(nodes)) {
			return fmt.Errorf("failure: bad node %d in %s", e.FailNode, e)
		}
		x.Schedule(e.At, func() {
			if e.Kill {
				rt.KillReplica(e.KillLID, e.KillSlot)
			} else {
				nodes[e.FailNode].Fail()
			}
		})
	}
	return nil
}

// ArmReal schedules replica kills and process kills on wall-clock timers
// for the real runtime. Node crashes are not supported there (the host
// is the node); to lose a cluster node, SIGKILL its fusionworkerd via a
// KillProcess event instead.
func (p Plan) ArmReal(rt *resilient.Runtime) error {
	for _, e := range p.Events {
		if !e.Kill && e.Proc == nil {
			return fmt.Errorf("failure: node crash unsupported on real runtime: %s", e)
		}
		e := e
		time.AfterFunc(time.Duration(e.At*float64(time.Second)), func() {
			if e.Proc != nil {
				_ = e.Proc.Kill()
				return
			}
			rt.KillReplica(e.KillLID, e.KillSlot)
		})
	}
	return nil
}
