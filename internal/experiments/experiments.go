// Package experiments reproduces the paper's evaluation: each function
// regenerates one figure (or quantitative claim) from §4 on the simulated
// cluster, returning both raw series and formatted tables. The same
// harness backs cmd/perfchart, the repository benchmarks, and
// EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"resilientfusion/internal/core"
	"resilientfusion/internal/failure"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/metrics"
	"resilientfusion/internal/perfmodel"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/simnet"
	"resilientfusion/internal/spectral"
)

// Scale selects the experiment size. PaperScale reproduces §4's
// configuration; SmallScale keeps unit tests and benchmarks quick while
// preserving every shape.
type Scale struct {
	Name  string
	Scene hsi.SceneSpec
	// Procs are the worker counts of Figure 4's x-axis.
	Procs []int
	// Fig5Procs are Figure 5's x-axis (the paper starts at 2).
	Fig5Procs []int
	// NodeRate is the per-node flop rate.
	NodeRate float64
	// MsgCost is the per-message protocol CPU cost.
	MsgCost scplib.MsgCost
	// HeartbeatPeriod tunes the resiliency control plane.
	HeartbeatPeriod float64
	// Threshold is the spectral-angle screening threshold (0 → default).
	Threshold float64
	// Interference is the per-extra-job throughput loss of co-resident
	// computations (see simnet.Node.Interference).
	Interference float64
	// Parallelism is the host-side kernel parallelism of every simulated
	// worker (core.Options.Parallelism). The simulator executes exactly
	// one process at a time, so worker kernels never compete with each
	// other: 0 selects full GOMAXPROCS per kernel, which cuts the wall
	// clock of paper-scale sweeps on multicore hosts without changing a
	// bit of any result or any virtual-time measurement (the pct kernels
	// reduce over fixed shard grids; virtual time comes from the cost
	// model). Negative forces serial kernels.
	Parallelism int
}

// PaperScale is the configuration of §4: a 320×320×105 cube on
// 300 MHz-class workstations with shared 100BaseT.
func PaperScale() Scale {
	spec := hsi.DefaultSceneSpec()
	spec.Bands = 105 // §4: "the initial cube size was 320x320x105"
	return Scale{
		Name:            "paper",
		Scene:           spec,
		Procs:           []int{1, 2, 4, 8, 16},
		Fig5Procs:       []int{2, 4, 8, 16},
		NodeRate:        perfmodel.EffectiveWorkstationRate,
		MsgCost:         scplib.DefaultMsgCost(),
		HeartbeatPeriod: 2,
		// 0.03 rad (≈1.7°) yields a unique set of ~100 pixel vectors on
		// the synthetic scene, keeping the manager's sequential merge a
		// small fraction of the distributed screening work — the regime
		// the paper's evaluation operates in.
		Threshold: 0.03,
		// Co-resident replicas interfere (cache/context-switch churn on
		// period workstations): the source of the paper's ~10% overhead
		// beyond the replication factor.
		Interference: 0.1,
	}
}

// SmallScale shrinks the cube and cluster so the full suite runs in
// seconds; the performance model scales with it.
func SmallScale() Scale {
	spec := hsi.SceneSpec{
		Width: 64, Height: 64, Bands: 24, Seed: 1,
		NoiseSigma: 6, Illumination: 0.12,
		OpenVehicles: 1, CamouflagedVehicles: 1,
	}
	rate := perfmodel.EffectiveWorkstationRate / 16
	cost := scplib.DefaultMsgCost()
	cost.FixedFlops /= 16
	cost.FlopsPerByte /= 16
	return Scale{
		Name:            "small",
		Scene:           spec,
		Procs:           []int{1, 2, 4, 8},
		Fig5Procs:       []int{2, 4, 8},
		NodeRate:        rate,
		MsgCost:         cost,
		HeartbeatPeriod: 2,
	}
}

// Network selects the cluster interconnect model.
type Network int

const (
	// NetBus is the paper's shared 100BaseT segment.
	NetBus Network = iota
	// NetSwitched is a full-duplex switched fabric (ablation A3).
	NetSwitched
	// NetShared models a shared-memory multiprocessor: communication is
	// free (the §4 closing claim, experiment E6).
	NetShared
)

// RunConfig describes one fusion execution on the simulated cluster.
type RunConfig struct {
	Scale       Scale
	Workers     int
	Granularity int
	Prefetch    int // -1 disables overlap
	Replication int
	Regenerate  bool
	Network     Network
	Plan        *failure.Plan
	// RequestTimeout overrides the manager reissue timeout (seconds).
	RequestTimeout float64
	// Parallelism overrides Scale.Parallelism for this run (same
	// semantics; 0 defers to the scale, then to full GOMAXPROCS).
	Parallelism int
}

// RunOutcome bundles the fusion result with runtime telemetry.
type RunOutcome struct {
	Result    *core.Result
	BytesSent int64
	// Resilient protocol statistics (zero-valued for bare runs).
	Detections    int
	Regenerations int
	DetectLatency []float64
	RegenLatency  []float64
}

// Run executes one configuration and returns the outcome.
func Run(cfg RunConfig) (*RunOutcome, error) {
	scene, err := hsi.GenerateScene(cfg.Scale.Scene)
	if err != nil {
		return nil, err
	}
	return RunOnCube(cfg, scene.Cube)
}

// RunOnCube is Run with a pre-generated cube (so sweeps share one scene).
func RunOnCube(cfg RunConfig, cube *hsi.Cube) (*RunOutcome, error) {
	x, nodes := scplib.NewCluster(cfg.Workers+1, cfg.Scale.NodeRate)
	x.Horizon = 1e7
	for _, n := range nodes {
		n.Interference = cfg.Scale.Interference
	}
	var network simnet.Network
	msgCost := cfg.Scale.MsgCost
	switch cfg.Network {
	case NetSwitched:
		network = x.NewSwitched(0, 0)
	case NetShared:
		network = x.NewZeroNet()
		msgCost = scplib.MsgCost{} // shared memory: no protocol stack
	default:
		network = x.NewBus(0, 0)
	}
	sys := scplib.NewSimSystem(x, network, nodes, msgCost)

	timeout := cfg.RequestTimeout
	if timeout == 0 {
		// Performance sweeps run failure-free: a generous reissue
		// timeout avoids spurious retransmission of long sub-problems.
		timeout = 1e5
	}
	// Kernel parallelism on the host running the simulation. Explicit
	// run/scale settings win; the default is full GOMAXPROCS per kernel
	// (not core.SharedKernelParallelism: simulated workers execute one at
	// a time, so there is nothing to share the host with). Results and
	// virtual times are identical for every setting.
	par := cfg.Parallelism
	if par == 0 {
		par = cfg.Scale.Parallelism
	}
	if par == 0 {
		par = linalg.MaxWorkers()
	}
	opts := core.Options{
		Workers:         cfg.Workers,
		Granularity:     cfg.Granularity,
		Prefetch:        cfg.Prefetch,
		Threshold:       cfg.Scale.Threshold,
		Parallelism:     par,
		Replication:     cfg.Replication,
		Regenerate:      cfg.Regenerate,
		HeartbeatPeriod: cfg.Scale.HeartbeatPeriod,
		RequestTimeout:  timeout,
	}
	job, err := core.NewJob(sys, cube, opts)
	if err != nil {
		return nil, err
	}
	if cfg.Plan != nil {
		if err := cfg.Plan.Arm(x, job.Runtime(), nodes); err != nil {
			return nil, err
		}
	}
	res, err := job.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s P=%d: %w", cfg.Scale.Name, cfg.Workers, err)
	}
	st := job.Runtime().Stats()
	return &RunOutcome{
		Result:        res,
		BytesSent:     sys.BytesSent(),
		Detections:    st.Detections,
		Regenerations: st.Regenerations,
		DetectLatency: st.DetectionLatency,
		RegenLatency:  st.RegenerationLatency,
	}, nil
}

// Fig4 reproduces Figure 4: execution time against processor count for
// the bare algorithm and for resiliency level 2.
type Fig4 struct {
	Procs       []int
	Base        []float64 // seconds, no resiliency
	Resilient   []float64 // seconds, replication level 2
	SpeedupBase []float64
	SpeedupRes  []float64
	// OverheadBeyondReplication is T_res/(R·T_base) − 1 per point: the
	// protocol overhead the paper reports as ≈10%.
	OverheadBeyondReplication []float64
	// ScreenStats is the aggregate screening workload of each base run:
	// both the comparisons the engine performed and the
	// sequential-equivalent count the cost model charged. Figure 4 holds
	// the decomposition fixed across P, so every entry is identical —
	// the virtual times scale with P while the screening work (and
	// therefore the modeled cost) does not, which is exactly the
	// paper-faithfulness invariant the split counters exist to witness.
	ScreenStats []spectral.Stats
}

// RunFig4 executes the Figure 4 sweep. The problem decomposition is held
// fixed across processor counts (S = 2×Pmax sub-cubes, i.e. granularity
// 2 at the largest machine) so the series measures scaling of the same
// computation; granularity's own effect is Figure 5's subject.
func RunFig4(scale Scale) (*Fig4, error) {
	scene, err := hsi.GenerateScene(scale.Scene)
	if err != nil {
		return nil, err
	}
	out := &Fig4{Procs: scale.Procs}
	fixedS := 2 * scale.Procs[len(scale.Procs)-1]
	for _, p := range scale.Procs {
		g := fixedS / p
		base, err := RunOnCube(RunConfig{Scale: scale, Workers: p, Granularity: g, Replication: 1}, scene.Cube)
		if err != nil {
			return nil, err
		}
		res, err := RunOnCube(RunConfig{Scale: scale, Workers: p, Granularity: g, Replication: 2, Regenerate: true}, scene.Cube)
		if err != nil {
			return nil, err
		}
		out.Base = append(out.Base, base.Result.Times.Total)
		out.Resilient = append(out.Resilient, res.Result.Times.Total)
		out.ScreenStats = append(out.ScreenStats, base.Result.ScreenStats)
		out.OverheadBeyondReplication = append(out.OverheadBeyondReplication,
			res.Result.Times.Total/(2*base.Result.Times.Total)-1)
	}
	out.SpeedupBase = metrics.Speedup(out.Base[0], out.Base)
	out.SpeedupRes = metrics.Speedup(out.Resilient[0], out.Resilient)
	return out, nil
}

// Table renders the Figure 4 series.
func (f *Fig4) Table() *metrics.Table {
	t := &metrics.Table{
		Title:  "Figure 4: execution time vs processors (log2 axes in the paper)",
		XLabel: "processors",
		YUnit:  "s",
	}
	for _, p := range f.Procs {
		t.X = append(t.X, float64(p))
	}
	t.Add("no resiliency", f.Base)
	t.Add("resiliency level 2", f.Resilient)
	return t
}

// ScreenTable renders the screening workload of the base runs: engine
// comparisons, the sequential-equivalent count charged by the cost
// model, and candidates scanned, per processor count.
func (f *Fig4) ScreenTable() *metrics.Table {
	t := &metrics.Table{
		Title:  "Figure 4 (derived): screening workload per run (fixed decomposition)",
		XLabel: "processors",
	}
	var engine, seq, scanned []float64
	for _, st := range f.ScreenStats {
		engine = append(engine, float64(st.Comparisons))
		seq = append(seq, float64(st.SeqComparisons))
		scanned = append(scanned, float64(st.Scanned))
	}
	for _, p := range f.Procs {
		t.X = append(t.X, float64(p))
	}
	t.Add("comparisons (engine)", engine)
	t.Add("comparisons (sequential-equivalent, charged)", seq)
	t.Add("vectors scanned", scanned)
	return t
}

// SpeedupTable renders the derived speedups (claims E4/E5).
func (f *Fig4) SpeedupTable() *metrics.Table {
	t := &metrics.Table{
		Title:  "Figure 4 (derived): speedup vs processors",
		XLabel: "processors",
	}
	for _, p := range f.Procs {
		t.X = append(t.X, float64(p))
	}
	t.Add("speedup (no resiliency)", f.SpeedupBase)
	t.Add("speedup (resiliency 2)", f.SpeedupRes)
	t.Add("overhead beyond 2x", f.OverheadBeyondReplication)
	return t
}

// Fig5 reproduces Figure 5: execution time against processors for
// sub-cube counts of 1×, 2× and 3× the processor count.
type Fig5 struct {
	Procs []int
	Times map[int][]float64 // granularity multiplier -> times
}

// RunFig5 executes the Figure 5 sweep.
func RunFig5(scale Scale) (*Fig5, error) {
	scene, err := hsi.GenerateScene(scale.Scene)
	if err != nil {
		return nil, err
	}
	out := &Fig5{Procs: scale.Fig5Procs, Times: make(map[int][]float64)}
	for _, g := range []int{1, 2, 3} {
		for _, p := range scale.Fig5Procs {
			r, err := RunOnCube(RunConfig{Scale: scale, Workers: p, Granularity: g, Replication: 1}, scene.Cube)
			if err != nil {
				return nil, err
			}
			out.Times[g] = append(out.Times[g], r.Result.Times.Total)
		}
	}
	return out, nil
}

// Table renders the Figure 5 series.
func (f *Fig5) Table() *metrics.Table {
	t := &metrics.Table{
		Title:  "Figure 5: granularity control (time vs processors)",
		XLabel: "processors",
		YUnit:  "s",
	}
	for _, p := range f.Procs {
		t.X = append(t.X, float64(p))
	}
	for _, g := range []int{1, 2, 3} {
		t.Add(fmt.Sprintf("#sub-cube = #proc x %d", g), f.Times[g])
	}
	return t
}

// SubCubeSweep reproduces §4's claim E2b: performance tails off when the
// problem is split into more than ~32 sub-cubes (at the largest P).
type SubCubeSweep struct {
	Workers  int
	SubCubes []int
	Times    []float64
}

// RunSubCubeSweep sweeps granularity multipliers at the largest P.
func RunSubCubeSweep(scale Scale, multipliers []int) (*SubCubeSweep, error) {
	scene, err := hsi.GenerateScene(scale.Scene)
	if err != nil {
		return nil, err
	}
	p := scale.Procs[len(scale.Procs)-1]
	out := &SubCubeSweep{Workers: p}
	for _, g := range multipliers {
		r, err := RunOnCube(RunConfig{Scale: scale, Workers: p, Granularity: g, Replication: 1}, scene.Cube)
		if err != nil {
			return nil, err
		}
		out.SubCubes = append(out.SubCubes, r.Result.SubCubes)
		out.Times = append(out.Times, r.Result.Times.Total)
	}
	return out, nil
}

// Table renders the sweep.
func (s *SubCubeSweep) Table() *metrics.Table {
	t := &metrics.Table{
		Title:  fmt.Sprintf("Sub-cube sweep at P=%d (claim: tail-off past ~32 sub-cubes)", s.Workers),
		XLabel: "sub-cubes",
		YUnit:  "s",
	}
	for _, sc := range s.SubCubes {
		t.X = append(t.X, float64(sc))
	}
	t.Add("time", s.Times)
	return t
}

// SharedMemory reproduces §4's closing claim (E6): on a shared-memory
// system the algorithm is within 5% of linear speedup.
type SharedMemory struct {
	Procs    []int
	Times    []float64
	Speedups []float64
	// WorstShortfall is the worst fractional distance from linear.
	WorstShortfall float64
}

// RunSharedMemory executes the zero-communication sweep with the same
// fixed decomposition as Figure 4, so the network model is the only
// variable between the two speedup series.
func RunSharedMemory(scale Scale) (*SharedMemory, error) {
	scene, err := hsi.GenerateScene(scale.Scene)
	if err != nil {
		return nil, err
	}
	out := &SharedMemory{Procs: scale.Procs}
	fixedS := 2 * scale.Procs[len(scale.Procs)-1]
	for _, p := range scale.Procs {
		r, err := RunOnCube(RunConfig{Scale: scale, Workers: p, Granularity: fixedS / p, Replication: 1, Network: NetShared}, scene.Cube)
		if err != nil {
			return nil, err
		}
		out.Times = append(out.Times, r.Result.Times.Total)
	}
	out.Speedups = metrics.Speedup(out.Times[0], out.Times)
	out.WorstShortfall = sharedWorst(out)
	return out, nil
}

func sharedWorst(s *SharedMemory) float64 {
	// The paper's 5% claim concerns parallelizable work; the sequential
	// eigen/merge fraction is excluded by measuring against P=1 like the
	// paper does (T1/TP vs P).
	return metrics.WithinOfLinear(s.Speedups, s.Procs)
}

// Table renders the shared-memory sweep.
func (s *SharedMemory) Table() *metrics.Table {
	t := &metrics.Table{
		Title:  "Shared-memory model (zero communication cost): speedup vs processors",
		XLabel: "processors",
	}
	for _, p := range s.Procs {
		t.X = append(t.X, float64(p))
	}
	t.Add("time (s)", s.Times)
	t.Add("speedup", s.Speedups)
	return t
}

// Regeneration reproduces behaviour E7: an attack mid-run, detection,
// regeneration, and completion, compared against the failure-free run.
type Regeneration struct {
	BaselineTime      float64
	AttackedTime      float64
	Detections        int
	Regenerations     int
	MeanDetectLatency float64
	MeanRegenLatency  float64
	SlowdownPct       float64
}

// RunRegeneration kills one replica of each of the first two worker
// groups early in the run.
func RunRegeneration(scale Scale, workers int) (*Regeneration, error) {
	scene, err := hsi.GenerateScene(scale.Scene)
	if err != nil {
		return nil, err
	}
	base, err := RunOnCube(RunConfig{
		Scale: scale, Workers: workers, Granularity: 2, Replication: 2, Regenerate: true,
	}, scene.Cube)
	if err != nil {
		return nil, err
	}
	killAt := base.Result.Times.Total * 0.25
	plan := &failure.Plan{Events: []failure.Event{
		failure.KillReplica(killAt, 1, 0),
		failure.KillReplica(killAt*1.2, 2, 1),
	}}
	attacked, err := RunOnCube(RunConfig{
		Scale: scale, Workers: workers, Granularity: 2, Replication: 2, Regenerate: true,
		Plan: plan, RequestTimeout: base.Result.Times.Total,
	}, scene.Cube)
	if err != nil {
		return nil, err
	}
	out := &Regeneration{
		BaselineTime:      base.Result.Times.Total,
		AttackedTime:      attacked.Result.Times.Total,
		Detections:        attacked.Detections,
		Regenerations:     attacked.Regenerations,
		MeanDetectLatency: metrics.Mean(attacked.DetectLatency),
		MeanRegenLatency:  metrics.Mean(attacked.RegenLatency),
		SlowdownPct:       100 * (attacked.Result.Times.Total/base.Result.Times.Total - 1),
	}
	return out, nil
}

// Table renders the regeneration experiment.
func (r *Regeneration) Table() *metrics.Table {
	t := &metrics.Table{
		Title:  "Regeneration under attack (two replicas killed mid-run)",
		XLabel: "metric",
		X:      []float64{1, 2, 3, 4, 5, 6},
	}
	t.Add("value", []float64{
		r.BaselineTime, r.AttackedTime, float64(r.Detections),
		float64(r.Regenerations), r.MeanDetectLatency, r.SlowdownPct,
	})
	return t
}
