package experiments

import (
	"math"
	"strings"
	"testing"

	"resilientfusion/internal/metrics"
)

// The shape assertions here mirror EXPERIMENTS.md's criteria at the
// reduced scale; cmd/perfchart checks the same shapes at paper scale.

func TestFig4Shapes(t *testing.T) {
	f4, err := RunFig4(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// Times strictly decrease with processors in both series.
	for i := 1; i < len(f4.Procs); i++ {
		if f4.Base[i] >= f4.Base[i-1] {
			t.Fatalf("base time not decreasing at P=%d: %v", f4.Procs[i], f4.Base)
		}
		if f4.Resilient[i] >= f4.Resilient[i-1] {
			t.Fatalf("resilient time not decreasing at P=%d: %v", f4.Procs[i], f4.Resilient)
		}
	}
	// E5: speedup within ~25% of linear at the reduced scale (the paper
	// reports 20% at full scale; small cubes pay proportionally more
	// fixed overhead).
	if worst := metrics.WithinOfLinear(f4.SpeedupBase, f4.Procs); worst > 0.30 {
		t.Fatalf("speedup shortfall %.2f too large: %v", worst, f4.SpeedupBase)
	}
	// E4: resiliency costs ≈ the replication factor 2 plus a protocol
	// overhead in the ±25% band ("approximately 10%" in the paper).
	for i, p := range f4.Procs {
		ratio := f4.Resilient[i] / f4.Base[i]
		if ratio < 1.6 || ratio > 2.8 {
			t.Fatalf("P=%d resiliency ratio %.2f outside [1.6, 2.8]", p, ratio)
		}
	}
	// Figure 4 holds the decomposition fixed, so the aggregate screening
	// workload — and with it the cost charged per run — must be
	// identical at every P, and the batched engine must not have done
	// redundant work relative to the sequential reference it is charged
	// as.
	if len(f4.ScreenStats) != len(f4.Procs) {
		t.Fatalf("screen stats for %d of %d points", len(f4.ScreenStats), len(f4.Procs))
	}
	for i, st := range f4.ScreenStats {
		if st.Comparisons == 0 || st.Scanned == 0 {
			t.Fatalf("P=%d: empty screen stats %+v", f4.Procs[i], st)
		}
		if st != f4.ScreenStats[0] {
			t.Fatalf("screening workload varies across P with a fixed decomposition: %+v vs %+v",
				st, f4.ScreenStats[0])
		}
		if st.Comparisons != st.SeqComparisons {
			t.Fatalf("P=%d: engine comparisons %d != sequential-equivalent %d",
				f4.Procs[i], st.Comparisons, st.SeqComparisons)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	f5, err := RunFig5(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// E2: more sub-cubes than processors helps — granularity ×2 beats ×1
	// on average across the P axis (balance + overlap).
	m1 := metrics.Mean(f5.Times[1])
	m2 := metrics.Mean(f5.Times[2])
	if m2 >= m1 {
		t.Fatalf("granularity x2 (%.2f) not better than x1 (%.2f)", m2, m1)
	}
	// ×3 stays close to ×2 (the paper's curves nearly coincide).
	m3 := metrics.Mean(f5.Times[3])
	if m3 > m1 {
		t.Fatalf("granularity x3 (%.2f) worse than x1 (%.2f)", m3, m1)
	}
}

func TestSubCubeSweepTailOff(t *testing.T) {
	sw, err := RunSubCubeSweep(SmallScale(), []int{1, 2, 4, 8, 12})
	if err != nil {
		t.Fatal(err)
	}
	// E2b: a minimum exists after which time grows again.
	minIdx := 0
	for i, v := range sw.Times {
		if v < sw.Times[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 {
		t.Fatalf("no benefit from any extra granularity: %v", sw.Times)
	}
	if minIdx == len(sw.Times)-1 {
		t.Fatalf("no tail-off observed: %v", sw.Times)
	}
	if sw.Times[len(sw.Times)-1] <= sw.Times[minIdx]*1.01 {
		t.Fatalf("tail-off too weak: %v", sw.Times)
	}
}

func TestSharedMemoryCloserToLinear(t *testing.T) {
	scale := SmallScale()
	sm, err := RunSharedMemory(scale)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := RunFig4(scale)
	if err != nil {
		t.Fatal(err)
	}
	// E6: zero-communication speedup beats the networked speedup and is
	// close to linear.
	pMax := len(scale.Procs) - 1
	if sm.Speedups[pMax] <= f4.SpeedupBase[pMax] {
		t.Fatalf("shared-memory speedup %.2f not better than bus %.2f",
			sm.Speedups[pMax], f4.SpeedupBase[pMax])
	}
	if sm.WorstShortfall > 0.20 {
		t.Fatalf("shared-memory shortfall %.2f too large", sm.WorstShortfall)
	}
}

func TestRegenerationExperiment(t *testing.T) {
	rg, err := RunRegeneration(SmallScale(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Detections < 2 || rg.Regenerations < 2 {
		t.Fatalf("detections=%d regenerations=%d", rg.Detections, rg.Regenerations)
	}
	if rg.AttackedTime < rg.BaselineTime {
		t.Fatalf("attack made the run faster? %.2f < %.2f", rg.AttackedTime, rg.BaselineTime)
	}
	// Detection latency bounded by the configured timeout plus slack.
	cfgTimeout := SmallScale().HeartbeatPeriod*4 + SmallScale().HeartbeatPeriod
	if rg.MeanDetectLatency > cfgTimeout+2 {
		t.Fatalf("mean detection latency %.2f too large", rg.MeanDetectLatency)
	}
	if rg.Table() == nil {
		t.Fatal("nil table")
	}
}

func TestRunConfigNetworkVariants(t *testing.T) {
	scale := SmallScale()
	for _, n := range []Network{NetBus, NetSwitched, NetShared} {
		out, err := Run(RunConfig{Scale: scale, Workers: 2, Granularity: 2, Replication: 1, Network: n})
		if err != nil {
			t.Fatalf("network %d: %v", n, err)
		}
		if out.Result.Times.Total <= 0 {
			t.Fatalf("network %d: no time recorded", n)
		}
	}
}

func TestTablesRender(t *testing.T) {
	scale := SmallScale()
	f4, err := RunFig4(scale)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f4.Table().Write(&sb); err != nil {
		t.Fatal(err)
	}
	if err := f4.SpeedupTable().Write(&sb); err != nil {
		t.Fatal(err)
	}
	if err := f4.ScreenTable().Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 4", "no resiliency", "resiliency level 2", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q", want)
		}
	}
	f5, err := RunFig5(scale)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := f5.Table().Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#sub-cube = #proc x 3") {
		t.Fatal("figure 5 table incomplete")
	}
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{PaperScale(), SmallScale()} {
		if s.Scene.Width <= 0 || s.NodeRate <= 0 || len(s.Procs) == 0 {
			t.Fatalf("bad scale %+v", s)
		}
		if s.Procs[0] != 1 {
			t.Fatalf("%s: Procs must start at 1 for speedup baselines", s.Name)
		}
		for i := 1; i < len(s.Procs); i++ {
			if s.Procs[i]%s.Procs[i-1] != 0 {
				t.Fatalf("%s: Procs must be multiplicative for fixed-S granularity", s.Name)
			}
		}
	}
	if math.Abs(PaperScale().Threshold-0.03) > 1e-12 {
		t.Fatal("paper threshold drifted from the documented calibration")
	}
}
