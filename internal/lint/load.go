package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, type-checked compilation unit.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listJSON is the subset of `go list -json` output the loader consumes.
type listJSON struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load lists patterns in dir with the go tool and parses plus
// type-checks every matched (non-dependency) package for which need
// returns true. Dependency type information comes from the compiler
// export data that `go list -export` leaves in the build cache, so
// loading is offline, needs no source type-checking of dependencies,
// and works identically for the module under dir and for fixture
// modules under testdata.
func Load(dir string, patterns []string, need func(importPath string) bool) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listJSON
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.DepOnly && !m.Standard && need(m.ImportPath) {
			targets = append(targets, m)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.Name, pkg.Dir = t.Name, t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` and decodes the stream.
func goList(dir string, patterns []string) ([]*listJSON, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var metas []*listJSON
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listJSON
		if err := dec.Decode(&m); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		metas = append(metas, &m)
	}
	return metas, nil
}

// exportImporter resolves imports from compiler export data files named
// by lookup. The gc importer caches internally, so one importer instance
// is shared across every package of a load.
func exportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// check parses goFiles (relative names resolved against dir) and
// type-checks them as the package at importPath.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(dir, gf)
		}
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
