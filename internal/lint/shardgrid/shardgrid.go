// Package shardgrid implements the fusionlint analyzer that keeps the
// parallelism resolver singular: runtime.GOMAXPROCS and runtime.NumCPU
// may be read only inside internal/linalg/parfor.go (linalg.MaxWorkers).
// Every other package derives automatic worker counts from that one
// resolver, so Parallelism=0 can never resolve to different widths in
// different packages — the prerequisite for "bit-identical at every
// Parallelism" meaning one thing repo-wide.
package shardgrid

import (
	"go/ast"

	"resilientfusion/internal/lint"
)

// Analyzer flags direct runtime.GOMAXPROCS / runtime.NumCPU reads
// outside the parallelism resolver file.
var Analyzer = &lint.Analyzer{
	Name:    "shardgrid",
	Doc:     "flag runtime.GOMAXPROCS/NumCPU reads outside the single parallelism resolver internal/linalg/parfor.go",
	Applies: func(string) bool { return true },
	Run:     run,
}

func run(pass *lint.Pass) error {
	inLinalg := lint.HasPathSuffix(pass.ImportPath, "internal/linalg")
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		if inLinalg && pass.Filename(f.Pos()) == "parfor.go" {
			continue // the sanctioned resolver
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := lint.PkgFunc(pass.Info, call); ok && pkg == "runtime" && (name == "GOMAXPROCS" || name == "NumCPU") {
				pass.Reportf(call.Pos(), "runtime.%s read outside the parallelism resolver internal/linalg/parfor.go: use linalg.MaxWorkers so Parallelism=0 resolves identically everywhere", name)
			}
			return true
		})
	}
	return nil
}
