module fusionlint.test/grid

go 1.24
