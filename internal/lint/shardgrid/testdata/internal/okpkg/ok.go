// Package okpkg derives widths from values handed to it instead of
// reading the runtime: clean.
package okpkg

func Split(maxWorkers, jobs int) int {
	w := maxWorkers / jobs
	if w < 1 {
		w = 1
	}
	return w
}
