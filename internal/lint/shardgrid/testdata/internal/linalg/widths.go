package linalg

import "runtime"

// Same package as parfor.go, different file: the allowlist is the
// resolver file, not the whole package.
func widthHere() int {
	return runtime.GOMAXPROCS(0) // want "outside the parallelism resolver"
}
