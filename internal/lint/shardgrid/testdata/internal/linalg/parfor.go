// The sanctioned parallelism resolver: runtime width reads are legal
// only in this file, so nothing here may produce a diagnostic (the
// allowlist boundary — the same reads one file over are flagged, see
// widths.go).
package linalg

import "runtime"

func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

func PhysicalCPUs() int { return runtime.NumCPU() }
