// Commands are not exempt: a flag default read straight off the
// runtime is exactly how Parallelism=0 comes to mean different widths
// in different binaries.
package main

import "runtime"

func defaultWorkers() int {
	return runtime.NumCPU() // want "outside the parallelism resolver"
}

func main() { _ = defaultWorkers() }
