package shardgrid_test

import (
	"testing"

	"resilientfusion/internal/lint/linttest"
	"resilientfusion/internal/lint/shardgrid"
)

func TestShardgrid(t *testing.T) {
	linttest.Run(t, "testdata", shardgrid.Analyzer)
}
