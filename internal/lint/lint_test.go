package lint

import (
	"go/token"
	"testing"
)

func TestHasPathSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"resilientfusion/internal/linalg", "internal/linalg", true},
		{"internal/linalg", "internal/linalg", true},
		{"resilientfusion/internal/linalgx", "internal/linalg", false},
		{"resilientfusion/xinternal/linalg", "internal/linalg", false},
		{"fusionlint.test/det/internal/core", "internal/core", true},
		{"", "internal/core", false},
	}
	for _, c := range cases {
		if got := HasPathSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("HasPathSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestSortDiagnosticsDeterministic(t *testing.T) {
	d := func(file string, line, col int, a string) Diagnostic {
		return Diagnostic{Analyzer: a, Pos: token.Position{Filename: file, Line: line, Column: col}}
	}
	diags := []Diagnostic{
		d("b.go", 1, 1, "z"),
		d("a.go", 9, 2, "m"),
		d("a.go", 9, 2, "a"),
		d("a.go", 3, 7, "m"),
	}
	SortDiagnostics(diags)
	want := []Diagnostic{
		d("a.go", 3, 7, "m"),
		d("a.go", 9, 2, "a"),
		d("a.go", 9, 2, "m"),
		d("b.go", 1, 1, "z"),
	}
	for i := range want {
		if diags[i] != want[i] {
			t.Fatalf("order[%d] = %+v, want %+v", i, diags[i], want[i])
		}
	}
}
