package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"
)

// VetConfig mirrors the JSON configuration the go command hands a
// -vettool for each compilation unit (the x/tools unitchecker
// protocol): enough of it to parse the unit's files, resolve imports
// from the supplied export data, and write the facts file the build
// cache expects. Unknown fields are ignored.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetTool implements the vet driver protocol for one compilation
// unit: given the *.cfg path go vet passes as the sole argument, it
// returns the unit's findings (empty when the unit is facts-only or no
// analyzer applies). The facts output file is always written — fusionlint
// exports no facts, but the go command caches on the file's existence.
func RunVetTool(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	// The go command vets a package together with its in-package test
	// files under a decorated import path ("p [p.test]"). Scope stays
	// "shipped code only": undecorate the path for Applies and drop the
	// _test.go files — non-test files never depend on them, so the unit
	// still type-checks.
	importPath := cfg.ImportPath
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}
	applicable := false
	for _, a := range analyzers {
		if a.Applies == nil || a.Applies(importPath) {
			applicable = true
			break
		}
	}
	var goFiles []string
	for _, gf := range cfg.GoFiles {
		if !strings.HasSuffix(gf, "_test.go") {
			goFiles = append(goFiles, gf)
		}
	}
	if !applicable || len(goFiles) == 0 {
		return nil, nil
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := check(fset, imp, importPath, cfg.Dir, goFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return RunAnalyzers(pkg, analyzers)
}
