// Package lint is a self-contained, stdlib-only implementation of the
// narrow slice of golang.org/x/tools/go/analysis this repository needs:
// named analyzers over type-checked packages, a `go list`-driven
// standalone loader, the `go vet -vettool` (unitchecker) wire protocol,
// and a want-comment fixture harness (linttest).
//
// It exists because the repo's core invariants — bit-identical parallel
// fusion at every Parallelism, a single parallelism resolver, a closed
// API error-code registry — are cheapest to enforce at compile time,
// and the build intentionally carries no third-party dependencies. The
// analyzers themselves live in subpackages (detsource, shardgrid,
// apierror) and are wired together by cmd/fusionlint; the enforced
// invariants are documented in docs/invariants.md.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("detsource").
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Applies reports whether the analyzer wants to inspect the package
	// with the given import path. Drivers skip type-checking packages no
	// analyzer applies to, so keep it cheap and path-based.
	Applies func(importPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer   *Analyzer
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Filename returns the base name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// IsTestFile reports whether pos sits in a _test.go file. The drivers
// feed analyzers non-test compilation units, but the vet driver hands
// over test variants too; analyzers use this to keep their scope at
// "shipped code only".
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Filename(pos), "_test.go")
}

// HasPathSuffix reports whether importPath ends in suffix at a package
// path segment boundary: "resilientfusion/internal/linalg" has suffix
// "internal/linalg", but "a/xinternal/linalg" does not.
func HasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// PkgFunc resolves call to ("package/path", "FuncName") when it is a
// direct call of a package-level function selected off an imported
// package name — time.Now(), runtime.GOMAXPROCS(0). ok is false for
// method calls, locally defined functions, and anything else.
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsBuiltinAppend reports whether call invokes the append builtin.
func IsBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// RunAnalyzers runs every applicable analyzer over pkg and returns the
// findings sorted by position then analyzer name, so driver output is
// deterministic.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer:   a,
			ImportPath: pkg.ImportPath,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
