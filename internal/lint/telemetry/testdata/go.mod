module fusionlint.test/tele

go 1.24
