package service

import (
	"fmt"
	"io"

	"fusionlint.test/tele/internal/telemetry"
)

const jobsName = "fusion_service_jobs_submitted_total"

// cleanLogging routes diagnostics through an injected hook and writes
// only to caller-supplied writers — none of this is flagged.
func cleanLogging(logf func(string, ...any), w io.Writer) {
	logf("job %s done", "j1")
	fmt.Fprintf(w, "report: %d\n", 1)
}

func cleanMetrics(reg *telemetry.Registry) {
	reg.Counter(jobsName, "Jobs admitted.")
	reg.Counter("fusion_service_jobs_failed_total", "Jobs failed.")
	reg.Gauge("fusion_service_queue_depth", "Queued jobs.")
	reg.GaugeFunc("fusion_cache_entries", "Cached results.", func() int64 { return 0 })
	reg.Histogram("fusion_http_request_seconds", "Request latency.", nil)
	reg.CounterVec("fusion_cluster_frames_sent_total", "Frames sent.", "type")
	reg.HistogramVec("fusion_http_route_seconds", "Route latency.", nil, "route", "status")
}
