package service

import (
	"fmt"
	"log"
	"os"

	"fusionlint.test/tele/internal/telemetry"
)

var dynamicName = "fusion_svc_dyn_total"

func badLogging(err error) {
	log.Printf("job failed: %v", err)             // want "raw log.Printf bypasses the injected telemetry logger"
	log.Println("draining")                       // want "raw log.Println bypasses the injected telemetry logger"
	fmt.Fprintf(os.Stderr, "job failed: %v", err) // want "fmt.Fprintf to os.Stderr bypasses the injected telemetry logger"
	fmt.Fprintln(os.Stderr, "draining")           // want "fmt.Fprintln to os.Stderr bypasses the injected telemetry logger"
}

func badMetrics(reg *telemetry.Registry) {
	reg.Counter("jobs_total", "no prefix")                                         // want "does not start with fusion_"
	reg.Gauge("fusion_depth", "one segment")                                       // want "needs at least a subsystem and a name segment"
	reg.Counter("fusion_svc_jobs", "counter suffix")                               // want "must end in _total"
	reg.CounterVec("fusion_svc_frames", "vec suffix", "ty")                        // want "must end in _total"
	reg.Histogram("fusion_svc_Latency_seconds", "case", nil)                       // want "has a character outside"
	reg.GaugeFunc("fusion_svc__depth", "empty segment", func() int64 { return 0 }) // want "has an empty segment"
	reg.Gauge("fusion_svc_2x", "digit segment")                                    // want "starting with a digit"
	reg.CounterVec(dynamicName, "dynamic", "type")                                 // want "not a compile-time constant"
}
