package core

import "log"

func badCore() {
	log.Print("reissue") // want "raw log.Print bypasses the injected telemetry logger"
}
