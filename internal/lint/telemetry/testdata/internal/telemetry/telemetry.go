// Package telemetry is a fixture stub of the real registry: the
// analyzer matches registration calls by receiver type name and import
// path suffix, so only the method set matters here.
package telemetry

type Registry struct{}
type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}
type HistogramVec struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string) *Counter                  { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge                      { return &Gauge{} }
func (r *Registry) GaugeFunc(name, help string, fn func() int64)        {}
func (r *Registry) Histogram(name, help string, b []float64) *Histogram { return &Histogram{} }
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}
func (r *Registry) HistogramVec(name, help string, b []float64, labels ...string) *HistogramVec {
	return &HistogramVec{}
}
