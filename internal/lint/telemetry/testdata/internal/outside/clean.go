// Package outside sits outside the analyzer's scope: raw logging here
// is allowed (daemon mains and tools own their stderr).
package outside

import (
	"fmt"
	"log"
	"os"
)

func mainStyleLogging() {
	log.Printf("serving on %s", ":8080")
	fmt.Fprintln(os.Stderr, "usage: ...")
}
