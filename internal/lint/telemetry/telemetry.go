// Package telemetry implements the fusionlint analyzer that keeps the
// library layers' observability surface funneled through
// internal/telemetry: diagnostics go to the injected logger (Config
// LogTo / slog), never raw log.Printf or stderr writes, and every
// metric registration uses a name the registry would accept —
// fusion_<subsystem>_<name>[_unit] — caught at lint time instead of as
// a registration panic at daemon start.
package telemetry

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"resilientfusion/internal/lint"
)

// scope lists the library packages that must not log raw: they run
// inside tests, daemons, and other hosts, so diagnostics must flow
// through the injected telemetry logger. The telemetry adapter itself
// (internal/telemetry) and the cmd/ entrypoints stay out of scope —
// main packages own their process's stderr.
var scope = []string{
	"internal/service",
	"internal/scplib",
	"internal/resilient",
	"internal/core",
	"internal/fuse",
	"internal/fuse/pyramid",
	"internal/fuse/dwt",
	"internal/store",
}

// Analyzer flags, within the scoped library packages:
//
//   - calls into the stdlib log package (log.Printf and friends) — they
//     bypass the injected structured logger;
//   - fmt.Fprint/Fprintf/Fprintln with os.Stderr as the writer — raw
//     stderr diagnostics invisible to -log-format/-log-level;
//   - telemetry.Registry registrations (Counter, Gauge, GaugeFunc,
//     Histogram, CounterVec, HistogramVec) whose metric name is not a
//     compile-time constant matching fusion_<subsystem>_<name>[_unit]
//     (counters additionally must end in _total).
var Analyzer = &lint.Analyzer{
	Name: "telemetry",
	Doc:  "flag raw log/stderr diagnostics in library packages and metric registrations outside the fusion_<subsystem>_<name> scheme",
	Applies: func(path string) bool {
		for _, s := range scope {
			if lint.HasPathSuffix(path, s) {
				return true
			}
		}
		return false
	},
	Run: run,
}

var registerMethods = map[string]bool{
	"Counter":      true,
	"Gauge":        true,
	"GaugeFunc":    true,
	"Histogram":    true,
	"CounterVec":   true,
	"HistogramVec": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := lint.PkgFunc(pass.Info, call); ok {
				switch {
				case pkg == "log":
					pass.Reportf(call.Pos(), "raw log.%s bypasses the injected telemetry logger: thread diagnostics through the package's LogTo/slog hook", name)
				case pkg == "fmt" && strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 && isStderr(pass.Info, call.Args[0]):
					pass.Reportf(call.Pos(), "fmt.%s to os.Stderr bypasses the injected telemetry logger: thread diagnostics through the package's LogTo/slog hook", name)
				}
				return true
			}
			checkRegistration(pass, call)
			return true
		})
	}
	return nil
}

// isStderr matches the expression os.Stderr (the package variable, not
// an arbitrary io.Writer that happens to alias it).
func isStderr(info *types.Info, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stderr" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "os"
}

// checkRegistration validates the metric-name argument of
// telemetry.Registry registration methods.
func checkRegistration(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registerMethods[sel.Sel.Name] {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil ||
		!lint.HasPathSuffix(named.Obj().Pkg().Path(), "internal/telemetry") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "metric name is not a compile-time constant: fusionlint cannot verify it against fusion_<subsystem>_<name>")
		return
	}
	name := constant.StringVal(tv.Value)
	if msg := checkName(name, sel.Sel.Name); msg != "" {
		pass.Reportf(arg.Pos(), "metric %q %s (want fusion_<subsystem>_<name>[_unit]; registration would panic at runtime)", name, msg)
	}
}

// checkName mirrors telemetry.ValidateName plus the counter _total rule,
// returning "" when name is acceptable.
func checkName(name, method string) string {
	const prefix = "fusion_"
	if !strings.HasPrefix(name, prefix) {
		return "does not start with fusion_"
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return "has a character outside [a-z0-9_]"
		}
	}
	parts := strings.Split(name[len(prefix):], "_")
	if len(parts) < 2 {
		return "needs at least a subsystem and a name segment after fusion_"
	}
	for _, p := range parts {
		if p == "" {
			return "has an empty segment"
		}
		if p[0] >= '0' && p[0] <= '9' {
			return "has a segment starting with a digit"
		}
	}
	if (method == "Counter" || method == "CounterVec") && !strings.HasSuffix(name, "_total") {
		return "is a counter and must end in _total"
	}
	return ""
}
