package telemetry_test

import (
	"testing"

	"resilientfusion/internal/lint/linttest"
	telemetrylint "resilientfusion/internal/lint/telemetry"
)

func TestTelemetry(t *testing.T) {
	linttest.Run(t, "testdata", telemetrylint.Analyzer)
}
