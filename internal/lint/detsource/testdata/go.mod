module fusionlint.test/det

go 1.24
