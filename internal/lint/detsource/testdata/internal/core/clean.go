package core

import "math/rand"

// The sanctioned patterns: everything here must produce no diagnostics.

// Explicitly seeded randomness is deterministic.
func noise(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// Writes indexed by the map key are order-independent, as are integer
// counters; ordered output comes from a post-pass over the dense slice.
func present(m map[int]bool, n int) []int {
	marks := make([]bool, n)
	total := 0
	for k := range m {
		if k >= 0 && k < n {
			marks[k] = true
			total++
		}
	}
	out := make([]int, 0, total)
	for i, ok := range marks {
		if ok {
			out = append(out, i)
		}
	}
	return out
}
