package core

import (
	"math/rand"
	"time"
)

func stampAndJitter() float64 {
	t := time.Now() // want "time.Now in a deterministic package"
	_ = t
	return rand.Float64() // want "process-global random source"
}

func reseed() {
	rand.Seed(42) // want "process-global random source"
}

func sumWeights(w map[string]float64) float64 {
	var sum float64
	for _, v := range w {
		sum += v // want "floating-point accumulation inside range over a map"
		_ = v
	}
	return sum
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append inside range over a map"
	}
	return out
}

func drain(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "send on a channel inside range over a map"
	}
}
