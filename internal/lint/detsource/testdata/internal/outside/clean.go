// Package outside is not one of the deterministic packages: the same
// constructs detsource flags in internal/core are legal here, so this
// fixture must produce no diagnostics.
package outside

import (
	"math/rand"
	"time"
)

func Stamp() time.Time { return time.Now() }

func Jitter() float64 { return rand.Float64() }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Spawn(fn func()) { go fn() }
