package linalg

// Same package as the allowlisted parfor.go, different file: the
// allowlist is per-file, not per-package.
func fanOut(fns []func()) {
	done := make(chan struct{})
	for _, fn := range fns {
		go func(f func()) { // want "naked go statement"
			f()
			done <- struct{}{}
		}(fn)
	}
	for range fns {
		<-done
	}
}
