// The allowlisted resolver file: parfor.go in internal/linalg is the
// one place the deterministic packages may create goroutines, so the
// go statements below must produce no diagnostics (the allowlist
// boundary the analyzer test pins — the same statement in any other
// file is flagged, see fanout.go).
package linalg

func Shards(n int, fn func(int)) {
	done := make(chan struct{})
	for s := 0; s < n; s++ {
		go func(s int) {
			fn(s)
			done <- struct{}{}
		}(s)
	}
	for s := 0; s < n; s++ {
		<-done
	}
}

func Background(fn func()) {
	go fn()
}
