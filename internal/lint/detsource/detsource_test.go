package detsource_test

import (
	"testing"

	"resilientfusion/internal/lint/detsource"
	"resilientfusion/internal/lint/linttest"
)

func TestDetsource(t *testing.T) {
	linttest.Run(t, "testdata", detsource.Analyzer)
}
