// Package detsource implements the fusionlint analyzer that polices
// nondeterminism sources in the deterministic kernel packages — the
// packages whose outputs must be bit-identical at every
// core.Options.Parallelism (the property every parity test pins and
// every future algorithm inherits).
package detsource

import (
	"go/ast"
	"go/token"
	"go/types"

	"resilientfusion/internal/lint"
)

// DetPackages are the package-path suffixes the deterministic contract
// covers: everything between raw samples and the fused composite, plus
// the durable store — its records must replay to identical state, so
// wall clock and map order are just as forbidden there (timestamps
// arrive as caller-supplied fields, never time.Now).
var DetPackages = []string{
	"internal/core",
	"internal/fuse",
	"internal/fuse/dwt",
	"internal/fuse/pyramid",
	"internal/hsi",
	"internal/linalg",
	"internal/pct",
	"internal/scene",
	"internal/spectral",
	"internal/store",
}

// Analyzer flags nondeterminism sources in the deterministic packages:
//
//   - range over a map whose body appends to a slice, accumulates a
//     float, or sends on a channel — map iteration order would leak into
//     the result;
//   - time.Now — wall-clock reads make output run-dependent;
//   - math/rand calls other than the explicitly seeded constructors
//     rand.New / rand.NewSource — the package-global source is randomly
//     seeded;
//   - naked go statements outside internal/linalg/parfor.go — kernel
//     fan-out must flow through ParallelShards' fixed shard grid, and
//     background work through linalg.Go, so parfor.go stays the single
//     goroutine-creation audit point.
var Analyzer = &lint.Analyzer{
	Name:    "detsource",
	Doc:     "flag nondeterminism sources (map-order-dependent accumulation, wall clock, global rand, naked goroutines) in the deterministic fusion packages",
	Applies: applies,
	Run:     run,
}

func applies(path string) bool {
	for _, d := range DetPackages {
		if lint.HasPathSuffix(path, d) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	inLinalg := lint.HasPathSuffix(pass.ImportPath, "internal/linalg")
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		allowGo := inLinalg && pass.Filename(f.Pos()) == "parfor.go"
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !allowGo {
					pass.Reportf(n.Pos(), "naked go statement outside internal/linalg/parfor.go: kernel fan-out must use linalg.ParallelShards (fixed shard grid) and background work linalg.Go")
				}
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	pkg, name, ok := lint.PkgFunc(pass.Info, call)
	if !ok {
		return
	}
	switch {
	case pkg == "time" && name == "Now":
		pass.Reportf(call.Pos(), "time.Now in a deterministic package: wall-clock reads make fusion output run-dependent")
	case pkg == "math/rand" || pkg == "math/rand/v2":
		// The explicitly seeded constructors are the sanctioned form
		// (hsi.Synthesize builds scenes from a spec seed); everything
		// else draws from or reseeds the process-global source.
		if name != "New" && name != "NewSource" {
			pass.Reportf(call.Pos(), "%s.%s uses the process-global random source: randomness must flow through an explicitly seeded rand.New(rand.NewSource(seed))", pkg, name)
		}
	}
}

// checkMapRange flags order-sensitive accumulation in the body of a
// range over a map. Order-independent bodies — writes indexed by the map
// key, counters, max/min over ints — stay legal: the rule targets the
// three accumulation shapes whose result observably depends on
// iteration order.
func checkMapRange(pass *lint.Pass, rs *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "send on a channel inside range over a map: map iteration order leaks into message order")
		case *ast.CallExpr:
			if lint.IsBuiltinAppend(pass.Info, n) {
				pass.Reportf(n.Pos(), "append inside range over a map: element order depends on map iteration order (collect by index, or keep an ordered set)")
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(pass.Info, lhs) {
						pass.Reportf(n.Pos(), "floating-point accumulation inside range over a map: float arithmetic is not associative, so the result depends on iteration order")
					}
				}
			}
		}
		return true
	})
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
