// Package apierror implements the fusionlint analyzer that keeps the
// service's error surface closed: every HTTP error is written through
// the structured envelope helpers in internal/service/apierror.go, and
// every error code is a constant from that file's registry. The codes
// are wire contract — fusionclient maps them to typed *APIError values,
// so a hand-rolled envelope or a typo'd code silently breaks clients.
package apierror

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"resilientfusion/internal/lint"
)

// RegistryFile is the one file allowed to construct error envelopes.
const RegistryFile = "apierror.go"

// Analyzer flags, within internal/service:
//
//   - http.Error calls outside apierror.go — they bypass the structured
//     {"error":{"code","message"}} envelope;
//   - hand-rolled envelope literals (apiErrorJSON / errorEnvelope
//     composites) outside apierror.go;
//   - error codes passed to writeAPIErrorCode that are not declared in
//     the apierror.go registry, or that restate a registered code as a
//     string literal instead of naming its constant.
var Analyzer = &lint.Analyzer{
	Name:    "apierror",
	Doc:     "flag error responses that bypass apierror.go's envelope helpers or use codes outside its registry",
	Applies: func(path string) bool { return lint.HasPathSuffix(path, "internal/service") },
	Run:     run,
}

func run(pass *lint.Pass) error {
	registry := collectRegistry(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		inRegistry := pass.Filename(f.Pos()) == RegistryFile
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, registry, inRegistry)
			case *ast.CompositeLit:
				if !inRegistry && isEnvelopeType(pass.Info.TypeOf(n)) {
					pass.Reportf(n.Pos(), "hand-rolled error envelope: write error responses through writeAPIError/writeAPIErrorCode (%s)", RegistryFile)
				}
			}
			return true
		})
	}
	return nil
}

// collectRegistry gathers the Code* string constants declared in
// apierror.go: value -> constant name.
func collectRegistry(pass *lint.Pass) map[string]string {
	registry := make(map[string]string)
	for _, f := range pass.Files {
		if pass.Filename(f.Pos()) != RegistryFile {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Code") || i >= len(vs.Values) {
						continue
					}
					if bl, ok := vs.Values[i].(*ast.BasicLit); ok && bl.Kind == token.STRING {
						if v, err := strconv.Unquote(bl.Value); err == nil {
							registry[v] = name.Name
						}
					}
				}
			}
		}
	}
	return registry
}

func checkCall(pass *lint.Pass, call *ast.CallExpr, registry map[string]string, inRegistry bool) {
	if pkg, name, ok := lint.PkgFunc(pass.Info, call); ok {
		if pkg == "net/http" && name == "Error" && !inRegistry {
			pass.Reportf(call.Pos(), "http.Error bypasses the structured error envelope: use writeAPIError or writeAPIErrorCode (%s)", RegistryFile)
		}
		return
	}
	// writeAPIErrorCode(w, status, code, message): the code argument must
	// be a registered constant, named by its constant.
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "writeAPIErrorCode" || len(call.Args) != 4 {
		return
	}
	if fn, ok := pass.Info.Uses[id].(*types.Func); !ok || fn.Pkg() != pass.Pkg {
		return
	}
	arg := call.Args[2]
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // dynamic code (writeAPIError's own dispatch): not checkable here
	}
	val := constant.StringVal(tv.Value)
	constName, registered := registry[val]
	if !registered {
		pass.Reportf(arg.Pos(), "error code %q is not declared in the %s registry: a typo'd code breaks fusionclient's typed *APIError mapping", val, RegistryFile)
		return
	}
	if id, ok := arg.(*ast.Ident); !ok || id.Name != constName {
		pass.Reportf(arg.Pos(), "error code %q restated instead of named: use the %s constant from %s", val, constName, RegistryFile)
	}
}

// isEnvelopeType matches the service's envelope structs by name.
func isEnvelopeType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	n := named.Obj().Name()
	return n == "apiErrorJSON" || n == "errorEnvelope"
}
