package apierror_test

import (
	"testing"

	"resilientfusion/internal/lint/apierror"
	"resilientfusion/internal/lint/linttest"
)

func TestAPIError(t *testing.T) {
	linttest.Run(t, "testdata", apierror.Analyzer)
}
