package service

import "net/http"

// The sanctioned form: registered constants through the registry's
// helper. No diagnostics.
func goodHandler(w http.ResponseWriter, err error) {
	writeAPIErrorCode(w, http.StatusBadRequest, CodeBadOption, err.Error())
	code := CodeInternal // dynamic code values are the helper's business
	writeAPIErrorCode(w, http.StatusInternalServerError, code, "later")
}
