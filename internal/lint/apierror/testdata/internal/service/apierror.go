// The registry file: the one place envelopes are constructed. Nothing
// here may produce a diagnostic.
package service

import (
	"encoding/json"
	"net/http"
)

const (
	CodeBadOption = "bad_option"
	CodeInternal  = "internal"
)

type apiErrorJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error apiErrorJSON `json:"error"`
}

func writeAPIErrorCode(w http.ResponseWriter, status int, code, message string) {
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: apiErrorJSON{Code: code, Message: message}})
}
