package service

import "net/http"

const localCode = "not_registered"

func badHandlers(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError)                    // want "bypasses the structured error envelope"
	writeAPIErrorCode(w, http.StatusBadRequest, "bad_opton", "typo")         // want "not declared in the apierror.go registry"
	writeAPIErrorCode(w, http.StatusBadRequest, "bad_option", "restated")    // want "use the CodeBadOption constant"
	writeAPIErrorCode(w, http.StatusBadRequest, localCode, "via const")      // want "not declared in the apierror.go registry"
	_ = errorEnvelope{Error: apiErrorJSON{Code: CodeInternal, Message: "x"}} // want "hand-rolled error envelope"
}
