// Package other is outside internal/service: the envelope contract
// does not apply, so http.Error is legal and produces no diagnostics.
package other

import "net/http"

func Plain(w http.ResponseWriter) {
	http.Error(w, "fine here", http.StatusTeapot)
}
