module fusionlint.test/api

go 1.24
