// Package linttest checks a lint.Analyzer against fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixture
// source marks each expected finding with a trailing
//
//	// want "regexp"
//
// comment on the offending line. Every diagnostic must match a want on
// its line and every want must be matched — so fixtures double as both
// positive (want-diagnostic) and negative (clean) coverage.
//
// Fixtures live in a testdata directory that is its own Go module (a
// go.mod at the fixture root keeps the repo's ./... patterns out and
// gives `go list` a module to resolve): the same loader that drives
// cmd/fusionlint loads them, so fixture runs exercise the production
// export-data path end to end.
package linttest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"testing"

	"resilientfusion/internal/lint"
)

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hits int
}

// Run loads the fixture module under dir, runs a over every package
// matching patterns (honoring a.Applies exactly as the drivers do), and
// reports any mismatch between findings and want comments to t.
func Run(t *testing.T, dir string, a *lint.Analyzer, patterns ...string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Load everything the patterns name — including packages the
	// analyzer does not apply to, so a stray want comment in an
	// out-of-scope fixture fails the test instead of silently passing.
	pkgs, err := lint.Load(abs, patterns, func(string) bool { return true })
	if err != nil {
		t.Fatalf("loading fixtures under %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s match %v", dir, patterns)
	}

	var wants []*want
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		ws, err := collectWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
		ds, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		diags = append(diags, ds...)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hits++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

func collectWants(pkg *lint.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(pkg, c)...)
			}
		}
	}
	for _, w := range wants {
		if w.re == nil {
			return nil, fmt.Errorf("%s:%d: bad want regexp %q", w.file, w.line, w.raw)
		}
	}
	return wants, nil
}

func parseWants(pkg *lint.Package, c *ast.Comment) []*want {
	var out []*want
	pos := pkg.Fset.Position(c.Pos())
	for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
		w := &want{file: filepath.Base(pos.Filename), line: pos.Line, raw: m[1]}
		if re, err := regexp.Compile(m[1]); err == nil {
			w.re = re
		}
		out = append(out, w)
	}
	return out
}
