package resilient

// dedupe tracks, per logical sender, which logical sequence numbers have
// already been delivered to the application. Replicated senders emit one
// copy per replica with the same lseq; the first to arrive wins. Because
// transport is FIFO per physical pair but replicas interleave, copies may
// arrive out of order relative to each other, so a high-water mark plus a
// sparse set of early arrivals above it is kept per sender.
type dedupe struct {
	peers map[LogicalID]*peerState
}

type peerState struct {
	epoch     uint32          // group incarnation of the peer
	highWater uint64          // all lseq <= highWater have been delivered
	above     map[uint64]bool // delivered lseq > highWater
}

func newDedupe() *dedupe { return &dedupe{peers: make(map[LogicalID]*peerState)} }

// accept reports whether (from, epoch, lseq) is new, recording it if so.
// lseq numbering starts at 1 within each epoch; 0 never arrives.
//
// Epochs handle whole-group regeneration: a group restarted from scratch
// (no survivor to inherit counters from) gets a higher epoch, which resets
// the receiver's sequence space for that peer. Traffic from an older
// epoch — a zombie replica that escaped its kill — is discarded outright.
func (d *dedupe) accept(from LogicalID, epoch uint32, lseq uint64) bool {
	p := d.peers[from]
	if p == nil {
		p = &peerState{epoch: epoch, above: make(map[uint64]bool)}
		d.peers[from] = p
	}
	switch {
	case epoch < p.epoch:
		return false // stale incarnation
	case epoch > p.epoch:
		p.epoch = epoch
		p.highWater = 0
		clear(p.above)
	}
	if lseq <= p.highWater || p.above[lseq] {
		return false
	}
	p.above[lseq] = true
	// Compact: advance the high-water mark over contiguous deliveries.
	for p.above[p.highWater+1] {
		p.highWater++
		delete(p.above, p.highWater)
	}
	return true
}

// snapshotInto exports per-peer epochs and high-water marks (the
// compacted state) for state transfer. Sparse out-of-order entries above
// the mark are deliberately not transferred: re-delivery of those few
// messages to a fresh replica is idempotent at the application protocol
// level, and the bounded loss keeps the snapshot small and the protocol
// simple.
func (d *dedupe) snapshotInto(s *snapshot) {
	for lid, p := range d.peers {
		s.HighWater[lid] = p.highWater
		s.PeerEpoch[lid] = p.epoch
	}
}

// restore seeds epochs and high-water marks from a snapshot.
func (d *dedupe) restore(s *snapshot) {
	for lid, hw := range s.HighWater {
		d.peers[lid] = &peerState{
			epoch:     s.PeerEpoch[lid],
			highWater: hw,
			above:     make(map[uint64]bool),
		}
	}
}
