package resilient

import (
	"encoding/binary"
	"fmt"
	"math"

	"resilientfusion/internal/scplib"
)

// Remote replica support: a replica spawned into a worker process cannot
// carry its Go closure across the wire, so the spec's RemoteBody ships
// wrapperParams — everything a wrapper needs except the inner RBody,
// which is named by kind and rebuilt from a worker-side registry. The
// reconstructed wrapper is protocol-identical to a local one: same
// heartbeats, dedupe, view handling, and state-transfer behaviour, so
// the guardian cannot tell (and need not care) which side of a socket a
// replica runs on.

// WrapperBodyKind is the scplib.BodyRegistry kind under which the
// resilient wrapper factory is registered in worker processes.
const WrapperBodyKind = "resilient.wrapper"

// BodyFactory rebuilds an inner RBody from serialized arguments.
type BodyFactory func(args []byte) (RBody, error)

// BodyRegistry maps inner-body kinds to factories (the resilient-layer
// sibling of scplib.BodyRegistry).
type BodyRegistry struct {
	factories map[string]BodyFactory
}

// NewBodyRegistry creates an empty inner-body registry.
func NewBodyRegistry() *BodyRegistry {
	return &BodyRegistry{factories: make(map[string]BodyFactory)}
}

// Register installs a factory for kind.
func (r *BodyRegistry) Register(kind string, f BodyFactory) { r.factories[kind] = f }

// RegisterWrapperBody installs the resilient wrapper factory into a
// worker's scplib registry; inner bodies resolve through bodies. Worker
// daemons call this once at startup.
func RegisterWrapperBody(reg *scplib.BodyRegistry, bodies *BodyRegistry) {
	reg.Register(WrapperBodyKind, func(args []byte) (scplib.Body, error) {
		p, err := decodeWrapperParams(args)
		if err != nil {
			return nil, err
		}
		f := bodies.factories[p.InnerKind]
		if f == nil {
			return nil, fmt.Errorf("resilient: unknown inner body kind %q", p.InnerKind)
		}
		inner, err := f(p.InnerArgs)
		if err != nil {
			return nil, err
		}
		w := newRemoteWrapper(p, inner)
		return w.run, nil
	})
}

// wrapperParams is the shippable form of a wrapper's construction state.
type wrapperParams struct {
	LID          LogicalID
	Name         string
	Slot         int
	Monitored    bool
	AwaitRestore bool
	GuardianPhys scplib.ThreadID
	Epoch        uint32
	HbPeriod     float64
	FailTimeout  float64
	View         *viewTable
	InnerKind    string
	InnerArgs    []byte
}

// newRemoteWrapper builds a wrapper from shipped params — the remote
// counterpart of newWrapper.
func newRemoteWrapper(p *wrapperParams, body RBody) *wrapper {
	w := &wrapper{
		lid:          p.LID,
		name:         p.Name,
		replica:      p.Slot,
		body:         body,
		guardianPhys: p.GuardianPhys,
		failTimeout:  p.FailTimeout,
		monitored:    p.Monitored,
		hbPeriod:     p.HbPeriod,
		epoch:        p.Epoch,
		awaitRestore: p.AwaitRestore,
		views:        make(map[LogicalID][]scplib.ThreadID),
		ded:          newDedupe(),
		lseq:         make(map[LogicalID]uint64),
		chunkFlops:   1e6,
	}
	w.applyViewTable(p.View)
	return w
}

// wrapperParams wire layout (little-endian):
//
//	lid          int32
//	slot         uint16
//	flags        uint8   (bit0 monitored, bit1 awaitRestore)
//	guardianPhys int32
//	epoch        uint32
//	hbPeriod     float64
//	failTimeout  float64
//	nameLen      uint16, name
//	kindLen      uint16, innerKind
//	viewLen      uint32, encoded view table
//	innerArgs    (remainder)
func encodeWrapperParams(p *wrapperParams) []byte {
	name, kind := []byte(p.Name), []byte(p.InnerKind)
	view := encodeView(p.View)
	buf := make([]byte, 0, 39+len(name)+len(kind)+len(view)+len(p.InnerArgs))
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte

	binary.LittleEndian.PutUint32(u32[:], uint32(p.LID))
	buf = append(buf, u32[:]...)
	binary.LittleEndian.PutUint16(u16[:], uint16(p.Slot))
	buf = append(buf, u16[:]...)
	var flags uint8
	if p.Monitored {
		flags |= 1
	}
	if p.AwaitRestore {
		flags |= 2
	}
	buf = append(buf, flags)
	binary.LittleEndian.PutUint32(u32[:], uint32(p.GuardianPhys))
	buf = append(buf, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], p.Epoch)
	buf = append(buf, u32[:]...)
	binary.LittleEndian.PutUint64(u64[:], math.Float64bits(p.HbPeriod))
	buf = append(buf, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], math.Float64bits(p.FailTimeout))
	buf = append(buf, u64[:]...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(name)))
	buf = append(buf, u16[:]...)
	buf = append(buf, name...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(kind)))
	buf = append(buf, u16[:]...)
	buf = append(buf, kind...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(view)))
	buf = append(buf, u32[:]...)
	buf = append(buf, view...)
	return append(buf, p.InnerArgs...)
}

func decodeWrapperParams(b []byte) (*wrapperParams, error) {
	bad := fmt.Errorf("%w: wrapper params", ErrBadWire)
	if len(b) < 35 {
		return nil, bad
	}
	p := &wrapperParams{}
	p.LID = LogicalID(int32(binary.LittleEndian.Uint32(b[0:])))
	p.Slot = int(binary.LittleEndian.Uint16(b[4:]))
	flags := b[6]
	p.Monitored = flags&1 != 0
	p.AwaitRestore = flags&2 != 0
	p.GuardianPhys = scplib.ThreadID(int32(binary.LittleEndian.Uint32(b[7:])))
	p.Epoch = binary.LittleEndian.Uint32(b[11:])
	p.HbPeriod = math.Float64frombits(binary.LittleEndian.Uint64(b[15:]))
	p.FailTimeout = math.Float64frombits(binary.LittleEndian.Uint64(b[23:]))
	off := 31
	n := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if off+n+2 > len(b) {
		return nil, bad
	}
	p.Name = string(b[off : off+n])
	off += n
	k := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if off+k+4 > len(b) {
		return nil, bad
	}
	p.InnerKind = string(b[off : off+k])
	off += k
	vn := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+vn > len(b) {
		return nil, bad
	}
	view, err := decodeView(b[off : off+vn])
	if err != nil {
		return nil, err
	}
	p.View = view
	off += vn
	p.InnerArgs = append([]byte(nil), b[off:]...)
	return p, nil
}
