package resilient

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDedupeBasic(t *testing.T) {
	d := newDedupe()
	if !d.accept(1, 1, 1) {
		t.Fatal("first lseq rejected")
	}
	if d.accept(1, 1, 1) {
		t.Fatal("duplicate accepted")
	}
	if !d.accept(1, 1, 2) {
		t.Fatal("next lseq rejected")
	}
	// Different peer, same lseq: independent space.
	if !d.accept(2, 1, 1) {
		t.Fatal("other peer rejected")
	}
}

func TestDedupeOutOfOrder(t *testing.T) {
	d := newDedupe()
	// Replica interleaving: 3 arrives before 2.
	if !d.accept(1, 1, 1) || !d.accept(1, 1, 3) {
		t.Fatal("out-of-order first copies rejected")
	}
	if d.accept(1, 1, 3) || d.accept(1, 1, 1) {
		t.Fatal("duplicates accepted")
	}
	if !d.accept(1, 1, 2) {
		t.Fatal("gap fill rejected")
	}
	if d.accept(1, 1, 2) {
		t.Fatal("gap fill duplicate accepted")
	}
	// High-water must have compacted to 3: the sparse set is empty.
	p := d.peers[1]
	if p.highWater != 3 || len(p.above) != 0 {
		t.Fatalf("highWater=%d above=%v", p.highWater, p.above)
	}
}

func TestDedupeEpochs(t *testing.T) {
	d := newDedupe()
	for s := uint64(1); s <= 5; s++ {
		if !d.accept(1, 1, s) {
			t.Fatalf("epoch 1 lseq %d rejected", s)
		}
	}
	// Whole-group restart: epoch 2 resets the sequence space.
	if !d.accept(1, 2, 1) {
		t.Fatal("restarted group's lseq 1 rejected")
	}
	// Zombie traffic from the old incarnation is discarded.
	if d.accept(1, 1, 6) {
		t.Fatal("stale epoch accepted")
	}
	// New epoch continues normally.
	if !d.accept(1, 2, 2) || d.accept(1, 2, 2) {
		t.Fatal("epoch 2 sequencing broken")
	}
}

func TestDedupeExactlyOnceProperty(t *testing.T) {
	// Any shuffled multiset of duplicated sequence numbers is accepted
	// exactly once each.
	f := func(seed int64, nRaw uint8, copiesRaw uint8) bool {
		n := int(nRaw%50) + 1
		copies := int(copiesRaw%3) + 2
		rng := rand.New(rand.NewSource(seed))
		var stream []uint64
		for s := 1; s <= n; s++ {
			for c := 0; c < copies; c++ {
				stream = append(stream, uint64(s))
			}
		}
		rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
		d := newDedupe()
		accepted := 0
		for _, s := range stream {
			if d.accept(7, 1, s) {
				accepted++
			}
		}
		return accepted == n && d.peers[7].highWater == uint64(n) && len(d.peers[7].above) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDedupeSnapshotRestore(t *testing.T) {
	d := newDedupe()
	for s := uint64(1); s <= 10; s++ {
		d.accept(3, 2, s)
	}
	d.accept(3, 2, 15) // sparse entry above high-water

	s := newSnapshot()
	d.snapshotInto(s)
	if s.HighWater[3] != 10 || s.PeerEpoch[3] != 2 {
		t.Fatalf("snapshot hw=%d epoch=%d", s.HighWater[3], s.PeerEpoch[3])
	}

	d2 := newDedupe()
	d2.restore(s)
	if d2.accept(3, 2, 5) {
		t.Fatal("restored state accepted old lseq")
	}
	if !d2.accept(3, 2, 11) {
		t.Fatal("restored state rejected fresh lseq")
	}
	if d2.accept(3, 1, 99) {
		t.Fatal("restored state accepted stale epoch")
	}
	// Sparse entries above the mark are intentionally not transferred:
	// 15 is re-accepted by the new replica (idempotent at app level).
	if !d2.accept(3, 2, 15) {
		t.Fatal("sparse entry unexpectedly transferred")
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := &snapshot{
		LSeq:      map[LogicalID]uint64{1: 10, 9: 2, 4: 7},
		HighWater: map[LogicalID]uint64{1: 8, 4: 7},
		PeerEpoch: map[LogicalID]uint32{1: 3, 4: 1},
	}
	b := encodeSnapshot(s)
	got, err := decodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range s.LSeq {
		if got.LSeq[k] != v {
			t.Fatalf("LSeq[%d] = %d, want %d", k, got.LSeq[k], v)
		}
	}
	for k, v := range s.HighWater {
		if got.HighWater[k] != v {
			t.Fatalf("HighWater[%d] = %d, want %d", k, got.HighWater[k], v)
		}
	}
	for k, v := range s.PeerEpoch {
		if got.PeerEpoch[k] != v {
			t.Fatalf("PeerEpoch[%d] = %d, want %d", k, got.PeerEpoch[k], v)
		}
	}
	if _, err := decodeSnapshot([]byte{1}); err == nil {
		t.Fatal("short snapshot accepted")
	}
	if _, err := decodeSnapshot([]byte{5, 0, 1, 2}); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestWireCodecs(t *testing.T) {
	// App header.
	b := encodeApp(7, 1, 42, 99, 3, 2, []byte("payload"))
	m, view, epoch, err := decodeApp(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 7 || m.Replica != 1 || m.Kind != 42 || m.LSeq != 99 ||
		view != 3 || epoch != 2 || string(m.Payload) != "payload" {
		t.Fatalf("decoded %+v view=%d epoch=%d", m, view, epoch)
	}
	if _, _, _, err := decodeApp([]byte{1, 2}); err == nil {
		t.Fatal("short app message accepted")
	}

	// Heartbeat.
	hb := encodeHeartbeat(5, 2)
	lid, rep, err := decodeHeartbeat(hb)
	if err != nil || lid != 5 || rep != 2 {
		t.Fatalf("heartbeat: %d %d %v", lid, rep, err)
	}
	if _, _, err := decodeHeartbeat([]byte{1}); err == nil {
		t.Fatal("short heartbeat accepted")
	}

	// View table.
	v := &viewTable{
		View: 9,
		Groups: []viewGroup{
			{LID: 1, Members: []viewMember{{Phys: 11, Node: 0, Alive: true}, {Phys: 12, Node: 1, Alive: false}}},
			{LID: 2, Members: []viewMember{{Phys: 13, Node: 2, Alive: true}}},
		},
	}
	vb := encodeView(v)
	got, err := decodeView(vb)
	if err != nil {
		t.Fatal(err)
	}
	if got.View != 9 || len(got.Groups) != 2 {
		t.Fatalf("view decode: %+v", got)
	}
	if got.Groups[0].Members[1].Alive || !got.Groups[0].Members[0].Alive {
		t.Fatal("alive bits lost")
	}
	if got.Groups[1].Members[0].Phys != 13 {
		t.Fatal("phys id lost")
	}
	if _, err := decodeView([]byte{1}); err == nil {
		t.Fatal("short view accepted")
	}
	if _, err := decodeView(vb[:8]); err == nil {
		t.Fatal("truncated view accepted")
	}

	// Snap req/resp.
	rq := encodeSnapReq(3, 44)
	lid2, corr, err := decodeSnapReq(rq)
	if err != nil || lid2 != 3 || corr != 44 {
		t.Fatalf("snapreq: %d %d %v", lid2, corr, err)
	}
	if _, _, err := decodeSnapReq(nil); err == nil {
		t.Fatal("short snapreq accepted")
	}
	rp := encodeSnapResp(44, []byte{9, 9})
	corr2, body, err := decodeSnapResp(rp)
	if err != nil || corr2 != 44 || len(body) != 2 {
		t.Fatalf("snapresp: %d %v %v", corr2, body, err)
	}
	if _, _, err := decodeSnapResp([]byte{1}); err == nil {
		t.Fatal("short snapresp accepted")
	}
}
