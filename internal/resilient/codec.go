package resilient

import (
	"encoding/binary"
	"errors"
	"fmt"

	"resilientfusion/internal/scplib"
)

// Wire formats are hand-rolled little-endian so message sizes are exact
// and deterministic for the performance model. Every resilient-layer
// message is carried in a scplib payload.

// ErrBadWire reports a malformed resilient-layer payload.
var ErrBadWire = errors.New("resilient: malformed wire payload")

// rheader prefixes every application message.
//
//	logicalFrom int32
//	replica     uint16
//	appKind     uint16
//	lseq        uint64
//	view        uint32
//	epoch       uint32
const rheaderBytes = 24

func encodeApp(from LogicalID, replica int, appKind uint16, lseq uint64, view, epoch uint32, payload []byte) []byte {
	buf := make([]byte, rheaderBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(from))
	binary.LittleEndian.PutUint16(buf[4:], uint16(replica))
	binary.LittleEndian.PutUint16(buf[6:], appKind)
	binary.LittleEndian.PutUint64(buf[8:], lseq)
	binary.LittleEndian.PutUint32(buf[16:], view)
	binary.LittleEndian.PutUint32(buf[20:], epoch)
	copy(buf[rheaderBytes:], payload)
	return buf
}

func decodeApp(b []byte) (*RMessage, uint32, uint32, error) {
	if len(b) < rheaderBytes {
		return nil, 0, 0, fmt.Errorf("%w: app message %d bytes", ErrBadWire, len(b))
	}
	m := &RMessage{
		From:    LogicalID(int32(binary.LittleEndian.Uint32(b[0:]))),
		Replica: int(binary.LittleEndian.Uint16(b[4:])),
		Kind:    binary.LittleEndian.Uint16(b[6:]),
		LSeq:    binary.LittleEndian.Uint64(b[8:]),
		Payload: append([]byte(nil), b[rheaderBytes:]...),
	}
	view := binary.LittleEndian.Uint32(b[16:])
	epoch := binary.LittleEndian.Uint32(b[20:])
	return m, view, epoch, nil
}

// heartbeat payload: logicalID int32, replica uint16.
func encodeHeartbeat(lid LogicalID, replica int) []byte {
	buf := make([]byte, 6)
	binary.LittleEndian.PutUint32(buf[0:], uint32(lid))
	binary.LittleEndian.PutUint16(buf[4:], uint16(replica))
	return buf
}

func decodeHeartbeat(b []byte) (LogicalID, int, error) {
	if len(b) < 6 {
		return 0, 0, fmt.Errorf("%w: heartbeat %d bytes", ErrBadWire, len(b))
	}
	return LogicalID(int32(binary.LittleEndian.Uint32(b[0:]))), int(binary.LittleEndian.Uint16(b[4:])), nil
}

// view table payload:
//
//	view    uint32
//	groups  uint16
//	per group: logicalID int32, members uint16,
//	           per member: physID int32, node int32, alive uint8
type viewTable struct {
	View   uint32
	Groups []viewGroup
}

type viewGroup struct {
	LID     LogicalID
	Members []viewMember
}

type viewMember struct {
	Phys  scplib.ThreadID
	Node  int32
	Alive bool
}

func encodeView(v *viewTable) []byte {
	size := 6
	for _, g := range v.Groups {
		size += 6 + 9*len(g.Members)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:], v.View)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(v.Groups)))
	off := 6
	for _, g := range v.Groups {
		binary.LittleEndian.PutUint32(buf[off:], uint32(g.LID))
		binary.LittleEndian.PutUint16(buf[off+4:], uint16(len(g.Members)))
		off += 6
		for _, m := range g.Members {
			binary.LittleEndian.PutUint32(buf[off:], uint32(m.Phys))
			binary.LittleEndian.PutUint32(buf[off+4:], uint32(m.Node))
			if m.Alive {
				buf[off+8] = 1
			}
			off += 9
		}
	}
	return buf
}

func decodeView(b []byte) (*viewTable, error) {
	if len(b) < 6 {
		return nil, fmt.Errorf("%w: view %d bytes", ErrBadWire, len(b))
	}
	v := &viewTable{View: binary.LittleEndian.Uint32(b[0:])}
	groups := int(binary.LittleEndian.Uint16(b[4:]))
	off := 6
	for i := 0; i < groups; i++ {
		if off+6 > len(b) {
			return nil, fmt.Errorf("%w: truncated view group", ErrBadWire)
		}
		g := viewGroup{LID: LogicalID(int32(binary.LittleEndian.Uint32(b[off:])))}
		members := int(binary.LittleEndian.Uint16(b[off+4:]))
		off += 6
		for j := 0; j < members; j++ {
			if off+9 > len(b) {
				return nil, fmt.Errorf("%w: truncated view member", ErrBadWire)
			}
			g.Members = append(g.Members, viewMember{
				Phys:  scplib.ThreadID(int32(binary.LittleEndian.Uint32(b[off:]))),
				Node:  int32(binary.LittleEndian.Uint32(b[off+4:])),
				Alive: b[off+8] == 1,
			})
			off += 9
		}
		v.Groups = append(v.Groups, g)
	}
	return v, nil
}

// snapshot payload: wrapper protocol state — outbound lseq counters and
// inbound dedupe high-waters/epochs, all keyed by logical peer.
//
//	entries uint16, per entry:
//	  peer int32, lseq uint64, highwater uint64, peerEpoch uint32
type snapshot struct {
	LSeq      map[LogicalID]uint64
	HighWater map[LogicalID]uint64
	PeerEpoch map[LogicalID]uint32
}

func newSnapshot() *snapshot {
	return &snapshot{
		LSeq:      make(map[LogicalID]uint64),
		HighWater: make(map[LogicalID]uint64),
		PeerEpoch: make(map[LogicalID]uint32),
	}
}

const snapEntryBytes = 24

func encodeSnapshot(s *snapshot) []byte {
	keys := make(map[LogicalID]struct{})
	for k := range s.LSeq {
		keys[k] = struct{}{}
	}
	for k := range s.HighWater {
		keys[k] = struct{}{}
	}
	ordered := make([]LogicalID, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	// Deterministic order.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j] < ordered[j-1]; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	buf := make([]byte, 2+snapEntryBytes*len(ordered))
	binary.LittleEndian.PutUint16(buf[0:], uint16(len(ordered)))
	off := 2
	for _, k := range ordered {
		binary.LittleEndian.PutUint32(buf[off:], uint32(k))
		binary.LittleEndian.PutUint64(buf[off+4:], s.LSeq[k])
		binary.LittleEndian.PutUint64(buf[off+12:], s.HighWater[k])
		binary.LittleEndian.PutUint32(buf[off+20:], s.PeerEpoch[k])
		off += snapEntryBytes
	}
	return buf
}

func decodeSnapshot(b []byte) (*snapshot, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: snapshot %d bytes", ErrBadWire, len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[0:]))
	if len(b) < 2+snapEntryBytes*n {
		return nil, fmt.Errorf("%w: truncated snapshot", ErrBadWire)
	}
	s := newSnapshot()
	off := 2
	for i := 0; i < n; i++ {
		k := LogicalID(int32(binary.LittleEndian.Uint32(b[off:])))
		s.LSeq[k] = binary.LittleEndian.Uint64(b[off+4:])
		s.HighWater[k] = binary.LittleEndian.Uint64(b[off+12:])
		s.PeerEpoch[k] = binary.LittleEndian.Uint32(b[off+20:])
		off += snapEntryBytes
	}
	return s, nil
}

// snapReq payload: the group being snapshotted (int32) plus the phys id
// of the regenerated replica (int32) for correlation.
func encodeSnapReq(lid LogicalID, corr scplib.ThreadID) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:], uint32(lid))
	binary.LittleEndian.PutUint32(buf[4:], uint32(corr))
	return buf
}

func decodeSnapReq(b []byte) (LogicalID, scplib.ThreadID, error) {
	if len(b) < 8 {
		return 0, 0, fmt.Errorf("%w: snapreq %d bytes", ErrBadWire, len(b))
	}
	return LogicalID(int32(binary.LittleEndian.Uint32(b[0:]))),
		scplib.ThreadID(int32(binary.LittleEndian.Uint32(b[4:]))), nil
}

// snapResp payload: correlation id then snapshot bytes.
func encodeSnapResp(corr scplib.ThreadID, snap []byte) []byte {
	buf := make([]byte, 4+len(snap))
	binary.LittleEndian.PutUint32(buf[0:], uint32(corr))
	copy(buf[4:], snap)
	return buf
}

func decodeSnapResp(b []byte) (scplib.ThreadID, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("%w: snapresp %d bytes", ErrBadWire, len(b))
	}
	return scplib.ThreadID(int32(binary.LittleEndian.Uint32(b[0:]))), b[4:], nil
}
