package resilient

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"resilientfusion/internal/scplib"
)

// fastRealConfig tunes detection for wall-clock tests.
func fastRealConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		Replication:     2,
		HeartbeatPeriod: 0.01,
		FailTimeout:     0.08,
		Regenerate:      true,
	}
}

// TestEpochBumpOverTCPDedupe is the satellite-4 scenario: a whole group
// dies and is regenerated over real sockets. The restart bumps the
// group's epoch, and the manager's dedupe state — which saw the old
// incarnation's sequence numbers — must accept the fresh incarnation's
// traffic (epoch reset) instead of filtering it as duplicate, no matter
// how frames interleave across the reconnecting senders' connections.
func TestEpochBumpOverTCPDedupe(t *testing.T) {
	sys, err := scplib.NewTCPSystem("")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(sys, fastRealConfig(4))
	if err != nil {
		t.Fatal(err)
	}

	round1Done := make(chan struct{})
	var round2Replies int
	var completed bool
	isResp := func(m *RMessage) bool { return m.Kind == kindResp }
	mgr := func(env REnv) error {
		defer rt.Shutdown()
		// Phase 1: six request/reply exchanges push the manager's dedupe
		// high-water for the group to lseq 6.
		for i := 0; i < 6; i++ {
			if err := env.Send(1, kindReq, make([]byte, 4)); err != nil {
				return err
			}
			if _, err := env.RecvMatchTimeout(isResp, 20); err != nil {
				return fmt.Errorf("round 1.%d: %w", i, err)
			}
		}
		close(round1Done)
		// Linger while the whole group is killed and regenerated. (The
		// alive count dips and recovers within a single guardian scan, so
		// watch the regeneration counter, not the replica count.)
		for rt.Stats().Regenerations < 2 || rt.AliveReplicas(1) < 2 {
			if _, err := env.RecvTimeout(0.02); err != nil && !errors.Is(err, ErrTimeout) {
				return err
			}
		}
		// Phase 2 against the restarted incarnation, reissuing at most 5
		// times (view updates race the first sends). The new wrappers
		// number from lseq 1, so every reply here carries lseq ≤ 5 — below
		// the old high-water of 6. Acceptance is therefore possible ONLY
		// through the epoch bump resetting the manager's dedupe state; if
		// epochs were broken, all five replies would be filtered as
		// duplicates and this times out.
		for attempt := 0; attempt < 5 && round2Replies == 0; attempt++ {
			if err := env.Send(1, kindReq, make([]byte, 4)); err != nil {
				return err
			}
			if _, err := env.RecvMatchTimeout(isResp, 1.0); err == nil {
				round2Replies++
			} else if !errors.Is(err, ErrTimeout) {
				return err
			}
		}
		if round2Replies == 0 {
			return fmt.Errorf("round 2: epoch bump lost the restarted group's traffic")
		}
		if err := env.Send(1, kindStop, nil); err != nil {
			return err
		}
		completed = true
		return nil
	}
	if err := rt.AddSingleton(mgrLID, "manager", 0, mgr); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddGroup(1, "worker", []int{1, 2}, workerBody); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		<-round1Done
		// SIGKILL analog for both replicas: the full group is lost at once.
		rt.KillReplica(1, 0)
		rt.KillReplica(1, 1)
	}()
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !completed || round2Replies == 0 {
		t.Fatal("restarted group's traffic was dropped")
	}
	st := rt.Stats()
	if st.Detections < 2 || st.Regenerations < 2 {
		t.Fatalf("expected whole-group detection+regeneration, got %+v", st)
	}
}

// clusterBodies registers the echo worker as a remotable inner body.
func clusterBodies() *scplib.BodyRegistry {
	inner := NewBodyRegistry()
	inner.Register("echo", func(args []byte) (RBody, error) { return workerBody, nil })
	reg := scplib.NewBodyRegistry()
	RegisterWrapperBody(reg, inner)
	return reg
}

// clusterHarness stands up a coordinator + n worker processes (in-process
// but over real sockets and the real remote spawn path) and a runtime
// whose liveness hooks are wired to the transport.
func clusterHarness(t *testing.T, workers int, cfg Config) (*scplib.ClusterSystem, *Runtime, []*scplib.ClusterWorker) {
	t.Helper()
	sys, err := scplib.NewClusterSystem("", workers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	cfg.Nodes = workers + 1
	rt, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.OnNodeAlive = rt.NodeAlive
	sys.OnNodeDown = rt.NodeDown
	sys.OnThreadExit = rt.ThreadExited
	sys.Serve()

	ws := make([]*scplib.ClusterWorker, workers)
	for i := range ws {
		w, err := scplib.DialCluster(sys.Addr(), 2*time.Second, clusterBodies())
		if err != nil {
			t.Fatal(err)
		}
		go w.Run()
		t.Cleanup(w.Shutdown)
		ws[i] = w
	}
	deadline := time.Now().Add(2 * time.Second)
	for sys.LiveWorkers() < workers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers connected", sys.LiveWorkers(), workers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return sys, rt, ws
}

// TestResilientOverCluster runs the echo application with its worker
// group replicated across two real worker processes; killing one remote
// replica mid-run must be detected and regenerated without the manager
// seeing duplicates or gaps.
func TestResilientOverCluster(t *testing.T) {
	_, rt, _ := clusterHarness(t, 2, fastRealConfig(3))
	res := &managerResult{}
	if err := rt.AddSingleton(mgrLID, "manager", 0, managerBody(rt, 1, 6, 20, res)); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddGroupRemote(1, "worker", []int{1, 2}, workerBody, "echo", nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		for rt.AliveReplicas(1) < 2 {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond) // let a round or two land first
		rt.KillReplica(1, 0)
	}()
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.completed {
		t.Fatal("cluster run did not complete")
	}
	if res.extra != 0 {
		t.Fatalf("dedupe leaked %d deliveries over the cluster transport", res.extra)
	}
	st := rt.Stats()
	if st.Detections < 1 || st.Regenerations < 1 {
		t.Fatalf("remote kill not healed: %+v", st)
	}
}

// TestResilientClusterNodeLoss kills an entire worker process (the
// coordinator sees the connection die); connection-level liveness must
// force-expire its replicas faster than, or independent of, heartbeat
// silence, and regeneration must land them elsewhere.
func TestResilientClusterNodeLoss(t *testing.T) {
	// Generous heartbeat/fail timeouts: detection here must come from the
	// severed connection, not from heartbeat expiry.
	cfg := Config{
		Nodes:           4,
		Replication:     2,
		HeartbeatPeriod: 0.2,
		FailTimeout:     30,
		Regenerate:      true,
	}
	_, rt, ws := clusterHarness(t, 3, cfg)
	res := &managerResult{}
	if err := rt.AddSingleton(mgrLID, "manager", 0, managerBody(rt, 1, 8, 40, res)); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddGroupRemote(1, "worker", []int{1, 2}, workerBody, "echo", nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		for rt.AliveReplicas(1) < 2 {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond)
		ws[0].Shutdown() // node 1's whole process goes away
	}()
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.completed {
		t.Fatal("run did not survive node loss")
	}
	st := rt.Stats()
	if st.Detections < 1 || st.Regenerations < 1 {
		t.Fatalf("node loss not healed: %+v", st)
	}
	// FailTimeout is 30s and the whole test runs in seconds: detection
	// must have come from the transport signal.
	for _, d := range st.DetectionLatency {
		if d > 10 {
			t.Fatalf("detection latency %.2fs suggests heartbeat expiry, not transport liveness", d)
		}
	}
}

// TestWrapperParamsRoundTrip exercises the remote wrapper codec.
func TestWrapperParamsRoundTrip(t *testing.T) {
	in := &wrapperParams{
		LID:          7,
		Name:         "worker7",
		Slot:         1,
		Monitored:    true,
		AwaitRestore: true,
		GuardianPhys: 1 << 20,
		Epoch:        3,
		HbPeriod:     0.25,
		FailTimeout:  1.5,
		View: &viewTable{View: 9, Groups: []viewGroup{{
			LID: 7,
			Members: []viewMember{
				{Phys: 1<<20 + 1, Node: 1, Alive: true},
				{Phys: 1<<20 + 2, Node: 2, Alive: false},
			},
		}}},
		InnerKind: "core.worker",
		InnerArgs: []byte{1, 2, 3, 4},
	}
	out, err := decodeWrapperParams(encodeWrapperParams(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.LID != in.LID || out.Name != in.Name || out.Slot != in.Slot ||
		out.Monitored != in.Monitored || out.AwaitRestore != in.AwaitRestore ||
		out.GuardianPhys != in.GuardianPhys || out.Epoch != in.Epoch ||
		out.HbPeriod != in.HbPeriod || out.FailTimeout != in.FailTimeout ||
		out.InnerKind != in.InnerKind || string(out.InnerArgs) != string(in.InnerArgs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	if out.View.View != 9 || len(out.View.Groups) != 1 || len(out.View.Groups[0].Members) != 2 ||
		out.View.Groups[0].Members[0].Phys != 1<<20+1 || out.View.Groups[0].Members[1].Alive {
		t.Fatalf("view mangled: %+v", out.View)
	}
	// Truncations within the structured prefix (before the length-free
	// InnerArgs tail) must error, not panic.
	full := encodeWrapperParams(in)
	for _, n := range []int{0, 10, 30, 34, 40, len(full) - len(in.InnerArgs) - 2} {
		if n >= len(full) {
			continue
		}
		if _, err := decodeWrapperParams(full[:n]); err == nil {
			t.Fatalf("truncated params at %d accepted", n)
		}
	}
}

// TestPhysBaseOffsetsAllIDs verifies two runtimes can share one system.
func TestPhysBaseOffsetsAllIDs(t *testing.T) {
	sys := scplib.NewRealSystem()
	mk := func(base scplib.ThreadID) *Runtime {
		cfg := fastRealConfig(3)
		cfg.PhysBase = base
		rt, err := New(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	a, b := mk(0), mk(1<<20)
	if a.guardianPhys == b.guardianPhys {
		t.Fatal("guardians collide")
	}
	if b.guardianPhys != 1<<20 {
		t.Fatalf("guardian at %d, want PhysBase", b.guardianPhys)
	}
	if a.courierID(0) == b.courierID(0) {
		t.Fatal("couriers collide")
	}

	// Both runtimes run the echo app concurrently on the shared system.
	resA, resB := &managerResult{}, &managerResult{}
	for i, pair := range []struct {
		rt  *Runtime
		res *managerResult
	}{{a, resA}, {b, resB}} {
		if err := pair.rt.AddSingleton(mgrLID, fmt.Sprintf("manager%d", i), 0, managerBody(pair.rt, 1, 3, 20, pair.res)); err != nil {
			t.Fatal(err)
		}
		if err := pair.rt.AddGroup(1, fmt.Sprintf("worker%d", i), []int{1, 2}, workerBody); err != nil {
			t.Fatal(err)
		}
		if err := pair.rt.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !resA.completed || !resB.completed {
		t.Fatal("shared-system runtimes interfered")
	}
	if resA.extra != 0 || resB.extra != 0 {
		t.Fatalf("cross-runtime dedupe leakage: %d/%d", resA.extra, resB.extra)
	}
}
