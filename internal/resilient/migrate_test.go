package resilient

import (
	"errors"
	"testing"
)

func TestMigrateReplicaKeepsServiceAlive(t *testing.T) {
	h := newHarness(t, 6, DefaultConfig(6))
	res := buildEcho(t, h, 1, 20, 100)
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Relocate worker 1's replica 0 to node 4 mid-run; later kill the
	// OTHER replica so completion proves the migrated one serves traffic.
	h.x.Schedule(2, func() {
		if err := h.rt.MigrateReplica(1, 0, 4); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	h.x.Schedule(8, func() { h.rt.KillReplica(1, 1) })
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.completed {
		t.Fatal("echo did not complete after migration + kill")
	}
	st := h.rt.Stats()
	if st.Migrations != 1 {
		t.Fatalf("migrations = %d", st.Migrations)
	}
	if res.extra != 0 {
		t.Fatalf("dedupe leaked %d deliveries across migration", res.extra)
	}
}

func TestMigrateValidation(t *testing.T) {
	h := newHarness(t, 4, DefaultConfig(4))
	// Before Start.
	if err := h.rt.MigrateReplica(1, 0, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("migrate before start: %v", err)
	}
	var done bool
	if err := h.rt.AddSingleton(mgrLID, "m", 0, func(env REnv) error {
		defer h.rt.Shutdown()
		// Unknown group.
		if err := h.rt.MigrateReplica(42, 0, 1); !errors.Is(err, ErrUnknownGroup) {
			t.Errorf("unknown group: %v", err)
		}
		// Bad slot and node.
		if err := h.rt.MigrateReplica(1, 9, 1); !errors.Is(err, ErrBadConfig) {
			t.Errorf("bad slot: %v", err)
		}
		if err := h.rt.MigrateReplica(1, 0, 99); !errors.Is(err, ErrBadConfig) {
			t.Errorf("bad node: %v", err)
		}
		done = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.AddGroup(1, "worker", []int{1, 2}, workerBody); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("validation body did not finish")
	}
}

func TestMigrateDeadReplicaRejected(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Regenerate = false
	h := newHarness(t, 5, cfg)
	var migErr error
	if err := h.rt.AddSingleton(mgrLID, "m", 0, func(env REnv) error {
		defer h.rt.Shutdown()
		// Kill replica 0, wait for detection, then try to migrate it.
		h.rt.KillReplica(1, 0)
		if _, err := env.RecvTimeout(5); !errors.Is(err, ErrTimeout) {
			return err
		}
		migErr = h.rt.MigrateReplica(1, 0, 3)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.AddGroup(1, "worker", []int{1, 2}, workerBody); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(migErr, ErrBadConfig) {
		t.Fatalf("migrating a dead replica: %v", migErr)
	}
}
