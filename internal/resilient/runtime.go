package resilient

import (
	"errors"
	"fmt"
	"sync"

	"resilientfusion/internal/scplib"
	"resilientfusion/internal/telemetry"
)

// Runtime layers resiliency over a scplib.System. Define the logical
// configuration with AddSingleton/AddGroup, call Start to spawn the
// guardian and all replicas, then drive the underlying system with Run.
type Runtime struct {
	sys scplib.System
	cfg Config

	mu       sync.Mutex
	started  bool
	stopped  bool
	groups   []*group // ordered for deterministic protocols
	byLID    map[LogicalID]*group
	nextPhys scplib.ThreadID
	viewNum  uint32
	deadNode map[int]bool

	guardianPhys scplib.ThreadID
	nextCourier  int32

	// Transport-level liveness intake (cluster runs). The guardian merges
	// these with heartbeat ages each poll: nodeSeen refreshes members on
	// nodes with recent connection activity (a worker deep in a kernel
	// still pings on its own goroutine), nodeLost force-expires members on
	// a severed node, exited force-expires a reaped physical thread after
	// a short hold (a graceful bye on the same FIFO connection precedes
	// the exit report and must win the race).
	nodeSeen map[int]float64
	nodeLost map[int]bool
	exited   map[scplib.ThreadID]float64

	stats Stats
	trace *telemetry.TraceRecorder
}

// Stats reports the resiliency layer's protocol activity.
type Stats struct {
	Detections    int // replica failures detected by heartbeat timeout
	Regenerations int // replacement replicas spawned
	Migrations    int // proactive replica relocations (mobility)
	ViewChanges   int // view broadcasts issued
	// DetectionLatency and RegenerationLatency record, per event, the
	// seconds between the (approximate) failure instant — last heartbeat
	// seen — and detection / replacement spawn.
	DetectionLatency    []float64
	RegenerationLatency []float64
}

type group struct {
	lid       LogicalID
	name      string
	body      RBody
	singleton bool
	monitored bool
	// epoch is the group's incarnation number: bumped when the group is
	// regenerated with no surviving replica, so receivers reset the
	// group's logical sequence space instead of discarding the restarted
	// group's traffic as duplicates.
	epoch   uint32
	members []*member // slot-indexed; slots persist across regeneration
	// remoteKind/remoteArgs, when set, let replicas of this group spawn in
	// worker processes: the spec ships a resilient wrapper RemoteBody
	// whose params embed this inner body kind (see remote.go). body stays
	// the local form for node-0 placements and regeneration fallback.
	remoteKind string
	remoteArgs []byte
}

type member struct {
	phys  scplib.ThreadID
	node  int
	alive bool
}

// New creates a resiliency runtime over a system.
func New(sys scplib.System, cfg Config) (*Runtime, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("%w: Nodes=%d", ErrBadConfig, cfg.Nodes)
	}
	return &Runtime{
		sys:          sys,
		cfg:          cfg,
		byLID:        make(map[LogicalID]*group),
		guardianPhys: cfg.PhysBase,
		nextPhys:     cfg.PhysBase + 1,
		deadNode:     make(map[int]bool),
		nodeSeen:     make(map[int]float64),
		nodeLost:     make(map[int]bool),
		exited:       make(map[scplib.ThreadID]float64),
	}, nil
}

// NodeAlive records connection-level activity from a cluster node: any
// frame from the node's worker process proves the process lives, even
// while its replica threads are inside long compute kernels. Wire it to
// scplib.ClusterSystem.OnNodeAlive. A reconnecting node is also cleared
// from the dead-node set so it can host regenerations again.
func (rt *Runtime) NodeAlive(node int) {
	now := rt.sys.Now()
	rt.mu.Lock()
	rt.nodeSeen[node] = now
	delete(rt.deadNode, node)
	rt.mu.Unlock()
}

// NodeDown reports a severed cluster node connection; every member
// hosted there is force-expired at the guardian's next poll — detection
// at connection speed instead of heartbeat-timeout speed. Wire it to
// scplib.ClusterSystem.OnNodeDown.
func (rt *Runtime) NodeDown(node int) {
	rt.mu.Lock()
	rt.nodeLost[node] = true
	rt.mu.Unlock()
}

// ThreadExited reports a reaped physical thread (remote replica exit).
// Wire it to scplib.ClusterSystem.OnThreadExit.
func (rt *Runtime) ThreadExited(phys scplib.ThreadID) {
	now := rt.sys.Now()
	rt.mu.Lock()
	rt.exited[phys] = now
	rt.mu.Unlock()
}

// Config returns the effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// SetTrace attaches a span recorder: detection and regeneration events
// are stamped onto it alongside the Stats counters. A nil recorder (the
// default) records nothing.
func (rt *Runtime) SetTrace(tr *telemetry.TraceRecorder) {
	rt.mu.Lock()
	rt.trace = tr
	rt.mu.Unlock()
}

// Stats returns a copy of the protocol statistics.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s := rt.stats
	s.DetectionLatency = append([]float64(nil), rt.stats.DetectionLatency...)
	s.RegenerationLatency = append([]float64(nil), rt.stats.RegenerationLatency...)
	return s
}

// AddSingleton defines an unreplicated, unmonitored logical thread — the
// paper's manager ("the sensor itself was not replicated").
func (rt *Runtime) AddSingleton(lid LogicalID, name string, node int, body RBody) error {
	return rt.add(lid, name, []int{node}, body, true)
}

// AddGroup defines a replicated logical thread with explicit per-replica
// placement. Replication level is len(placements).
func (rt *Runtime) AddGroup(lid LogicalID, name string, placements []int, body RBody) error {
	return rt.add(lid, name, placements, body, false)
}

// AddGroupRemote is AddGroup for cluster systems: body remains the local
// (node 0) form, and kind/args name a registered inner body so replicas
// placed on worker nodes can be reconstructed in the worker process.
func (rt *Runtime) AddGroupRemote(lid LogicalID, name string, placements []int, body RBody, kind string, args []byte) error {
	if err := rt.add(lid, name, placements, body, false); err != nil {
		return err
	}
	rt.mu.Lock()
	g := rt.byLID[lid]
	g.remoteKind, g.remoteArgs = kind, args
	rt.mu.Unlock()
	return nil
}

func (rt *Runtime) add(lid LogicalID, name string, placements []int, body RBody, singleton bool) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return ErrStarted
	}
	if body == nil || len(placements) == 0 {
		return fmt.Errorf("%w: group %q needs a body and placements", ErrBadConfig, name)
	}
	if _, dup := rt.byLID[lid]; dup {
		return fmt.Errorf("%w: duplicate logical id %d", ErrBadConfig, lid)
	}
	for _, n := range placements {
		if n < 0 || n >= rt.cfg.Nodes {
			return fmt.Errorf("%w: placement node %d of %d", ErrBadConfig, n, rt.cfg.Nodes)
		}
	}
	g := &group{
		lid:       lid,
		name:      name,
		body:      body,
		singleton: singleton,
		monitored: !singleton,
		epoch:     1,
	}
	for _, n := range placements {
		g.members = append(g.members, &member{phys: rt.allocPhysLocked(), node: n, alive: true})
	}
	rt.groups = append(rt.groups, g)
	rt.byLID[lid] = g
	return nil
}

func (rt *Runtime) allocPhysLocked() scplib.ThreadID {
	id := rt.nextPhys
	rt.nextPhys++
	return id
}

// currentViewLocked builds the view table from member state.
func (rt *Runtime) currentViewLocked() *viewTable {
	v := &viewTable{View: rt.viewNum}
	for _, g := range rt.groups {
		vg := viewGroup{LID: g.lid}
		for _, m := range g.members {
			vg.Members = append(vg.Members, viewMember{
				Phys: m.phys, Node: int32(m.node), Alive: m.alive,
			})
		}
		v.Groups = append(v.Groups, vg)
	}
	return v
}

// Start spawns the guardian and every configured replica. The caller then
// drives the underlying system (sys.Run or Runtime.Run).
func (rt *Runtime) Start() error {
	rt.mu.Lock()
	if rt.started {
		rt.mu.Unlock()
		return ErrStarted
	}
	rt.started = true
	rt.viewNum = 1
	view := rt.currentViewLocked()
	groups := append([]*group(nil), rt.groups...)
	rt.mu.Unlock()

	if err := rt.sys.Spawn(scplib.ThreadSpec{
		ID:   rt.guardianPhys, // PhysBase (0 unless offset)
		Name: "guardian",
		Node: rt.cfg.GuardianNode,
		Body: rt.guardianBody,
	}); err != nil {
		return err
	}
	lost := make(map[int]bool)
	for _, g := range groups {
		for slot, m := range g.members {
			if err := rt.spawnReplica(g, slot, m, view, false); err != nil {
				if g.monitored && rt.cfg.Regenerate && errors.Is(err, scplib.ErrNodeDown) {
					// The hosting worker died while we were still spawning.
					// Leave the member to the guardian, which regenerates it
					// on a surviving node — the same recovery as a worker
					// dying a moment after the spawn succeeded.
					lost[m.node] = true
					continue
				}
				return err
			}
		}
	}
	// Publish the losses only after the spawn loop: force-expiring a
	// member mid-loop would let the guardian replace its phys ID while we
	// still hold the old one, double-spawning the slot.
	if len(lost) > 0 {
		rt.mu.Lock()
		for n := range lost {
			rt.nodeLost[n] = true
			rt.deadNode[n] = true
		}
		rt.mu.Unlock()
	}
	return nil
}

// spawnReplica creates the wrapper and spawns the physical thread.
// view is the view table the replica starts from; awaitRestore makes the
// replica hold application traffic until the guardian relays a state
// snapshot from a surviving peer.
func (rt *Runtime) spawnReplica(g *group, slot int, m *member, view *viewTable, awaitRestore bool) error {
	w := newWrapper(rt, g, slot, view)
	w.awaitRestore = awaitRestore
	name := g.name
	if !g.singleton {
		name = fmt.Sprintf("%s/r%d", g.name, slot)
	}
	spec := scplib.ThreadSpec{
		ID:   m.phys,
		Name: name,
		Node: m.node,
		Body: w.run,
	}
	if g.remoteKind != "" {
		// Shippable form: the whole wrapper state (identity, timers, view,
		// inner body kind) travels as params; a worker-side registry
		// rebuilds an equivalent wrapper around the reconstructed body.
		spec.Remote = &scplib.RemoteBody{
			Kind: WrapperBodyKind,
			Args: encodeWrapperParams(&wrapperParams{
				LID:          g.lid,
				Name:         g.name,
				Slot:         slot,
				Monitored:    g.monitored,
				AwaitRestore: awaitRestore,
				GuardianPhys: rt.guardianPhys,
				Epoch:        g.epoch,
				HbPeriod:     rt.cfg.HeartbeatPeriod,
				FailTimeout:  rt.cfg.FailTimeout,
				View:         view,
				InnerKind:    g.remoteKind,
				InnerArgs:    g.remoteArgs,
			}),
		}
	}
	return rt.sys.Spawn(spec)
}

// Run drives the underlying system to completion.
func (rt *Runtime) Run() error { return rt.sys.Run() }

// Shutdown terminates the resiliency control plane (and any replicas
// still alive). Application drivers call this once their protocol has
// completed so the guardian's monitoring loop stops.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	if rt.stopped {
		rt.mu.Unlock()
		return
	}
	rt.stopped = true
	var phys []scplib.ThreadID
	for _, g := range rt.groups {
		for _, m := range g.members {
			if m.alive {
				phys = append(phys, m.phys)
			}
		}
	}
	rt.mu.Unlock()

	rt.sys.Kill(rt.guardianPhys)
	for _, id := range phys {
		rt.sys.Kill(id)
	}
}

// KillReplica destroys one replica of a logical thread — the failure /
// information-warfare-attack injection hook. It reports whether a live
// replica was killed.
func (rt *Runtime) KillReplica(lid LogicalID, slot int) bool {
	rt.mu.Lock()
	g := rt.byLID[lid]
	if g == nil || slot < 0 || slot >= len(g.members) {
		rt.mu.Unlock()
		return false
	}
	phys := g.members[slot].phys
	rt.mu.Unlock()
	return rt.sys.Kill(phys)
}

// AliveReplicas returns how many replicas of lid are currently believed
// alive (guardian's view).
func (rt *Runtime) AliveReplicas(lid LogicalID) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	g := rt.byLID[lid]
	if g == nil {
		return 0
	}
	n := 0
	for _, m := range g.members {
		if m.alive {
			n++
		}
	}
	return n
}

// physOf returns the live physical IDs for lid according to the
// guardian's authoritative state (used by tests).
func (rt *Runtime) physOf(lid LogicalID) []scplib.ThreadID {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	g := rt.byLID[lid]
	if g == nil {
		return nil
	}
	var out []scplib.ThreadID
	for _, m := range g.members {
		if m.alive {
			out = append(out, m.phys)
		}
	}
	return out
}

// allLivePhysLocked lists every live physical thread (view broadcast
// fan-out). Caller holds mu.
func (rt *Runtime) allLivePhysLocked() []scplib.ThreadID {
	var out []scplib.ThreadID
	for _, g := range rt.groups {
		for _, m := range g.members {
			if m.alive {
				out = append(out, m.phys)
			}
		}
	}
	return out
}
