package resilient

import (
	"errors"
	"fmt"

	"resilientfusion/internal/scplib"
)

// guardianBody is the failure detector and regenerator: it tracks replica
// heartbeats, declares silent replicas dead, regenerates them at
// alternative nodes, and broadcasts reconfigured views. It runs as
// physical thread 0.
//
// The guardian is the paper's "attack assessment" component reduced to
// crash/kill detection; richer sensors would feed the same recovery path.
func (rt *Runtime) guardianBody(env scplib.Env) error {
	type key struct {
		lid  LogicalID
		slot int
	}
	lastSeen := make(map[key]float64)
	graceful := make(map[key]bool)

	rt.mu.Lock()
	monitoredAny := false
	for _, g := range rt.groups {
		if !g.monitored {
			continue
		}
		monitoredAny = true
		for slot := range g.members {
			// Grace: replicas get a full timeout from startup.
			lastSeen[key{g.lid, slot}] = env.Now()
		}
	}
	rt.mu.Unlock()
	if !monitoredAny {
		// Nothing to watch (no-resiliency configurations): exit rather
		// than poll forever.
		return nil
	}

	for {
		m, err := env.RecvTimeout(rt.cfg.GuardianPoll)
		now := env.Now()
		switch {
		case err == nil:
			switch m.Kind {
			case kindHeartbeat:
				lid, slot, derr := decodeHeartbeat(m.Payload)
				if derr != nil {
					continue
				}
				k := key{lid, slot}
				lastSeen[k] = now
				if len(m.Payload) >= 7 && m.Payload[6] == 1 {
					// Graceful exit: stop monitoring, no regeneration.
					graceful[k] = true
					rt.markDead(lid, slot)
				}
			case kindSnapResp:
				// Forward state to the regenerated replica.
				corr, snap, derr := decodeSnapResp(m.Payload)
				if derr != nil {
					continue
				}
				_ = env.Send(corr, kindSnapResp, encodeSnapResp(corr, snap))
			}
		case errors.Is(err, scplib.ErrTimeout):
			// fall through to expiry checks
		default:
			return err // killed at shutdown
		}

		// Expiry scan, two-phase. Phase 1 marks every expired replica
		// dead before any recovery decisions are made: when an entire
		// group dies within one detection window, recovery must see that
		// there is no survivor (otherwise it would pick a corpse to
		// snapshot from and skip the epoch bump).
		//
		// Transport facts (cluster runs) merge in here. nodeSeen extends a
		// member's effective heartbeat age: worker pings run on their own
		// goroutine, so a replica deep in a multi-second kernel stays
		// fresh. nodeLost and ripe exit reports force-expire regardless of
		// heartbeat age: a severed connection or reaped thread is ground
		// truth. Exit reports are held for one poll before they ripen —
		// a graceful bye travels the same FIFO connection ahead of the
		// exit report, and the hold lets it be drained from the mailbox
		// first so finished replicas are not "regenerated".
		rt.mu.Lock()
		groups := append([]*group(nil), rt.groups...)
		nodeSeen := make(map[int]float64, len(rt.nodeSeen))
		for n, ts := range rt.nodeSeen {
			nodeSeen[n] = ts
		}
		var nodeLost map[int]bool // nil when nothing was lost (reads are safe)
		if len(rt.nodeLost) > 0 {
			nodeLost = rt.nodeLost
			rt.nodeLost = make(map[int]bool)
		}
		exitedRipe := make(map[scplib.ThreadID]bool)
		for phys, ts := range rt.exited {
			if now-ts >= rt.cfg.GuardianPoll {
				exitedRipe[phys] = true
				delete(rt.exited, phys)
			}
		}
		rt.mu.Unlock()
		type failure struct {
			g    *group
			slot int
			seen float64
		}
		var failures []failure
		for _, g := range groups {
			if !g.monitored {
				continue
			}
			for slot, mem := range g.members {
				k := key{g.lid, slot}
				if !mem.alive || graceful[k] {
					continue
				}
				seen := lastSeen[k]
				if ts, ok := nodeSeen[mem.node]; ok && ts > seen {
					seen = ts
				}
				forced := nodeLost[mem.node] || exitedRipe[mem.phys]
				if !forced && now-seen <= rt.cfg.FailTimeout {
					continue
				}
				failures = append(failures, failure{g, slot, seen})
				rt.mu.Lock()
				mem.alive = false
				rt.stats.Detections++
				rt.stats.DetectionLatency = append(rt.stats.DetectionLatency, now-seen)
				tr := rt.trace
				rt.mu.Unlock()
				tr.Event("detection", slot, int(g.epoch), g.name)
				rt.sys.Kill(mem.phys)
				env.Logf("guardian: %s replica %d silent for %.2fs — declaring failed",
					g.name, slot, now-seen)
			}
		}
		// Phase 2: regenerate and reconfigure.
		if len(failures) > 0 {
			regenerate := rt.cfg.Regenerate
			rt.mu.Lock()
			if rt.stopped {
				regenerate = false
			}
			rt.mu.Unlock()
			if regenerate {
				for _, f := range failures {
					rt.regenerate(env, f.g, f.slot, f.seen)
					lastSeen[key{f.g.lid, f.slot}] = now // fresh grace
				}
			}
			rt.broadcastView(env)
		}
	}
}

// markDead flips a member's alive bit without regeneration (graceful
// exits and the no-regeneration baseline).
func (rt *Runtime) markDead(lid LogicalID, slot int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if g := rt.byLID[lid]; g != nil && slot >= 0 && slot < len(g.members) {
		g.members[slot].alive = false
	}
}

// regenerate spawns a replacement replica for (g, slot) on an alternative
// node and initiates state transfer from a surviving replica.
func (rt *Runtime) regenerate(env scplib.Env, g *group, slot int, failedAt float64) {
	rt.mu.Lock()
	// Nodes hosting live members of this group are excluded so a second
	// failure cannot take out both replicas (the paper's "mapped to an
	// alternative location in the network").
	exclude := make(map[int]bool)
	var survivor *member
	for _, m := range g.members {
		if m.alive {
			exclude[m.node] = true
			if survivor == nil {
				survivor = m
			}
		}
	}
	if survivor == nil {
		// Whole-group restart: new incarnation so receivers reset the
		// group's sequence space.
		g.epoch++
	}
	failedNode := g.members[slot].node
	candidates := make([]int, 0, rt.cfg.Nodes)
	for off := 1; off <= rt.cfg.Nodes; off++ {
		n := (failedNode + off) % rt.cfg.Nodes
		if rt.deadNode[n] || exclude[n] {
			continue
		}
		candidates = append(candidates, n)
	}
	view := rt.currentViewLocked()
	rt.mu.Unlock()

	for _, node := range candidates {
		rt.mu.Lock()
		phys := rt.allocPhysLocked()
		newMem := &member{phys: phys, node: node, alive: true}
		rt.mu.Unlock()

		// The new replica must be in the view it starts from.
		view = patchView(view, g.lid, slot, newMem)
		err := rt.spawnReplica(g, slot, newMem, view, survivor != nil)
		if errors.Is(err, scplib.ErrNodeDown) {
			rt.mu.Lock()
			rt.deadNode[node] = true
			rt.mu.Unlock()
			continue
		}
		if err != nil {
			env.Logf("guardian: regeneration spawn failed: %v", err)
			return
		}
		rt.mu.Lock()
		g.members[slot] = newMem
		rt.stats.Regenerations++
		rt.stats.RegenerationLatency = append(rt.stats.RegenerationLatency, env.Now()-failedAt)
		tr := rt.trace
		rt.mu.Unlock()
		tr.Event("regeneration", slot, int(g.epoch), fmt.Sprintf("%s on node %d", g.name, node))
		env.Logf("guardian: regenerated %s replica %d on node %d as thread %d", g.name, slot, node, phys)

		// Asynchronous state transfer from a survivor, correlated by the
		// new physical ID. Stateless-by-design groups work without it.
		if survivor != nil {
			_ = env.Send(survivor.phys, kindSnapReq, encodeSnapReq(g.lid, phys))
		}
		return
	}
	env.Logf("guardian: no node available to regenerate %s replica %d — degraded", g.name, slot)
}

// patchView returns a copy of v with (lid, slot) replaced by m.
func patchView(v *viewTable, lid LogicalID, slot int, m *member) *viewTable {
	out := &viewTable{View: v.View, Groups: make([]viewGroup, len(v.Groups))}
	copy(out.Groups, v.Groups)
	for i := range out.Groups {
		if out.Groups[i].LID != lid {
			continue
		}
		members := append([]viewMember(nil), out.Groups[i].Members...)
		if slot < len(members) {
			members[slot] = viewMember{Phys: m.phys, Node: int32(m.node), Alive: m.alive}
		}
		out.Groups[i].Members = members
	}
	return out
}

// broadcastView increments the view number and pushes the new table to
// every live thread. Monotonic view numbers let receivers discard stale
// updates, resolving reconfiguration races.
func (rt *Runtime) broadcastView(env scplib.Env) {
	rt.mu.Lock()
	rt.viewNum++
	rt.stats.ViewChanges++
	v := rt.currentViewLocked()
	targets := rt.allLivePhysLocked()
	rt.mu.Unlock()

	payload := encodeView(v)
	for _, phys := range targets {
		_ = env.Send(phys, kindView, payload)
	}
}
