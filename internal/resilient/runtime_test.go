package resilient

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"resilientfusion/internal/scplib"
	"resilientfusion/internal/simnet"
)

// Test application: a manager (singleton, lid 0) issues rounds of requests
// to W replicated worker groups (lids 1..W); every worker replica replies
// with identical content. Dedupe must deliver exactly one reply per
// (worker, round) no matter how many replicas answered.

const (
	kindReq  uint16 = 1
	kindResp uint16 = 2
	kindStop uint16 = 3
)

const mgrLID LogicalID = 0

type harness struct {
	x   *simnet.Exec
	sys *scplib.SimSystem
	rt  *Runtime
}

// newHarness builds a sim cluster with `nodes` nodes and a resilient
// runtime configured for fast failure detection.
func newHarness(t *testing.T, nodes int, cfg Config) *harness {
	t.Helper()
	x, ns := scplib.NewCluster(nodes, 1e8)
	x.Horizon = 10000
	sys := scplib.NewSimSystem(x, x.NewBus(0, 0), ns, scplib.DefaultMsgCost())
	cfg.Nodes = nodes
	rt, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{x: x, sys: sys, rt: rt}
}

// workerBody replies to requests with the same payload; replicas behave
// identically, as the layer requires.
func workerBody(env REnv) error {
	for {
		m, err := env.Recv()
		if err != nil {
			return err
		}
		switch m.Kind {
		case kindStop:
			return nil
		case kindReq:
			if err := env.Compute(5e7); err != nil {
				return err
			}
			reply := make([]byte, 8+len(m.Payload))
			binary.LittleEndian.PutUint32(reply, uint32(env.Self()))
			binary.LittleEndian.PutUint32(reply[4:], binary.LittleEndian.Uint32(m.Payload))
			if err := env.Send(mgrLID, kindResp, reply); err != nil {
				return err
			}
		}
	}
}

// managerBody drives `rounds` rounds over `workers` groups and verifies
// exactly-once delivery of replies. It records observations into res.
type managerResult struct {
	replies   map[string]int // "worker/round" -> count
	extra     int            // unexpected deliveries after completion
	completed bool
}

func managerBody(rt *Runtime, workers, rounds int, perRoundTimeout float64, res *managerResult) RBody {
	return func(env REnv) error {
		defer rt.Shutdown()
		res.replies = make(map[string]int)
		for r := 0; r < rounds; r++ {
			payload := make([]byte, 4)
			binary.LittleEndian.PutUint32(payload, uint32(r))
			for w := 1; w <= workers; w++ {
				if err := env.Send(LogicalID(w), kindReq, payload); err != nil {
					return err
				}
			}
			// Collect one reply per worker, tolerating resends.
			want := workers
			for want > 0 {
				m, err := env.RecvTimeout(perRoundTimeout)
				if errors.Is(err, ErrTimeout) {
					return fmt.Errorf("round %d: timed out with %d replies missing", r, want)
				}
				if err != nil {
					return err
				}
				if m.Kind != kindResp {
					continue
				}
				wid := binary.LittleEndian.Uint32(m.Payload)
				rid := binary.LittleEndian.Uint32(m.Payload[4:])
				key := fmt.Sprintf("%d/%d", wid, rid)
				res.replies[key]++
				if rid == uint32(r) && res.replies[key] == 1 {
					want--
				}
			}
		}
		// Drain: any further delivery is a dedupe failure.
		for {
			_, err := env.RecvTimeout(1.0)
			if errors.Is(err, ErrTimeout) {
				break
			}
			if err != nil {
				return err
			}
			res.extra++
		}
		for w := 1; w <= workers; w++ {
			if err := env.Send(LogicalID(w), kindStop, nil); err != nil {
				return err
			}
		}
		res.completed = true
		return nil
	}
}

// buildEcho wires the echo application: returns the result sink.
func buildEcho(t *testing.T, h *harness, workers, rounds int, timeout float64) *managerResult {
	t.Helper()
	res := &managerResult{}
	if err := h.rt.AddSingleton(mgrLID, "manager", 0, managerBody(h.rt, workers, rounds, timeout, res)); err != nil {
		t.Fatal(err)
	}
	level := h.rt.Config().Replication
	for w := 1; w <= workers; w++ {
		placements := make([]int, level)
		for k := 0; k < level; k++ {
			placements[k] = 1 + (w-1+k)%(h.rt.Config().Nodes-1)
		}
		if err := h.rt.AddGroup(LogicalID(w), fmt.Sprintf("worker%d", w), placements, workerBody); err != nil {
			t.Fatal(err)
		}
	}
	return res
}

func TestEchoExactlyOnceWithReplication(t *testing.T) {
	h := newHarness(t, 5, DefaultConfig(5))
	res := buildEcho(t, h, 3, 4, 50)
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.completed {
		t.Fatal("manager did not complete")
	}
	if res.extra != 0 {
		t.Fatalf("dedupe leaked %d duplicate deliveries", res.extra)
	}
	for key, n := range res.replies {
		if n != 1 {
			t.Fatalf("reply %s delivered %d times", key, n)
		}
	}
	if len(res.replies) != 3*4 {
		t.Fatalf("got %d distinct replies, want 12", len(res.replies))
	}
	st := h.rt.Stats()
	if st.Detections != 0 || st.Regenerations != 0 {
		t.Fatalf("spurious failure handling: %+v", st)
	}
}

func TestKillOneReplicaStillCompletes(t *testing.T) {
	h := newHarness(t, 5, DefaultConfig(5))
	res := buildEcho(t, h, 2, 6, 80)
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill worker 1 replica 0 mid-run (rounds take ~0.5s+ each).
	h.x.Schedule(1, func() { h.rt.KillReplica(1, 0) })
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.completed || res.extra != 0 {
		t.Fatalf("completed=%v extra=%d", res.completed, res.extra)
	}
	st := h.rt.Stats()
	if st.Detections < 1 {
		t.Fatalf("failure not detected: %+v", st)
	}
	if st.Regenerations < 1 {
		t.Fatalf("replica not regenerated: %+v", st)
	}
	if got := h.rt.AliveReplicas(1); got != 2 {
		t.Fatalf("alive replicas after regeneration = %d", got)
	}
	// Detection latency bounded by FailTimeout + poll slack.
	cfg := h.rt.Config()
	for _, d := range st.DetectionLatency {
		if d > cfg.FailTimeout+cfg.HeartbeatPeriod+cfg.GuardianPoll+0.5 {
			t.Fatalf("detection latency %g too large", d)
		}
	}
}

func TestRegeneratedReplicaIsFunctional(t *testing.T) {
	// Kill replica 0 early; after regeneration completes, kill replica 1.
	// Work can then only complete if the regenerated replica actually
	// serves traffic (view reconfiguration reached the manager).
	h := newHarness(t, 6, DefaultConfig(6))
	res := buildEcho(t, h, 1, 20, 100)
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	h.x.Schedule(1, func() { h.rt.KillReplica(1, 0) })
	h.x.Schedule(8, func() { h.rt.KillReplica(1, 1) })
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.completed {
		t.Fatal("work did not complete through the regenerated replica")
	}
	st := h.rt.Stats()
	if st.Regenerations < 2 {
		t.Fatalf("regenerations = %d, want >= 2", st.Regenerations)
	}
	if res.extra != 0 {
		t.Fatalf("dedupe leaked %d", res.extra)
	}
}

func TestNoRegenerationBaseline(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Regenerate = false
	h := newHarness(t, 5, cfg)
	res := buildEcho(t, h, 2, 6, 80)
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	h.x.Schedule(3, func() { h.rt.KillReplica(1, 0) })
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.completed {
		t.Fatal("graceful degradation failed: work did not complete on survivor")
	}
	st := h.rt.Stats()
	if st.Detections < 1 {
		t.Fatal("failure not detected")
	}
	if st.Regenerations != 0 {
		t.Fatalf("regenerated despite Regenerate=false: %+v", st)
	}
	if got := h.rt.AliveReplicas(1); got != 1 {
		t.Fatalf("alive replicas = %d, want 1 (degraded)", got)
	}
}

func TestGracefulExitNoRegeneration(t *testing.T) {
	// Workers stopping normally must not trigger the failure path even
	// though their heartbeats cease. Give the run time for several
	// guardian polls after the stop by having the manager linger.
	h := newHarness(t, 4, DefaultConfig(4))
	var done bool
	if err := h.rt.AddSingleton(mgrLID, "manager", 0, func(env REnv) error {
		defer h.rt.Shutdown()
		if err := env.Send(1, kindStop, nil); err != nil {
			return err
		}
		// Linger several failure timeouts.
		if _, err := env.RecvTimeout(5); !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("unexpected recv: %v", err)
		}
		done = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.AddGroup(1, "worker", []int{1, 2}, workerBody); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("manager did not finish")
	}
	st := h.rt.Stats()
	if st.Detections != 0 || st.Regenerations != 0 {
		t.Fatalf("graceful exit treated as failure: %+v", st)
	}
}

func TestWholeGroupLossWithRegeneration(t *testing.T) {
	// Killing every replica between rounds: regeneration restores the
	// group; requests sent afterwards must be served. (In-flight requests
	// at loss time are the application's to retry; here the kill happens
	// while idle.)
	cfg := DefaultConfig(6)
	h := newHarness(t, 6, cfg)
	var completed bool
	if err := h.rt.AddSingleton(mgrLID, "manager", 0, func(env REnv) error {
		defer h.rt.Shutdown()
		// Round 1.
		if err := env.Send(1, kindReq, make([]byte, 4)); err != nil {
			return err
		}
		if _, err := env.RecvMatchTimeout(func(m *RMessage) bool { return m.Kind == kindResp }, 50); err != nil {
			return fmt.Errorf("round 1: %w", err)
		}
		// Wait out the massacre and the regeneration (failure at t≈8).
		if _, err := env.RecvTimeout(10); !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("linger: %v", err)
		}
		// Round 2 against regenerated group.
		if err := env.Send(1, kindReq, make([]byte, 4)); err != nil {
			return err
		}
		if _, err := env.RecvMatchTimeout(func(m *RMessage) bool { return m.Kind == kindResp }, 50); err != nil {
			return fmt.Errorf("round 2: %w", err)
		}
		if err := env.Send(1, kindStop, nil); err != nil {
			return err
		}
		completed = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.AddGroup(1, "worker", []int{1, 2}, workerBody); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	h.x.Schedule(8, func() {
		h.rt.KillReplica(1, 0)
		h.rt.KillReplica(1, 1)
	})
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("group did not recover from total loss")
	}
	st := h.rt.Stats()
	if st.Regenerations < 2 {
		t.Fatalf("regenerations = %d", st.Regenerations)
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	run := func() float64 {
		h := newHarness(t, 5, DefaultConfig(5))
		buildEcho(t, h, 3, 4, 50)
		if err := h.rt.Start(); err != nil {
			t.Fatal(err)
		}
		h.x.Schedule(3, func() { h.rt.KillReplica(1, 0) })
		if err := h.rt.Run(); err != nil {
			t.Fatal(err)
		}
		return h.sys.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("resilient run not deterministic: %g vs %g", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	x, ns := scplib.NewCluster(2, 1e8)
	sys := scplib.NewSimSystem(x, x.NewZeroNet(), ns, scplib.MsgCost{})
	if _, err := New(sys, Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Nodes=0 accepted: %v", err)
	}
	rt, err := New(sys, Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	body := func(env REnv) error { return nil }
	if err := rt.AddGroup(1, "g", nil, body); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty placements accepted: %v", err)
	}
	if err := rt.AddGroup(1, "g", []int{5}, body); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("out-of-range node accepted: %v", err)
	}
	if err := rt.AddGroup(1, "g", []int{0}, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil body accepted: %v", err)
	}
	if err := rt.AddGroup(1, "g", []int{0}, body); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddGroup(1, "g2", []int{0}, body); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("duplicate lid accepted: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); !errors.Is(err, ErrStarted) {
		t.Fatalf("double Start: %v", err)
	}
	if err := rt.AddGroup(2, "late", []int{0}, body); !errors.Is(err, ErrStarted) {
		t.Fatalf("AddGroup after Start: %v", err)
	}
	rt.Shutdown()
	rt.Shutdown() // idempotent
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKillReplicaEdgeCases(t *testing.T) {
	h := newHarness(t, 3, DefaultConfig(3))
	if h.rt.KillReplica(9, 0) {
		t.Fatal("kill of unknown group succeeded")
	}
	if err := h.rt.AddSingleton(mgrLID, "m", 0, func(env REnv) error {
		h.rt.Shutdown()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if h.rt.KillReplica(mgrLID, 5) {
		t.Fatal("kill of bad slot succeeded")
	}
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if h.rt.AliveReplicas(9) != 0 {
		t.Fatal("AliveReplicas for unknown group")
	}
}

func TestAppKindInControlRangeRejected(t *testing.T) {
	h := newHarness(t, 3, DefaultConfig(3))
	var sendErr error
	if err := h.rt.AddSingleton(mgrLID, "m", 0, func(env REnv) error {
		sendErr = env.Send(mgrLID, CtrlBase+1, nil)
		h.rt.Shutdown()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sendErr, ErrBadConfig) {
		t.Fatalf("control-range kind allowed: %v", sendErr)
	}
}

func TestRealRuntimeSmoke(t *testing.T) {
	// The same application on goroutines and wall-clock time: one kill,
	// regeneration, completion. Timing assertions are deliberately loose.
	sys := scplib.NewRealSystem()
	cfg := Config{
		Nodes:           4,
		Replication:     2,
		HeartbeatPeriod: 0.01,
		FailTimeout:     0.08,
		Regenerate:      true,
	}
	rt, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := &managerResult{}
	if err := rt.AddSingleton(mgrLID, "manager", 0, managerBody(rt, 2, 5, 5, res)); err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 2; w++ {
		if err := rt.AddGroup(LogicalID(w), fmt.Sprintf("worker%d", w), []int{1, 2}, workerBody); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		// Kill a replica shortly after startup, from outside.
		for rt.AliveReplicas(1) < 2 {
		}
		rt.KillReplica(1, 0)
	}()
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.completed {
		t.Fatal("real-runtime run did not complete")
	}
	if res.extra != 0 {
		t.Fatalf("dedupe leaked %d deliveries", res.extra)
	}
}
