// Package resilient implements the paper's computational resiliency layer
// on top of scplib: logical threads are transparently replicated across
// nodes ("shadow threads", Figure 1 of the paper), replica health is
// tracked with heartbeats, and — beyond plain fault tolerance — lost
// replicas are *regenerated* at alternative locations and the
// communication structure is reconfigured on the fly, restoring the
// configured replication level subject only to available resources.
//
// Application code is written against REnv in terms of *logical* thread
// IDs. The layer multicasts each logical send to every replica of the
// destination group and deduplicates at the receiver with per-sender
// logical sequence numbers, so replication is invisible to the
// application — exactly the property the paper's library technology
// provides ("application independent ... hides the details of
// communication protocols required to achieve dynamic replication and
// reconfiguration").
//
// Determinism requirement: replicas of a group must behave identically
// given identical message streams. Messages are FIFO per sender, so this
// holds for applications (like manager/worker fusion) in which each
// group's input comes from a single logical peer at a time.
package resilient

import (
	"errors"

	"resilientfusion/internal/scplib"
)

// LogicalID names a logical thread (an unreplicated singleton or a
// replicated group).
type LogicalID int32

// Control-plane message kinds occupy the top of the kind space;
// application kinds must stay below CtrlBase.
const (
	CtrlBase uint16 = 0xFF00
	// kindApp wraps application traffic (the app kind travels in the
	// resilient header, scplib kind is kindApp).
	kindApp = CtrlBase + iota
	kindHeartbeat
	kindView
	kindSnapReq
	kindSnapResp
)

// Errors.
var (
	// ErrKilled mirrors scplib.ErrKilled at the resilient layer.
	ErrKilled = errors.New("resilient: thread killed")
	// ErrTimeout mirrors scplib.ErrTimeout.
	ErrTimeout = errors.New("resilient: receive timeout")
	// ErrBadConfig reports invalid Config or group definitions.
	ErrBadConfig = errors.New("resilient: bad configuration")
	// ErrUnknownGroup is returned for operations on undefined logical IDs.
	ErrUnknownGroup = errors.New("resilient: unknown logical thread")
	// ErrStarted is returned when mutating a runtime after Start.
	ErrStarted = errors.New("resilient: runtime already started")
)

// RMessage is an application message after dedupe: From is the *logical*
// sender; Kind is the application kind.
type RMessage struct {
	From    LogicalID
	Kind    uint16
	Payload []byte
	// Replica is the index of the replica that physically delivered the
	// accepted copy (diagnostics).
	Replica int
	// LSeq is the logical sequence number (diagnostics).
	LSeq uint64
}

// REnv is the environment handed to resilient thread bodies. It mirrors
// scplib.Env but in logical-thread space.
type REnv interface {
	// Self returns the logical identity.
	Self() LogicalID
	// Replica returns this replica's index within its group (0-based;
	// always 0 for singletons).
	Replica() int
	// Now returns the runtime clock in seconds.
	Now() float64
	// Send multicasts to every live replica of the destination group.
	Send(to LogicalID, kind uint16, payload []byte) error
	// Recv returns the next deduplicated application message.
	Recv() (*RMessage, error)
	// RecvTimeout is Recv with a deadline in seconds.
	RecvTimeout(seconds float64) (*RMessage, error)
	// RecvMatch returns the next message matching the predicate,
	// stashing others (arrival order preserved for later calls).
	RecvMatch(match func(*RMessage) bool) (*RMessage, error)
	// RecvMatchTimeout is RecvMatch with a deadline.
	RecvMatchTimeout(match func(*RMessage) bool, seconds float64) (*RMessage, error)
	// Compute charges computation, interleaving heartbeats so long
	// kernels do not trip the failure detector.
	Compute(flops float64) error
	// Logf logs through the underlying system.
	Logf(format string, args ...any)
}

// RBody is a resilient thread's entry point. Group bodies must be
// deterministic functions of their message stream (see package comment).
type RBody func(env REnv) error

// Config tunes the resiliency protocols.
type Config struct {
	// Nodes is the number of cluster nodes available for placement.
	Nodes int
	// Replication is the default replication level for AddGroup when the
	// caller does not give explicit placements (level 2 in the paper's
	// evaluation).
	Replication int
	// HeartbeatPeriod is the replica heartbeat interval in seconds.
	HeartbeatPeriod float64
	// FailTimeout declares a replica dead after this many seconds of
	// heartbeat silence.
	FailTimeout float64
	// Regenerate enables dynamic regeneration: replacements are spawned
	// for dead replicas and the communication structure reconfigured.
	// With Regenerate false the layer degrades gracefully, like the
	// plain replication baseline of the paper's Figure 1.
	Regenerate bool
	// GuardianNode places the failure detector (default node 0, beside
	// the manager).
	GuardianNode int
	// GuardianPoll is the detector's checking interval (default
	// HeartbeatPeriod/2).
	GuardianPoll float64
	// PhysBase offsets every physical thread ID this runtime allocates
	// (guardian = PhysBase, replicas from PhysBase+1, couriers mirrored
	// from the top of the ID space). It lets several runtimes — one per
	// in-flight cluster job — share a single long-lived scplib.System
	// without colliding. Zero keeps the historical layout.
	PhysBase scplib.ThreadID
}

// DefaultConfig returns the evaluation configuration of §4: replication
// level two with regeneration enabled.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		Replication:     2,
		HeartbeatPeriod: 0.25,
		FailTimeout:     1.0,
		Regenerate:      true,
	}
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 0.25
	}
	if c.FailTimeout <= 0 {
		c.FailTimeout = 4 * c.HeartbeatPeriod
	}
	if c.GuardianPoll <= 0 {
		c.GuardianPoll = c.HeartbeatPeriod / 2
	}
	return c
}
