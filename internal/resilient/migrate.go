package resilient

import (
	"errors"
	"fmt"

	"resilientfusion/internal/scplib"
)

// MigrateReplica proactively moves one replica of a logical thread to a
// different node — the paper's thread *mobility* ("they are highly
// mobile, moving from one place in the network to another with speed and
// agility"), usable as a camouflage policy: periodically relocating
// replicas denies an attacker a stable target.
//
// The mechanics reuse the regeneration path deliberately: spawn the
// replacement at the destination (awaiting state transfer from a live
// peer when one exists), retire the old replica, bump the view and
// broadcast it. Migration must be initiated from outside the runtime's
// threads (tests, failure plans, or an application driver); it returns
// an error if the destination is invalid or the slot has no live replica.
func (rt *Runtime) MigrateReplica(lid LogicalID, slot int, toNode int) error {
	rt.mu.Lock()
	if !rt.started || rt.stopped {
		rt.mu.Unlock()
		return fmt.Errorf("%w: runtime not running", ErrBadConfig)
	}
	g := rt.byLID[lid]
	if g == nil {
		rt.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownGroup, lid)
	}
	if slot < 0 || slot >= len(g.members) {
		rt.mu.Unlock()
		return fmt.Errorf("%w: slot %d", ErrBadConfig, slot)
	}
	if toNode < 0 || toNode >= rt.cfg.Nodes {
		rt.mu.Unlock()
		return fmt.Errorf("%w: node %d", ErrBadConfig, toNode)
	}
	old := g.members[slot]
	if !old.alive {
		rt.mu.Unlock()
		return fmt.Errorf("%w: replica %d/%d is not alive", ErrBadConfig, lid, slot)
	}
	if rt.deadNode[toNode] {
		rt.mu.Unlock()
		return fmt.Errorf("%w: node %d is down", ErrBadConfig, toNode)
	}

	// A surviving peer (not the migrating replica itself) can seed the
	// newcomer's protocol state.
	var survivor *member
	for i, m := range g.members {
		if i != slot && m.alive {
			survivor = m
			break
		}
	}
	phys := rt.allocPhysLocked()
	newMem := &member{phys: phys, node: toNode, alive: true}
	view := rt.currentViewLocked()
	rt.mu.Unlock()

	view = patchView(view, lid, slot, newMem)
	if err := rt.spawnReplica(g, slot, newMem, view, survivor != nil); err != nil {
		if errors.Is(err, scplib.ErrNodeDown) {
			rt.mu.Lock()
			rt.deadNode[toNode] = true
			rt.mu.Unlock()
		}
		return err
	}

	rt.mu.Lock()
	g.members[slot] = newMem
	rt.stats.Migrations++
	rt.mu.Unlock()

	// Retire the old incarnation and reconfigure. The old replica's
	// in-flight work is covered by its peers (or by application reissue,
	// exactly as for failures).
	rt.sys.Kill(old.phys)
	rt.broadcastViewExternal()

	// Seed state transfer via the guardian relay path: ask the survivor
	// directly (the guardian forwards the response to the newcomer).
	if survivor != nil {
		rt.requestSnapshot(survivor.phys, lid, phys)
	}
	return nil
}

// broadcastViewExternal is broadcastView for callers outside the guardian
// thread: it sends through a short-lived courier thread because view
// distribution requires a sending context.
func (rt *Runtime) broadcastViewExternal() {
	rt.mu.Lock()
	rt.viewNum++
	rt.stats.ViewChanges++
	v := rt.currentViewLocked()
	targets := rt.allLivePhysLocked()
	id := rt.nextCourier
	rt.nextCourier++
	rt.mu.Unlock()

	payload := encodeView(v)
	courier := scplib.ThreadSpec{
		ID:   rt.courierID(id),
		Name: fmt.Sprintf("courier%d", id),
		Node: rt.cfg.GuardianNode,
		Body: func(env scplib.Env) error {
			for _, phys := range targets {
				if err := env.Send(phys, kindView, payload); err != nil {
					return err
				}
			}
			return nil
		},
	}
	_ = rt.sys.Spawn(courier)
}

// requestSnapshot asks a survivor for protocol state on behalf of a
// regenerated/migrated replica, via a courier thread.
func (rt *Runtime) requestSnapshot(survivor scplib.ThreadID, lid LogicalID, corr scplib.ThreadID) {
	rt.mu.Lock()
	id := rt.nextCourier
	rt.nextCourier++
	rt.mu.Unlock()
	courier := scplib.ThreadSpec{
		ID:   rt.courierID(id),
		Name: fmt.Sprintf("courier%d", id),
		Node: rt.cfg.GuardianNode,
		Body: func(env scplib.Env) error {
			return env.Send(survivor, kindSnapReq, encodeSnapReq(lid, corr))
		},
	}
	_ = rt.sys.Spawn(courier)
}

// courierBase is the top of the physical-ID space, grown downward for
// ephemeral courier threads so they never collide with replica IDs.
const courierBase scplib.ThreadID = 1 << 30

// courierID offsets couriers by the runtime's PhysBase so several
// runtimes sharing one system (per-job cluster runtimes) mirror their
// replica-ID offsets at the top of the ID space without colliding.
func (rt *Runtime) courierID(id int32) scplib.ThreadID {
	return courierBase - rt.cfg.PhysBase - scplib.ThreadID(id)
}
