package resilient

import (
	"errors"

	"resilientfusion/internal/scplib"
)

// wrapper adapts a logical thread body to a physical scplib thread. It
// multicasts logical sends to the destination group's replicas, dedupes
// incoming application messages, interleaves heartbeats with computation,
// and applies view changes pushed by the guardian. One wrapper instance
// belongs to exactly one physical thread; no locking is needed.
type wrapper struct {
	lid     LogicalID
	name    string
	replica int
	body    RBody

	// The wrapper's coupling to its Runtime is these plain values, not a
	// pointer: a wrapper reconstructed in a worker process (remote.go) has
	// no Runtime, only the guardian's physical address and the timeouts.
	guardianPhys scplib.ThreadID
	failTimeout  float64

	monitored bool
	hbPeriod  float64
	// epoch is the group incarnation this replica sends under; bumped by
	// the guardian when a group is regenerated with no survivor.
	epoch uint32

	env scplib.Env // set by run

	// views maps logical IDs to live physical replica IDs.
	views   map[LogicalID][]scplib.ThreadID
	viewNum uint32

	ded   *dedupe
	lseq  map[LogicalID]uint64
	stash []*RMessage

	// awaitRestore makes run buffer application traffic until the state
	// snapshot from a surviving replica arrives (or a timeout passes).
	// Without this, a regenerated replica could number its first sends
	// before the restore rewinds its counters, leaving it permanently
	// misaligned with its peer and filtered out by receivers.
	awaitRestore bool
	restored     bool
	backlog      []*scplib.Message

	hbDue      float64
	chunkFlops float64
}

func newWrapper(rt *Runtime, g *group, slot int, view *viewTable) *wrapper {
	w := &wrapper{
		lid:          g.lid,
		name:         g.name,
		replica:      slot,
		body:         g.body,
		guardianPhys: rt.guardianPhys,
		failTimeout:  rt.cfg.FailTimeout,
		monitored:    g.monitored,
		hbPeriod:     rt.cfg.HeartbeatPeriod,
		epoch:        g.epoch,
		views:        make(map[LogicalID][]scplib.ThreadID),
		ded:          newDedupe(),
		lseq:         make(map[LogicalID]uint64),
		chunkFlops:   1e6,
	}
	w.applyViewTable(view)
	return w
}

// applyViewTable replaces the local routing table.
func (w *wrapper) applyViewTable(v *viewTable) {
	if v.View < w.viewNum {
		return // stale view — reconfiguration race guard
	}
	w.viewNum = v.View
	for lid := range w.views {
		delete(w.views, lid)
	}
	for _, g := range v.Groups {
		var alive []scplib.ThreadID
		for _, m := range g.Members {
			if m.Alive {
				alive = append(alive, m.Phys)
			}
		}
		w.views[g.LID] = alive
	}
}

// restoreState seeds protocol state from a snapshot (regeneration).
func (w *wrapper) restoreState(s *snapshot) {
	for lid, seq := range s.LSeq {
		w.lseq[lid] = seq
	}
	w.ded.restore(s)
}

// snapshotState exports protocol state for a regenerated peer.
func (w *wrapper) snapshotState() *snapshot {
	s := newSnapshot()
	for lid, seq := range w.lseq {
		s.LSeq[lid] = seq
	}
	w.ded.snapshotInto(s)
	return s
}

// run is the physical thread body.
func (w *wrapper) run(env scplib.Env) error {
	w.env = env
	w.hbDue = env.Now() // first heartbeat immediately
	w.maybeHeartbeat()
	if w.awaitRestore {
		if err := w.awaitState(); err != nil {
			if errors.Is(err, ErrKilled) {
				return scplib.ErrKilled
			}
			return err
		}
	}
	err := w.body(w)
	if err == nil && w.monitored {
		// Graceful exit: tell the guardian not to regenerate us.
		w.sendBye()
	}
	if errors.Is(err, ErrKilled) {
		// Map back to the transport's kill sentinel so the runtime does
		// not report injected failures as application errors.
		return scplib.ErrKilled
	}
	return err
}

func mapScplibErr(err error) error {
	switch {
	case errors.Is(err, scplib.ErrKilled):
		return ErrKilled
	case errors.Is(err, scplib.ErrTimeout):
		return ErrTimeout
	default:
		return err
	}
}

// --- heartbeats ---

func (w *wrapper) maybeHeartbeat() {
	if !w.monitored || w.env == nil {
		return
	}
	now := w.env.Now()
	if now < w.hbDue {
		return
	}
	w.hbDue = now + w.hbPeriod
	payload := append(encodeHeartbeat(w.lid, w.replica), 0)
	_ = w.env.Send(w.guardianPhys, kindHeartbeat, payload)
}

func (w *wrapper) sendBye() {
	payload := append(encodeHeartbeat(w.lid, w.replica), 1)
	_ = w.env.Send(w.guardianPhys, kindHeartbeat, payload)
}

// --- REnv implementation ---

func (w *wrapper) Self() LogicalID { return w.lid }
func (w *wrapper) Replica() int    { return w.replica }
func (w *wrapper) Now() float64    { return w.env.Now() }

func (w *wrapper) Logf(format string, args ...any) { w.env.Logf(format, args...) }

// Send multicasts to every live replica of the destination group. The
// logical sequence number advances once per logical send, so receivers
// can collapse the copies.
func (w *wrapper) Send(to LogicalID, kind uint16, payload []byte) error {
	if kind >= CtrlBase {
		return ErrBadConfig
	}
	w.lseq[to]++
	seq := w.lseq[to]
	targets := w.views[to]
	wire := encodeApp(w.lid, w.replica, kind, seq, w.viewNum, w.epoch, payload)
	for _, phys := range targets {
		if err := w.env.Send(phys, kindApp, wire); err != nil {
			return mapScplibErr(err)
		}
	}
	w.maybeHeartbeat()
	return nil
}

// stashNext pops the oldest stashed message matching match.
func (w *wrapper) stashNext(match func(*RMessage) bool) *RMessage {
	for i, m := range w.stash {
		if match == nil || match(m) {
			w.stash = append(w.stash[:i], w.stash[i+1:]...)
			return m
		}
	}
	return nil
}

// awaitState buffers traffic until the regeneration state snapshot lands.
// If the survivor dies before answering, the timeout falls back to fresh
// protocol state — a documented degraded mode in which peers may filter
// this replica's early sends as duplicates; request/reply applications
// recover via reissue.
func (w *wrapper) awaitState() error {
	deadline := w.env.Now() + w.failTimeout
	for !w.restored {
		w.maybeHeartbeat()
		now := w.env.Now()
		if now >= deadline {
			w.env.Logf("resilient: %s/r%d state transfer timed out — starting fresh", w.name, w.replica)
			return nil
		}
		wait := deadline - now
		if w.monitored && w.hbDue-now < wait {
			wait = w.hbDue - now
		}
		if wait < 0 {
			wait = 0
		}
		m, err := w.env.RecvTimeout(wait)
		if err != nil {
			if errors.Is(err, scplib.ErrTimeout) {
				continue
			}
			return mapScplibErr(err)
		}
		switch m.Kind {
		case kindView:
			if v, err := decodeView(m.Payload); err == nil {
				w.applyViewTable(v)
			}
		case kindSnapResp:
			if _, snap, err := decodeSnapResp(m.Payload); err == nil {
				if s, err := decodeSnapshot(snap); err == nil {
					w.restoreState(s)
					w.restored = true
				}
			}
		default:
			// Application traffic (and unexpected control messages)
			// wait until the state is in place.
			w.backlog = append(w.backlog, m)
		}
	}
	return nil
}

// nextRaw returns the next raw transport message, draining the restore
// backlog before the live mailbox. deadline < 0 means no deadline.
func (w *wrapper) nextRaw(deadline float64) (*scplib.Message, error) {
	if len(w.backlog) > 0 {
		m := w.backlog[0]
		w.backlog = w.backlog[1:]
		return m, nil
	}
	now := w.env.Now()
	if !w.monitored && deadline < 0 {
		return w.env.Recv()
	}
	wait := 1e18
	if w.monitored {
		wait = w.hbDue - now
	}
	if deadline >= 0 && deadline-now < wait {
		wait = deadline - now
	}
	if wait < 0 {
		wait = 0
	}
	return w.env.RecvTimeout(wait)
}

// pump is the receive engine: it processes control traffic inline,
// dedupes application messages, and returns the first one matching match.
// deadline < 0 means no deadline.
func (w *wrapper) pump(match func(*RMessage) bool, deadline float64) (*RMessage, error) {
	if m := w.stashNext(match); m != nil {
		return m, nil
	}
	for {
		w.maybeHeartbeat()
		now := w.env.Now()
		if deadline >= 0 && now >= deadline {
			return nil, ErrTimeout
		}
		m, err := w.nextRaw(deadline)
		if err != nil {
			if errors.Is(err, scplib.ErrTimeout) {
				continue // heartbeat due or deadline reached; loop re-checks
			}
			return nil, mapScplibErr(err)
		}
		switch m.Kind {
		case kindView:
			if v, err := decodeView(m.Payload); err == nil {
				w.applyViewTable(v)
			}
		case kindSnapReq:
			w.handleSnapReq(m)
		case kindSnapResp:
			// State transfer for a regenerated replica (us).
			if _, snap, err := decodeSnapResp(m.Payload); err == nil {
				if s, err := decodeSnapshot(snap); err == nil {
					w.restoreState(s)
				}
			}
		case kindApp:
			rm, _, epoch, err := decodeApp(m.Payload)
			if err != nil {
				w.env.Logf("resilient: dropping malformed app message: %v", err)
				continue
			}
			if !w.ded.accept(rm.From, epoch, rm.LSeq) {
				continue // duplicate from a peer replica or stale epoch
			}
			if match == nil || match(rm) {
				return rm, nil
			}
			w.stash = append(w.stash, rm)
		default:
			// Unknown control kind: ignore (forward compatibility).
		}
	}
}

// handleSnapReq serves a state snapshot to the guardian for a
// regenerated peer replica.
func (w *wrapper) handleSnapReq(m *scplib.Message) {
	_, corr, err := decodeSnapReq(m.Payload)
	if err != nil {
		return
	}
	snap := encodeSnapshot(w.snapshotState())
	_ = w.env.Send(w.guardianPhys, kindSnapResp, encodeSnapResp(corr, snap))
}

func (w *wrapper) Recv() (*RMessage, error) { return w.pump(nil, -1) }

func (w *wrapper) RecvTimeout(seconds float64) (*RMessage, error) {
	return w.pump(nil, w.env.Now()+seconds)
}

func (w *wrapper) RecvMatch(match func(*RMessage) bool) (*RMessage, error) {
	return w.pump(match, -1)
}

func (w *wrapper) RecvMatchTimeout(match func(*RMessage) bool, seconds float64) (*RMessage, error) {
	return w.pump(match, w.env.Now()+seconds)
}

// Compute charges computation in heartbeat-sized slices so the failure
// detector is not starved during long kernels. The slice size adapts to
// the node's observed rate.
func (w *wrapper) Compute(flops float64) error {
	if !w.monitored {
		if err := w.env.Compute(flops); err != nil {
			return mapScplibErr(err)
		}
		return nil
	}
	for flops > 0 {
		c := w.chunkFlops
		if c > flops {
			c = flops
		}
		t0 := w.env.Now()
		if err := w.env.Compute(c); err != nil {
			return mapScplibErr(err)
		}
		flops -= c
		if dt := w.env.Now() - t0; dt > 0 {
			rate := c / dt
			w.chunkFlops = rate * w.hbPeriod / 2
			if w.chunkFlops < 1e4 {
				w.chunkFlops = 1e4
			}
		} else {
			// No virtual time passed (Real runtime): grow quickly so the
			// loop terminates without flooding heartbeats.
			w.chunkFlops *= 4
		}
		w.maybeHeartbeat()
	}
	return nil
}

var _ REnv = (*wrapper)(nil)
