package core

import (
	"errors"
	"fmt"
	"math"

	"resilientfusion/internal/fuse"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/perfmodel"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/spectral"
	"resilientfusion/internal/telemetry"
)

// Options configures a distributed fusion run.
type Options struct {
	// Workers is P, the number of worker threads (one per cluster node;
	// the manager occupies node 0).
	Workers int
	// Granularity sets the sub-cube count to Granularity×Workers — the
	// knob of the paper's Figure 5 (default 2).
	Granularity int
	// Prefetch is how many extra sub-problems each worker holds queued
	// (0 selects the default of 1: the paper's communication/computation
	// overlap; -1 disables overlap for ablation A2, matching
	// experiments.RunConfig). The canonical form keeps -1 for "disabled"
	// so canonicalization is idempotent.
	Prefetch int
	// Threshold is the spectral-angle screening threshold (0 → default).
	Threshold float64
	// Parallelism is the per-worker kernel parallelism for the statistics
	// and transform steps. 0 is automatic: distributed and pooled runs
	// divide GOMAXPROCS across the concurrently computing workers
	// (max(1, GOMAXPROCS/Workers) each) so kernels never oversubscribe
	// the host, while the single-threaded Sequential oracle uses full
	// GOMAXPROCS. Negative forces serial. It is a throughput knob only —
	// the pct kernels reduce over a fixed shard grid in a fixed order,
	// so every setting yields bit-identical results (and it is therefore
	// excluded from ResultKey).
	Parallelism int
	// Components retained by the PCT (default 3).
	Components int
	// Solver selects the eigensolver (default tridiagonal QL).
	Solver linalg.EigenSolver
	// Algorithm selects the fusion algorithm by registry name
	// ("pct", "pyramid", "dwt"; empty selects "pct", the paper's
	// pipeline). Canonicalized by withDefaults and folded into ResultKey,
	// so distinct algorithms can never share a cache entry. Unknown names
	// are rejected with ErrBadOptions at job construction.
	Algorithm string
	// Replication is the resiliency level: 1 runs bare workers (the
	// paper's "no resiliency" series), 2 replicates every worker.
	Replication int
	// Regenerate enables dynamic replica regeneration.
	Regenerate bool
	// HeartbeatPeriod and FailTimeout tune the failure detector
	// (seconds; virtual on the simulated cluster).
	HeartbeatPeriod float64
	FailTimeout     float64
	// RequestTimeout is the manager's reissue timeout per wait (seconds).
	RequestTimeout float64
	// MaxReissues bounds timeout-driven retransmissions per phase.
	MaxReissues int
	// Cost is the performance model charged to the cluster.
	Cost perfmodel.Model
	// Trace, when non-nil, receives per-stage spans (ingest, mean,
	// covariance, eigen, transform, screen, merge) and resiliency events
	// (detections, regenerations with epochs) as the run progresses. It
	// is observability only: spans are recorded outside the kernel inner
	// loops, the field is excluded from ResultKey, and the fused output
	// is bit-identical with or without it.
	Trace *telemetry.TraceRecorder
}

// ErrBadOptions reports invalid fusion options.
var ErrBadOptions = errors.New("core: bad options")

func (o Options) withDefaults() Options {
	if o.Granularity == 0 {
		o.Granularity = 2
	}
	if o.Prefetch == 0 {
		o.Prefetch = 1
	} else if o.Prefetch < 0 {
		o.Prefetch = -1
	}
	if o.Threshold == 0 {
		o.Threshold = spectral.DefaultThreshold
	}
	if o.Parallelism < 0 {
		o.Parallelism = 1
	}
	if o.Components == 0 {
		o.Components = 3
	}
	o.Algorithm = fuse.Canonical(o.Algorithm)
	if o.Replication == 0 {
		o.Replication = 1
	}
	if o.HeartbeatPeriod == 0 {
		o.HeartbeatPeriod = 2
	}
	if o.FailTimeout == 0 {
		o.FailTimeout = 4 * o.HeartbeatPeriod
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 300
	}
	if o.MaxReissues == 0 {
		o.MaxReissues = 8
	}
	if o.Cost == (perfmodel.Model{}) {
		o.Cost = perfmodel.Default()
	}
	return o
}

// Canonical returns the options with all defaults applied — the normal
// form under which two Options values describe the same computation.
func (o Options) Canonical() Options { return o.withDefaults() }

// SharedKernelParallelism divides the host's parallelism among workers
// that compute concurrently: each gets max(1, GOMAXPROCS/workers). It is
// the default Options.Parallelism policy of every path that runs worker
// kernels side by side (NewJob here, the service pool's Submit).
func SharedKernelParallelism(workers int) int {
	p := linalg.MaxWorkers() / workers
	if p < 1 {
		p = 1
	}
	return p
}

// SubCubes returns the number of row-tile sub-problems the manager
// derives for a scene of the given height: Granularity × Workers, the
// knob of the paper's Figure 5, clamped to one row per tile. This is
// THE decomposition formula — the service's tile-progress totals and
// the prefetching tilers' prediction grids all call it so they can
// never drift from what the manager actually does.
func (o Options) SubCubes(height int) int {
	o = o.withDefaults()
	n := o.Granularity * o.Workers
	if n > height {
		n = height
	}
	return n
}

// TileRanges returns the exact row decomposition RunManagerSource will
// request from its CubeSource for a scene of the given height.
func (o Options) TileRanges(height int) []hsi.RowRange {
	return hsi.Partition(height, o.SubCubes(height))
}

// ResultKey returns a deterministic string over exactly the fields that
// influence the fusion output: Workers, Granularity, Threshold,
// Components, Solver and Algorithm (see Sequential's contract).
// Scheduling and resiliency knobs (Prefetch, Replication, timeouts,
// Cost) do not change the result and are excluded. The service layer
// combines this key with the cube digest to content-address its result
// cache.
//
// The pct key keeps its pre-registry byte layout (no algorithm
// component), so every cache entry written before algorithms existed
// remains addressable; other algorithms append a ".a<name>" suffix,
// which can never collide with a pct key.
func (o Options) ResultKey() string {
	c := o.withDefaults()
	key := fmt.Sprintf("w%d.g%d.t%016x.c%d.s%d",
		c.Workers, c.Granularity, math.Float64bits(c.Threshold), c.Components, int(c.Solver))
	if c.Algorithm != "pct" {
		key += ".a" + c.Algorithm
	}
	return key
}

// Job is a configured fusion run bound to a system. Failure plans may be
// armed against Runtime() before calling Run.
type Job struct {
	sys  scplib.System
	rt   *resilient.Runtime
	opts Options
	res  *Result
}

// NewJob wires the manager and workers onto the system and starts the
// resiliency runtime (threads begin executing when the system runs).
//
// Node layout: node 0 hosts the manager (the paper's sensor machine) and
// the guardian; worker i's primary replica runs on node i, and replica k
// on node 1+((i-1+k) mod Workers) — with replication 2 every worker node
// hosts exactly two replicas, which is how the paper's "factor of two"
// replication cost arises.
func NewJob(sys scplib.System, cube *hsi.Cube, opts Options) (*Job, error) {
	if err := cube.Validate(); err != nil {
		return nil, err
	}
	return NewJobSource(sys, MemSource(cube), opts)
}

// NewJobSource is NewJob fed by a CubeSource instead of an in-memory
// cube: the manager pulls row tiles on demand (internal/scene's Tiler
// streams them off disk), so scenes larger than memory fuse with the
// manager's working set bounded by the tiles in flight. The result is
// bit-identical to NewJob over the fully-loaded cube.
func NewJobSource(sys scplib.System, src CubeSource, opts Options) (*Job, error) {
	opts = opts.withDefaults()
	if err := validateSource(src); err != nil {
		return nil, err
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("%w: Workers=%d", ErrBadOptions, opts.Workers)
	}
	if opts.Replication < 1 {
		return nil, fmt.Errorf("%w: Replication=%d", ErrBadOptions, opts.Replication)
	}
	if opts.Components < 3 {
		return nil, fmt.Errorf("%w: need >=3 components for color mapping", ErrBadOptions)
	}
	if _, ok := fuse.Lookup(opts.Algorithm); !ok {
		return nil, fmt.Errorf("%w: unknown algorithm %q (have %v)",
			ErrBadOptions, opts.Algorithm, fuse.Names())
	}

	// Workers compute concurrently; share the host's parallelism among
	// them instead of letting every worker fan out to GOMAXPROCS.
	// Result-invariant (fixed shard grid), so Sequential still matches.
	if opts.Parallelism == 0 {
		opts.Parallelism = SharedKernelParallelism(opts.Workers)
	}

	rcfg := resilient.Config{
		Nodes:           opts.Workers + 1,
		Replication:     opts.Replication,
		HeartbeatPeriod: opts.HeartbeatPeriod,
		FailTimeout:     opts.FailTimeout,
		Regenerate:      opts.Regenerate,
		GuardianNode:    0,
	}
	rt, err := resilient.New(sys, rcfg)
	if err != nil {
		return nil, err
	}
	rt.SetTrace(opts.Trace)
	res := &Result{}
	if err := rt.AddSingleton(ManagerID, "manager", 0, managerBody(rt, src, opts, res)); err != nil {
		return nil, err
	}
	for w := 1; w <= opts.Workers; w++ {
		lid := resilient.LogicalID(w)
		name := fmt.Sprintf("worker%d", w)
		body := workerBody(ManagerID, opts.Algorithm, opts.Threshold, opts.Parallelism, opts.Cost)
		if opts.Replication == 1 {
			if err := rt.AddSingleton(lid, name, w, body); err != nil {
				return nil, err
			}
			continue
		}
		placements := make([]int, opts.Replication)
		for k := 0; k < opts.Replication; k++ {
			placements[k] = 1 + (w-1+k)%opts.Workers
		}
		if err := rt.AddGroup(lid, name, placements, body); err != nil {
			return nil, err
		}
	}
	if err := rt.Start(); err != nil {
		return nil, err
	}
	return &Job{sys: sys, rt: rt, opts: opts, res: res}, nil
}

// Runtime exposes the resiliency runtime for failure injection.
func (j *Job) Runtime() *resilient.Runtime { return j.rt }

// Run drives the system to completion and returns the fusion result.
func (j *Job) Run() (*Result, error) {
	if err := j.sys.Run(); err != nil {
		return nil, err
	}
	if !j.res.completed {
		return nil, errors.New("core: fusion did not complete")
	}
	return j.res, nil
}

// Fuse is the one-call convenience API: build a job and run it.
func Fuse(sys scplib.System, cube *hsi.Cube, opts Options) (*Result, error) {
	job, err := NewJob(sys, cube, opts)
	if err != nil {
		return nil, err
	}
	return job.Run()
}

// FuseSource is Fuse over a streaming tile source.
func FuseSource(sys scplib.System, src CubeSource, opts Options) (*Result, error) {
	job, err := NewJobSource(sys, src, opts)
	if err != nil {
		return nil, err
	}
	return job.Run()
}
