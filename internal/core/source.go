package core

import (
	"fmt"

	"resilientfusion/internal/hsi"
)

// CubeSource supplies scene geometry and row-slab tiles to the fusion
// manager. The in-memory path wraps a *hsi.Cube; the streaming scene
// path (internal/scene's Tiler) decodes each tile off disk on demand, so
// the manager never holds more than the tiles currently being encoded.
// The manager may request the same tile more than once (transform-phase
// cache misses and reissues), so Tile must be repeatable; calls are made
// sequentially from the single manager thread.
type CubeSource interface {
	// Shape returns (width, height, bands).
	Shape() (width, height, bands int)
	// Tile returns rows [rr.Y0, rr.Y1) as a standalone BIP cube of
	// height rr.Rows(). The manager owns the returned cube until it has
	// encoded it for the wire.
	Tile(rr hsi.RowRange) (*hsi.Cube, error)
}

// TileObserver is optionally implemented by a CubeSource to observe
// per-tile pipeline progress — the service layer uses it to report
// whole-scene fusion progress. Callbacks run on the manager thread.
type TileObserver interface {
	// TileScreened reports that done of total tiles have completed the
	// screening phase.
	TileScreened(done, total int)
	// TileTransformed reports that done of total tiles have completed
	// the transform phase.
	TileTransformed(done, total int)
}

// memSource adapts an in-memory cube to CubeSource: tiles are extracted
// row-slab copies, exactly what the historical cube-fed manager shipped.
type memSource struct {
	c *hsi.Cube
}

// MemSource wraps a validated in-memory cube as a CubeSource.
func MemSource(c *hsi.Cube) CubeSource { return memSource{c: c} }

func (s memSource) Shape() (int, int, int) { return s.c.Width, s.c.Height, s.c.Bands }

func (s memSource) Tile(rr hsi.RowRange) (*hsi.Cube, error) {
	sub, err := hsi.Extract(s.c, rr)
	if err != nil {
		return nil, err
	}
	return sub.Cube, nil
}

// validateSource checks a source's geometry the way NewJob validates a
// cube.
func validateSource(src CubeSource) error {
	w, h, b := src.Shape()
	if w <= 0 || h <= 0 || b <= 0 {
		return fmt.Errorf("%w: %dx%dx%d", hsi.ErrShape, w, h, b)
	}
	return nil
}
