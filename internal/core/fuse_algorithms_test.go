package core

import (
	"errors"
	"testing"

	"resilientfusion/internal/linalg"
	"resilientfusion/internal/scplib"
)

// tileAlgorithms are the registered non-pct (tile-kernel) algorithms the
// parity tests below cover.
var tileAlgorithms = []string{"pyramid", "dwt"}

// TestTileAlgorithmsDistributedMatchesSequential is the tile-kernel
// analogue of TestDistributedMatchesSequential: the manager's dynamic
// fuse phase over simulated workers must produce the same composite,
// bit for bit, as the one-thread Sequential oracle at every worker
// count and granularity.
func TestTileAlgorithmsDistributedMatchesSequential(t *testing.T) {
	cube := testScene(t)
	for _, alg := range tileAlgorithms {
		for _, P := range []int{1, 2, 4} {
			for _, g := range []int{1, 3} {
				opts := Options{Workers: P, Granularity: g, Algorithm: alg}
				seq, err := Sequential(cube, opts)
				if err != nil {
					t.Fatal(err)
				}
				job, _, _ := simJob(t, cube, opts)
				dist, err := job.Run()
				if err != nil {
					t.Fatalf("%s P=%d g=%d: %v", alg, P, g, err)
				}
				if dist.SubCubes != seq.SubCubes {
					t.Fatalf("%s P=%d g=%d: sub-cubes %d vs %d", alg, P, g, dist.SubCubes, seq.SubCubes)
				}
				if !imagesEqual(dist.Image, seq.Image) {
					t.Fatalf("%s P=%d g=%d: distributed composite differs from sequential", alg, P, g)
				}
			}
		}
	}
}

// TestTileAlgorithmsParallelismInvariant pins the determinism contract
// at the job level: Parallelism is a throughput knob only, so every
// setting yields a bit-identical composite.
func TestTileAlgorithmsParallelismInvariant(t *testing.T) {
	cube := testScene(t)
	for _, alg := range tileAlgorithms {
		base, err := Sequential(cube, Options{Workers: 2, Algorithm: alg, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 3, linalg.MaxWorkers()} {
			got, err := Sequential(cube, Options{Workers: 2, Algorithm: alg, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !imagesEqual(got.Image, base.Image) {
				t.Fatalf("%s: parallelism %d changed the composite", alg, par)
			}
			job, _, _ := simJob(t, cube, Options{Workers: 2, Algorithm: alg, Parallelism: par})
			dist, err := job.Run()
			if err != nil {
				t.Fatalf("%s par=%d: %v", alg, par, err)
			}
			if !imagesEqual(dist.Image, base.Image) {
				t.Fatalf("%s: distributed at parallelism %d differs", alg, par)
			}
		}
	}
}

// TestTileAlgorithmsRealRuntime drives each tile algorithm end to end on
// the real (goroutine) runtime, the same path the service pool's
// degraded mode and the examples use.
func TestTileAlgorithmsRealRuntime(t *testing.T) {
	cube := testScene(t)
	for _, alg := range tileAlgorithms {
		opts := Options{Workers: 2, Algorithm: alg}
		seq, err := Sequential(cube, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Fuse(scplib.NewRealSystem(), cube, opts)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !imagesEqual(res.Image, seq.Image) {
			t.Fatalf("%s: real-runtime composite differs from sequential", alg)
		}
	}
}

// TestTileAlgorithmStreamedMatchesInMemory checks FuseSource over a tile
// source is bit-identical to the in-memory path for tile algorithms (the
// scene package re-checks this off a real spooled file).
func TestTileAlgorithmStreamedMatchesInMemory(t *testing.T) {
	cube := testScene(t)
	for _, alg := range tileAlgorithms {
		opts := Options{Workers: 2, Granularity: 3, Algorithm: alg}
		mem, err := Fuse(scplib.NewRealSystem(), cube, opts)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := FuseSource(scplib.NewRealSystem(), MemSource(cube), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !imagesEqual(streamed.Image, mem.Image) {
			t.Fatalf("%s: streamed composite differs from in-memory", alg)
		}
	}
}

// TestResultKeyAlgorithm pins the cache-key contract of the registry
// refactor: the pct key keeps its exact pre-registry byte layout, every
// spelling of pct shares it, and each tile algorithm gets its own
// disjoint key space.
func TestResultKeyAlgorithm(t *testing.T) {
	base := Options{Workers: 4, Granularity: 2, Threshold: 0.05, Components: 3}
	// The exact pre-registry key (Float64bits(0.05) = 0x3fa999999999999a):
	// cache entries written before algorithms existed must stay
	// addressable, so this literal may never change.
	const legacy = "w4.g2.t3fa999999999999a.c3.s0"
	if got := base.ResultKey(); got != legacy {
		t.Fatalf("pct key = %q, want pinned %q", got, legacy)
	}
	// Absent, explicit, and case-variant spellings of pct share the key.
	for _, spelling := range []string{"", "pct", "PCT", "  pct "} {
		o := base
		o.Algorithm = spelling
		if got := o.ResultKey(); got != legacy {
			t.Errorf("algorithm %q key = %q, want %q", spelling, got, legacy)
		}
	}
	// Tile algorithms append a disjoint suffix.
	pyr, dwt := base, base
	pyr.Algorithm = "pyramid"
	dwt.Algorithm = "dwt"
	if got := pyr.ResultKey(); got != legacy+".apyramid" {
		t.Errorf("pyramid key = %q", got)
	}
	if got := dwt.ResultKey(); got != legacy+".adwt" {
		t.Errorf("dwt key = %q", got)
	}
	if pyr.ResultKey() == dwt.ResultKey() {
		t.Error("pyramid and dwt share a key")
	}
	// Parallelism stays excluded for tile algorithms too.
	fast := pyr
	fast.Parallelism = 7
	if fast.ResultKey() != pyr.ResultKey() {
		t.Error("Parallelism leaked into a tile-algorithm key")
	}
}

// TestUnknownAlgorithmRejected checks every construction path fails fast
// with ErrBadOptions on an unregistered name.
func TestUnknownAlgorithmRejected(t *testing.T) {
	cube := testScene(t)
	opts := Options{Workers: 2, Algorithm: "bogus"}
	if _, err := Sequential(cube, opts); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Sequential: %v", err)
	}
	if _, err := NewJob(scplib.NewRealSystem(), cube, opts); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("NewJob: %v", err)
	}
}
