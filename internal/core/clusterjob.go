package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"resilientfusion/internal/fuse"
	"resilientfusion/internal/perfmodel"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/scplib"
)

// Cluster job support: the same 8-step fusion protocol as NewJobSource,
// but with worker replicas spawned into remote fusionworkerd processes
// over a scplib.ClusterSystem. The manager and guardian stay on the
// coordinator (node 0); worker groups ship as RemoteBody specs whose
// inner kind is WorkerBodyKind. Because WorkerState is a deterministic
// function of its message stream and the per-replica kernels reduce
// over fixed shard grids, a cluster run's mosaic is bit-identical to
// the in-process pool's for the same Options — the property the chaos
// test asserts under SIGKILL.

// WorkerBodyKind names the fusion worker loop in worker-side registries.
const WorkerBodyKind = "core.worker"

// worker args layout (little-endian):
//
//	manager     int32
//	threshold   float64 bits
//	parallelism int32
//	algorithm   uint32 (fuse.ID)
const workerArgsBytes = 20

func encodeWorkerArgs(manager resilient.LogicalID, threshold float64, parallelism int, alg fuse.ID) []byte {
	buf := make([]byte, workerArgsBytes)
	binary.LittleEndian.PutUint32(buf[0:], uint32(manager))
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(threshold))
	binary.LittleEndian.PutUint32(buf[12:], uint32(int32(parallelism)))
	binary.LittleEndian.PutUint32(buf[16:], uint32(alg))
	return buf
}

func decodeWorkerArgs(b []byte) (resilient.LogicalID, float64, int, string, error) {
	if len(b) < workerArgsBytes {
		return 0, 0, 0, "", fmt.Errorf("core: worker args %d bytes", len(b))
	}
	alg, ok := fuse.ByID(fuse.ID(binary.LittleEndian.Uint32(b[16:])))
	if !ok {
		return 0, 0, 0, "", fmt.Errorf("core: worker args carry unknown algorithm id %d",
			binary.LittleEndian.Uint32(b[16:]))
	}
	return resilient.LogicalID(int32(binary.LittleEndian.Uint32(b[0:]))),
		math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
		int(int32(binary.LittleEndian.Uint32(b[12:]))), alg.Name, nil
}

// RegisterWorkerBodies installs the fusion worker factory into a
// resilient inner-body registry. fusionworkerd calls this once at
// startup; the cost model is only flops bookkeeping for heartbeat
// interleaving on the real runtime, so the default model is always
// correct here.
func RegisterWorkerBodies(reg *resilient.BodyRegistry) {
	reg.Register(WorkerBodyKind, func(args []byte) (resilient.RBody, error) {
		manager, threshold, parallelism, algorithm, err := decodeWorkerArgs(args)
		if err != nil {
			return nil, err
		}
		return workerBody(manager, algorithm, threshold, parallelism, perfmodel.Default()), nil
	})
}

// RunningJob is a fusion job started on a long-lived cluster system.
// Unlike Job (whose caller drives sys.Run for a dedicated system), a
// RunningJob's threads execute immediately on the already-running
// system; Wait blocks for the manager protocol to finish.
type RunningJob struct {
	rt   *resilient.Runtime
	res  *Result
	done chan struct{}
	err  error
}

// StartJob wires a fusion job onto a running cluster system, placing
// worker replicas on worker nodes 1..opts.Workers and the manager plus
// guardian locally. base offsets every physical thread ID the job's
// runtime allocates, so concurrent jobs on one system cannot collide.
//
// Spawn order matters on a live system: workers are added before the
// manager so that by the time the manager's first screening request is
// sent, every worker phys ID routes somewhere. (NewJobSource adds the
// manager first; that order is only safe because its system has not
// started yet.)
func StartJob(sys scplib.System, src CubeSource, opts Options, base scplib.ThreadID) (*RunningJob, error) {
	opts = opts.withDefaults()
	if err := validateSource(src); err != nil {
		return nil, err
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("%w: Workers=%d", ErrBadOptions, opts.Workers)
	}
	if opts.Replication < 1 {
		return nil, fmt.Errorf("%w: Replication=%d", ErrBadOptions, opts.Replication)
	}
	if opts.Components < 3 {
		return nil, fmt.Errorf("%w: need >=3 components for color mapping", ErrBadOptions)
	}
	alg, ok := fuse.Lookup(opts.Algorithm)
	if !ok {
		return nil, fmt.Errorf("%w: unknown algorithm %q (have %v)",
			ErrBadOptions, opts.Algorithm, fuse.Names())
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = SharedKernelParallelism(opts.Workers)
	}

	rcfg := resilient.Config{
		Nodes:           opts.Workers + 1,
		Replication:     opts.Replication,
		HeartbeatPeriod: opts.HeartbeatPeriod,
		FailTimeout:     opts.FailTimeout,
		Regenerate:      opts.Regenerate,
		GuardianNode:    0,
		PhysBase:        base,
	}
	rt, err := resilient.New(sys, rcfg)
	if err != nil {
		return nil, err
	}
	rt.SetTrace(opts.Trace)
	args := encodeWorkerArgs(ManagerID, opts.Threshold, opts.Parallelism, alg.ID)
	for w := 1; w <= opts.Workers; w++ {
		placements := make([]int, opts.Replication)
		for k := 0; k < opts.Replication; k++ {
			placements[k] = 1 + (w-1+k)%opts.Workers
		}
		body := workerBody(ManagerID, opts.Algorithm, opts.Threshold, opts.Parallelism, opts.Cost)
		// Always a (possibly single-member) monitored group: cluster
		// workers are regenerable even at replication 1, unlike the
		// in-process baseline's unmonitored singletons.
		if err := rt.AddGroupRemote(resilient.LogicalID(w), fmt.Sprintf("worker%d", w),
			placements, body, WorkerBodyKind, args); err != nil {
			return nil, err
		}
	}

	job := &RunningJob{rt: rt, res: &Result{}, done: make(chan struct{})}
	mgr := func(env resilient.REnv) error {
		defer close(job.done)
		defer rt.Shutdown()
		if err := RunManagerSource(env, src, opts, job.res); err != nil {
			// Captured for Wait, not returned: the shared system stays
			// clean of per-job application errors.
			job.err = err
			return nil
		}
		if !job.res.completed {
			job.err = errors.New("core: fusion did not complete")
		}
		return nil
	}
	if err := rt.AddSingleton(ManagerID, "manager", 0, mgr); err != nil {
		return nil, err
	}
	if err := rt.Start(); err != nil {
		// Failed mid-wiring (typically a worker node without quorum):
		// tear down whatever was spawned so the shared system is clean.
		rt.Shutdown()
		return nil, err
	}
	return job, nil
}

// Runtime exposes the job's resiliency runtime (failure injection,
// stats, transport liveness hooks).
func (j *RunningJob) Runtime() *resilient.Runtime { return j.rt }

// Done is closed when the manager protocol has finished (or failed).
func (j *RunningJob) Done() <-chan struct{} { return j.done }

// Wait blocks for completion and returns the fusion result.
func (j *RunningJob) Wait() (*Result, error) {
	<-j.done
	if j.err != nil {
		return nil, j.err
	}
	return j.res, nil
}
