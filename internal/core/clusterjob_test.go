package core

import (
	"sync"
	"testing"
	"time"

	"resilientfusion/internal/fuse"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/scplib"
)

// workerdRegistry builds the registry a fusionworkerd process installs:
// the resilient wrapper factory around the fusion worker body.
func workerdRegistry() *scplib.BodyRegistry {
	inner := resilient.NewBodyRegistry()
	RegisterWorkerBodies(inner)
	reg := scplib.NewBodyRegistry()
	resilient.RegisterWrapperBody(reg, inner)
	return reg
}

// hookFan relays transport liveness to every registered job runtime. It
// is installed before any worker dials in, so the hook fields are never
// written while peer goroutines might read them.
type hookFan struct {
	mu  sync.Mutex
	rts []*resilient.Runtime
}

func (f *hookFan) add(rt *resilient.Runtime) {
	f.mu.Lock()
	f.rts = append(f.rts, rt)
	f.mu.Unlock()
}

func (f *hookFan) snapshot() []*resilient.Runtime {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*resilient.Runtime(nil), f.rts...)
}

func (f *hookFan) nodeDown(n int) {
	for _, rt := range f.snapshot() {
		rt.NodeDown(n)
	}
}

func (f *hookFan) nodeAlive(n int) {
	for _, rt := range f.snapshot() {
		rt.NodeAlive(n)
	}
}

func (f *hookFan) threadExit(id scplib.ThreadID) {
	for _, rt := range f.snapshot() {
		rt.ThreadExited(id)
	}
}

// startCluster brings up a coordinator with n connected worker processes
// (in-process, real sockets) wired for resilient liveness.
func startCluster(t *testing.T, n int) (*scplib.ClusterSystem, []*scplib.ClusterWorker, *hookFan) {
	t.Helper()
	sys, err := scplib.NewClusterSystem("", n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sys.Stop()
		sys.Close()
	})
	fan := &hookFan{}
	sys.OnNodeDown = fan.nodeDown
	sys.OnNodeAlive = fan.nodeAlive
	sys.OnThreadExit = fan.threadExit
	sys.Serve()
	ws := make([]*scplib.ClusterWorker, n)
	for i := range ws {
		w, err := scplib.DialCluster(sys.Addr(), 2*time.Second, workerdRegistry())
		if err != nil {
			t.Fatal(err)
		}
		go w.Run()
		t.Cleanup(w.Shutdown)
		ws[i] = w
	}
	deadline := time.Now().Add(2 * time.Second)
	for sys.LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers connected", sys.LiveWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	sys.Start()
	return sys, ws, fan
}

func clusterOpts() Options {
	return Options{
		Workers: 2, Granularity: 2, Replication: 2, Regenerate: true,
		HeartbeatPeriod: 0.05, FailTimeout: 0.4, RequestTimeout: 2,
	}
}

// TestClusterJobMatchesSequential fuses over two real worker processes
// and requires the mosaic to be bit-identical to the sequential oracle.
func TestClusterJobMatchesSequential(t *testing.T) {
	cube := testScene(t)
	opts := clusterOpts()
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys, _, fan := startCluster(t, opts.Workers)
	job, err := StartJob(sys, MemSource(cube), opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	fan.add(job.Runtime())
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(res.Image, seq.Image) {
		t.Fatal("cluster composite differs from sequential")
	}
	if res.ScreenStats != seq.ScreenStats {
		t.Fatalf("screen stats differ: %+v vs %+v", res.ScreenStats, seq.ScreenStats)
	}
}

// gatedSource blocks the manager inside its second Tile fetch until the
// test releases it — a deterministic "mid-run" point for failure
// injection that does not race against wall-clock job speed.
type gatedSource struct {
	CubeSource
	calls   int
	reached chan struct{}
	resume  chan struct{}
}

func (g *gatedSource) Tile(rr hsi.RowRange) (*hsi.Cube, error) {
	g.calls++ // manager thread only
	if g.calls == 2 {
		close(g.reached)
		<-g.resume
	}
	return g.CubeSource.Tile(rr)
}

// TestClusterJobSurvivesWorkerProcessKill severs one whole worker
// process mid-scene (the in-process analog of kill -9 on fusionworkerd);
// the job must regenerate every replica that lived there and still
// produce the bit-identical mosaic.
func TestClusterJobSurvivesWorkerProcessKill(t *testing.T) {
	cube := testScene(t)
	opts := clusterOpts()
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys, ws, fan := startCluster(t, opts.Workers)
	src := &gatedSource{
		CubeSource: MemSource(cube),
		reached:    make(chan struct{}),
		resume:     make(chan struct{}),
	}
	job, err := StartJob(sys, src, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := job.Runtime()
	fan.add(rt)

	<-src.reached
	ws[0].Shutdown() // the whole process, not one thread
	deadline := time.Now().Add(5 * time.Second)
	for rt.Stats().Regenerations < 1 {
		if time.Now().After(deadline) {
			close(src.resume)
			t.Fatalf("no regeneration after process kill: %+v", rt.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(src.resume)

	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(res.Image, seq.Image) {
		t.Fatal("post-kill cluster composite differs from sequential")
	}
	st := rt.Stats()
	if st.Detections < 1 || st.Regenerations < 1 {
		t.Fatalf("worker process kill not healed: %+v", st)
	}
}

// TestClusterJobStartsWithDeadNode starts a job against a cluster that
// has already lost a worker process — the mid-start analog of a SIGKILL
// landing between job admission and replica spawning. Spawns aimed at
// the dead node fail with ErrNodeDown, which must not abort the job:
// the guardian regenerates those replicas on surviving nodes and the
// mosaic stays bit-identical.
func TestClusterJobStartsWithDeadNode(t *testing.T) {
	cube := testScene(t)
	opts := clusterOpts()
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys, ws, fan := startCluster(t, opts.Workers)
	ws[0].Shutdown()
	deadline := time.Now().Add(2 * time.Second)
	for sys.LiveWorkers() != opts.Workers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker shutdown not observed: %d live", sys.LiveWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	src := &gatedSource{
		CubeSource: MemSource(cube),
		reached:    make(chan struct{}),
		resume:     make(chan struct{}),
	}
	job, err := StartJob(sys, src, opts, 0)
	if err != nil {
		t.Fatalf("start with a dead node must not fail: %v", err)
	}
	rt := job.Runtime()
	fan.add(rt)

	// Hold the manager mid-scene until the guardian has regenerated the
	// replicas that never spawned (fast scenes would otherwise finish on
	// the surviving replicas before FailTimeout expires).
	<-src.reached
	deadline = time.Now().Add(5 * time.Second)
	for rt.Stats().Regenerations < 1 {
		if time.Now().After(deadline) {
			close(src.resume)
			t.Fatalf("replicas lost at start were not regenerated: %+v", rt.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(src.resume)

	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(res.Image, seq.Image) {
		t.Fatal("dead-node-start composite differs from sequential")
	}
}

// TestClusterJobsShareSystem runs two jobs concurrently on one cluster
// with disjoint PhysBase ranges.
func TestClusterJobsShareSystem(t *testing.T) {
	cube := testScene(t)
	opts := clusterOpts()
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys, _, fan := startCluster(t, opts.Workers)
	a, err := StartJob(sys, MemSource(cube), opts, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	fan.add(a.Runtime())
	b, err := StartJob(sys, MemSource(cube), opts, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	fan.add(b.Runtime())
	ra, err := a.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(ra.Image, seq.Image) || !imagesEqual(rb.Image, seq.Image) {
		t.Fatal("concurrent cluster jobs corrupted each other")
	}
}

func TestWorkerArgsRoundTrip(t *testing.T) {
	mgr, thr, par, alg, err := decodeWorkerArgs(encodeWorkerArgs(ManagerID, 0.125, 3, fuse.IDPyramid))
	if err != nil {
		t.Fatal(err)
	}
	if mgr != ManagerID || thr != 0.125 || par != 3 || alg != "pyramid" {
		t.Fatalf("round trip: mgr=%d thr=%g par=%d alg=%q", mgr, thr, par, alg)
	}
	if _, _, _, _, err := decodeWorkerArgs(make([]byte, 8)); err == nil {
		t.Fatal("short args accepted")
	}
	bogus := encodeWorkerArgs(ManagerID, 0.125, 3, fuse.ID(999))
	if _, _, _, _, err := decodeWorkerArgs(bogus); err == nil {
		t.Fatal("unknown algorithm id accepted")
	}
}
