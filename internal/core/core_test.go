package core

import (
	"bytes"
	"errors"
	"image"
	"testing"

	"resilientfusion/internal/failure"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/perfmodel"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/simnet"
)

// testScene builds a small but non-trivial synthetic scene.
func testScene(t *testing.T) *hsi.Cube {
	t.Helper()
	s, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 32, Height: 32, Bands: 12, Seed: 11,
		NoiseSigma: 3, Illumination: 0.1,
		OpenVehicles: 1, CamouflagedVehicles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s.Cube
}

// simJob builds a fusion job on a fresh simulated cluster at the
// calibrated workstation rate.
func simJob(t *testing.T, cube *hsi.Cube, opts Options) (*Job, *simnet.Exec, []*simnet.Node) {
	t.Helper()
	return simJobRate(t, cube, opts, perfmodel.EffectiveWorkstationRate)
}

// simJobRate lets tests slow the virtual CPUs down so that small test
// cubes produce seconds of virtual makespan (enough for mid-run failure
// injection and compute-dominated speedup shapes).
func simJobRate(t *testing.T, cube *hsi.Cube, opts Options, rate float64) (*Job, *simnet.Exec, []*simnet.Node) {
	t.Helper()
	x, nodes := scplib.NewCluster(opts.Workers+1, rate)
	x.Horizon = 1e6
	// Protocol CPU cost is calibrated against the standard rate; scale it
	// so slowed-down clusters keep the same protocol/compute ratio.
	cost := scplib.DefaultMsgCost()
	scale := rate / perfmodel.EffectiveWorkstationRate
	cost.FixedFlops *= scale
	cost.FlopsPerByte *= scale
	sys := scplib.NewSimSystem(x, x.NewBus(0, 0), nodes, cost)
	job, err := NewJob(sys, cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	return job, x, nodes
}

func imagesEqual(a, b *image.RGBA) bool {
	return a.Bounds() == b.Bounds() && bytes.Equal(a.Pix, b.Pix)
}

func TestDistributedMatchesSequential(t *testing.T) {
	cube := testScene(t)
	for _, P := range []int{1, 2, 4} {
		for _, g := range []int{1, 2, 3} {
			opts := Options{Workers: P, Granularity: g}
			seq, err := Sequential(cube, opts)
			if err != nil {
				t.Fatal(err)
			}
			job, _, _ := simJob(t, cube, opts)
			dist, err := job.Run()
			if err != nil {
				t.Fatalf("P=%d g=%d: %v", P, g, err)
			}
			if dist.UniqueSetSize != seq.UniqueSetSize {
				t.Fatalf("P=%d g=%d: K %d vs %d", P, g, dist.UniqueSetSize, seq.UniqueSetSize)
			}
			if dist.ScreenStats != seq.ScreenStats {
				t.Fatalf("P=%d g=%d: screen stats %+v vs %+v", P, g, dist.ScreenStats, seq.ScreenStats)
			}
			if dist.ScreenStats.Comparisons == 0 || dist.ScreenStats.Scanned == 0 {
				t.Fatalf("P=%d g=%d: empty screen stats %+v", P, g, dist.ScreenStats)
			}
			if !dist.Mean.Equal(seq.Mean, 0) {
				t.Fatalf("P=%d g=%d: mean differs", P, g)
			}
			if !dist.Transform.Equal(seq.Transform, 0) {
				t.Fatalf("P=%d g=%d: transform differs", P, g)
			}
			if !imagesEqual(dist.Image, seq.Image) {
				t.Fatalf("P=%d g=%d: composite differs", P, g)
			}
		}
	}
}

func TestResilientMatchesSequential(t *testing.T) {
	cube := testScene(t)
	opts := Options{Workers: 3, Granularity: 2, Replication: 2, Regenerate: true}
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	job, _, _ := simJob(t, cube, opts)
	dist, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(dist.Image, seq.Image) {
		t.Fatal("replicated run produced a different composite")
	}
	if dist.Reissues != 0 || dist.CacheMisses != 0 {
		t.Fatalf("failure-free run had reissues=%d misses=%d", dist.Reissues, dist.CacheMisses)
	}
}

func TestRealRuntimeMatchesSequential(t *testing.T) {
	cube := testScene(t)
	opts := Options{Workers: 2, Granularity: 2, RequestTimeout: 30}
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys := scplib.NewRealSystem()
	res, err := Fuse(sys, cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(res.Image, seq.Image) {
		t.Fatal("real-runtime composite differs from sequential")
	}
}

func TestRealRuntimeResilient(t *testing.T) {
	cube := testScene(t)
	opts := Options{
		Workers: 2, Granularity: 2, Replication: 2, Regenerate: true,
		HeartbeatPeriod: 0.02, FailTimeout: 0.2, RequestTimeout: 30,
	}
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys := scplib.NewRealSystem()
	res, err := Fuse(sys, cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(res.Image, seq.Image) {
		t.Fatal("real-runtime replicated composite differs")
	}
}

func TestKillOneReplicaMidRun(t *testing.T) {
	cube := testScene(t)
	opts := Options{
		Workers: 2, Granularity: 2, Replication: 2, Regenerate: true,
		HeartbeatPeriod: 0.25, FailTimeout: 1, RequestTimeout: 30,
	}
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	job, x, _ := simJob(t, cube, opts)
	plan := failure.Plan{Events: []failure.Event{failure.KillReplica(0.2, 1, 0)}}
	if err := plan.Arm(x, job.Runtime(), nil); err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(res.Image, seq.Image) {
		t.Fatal("composite differs after replica kill")
	}
	st := job.Runtime().Stats()
	if st.Detections < 1 {
		t.Fatalf("kill not detected: %+v", st)
	}
}

func TestWholeGroupLossMidRun(t *testing.T) {
	cube := testScene(t)
	opts := Options{
		Workers: 2, Granularity: 3, Replication: 2, Regenerate: true,
		HeartbeatPeriod: 0.25, FailTimeout: 1, RequestTimeout: 15, MaxReissues: 10,
	}
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	job, x, _ := simJob(t, cube, opts)
	plan := failure.Plan{Events: []failure.Event{
		failure.KillReplica(0.2, 1, 0),
		failure.KillReplica(0.2, 1, 1),
	}}
	if err := plan.Arm(x, job.Runtime(), nil); err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(res.Image, seq.Image) {
		t.Fatal("composite differs after whole-group loss")
	}
	st := job.Runtime().Stats()
	if st.Regenerations < 2 {
		t.Fatalf("regenerations = %d", st.Regenerations)
	}
}

func TestNodeCrashMidRun(t *testing.T) {
	cube := testScene(t)
	opts := Options{
		Workers: 3, Granularity: 2, Replication: 2, Regenerate: true,
		HeartbeatPeriod: 0.25, FailTimeout: 1, RequestTimeout: 15, MaxReissues: 10,
	}
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	job, x, nodes := simJob(t, cube, opts)
	// Node 2 hosts worker2/r0 and worker1/r1.
	plan := failure.Plan{Events: []failure.Event{failure.CrashNode(0.3, 2)}}
	if err := plan.Arm(x, job.Runtime(), nodes); err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(res.Image, seq.Image) {
		t.Fatal("composite differs after node crash")
	}
}

func TestUnreplicatedWorkerLossFailsCleanly(t *testing.T) {
	cube := testScene(t)
	opts := Options{
		Workers: 2, Granularity: 2, Replication: 1,
		RequestTimeout: 5, MaxReissues: 2,
	}
	job, x, _ := simJob(t, cube, opts)
	plan := failure.Plan{Events: []failure.Event{failure.KillReplica(0.1, 1, 0)}}
	if err := plan.Arm(x, job.Runtime(), nil); err != nil {
		t.Fatal(err)
	}
	_, err := job.Run()
	if err == nil {
		t.Fatal("run with a dead unreplicated worker should fail")
	}
}

func TestSpeedupAndResiliencyCostShape(t *testing.T) {
	cube := testScene(t)
	timeFor := func(opts Options) float64 {
		job, _, _ := simJob(t, cube, opts)
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times.Total
	}
	t1 := timeFor(Options{Workers: 1, Granularity: 2})
	t4 := timeFor(Options{Workers: 4, Granularity: 2})
	if t4 >= t1 {
		t.Fatalf("no speedup: T(1)=%g T(4)=%g", t1, t4)
	}
	speedup := t1 / t4
	if speedup < 1.8 {
		t.Fatalf("speedup at P=4 only %.2f", speedup)
	}
	// Replication level 2 must cost roughly a factor of two.
	t4r := timeFor(Options{Workers: 4, Granularity: 2, Replication: 2, Regenerate: true})
	ratio := t4r / t4
	if ratio < 1.5 || ratio > 3.5 {
		t.Fatalf("resiliency cost ratio %.2f, expected ≈2×(1+overhead)", ratio)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	cube := testScene(t)
	opts := Options{Workers: 2, Granularity: 2, Prefetch: -1} // -1 → 0
	seq, err := Sequential(cube, opts)
	if err != nil {
		t.Fatal(err)
	}
	job, _, _ := simJob(t, cube, opts)
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(res.Image, seq.Image) {
		t.Fatal("prefetch=0 changed the result")
	}
}

func TestOptionsValidation(t *testing.T) {
	cube := testScene(t)
	sys := scplib.NewRealSystem()
	if _, err := NewJob(sys, cube, Options{Workers: 0}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Workers=0: %v", err)
	}
	if _, err := NewJob(sys, cube, Options{Workers: 1, Replication: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Replication=-1: %v", err)
	}
	if _, err := NewJob(sys, cube, Options{Workers: 1, Components: 2}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Components=2: %v", err)
	}
	bad := &hsi.Cube{Width: 1, Height: 1, Bands: 1}
	if _, err := NewJob(sys, bad, Options{Workers: 1}); err == nil {
		t.Fatal("invalid cube accepted")
	}
}

func TestGranularityCapsAtRows(t *testing.T) {
	cube := testScene(t) // 32 rows
	opts := Options{Workers: 4, Granularity: 20}
	job, _, _ := simJob(t, cube, opts)
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SubCubes != 32 {
		t.Fatalf("SubCubes = %d, want clamp to 32 rows", res.SubCubes)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cube := testScene(t)
	opts := Options{Workers: 3, Granularity: 2, Replication: 2, Regenerate: true}
	run := func() (*Result, float64) {
		job, x, _ := simJob(t, cube, opts)
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, x.Now()
	}
	r1, t1 := run()
	r2, t2 := run()
	if t1 != t2 {
		t.Fatalf("virtual times differ: %g vs %g", t1, t2)
	}
	if !imagesEqual(r1.Image, r2.Image) {
		t.Fatal("images differ between runs")
	}
}

func TestPhaseTimesMonotone(t *testing.T) {
	cube := testScene(t)
	job, _, _ := simJob(t, cube, Options{Workers: 2, Granularity: 2})
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Times
	if !(tm.Screen > 0 && tm.Screen <= tm.Statistics && tm.Statistics <= tm.Eigen &&
		tm.Eigen <= tm.Transform && tm.Transform <= tm.Total) {
		t.Fatalf("phase times not monotone: %+v", tm)
	}
}

func TestFailureEventString(t *testing.T) {
	if failure.KillReplica(1, 2, 0).String() == "" || failure.CrashNode(1, 3).String() == "" {
		t.Fatal("empty event strings")
	}
	var rt *resilient.Runtime
	_ = rt
	p := failure.Plan{Events: []failure.Event{failure.CrashNode(1, 99)}}
	x, _ := scplib.NewCluster(2, 1e6)
	if err := p.Arm(x, nil, nil); err == nil {
		t.Fatal("bad node accepted")
	}
	if err := p.ArmReal(nil); err == nil {
		t.Fatal("node crash on real runtime accepted")
	}
}

func TestFuseProducesContrast(t *testing.T) {
	// End-to-end sanity: the fused composite is not flat (fusion's whole
	// purpose is contrast enhancement).
	cube := testScene(t)
	job, _, _ := simJob(t, cube, Options{Workers: 2, Granularity: 2})
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	var min, max byte = 255, 0
	for i := 0; i < len(res.Image.Pix); i += 4 {
		v := res.Image.Pix[i]
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 30 {
		t.Fatalf("composite nearly flat: min=%d max=%d", min, max)
	}
}
