package core

import (
	"math"
	"math/rand"
	"testing"

	"resilientfusion/internal/linalg"
)

// Bulk-codec parity: the presized bulk encoders and the staging-view
// decoders must round-trip every float64 bit pattern exactly, for
// payload shapes that cross the bulk chunk boundaries, and regardless of
// whether the encoded vectors were individually allocated or views over
// one hsi staging buffer.

// hardVector fills a vector with adversarial bit patterns: ±0, ±Inf,
// NaN, denormals, and random full-range bits.
func hardVector(rng *rand.Rand, n int) linalg.Vector {
	v := make(linalg.Vector, n)
	for j := range v {
		switch j % 7 {
		case 0:
			v[j] = math.Copysign(0, -1)
		case 1:
			v[j] = math.Inf(1 - 2*(j%2))
		case 2:
			v[j] = math.NaN()
		case 3:
			v[j] = math.Float64frombits(1) // smallest denormal
		default:
			v[j] = math.Float64frombits(rng.Uint64())
		}
	}
	return v
}

func bitsEqual(a, b linalg.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestScreenRespBulkParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Dimensions straddling the 64-float bulk chunk and a K large enough
	// to make the staging backing span many vectors.
	for _, tc := range []struct{ k, n int }{{1, 1}, {3, 63}, {5, 64}, {7, 65}, {211, 13}} {
		vs := make([]linalg.Vector, tc.k)
		for i := range vs {
			vs[i] = hardVector(rng, tc.n)
		}
		got, err := DecodeScreenResp(EncodeScreenResp(&ScreenResp{Index: 9, Vectors: vs}))
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != 9 || len(got.Vectors) != tc.k {
			t.Fatalf("k=%d n=%d: %+v", tc.k, tc.n, got)
		}
		for i := range vs {
			if !bitsEqual(got.Vectors[i], vs[i]) {
				t.Fatalf("k=%d n=%d: vector %d bits differ", tc.k, tc.n, i)
			}
		}
	}
}

// Vectors that are views over one hsi staging buffer (how screening
// actually produces them) must encode identically to standalone copies.
func TestScreenRespStagedVectorsParity(t *testing.T) {
	cube := smallCube(t, 9, 4, 21, 5)
	staged := cube.PixelRows()
	standalone := make([]linalg.Vector, len(staged))
	for i, v := range staged {
		standalone[i] = append(linalg.Vector(nil), v...)
	}
	a := EncodeScreenResp(&ScreenResp{Index: 2, Vectors: staged})
	b := EncodeScreenResp(&ScreenResp{Index: 2, Vectors: standalone})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestCovReqBulkParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mean := hardVector(rng, 130)
	vs := make([]linalg.Vector, 17)
	for i := range vs {
		vs[i] = hardVector(rng, 130)
	}
	got, err := DecodeCovReq(EncodeCovReq(&CovReq{Part: 4, Mean: mean, Vectors: vs}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Part != 4 || !bitsEqual(got.Mean, mean) {
		t.Fatal("mean bits differ")
	}
	for i := range vs {
		if !bitsEqual(got.Vectors[i], vs[i]) {
			t.Fatalf("vector %d bits differ", i)
		}
	}
	// Decoded vectors must be mutation-safe views: appending to one must
	// not clobber its neighbour in the shared backing.
	if len(got.Vectors) > 1 {
		first := append(linalg.Vector(nil), got.Vectors[1]...)
		_ = append(got.Vectors[0], 42)
		if !bitsEqual(got.Vectors[1], first) {
			t.Fatal("append on one staged vector overwrote its neighbour")
		}
	}
}

func TestCovRespBulkParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 97 // odd size crossing the bulk chunk
	m := linalg.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(rng.Uint64())
	}
	got, err := DecodeCovResp(EncodeCovResp(&CovResp{Part: 3, Sum: m}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Part != 3 || !bitsEqual(linalg.Vector(got.Sum.Data), linalg.Vector(m.Data)) {
		t.Fatal("matrix bits differ")
	}
}

// Truncated bulk payloads must error cleanly, not over-read.
func TestBulkDecodeTruncation(t *testing.T) {
	vs := []linalg.Vector{{1, 2, 3}, {4, 5, 6}}
	enc := EncodeScreenResp(&ScreenResp{Index: 0, Vectors: vs})
	for _, cut := range []int{1, 8, 13, len(enc) - 1} {
		if _, err := DecodeScreenResp(enc[:len(enc)-cut]); err == nil {
			t.Fatalf("cut %d accepted", cut)
		}
	}
	encCov := EncodeCovReq(&CovReq{Part: 0, Mean: linalg.Vector{1, 2}, Vectors: vs[:0]})
	if _, err := DecodeCovReq(encCov[:len(encCov)-3]); err == nil {
		t.Fatal("truncated cov req accepted")
	}
}

func BenchmarkEncodeScreenResp(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]linalg.Vector, 64)
	for i := range vs {
		v := make(linalg.Vector, 210)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vs[i] = v
	}
	resp := &ScreenResp{Index: 1, Vectors: vs}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeScreenResp(resp)
	}
}

func BenchmarkDecodeScreenResp(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]linalg.Vector, 64)
	for i := range vs {
		v := make(linalg.Vector, 210)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vs[i] = v
	}
	enc := EncodeScreenResp(&ScreenResp{Index: 1, Vectors: vs})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeScreenResp(enc); err != nil {
			b.Fatal(err)
		}
	}
}
