package core

import (
	"errors"
	"fmt"
	"image"

	"resilientfusion/internal/colormap"
	"resilientfusion/internal/fuse"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/pct"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/spectral"
	"resilientfusion/internal/telemetry"
)

// ManagerID is the manager's logical thread ID; workers are 1..P.
const ManagerID resilient.LogicalID = 0

// PhaseTimes records when each algorithm phase completed, in runtime
// seconds (virtual on the simulated cluster).
type PhaseTimes struct {
	Screen     float64 // steps 1–2 complete (includes merge)
	Statistics float64 // steps 3–5 complete
	Eigen      float64 // step 6 complete
	Transform  float64 // steps 7–8 complete
	Total      float64
}

// Result is the outcome of a distributed fusion run.
type Result struct {
	// Image is the fused color composite (paper Figure 3).
	Image *image.RGBA
	// UniqueSetSize is K after the global merge.
	UniqueSetSize int
	// Mean and Eigenvalues summarize the statistics the transform used.
	Mean        linalg.Vector
	Eigenvalues linalg.Vector
	// Transform is the 3×n projection matrix.
	Transform *linalg.Matrix
	// Times are the phase completion stamps.
	Times PhaseTimes
	// SubCubes is the number of screening sub-problems (granularity).
	SubCubes int
	// ScreenStats aggregates the screening workload of the whole job:
	// every sub-cube's worker screen (counted once per sub-cube, however
	// many replicas or reissues answered) plus the manager's merge. The
	// per-part counts are deterministic and the aggregate is a sum, so
	// the value is independent of arrival order, parallelism, and
	// resiliency events — Sequential reports the identical value.
	ScreenStats spectral.Stats
	// Reissues counts timeout-driven retransmissions of sub-problems.
	Reissues int
	// CacheMisses counts transform requests that needed a data resend.
	CacheMisses int

	completed bool
}

// managerBody drives the 8 steps from the manager thread.
func managerBody(rt *resilient.Runtime, src CubeSource, opts Options, res *Result) resilient.RBody {
	return func(env resilient.REnv) error {
		defer rt.Shutdown()
		return RunManagerSource(env, src, opts, res)
	}
}

// RunManager drives the 8-step fusion protocol from env against workers
// with logical IDs 1..opts.Workers, filling res. It is the job-scoped run
// path shared by the resilient job (NewJob) and the service pool, which
// spawns one manager per job over long-lived pooled workers.
func RunManager(env resilient.REnv, cube *hsi.Cube, opts Options, res *Result) error {
	return RunManagerSource(env, MemSource(cube), opts, res)
}

// RunManagerSource is RunManager over an arbitrary tile source: the
// decomposition is a function of the source's shape alone, and tiles are
// pulled on demand, so a streamed scene run is bit-identical to the
// in-memory run over the same samples while the manager's working set
// stays bounded by the tiles in flight.
func RunManagerSource(env resilient.REnv, src CubeSource, opts Options, res *Result) error {
	m := &manager{env: env, src: src, opts: opts.withDefaults(), res: res}
	m.width, m.height, m.bands = src.Shape()
	if err := m.run(); err != nil {
		return fmt.Errorf("manager: %w", err)
	}
	res.completed = true
	return nil
}

type manager struct {
	env  resilient.REnv
	src  CubeSource
	opts Options
	res  *Result

	width, height, bands int

	ranges []hsi.RowRange
	// owner[i] is the worker group that screened (and caches) sub-cube i.
	owner []resilient.LogicalID

	// tr receives stage spans (nil disables; every method is nil-safe).
	// The t0 slices stamp when each sub-problem was first dispatched so
	// the span covers send→response, reissues included; -1 means unsent.
	tr                    *telemetry.TraceRecorder
	screenT0, covT0, tfT0 []float64
	fuseT0                []float64
}

// newT0 returns an n-slot dispatch-stamp slice, all unsent.
func newT0(n int) []float64 {
	t := make([]float64, n)
	for i := range t {
		t[i] = -1
	}
	return t
}

func (m *manager) run() error {
	t0 := m.env.Now()
	opts := m.opts

	m.ranges = opts.TileRanges(m.height)
	m.owner = make([]resilient.LogicalID, len(m.ranges))
	m.res.SubCubes = len(m.ranges)
	m.tr = opts.Trace
	m.screenT0 = newT0(len(m.ranges))
	m.covT0 = newT0(opts.Workers)
	m.tfT0 = newT0(len(m.ranges))
	m.fuseT0 = newT0(len(m.ranges))

	// Registry dispatch: tile-kernel algorithms (pyramid, dwt) run one
	// distribute/collect phase — same dynamic scheduling, prefetch and
	// reissue machinery as screening, but each reply is a finished RGB
	// slab. The pct entry has no tile kernel and continues into the
	// 8-step protocol below.
	alg, ok := fuse.Lookup(opts.Algorithm)
	if !ok {
		return fmt.Errorf("%w: unknown algorithm %q (have %v)",
			ErrBadOptions, opts.Algorithm, fuse.Names())
	}
	if alg.FuseTile != nil {
		img, err := m.fusePhase()
		if err != nil {
			return fmt.Errorf("fuse phase: %w", err)
		}
		m.res.Image = img
		m.res.Times.Transform = m.env.Now() - t0
		m.res.Times.Total = m.env.Now() - t0
		for w := 1; w <= opts.Workers; w++ {
			if err := m.env.Send(resilient.LogicalID(w), KindStop, nil); err != nil {
				return err
			}
		}
		return nil
	}

	// Steps 1–2: distributed screening, then sequential merge.
	uniqueSets, err := m.screenPhase()
	if err != nil {
		return fmt.Errorf("screen phase: %w", err)
	}
	mergeT0 := m.tr.Now()
	merged, err := m.mergePhase(uniqueSets)
	if err != nil {
		return fmt.Errorf("merge phase: %w", err)
	}
	m.tr.Stage("merge", -1, mergeT0, m.tr.Now())
	m.res.UniqueSetSize = merged.Len()
	m.res.Times.Screen = m.env.Now() - t0

	// Step 3: mean vector over the unique set (manager; cost ∝ K·n).
	meanT0 := m.tr.Now()
	mean, err := pct.MeanOfPar(merged.Members, opts.Parallelism)
	if err != nil {
		return err
	}
	if err := m.env.Compute(opts.Cost.MeanFlops(merged.Len(), m.bands)); err != nil {
		return err
	}
	m.tr.Stage("mean", -1, meanT0, m.tr.Now())
	// Steps 4–5: distributed covariance partial sums, combined here.
	cov, err := m.covariancePhase(merged.Members, mean)
	if err != nil {
		return fmt.Errorf("covariance phase: %w", err)
	}
	m.res.Mean = mean
	m.res.Times.Statistics = m.env.Now() - t0

	// Step 6: transformation matrix (sequential at the manager: its
	// complexity depends on the band count, not the image size).
	eigenT0 := m.tr.Now()
	eig, err := linalg.EigenSymWith(cov, opts.Solver)
	if err != nil {
		return err
	}
	if err := m.env.Compute(opts.Cost.EigenFlops(m.bands)); err != nil {
		return err
	}
	transform, err := eig.TransformMatrix(opts.Components)
	if err != nil {
		return err
	}
	m.tr.Stage("eigen", -1, eigenT0, m.tr.Now())
	stretches := colormap.VarianceStretch(eig.Values[:opts.Components], 3)
	m.res.Eigenvalues = eig.Values
	m.res.Transform = transform
	m.res.Times.Eigen = m.env.Now() - t0

	// Steps 7–8: distributed transform + color mapping over cached
	// sub-cubes, assembled into the composite.
	img, err := m.transformPhase(mean, transform, stretches)
	if err != nil {
		return fmt.Errorf("transform phase: %w", err)
	}
	m.res.Image = img
	m.res.Times.Transform = m.env.Now() - t0
	m.res.Times.Total = m.env.Now() - t0

	// Graceful worker shutdown.
	for w := 1; w <= opts.Workers; w++ {
		if err := m.env.Send(resilient.LogicalID(w), KindStop, nil); err != nil {
			return err
		}
	}
	return nil
}

// sendScreen ships sub-cube idx to a worker, pulling the tile from the
// source (an in-memory extract or a streamed read).
func (m *manager) sendScreen(idx int, to resilient.LogicalID) error {
	ingestT0 := m.tr.Now()
	tile, err := m.src.Tile(m.ranges[idx])
	if err != nil {
		return err
	}
	m.tr.Stage("ingest", idx, ingestT0, m.tr.Now())
	payload, err := EncodeScreenReq(&ScreenReq{Range: m.ranges[idx], Cube: tile})
	if err != nil {
		return err
	}
	m.owner[idx] = to
	if m.screenT0[idx] < 0 {
		m.screenT0[idx] = m.tr.Now()
	}
	return m.env.Send(to, KindScreenReq, payload)
}

// screenPhase distributes sub-cubes dynamically: each worker starts with
// 1+Prefetch sub-problems so it always has the next one queued while
// computing the current one ("a worker overlaps the request for its next
// sub-problem with the calculation associated with the current
// sub-problem"). Returns per-sub-cube unique sets, indexed.
func (m *manager) screenPhase() ([][]linalg.Vector, error) {
	S := len(m.ranges)
	uniq := make([][]linalg.Vector, S)
	next := 0 // next unassigned sub-cube
	outstanding := newIntSet(S)
	reissues := 0

	// Initial fill, breadth-first: every worker gets one sub-problem
	// before anyone gets a prefetched second, so small decompositions
	// still use all processors. Canonical Prefetch is -1 when overlap is
	// disabled: each worker then holds exactly one sub-problem.
	prefetch := m.opts.Prefetch
	if prefetch < 0 {
		prefetch = 0
	}
	for q := 0; q <= prefetch && next < S; q++ {
		for w := 1; w <= m.opts.Workers && next < S; w++ {
			if err := m.sendScreen(next, resilient.LogicalID(w)); err != nil {
				return nil, err
			}
			outstanding.add(next)
			next++
		}
	}
	done := 0
	for done < S {
		msg, err := m.env.RecvTimeout(m.opts.RequestTimeout)
		if errors.Is(err, resilient.ErrTimeout) {
			reissues++
			m.res.Reissues++
			if reissues > m.opts.MaxReissues {
				return nil, fmt.Errorf("screening stalled after %d reissues (%d/%d done)", reissues, done, S)
			}
			for _, idx := range outstanding.keys() {
				if err := m.sendScreen(idx, m.owner[idx]); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		if msg.Kind != KindScreenResp {
			continue // stale traffic from an earlier phase/reissue
		}
		resp, err := DecodeScreenResp(msg.Payload)
		if err != nil {
			return nil, err
		}
		if resp.Index < 0 || resp.Index >= S || uniq[resp.Index] != nil {
			continue // duplicate (reissue raced the original)
		}
		m.res.ScreenStats.Add(resp.Stats)
		uniq[resp.Index] = resp.Vectors
		if len(resp.Vectors) == 0 {
			uniq[resp.Index] = []linalg.Vector{} // mark done distinctly from nil
		}
		m.tr.Stage("screen", resp.Index, m.screenT0[resp.Index], m.tr.Now())
		outstanding.remove(resp.Index)
		done++
		if obs, ok := m.src.(TileObserver); ok {
			obs.TileScreened(done, S)
		}
		// Keep the responding worker busy with the next sub-problem.
		if next < S {
			if err := m.sendScreen(next, msg.From); err != nil {
				return nil, err
			}
			outstanding.add(next)
			next++
		}
	}
	return uniq, nil
}

// sendFuse ships sub-cube idx to a worker for whole-tile fusion,
// pulling the tile from the source (an in-memory extract or a streamed
// read).
func (m *manager) sendFuse(idx int, to resilient.LogicalID) error {
	ingestT0 := m.tr.Now()
	tile, err := m.src.Tile(m.ranges[idx])
	if err != nil {
		return err
	}
	m.tr.Stage("ingest", idx, ingestT0, m.tr.Now())
	payload, err := EncodeFuseReq(&FuseReq{Range: m.ranges[idx], Cube: tile})
	if err != nil {
		return err
	}
	m.owner[idx] = to
	if m.fuseT0[idx] < 0 {
		m.fuseT0[idx] = m.tr.Now()
	}
	return m.env.Send(to, KindFuseReq, payload)
}

// fusePhase is the whole run for tile-kernel algorithms: sub-cubes are
// distributed dynamically with the screen phase's breadth-first initial
// fill and prefetch overlap, each reply carries the tile's finished RGB
// slab, and the manager assembles the composite. Tile requests carry
// their data, so a reissue after a worker loss needs no cached state —
// any live worker can recompute any tile.
func (m *manager) fusePhase() (*image.RGBA, error) {
	S := len(m.ranges)
	img := image.NewRGBA(image.Rect(0, 0, m.width, m.height))
	doneIdx := make([]bool, S)
	next := 0 // next unassigned sub-cube
	outstanding := newIntSet(S)
	reissues := 0

	prefetch := m.opts.Prefetch
	if prefetch < 0 {
		prefetch = 0
	}
	for q := 0; q <= prefetch && next < S; q++ {
		for w := 1; w <= m.opts.Workers && next < S; w++ {
			if err := m.sendFuse(next, resilient.LogicalID(w)); err != nil {
				return nil, err
			}
			outstanding.add(next)
			next++
		}
	}
	for done := 0; done < S; {
		msg, err := m.env.RecvTimeout(m.opts.RequestTimeout)
		if errors.Is(err, resilient.ErrTimeout) {
			reissues++
			m.res.Reissues++
			if reissues > m.opts.MaxReissues {
				return nil, fmt.Errorf("fusion stalled after %d reissues (%d/%d done)", reissues, done, S)
			}
			for _, idx := range outstanding.keys() {
				if err := m.sendFuse(idx, m.owner[idx]); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		if msg.Kind != KindFuseResp {
			continue // stale traffic from a reissue race
		}
		resp, err := DecodeFuseResp(msg.Payload)
		if err != nil {
			return nil, err
		}
		idx := resp.Range.Index
		if idx < 0 || idx >= S || doneIdx[idx] {
			continue // duplicate (reissue raced the original)
		}
		blitRGB(img, resp)
		m.tr.Stage("fuse", idx, m.fuseT0[idx], m.tr.Now())
		doneIdx[idx] = true
		outstanding.remove(idx)
		done++
		// A tile completes both pipeline positions at once for progress
		// observers: there is no separate screen step to report.
		if obs, ok := m.src.(TileObserver); ok {
			obs.TileScreened(done, S)
			obs.TileTransformed(done, S)
		}
		// Keep the responding worker busy with the next sub-problem.
		if next < S {
			if err := m.sendFuse(next, msg.From); err != nil {
				return nil, err
			}
			outstanding.add(next)
			next++
		}
	}
	return img, nil
}

// mergePhase is algorithm step 2: the manager combines per-sub-cube
// unique sets in deterministic index order.
func (m *manager) mergePhase(uniq [][]linalg.Vector) (*spectral.UniqueSet, error) {
	parts := make([]*spectral.UniqueSet, 0, len(uniq))
	for _, vectors := range uniq {
		// Merge only walks Members, so a bare set suffices.
		parts = append(parts, &spectral.UniqueSet{Threshold: m.opts.Threshold, Members: vectors})
	}
	merged, st, err := spectral.Merge(parts, m.opts.Threshold)
	if err != nil {
		return nil, err
	}
	m.res.ScreenStats.Add(st)
	return merged, m.env.Compute(m.opts.Cost.ScreenFlops(st, m.bands))
}

// covariancePhase is algorithm steps 4–5: the unique set is split into P
// parts, each worker forms a partial sum, and the manager averages them.
func (m *manager) covariancePhase(members []linalg.Vector, mean linalg.Vector) (*linalg.Matrix, error) {
	P := m.opts.Workers
	parts := splitVectors(members, P)
	partials := make([]*linalg.Matrix, P)
	outstanding := newIntSet(P)
	send := func(p int) error {
		req := &CovReq{Part: p, Mean: mean, Vectors: parts[p]}
		if m.covT0[p] < 0 {
			m.covT0[p] = m.tr.Now()
		}
		return m.env.Send(resilient.LogicalID(p%P+1), KindCovReq, EncodeCovReq(req))
	}
	for p := 0; p < P; p++ {
		if err := send(p); err != nil {
			return nil, err
		}
		outstanding.add(p)
	}
	reissues := 0
	for done := 0; done < P; {
		msg, err := m.env.RecvTimeout(m.opts.RequestTimeout)
		if errors.Is(err, resilient.ErrTimeout) {
			reissues++
			m.res.Reissues++
			if reissues > m.opts.MaxReissues {
				return nil, fmt.Errorf("covariance stalled after %d reissues", reissues)
			}
			for _, p := range outstanding.keys() {
				if err := send(p); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		if msg.Kind != KindCovResp {
			continue
		}
		resp, err := DecodeCovResp(msg.Payload)
		if err != nil {
			return nil, err
		}
		if resp.Part < 0 || resp.Part >= P || partials[resp.Part] != nil {
			continue
		}
		partials[resp.Part] = resp.Sum
		m.tr.Stage("covariance", resp.Part, m.covT0[resp.Part], m.tr.Now())
		outstanding.remove(resp.Part)
		done++
	}
	cov, err := pct.Covariance(partials, len(members))
	if err != nil {
		return nil, err
	}
	return cov, m.env.Compute(m.opts.Cost.CovCombineFlops(P, m.bands))
}

// transformPhase is algorithm steps 7–8: workers transform and color-map
// their cached sub-cubes; the manager assembles the composite image.
func (m *manager) transformPhase(mean linalg.Vector, transform *linalg.Matrix, stretches []colormap.Stretch) (*image.RGBA, error) {
	S := len(m.ranges)
	img := image.NewRGBA(image.Rect(0, 0, m.width, m.height))
	doneIdx := make([]bool, S)
	outstanding := newIntSet(S)

	send := func(idx int, withData bool) error {
		req := &TransformReq{
			Range:     m.ranges[idx],
			Mean:      mean,
			Transform: transform,
			Stretches: stretches,
		}
		if withData {
			tile, err := m.src.Tile(m.ranges[idx])
			if err != nil {
				return err
			}
			req.Cube = tile
		}
		payload, err := EncodeTransformReq(req)
		if err != nil {
			return err
		}
		if m.tfT0[idx] < 0 {
			m.tfT0[idx] = m.tr.Now()
		}
		return m.env.Send(m.owner[idx], KindTransformReq, payload)
	}
	for idx := range m.ranges {
		if err := send(idx, false); err != nil {
			return nil, err
		}
		outstanding.add(idx)
	}
	reissues := 0
	for done := 0; done < S; {
		msg, err := m.env.RecvTimeout(m.opts.RequestTimeout)
		if errors.Is(err, resilient.ErrTimeout) {
			reissues++
			m.res.Reissues++
			if reissues > m.opts.MaxReissues {
				return nil, fmt.Errorf("transform stalled after %d reissues (%d/%d done)", reissues, done, S)
			}
			for _, idx := range outstanding.keys() {
				if err := send(idx, true); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		switch msg.Kind {
		case KindCacheMiss:
			idx, err := DecodeCacheMiss(msg.Payload)
			if err != nil {
				return nil, err
			}
			if idx >= 0 && idx < S && !doneIdx[idx] {
				m.res.CacheMisses++
				if err := send(idx, true); err != nil {
					return nil, err
				}
			}
		case KindTransformResp:
			resp, err := DecodeTransformResp(msg.Payload)
			if err != nil {
				return nil, err
			}
			idx := resp.Range.Index
			if idx < 0 || idx >= S || doneIdx[idx] {
				continue
			}
			blitRGB(img, resp)
			m.tr.Stage("transform", idx, m.tfT0[idx], m.tr.Now())
			doneIdx[idx] = true
			outstanding.remove(idx)
			done++
			if obs, ok := m.src.(TileObserver); ok {
				obs.TileTransformed(done, S)
			}
		}
	}
	return img, nil
}

// blitRGB copies a worker's RGB slab into the composite.
func blitRGB(img *image.RGBA, resp *TransformResp) {
	for row := 0; row < resp.Range.Rows(); row++ {
		y := resp.Range.Y0 + row
		for x := 0; x < resp.Width; x++ {
			src := (row*resp.Width + x) * 3
			dst := img.PixOffset(x, y)
			img.Pix[dst] = resp.RGB[src]
			img.Pix[dst+1] = resp.RGB[src+1]
			img.Pix[dst+2] = resp.RGB[src+2]
			img.Pix[dst+3] = 0xFF
		}
	}
}

// splitVectors divides vs into parts contiguous, balanced slices.
func splitVectors(vs []linalg.Vector, parts int) [][]linalg.Vector {
	out := make([][]linalg.Vector, parts)
	base := len(vs) / parts
	extra := len(vs) % parts
	off := 0
	for p := 0; p < parts; p++ {
		n := base
		if p < extra {
			n++
		}
		out[p] = vs[off : off+n]
		off += n
	}
	return out
}
