package core

// intSet is an ordered set of dense non-negative ints — the sub-cube and
// covariance-part indices the manager tracks as outstanding work. It
// replaces map[int]bool on the deterministic path: keys walks members in
// ascending index order by construction, so reissue sweeps never depend
// on map iteration order (the fusionlint detsource rule bans
// order-sensitive map ranges in this package outright).
type intSet struct {
	present []bool
	n       int
}

// newIntSet returns an empty set over indices [0, size).
func newIntSet(size int) *intSet {
	return &intSet{present: make([]bool, size)}
}

func (s *intSet) add(i int) {
	if !s.present[i] {
		s.present[i] = true
		s.n++
	}
}

func (s *intSet) remove(i int) {
	if i >= 0 && i < len(s.present) && s.present[i] {
		s.present[i] = false
		s.n--
	}
}

func (s *intSet) len() int { return s.n }

// keys returns the members in ascending order.
func (s *intSet) keys() []int {
	out := make([]int, 0, s.n)
	for i, in := range s.present {
		if in {
			out = append(out, i)
		}
	}
	return out
}
