package core

import (
	"bytes"
	"testing"

	"resilientfusion/internal/colormap"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/spectral"
)

// Message kinds for FuzzWireDecoders' dispatch byte, one per wire
// envelope.
const (
	fuzzScreenReq = iota
	fuzzScreenResp
	fuzzCovReq
	fuzzCovResp
	fuzzTransformReq
	fuzzTransformResp
	fuzzCacheMiss
	fuzzKinds
)

// FuzzWireDecoders drives every wire envelope decoder with arbitrary
// bytes. Properties: no decoder panics or over-allocates on corrupt
// input, and any payload a decoder accepts canonicalizes — re-encoding
// the decoded value and decoding again reproduces the same bytes.
// Comparing encodings (not structs) keeps the check exact in the
// presence of NaN payloads, which the codec preserves bit-for-bit.
func FuzzWireDecoders(f *testing.F) {
	cube := hsi.MustNewCube(3, 2, 2)
	for i := range cube.Data {
		cube.Data[i] = float32(i) * 0.5
	}
	cube.Wavelengths = []float64{500, 600}

	if seed, err := EncodeScreenReq(&ScreenReq{
		Range: hsi.RowRange{Index: 1, Y0: 0, Y1: 2},
		Cube:  cube,
	}); err == nil {
		f.Add(uint8(fuzzScreenReq), seed)
	}
	f.Add(uint8(fuzzScreenResp), EncodeScreenResp(&ScreenResp{
		Index:   2,
		Stats:   spectral.Stats{Scanned: 6, Comparisons: 12, SeqComparisons: 15},
		Vectors: []linalg.Vector{{1, 2}, {3, 4}},
	}))
	f.Add(uint8(fuzzCovReq), EncodeCovReq(&CovReq{
		Part:    1,
		Mean:    linalg.Vector{1, 2},
		Vectors: []linalg.Vector{{0.5, -0.5}, {2, 4}},
	}))
	f.Add(uint8(fuzzCovResp), EncodeCovResp(&CovResp{
		Part: 3,
		Sum:  linalg.NewMatrixFrom(2, 2, []float64{1, 2, 2, 5}),
	}))
	for _, withCube := range []*hsi.Cube{nil, cube} {
		if seed, err := EncodeTransformReq(&TransformReq{
			Range:     hsi.RowRange{Index: 0, Y0: 0, Y1: 2},
			Mean:      linalg.Vector{1, 2},
			Transform: linalg.NewMatrixFrom(1, 2, []float64{0.6, 0.8}),
			Stretches: []colormap.Stretch{{Center: 0.5, Scale: 2}},
			Cube:      withCube,
		}); err == nil {
			f.Add(uint8(fuzzTransformReq), seed)
		}
	}
	f.Add(uint8(fuzzTransformResp), EncodeTransformResp(&TransformResp{
		Range: hsi.RowRange{Index: 0, Y0: 0, Y1: 2},
		Width: 3,
		RGB:   bytes.Repeat([]byte{10, 20, 30}, 6),
	}))
	f.Add(uint8(fuzzCacheMiss), EncodeCacheMiss(7))
	f.Add(uint8(fuzzScreenReq), []byte{})
	f.Add(uint8(fuzzScreenResp), []byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, kind uint8, data []byte) {
		check := func(enc1 []byte, err1 error, redecode func([]byte) ([]byte, error)) {
			if err1 != nil {
				t.Fatalf("re-encoding a decoded message failed: %v", err1)
			}
			enc2, err2 := redecode(enc1)
			if err2 != nil {
				t.Fatalf("decode of re-encoded message failed: %v", err2)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("encoding not canonical: %d bytes then %d bytes differ", len(enc1), len(enc2))
			}
		}
		switch kind % fuzzKinds {
		case fuzzScreenReq:
			v, err := DecodeScreenReq(data)
			if err != nil {
				return
			}
			enc, encErr := EncodeScreenReq(v)
			check(enc, encErr, func(p []byte) ([]byte, error) {
				v2, err := DecodeScreenReq(p)
				if err != nil {
					return nil, err
				}
				return EncodeScreenReq(v2)
			})
		case fuzzScreenResp:
			v, err := DecodeScreenResp(data)
			if err != nil {
				return
			}
			check(EncodeScreenResp(v), nil, func(p []byte) ([]byte, error) {
				v2, err := DecodeScreenResp(p)
				if err != nil {
					return nil, err
				}
				return EncodeScreenResp(v2), nil
			})
		case fuzzCovReq:
			v, err := DecodeCovReq(data)
			if err != nil {
				return
			}
			check(EncodeCovReq(v), nil, func(p []byte) ([]byte, error) {
				v2, err := DecodeCovReq(p)
				if err != nil {
					return nil, err
				}
				return EncodeCovReq(v2), nil
			})
		case fuzzCovResp:
			v, err := DecodeCovResp(data)
			if err != nil {
				return
			}
			check(EncodeCovResp(v), nil, func(p []byte) ([]byte, error) {
				v2, err := DecodeCovResp(p)
				if err != nil {
					return nil, err
				}
				return EncodeCovResp(v2), nil
			})
		case fuzzTransformReq:
			v, err := DecodeTransformReq(data)
			if err != nil {
				return
			}
			enc, encErr := EncodeTransformReq(v)
			check(enc, encErr, func(p []byte) ([]byte, error) {
				v2, err := DecodeTransformReq(p)
				if err != nil {
					return nil, err
				}
				return EncodeTransformReq(v2)
			})
		case fuzzTransformResp:
			v, err := DecodeTransformResp(data)
			if err != nil {
				return
			}
			check(EncodeTransformResp(v), nil, func(p []byte) ([]byte, error) {
				v2, err := DecodeTransformResp(p)
				if err != nil {
					return nil, err
				}
				return EncodeTransformResp(v2), nil
			})
		case fuzzCacheMiss:
			idx, err := DecodeCacheMiss(data)
			if err != nil {
				return
			}
			enc := EncodeCacheMiss(idx)
			idx2, err := DecodeCacheMiss(enc)
			if err != nil || idx2 != idx {
				t.Fatalf("cache-miss round trip: idx %d -> %d, err %v", idx, idx2, err)
			}
		}
	})
}
