// Package core implements the paper's primary contribution: the
// distributed, intrusion-tolerant spectral-screening PCT fusion pipeline.
// A manager thread partitions the hyper-spectral cube into sub-cubes and
// drives replicated workers through the 8 algorithm steps over the
// resilient layer; workers overlap communication with computation by
// holding prefetched sub-problems, and the sub-cube count (granularity)
// is a tunable multiple of the worker count, exactly as evaluated in the
// paper's Figures 4 and 5.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"resilientfusion/internal/colormap"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/spectral"
)

// Application message kinds (all below resilient.CtrlBase).
const (
	// KindScreenReq carries a sub-cube to screen (step 1).
	KindScreenReq uint16 = iota + 1
	// KindScreenResp returns a sub-cube's unique set.
	KindScreenResp
	// KindCovReq carries a unique-set part and the mean (step 4).
	KindCovReq
	// KindCovResp returns a covariance partial sum.
	KindCovResp
	// KindTransformReq asks a worker to transform + color-map a cached
	// sub-cube (steps 7–8); it carries the data too on cache misses.
	KindTransformReq
	// KindTransformResp returns a color-mapped image slab.
	KindTransformResp
	// KindCacheMiss reports that a worker no longer holds a sub-cube
	// (it was regenerated); the manager resends with data.
	KindCacheMiss
	// KindStop shuts a worker down gracefully.
	KindStop
	// KindFuseReq carries a sub-cube for a tile-kernel algorithm
	// (pyramid, dwt): the whole per-tile fusion in one request.
	KindFuseReq
	// KindFuseResp returns a tile kernel's fused RGB slab.
	KindFuseResp
)

// ErrWire reports malformed fusion payloads.
var ErrWire = errors.New("core: malformed wire payload")

// --- primitives ---
//
// The float64 payloads (unique-set vectors, covariance matrices, the
// transform) are encoded and decoded in bulk: exact-size buffers filled
// by tight PutUint64/Uint64 loops, not per-element Buffer.Write calls —
// the codec cost the manager pays per message is one pass over the
// bytes. Vector sets additionally decode into a single staging backing
// (two allocations total, mirroring hsi.Cube.PixelRows) instead of one
// allocation per vector.

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

// encodeF64s fills dst (exactly 8·len(vs) bytes) with vs little-endian.
func encodeF64s(dst []byte, vs []float64) {
	_ = dst[:8*len(vs)] // one bounds check up front
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

// decodeF64s fills dst from exactly 8·len(dst) bytes of src.
func decodeF64s(src []byte, dst []float64) {
	_ = src[:8*len(dst)]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// putF64s appends vs to a buffer in bulk chunks (for the encoders that
// mix floats with variable-size parts and keep a bytes.Buffer).
func putF64s(b *bytes.Buffer, vs []float64) {
	var scratch [64 * 8]byte
	for len(vs) > 0 {
		n := min(64, len(vs))
		encodeF64s(scratch[:8*n], vs[:n])
		b.Write(scratch[:8*n])
		vs = vs[n:]
	}
}

type reader struct {
	b   []byte
	off int
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, ErrWire
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) f64s(n int) ([]float64, error) {
	raw, err := r.bytes(8 * n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	decodeF64s(raw, out)
	return out, nil
}

// f64Vectors decodes count vectors of dimension n as views over one
// staging backing — the decode-side analogue of the hsi staging views.
// Callers retaining a subset (the manager keeps unique-set members) pin
// the whole backing, the same trade PixelRows makes.
func (r *reader) f64Vectors(count, n int) ([]linalg.Vector, error) {
	if count < 0 || n < 0 || (n > 0 && count > (1<<40)/n) {
		return nil, ErrWire
	}
	raw, err := r.bytes(8 * count * n)
	if err != nil {
		return nil, err
	}
	backing := make([]float64, count*n)
	decodeF64s(raw, backing)
	out := make([]linalg.Vector, count)
	for i := range out {
		// Three-index slices: an append on one vector reallocates rather
		// than clobbering its neighbour in the shared backing.
		out[i] = linalg.Vector(backing[i*n : (i+1)*n : (i+1)*n])
	}
	return out, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, ErrWire
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

// --- ScreenReq: index, y0, y1, cube ---

// ScreenReq is a screening sub-problem.
type ScreenReq struct {
	Range hsi.RowRange
	Cube  *hsi.Cube
}

// EncodeScreenReq serializes a screening request.
func EncodeScreenReq(req *ScreenReq) ([]byte, error) {
	var b bytes.Buffer
	b.Grow(12 + int(req.Cube.EncodedSize()))
	putU32(&b, uint32(req.Range.Index))
	putU32(&b, uint32(req.Range.Y0))
	putU32(&b, uint32(req.Range.Y1))
	if _, err := req.Cube.WriteTo(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// DecodeScreenReq parses a screening request.
func DecodeScreenReq(p []byte) (*ScreenReq, error) {
	r := &reader{b: p}
	idx, err := r.u32()
	if err != nil {
		return nil, err
	}
	y0, err := r.u32()
	if err != nil {
		return nil, err
	}
	y1, err := r.u32()
	if err != nil {
		return nil, err
	}
	cube, err := readWireCube(p[r.off:])
	if err != nil {
		return nil, err
	}
	return &ScreenReq{
		Range: hsi.RowRange{Index: int(idx), Y0: int(y0), Y1: int(y1)},
		Cube:  cube,
	}, nil
}

// readWireCube decodes an embedded cube, bounding the decoder by the
// bytes actually present: a valid encoding never claims more than its
// payload holds, so the limit only rejects corrupt headers — before
// they can demand a giant sample allocation.
func readWireCube(p []byte) (*hsi.Cube, error) {
	cube, err := hsi.ReadCubeLimit(bytes.NewReader(p), int64(len(p)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	return cube, nil
}

// --- ScreenResp: index, K, n, stats, vectors ---

// ScreenResp carries a sub-cube's unique set back to the manager, plus
// the screening workload the worker measured (the manager aggregates
// Result.ScreenStats from these so experiment reporting sees the whole
// job's screening cost, actual and sequential-equivalent).
type ScreenResp struct {
	Index   int
	Stats   spectral.Stats
	Vectors []linalg.Vector
}

// screenRespHeader is the fixed prefix: index, K, n (u32 each) plus the
// three stats counters (u64 each — comparison counts overflow u32 on
// large sub-cubes).
const screenRespHeader = 12 + 24

// EncodeScreenResp serializes a screening response into one exact-size
// buffer (all vectors share the unique set's dimension).
func EncodeScreenResp(resp *ScreenResp) []byte {
	n := 0
	if len(resp.Vectors) > 0 {
		n = len(resp.Vectors[0])
	}
	buf := make([]byte, screenRespHeader+8*len(resp.Vectors)*n)
	binary.LittleEndian.PutUint32(buf[0:], uint32(resp.Index))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(resp.Vectors)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
	binary.LittleEndian.PutUint64(buf[12:], uint64(resp.Stats.Scanned))
	binary.LittleEndian.PutUint64(buf[20:], uint64(resp.Stats.Comparisons))
	binary.LittleEndian.PutUint64(buf[28:], uint64(resp.Stats.SeqComparisons))
	off := screenRespHeader
	for _, v := range resp.Vectors {
		encodeF64s(buf[off:], v)
		off += 8 * len(v)
	}
	return buf
}

// DecodeScreenResp parses a screening response; the vectors are views
// over one staging backing.
func DecodeScreenResp(p []byte) (*ScreenResp, error) {
	r := &reader{b: p}
	idx, err := r.u32()
	if err != nil {
		return nil, err
	}
	k, err := r.u32()
	if err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if k > 1<<24 || n > 1<<20 {
		return nil, ErrWire
	}
	var st spectral.Stats
	for _, dst := range []*int{&st.Scanned, &st.Comparisons, &st.SeqComparisons} {
		raw, err := r.bytes(8)
		if err != nil {
			return nil, err
		}
		v := binary.LittleEndian.Uint64(raw)
		if v > math.MaxInt {
			return nil, ErrWire
		}
		*dst = int(v)
	}
	vectors, err := r.f64Vectors(int(k), int(n))
	if err != nil {
		return nil, err
	}
	return &ScreenResp{Index: int(idx), Stats: st, Vectors: vectors}, nil
}

// --- CovReq: part, count, n, mean, vectors ---

// CovReq asks a worker for a covariance partial sum over a slice of the
// unique set.
type CovReq struct {
	Part    int
	Mean    linalg.Vector
	Vectors []linalg.Vector
}

// EncodeCovReq serializes a covariance request into one exact-size
// buffer.
func EncodeCovReq(req *CovReq) []byte {
	n := len(req.Mean)
	buf := make([]byte, 12+8*n+8*len(req.Vectors)*n)
	binary.LittleEndian.PutUint32(buf[0:], uint32(req.Part))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(req.Vectors)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
	encodeF64s(buf[12:], req.Mean)
	off := 12 + 8*n
	for _, v := range req.Vectors {
		encodeF64s(buf[off:], v)
		off += 8 * len(v)
	}
	return buf
}

// DecodeCovReq parses a covariance request; the vectors are views over
// one staging backing.
func DecodeCovReq(p []byte) (*CovReq, error) {
	r := &reader{b: p}
	part, err := r.u32()
	if err != nil {
		return nil, err
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if count > 1<<24 || n > 1<<20 {
		return nil, ErrWire
	}
	mean, err := r.f64s(int(n))
	if err != nil {
		return nil, err
	}
	vectors, err := r.f64Vectors(int(count), int(n))
	if err != nil {
		return nil, err
	}
	return &CovReq{Part: int(part), Mean: mean, Vectors: vectors}, nil
}

// --- CovResp: part, n, matrix ---

// CovResp returns a covariance partial sum.
type CovResp struct {
	Part int
	Sum  *linalg.Matrix
}

// EncodeCovResp serializes a covariance response into one exact-size
// buffer (the n×n sum is a single bulk encode).
func EncodeCovResp(resp *CovResp) []byte {
	buf := make([]byte, 8+8*len(resp.Sum.Data))
	binary.LittleEndian.PutUint32(buf[0:], uint32(resp.Part))
	binary.LittleEndian.PutUint32(buf[4:], uint32(resp.Sum.Rows))
	encodeF64s(buf[8:], resp.Sum.Data)
	return buf
}

// DecodeCovResp parses a covariance response.
func DecodeCovResp(p []byte) (*CovResp, error) {
	r := &reader{b: p}
	part, err := r.u32()
	if err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, ErrWire
	}
	data, err := r.f64s(int(n) * int(n))
	if err != nil {
		return nil, err
	}
	return &CovResp{Part: int(part), Sum: linalg.NewMatrixFrom(int(n), int(n), data)}, nil
}

// --- TransformReq: index, flags, n, comps, mean, transform, stretches, [cube] ---

// TransformReq asks for steps 7–8 on a sub-cube. When Cube is nil the
// worker uses its cached copy from the screening phase; the manager
// resends data after a cache miss or reissue.
type TransformReq struct {
	Range     hsi.RowRange
	Mean      linalg.Vector
	Transform *linalg.Matrix // comps×n
	Stretches []colormap.Stretch
	Cube      *hsi.Cube // optional
}

// EncodeTransformReq serializes a transform request.
func EncodeTransformReq(req *TransformReq) ([]byte, error) {
	var b bytes.Buffer
	size := 24 + 8*(len(req.Mean)+len(req.Transform.Data)+2*len(req.Stretches))
	if req.Cube != nil {
		size += int(req.Cube.EncodedSize())
	}
	b.Grow(size)
	putU32(&b, uint32(req.Range.Index))
	putU32(&b, uint32(req.Range.Y0))
	putU32(&b, uint32(req.Range.Y1))
	hasData := uint32(0)
	if req.Cube != nil {
		hasData = 1
	}
	putU32(&b, hasData)
	putU32(&b, uint32(len(req.Mean)))
	putU32(&b, uint32(req.Transform.Rows))
	putF64s(&b, req.Mean)
	putF64s(&b, req.Transform.Data)
	for _, s := range req.Stretches {
		putF64s(&b, []float64{s.Center, s.Scale})
	}
	if req.Cube != nil {
		if _, err := req.Cube.WriteTo(&b); err != nil {
			return nil, err
		}
	}
	return b.Bytes(), nil
}

// DecodeTransformReq parses a transform request.
func DecodeTransformReq(p []byte) (*TransformReq, error) {
	r := &reader{b: p}
	idx, err := r.u32()
	if err != nil {
		return nil, err
	}
	y0, err := r.u32()
	if err != nil {
		return nil, err
	}
	y1, err := r.u32()
	if err != nil {
		return nil, err
	}
	hasData, err := r.u32()
	if err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	comps, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 || comps > 64 {
		return nil, ErrWire
	}
	mean, err := r.f64s(int(n))
	if err != nil {
		return nil, err
	}
	tdata, err := r.f64s(int(comps) * int(n))
	if err != nil {
		return nil, err
	}
	out := &TransformReq{
		Range:     hsi.RowRange{Index: int(idx), Y0: int(y0), Y1: int(y1)},
		Mean:      mean,
		Transform: linalg.NewMatrixFrom(int(comps), int(n), tdata),
	}
	for i := 0; i < int(comps); i++ {
		cs, err := r.f64s(2)
		if err != nil {
			return nil, err
		}
		out.Stretches = append(out.Stretches, colormap.Stretch{Center: cs[0], Scale: cs[1]})
	}
	if hasData == 1 {
		cube, err := readWireCube(p[r.off:])
		if err != nil {
			return nil, err
		}
		out.Cube = cube
	}
	return out, nil
}

// --- TransformResp: index, y0, y1, width, rgb ---

// TransformResp returns the color-mapped slab for a sub-cube: 3 bytes
// per pixel, row-major.
type TransformResp struct {
	Range hsi.RowRange
	Width int
	RGB   []byte
}

// EncodeTransformResp serializes a transform response.
func EncodeTransformResp(resp *TransformResp) []byte {
	var b bytes.Buffer
	putU32(&b, uint32(resp.Range.Index))
	putU32(&b, uint32(resp.Range.Y0))
	putU32(&b, uint32(resp.Range.Y1))
	putU32(&b, uint32(resp.Width))
	b.Write(resp.RGB)
	return b.Bytes()
}

// DecodeTransformResp parses a transform response.
func DecodeTransformResp(p []byte) (*TransformResp, error) {
	r := &reader{b: p}
	idx, err := r.u32()
	if err != nil {
		return nil, err
	}
	y0, err := r.u32()
	if err != nil {
		return nil, err
	}
	y1, err := r.u32()
	if err != nil {
		return nil, err
	}
	w, err := r.u32()
	if err != nil {
		return nil, err
	}
	if w > 1<<20 || y1 < y0 {
		return nil, ErrWire
	}
	rows := int(y1) - int(y0)
	rgb, err := r.bytes(rows * int(w) * 3)
	if err != nil {
		return nil, err
	}
	return &TransformResp{
		Range: hsi.RowRange{Index: int(idx), Y0: int(y0), Y1: int(y1)},
		Width: int(w),
		RGB:   append([]byte(nil), rgb...),
	}, nil
}

// --- CacheMiss: index ---

// EncodeCacheMiss serializes a cache-miss notice.
func EncodeCacheMiss(index int) []byte {
	var b bytes.Buffer
	putU32(&b, uint32(index))
	return b.Bytes()
}

// DecodeCacheMiss parses a cache-miss notice.
func DecodeCacheMiss(p []byte) (int, error) {
	r := &reader{b: p}
	idx, err := r.u32()
	return int(idx), err
}

// --- Fuse: tile-kernel algorithms (pyramid, dwt) ---
//
// A fuse request ships a sub-cube exactly like a screening request, and
// a fuse response returns the tile's color-mapped slab exactly like a
// transform response, so both reuse those codecs byte-for-byte: the
// message kind, not the payload layout, is what distinguishes the
// single-phase tile-kernel exchange from the multi-phase pct protocol.

// FuseReq carries a sub-cube for one whole-tile fusion.
type FuseReq = ScreenReq

// FuseResp returns a tile's fused RGB slab.
type FuseResp = TransformResp

// EncodeFuseReq serializes a tile-fusion request.
func EncodeFuseReq(req *FuseReq) ([]byte, error) { return EncodeScreenReq(req) }

// DecodeFuseReq parses a tile-fusion request.
func DecodeFuseReq(p []byte) (*FuseReq, error) { return DecodeScreenReq(p) }

// EncodeFuseResp serializes a tile-fusion response.
func EncodeFuseResp(resp *FuseResp) []byte { return EncodeTransformResp(resp) }

// DecodeFuseResp parses a tile-fusion response.
func DecodeFuseResp(p []byte) (*FuseResp, error) { return DecodeTransformResp(p) }
