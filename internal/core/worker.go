package core

import (
	"bytes"
	"fmt"

	"resilientfusion/internal/colormap"
	"resilientfusion/internal/fuse"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/pct"
	"resilientfusion/internal/perfmodel"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/spectral"
)

// WorkerState holds the per-job state of a fusion worker: sub-cubes
// cached from the screening phase (preserving the paper's locality — step
// 7 reuses step 1's data placement) and memoized screen responses so
// reissued requests are answered without re-screening. A run-to-completion
// worker thread owns exactly one; the service pool's multiplexing workers
// keep one per in-flight job.
type WorkerState struct {
	algorithm   string // canonical registry name ("" behaves as "pct")
	threshold   float64
	parallelism int // kernel parallelism (0 = GOMAXPROCS)
	cost        perfmodel.Model
	cache       map[int]*hsi.SubCube
	screened    map[int][]byte // encoded ScreenResp by sub-cube
	scratch     *Scratch       // optional worker-lifetime buffers
}

// Scratch holds worker-lifetime kernel buffers that outlive individual
// jobs. The screened-covariance micro-shape (K≈7 unique vectors over
// 100+ bands) is allocation-floor-bound on its n×n sum matrix, so a
// long-lived pooled worker plants one Scratch into every per-job
// WorkerState it creates and the sum matrix is reused across jobs
// (pct.CovarianceSumInto zeroes it per request). A Scratch belongs to
// one worker thread: replies are fully encoded before Handle returns, so
// nothing aliases the buffers between messages.
type Scratch struct {
	cov *linalg.Matrix
}

// NewScratch returns empty worker-lifetime scratch.
func NewScratch() *Scratch { return &Scratch{} }

// covFor returns the reusable n×n covariance accumulator, reallocating
// only when the band count changes.
func (s *Scratch) covFor(n int) *linalg.Matrix {
	if s.cov == nil || s.cov.Rows != n {
		s.cov = linalg.NewMatrix(n, n)
	}
	return s.cov
}

// NewWorkerState returns empty per-job worker state for the named
// fusion algorithm (registry name; "" behaves as "pct"). parallelism is
// the kernel parallelism of the screening, statistics, transform and
// tile-fusion steps (0 selects GOMAXPROCS); it never changes the
// computed bits, only the wall clock.
func NewWorkerState(algorithm string, threshold float64, parallelism int, cost perfmodel.Model) *WorkerState {
	return &WorkerState{
		algorithm:   fuse.Canonical(algorithm),
		threshold:   threshold,
		parallelism: parallelism,
		cost:        cost,
		cache:       make(map[int]*hsi.SubCube),
		screened:    make(map[int][]byte),
	}
}

// UseScratch plants worker-lifetime buffers into this per-job state; the
// caller promises the Scratch is owned by a single worker thread.
func (ws *WorkerState) UseScratch(s *Scratch) { ws.scratch = s }

// Handle processes one application message and returns the reply to send
// to the manager, plus the modeled flops the caller must charge (via
// Compute) before sending. replyKind 0 means no reply (unknown or stale
// kind). Handle is a deterministic function of the message stream, which
// is what keeps replicated workers in lockstep (the resilient layer's
// requirement). KindStop is the caller's business: a dedicated worker
// thread returns, a pooled worker retires the job's state.
func (ws *WorkerState) Handle(kind uint16, payload []byte) (replyKind uint16, reply []byte, flops float64, err error) {
	switch kind {
	case KindScreenReq:
		req, err := DecodeScreenReq(payload)
		if err != nil {
			return 0, nil, 0, err
		}
		// Reissued requests (manager timeout races) are answered from
		// the result cache instead of re-screening.
		if enc, ok := ws.screened[req.Range.Index]; ok {
			return KindScreenResp, enc, 0, nil
		}
		sub := &hsi.SubCube{Range: req.Range, Cube: req.Cube}
		ws.cache[req.Range.Index] = sub
		// Step 1: form the sub-cube's unique spectral set. The batched
		// engine parallelizes the scan under the job's kernel parallelism
		// with output bit-identical to the sequential reference, and the
		// modeled cost is charged from the sequential-equivalent count, so
		// neither the result nor the virtual time depends on the knob.
		u, st, err := spectral.ScreenBatched(sub.PixelVectors(), ws.threshold, ws.parallelism)
		if err != nil {
			return 0, nil, 0, err
		}
		enc := EncodeScreenResp(&ScreenResp{Index: req.Range.Index, Stats: st, Vectors: u.Members})
		ws.screened[req.Range.Index] = enc
		return KindScreenResp, enc, ws.cost.ScreenFlops(st, req.Cube.Bands), nil

	case KindCovReq:
		req, err := DecodeCovReq(payload)
		if err != nil {
			return 0, nil, 0, err
		}
		// Step 4: covariance partial sum over this part, accumulated into
		// the worker-lifetime matrix when one is planted (the encode below
		// copies it out before Handle returns, so reuse is safe).
		var sum *linalg.Matrix
		if ws.scratch != nil {
			sum = ws.scratch.covFor(len(req.Mean))
		} else {
			sum = linalg.NewMatrix(len(req.Mean), len(req.Mean))
		}
		if err := pct.CovarianceSumInto(sum, req.Vectors, req.Mean, ws.parallelism); err != nil {
			return 0, nil, 0, err
		}
		return KindCovResp, EncodeCovResp(&CovResp{Part: req.Part, Sum: sum}),
			ws.cost.CovPartialFlops(len(req.Vectors), len(req.Mean)), nil

	case KindTransformReq:
		req, err := DecodeTransformReq(payload)
		if err != nil {
			return 0, nil, 0, err
		}
		sub := ws.cache[req.Range.Index]
		if req.Cube != nil {
			sub = &hsi.SubCube{Range: req.Range, Cube: req.Cube}
			ws.cache[req.Range.Index] = sub
		}
		if sub == nil {
			// Regenerated replica without the cached sub-cube: ask the
			// manager to resend with data.
			return KindCacheMiss, EncodeCacheMiss(req.Range.Index), 0, nil
		}
		resp, flops, err := transformSlab(sub, req, ws.parallelism, ws.cost)
		if err != nil {
			return 0, nil, 0, err
		}
		return KindTransformResp, EncodeTransformResp(resp), flops, nil

	case KindFuseReq:
		req, err := DecodeFuseReq(payload)
		if err != nil {
			return 0, nil, 0, err
		}
		alg, ok := fuse.Lookup(ws.algorithm)
		if !ok || alg.FuseTile == nil {
			return 0, nil, 0, fmt.Errorf("core: no tile kernel registered for algorithm %q", ws.algorithm)
		}
		// The whole per-tile fusion in one step: decompose, select, merge
		// and color-map inside the registered kernel, deterministic at
		// every parallelism. Reissued requests recompute — the kernel is
		// pure, so the reply is byte-identical and the manager dedupes.
		pixels := req.Cube.Pixels()
		rgb := make([]byte, pixels*3)
		if err := alg.FuseTile(req.Cube, ws.parallelism, rgb); err != nil {
			return 0, nil, 0, err
		}
		resp := &FuseResp{Range: req.Range, Width: req.Cube.Width, RGB: rgb}
		// Charge the transform-shaped model cost: one pass over the tile's
		// samples producing 3 output planes, plus the color mapping.
		flops := ws.cost.TransformFlops(pixels, req.Cube.Bands, 3) + ws.cost.ColorMapFlops(pixels)
		return KindFuseResp, EncodeFuseResp(resp), flops, nil
	}
	return 0, nil, 0, nil
}

// workerBody executes the worker side of the fusion protocol as a
// dedicated resilient thread — the 8-step pct exchange or the
// single-phase tile-kernel exchange, per the job's algorithm — with one
// WorkerState for its lifetime, stopping on KindStop.
func workerBody(manager resilient.LogicalID, algorithm string, threshold float64, parallelism int, cost perfmodel.Model) resilient.RBody {
	return func(env resilient.REnv) error {
		ws := NewWorkerState(algorithm, threshold, parallelism, cost)
		ws.UseScratch(NewScratch())
		for {
			m, err := env.Recv()
			if err != nil {
				return err
			}
			if m.Kind == KindStop {
				return nil
			}
			replyKind, reply, flops, err := ws.Handle(m.Kind, m.Payload)
			if err != nil {
				return err
			}
			if replyKind == 0 {
				continue
			}
			if flops > 0 {
				if err := env.Compute(flops); err != nil {
					return err
				}
			}
			if err := env.Send(manager, replyKind, reply); err != nil {
				return err
			}
		}
	}
}

// transformSlab runs steps 7 (PCT projection) and 8 (human-centered
// color mapping) on one cached sub-cube, returning the RGB slab and the
// modeled cost. The projection runs through pct's blocked kernel
// (staged pixel blocks, tiled GEMM, fixed block grid — bit-identical for
// any parallelism) with the color mapping fused into each block's sink,
// so no intermediate component cube is materialized.
func transformSlab(sub *hsi.SubCube, req *TransformReq, parallelism int, cost perfmodel.Model) (*TransformResp, float64, error) {
	cube := sub.Cube
	comps := req.Transform.Rows
	pixels := cube.Pixels()

	rgb := make([]byte, pixels*3)
	err := pct.TransformBlocks(cube, req.Transform, req.Mean, parallelism,
		func(lo int, pc *linalg.Matrix) {
			var c [3]float64
			for r := 0; r < pc.Rows; r++ {
				row := pc.Data[r*comps : (r+1)*comps]
				for k := 0; k < 3 && k < comps; k++ {
					c[k] = req.Stretches[k].Apply(row[k])
				}
				cr, cg, cb := colormap.MapPixel(c)
				i := (lo + r) * 3
				rgb[i], rgb[i+1], rgb[i+2] = cr, cg, cb
			}
		})
	if err != nil {
		return nil, 0, err
	}
	flops := cost.TransformFlops(pixels, cube.Bands, comps) + cost.ColorMapFlops(pixels)
	return &TransformResp{Range: sub.Range, Width: cube.Width, RGB: rgb}, flops, nil
}

// subCubeBytes returns the serialized size of a sub-cube message (used
// by tests asserting the performance model's byte accounting).
func subCubeBytes(sub *hsi.SubCube) int64 {
	var b bytes.Buffer
	_, _ = sub.Cube.WriteTo(&b)
	return int64(b.Len()) + 12
}
