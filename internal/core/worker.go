package core

import (
	"bytes"

	"resilientfusion/internal/colormap"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/pct"
	"resilientfusion/internal/perfmodel"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/spectral"
)

// workerBody executes the worker side of the 8-step algorithm. It is a
// deterministic function of its message stream, so replicas stay in
// lockstep (the resilient layer's requirement). Sub-cubes received for
// screening are cached for the transform phase, preserving the paper's
// locality: step 7 reuses step 1's data placement.
func workerBody(manager resilient.LogicalID, threshold float64, cost perfmodel.Model) resilient.RBody {
	return func(env resilient.REnv) error {
		cache := make(map[int]*hsi.SubCube)
		screened := make(map[int][]byte) // encoded ScreenResp by sub-cube
		for {
			m, err := env.Recv()
			if err != nil {
				return err
			}
			switch m.Kind {
			case KindStop:
				return nil

			case KindScreenReq:
				req, err := DecodeScreenReq(m.Payload)
				if err != nil {
					return err
				}
				// Reissued requests (manager timeout races) are answered
				// from the result cache instead of re-screening.
				if enc, ok := screened[req.Range.Index]; ok {
					if err := env.Send(manager, KindScreenResp, enc); err != nil {
						return err
					}
					continue
				}
				sub := &hsi.SubCube{Range: req.Range, Cube: req.Cube}
				cache[req.Range.Index] = sub
				// Step 1: form the sub-cube's unique spectral set.
				u, st, err := spectral.Screen(sub.PixelVectors(), threshold)
				if err != nil {
					return err
				}
				if err := env.Compute(cost.ScreenFlops(st, req.Cube.Bands)); err != nil {
					return err
				}
				enc := EncodeScreenResp(&ScreenResp{Index: req.Range.Index, Vectors: u.Members})
				screened[req.Range.Index] = enc
				if err := env.Send(manager, KindScreenResp, enc); err != nil {
					return err
				}

			case KindCovReq:
				req, err := DecodeCovReq(m.Payload)
				if err != nil {
					return err
				}
				// Step 4: covariance partial sum over this part.
				sum, err := pct.CovarianceSum(req.Vectors, req.Mean)
				if err != nil {
					return err
				}
				if err := env.Compute(cost.CovPartialFlops(len(req.Vectors), len(req.Mean))); err != nil {
					return err
				}
				if err := env.Send(manager, KindCovResp, EncodeCovResp(&CovResp{Part: req.Part, Sum: sum})); err != nil {
					return err
				}

			case KindTransformReq:
				req, err := DecodeTransformReq(m.Payload)
				if err != nil {
					return err
				}
				sub := cache[req.Range.Index]
				if req.Cube != nil {
					sub = &hsi.SubCube{Range: req.Range, Cube: req.Cube}
					cache[req.Range.Index] = sub
				}
				if sub == nil {
					// Regenerated replica without the cached sub-cube:
					// ask the manager to resend with data.
					if err := env.Send(manager, KindCacheMiss, EncodeCacheMiss(req.Range.Index)); err != nil {
						return err
					}
					continue
				}
				resp, flops, err := transformSlab(sub, req, cost)
				if err != nil {
					return err
				}
				if err := env.Compute(flops); err != nil {
					return err
				}
				if err := env.Send(manager, KindTransformResp, EncodeTransformResp(resp)); err != nil {
					return err
				}
			}
		}
	}
}

// transformSlab runs steps 7 (PCT projection) and 8 (human-centered
// color mapping) on one cached sub-cube, returning the RGB slab and the
// modeled cost.
func transformSlab(sub *hsi.SubCube, req *TransformReq, cost perfmodel.Model) (*TransformResp, float64, error) {
	cube := sub.Cube
	comps := req.Transform.Rows
	pixels := cube.Pixels()

	in := make(linalg.Vector, cube.Bands)
	dev := make(linalg.Vector, cube.Bands)
	pc := make(linalg.Vector, comps)
	rgb := make([]byte, pixels*3)
	var c [3]float64
	for i := 0; i < pixels; i++ {
		cube.PixelAt(i, in)
		in.Sub(req.Mean, dev)
		req.Transform.MulVecInto(dev, pc)
		for k := 0; k < 3 && k < comps; k++ {
			c[k] = req.Stretches[k].Apply(pc[k])
		}
		r, g, b := colormap.MapPixel(c)
		rgb[i*3], rgb[i*3+1], rgb[i*3+2] = r, g, b
	}
	flops := cost.TransformFlops(pixels, cube.Bands, comps) + cost.ColorMapFlops(pixels)
	return &TransformResp{Range: sub.Range, Width: cube.Width, RGB: rgb}, flops, nil
}

// subCubeBytes returns the serialized size of a sub-cube message (used
// by tests asserting the performance model's byte accounting).
func subCubeBytes(sub *hsi.SubCube) int64 {
	var b bytes.Buffer
	_, _ = sub.Cube.WriteTo(&b)
	return int64(b.Len()) + 12
}
