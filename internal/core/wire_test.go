package core

import (
	"errors"
	"math/rand"
	"testing"

	"resilientfusion/internal/colormap"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/spectral"
)

func smallCube(t *testing.T, w, h, b int, seed int64) *hsi.Cube {
	t.Helper()
	c := hsi.MustNewCube(w, h, b)
	rng := rand.New(rand.NewSource(seed))
	for i := range c.Data {
		c.Data[i] = float32(rng.Float64() * 100)
	}
	c.Wavelengths = hsi.DefaultWavelengths(b)
	return c
}

func TestScreenReqRoundTrip(t *testing.T) {
	cube := smallCube(t, 4, 3, 5, 1)
	req := &ScreenReq{Range: hsi.RowRange{Index: 7, Y0: 10, Y1: 13}, Cube: cube}
	b, err := EncodeScreenReq(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeScreenReq(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Range != req.Range {
		t.Fatalf("range %v", got.Range)
	}
	if !got.Cube.Equal(cube, 0) {
		t.Fatal("cube mismatch")
	}
	if _, err := DecodeScreenReq([]byte{1, 2, 3}); !errors.Is(err, ErrWire) {
		t.Fatalf("garbage: %v", err)
	}
}

func TestScreenRespRoundTrip(t *testing.T) {
	resp := &ScreenResp{
		Index: 3,
		// Counters past 2^32 must survive the wire (large sub-cubes).
		Stats:   spectral.Stats{Scanned: 64, Comparisons: 1 << 40, SeqComparisons: 1<<40 - 7},
		Vectors: []linalg.Vector{{1, 2}, {3, 4}, {5, 6}},
	}
	got, err := DecodeScreenResp(EncodeScreenResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != 3 || len(got.Vectors) != 3 {
		t.Fatalf("got %+v", got)
	}
	if got.Stats != resp.Stats {
		t.Fatalf("stats %+v, want %+v", got.Stats, resp.Stats)
	}
	for i := range resp.Vectors {
		if !got.Vectors[i].Equal(resp.Vectors[i], 0) {
			t.Fatalf("vector %d mismatch", i)
		}
	}
	// Empty unique set (empty sub-cube) is legal.
	empty := &ScreenResp{Index: 1}
	got, err = DecodeScreenResp(EncodeScreenResp(empty))
	if err != nil || len(got.Vectors) != 0 {
		t.Fatalf("empty roundtrip: %v %v", got, err)
	}
	if _, err := DecodeScreenResp(nil); !errors.Is(err, ErrWire) {
		t.Fatalf("nil: %v", err)
	}
	if _, err := DecodeScreenResp([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255}); !errors.Is(err, ErrWire) {
		t.Fatalf("absurd counts: %v", err)
	}
}

func TestCovReqRespRoundTrip(t *testing.T) {
	req := &CovReq{
		Part:    2,
		Mean:    linalg.Vector{1, 2, 3},
		Vectors: []linalg.Vector{{4, 5, 6}, {7, 8, 9}},
	}
	got, err := DecodeCovReq(EncodeCovReq(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Part != 2 || !got.Mean.Equal(req.Mean, 0) || len(got.Vectors) != 2 {
		t.Fatalf("got %+v", got)
	}
	if _, err := DecodeCovReq([]byte{0}); !errors.Is(err, ErrWire) {
		t.Fatalf("short: %v", err)
	}

	m := linalg.NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	resp := &CovResp{Part: 1, Sum: m}
	gotR, err := DecodeCovResp(EncodeCovResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Part != 1 || !gotR.Sum.Equal(m, 0) {
		t.Fatalf("got %+v", gotR)
	}
	if _, err := DecodeCovResp([]byte{1, 0, 0, 0, 255, 255, 255, 0}); !errors.Is(err, ErrWire) {
		t.Fatalf("absurd n: %v", err)
	}
}

func TestTransformReqRoundTrip(t *testing.T) {
	tr := linalg.NewMatrixFrom(3, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	req := &TransformReq{
		Range:     hsi.RowRange{Index: 5, Y0: 0, Y1: 2},
		Mean:      linalg.Vector{1, 2, 3, 4},
		Transform: tr,
		Stretches: []colormap.Stretch{{Center: 0, Scale: 1}, {Center: 1, Scale: 2}, {Center: 2, Scale: 3}},
	}
	b, err := EncodeTransformReq(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTransformReq(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Range != req.Range || got.Cube != nil || !got.Transform.Equal(tr, 0) {
		t.Fatalf("got %+v", got)
	}
	if got.Stretches[2] != req.Stretches[2] {
		t.Fatalf("stretches %v", got.Stretches)
	}

	// With data attached.
	req.Cube = smallCube(t, 4, 2, 4, 2)
	b, err = EncodeTransformReq(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeTransformReq(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cube == nil || !got.Cube.Equal(req.Cube, 0) {
		t.Fatal("attached cube lost")
	}
	if _, err := DecodeTransformReq([]byte{1}); !errors.Is(err, ErrWire) {
		t.Fatalf("short: %v", err)
	}
}

func TestTransformRespRoundTrip(t *testing.T) {
	resp := &TransformResp{
		Range: hsi.RowRange{Index: 2, Y0: 4, Y1: 6},
		Width: 3,
		RGB:   make([]byte, 2*3*3),
	}
	for i := range resp.RGB {
		resp.RGB[i] = byte(i)
	}
	got, err := DecodeTransformResp(EncodeTransformResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Range != resp.Range || got.Width != 3 || len(got.RGB) != len(resp.RGB) {
		t.Fatalf("got %+v", got)
	}
	for i := range resp.RGB {
		if got.RGB[i] != resp.RGB[i] {
			t.Fatal("rgb bytes mismatch")
		}
	}
	if _, err := DecodeTransformResp([]byte{0, 0, 0, 0, 9, 0, 0, 0, 1, 0, 0, 0, 3, 0, 0, 0}); !errors.Is(err, ErrWire) {
		t.Fatalf("y1<y0: %v", err)
	}
}

func TestCacheMissRoundTrip(t *testing.T) {
	idx, err := DecodeCacheMiss(EncodeCacheMiss(9))
	if err != nil || idx != 9 {
		t.Fatalf("%d %v", idx, err)
	}
	if _, err := DecodeCacheMiss(nil); !errors.Is(err, ErrWire) {
		t.Fatalf("nil: %v", err)
	}
}
