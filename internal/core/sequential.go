package core

import (
	"fmt"
	"image"

	"resilientfusion/internal/colormap"
	"resilientfusion/internal/fuse"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/pct"
	"resilientfusion/internal/spectral"
)

// Sequential executes the identical algorithm — same partitioning, same
// per-part kernels, same deterministic merge and summation order — on one
// thread with no messaging. Its output is bit-identical to the
// distributed pipeline's for the same Options, which is the correctness
// oracle the distributed tests check against. (Only Workers, Granularity,
// Threshold, Components, Solver and Algorithm influence the result.)
func Sequential(cube *hsi.Cube, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := cube.Validate(); err != nil {
		return nil, err
	}
	alg, ok := fuse.Lookup(opts.Algorithm)
	if !ok {
		return nil, fmt.Errorf("%w: unknown algorithm %q (have %v)",
			ErrBadOptions, opts.Algorithm, fuse.Names())
	}
	if alg.FuseTile != nil {
		return sequentialFuse(cube, opts, alg)
	}
	res := &Result{}

	subCubes := opts.Granularity * opts.Workers
	if subCubes > cube.Height {
		subCubes = cube.Height
	}
	ranges := hsi.Partition(cube.Height, subCubes)
	res.SubCubes = subCubes

	// Steps 1–2. The batched engine is bit-identical to the sequential
	// spectral.Screen reference, so the oracle's contract is unchanged.
	parts := make([]*spectral.UniqueSet, len(ranges))
	subs := make([]*hsi.SubCube, len(ranges))
	for i, rr := range ranges {
		sub, err := hsi.Extract(cube, rr)
		if err != nil {
			return nil, err
		}
		subs[i] = sub
		u, st, err := spectral.ScreenBatched(sub.PixelVectors(), opts.Threshold, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		parts[i] = u
		res.ScreenStats.Add(st)
	}
	merged, mst, err := spectral.Merge(parts, opts.Threshold)
	if err != nil {
		return nil, err
	}
	res.ScreenStats.Add(mst)
	res.UniqueSetSize = merged.Len()

	// Step 3.
	mean, err := pct.MeanOfPar(merged.Members, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	res.Mean = mean

	// Steps 4–5 with the distributed pipeline's part structure.
	vparts := splitVectors(merged.Members, opts.Workers)
	partials := make([]*linalg.Matrix, len(vparts))
	for p, vs := range vparts {
		sum, err := pct.CovarianceSumPar(vs, mean, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		partials[p] = sum
	}
	cov, err := pct.Covariance(partials, merged.Len())
	if err != nil {
		return nil, err
	}

	// Step 6.
	eig, err := linalg.EigenSymWith(cov, opts.Solver)
	if err != nil {
		return nil, err
	}
	transform, err := eig.TransformMatrix(opts.Components)
	if err != nil {
		return nil, err
	}
	stretches := colormap.VarianceStretch(eig.Values[:opts.Components], 3)
	res.Eigenvalues = eig.Values
	res.Transform = transform

	// Steps 7–8 per sub-cube, assembled exactly like the manager does.
	img := image.NewRGBA(image.Rect(0, 0, cube.Width, cube.Height))
	for _, sub := range subs {
		req := &TransformReq{
			Range:     sub.Range,
			Mean:      mean,
			Transform: transform,
			Stretches: stretches,
		}
		resp, _, err := transformSlab(sub, req, opts.Parallelism, opts.Cost)
		if err != nil {
			return nil, err
		}
		blitRGB(img, resp)
	}
	res.Image = img
	res.completed = true
	return res, nil
}

// sequentialFuse is the one-thread oracle for tile-kernel algorithms:
// the manager's exact row decomposition, each tile fused by the
// registered kernel, slabs assembled exactly like fusePhase does.
func sequentialFuse(cube *hsi.Cube, opts Options, alg fuse.Algorithm) (*Result, error) {
	res := &Result{}
	ranges := opts.TileRanges(cube.Height)
	res.SubCubes = len(ranges)
	img := image.NewRGBA(image.Rect(0, 0, cube.Width, cube.Height))
	for _, rr := range ranges {
		sub, err := hsi.Extract(cube, rr)
		if err != nil {
			return nil, err
		}
		rgb := make([]byte, sub.Cube.Pixels()*3)
		if err := alg.FuseTile(sub.Cube, opts.Parallelism, rgb); err != nil {
			return nil, err
		}
		blitRGB(img, &FuseResp{Range: rr, Width: cube.Width, RGB: rgb})
	}
	res.Image = img
	res.completed = true
	return res, nil
}
