package core

import (
	"testing"

	"resilientfusion/internal/spectral"
)

func TestWithDefaultsPrefetch(t *testing.T) {
	cases := []struct {
		in, want int
	}{
		{0, 1},   // zero value selects the paper's overlap default
		{-1, -1}, // -1 disables overlap (ablation A2, experiments convention)
		{-7, -1}, // any negative disables
		{1, 1},
		{3, 3},
	}
	for _, c := range cases {
		got := Options{Prefetch: c.in}.withDefaults().Prefetch
		if got != c.want {
			t.Errorf("withDefaults Prefetch=%d: got %d, want %d", c.in, got, c.want)
		}
		// Canonicalization must be idempotent: RunManager re-canonicalizes
		// options that NewJob and the service pool already canonicalized,
		// and "overlap disabled" must survive the second pass.
		once := Options{Prefetch: c.in}.withDefaults()
		if twice := once.withDefaults(); twice.Prefetch != once.Prefetch {
			t.Errorf("withDefaults not idempotent for Prefetch=%d: %d -> %d",
				c.in, once.Prefetch, twice.Prefetch)
		}
	}
}

func TestWithDefaultsFill(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Granularity != 2 || o.Components != 3 || o.Replication != 1 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	if o.Threshold != spectral.DefaultThreshold {
		t.Errorf("Threshold default = %g", o.Threshold)
	}
	if o.FailTimeout != 4*o.HeartbeatPeriod {
		t.Errorf("FailTimeout = %g with HeartbeatPeriod %g", o.FailTimeout, o.HeartbeatPeriod)
	}
	// Explicit values survive.
	o = Options{Granularity: 5, Threshold: 0.2, Components: 4}.withDefaults()
	if o.Granularity != 5 || o.Threshold != 0.2 || o.Components != 4 {
		t.Errorf("explicit values clobbered: %+v", o)
	}
}

func TestResultKeyCoversResultFields(t *testing.T) {
	base := Options{Workers: 4, Granularity: 2, Threshold: 0.05, Components: 3}
	if base.ResultKey() != base.ResultKey() {
		t.Fatal("ResultKey not deterministic")
	}
	// Fields that change the output change the key.
	for _, o := range []Options{
		{Workers: 8, Granularity: 2, Threshold: 0.05, Components: 3},
		{Workers: 4, Granularity: 3, Threshold: 0.05, Components: 3},
		{Workers: 4, Granularity: 2, Threshold: 0.06, Components: 3},
		{Workers: 4, Granularity: 2, Threshold: 0.05, Components: 4},
	} {
		if o.ResultKey() == base.ResultKey() {
			t.Errorf("key collision: %+v vs base", o)
		}
	}
	// Scheduling/resiliency knobs do not.
	same := base
	same.Prefetch = -1
	same.Replication = 2
	same.RequestTimeout = 9
	if same.ResultKey() != base.ResultKey() {
		t.Error("scheduling knobs leaked into ResultKey")
	}
	// Canonicalization: explicit defaults and zero values agree.
	zero := Options{Workers: 4}
	expl := Options{Workers: 4, Granularity: 2, Threshold: 0.1, Components: 3}
	if zero.ResultKey() != expl.ResultKey() {
		t.Error("zero-value options key differs from explicit defaults")
	}
}
