package core

import (
	"reflect"
	"testing"
)

func TestIntSetOrderedKeys(t *testing.T) {
	s := newIntSet(8)
	for _, i := range []int{5, 1, 7, 3, 1, 5} { // dups are no-ops
		s.add(i)
	}
	if got := s.len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	if got, want := s.keys(), []int{1, 3, 5, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	s.remove(3)
	s.remove(3)  // double remove is a no-op
	s.remove(-1) // out of range is a no-op
	s.remove(99)
	if got, want := s.keys(), []int{1, 5, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after remove, keys = %v, want %v", got, want)
	}
	if got := s.len(); got != 3 {
		t.Fatalf("after remove, len = %d, want 3", got)
	}
	if got := s.keys(); cap(got) != 3 {
		t.Fatalf("keys over-allocated: cap %d, want 3", cap(got))
	}
}
