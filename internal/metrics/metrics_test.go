package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSpeedup(t *testing.T) {
	s := Speedup(100, []float64{100, 50, 25, 0})
	if s[0] != 1 || s[1] != 2 || s[2] != 4 {
		t.Fatalf("speedups = %v", s)
	}
	if !math.IsNaN(s[3]) {
		t.Fatal("zero time should give NaN")
	}
}

func TestEfficiencyAndLinearity(t *testing.T) {
	sp := []float64{1, 1.9, 3.6}
	procs := []int{1, 2, 4}
	eff := Efficiency(sp, procs)
	if math.Abs(eff[1]-0.95) > 1e-12 {
		t.Fatalf("eff = %v", eff)
	}
	worst := WithinOfLinear(sp, procs)
	if math.Abs(worst-0.1) > 1e-12 {
		t.Fatalf("worst shortfall = %g", worst)
	}
	if WithinOfLinear([]float64{math.NaN()}, []int{1}) != 0 {
		t.Fatal("NaN handling")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestTableWriteAndCSV(t *testing.T) {
	tab := &Table{
		Title:  "Figure 4",
		XLabel: "processors",
		X:      []float64{1, 2, 4},
		YUnit:  "s",
	}
	tab.Add("no resiliency", []float64{100, 51, 26})
	tab.Add("resiliency level 2", []float64{210, 107}) // short series OK

	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "processors", "no resiliency", "resiliency level 2", "100.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Missing value rendered as '-'.
	if !strings.Contains(out, "-") {
		t.Fatal("missing-value marker absent")
	}

	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "processors,no resiliency,resiliency level 2" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "4,26,") {
		t.Fatalf("csv row = %q", lines[3])
	}
}
