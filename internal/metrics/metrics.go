// Package metrics formats experiment results: time/speedup series and
// fixed-width tables matching the paper's figures.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart: y-values indexed like the shared
// x-axis of the containing Table.
type Series struct {
	Name   string
	Values []float64
}

// Table is a chart rendered as text: an x-axis plus one or more series.
type Table struct {
	Title  string
	XLabel string
	X      []float64
	YUnit  string
	Series []Series
}

// Add appends a series.
func (t *Table) Add(name string, values []float64) {
	t.Series = append(t.Series, Series{Name: name, Values: values})
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	header := fmt.Sprintf("%-14s", t.XLabel)
	for _, s := range t.Series {
		header += fmt.Sprintf("%22s", s.Name)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for i, x := range t.X {
		row := fmt.Sprintf("%-14g", x)
		for _, s := range t.Series {
			if i < len(s.Values) && !math.IsNaN(s.Values[i]) {
				row += fmt.Sprintf("%20.3f %s", s.Values[i], t.YUnit)
			} else {
				row += fmt.Sprintf("%20s %s", "-", strings.Repeat(" ", len(t.YUnit)))
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	cols := []string{t.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range t.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range t.Series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.6g", s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Speedup converts a time series into speedups relative to t1 (the
// single-processor time): S(P) = t1 / t(P).
func Speedup(t1 float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, tp := range times {
		if tp > 0 {
			out[i] = t1 / tp
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// Efficiency is speedup divided by the processor count.
func Efficiency(speedups []float64, procs []int) []float64 {
	out := make([]float64, len(speedups))
	for i := range speedups {
		out[i] = speedups[i] / float64(procs[i])
	}
	return out
}

// WithinOfLinear reports the worst-case fractional shortfall from linear
// speedup across the series: 0.2 means "within 20% of linear".
func WithinOfLinear(speedups []float64, procs []int) float64 {
	worst := 0.0
	for i, s := range speedups {
		if math.IsNaN(s) {
			continue
		}
		shortfall := 1 - s/float64(procs[i])
		if shortfall > worst {
			worst = shortfall
		}
	}
	return worst
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
