package dwt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
)

// Parity tests, in the mold of pct/parity_test.go: the kernel must match
// a plain scalar reference bit-for-bit at every Parallelism. The
// reference implements the documented operation order — rows-then-
// columns Haar per level, row-major activity accumulation, ascending
// band/level/subband selection with strict > — with naive sequential
// loops and no goroutines.

var parityPar = []int{1, 2, 3, 7, 64}

func parityCube(t *testing.T, seed int64, w, h, bands int) *hsi.Cube {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := hsi.MustNewCube(w, h, bands)
	for i := range c.Data {
		c.Data[i] = float32(rng.NormFloat64()*40 + 120)
	}
	return c
}

// refFuse is the scalar reference for Fuse: the same documented math in
// plain sequential loops, reusing only the order-free helpers.
func refFuse(tile *hsi.Cube) []byte {
	rgb := make([]byte, tile.Pixels()*3)
	for ch, g := range bandGroups(tile.Bands) {
		writeChannel(rgb, refFuseGroup(tile, g.lo, g.hi), ch)
	}
	return rgb
}

func refFuseGroup(tile *hsi.Cube, lo, hi int) []float64 {
	w, h := tile.Width, tile.Height
	n := hi - lo
	levels := Levels(w, h)

	coeffs := make([][]float64, n)
	for b := 0; b < n; b++ {
		plane := bandPlane(tile, lo+b)
		forward(plane, w, h, levels)
		coeffs[b] = plane
	}

	details, approx := subbands(w, h, levels)
	fused := make([]float64, w*h)
	for l := 0; l < levels; l++ {
		for s := 0; s < 3; s++ {
			r := details[l][s]
			if r.w == 0 || r.h == 0 {
				continue
			}
			best, bestScore := 0, activity(coeffs[0], w, r)
			for b := 1; b < n; b++ {
				if sc := activity(coeffs[b], w, r); sc > bestScore {
					best, bestScore = b, sc
				}
			}
			copyRegion(fused, coeffs[best], w, r)
		}
	}
	inv := 1 / float64(n)
	for y := approx.y0; y < approx.y0+approx.h; y++ {
		for x := approx.x0; x < approx.x0+approx.w; x++ {
			var sum float64
			for b := 0; b < n; b++ {
				sum += coeffs[b][y*w+x]
			}
			fused[y*w+x] = sum * inv
		}
	}
	inverse(fused, w, h, levels)
	return fused
}

func TestFuseMatchesScalarReference(t *testing.T) {
	shapes := []struct{ w, h, bands int }{
		{17, 9, 7},
		{32, 5, 12},
		{21, 1, 3}, // single-row slab
		{8, 8, 2},  // fewer bands than channels
		{5, 3, 1},
	}
	for _, s := range shapes {
		tile := parityCube(t, int64(s.w*1000+s.h*10+s.bands), s.w, s.h, s.bands)
		want := refFuse(tile)
		for _, par := range parityPar {
			got := make([]byte, tile.Pixels()*3)
			if err := Fuse(tile, par, got); err != nil {
				t.Fatalf("%dx%dx%d par=%d: %v", s.w, s.h, s.bands, par, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%dx%dx%d par=%d: output differs from scalar reference",
					s.w, s.h, s.bands, par)
			}
		}
	}
}

func TestFuseParallelismInvariant(t *testing.T) {
	tile := parityCube(t, 42, 40, 24, 15)
	pars := append(append([]int(nil), parityPar...), linalg.MaxWorkers())
	var want []byte
	for _, par := range pars {
		got := make([]byte, tile.Pixels()*3)
		if err := Fuse(tile, par, got); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("par=%d output differs from par=%d", par, pars[0])
		}
	}
}

// TestHaarRoundTrip pins exact invertibility of the odd-length pairing
// rule: forward then inverse must reproduce the plane to within float
// rounding at every awkward extent.
func TestHaarRoundTrip(t *testing.T) {
	for _, s := range []struct{ w, h int }{
		{16, 16}, {17, 9}, {1, 7}, {7, 1}, {5, 5}, {2, 3}, {1, 1},
	} {
		rng := rand.New(rand.NewSource(int64(s.w*100 + s.h)))
		plane := make([]float64, s.w*s.h)
		for i := range plane {
			plane[i] = rng.NormFloat64() * 50
		}
		orig := append([]float64(nil), plane...)
		levels := Levels(s.w, s.h)
		forward(plane, s.w, s.h, levels)
		inverse(plane, s.w, s.h, levels)
		for i := range plane {
			if math.Abs(plane[i]-orig[i]) > 1e-9 {
				t.Fatalf("%dx%d: round trip drifted at %d: %g vs %g",
					s.w, s.h, i, plane[i], orig[i])
			}
		}
	}
}

// TestSubbandsTile checks the coefficient layout partitions the plane:
// every sample belongs to exactly one detail region or the final
// approximation.
func TestSubbandsTile(t *testing.T) {
	for _, s := range []struct{ w, h int }{{16, 16}, {17, 9}, {5, 3}, {1, 7}} {
		levels := Levels(s.w, s.h)
		details, approx := subbands(s.w, s.h, levels)
		seen := make([]int, s.w*s.h)
		mark := func(r region) {
			for y := r.y0; y < r.y0+r.h; y++ {
				for x := r.x0; x < r.x0+r.w; x++ {
					seen[y*s.w+x]++
				}
			}
		}
		for _, lvl := range details {
			for _, r := range lvl {
				mark(r)
			}
		}
		mark(approx)
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("%dx%d levels=%d: sample %d covered %d times", s.w, s.h, levels, i, c)
			}
		}
	}
}

func TestFuseRejectsShortBuffer(t *testing.T) {
	tile := parityCube(t, 1, 4, 4, 3)
	if err := Fuse(tile, 1, make([]byte, 5)); err == nil {
		t.Fatal("short rgb buffer accepted")
	}
}
